//! Hardware design-space exploration: how the DB fraction, the SMB and the
//! merge/galloping policy change SISA's simulated runtime and energy.
//!
//! Run with `cargo run --release --example pim_exploration`.

use sisa::algorithms::setcentric::k_clique_count;
use sisa::algorithms::SearchLimits;
use sisa::core::{
    parallel, SetEngine, SetGraph, SetGraphConfig, SisaConfig, SisaRuntime, VariantSelection,
};
use sisa::graph::{datasets, orientation::degeneracy_order};

fn measure(
    oriented: &sisa::graph::CsrGraph,
    sisa_cfg: SisaConfig,
    sg_cfg: &SetGraphConfig,
) -> (u64, f64, f64) {
    let mut rt = SisaRuntime::new(sisa_cfg);
    let sg = SetGraph::load(&mut rt, oriented, sg_cfg);
    rt.reset_stats();
    let run = k_clique_count(&mut rt, &sg, 4, &SearchLimits::patterns(10_000));
    let cycles = parallel::schedule(&run.tasks, 32).makespan_cycles;
    (cycles, rt.stats().energy_nj, rt.stats().pum_fraction())
}

fn main() {
    let g = datasets::by_name("bn-mouse").expect("stand-in").generate(1);
    let oriented = degeneracy_order(&g).orient(&g);
    println!(
        "{:<34} {:>12} {:>14} {:>10}",
        "configuration", "cycles", "energy [nJ]", "PUM ops"
    );
    for (label, db_fraction) in [
        ("PNM only (t=0)", 0.0),
        ("hybrid (t=0.4, default)", 0.4),
        ("PUM only (t=1)", 1.0),
    ] {
        let sg_cfg = SetGraphConfig {
            db_fraction,
            storage_budget_frac: f64::INFINITY,
        };
        let (cycles, energy, pum) = measure(&oriented, SisaConfig::default(), &sg_cfg);
        println!(
            "{label:<34} {cycles:>12} {energy:>14.0} {:>9.1}%",
            100.0 * pum
        );
    }
    for (label, cfg) in [
        ("no SMB (SCU cache disabled)", SisaConfig::without_smb()),
        (
            "always merge",
            SisaConfig {
                variant_selection: VariantSelection::AlwaysMerge,
                ..SisaConfig::default()
            },
        ),
        (
            "always galloping",
            SisaConfig {
                variant_selection: VariantSelection::AlwaysGalloping,
                ..SisaConfig::default()
            },
        ),
    ] {
        let (cycles, energy, pum) = measure(&oriented, cfg, &SetGraphConfig::default());
        println!(
            "{label:<34} {cycles:>12} {energy:>14.0} {:>9.1}%",
            100.0 * pum
        );
    }
}
