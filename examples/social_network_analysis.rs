//! Social-network analysis: Jarvis-Patrick clustering, vertex similarity and
//! set-centric BFS over a social-network stand-in.
//!
//! Run with `cargo run --release --example social_network_analysis`.

use sisa::algorithms::setcentric::{
    bfs, jarvis_patrick_clustering, pairwise_similarity, BfsMode, SimilarityMeasure,
};
use sisa::algorithms::SearchLimits;
use sisa::core::{SetEngine, SetGraph, SetGraphConfig, SisaConfig, SisaRuntime};
use sisa::graph::datasets;

fn main() {
    let g = datasets::by_name("soc-fbMsg")
        .expect("registered stand-in")
        .generate(3);
    println!(
        "social graph stand-in: {} vertices, {} edges",
        g.num_vertices(),
        g.num_edges()
    );

    let mut rt = SisaRuntime::new(SisaConfig::default());
    let sg = SetGraph::load(&mut rt, &g, &SetGraphConfig::default());
    rt.reset_stats();

    // Community detection via Jarvis-Patrick clustering.
    let clusters = jarvis_patrick_clustering(
        &mut rt,
        &sg,
        SimilarityMeasure::Jaccard,
        0.15,
        &SearchLimits::unlimited(),
    );
    println!(
        "Jarvis-Patrick: {} intra-community edges selected",
        clusters.result.len()
    );

    // Who is most similar to vertex 0?
    let mut best = (0u32, 0.0f64);
    for v in 1..g.num_vertices() as u32 {
        let s = pairwise_similarity(&mut rt, &sg, 0, v, SimilarityMeasure::AdamicAdar);
        if s > best.1 {
            best = (v, s);
        }
    }
    println!(
        "most similar vertex to 0 (Adamic-Adar): {} with score {:.3}",
        best.0, best.1
    );

    // Reachability via set-centric, direction-optimising BFS.
    let tree = bfs(&mut rt, &sg, 0, BfsMode::DirectionOptimizing);
    let reached = tree.result.iter().filter(|p| p.is_some()).count();
    println!(
        "BFS from vertex 0 reaches {} of {} vertices in {} frontier expansions",
        reached,
        g.num_vertices(),
        tree.tasks.len()
    );
    println!(
        "total simulated cycles so far: {}",
        rt.stats().total_cycles()
    );
}
