//! Protein-interaction-style maximal clique mining: compare the SISA
//! formulation against both software baselines on a bio-like stand-in, the
//! workload the paper's abstract headlines (>10x over Bron-Kerbosch).
//!
//! Run with `cargo run --release --example maximal_cliques`.

use sisa::algorithms::baseline::{maximal_cliques_baseline, BaselineMode};
use sisa::algorithms::setcentric::maximal_cliques;
use sisa::algorithms::SearchLimits;
use sisa::core::{parallel, SetEngine, SetGraph, SetGraphConfig, SisaConfig, SisaRuntime};
use sisa::graph::{datasets, orientation::degeneracy_order};
use sisa::pim::CpuConfig;

fn main() {
    let spec = datasets::by_name("bio-SC-GT").expect("registered stand-in");
    let g = spec.generate(7);
    println!(
        "dataset stand-in {}: {} vertices, {} edges (paper original: {} / {})",
        spec.name,
        g.num_vertices(),
        g.num_edges(),
        spec.paper_vertices,
        spec.paper_edges
    );
    let ordering = degeneracy_order(&g);
    let limits = SearchLimits::patterns(5_000);
    let threads = 32;
    let cpu = CpuConfig::default();

    let non_set = maximal_cliques_baseline(
        &g,
        &ordering,
        BaselineMode::NonSet,
        &cpu,
        threads,
        &limits,
        false,
    );
    let set_based = maximal_cliques_baseline(
        &g,
        &ordering,
        BaselineMode::SetBased,
        &cpu,
        threads,
        &limits,
        false,
    );
    let mut rt = SisaRuntime::new(SisaConfig::default());
    let sg = SetGraph::load(&mut rt, &g, &SetGraphConfig::default());
    rt.reset_stats();
    let sisa = maximal_cliques(&mut rt, &sg, &ordering, &limits, false);

    let ns = parallel::schedule_cpu(&non_set.tasks, threads, &cpu).makespan_cycles;
    let sb = parallel::schedule_cpu(&set_based.tasks, threads, &cpu).makespan_cycles;
    let si = parallel::schedule(&sisa.tasks, threads).makespan_cycles;
    println!(
        "maximal cliques found (budget {limits:?}): {}",
        sisa.result.count
    );
    println!("non-set baseline : {:>12} cycles", ns);
    println!("set-based baseline: {:>12} cycles", sb);
    println!(
        "SISA              : {:>12} cycles  ({:.1}x vs non-set, {:.1}x vs set-based)",
        si,
        ns as f64 / si as f64,
        sb as f64 / si as f64
    );
}
