//! Link prediction: remove a fraction of the edges of a gene-association-style
//! graph, predict them back with neighbourhood similarity measures, and report
//! the accuracy of each measure (paper Algorithm 10).
//!
//! Run with `cargo run --release --example link_prediction`.

use sisa::algorithms::setcentric::{link_prediction_accuracy, SimilarityMeasure};
use sisa::core::{SetGraphConfig, SisaConfig, SisaRuntime};
use sisa::graph::generators;

fn main() {
    let (g, _) = generators::planted_cliques(
        &generators::PlantedCliqueConfig {
            num_vertices: 400,
            num_cliques: 30,
            min_clique_size: 6,
            max_clique_size: 12,
            background_edges: 500,
            overlap: 0.25,
        },
        11,
    );
    println!(
        "graph: {} vertices, {} edges; removing 10% of edges\n",
        g.num_vertices(),
        g.num_edges()
    );
    println!(
        "{:<24} {:>10} {:>10} {:>8}",
        "measure", "recovered", "removed", "recall"
    );
    for measure in [
        SimilarityMeasure::Jaccard,
        SimilarityMeasure::CommonNeighbors,
        SimilarityMeasure::AdamicAdar,
        SimilarityMeasure::ResourceAllocation,
        SimilarityMeasure::PreferentialAttachment,
    ] {
        let mut rt = SisaRuntime::new(SisaConfig::default());
        let run =
            link_prediction_accuracy(&mut rt, &g, &SetGraphConfig::default(), measure, 0.10, 2024);
        let o = &run.result;
        println!(
            "{:<24} {:>10} {:>10} {:>7.1}%",
            format!("{measure:?}"),
            o.correctly_predicted,
            o.removed_edges,
            100.0 * o.recall()
        );
    }
}
