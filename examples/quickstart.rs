//! Quickstart: load a graph into SISA sets, count triangles and maximal
//! cliques, and inspect where the simulated cycles went.
//!
//! Run with `cargo run --release --example quickstart`.

use sisa::algorithms::setcentric::{maximal_cliques, triangle_count};
use sisa::algorithms::SearchLimits;
use sisa::core::{parallel, SetEngine, SetGraph, SetGraphConfig, SisaConfig, SisaRuntime};
use sisa::graph::{generators, orientation::degeneracy_order};

fn main() {
    // A community graph: 25 overlapping planted cliques over 500 vertices.
    let (g, planted) = generators::planted_cliques(
        &generators::PlantedCliqueConfig {
            num_vertices: 500,
            num_cliques: 25,
            min_clique_size: 5,
            max_clique_size: 10,
            background_edges: 1_000,
            overlap: 0.2,
        },
        42,
    );
    println!(
        "graph: {} vertices, {} edges, {} planted cliques",
        g.num_vertices(),
        g.num_edges(),
        planted.len()
    );

    // Load it into the SISA runtime: large neighbourhoods become dense
    // bitvectors (processed in DRAM), the rest sparse arrays (processed by
    // near-memory cores).
    let mut rt = SisaRuntime::new(SisaConfig::default());
    let ordering = degeneracy_order(&g);
    let oriented = SetGraph::load(&mut rt, &ordering.orient(&g), &SetGraphConfig::default());
    let undirected = SetGraph::load(&mut rt, &g, &SetGraphConfig::default());
    rt.reset_stats();

    let tc = triangle_count(&mut rt, &oriented, &SearchLimits::unlimited());
    let mc = maximal_cliques(
        &mut rt,
        &undirected,
        &ordering,
        &SearchLimits::patterns(10_000),
        false,
    );

    println!("triangles: {}", tc.result);
    println!(
        "maximal cliques: {} (largest has {} vertices)",
        mc.result.count, mc.result.max_size
    );

    let report = parallel::schedule(&tc.tasks, 32);
    println!(
        "triangle counting on 32 virtual threads: {:.2} Mcycles (speedup over serial {:.1}x)",
        report.makespan_cycles as f64 / 1e6,
        report.speedup_vs_serial()
    );
    let stats = rt.stats();
    println!(
        "cycles by unit: SCU {} / PUM {} / PNM {} / host {}; {} SISA instructions; {:.1}% of ops in-DRAM",
        stats.scu_cycles,
        stats.pum_cycles,
        stats.pnm_cycles,
        stats.host_cycles,
        stats.total_instructions(),
        100.0 * stats.pum_fraction()
    );
}
