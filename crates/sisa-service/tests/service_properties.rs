//! Property-based tests of the service's two core contracts, at any worker
//! count and under genuinely concurrent multi-threaded submission:
//!
//! 1. **Oracle equivalence** — every query answered by the pooled,
//!    coalescing, batching service returns exactly the value a single-tenant
//!    serial run of the same kernel on a flat [`SisaRuntime`] produces.
//! 2. **Exact attribution** — the per-tenant [`ExecStats`] records fold
//!    bit-exactly to the pool aggregate, and pool + registry overhead
//!    telescopes integer-exactly to the raw engine counters: no simulated
//!    cycle is lost, double-billed, or invented by the serving layer.

use proptest::prelude::*;
use sisa_algorithms::setcentric::{
    k_clique_count, orient_by_degeneracy, star_pattern, subgraph_isomorphism_count, triangle_count,
};
use sisa_algorithms::SearchLimits;
use sisa_core::{ExecStats, SetGraph, SetGraphConfig, SisaConfig, SisaRuntime};
use sisa_graph::{generators, CsrGraph};
use sisa_service::{QueryKind, QuerySpec, ServiceConfig, SisaService};
use std::collections::BTreeMap;

/// One randomly drawn query (single-draw decoding; the vendored proptest
/// shim has no `prop_oneof`).
#[derive(Clone, Debug)]
struct DrawnQuery {
    tenant: usize,
    graph: usize,
    spec_kind: QueryKind,
    budget: Option<u64>,
}

fn drawn_query() -> impl Strategy<Value = DrawnQuery> {
    (0u64..1_000_000).prop_map(|raw| {
        let spec_kind = match raw % 5 {
            0 | 1 => QueryKind::TriangleCount,
            2 => QueryKind::KCliqueCount { k: 3 },
            3 => QueryKind::KCliqueCount { k: 4 },
            _ => QueryKind::StarCount { k: 2 },
        };
        DrawnQuery {
            tenant: ((raw / 5) % 4) as usize,
            graph: ((raw / 20) % 2) as usize,
            spec_kind,
            budget: match (raw / 40) % 3 {
                0 => Some(1 + (raw / 120) % 40),
                _ => None,
            },
        }
    })
}

fn spec_of(q: &DrawnQuery, names: &[&str; 2]) -> QuerySpec {
    let mut spec = QuerySpec::new(names[q.graph], q.spec_kind.clone());
    spec.budget = q.budget;
    spec
}

/// The single-tenant serial reference: the same kernel on a flat runtime.
fn oracle(graph: &CsrGraph, spec: &QuerySpec) -> (u64, bool) {
    let mut rt = SisaRuntime::new(SisaConfig::default());
    let cfg = SetGraphConfig::default();
    let limits = match spec.budget {
        Some(n) => SearchLimits::patterns(n),
        None => SearchLimits::unlimited(),
    };
    match spec.kind {
        QueryKind::TriangleCount => {
            let (oriented, _) = orient_by_degeneracy(&mut rt, graph, &cfg);
            let run = triangle_count(&mut rt, &oriented, &limits);
            (run.result, run.truncated)
        }
        QueryKind::KCliqueCount { k } => {
            let (oriented, _) = orient_by_degeneracy(&mut rt, graph, &cfg);
            let run = k_clique_count(&mut rt, &oriented, k, &limits);
            (run.result, run.truncated)
        }
        QueryKind::StarCount { k } => {
            let plain = SetGraph::load(&mut rt, graph, &cfg);
            let pattern = star_pattern(k);
            let run = subgraph_isomorphism_count(&mut rt, &plain, &pattern, &limits);
            (run.result, run.truncated)
        }
        QueryKind::Mutate(_) => unreachable!("this suite draws read-only queries"),
    }
}

/// Summable-counter conservation (makespan folds via `max` and is excluded;
/// energy is f64, held to a tight relative tolerance).
fn assert_conserved(whole: &ExecStats, parts: &ExecStats) {
    assert_eq!(whole.scu_cycles, parts.scu_cycles, "scu_cycles");
    assert_eq!(whole.pum_cycles, parts.pum_cycles, "pum_cycles");
    assert_eq!(whole.pnm_cycles, parts.pnm_cycles, "pnm_cycles");
    assert_eq!(whole.host_cycles, parts.host_cycles, "host_cycles");
    assert_eq!(whole.link_cycles, parts.link_cycles, "link_cycles");
    assert_eq!(whole.link_bytes, parts.link_bytes, "link_bytes");
    assert_eq!(whole.dep_stall_cycles, parts.dep_stall_cycles, "dep_stalls");
    assert_eq!(whole.pum_ops, parts.pum_ops, "pum_ops");
    assert_eq!(whole.pnm_ops, parts.pnm_ops, "pnm_ops");
    assert_eq!(whole.smb_hits, parts.smb_hits, "smb_hits");
    assert_eq!(whole.smb_misses, parts.smb_misses, "smb_misses");
    assert_eq!(whole.instructions, parts.instructions, "instruction mix");
    let energy_err = (whole.energy_nj - parts.energy_nj).abs();
    assert!(
        energy_err <= 1e-9 * whole.energy_nj.abs().max(1.0),
        "energy drifted: {} vs {}",
        whole.energy_nj,
        parts.energy_nj
    );
}

const GRAPH_NAMES: [&str; 2] = ["prop-a", "prop-b"];

proptest! {
    #[test]
    fn concurrent_tenants_match_the_serial_oracle_and_attribution_is_exact(
        n_a in 6usize..22,
        n_b in 6usize..22,
        graph_seed in 0u64..1_000,
        workers in 1usize..4,
        queries in proptest::collection::vec(drawn_query(), 1..8),
    ) {
        let graphs = [
            generators::erdos_renyi(n_a, 0.25, graph_seed),
            generators::erdos_renyi(n_b, 0.30, graph_seed ^ 0x5a5a),
        ];
        // Serial oracle, computed up front on flat runtimes.
        let mut expected: BTreeMap<String, (u64, bool)> = BTreeMap::new();
        for q in &queries {
            let spec = spec_of(q, &GRAPH_NAMES);
            expected
                .entry(format!("{spec:?}"))
                .or_insert_with(|| oracle(&graphs[q.graph], &spec));
        }

        let mut cfg = ServiceConfig::smoke();
        cfg.workers = workers;
        let service = SisaService::start(cfg);
        for (name, graph) in GRAPH_NAMES.iter().zip(graphs.iter()) {
            service.register_graph(name, graph.clone());
        }

        // One genuinely concurrent client thread per tenant, each submitting
        // its slice of the mix and waiting on all of its handles.
        let mut per_tenant: BTreeMap<usize, Vec<QuerySpec>> = BTreeMap::new();
        for q in &queries {
            per_tenant.entry(q.tenant).or_default().push(spec_of(q, &GRAPH_NAMES));
        }
        let outcomes = std::thread::scope(|scope| {
            let mut joins = Vec::new();
            for (tenant, specs) in &per_tenant {
                let client = service.client();
                let tenant_name = format!("tenant-{tenant}");
                joins.push(scope.spawn(move || {
                    let handles: Vec<_> = specs
                        .iter()
                        .map(|spec| {
                            let handle = client
                                .submit(&tenant_name, spec.clone())
                                .expect("mix is far below admission limits");
                            (spec.clone(), handle)
                        })
                        .collect();
                    handles
                        .into_iter()
                        .map(|(spec, handle)| (spec, handle.wait().expect("completes")))
                        .collect::<Vec<_>>()
                }));
            }
            joins
                .into_iter()
                .flat_map(|join| join.join().expect("client thread"))
                .collect::<Vec<_>>()
        });

        // 1. Every answer equals the serial single-tenant oracle.
        prop_assert_eq!(outcomes.len(), queries.len());
        for (spec, outcome) in &outcomes {
            let (value, truncated) = expected[&format!("{spec:?}")];
            prop_assert_eq!(outcome.value, value, "spec {:?}", spec);
            prop_assert_eq!(outcome.truncated, truncated, "spec {:?}", spec);
        }

        // 2. Tenant records fold bit-exactly to the pool aggregate...
        let usage = service.tenant_usage();
        let billed: u64 = usage.values().map(|u| u.queries).sum();
        prop_assert_eq!(billed, queries.len() as u64);
        let mut folded = ExecStats::default();
        for tenant in usage.values() {
            folded.merge(&tenant.stats);
        }
        let pool = service.pool_stats();
        prop_assert_eq!(&folded, &pool);
        prop_assert_eq!(folded.energy_nj.to_bits(), pool.energy_nj.to_bits());

        // ...and pool + registry overhead telescopes to the raw engines.
        let mut attributed = pool;
        attributed.merge(&service.registry_stats());
        assert_conserved(&service.engine_stats(), &attributed);
        service.close();
    }

    #[test]
    fn identical_concurrent_queries_coalesce_without_changing_answers(
        n in 8usize..26,
        graph_seed in 0u64..1_000,
        clients in 2usize..9,
    ) {
        let graph = generators::erdos_renyi(n, 0.3, graph_seed);
        let spec = QuerySpec::new("shared", QueryKind::TriangleCount);
        let (expected, _) = oracle(&graph, &spec);

        let service = SisaService::start(ServiceConfig::smoke());
        service.register_graph("shared", graph);
        let values = std::thread::scope(|scope| {
            let joins: Vec<_> = (0..clients)
                .map(|i| {
                    let client = service.client();
                    let spec = spec.clone();
                    scope.spawn(move || {
                        client
                            .submit(&format!("client-{i}"), spec)
                            .expect("admitted")
                            .wait()
                            .expect("completes")
                            .value
                    })
                })
                .collect();
            joins
                .into_iter()
                .map(|join| join.join().expect("client thread"))
                .collect::<Vec<_>>()
        });
        for value in values {
            prop_assert_eq!(value, expected);
        }
        let report = service.report();
        prop_assert_eq!(report.completed, clients as u64);
        // However the scheduling fell, billed + coalesced covers every
        // client and nothing was double-executed beyond the window count.
        let usage = service.tenant_usage();
        let billed: u64 = usage.values().map(|u| u.queries - u.coalesced).sum();
        prop_assert!(billed >= 1 && billed <= clients as u64);
        prop_assert_eq!(billed + report.coalesced, clients as u64);
        prop_assert_eq!(report.in_flight, 0);
        service.close();
    }

    /// The result cache is *semantically invisible*: a cache-enabled service
    /// answers every query bit-exactly like a cache-disabled one, under
    /// concurrent mixed-tenant submission at 1–3 workers — including across
    /// a mid-stream evict + reload that swaps a *different* graph in under
    /// the same name. A stale hit (a generation-keying bug) would surface
    /// here as a phase-2 answer from the pre-reload graph.
    #[test]
    fn cache_on_equals_cache_off_bit_exactly_across_evict_and_reload(
        n_a in 6usize..18,
        n_b in 6usize..18,
        graph_seed in 0u64..1_000,
        workers in 1usize..4,
        queries in proptest::collection::vec(drawn_query(), 1..7),
    ) {
        let graphs = [
            generators::erdos_renyi(n_a, 0.25, graph_seed),
            generators::erdos_renyi(n_b, 0.30, graph_seed ^ 0x5a5a),
        ];
        // The mid-stream replacement for graph 0: different size and seed,
        // so stale answers are (near-certainly) distinguishable.
        let replacement = generators::erdos_renyi(n_a + 3, 0.35, graph_seed ^ 0xbeef);

        let mut per_tenant: BTreeMap<usize, Vec<QuerySpec>> = BTreeMap::new();
        for q in &queries {
            per_tenant.entry(q.tenant).or_default().push(spec_of(q, &GRAPH_NAMES));
        }
        // Runs the two-phase workload (mix; evict+reload graph 0; mix again)
        // and returns every outcome keyed by (phase, tenant, submission
        // index) — a deterministic shape both runs share.
        let run = |cache_entries: usize| {
            let mut cfg = ServiceConfig::smoke();
            cfg.workers = workers;
            cfg.cache_entries = cache_entries;
            let service = SisaService::start(cfg);
            for (name, graph) in GRAPH_NAMES.iter().zip(graphs.iter()) {
                service.register_graph(name, graph.clone());
            }
            let mut answers: BTreeMap<(usize, usize, usize), (u64, bool)> = BTreeMap::new();
            for phase in 0..2 {
                if phase == 1 {
                    // Evict, then reload a *different* graph under the name:
                    // every cache entry keyed to the old generation must die.
                    service.evict_graph(GRAPH_NAMES[0]);
                    service.register_graph(GRAPH_NAMES[0], replacement.clone());
                }
                let phase_answers = std::thread::scope(|scope| {
                    let joins: Vec<_> = per_tenant
                        .iter()
                        .map(|(tenant, specs)| {
                            let client = service.client();
                            let tenant_name = format!("tenant-{tenant}");
                            let tenant = *tenant;
                            scope.spawn(move || {
                                let handles: Vec<_> = specs
                                    .iter()
                                    .map(|spec| {
                                        client
                                            .submit(&tenant_name, spec.clone())
                                            .expect("mix is far below admission limits")
                                    })
                                    .collect();
                                handles
                                    .into_iter()
                                    .enumerate()
                                    .map(|(i, handle)| {
                                        let outcome =
                                            handle.wait().expect("completes");
                                        ((tenant, i), (outcome.value, outcome.truncated))
                                    })
                                    .collect::<Vec<_>>()
                            })
                        })
                        .collect();
                    joins
                        .into_iter()
                        .flat_map(|join| join.join().expect("client thread"))
                        .collect::<Vec<_>>()
                });
                for ((tenant, i), answer) in phase_answers {
                    answers.insert((phase, tenant, i), answer);
                }
            }
            // The serving layer's books must balance in both modes: hits
            // bill zero engine work, so pool + registry ≡ engines holds.
            let mut attributed = service.pool_stats();
            attributed.merge(&service.registry_stats());
            assert_conserved(&service.engine_stats(), &attributed);
            let report = service.report();
            let hits = service.cache_counters().hits;
            service.close();
            (answers, report, hits)
        };

        let (with_cache, report_on, hits_on) = run(1024);
        let (without_cache, report_off, hits_off) = run(0);
        prop_assert_eq!(&with_cache, &without_cache, "cache-on ≡ cache-off");
        prop_assert_eq!(hits_off, 0, "disabled cache never hits");
        prop_assert_eq!(report_on.cache_hits, hits_on, "ledger ≡ cache counters");
        prop_assert_eq!(report_off.cache_hits, 0);
        prop_assert_eq!(report_on.completed, report_off.completed);
    }
}
