//! Tenant-churn leak check: thousands of one-shot tenants flowing through
//! admission control, the weighted-fair scheduler and the metrics registry
//! must leave **no** per-tenant state behind — admission's `per_tenant` map,
//! the scheduler's queue map and every `{tenant=...}`-labelled gauge are all
//! bounded by the tenants *currently* active, never by the tenants ever
//! seen. Scheduling semantics stay intact while entries churn: items are
//! conserved, per-tenant FIFO order holds, and a persistent weighted tenant
//! keeps its weighted share of service.

use proptest::prelude::*;
use sisa_service::{Admission, AdmissionConfig, MetricsRegistry, WfqScheduler};
use std::collections::BTreeMap;
use std::sync::Arc;

fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

fn labelled_gauges(metrics: &MetricsRegistry, prefix: &str) -> usize {
    metrics
        .snapshot()
        .gauges
        .keys()
        .filter(|k| k.starts_with(prefix) && k.contains("tenant="))
        .count()
}

proptest! {
    #[test]
    fn one_shot_tenant_floods_leave_state_bounded_by_the_active_set(
        seed in 0u64..1_000_000,
        waves in 4usize..12,
        wave_size in 20usize..120,
        heavy_weight in 2u64..5,
    ) {
        let metrics = Arc::new(MetricsRegistry::new());
        let admission = Admission::with_metrics(
            AdmissionConfig {
                queue_capacity: 4096,
                per_tenant_inflight: 8,
                ..AdmissionConfig::default()
            },
            Arc::clone(&metrics),
        );
        let mut weights = BTreeMap::new();
        weights.insert("heavy".to_string(), heavy_weight);
        let mut wfq: WfqScheduler<u64> = WfqScheduler::new(weights);

        let mut rng = seed;
        let mut next_item = 0u64;
        let mut issued = 0usize;
        // Per-tenant FIFO model: what each tenant still has queued, in order.
        let mut model: BTreeMap<String, Vec<u64>> = BTreeMap::new();
        let mut popped = 0usize;
        let mut heavy_pops = 0u64;
        let mut oneshot_pops = 0u64;

        for wave in 0..waves {
            // A persistent weighted tenant rides along with every wave...
            for _ in 0..4 {
                admission.try_admit("heavy").unwrap();
                wfq.enqueue("heavy", next_item);
                model.entry("heavy".to_string()).or_default().push(next_item);
                next_item += 1;
            }
            // ...amid a flood of single-use tenants, each seen exactly once.
            for i in 0..wave_size {
                let tenant = format!("one-shot-{wave}-{i}");
                admission.try_admit(&tenant).unwrap();
                wfq.enqueue(&tenant, next_item);
                model.entry(tenant).or_default().push(next_item);
                next_item += 1;
                issued += 1;
            }

            // While backlogged, tracked state covers exactly the backlogged
            // tenants — never tenants from drained earlier waves.
            let backlogged = model.values().filter(|q| !q.is_empty()).count();
            prop_assert_eq!(wfq.tracked_tenants().len(), backlogged);
            prop_assert!(admission.tracked_tenants().len() <= backlogged);
            prop_assert!(
                labelled_gauges(&metrics, "sisa_admission_tenant_in_flight") <= backlogged
            );

            // Drain a random large fraction of the backlog, completing each
            // admission slot as its item is served.
            let to_pop = wfq.len() - (splitmix(&mut rng) as usize % 4);
            for _ in 0..to_pop {
                let (tenant, item) = wfq.pop().expect("backlog is non-empty");
                let queue = model.get_mut(&tenant).expect("known tenant");
                prop_assert_eq!(queue.remove(0), item, "per-tenant FIFO order");
                admission.complete(&tenant);
                popped += 1;
                if tenant == "heavy" {
                    heavy_pops += 1;
                } else {
                    oneshot_pops += 1;
                }
            }
        }

        // Drain the tail.
        while let Some((tenant, item)) = wfq.pop() {
            let queue = model.get_mut(&tenant).expect("known tenant");
            prop_assert_eq!(queue.remove(0), item, "per-tenant FIFO order");
            admission.complete(&tenant);
            popped += 1;
        }

        // Conservation: every enqueued item popped exactly once.
        prop_assert_eq!(popped, issued + waves * 4);
        prop_assert!(model.values().all(Vec::is_empty));
        // The weighted tenant was actually served alongside the churn (the
        // exact interleaving is pinned by the WDRR unit tests).
        prop_assert!(heavy_pops > 0 && oneshot_pops > 0);

        // After full drain + completion, *zero* per-tenant state survives
        // anywhere, despite thousands of distinct tenants having passed
        // through: the maps and the labelled gauges are empty, not merely
        // zero-valued.
        prop_assert!(wfq.is_empty());
        prop_assert_eq!(wfq.tracked_tenants().len(), 0);
        prop_assert_eq!(admission.in_flight(), 0);
        prop_assert_eq!(admission.tracked_tenants().len(), 0);
        prop_assert_eq!(labelled_gauges(&metrics, "sisa_admission_tenant_in_flight"), 0);
        prop_assert_eq!(labelled_gauges(&metrics, "sisa_wfq_queue_depth"), 0);
    }
}
