//! End-to-end contracts of the generation-keyed result cache and the
//! weighted-fair-queueing dispatcher:
//!
//! 1. **Zero-cost hits** — a repeated identical query is answered from the
//!    cache with *zero* additional engine cycles (engine aggregates frozen
//!    between hits), marked `cache_hit`, with the conservation identity
//!    still exact and the hit accounted in its own ledger column.
//! 2. **Generation invalidation** — evicting or replacing a graph kills its
//!    cache entries: the next identical query re-executes against the new
//!    graph.
//! 3. **Registry capacity** — `RegistryConfig::max_resident` LRU-evicts
//!    resident graphs through the service config, bumping generations so
//!    cached results die with the graph, while queries keep answering
//!    correctly (reload on demand).
//! 4. **No starvation** — a tenant offering 10× the load of another at
//!    equal weights can delay but not starve it: the light tenant's p95
//!    latency stays within 3× of its solo-run p95.

use sisa_graph::generators;
use sisa_service::{QueryKind, QuerySpec, RegistryConfig, ServiceConfig, SisaService};
use std::collections::VecDeque;

fn test_graph() -> sisa_graph::CsrGraph {
    generators::erdos_renyi(48, 0.18, 7)
}

#[test]
fn repeated_queries_hit_the_cache_with_zero_engine_cycles() {
    let service = SisaService::start(ServiceConfig::smoke());
    service.register_graph("g", test_graph());
    let spec = QuerySpec::new("g", QueryKind::KCliqueCount { k: 3 });

    let first = service
        .submit("t", spec.clone())
        .expect("admitted")
        .wait()
        .expect("completes");
    assert!(!first.stats.cache_hit, "first execution is a miss");
    assert!(first.stats.simulated_cycles > 0);

    // Engine aggregates are frozen across the hits: the barrier read before
    // and after must be identical, integer counters and bit-exact energy.
    let engines_before = service.engine_stats();
    for _ in 0..3 {
        let hit = service
            .submit("t", spec.clone())
            .expect("admitted")
            .wait()
            .expect("completes");
        assert!(
            hit.stats.cache_hit,
            "identical repeat is served by the cache"
        );
        assert!(!hit.stats.coalesced);
        assert_eq!(hit.value, first.value);
        assert_eq!(hit.truncated, first.truncated);
        // The hit reports the original execution's cost (informational)...
        assert_eq!(hit.stats.simulated_cycles, first.stats.simulated_cycles);
        // ...but spent no worker time itself.
        assert_eq!(hit.stats.execute_ns, 0);
        assert!(hit.stats.span_ns >= hit.stats.queue_ns);
    }
    let engines_after = service.engine_stats();
    assert_eq!(
        engines_before, engines_after,
        "hits billed zero engine cycles"
    );
    assert_eq!(
        engines_before.energy_nj.to_bits(),
        engines_after.energy_nj.to_bits()
    );

    // Ledger: hits are completions in their own column, with zero stats.
    let report = service.report();
    assert_eq!(report.completed, 4);
    assert_eq!(report.cache_hits, 3);
    assert_eq!(report.coalesced, 0);
    let usage = service.tenant_usage();
    assert_eq!(usage["t"].queries, 4);
    assert_eq!(usage["t"].cache_hits, 3);

    // Conservation identity stays exact with hits in play.
    let mut attributed = service.pool_stats();
    attributed.merge(&service.registry_stats());
    let engines = service.engine_stats();
    assert_eq!(engines.scu_cycles, attributed.scu_cycles);
    assert_eq!(engines.host_cycles, attributed.host_cycles);
    assert_eq!(engines.instructions, attributed.instructions);

    // Telemetry surface: counters, and the hit-ratio gauge in permille.
    let snapshot = service.metrics_snapshot();
    assert_eq!(snapshot.counters["sisa_cache_hits_total"], 3);
    assert_eq!(snapshot.counters["sisa_cache_misses_total"], 1);
    assert_eq!(snapshot.gauges["sisa_cache_hit_ratio_permille"], 750);
    assert_eq!(snapshot.counters["sisa_queries_completed_total"], 4);
    let counters = service.cache_counters();
    assert_eq!((counters.hits, counters.misses), (3, 1));
    assert_eq!(counters.resident, 1);
    service.close();
}

#[test]
fn evicting_or_replacing_a_graph_invalidates_its_cached_results() {
    let service = SisaService::start(ServiceConfig::smoke());
    service.register_graph("g", test_graph());
    let spec = QuerySpec::new("g", QueryKind::TriangleCount);

    let first = service
        .submit("t", spec.clone())
        .expect("admitted")
        .wait()
        .expect("completes");
    let warmed = service
        .submit("t", spec.clone())
        .expect("admitted")
        .wait()
        .expect("completes");
    assert!(warmed.stats.cache_hit);

    // Replace the graph under the same name: a bigger ER graph with a
    // different triangle count. The stale entry must be unreachable.
    service.register_graph("g", generators::erdos_renyi(64, 0.25, 99));
    let after = service
        .submit("t", spec.clone())
        .expect("admitted")
        .wait()
        .expect("completes");
    assert!(
        !after.stats.cache_hit,
        "generation moved: forced re-execution"
    );
    assert_ne!(after.value, first.value, "the new graph answers");

    // And the new generation caches independently.
    let rehit = service
        .submit("t", spec.clone())
        .expect("admitted")
        .wait()
        .expect("completes");
    assert!(rehit.stats.cache_hit);
    assert_eq!(rehit.value, after.value);

    // Plain eviction (no re-registration) also kills the entry: the name
    // becomes unknown, so the query now fails rather than serving staleness.
    service.evict_graph("g");
    let err = service
        .submit("t", spec)
        .expect("admission does not inspect the registry")
        .wait()
        .expect_err("evicted custom graph is gone");
    assert!(err.contains("unknown graph"), "{err}");
    service.close();
}

#[test]
fn registry_capacity_evicts_lru_and_queries_reload_on_demand() {
    let mut cfg = ServiceConfig::smoke();
    cfg.workers = 1; // one worker: all three graphs share one engine
    cfg.registry = RegistryConfig { max_resident: 2 };
    let service = SisaService::start(cfg);
    let graphs = [
        ("a", generators::erdos_renyi(24, 0.3, 1)),
        ("b", generators::erdos_renyi(24, 0.3, 2)),
        ("c", generators::erdos_renyi(24, 0.3, 3)),
    ];
    let mut values = Vec::new();
    for (name, graph) in &graphs {
        service.register_graph(name, graph.clone());
    }
    // Registering c (capacity 2) LRU-evicted a from the registry.
    assert!(!service.registry().contains("a"));
    assert!(service.registry().contains("b") && service.registry().contains("c"));
    assert_eq!(service.registry().evictions(), 1);

    let query = |name: &str| {
        service
            .submit("t", QuerySpec::new(name, QueryKind::TriangleCount))
            .expect("admitted")
            .wait()
    };
    // Queries on the evicted name fail (custom graphs cannot re-materialise);
    // resident names answer and cache normally.
    let err = query("a").expect_err("a was capacity-evicted");
    assert!(err.contains("unknown graph"), "{err}");
    for (name, _) in &graphs[1..] {
        values.push(query(name).expect("resident graph answers").value);
    }
    // Repeats hit the cache under the survivors' generations.
    for ((name, _), value) in graphs[1..].iter().zip(&values) {
        let hit = query(name).expect("still resident");
        assert!(hit.stats.cache_hit);
        assert_eq!(hit.value, *value);
    }
    // The capacity eviction bumped a's generation, so nothing keyed to the
    // old generation can ever be served again.
    assert!(service.registry().generation_of("a") > 1);
    service.close();
}

/// Nearest-rank p95 of a latency sample.
fn p95(mut samples: Vec<u64>) -> u64 {
    assert!(!samples.is_empty());
    samples.sort_unstable();
    let rank = (samples.len() * 95).div_ceil(100);
    samples[rank.saturating_sub(1)]
}

#[test]
fn a_10x_heavy_tenant_cannot_starve_a_light_tenant_beyond_3x() {
    // One worker, so both tenants compete for the same serial executor.
    // Every submission carries a unique (huge, never-truncating) budget:
    // the specs stay distinct, so neither coalescing nor the result cache
    // can mask scheduling behaviour — every query really executes.
    // Enough light samples that the nearest-rank p95 excludes the top two
    // outliers: the bound is about typical isolation under sustained load,
    // not the single worst arrival race.
    let light_queries = 40usize;
    let heavy_factor = 10usize;
    let graph = generators::erdos_renyi(56, 0.22, 11);
    let spec = |i: u64| {
        QuerySpec::new("wfq", QueryKind::KCliqueCount { k: 3 }).with_budget(1_000_000_000 + i)
    };
    let start = |()| {
        let mut cfg = ServiceConfig::smoke();
        cfg.workers = 1;
        cfg.admission.queue_capacity = 1024;
        cfg.admission.per_tenant_inflight = 512;
        let service = SisaService::start(cfg);
        service.register_graph("wfq", graph.clone());
        // Warm the shard-resident load so it skews no measured latency.
        service
            .submit("warmup", spec(0))
            .expect("admitted")
            .wait()
            .expect("completes");
        service
    };
    let light_spans = |service: &SisaService, base: u64| -> Vec<u64> {
        (0..light_queries as u64)
            .map(|i| {
                service
                    .submit("light", spec(base + i))
                    .expect("admitted")
                    .wait()
                    .expect("completes")
                    .stats
                    .span_ns
            })
            .collect()
    };

    // Solo baseline: the light tenant alone on the service.
    let service = start(());
    let solo_p95 = p95(light_spans(&service, 1_000));
    service.close();

    // Contended: a heavy tenant keeps ~10x the light tenant's work queued
    // (closed loop with a deep in-flight window) while the light tenant
    // re-runs the same sequential sequence.
    let service = start(());
    let contended_p95 = std::thread::scope(|scope| {
        let heavy = {
            let client = service.client();
            scope.spawn(move || {
                let total = light_queries * heavy_factor;
                let mut outstanding = VecDeque::new();
                for i in 0..total as u64 {
                    loop {
                        match client.submit("heavy", spec(10_000 + i)) {
                            Ok(handle) => {
                                outstanding.push_back(handle);
                                break;
                            }
                            // Saturation cannot happen at these limits, but
                            // stay robust: drain one and retry.
                            Err(_) => {
                                if let Some(handle) = outstanding.pop_front() {
                                    let _ = handle.wait();
                                }
                            }
                        }
                    }
                    if outstanding.len() >= heavy_factor {
                        let _ = outstanding.pop_front().expect("non-empty").wait();
                    }
                }
                for handle in outstanding {
                    let _ = handle.wait();
                }
            })
        };
        // Give the heavy tenant a head start so the light tenant measures
        // against a genuinely backlogged worker.
        std::thread::sleep(std::time::Duration::from_millis(10));
        let spans = light_spans(&service, 2_000);
        heavy.join().expect("heavy client");
        p95(spans)
    });
    let report = service.report();
    assert_eq!(report.cache_hits, 0, "unique budgets defeat the cache");
    assert_eq!(report.coalesced, 0, "and coalescing");
    service.close();

    assert!(
        contended_p95 <= solo_p95.saturating_mul(3),
        "light tenant p95 under 10x contention ({contended_p95} ns) exceeded \
         3x its solo p95 ({solo_p95} ns): WFQ failed to bound the latency ratio"
    );
}
