//! Deterministic end-to-end tests of the multi-tenant service:
//! load-once/share-many registry semantics, explicit backpressure, clean
//! failure paths, exact stats attribution, and the TCP transport.

use sisa_core::ExecStats;
use sisa_graph::{generators, GraphBuilder};
use sisa_service::{
    AdmissionConfig, Frame, QueryEvent, QueryKind, QuerySpec, Request, ServiceConfig, SisaService,
    TcpServer,
};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;

/// A small deterministic graph with a healthy triangle population.
fn test_graph() -> sisa_graph::CsrGraph {
    generators::erdos_renyi(48, 0.18, 7)
}

/// Asserts that every *summable* counter of `parts`' fold equals `whole`
/// (makespan folds via `max`, not `+`, so it is excluded; energy is f64 and
/// checked to a tight relative tolerance).
fn assert_conserved(whole: &ExecStats, parts: &ExecStats) {
    assert_eq!(whole.scu_cycles, parts.scu_cycles, "scu_cycles");
    assert_eq!(whole.pum_cycles, parts.pum_cycles, "pum_cycles");
    assert_eq!(whole.pnm_cycles, parts.pnm_cycles, "pnm_cycles");
    assert_eq!(whole.host_cycles, parts.host_cycles, "host_cycles");
    assert_eq!(whole.link_cycles, parts.link_cycles, "link_cycles");
    assert_eq!(whole.link_bytes, parts.link_bytes, "link_bytes");
    assert_eq!(whole.dep_stall_cycles, parts.dep_stall_cycles, "dep_stalls");
    assert_eq!(whole.pum_ops, parts.pum_ops, "pum_ops");
    assert_eq!(whole.pnm_ops, parts.pnm_ops, "pnm_ops");
    assert_eq!(whole.merge_selected, parts.merge_selected, "merge_selected");
    assert_eq!(whole.gallop_selected, parts.gallop_selected, "gallop");
    assert_eq!(whole.smb_hits, parts.smb_hits, "smb_hits");
    assert_eq!(whole.smb_misses, parts.smb_misses, "smb_misses");
    assert_eq!(whole.instructions, parts.instructions, "instruction mix");
    let mut whole_sizes = whole.processed_set_sizes.clone();
    let mut part_sizes = parts.processed_set_sizes.clone();
    whole_sizes.sort_unstable();
    part_sizes.sort_unstable();
    assert_eq!(whole_sizes, part_sizes, "processed set sizes (as multiset)");
    let energy_err = (whole.energy_nj - parts.energy_nj).abs();
    assert!(
        energy_err <= 1e-9 * whole.energy_nj.abs().max(1.0),
        "energy drifted: {} vs {}",
        whole.energy_nj,
        parts.energy_nj
    );
}

#[test]
fn second_query_on_a_registered_graph_charges_zero_load_cycles() {
    let service = SisaService::start(ServiceConfig::smoke());
    service.register_graph("shared", test_graph());

    let first = service
        .submit("alice", QuerySpec::new("shared", QueryKind::TriangleCount))
        .expect("admitted")
        .wait()
        .expect("completes");
    let loads_after_first = service.report().graph_loads;
    let registry_after_first = service.registry_stats();
    assert_eq!(loads_after_first, 1, "first query loads the graph once");
    assert!(registry_after_first.total_cycles() > 0, "loads are billed");

    let second = service
        .submit("bob", QuerySpec::new("shared", QueryKind::TriangleCount))
        .expect("admitted")
        .wait()
        .expect("completes");

    assert_eq!(first.value, second.value, "shared graph, same answer");
    assert_eq!(service.report().graph_loads, 1, "no reload");
    assert_eq!(
        service.registry_stats(),
        registry_after_first,
        "second query charged zero additional load cycles (bit-exact)"
    );
    assert_eq!(service.registry().generations(), 1, "one materialisation");
    service.close();
}

#[test]
fn eviction_releases_residency_and_reload_is_billed_again() {
    let service = SisaService::start(ServiceConfig::smoke());
    service.register_graph("g", test_graph());
    let spec = QuerySpec::new("g", QueryKind::KCliqueCount { k: 3 });

    let before = service.submit("t", spec.clone()).unwrap().wait().unwrap();
    assert!(service.evict_graph("g"), "graph was registered");
    // The registry no longer holds the name, so the next query must fail...
    let err = service
        .submit("t", spec.clone())
        .unwrap()
        .wait()
        .unwrap_err();
    assert!(err.contains("unknown graph"), "{err}");
    // ...until it is registered again, which re-loads (and re-bills).
    service.register_graph("g", test_graph());
    let after = service.submit("t", spec).unwrap().wait().unwrap();
    assert_eq!(before.value, after.value, "same graph, same count");
    let report = service.report();
    assert_eq!(report.graph_loads, 2, "evict + requery reloads");
    assert!(report.evictions >= 1, "eviction was processed");
    assert_eq!(report.failed, 1);
    service.close();
}

#[test]
fn per_tenant_stats_sum_exactly_to_pool_and_telescope_to_engines() {
    let service = SisaService::start(ServiceConfig::smoke());
    service.register_graph("a", test_graph());
    service.register_graph("b", generators::erdos_renyi(40, 0.2, 11));

    let mix = [
        ("alice", QuerySpec::new("a", QueryKind::TriangleCount)),
        ("bob", QuerySpec::new("a", QueryKind::KCliqueCount { k: 3 })),
        ("carol", QuerySpec::new("b", QueryKind::TriangleCount)),
        ("alice", QuerySpec::new("b", QueryKind::StarCount { k: 2 })),
        (
            "bob",
            QuerySpec::new("a", QueryKind::TriangleCount).with_budget(10),
        ),
    ];
    let handles: Vec<_> = mix
        .iter()
        .map(|(tenant, spec)| service.submit(tenant, spec.clone()).expect("admitted"))
        .collect();
    for handle in handles {
        handle.wait().expect("completes");
    }

    // Identity 1: the tenant records fold bit-exactly (energy included) to
    // the pool aggregate — it is defined as that fold.
    let usage = service.tenant_usage();
    let mut folded = ExecStats::default();
    for tenant in usage.values() {
        folded.merge(&tenant.stats);
    }
    let pool = service.pool_stats();
    assert_eq!(folded, pool, "tenant fold == pool aggregate, bit-exact");
    assert_eq!(
        folded.energy_nj.to_bits(),
        pool.energy_nj.to_bits(),
        "energy is bit-exact, not merely close"
    );

    // Identity 2: pool + registry overhead telescopes to the raw engine
    // counters — every engine cycle accrued inside exactly one StatsScope.
    let mut attributed = pool;
    attributed.merge(&service.registry_stats());
    assert_conserved(&service.engine_stats(), &attributed);
    service.close();
}

#[test]
fn overload_rejects_with_retry_hints_and_every_accepted_query_completes() {
    let mut cfg = ServiceConfig::smoke();
    cfg.workers = 1;
    cfg.admission = AdmissionConfig {
        queue_capacity: 4,
        per_tenant_inflight: 2,
        retry_after_ms: 5,
    };
    let service = SisaService::start(cfg);
    service.register_graph("g", test_graph());

    let mut handles = Vec::new();
    let mut rejected = 0u64;
    for i in 0..40 {
        let tenant = format!("tenant-{}", i % 8);
        match service.submit(&tenant, QuerySpec::new("g", QueryKind::TriangleCount)) {
            Ok(handle) => handles.push(handle),
            Err(rejection) => {
                assert!(rejection.retry_after_ms >= 5, "{rejection:?}");
                rejected += 1;
            }
        }
    }
    assert!(rejected > 0, "a 40-query burst must overflow capacity 4");
    let accepted = handles.len() as u64;
    for handle in handles {
        handle.wait().expect("accepted queries complete");
    }
    let report = service.report();
    assert_eq!(report.completed, accepted, "no accepted query was dropped");
    assert_eq!(report.rejected, rejected);
    assert_eq!(report.in_flight, 0, "all admission slots released");
    assert_eq!(accepted + rejected, 40);

    // The queue drained, so admission accepts again: backpressure is
    // load-shedding, not a latched failure state.
    service
        .submit("tenant-0", QuerySpec::new("g", QueryKind::TriangleCount))
        .expect("service recovered")
        .wait()
        .expect("completes");
    service.close();
}

#[test]
fn unknown_graphs_fail_cleanly_and_release_their_slots() {
    let service = SisaService::start(ServiceConfig::smoke());
    let err = service
        .submit(
            "t",
            QuerySpec::new("no-such-graph", QueryKind::TriangleCount),
        )
        .expect("admission does not resolve names")
        .wait()
        .unwrap_err();
    assert!(err.contains("unknown graph"), "{err}");
    let report = service.report();
    assert_eq!(report.failed, 1);
    assert_eq!(report.in_flight, 0, "failure released the slot");
    assert_eq!(service.tenant_usage()["t"].failed, 1);
    service.close();
}

#[test]
fn batched_triangle_count_streams_progress_and_matches_terminal_value() {
    let mut cfg = ServiceConfig::smoke();
    cfg.progress_window_ops = 16; // small windows => several progress events
    let service = SisaService::start(cfg);
    service.register_graph("g", test_graph());
    let handle = service
        .submit("t", QuerySpec::new("g", QueryKind::TriangleCount))
        .unwrap();
    let mut progress_events = 0u32;
    let mut last_partial = 0u64;
    let outcome = loop {
        match handle.next_event().expect("stream stays open") {
            QueryEvent::Progress {
                done_ops,
                total_ops,
                partial,
            } => {
                assert!(done_ops <= total_ops);
                assert!(partial >= last_partial, "partial count is monotone");
                last_partial = partial;
                progress_events += 1;
            }
            QueryEvent::Done(outcome) => break outcome,
            QueryEvent::Failed(error) => panic!("query failed: {error}"),
        }
    };
    assert!(progress_events > 1, "windowed execution streams progress");
    assert_eq!(outcome.value, last_partial, "final partial == result");
    service.close();
}

#[test]
fn tcp_transport_round_trips_queries_rejections_and_malformed_lines() {
    let service = SisaService::start(ServiceConfig::smoke());
    service.register_graph("g", test_graph());
    // Oracle over the in-process path.
    let expected = service
        .submit("oracle", QuerySpec::new("g", QueryKind::TriangleCount))
        .unwrap()
        .wait()
        .unwrap()
        .value;

    let server = TcpServer::serve(service.client(), "127.0.0.1:0").expect("bind");
    let stream = TcpStream::connect(server.addr()).expect("connect");
    let mut writer = stream.try_clone().expect("clone");
    let mut lines = BufReader::new(stream).lines();
    let mut ask = |line: &str| -> Frame {
        writer.write_all(line.as_bytes()).expect("write");
        writer.write_all(b"\n").expect("write");
        loop {
            let line = lines.next().expect("frame").expect("read");
            let frame: Frame = serde_json::from_str(&line).expect("frame json");
            if frame.is_terminal() {
                return frame;
            }
            assert_eq!(frame.frame, "progress");
        }
    };

    let spec = QuerySpec::new("g", QueryKind::TriangleCount);
    let result = ask(&serde_json::to_string(&Request::from_spec(7, "net", &spec)).unwrap());
    assert_eq!(result.frame, "result");
    assert_eq!(result.id, 7);
    assert_eq!(result.value, Some(expected));
    assert_eq!(result.coalesced, Some(false));
    assert!(result.simulated_cycles.unwrap() > 0);

    let bad = ask("this is not json");
    assert_eq!(bad.frame, "error");
    assert_eq!(bad.id, 0, "unparseable lines get correlation id 0");

    let bad_spec = ask(r#"{"id": 8, "tenant": "net", "graph": "g", "query": "kclique"}"#);
    assert_eq!(bad_spec.frame, "error");
    assert_eq!(bad_spec.id, 8);

    let unknown = ask(r#"{"id": 9, "tenant": "net", "graph": "missing", "query": "tc"}"#);
    assert_eq!(unknown.frame, "error");
    assert!(unknown.error.unwrap().contains("unknown graph"));

    drop(writer);
    drop(lines);
    server.stop();
    service.close();
}

#[test]
fn registered_graphs_shadow_datasets_and_custom_names_are_isolated() {
    let service = SisaService::start(ServiceConfig::smoke());
    // Two different graphs under two names: answers must not bleed.
    let mut path = GraphBuilder::new(4);
    for (u, v) in [(0, 1), (1, 2), (2, 3)] {
        path.add_edge(u, v);
    }
    let mut clique = GraphBuilder::new(4);
    for u in 0..4u32 {
        for v in (u + 1)..4 {
            clique.add_edge(u, v);
        }
    }
    service.register_graph("path", path.build());
    service.register_graph("clique", clique.build());
    let tc = |name: &str| {
        service
            .submit("t", QuerySpec::new(name, QueryKind::TriangleCount))
            .unwrap()
            .wait()
            .unwrap()
            .value
    };
    assert_eq!(tc("path"), 0);
    assert_eq!(tc("clique"), 4, "K4 has 4 triangles");
    service.close();
}
