//! End-to-end contracts of the streaming-mutation path:
//!
//! 1. **Differential correctness** — an arbitrary interleaving of insert /
//!    delete batches (including delete-then-reinsert in one delta) applied
//!    through `mutate` requests leaves every subsequent query answering
//!    exactly what a from-scratch recompute on the successor graph answers,
//!    at 1–3 workers and with the result cache on or off, with the
//!    conservation identity (tenant pool + registry ledger ≡ raw engine
//!    aggregates) exact throughout.
//! 2. **Cache invalidation** — a mutation mid-stream structurally kills the
//!    cached results of its graph: the repeat query that hit before the
//!    mutation re-answers (fresh value, no stale hit) after it.
//! 3. **Accounting** — mutations land in the tenant's `mutations` column
//!    and the report's `mutations` total, are billed real engine cycles to
//!    the mutating tenant, and the stream metrics (`sisa_stream_loads_total`,
//!    `sisa_mutations_total`, `sisa_stream_serves_total`) tick.

use proptest::prelude::*;
use sisa_algorithms::setcentric::{k_clique_count, orient_by_degeneracy, triangle_count};
use sisa_algorithms::SearchLimits;
use sisa_core::{ExecStats, SetGraphConfig, SisaConfig, SisaRuntime};
use sisa_graph::{generators, CsrGraph, GraphDelta};
use sisa_service::{GraphLease, QueryKind, QuerySpec, ServiceConfig, SisaService};

fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// From-scratch recompute of a clique count on a flat runtime — the oracle
/// the incremental path must match exactly.
fn recount(g: &CsrGraph, k: usize) -> u64 {
    let mut rt = SisaRuntime::new(SisaConfig::default());
    let (oriented, _) = orient_by_degeneracy(&mut rt, g, &SetGraphConfig::default());
    let limits = SearchLimits::unlimited();
    if k == 3 {
        triangle_count(&mut rt, &oriented, &limits).result
    } else {
        k_clique_count(&mut rt, &oriented, k, &limits).result
    }
}

fn assert_conserved(whole: &ExecStats, parts: &ExecStats) {
    assert_eq!(whole.scu_cycles, parts.scu_cycles, "scu_cycles");
    assert_eq!(whole.pum_cycles, parts.pum_cycles, "pum_cycles");
    assert_eq!(whole.pnm_cycles, parts.pnm_cycles, "pnm_cycles");
    assert_eq!(whole.host_cycles, parts.host_cycles, "host_cycles");
    assert_eq!(whole.link_cycles, parts.link_cycles, "link_cycles");
    assert_eq!(whole.link_bytes, parts.link_bytes, "link_bytes");
    assert_eq!(whole.instructions, parts.instructions, "instruction mix");
    let energy_err = (whole.energy_nj - parts.energy_nj).abs();
    assert!(
        energy_err <= 1e-9 * whole.energy_nj.abs().max(1.0),
        "energy drifted: {} vs {}",
        whole.energy_nj,
        parts.energy_nj
    );
}

/// A deterministic mutation stream over `n` vertices: each round deletes a
/// few present edges and inserts a few absent ones, and every third round
/// also deletes-then-reinserts a present edge inside the *same* delta (which
/// must be count-neutral but still count as two applied changes).
fn draw_delta(reference: &CsrGraph, n: u64, round: usize, rng: &mut u64) -> GraphDelta {
    let mut delta = GraphDelta::new();
    for _ in 0..3 {
        let u = splitmix(rng) % n;
        let v = splitmix(rng) % n;
        delta.inserts.push((u as u32, v as u32));
    }
    for _ in 0..2 {
        let u = (splitmix(rng) % n) as u32;
        let neigh = reference.neighbors(u);
        if let Some(&v) = neigh.get((splitmix(rng) as usize) % neigh.len().max(1)) {
            delta.deletes.push((u, v));
        }
    }
    if round.is_multiple_of(3) {
        // Delete-then-reinsert of one present edge, inside one delta.
        for u in 0..n as u32 {
            if let Some(&v) = reference.neighbors(u).first() {
                delta = delta.delete(u, v).insert(u, v);
                break;
            }
        }
    }
    delta
}

/// The differential body: a seeded mutation stream through one service
/// configuration, every post-mutation answer compared against a
/// from-scratch recompute, ending with a registry-graph identity check and
/// the conservation identity.
fn run_stream_differential(seed: u64, workers: usize, cache_entries: usize, rounds: usize) {
    let cfg = ServiceConfig {
        workers,
        shards: 2,
        cache_entries,
        ..ServiceConfig::default()
    };
    let service = SisaService::start(cfg);
    let mut reference = generators::erdos_renyi(14, 0.3, 11);
    service.register_graph("g", reference.clone());

    let mut rng = seed ^ (workers as u64) << 8 ^ cache_entries as u64;
    for round in 0..rounds {
        let delta = draw_delta(&reference, 14, round, &mut rng);
        let successor = delta.apply_to(&reference);
        let outcome = service
            .submit("writer", QuerySpec::new("g", QueryKind::Mutate(delta)))
            .expect("admitted")
            .wait()
            .expect("mutation applies");
        assert!(!outcome.stats.cache_hit && !outcome.stats.coalesced);
        reference = successor;

        // tc (k = 3) and kclique4 are stream-maintained; kclique5 is
        // outside the default `stream_ks` and exercises the kernel
        // path against the post-mutation registry graph.
        for (kind, k) in [
            (QueryKind::TriangleCount, 3),
            (QueryKind::KCliqueCount { k: 4 }, 4),
            (QueryKind::KCliqueCount { k: 5 }, 5),
        ] {
            let got = service
                .submit("reader", QuerySpec::new("g", kind))
                .expect("admitted")
                .wait()
                .expect("completes");
            assert_eq!(
                got.value,
                recount(&reference, k),
                "round {round}: k={k} diverged from recompute \
                 (workers={workers}, cache_entries={cache_entries})"
            );
        }
    }

    // The registry's graph is bit-identical to the reference stream.
    let GraphLease { graph, .. } = service.registry().acquire_lease("g").expect("resident");
    assert_eq!(graph.num_edges(), reference.num_edges());
    for v in 0..reference.num_vertices() as u32 {
        assert_eq!(graph.neighbors(v), reference.neighbors(v), "vertex {v}");
    }
    drop(graph);

    // Conservation: every cycle of load, stream maintenance and
    // query work is attributed to exactly one ledger.
    let mut attributed = service.pool_stats();
    attributed.merge(&service.registry_stats());
    assert_conserved(&service.engine_stats(), &attributed);
    service.close();
}

#[test]
fn streamed_mutations_match_recompute_across_workers_and_cache_modes() {
    // The exhaustive worker × cache matrix, one seed each.
    for workers in 1..=3 {
        for cache_entries in [0usize, 64] {
            run_stream_differential(0xfeed, workers, cache_entries, 5);
        }
    }
}

proptest! {
    // The randomized sweep over the same body: arbitrary seeds (hence
    // arbitrary insert/delete interleavings, delete-then-reinsert
    // included), drawn worker counts and cache modes.
    #[test]
    fn streamed_mutations_match_recompute_on_random_streams(
        seed in 0u64..1_000_000,
        workers in 1usize..4,
        cache_on in any::<bool>(),
    ) {
        run_stream_differential(seed, workers, if cache_on { 64 } else { 0 }, 3);
    }
}

#[test]
fn a_mutation_mid_stream_invalidates_cached_results() {
    let service = SisaService::start(ServiceConfig::smoke());
    // A path graph has zero triangles; closing one end creates exactly one.
    service.register_graph("g", generators::path(6));
    let spec = QuerySpec::new("g", QueryKind::TriangleCount);

    let cold = service
        .submit("reader", spec.clone())
        .expect("admitted")
        .wait()
        .expect("completes");
    assert_eq!(cold.value, 0);
    let warm = service
        .submit("reader", spec.clone())
        .expect("admitted")
        .wait()
        .expect("completes");
    assert!(warm.stats.cache_hit, "repeat before the mutation hits");

    let mutation = service
        .submit(
            "writer",
            QuerySpec::new("g", QueryKind::Mutate(GraphDelta::new().insert(0, 2))),
        )
        .expect("admitted")
        .wait()
        .expect("mutation applies");
    assert_eq!(mutation.value, 1, "one effective edge change");
    assert!(
        mutation.stats.simulated_cycles > 0,
        "mutations bill real work"
    );

    let after = service
        .submit("reader", spec.clone())
        .expect("admitted")
        .wait()
        .expect("completes");
    assert!(
        !after.stats.cache_hit,
        "the generation tick killed the entry"
    );
    assert_eq!(after.value, 1, "the new triangle is visible");

    // And the *new* value is cacheable again under the new generation.
    let rewarmed = service
        .submit("reader", spec)
        .expect("admitted")
        .wait()
        .expect("completes");
    assert!(rewarmed.stats.cache_hit);
    assert_eq!(rewarmed.value, 1);

    // Accounting: the mutation is a completion in its own ledger column,
    // billed to the writer — not a query, not a cache hit.
    let report = service.report();
    assert_eq!(report.mutations, 1);
    assert_eq!(report.completed, 5);
    let usage = service.tenant_usage();
    assert_eq!(usage["writer"].mutations, 1);
    assert_eq!(usage["writer"].queries, 0);
    assert!(usage["writer"].stats.total_cycles() > 0);
    assert_eq!(usage["reader"].mutations, 0);

    let snapshot = service.metrics_snapshot();
    assert_eq!(snapshot.counters["sisa_mutations_total"], 1);
    assert_eq!(snapshot.counters["sisa_stream_loads_total"], 1);
    assert!(
        snapshot.counters["sisa_stream_serves_total"] >= 1,
        "post-mutation triangle count is served from the maintained counter"
    );
    service.close();
}

#[test]
fn mutations_on_unknown_graphs_fail_and_release_admission() {
    let service = SisaService::start(ServiceConfig::smoke());
    let err = service
        .submit(
            "writer",
            QuerySpec::new("ghost", QueryKind::Mutate(GraphDelta::new().insert(0, 1))),
        )
        .expect("admitted")
        .wait()
        .expect_err("unknown graph fails");
    assert!(err.contains("ghost"), "error names the graph: {err}");
    let report = service.report();
    assert_eq!(report.failed, 1);
    assert_eq!(report.mutations, 0);
    // The admission slot was released: the per-tenant gauge is pruned.
    let snapshot = service.metrics_snapshot();
    assert!(!snapshot
        .gauges
        .keys()
        .any(|k| k.starts_with("sisa_admission_tenant_in_flight")));
    service.close();
}

#[test]
fn inserts_may_grow_the_vertex_set_beyond_the_registered_graph() {
    let service = SisaService::start(ServiceConfig::smoke());
    service.register_graph("g", generators::complete(4));
    // Vertex 9 is beyond the registered 4-vertex graph: the stream state is
    // built with enough capacity, and the registry successor grows.
    let outcome = service
        .submit(
            "writer",
            QuerySpec::new(
                "g",
                QueryKind::Mutate(GraphDelta::new().insert(3, 9).insert(8, 9)),
            ),
        )
        .expect("admitted")
        .wait()
        .expect("mutation applies");
    assert_eq!(outcome.value, 2);
    let lease = service.registry().acquire_lease("g").expect("resident");
    assert_eq!(lease.graph.num_vertices(), 10);
    let tc = service
        .submit("reader", QuerySpec::new("g", QueryKind::TriangleCount))
        .expect("admitted")
        .wait()
        .expect("completes");
    assert_eq!(tc.value, 4, "K4 still holds its four triangles");
    service.close();
}
