//! Regression tests for the pipelined TCP transport: several queries issued
//! back-to-back on ONE connection execute concurrently, every frame echoes
//! its request `id`, per-id frame sequences stay well-formed (progress* then
//! exactly one terminal), and `metrics` requests are answered inline while
//! queries are still draining.

use sisa_graph::generators;
use sisa_service::{Frame, QueryKind, QuerySpec, Request, ServiceConfig, SisaService, TcpServer};
use std::collections::BTreeMap;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;

fn test_graph() -> sisa_graph::CsrGraph {
    generators::erdos_renyi(48, 0.18, 7)
}

/// Reads frames until every id in `want` has received its terminal frame;
/// returns the frames grouped by id, in arrival order.
fn collect_terminals(
    lines: &mut std::io::Lines<BufReader<TcpStream>>,
    want: &[u64],
) -> BTreeMap<u64, Vec<Frame>> {
    let mut by_id: BTreeMap<u64, Vec<Frame>> = BTreeMap::new();
    let mut pending: Vec<u64> = want.to_vec();
    while !pending.is_empty() {
        let line = lines.next().expect("stream stays open").expect("read");
        let frame: Frame = serde_json::from_str(&line).expect("frame json");
        assert!(
            want.contains(&frame.id),
            "frame for unexpected id {}: {frame:?}",
            frame.id
        );
        if frame.is_terminal() {
            pending.retain(|&id| id != frame.id);
        }
        by_id.entry(frame.id).or_default().push(frame);
    }
    by_id
}

#[test]
fn interleaved_queries_on_one_connection_keep_ids_and_sequences_straight() {
    let mut cfg = ServiceConfig::smoke();
    cfg.progress_window_ops = 16; // long tc => many interleavable progress frames
    cfg.cache_entries = 0; // cache off: the in-process oracles below would
                           // otherwise turn the wire queries into hits, and
                           // this test is about *execution* frame sequences
    let service = SisaService::start(cfg);
    service.register_graph("g", test_graph());
    service.register_graph("h", generators::erdos_renyi(40, 0.2, 11));

    // In-process oracles for every query the wire will carry.
    let oracle = |spec: QuerySpec| {
        service
            .submit("oracle", spec)
            .expect("admitted")
            .wait()
            .expect("completes")
            .value
    };
    let tc_g = oracle(QuerySpec::new("g", QueryKind::TriangleCount));
    let kc_g = oracle(QuerySpec::new("g", QueryKind::KCliqueCount { k: 3 }));
    let star_h = oracle(QuerySpec::new("h", QueryKind::StarCount { k: 2 }));

    let server = TcpServer::serve(service.client(), "127.0.0.1:0").expect("bind");
    let stream = TcpStream::connect(server.addr()).expect("connect");
    let mut writer = stream.try_clone().expect("clone");
    let mut lines = BufReader::new(stream).lines();

    // First wave: three queries plus a metrics probe, written back-to-back
    // without reading a single response — the transport must pipeline them.
    let send = |writer: &mut TcpStream, line: &str| {
        writer.write_all(line.as_bytes()).expect("write");
        writer.write_all(b"\n").expect("write");
    };
    let req = |id, tenant: &str, spec: &QuerySpec| {
        serde_json::to_string(&Request::from_spec(id, tenant, spec)).unwrap()
    };
    send(
        &mut writer,
        &req(1, "net", &QuerySpec::new("g", QueryKind::TriangleCount)),
    );
    send(
        &mut writer,
        &req(
            2,
            "net",
            &QuerySpec::new("g", QueryKind::KCliqueCount { k: 3 }),
        ),
    );
    send(
        &mut writer,
        &req(
            3,
            "net",
            &QuerySpec::new("h", QueryKind::StarCount { k: 2 }),
        ),
    );
    send(&mut writer, r#"{"id": 4, "query": "metrics"}"#);

    let by_id = collect_terminals(&mut lines, &[1, 2, 3, 4]);

    // Per-id sequences: zero or more progress frames, then one terminal,
    // nothing after it.
    for (id, frames) in &by_id {
        let (last, body) = frames.split_last().expect("at least the terminal");
        assert!(last.is_terminal(), "id {id} ends in a terminal frame");
        for frame in body {
            assert_eq!(frame.frame, "progress", "id {id}: only progress precedes");
        }
    }
    let terminal = |id: u64| by_id[&id].last().unwrap().clone();
    let r1 = terminal(1);
    assert_eq!(r1.frame, "result");
    assert_eq!(r1.value, Some(tc_g));
    assert!(
        by_id[&1].len() > 1,
        "windowed tc streams progress frames on the wire"
    );
    assert!(r1.span_ns.unwrap() >= r1.execute_ns.unwrap());
    let r2 = terminal(2);
    assert_eq!(r2.frame, "result");
    assert_eq!(r2.value, Some(kc_g));
    let r3 = terminal(3);
    assert_eq!(r3.frame, "result");
    assert_eq!(r3.value, Some(star_h));

    // The metrics probe was answered inline with a snapshot frame.
    let m = terminal(4);
    assert_eq!(m.frame, "metrics");
    let snapshot = m.metrics.expect("snapshot payload");
    assert!(
        snapshot.counters["sisa_queries_submitted_total"] >= 3,
        "{snapshot:?}"
    );
    assert!(m.metrics_text.unwrap().contains("# TYPE"));

    // Second wave on the same connection: it stays fully usable, including
    // an interleaved malformed line (answered with correlation id 0).
    send(
        &mut writer,
        &req(5, "net", &QuerySpec::new("g", QueryKind::TriangleCount)),
    );
    send(&mut writer, "this is not json");
    let by_id = collect_terminals(&mut lines, &[5, 0]);
    assert_eq!(by_id[&5].last().unwrap().value, Some(tc_g));
    assert_eq!(by_id[&0].last().unwrap().frame, "error");

    drop(writer);
    drop(lines);
    server.stop();
    service.close();
}
