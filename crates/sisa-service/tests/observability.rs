//! End-to-end observability contracts of the service:
//!
//! 1. **Panic attribution** — a kernel panic (reachable by constructing a
//!    `QuerySpec` directly, bypassing wire validation) fails the query,
//!    keeps the worker and its resident graphs alive, releases the
//!    admission slot, and folds the partial stats into the tenant ledger so
//!    the pool + registry ≡ engines conservation identity still holds.
//! 2. **Observer-only telemetry** — running the same query sequence with a
//!    lane-timeline collector attached produces identical values and
//!    bit-identical `ExecStats` (exact f64 energy) at 1–3 workers.
//! 3. **Metrics ≡ ledger** — the metrics registry's query counters agree
//!    exactly with the service report and the latency histogram's count.

use sisa_core::{ChromeTraceCollector, ExecStats, SharedCollector};
use sisa_graph::generators;
use sisa_service::{QueryKind, QuerySpec, ServiceConfig, SisaService};
use std::sync::{Arc, Mutex};

fn test_graph() -> sisa_graph::CsrGraph {
    generators::erdos_renyi(48, 0.18, 7)
}

/// Asserts that every *summable* counter of `parts`' fold equals `whole`
/// (makespan folds via `max`, not `+`, so it is excluded; energy is f64 and
/// checked to a tight relative tolerance).
fn assert_conserved(whole: &ExecStats, parts: &ExecStats) {
    assert_eq!(whole.scu_cycles, parts.scu_cycles, "scu_cycles");
    assert_eq!(whole.pum_cycles, parts.pum_cycles, "pum_cycles");
    assert_eq!(whole.pnm_cycles, parts.pnm_cycles, "pnm_cycles");
    assert_eq!(whole.host_cycles, parts.host_cycles, "host_cycles");
    assert_eq!(whole.link_cycles, parts.link_cycles, "link_cycles");
    assert_eq!(whole.link_bytes, parts.link_bytes, "link_bytes");
    assert_eq!(whole.instructions, parts.instructions, "instruction mix");
    let energy_err = (whole.energy_nj - parts.energy_nj).abs();
    assert!(
        energy_err <= 1e-9 * whole.energy_nj.abs().max(1.0),
        "energy drifted: {} vs {}",
        whole.energy_nj,
        parts.energy_nj
    );
}

#[test]
fn kernel_panics_fail_the_query_but_spare_the_worker_and_the_ledger() {
    let service = SisaService::start(ServiceConfig::smoke());
    service.register_graph("g", test_graph());
    let tc = QuerySpec::new("g", QueryKind::TriangleCount);

    let before = service
        .submit("t", tc.clone())
        .expect("admitted")
        .wait()
        .expect("completes");

    // `k_clique_count` asserts k >= 2. The wire protocol validates this, but
    // a directly-constructed spec bypasses it — the worker must contain the
    // panic instead of dying with its resident graphs.
    let err = service
        .submit("t", QuerySpec::new("g", QueryKind::KCliqueCount { k: 1 }))
        .expect("admission does not inspect k")
        .wait()
        .expect_err("the kernel panics");
    assert!(err.contains("query panicked"), "{err}");
    assert!(err.contains("k-cliques need k >= 2"), "{err}");

    // The worker survived: the same graph answers again, without reloading.
    let after = service
        .submit("t", tc)
        .expect("admitted")
        .wait()
        .expect("worker is still alive");
    assert_eq!(before.value, after.value);
    let report = service.report();
    assert_eq!(report.failed, 1);
    assert_eq!(report.completed, 2);
    assert_eq!(report.in_flight, 0, "the panicked slot was released");
    assert_eq!(report.graph_loads, 1, "resident graphs survived the panic");
    assert_eq!(service.tenant_usage()["t"].failed, 1);

    // Conservation: everything the engines spent — including whatever the
    // panicked execution touched — is attributed to exactly one ledger.
    let mut attributed = service.pool_stats();
    attributed.merge(&service.registry_stats());
    assert_conserved(&service.engine_stats(), &attributed);

    let snapshot = service.metrics_snapshot();
    assert_eq!(snapshot.counters["sisa_queries_panicked_total"], 1);
    assert_eq!(snapshot.counters["sisa_queries_failed_total"], 1);
    service.close();
}

/// What one `run_sequence` pass observed: the query values, the pool /
/// registry / engine stat aggregates, and the trace when a collector was
/// attached.
struct SequenceRun {
    values: Vec<u64>,
    pool: ExecStats,
    registry: ExecStats,
    engines: ExecStats,
    trace: Option<Arc<Mutex<ChromeTraceCollector>>>,
}

/// Runs a fixed sequential query mix, with or without a lane collector.
fn run_sequence(workers: usize, with_collector: bool) -> SequenceRun {
    let mut cfg = ServiceConfig::smoke();
    cfg.workers = workers;
    let trace = with_collector.then(|| Arc::new(Mutex::new(ChromeTraceCollector::new())));
    if let Some(trace) = &trace {
        cfg.collector = Some(SharedCollector::from_arc(trace.clone()));
    }
    let service = SisaService::start(cfg);
    service.register_graph("a", test_graph());
    service.register_graph("b", generators::erdos_renyi(40, 0.2, 11));
    let mix = [
        QuerySpec::new("a", QueryKind::TriangleCount),
        QuerySpec::new("a", QueryKind::KCliqueCount { k: 3 }),
        QuerySpec::new("b", QueryKind::StarCount { k: 2 }),
        QuerySpec::new("b", QueryKind::TriangleCount).with_budget(10),
        QuerySpec::new("a", QueryKind::TriangleCount),
    ];
    // Sequential submission: deterministic execution order per worker.
    let values = mix
        .into_iter()
        .map(|spec| {
            service
                .submit("t", spec)
                .expect("admitted")
                .wait()
                .expect("completes")
                .value
        })
        .collect();
    let pool = service.pool_stats();
    let registry = service.registry_stats();
    let engines = service.engine_stats();
    service.close();
    SequenceRun {
        values,
        pool,
        registry,
        engines,
        trace,
    }
}

#[test]
fn attaching_a_collector_is_invisible_to_results_and_stats_at_any_pool_size() {
    for workers in 1..=3 {
        let base = run_sequence(workers, false);
        let traced = run_sequence(workers, true);
        assert_eq!(
            base.values, traced.values,
            "{workers} workers: same answers"
        );
        assert_eq!(
            base.pool, traced.pool,
            "{workers} workers: pool stats bit-exact"
        );
        assert_eq!(
            base.pool.energy_nj.to_bits(),
            traced.pool.energy_nj.to_bits(),
            "energy is bit-exact, not merely close"
        );
        assert_eq!(
            base.registry, traced.registry,
            "{workers} workers: registry"
        );
        assert_eq!(base.engines, traced.engines, "{workers} workers: engines");

        // And the collector really observed the pool working.
        let trace = traced.trace.expect("collector run");
        let trace = trace.lock().unwrap();
        assert!(
            !trace.instruction_events().is_empty(),
            "the pool's lane timeline was recorded"
        );
        let render = trace.render();
        assert!(render.contains("\"traceEvents\""), "Perfetto-loadable JSON");
    }
}

#[test]
fn metrics_counters_agree_with_the_service_ledger() {
    let service = SisaService::start(ServiceConfig::smoke());
    service.register_graph("g", test_graph());
    for _ in 0..3 {
        service
            .submit("t", QuerySpec::new("g", QueryKind::TriangleCount))
            .expect("admitted")
            .wait()
            .expect("completes");
    }
    let report = service.report();
    let snapshot = service.metrics_snapshot();
    assert_eq!(
        snapshot.counters["sisa_queries_completed_total"],
        report.completed
    );
    assert_eq!(snapshot.counters["sisa_queries_submitted_total"], 3);
    assert_eq!(
        snapshot.counters["sisa_graph_loads_total"],
        report.graph_loads
    );
    let latency = &snapshot.histograms["sisa_query_latency_ns"];
    assert_eq!(latency.count, report.completed, "one span per completion");
    assert!(latency.p50 > 0 && latency.p99 >= latency.p50);
    assert_eq!(snapshot.gauges["sisa_admission_in_flight"], 0);
    let text = snapshot.to_prometheus();
    assert!(text.contains("sisa_queries_completed_total 3"), "{text}");
    assert!(text.contains("sisa_query_latency_ns_bucket"), "{text}");
    service.close();
}
