//! Admission control: bounded in-flight queues and per-tenant quotas.
//!
//! Every query passes through [`Admission::try_admit`] before it may enter
//! the dispatch queue. The controller enforces two limits — a global
//! in-flight cap (the bounded queue that keeps overload from growing memory
//! without bound) and a per-tenant in-flight quota (isolation between
//! tenants) — and answers refusals with an explicit
//! [`Rejection`]`{ retry_after_ms }` instead of blocking.

use crate::query::Rejection;
use sisa_core::MetricsRegistry;
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

/// Limits enforced by the admission controller.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AdmissionConfig {
    /// Maximum queries in flight (queued + executing) across all tenants.
    pub queue_capacity: usize,
    /// Maximum queries in flight per tenant.
    pub per_tenant_inflight: usize,
    /// Base retry hint returned with rejections, scaled up with load, in
    /// milliseconds.
    pub retry_after_ms: u64,
}

impl Default for AdmissionConfig {
    fn default() -> Self {
        AdmissionConfig {
            queue_capacity: 256,
            per_tenant_inflight: 16,
            retry_after_ms: 20,
        }
    }
}

#[derive(Debug, Default)]
struct AdmState {
    in_flight: usize,
    per_tenant: BTreeMap<String, usize>,
    rejected: u64,
}

/// The back-off hint for a rejection issued while `occupancy` of `capacity`
/// global queue slots are taken: the configured base at an empty queue,
/// growing linearly to 5× base at a full queue. Monotone in `occupancy`, so
/// clients back off proportionally harder the deeper the congestion.
fn retry_hint(base_ms: u64, occupancy: usize, capacity: usize) -> u64 {
    let base = base_ms.max(1);
    if capacity == 0 {
        return base.saturating_mul(5);
    }
    base.saturating_add(base.saturating_mul(4).saturating_mul(occupancy as u64) / capacity as u64)
}

/// The shared admission controller (one per service).
#[derive(Debug)]
pub struct Admission {
    cfg: AdmissionConfig,
    state: Mutex<AdmState>,
    metrics: Option<Arc<MetricsRegistry>>,
}

impl Admission {
    /// Creates a controller with the given limits.
    #[must_use]
    pub fn new(cfg: AdmissionConfig) -> Self {
        Admission {
            cfg,
            state: Mutex::new(AdmState::default()),
            metrics: None,
        }
    }

    /// Creates a controller that publishes its in-flight gauges (global and
    /// per tenant) and its rejection counter to a metrics registry.
    #[must_use]
    pub fn with_metrics(cfg: AdmissionConfig, metrics: Arc<MetricsRegistry>) -> Self {
        Admission {
            cfg,
            state: Mutex::new(AdmState::default()),
            metrics: Some(metrics),
        }
    }

    /// Publishes the in-flight gauges after a state change touching `tenant`.
    /// A tenant that drops to zero in flight has its labelled gauge
    /// *removed* rather than set to zero — otherwise every tenant name ever
    /// seen would stay resident in the metrics registry (and in every
    /// scrape) forever, the same leak the in-flight map itself avoids by
    /// pruning zero entries.
    fn publish(&self, state: &AdmState, tenant: &str) {
        if let Some(metrics) = &self.metrics {
            metrics.gauge_set("sisa_admission_in_flight", state.in_flight as i64);
            let name = format!("sisa_admission_tenant_in_flight{{tenant=\"{tenant}\"}}");
            match state.per_tenant.get(tenant) {
                Some(&n) => metrics.gauge_set(&name, n as i64),
                None => {
                    metrics.gauge_remove(&name);
                }
            }
        }
    }

    /// Reserves one in-flight slot for `tenant`, or rejects with a back-off
    /// hint. Every successful admit must be paired with exactly one
    /// [`Admission::complete`].
    ///
    /// # Errors
    ///
    /// Returns the [`Rejection`] when the global queue or the tenant's quota
    /// is full.
    pub fn try_admit(&self, tenant: &str) -> Result<(), Rejection> {
        let mut state = self.state.lock().expect("admission lock");
        if state.in_flight >= self.cfg.queue_capacity {
            state.rejected += 1;
            if let Some(metrics) = &self.metrics {
                metrics.counter_add("sisa_admission_rejected_total", 1);
            }
            // Scale the hint with actual queue occupancy so heavier
            // congestion backs clients off proportionally harder.
            let retry = retry_hint(
                self.cfg.retry_after_ms,
                state.in_flight,
                self.cfg.queue_capacity,
            );
            return Err(Rejection {
                retry_after_ms: retry,
                reason: format!(
                    "service saturated: {} queries in flight (capacity {})",
                    state.in_flight, self.cfg.queue_capacity
                ),
            });
        }
        let tenant_inflight = state.per_tenant.get(tenant).copied().unwrap_or(0);
        if tenant_inflight >= self.cfg.per_tenant_inflight {
            state.rejected += 1;
            if let Some(metrics) = &self.metrics {
                metrics.counter_add("sisa_admission_rejected_total", 1);
            }
            return Err(Rejection {
                retry_after_ms: retry_hint(
                    self.cfg.retry_after_ms,
                    state.in_flight,
                    self.cfg.queue_capacity,
                ),
                reason: format!(
                    "tenant {tenant:?} quota exceeded: {tenant_inflight} in flight (quota {})",
                    self.cfg.per_tenant_inflight
                ),
            });
        }
        state.in_flight += 1;
        *state.per_tenant.entry(tenant.to_string()).or_insert(0) += 1;
        self.publish(&state, tenant);
        Ok(())
    }

    /// Releases the slot reserved by a successful [`Admission::try_admit`].
    pub fn complete(&self, tenant: &str) {
        let mut state = self.state.lock().expect("admission lock");
        state.in_flight = state.in_flight.saturating_sub(1);
        if let Some(n) = state.per_tenant.get_mut(tenant) {
            *n = n.saturating_sub(1);
            if *n == 0 {
                state.per_tenant.remove(tenant);
            }
        }
        self.publish(&state, tenant);
    }

    /// Queries currently in flight (queued + executing).
    #[must_use]
    pub fn in_flight(&self) -> usize {
        self.state.lock().expect("admission lock").in_flight
    }

    /// Total queries rejected over the controller's lifetime.
    #[must_use]
    pub fn rejected(&self) -> u64 {
        self.state.lock().expect("admission lock").rejected
    }

    /// The configured limits.
    #[must_use]
    pub fn config(&self) -> &AdmissionConfig {
        &self.cfg
    }

    /// The tenants for which the controller currently holds per-tenant
    /// state. Entries are pruned the moment a tenant's in-flight count hits
    /// zero, so this is bounded by the *concurrently active* tenants, not by
    /// every tenant name ever admitted; exposed so tests can pin that.
    #[must_use]
    pub fn tracked_tenants(&self) -> Vec<String> {
        self.state
            .lock()
            .expect("admission lock")
            .per_tenant
            .keys()
            .cloned()
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn global_capacity_bounds_in_flight_queries() {
        let adm = Admission::new(AdmissionConfig {
            queue_capacity: 2,
            per_tenant_inflight: 8,
            retry_after_ms: 5,
        });
        assert!(adm.try_admit("a").is_ok());
        assert!(adm.try_admit("b").is_ok());
        let rej = adm.try_admit("c").unwrap_err();
        assert!(rej.retry_after_ms >= 5, "{rej:?}");
        assert!(rej.reason.contains("saturated"));
        assert_eq!(adm.rejected(), 1);
        adm.complete("a");
        assert!(adm.try_admit("c").is_ok());
        assert_eq!(adm.in_flight(), 2);
    }

    #[test]
    fn per_tenant_quota_isolates_tenants() {
        let adm = Admission::new(AdmissionConfig {
            queue_capacity: 100,
            per_tenant_inflight: 1,
            retry_after_ms: 7,
        });
        assert!(adm.try_admit("noisy").is_ok());
        let rej = adm.try_admit("noisy").unwrap_err();
        assert_eq!(rej.retry_after_ms, 7);
        assert!(rej.reason.contains("quota"));
        assert!(adm.try_admit("quiet").is_ok(), "other tenants unaffected");
        adm.complete("noisy");
        assert!(adm.try_admit("noisy").is_ok());
    }

    #[test]
    fn metrics_track_in_flight_and_rejections() {
        let metrics = Arc::new(MetricsRegistry::new());
        let adm = Admission::with_metrics(
            AdmissionConfig {
                queue_capacity: 1,
                per_tenant_inflight: 1,
                retry_after_ms: 5,
            },
            Arc::clone(&metrics),
        );
        adm.try_admit("t").unwrap();
        let snap = metrics.snapshot();
        assert_eq!(snap.gauges["sisa_admission_in_flight"], 1);
        assert_eq!(
            snap.gauges["sisa_admission_tenant_in_flight{tenant=\"t\"}"],
            1
        );
        assert!(adm.try_admit("t").is_err());
        assert_eq!(metrics.counter("sisa_admission_rejected_total"), 1);
        adm.complete("t");
        let snap = metrics.snapshot();
        assert_eq!(snap.gauges["sisa_admission_in_flight"], 0);
        assert!(
            !snap
                .gauges
                .contains_key("sisa_admission_tenant_in_flight{tenant=\"t\"}"),
            "a tenant with nothing in flight has no labelled gauge at all"
        );
    }

    #[test]
    fn tenant_state_and_gauges_are_pruned_when_in_flight_drops_to_zero() {
        // Regression: per-tenant residue must be bounded by *concurrently
        // active* tenants. The in-flight map already pruned zero entries;
        // the labelled gauge used to stay at 0 forever.
        let metrics = Arc::new(MetricsRegistry::new());
        let adm = Admission::with_metrics(AdmissionConfig::default(), Arc::clone(&metrics));
        for i in 0..100 {
            let tenant = format!("one-shot-{i}");
            adm.try_admit(&tenant).unwrap();
            assert_eq!(adm.tracked_tenants(), vec![tenant.clone()]);
            adm.complete(&tenant);
            assert!(adm.tracked_tenants().is_empty());
        }
        let snap = metrics.snapshot();
        let labelled = snap
            .gauges
            .keys()
            .filter(|name| name.starts_with("sisa_admission_tenant_in_flight"))
            .count();
        assert_eq!(labelled, 0, "no per-tenant gauge survives completion");
        assert_eq!(snap.gauges["sisa_admission_in_flight"], 0);
    }

    #[test]
    fn retry_hints_scale_monotonically_with_queue_occupancy() {
        let base = 20;
        let capacity = 256;
        let mut previous = 0;
        for occupancy in 0..=capacity {
            let hint = retry_hint(base, occupancy, capacity);
            assert!(
                hint >= previous,
                "occupancy {occupancy}: hint {hint} < previous {previous}"
            );
            previous = hint;
        }
        assert_eq!(retry_hint(base, 0, capacity), base, "empty queue: base");
        assert_eq!(
            retry_hint(base, capacity, capacity),
            5 * base,
            "full queue: 5x base"
        );
        // A saturated rejection must back off at least as hard as the old
        // flat 2x hint did.
        assert!(retry_hint(base, capacity, capacity) >= 2 * base);
        // Degenerate configs stay sane.
        assert_eq!(retry_hint(0, 10, 0), 5, "zero base clamps to 1ms, 5x");
        assert!(retry_hint(u64::MAX, 1, 1) > 0, "no overflow panic");
    }

    #[test]
    fn deeper_congestion_produces_larger_hints_end_to_end() {
        let adm = Admission::new(AdmissionConfig {
            queue_capacity: 4,
            per_tenant_inflight: 1,
            retry_after_ms: 10,
        });
        adm.try_admit("a").unwrap();
        let shallow = adm.try_admit("a").unwrap_err().retry_after_ms;
        adm.try_admit("b").unwrap();
        adm.try_admit("c").unwrap();
        adm.try_admit("d").unwrap();
        let deep = adm.try_admit("a").unwrap_err().retry_after_ms;
        assert!(
            deep > shallow,
            "4/4 occupancy ({deep} ms) must hint harder than 1/4 ({shallow} ms)"
        );
    }

    #[test]
    fn completion_is_idempotent_per_slot() {
        let adm = Admission::new(AdmissionConfig::default());
        adm.try_admit("t").unwrap();
        adm.complete("t");
        adm.complete("t"); // stray completes must not underflow
        assert_eq!(adm.in_flight(), 0);
    }
}
