//! The worker pool: each worker owns one [`ShardedEngine`] and a map of
//! shard-resident graphs, and serially executes the job groups the
//! dispatcher routes to it.
//!
//! Workers are plain `std::thread`s fed by an `mpsc` channel — the workspace
//! is offline/vendored-shims only, so there is no async runtime. All engine
//! work happens inside a [`StatsScope`]: graph loads and evictions are
//! billed to the service's registry ledger, query execution to the
//! requesting tenant. Because every engine cycle is accrued inside exactly
//! one scope, the per-tenant ledgers plus the registry ledger telescope
//! exactly (integer counters) to the raw engine aggregates.

use crate::admission::Admission;
use crate::cache::{CachedResult, ResultCache};
use crate::query::{QueryEvent, QueryKind, QueryOutcome, QuerySpec, QueryStats};
use crate::service::{DispatchMsg, Job, JobGroup, LedgerInner};
use sisa_algorithms::setcentric::{
    k_clique_count, orient_by_degeneracy, star_pattern, subgraph_isomorphism_count, triangle_count,
    StreamingMiner,
};
use sisa_algorithms::SearchLimits;
use sisa_core::{
    BatchOp, ExecStats, MetricsRegistry, SetEngine, SetGraph, SetGraphConfig, ShardedEngine,
    SisaRuntime, StatsScope, Vertex,
};
use sisa_graph::{CsrGraph, GraphRegistry};
use std::collections::BTreeMap;
use std::sync::mpsc::{Receiver, Sender};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Control messages a worker accepts, processed strictly in order.
pub(crate) enum WorkerMsg {
    /// Execute one coalesced group of identical queries.
    Run(JobGroup),
    /// Drop the shard-resident sets of the named graph (the lease-release
    /// half of the registry's load-once/share-many contract).
    Evict(String),
    /// Reply with a clone of the engine's aggregate statistics. Serves as a
    /// barrier: the reply is sent only after all previously queued groups
    /// finished.
    Report(Sender<ExecStats>),
    /// Exit the worker loop.
    Shutdown,
}

/// A graph resident in one worker's engine: the degeneracy-oriented load
/// (clique kernels), the plain load (subgraph checks) and the registry lease
/// that keeps the CSR alive while resident.
struct ResidentGraph {
    /// The shared registry handle (the ref-counted lease).
    _lease: Arc<CsrGraph>,
    /// The per-name generation the lease was cut from: the key under which
    /// results computed against this load enter the result cache, and the
    /// staleness check against the registry's current generation.
    generation: u64,
    oriented: SetGraph,
    plain: SetGraph,
    queries_served: u64,
}

/// The incrementally-maintained dynamic graph of a name that has received
/// streaming mutations on this worker: a [`StreamingMiner`] plus the
/// registry generation its state corresponds to. While `generation` matches
/// the registry's current per-name generation, the maintained counts are
/// exact answers for unbudgeted triangle / tracked k-clique queries.
struct StreamState {
    generation: u64,
    miner: StreamingMiner,
}

pub(crate) struct Worker {
    pub(crate) engine: ShardedEngine<SisaRuntime>,
    pub(crate) registry: Arc<GraphRegistry>,
    pub(crate) ledger: Arc<Mutex<LedgerInner>>,
    pub(crate) admission: Arc<Admission>,
    pub(crate) metrics: Arc<MetricsRegistry>,
    pub(crate) cache: Arc<ResultCache>,
    pub(crate) graph_cfg: SetGraphConfig,
    pub(crate) progress_window_ops: usize,
    /// This worker's pool index, echoed on `DispatchMsg::Done`.
    index: usize,
    /// Back-channel to the dispatcher: one `Done` per executed group is the
    /// flow control that keeps scheduling order in the dispatcher's WFQ
    /// queues.
    done: Sender<DispatchMsg>,
    graphs: BTreeMap<String, ResidentGraph>,
    /// Clique sizes maintained incrementally for mutated graphs.
    stream_ks: Vec<usize>,
    streams: BTreeMap<String, StreamState>,
}

/// Saturating nanoseconds of a host duration.
fn ns(duration: Duration) -> u64 {
    u64::try_from(duration.as_nanos()).unwrap_or(u64::MAX)
}

impl Worker {
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn new(
        engine: ShardedEngine<SisaRuntime>,
        registry: Arc<GraphRegistry>,
        ledger: Arc<Mutex<LedgerInner>>,
        admission: Arc<Admission>,
        metrics: Arc<MetricsRegistry>,
        cache: Arc<ResultCache>,
        graph_cfg: SetGraphConfig,
        progress_window_ops: usize,
        stream_ks: Vec<usize>,
        index: usize,
        done: Sender<DispatchMsg>,
    ) -> Self {
        Worker {
            engine,
            registry,
            ledger,
            admission,
            metrics,
            cache,
            graph_cfg,
            progress_window_ops: progress_window_ops.max(1),
            index,
            done,
            graphs: BTreeMap::new(),
            stream_ks,
            streams: BTreeMap::new(),
        }
    }

    /// The worker thread's main loop.
    pub(crate) fn run(mut self, rx: &Receiver<WorkerMsg>) {
        while let Ok(msg) = rx.recv() {
            match msg {
                WorkerMsg::Run(group) => {
                    self.run_group(group);
                    let _ = self.done.send(DispatchMsg::Done { worker: self.index });
                }
                WorkerMsg::Evict(name) => self.evict(&name),
                WorkerMsg::Report(reply) => {
                    let _ = reply.send(self.engine.stats().clone());
                }
                WorkerMsg::Shutdown => break,
            }
        }
    }

    /// Loads `name` into shard-resident sets if it is not already resident
    /// *at the registry's current generation*. A resident load whose
    /// generation no longer matches (the registry evicted or replaced the
    /// name behind this worker's back, e.g. by capacity LRU) is evicted and
    /// reloaded fresh, so a worker can never serve a stale graph. The load
    /// cost is billed to the registry ledger (not to any tenant), which is
    /// what makes the second query on a graph charge zero additional load
    /// cycles.
    fn ensure_resident(&mut self, name: &str) -> Result<(), String> {
        if let Some(resident) = self.graphs.get(name) {
            if resident.generation == self.registry.generation_of(name) {
                return Ok(());
            }
            self.evict(name);
        }
        let lease = self
            .registry
            .acquire_lease(name)
            .ok_or_else(|| format!("unknown graph {name:?}"))?;
        let scope = StatsScope::begin(self.engine.stats());
        let (oriented, _ordering) =
            orient_by_degeneracy(&mut self.engine, &lease.graph, &self.graph_cfg);
        let plain = SetGraph::load(&mut self.engine, &lease.graph, &self.graph_cfg);
        let delta = scope.finish(self.engine.stats());
        {
            let mut ledger = self.ledger.lock().expect("ledger lock");
            ledger.registry_stats.merge(&delta);
            ledger.graph_loads += 1;
        }
        self.metrics.counter_add("sisa_graph_loads_total", 1);
        self.graphs.insert(
            name.to_string(),
            ResidentGraph {
                _lease: lease.graph,
                generation: lease.generation,
                oriented,
                plain,
                queries_served: 0,
            },
        );
        Ok(())
    }

    /// Deletes the shard-resident sets of `name` (both the static loads and
    /// any streaming state); the deletion cost is billed to the registry
    /// ledger.
    fn evict(&mut self, name: &str) {
        if let Some(stream) = self.streams.remove(name) {
            let scope = StatsScope::begin(self.engine.stats());
            stream.miner.unload(&mut self.engine);
            let delta = scope.finish(self.engine.stats());
            self.ledger
                .lock()
                .expect("ledger lock")
                .registry_stats
                .merge(&delta);
        }
        let Some(resident) = self.graphs.remove(name) else {
            return;
        };
        let scope = StatsScope::begin(self.engine.stats());
        for v in 0..resident.oriented.num_vertices() as Vertex {
            self.engine.delete(resident.oriented.neighborhood(v));
        }
        for v in 0..resident.plain.num_vertices() as Vertex {
            self.engine.delete(resident.plain.neighborhood(v));
        }
        let delta = scope.finish(self.engine.stats());
        {
            let mut ledger = self.ledger.lock().expect("ledger lock");
            ledger.registry_stats.merge(&delta);
            ledger.evictions += 1;
        }
        self.metrics.counter_add("sisa_graph_evictions_total", 1);
    }

    fn fail_group(&self, group: &JobGroup, error: &str) {
        let mut ledger = self.ledger.lock().expect("ledger lock");
        for job in &group.entries {
            ledger.record_failed(&job.tenant);
            self.metrics.counter_add("sisa_queries_failed_total", 1);
            let _ = job.events.send(QueryEvent::Failed(error.to_string()));
            self.admission.complete(&job.tenant);
        }
    }

    /// Settles a *panicked* execution: the first entry's tenant absorbs the
    /// partial delta (the cycles were really spent — discarding them would
    /// break the pool + registry ≡ engines conservation identity), every
    /// entry receives a `Failed` event, and every admission slot is
    /// released. The worker itself survives to serve the next group.
    fn attribute_panic(&self, group: &JobGroup, delta: &ExecStats, wall_ns: u64, error: &str) {
        self.metrics.counter_add("sisa_queries_panicked_total", 1);
        let mut ledger = self.ledger.lock().expect("ledger lock");
        for (i, job) in group.entries.iter().enumerate() {
            if i == 0 {
                ledger.record_panicked(&job.tenant, delta, wall_ns);
            } else {
                ledger.record_failed(&job.tenant);
            }
            self.metrics.counter_add("sisa_queries_failed_total", 1);
            let _ = job.events.send(QueryEvent::Failed(error.to_string()));
            self.admission.complete(&job.tenant);
        }
    }

    /// Executes one coalesced group: the query runs once, the first entry is
    /// billed for it, and every other entry receives the shared value with a
    /// zero-cost `coalesced` record. Mutations take their own path, and a
    /// query whose answer is an incrementally-maintained stream counter is
    /// served from it without re-mining.
    fn run_group(&mut self, group: JobGroup) {
        if group.spec.kind.is_mutation() {
            self.run_mutation(group);
            return;
        }
        if let Some(value) = self.stream_count_for(&group.spec) {
            self.serve_streamed(group, value);
            return;
        }
        if let Err(error) = self.ensure_resident(&group.spec.graph) {
            self.fail_group(&group, &error);
            return;
        }

        let limits = match group.spec.budget {
            Some(n) => SearchLimits::patterns(n),
            None => SearchLimits::unlimited(),
        };
        let window = self.progress_window_ops;

        let scope = StatsScope::begin(self.engine.stats());
        let started = Instant::now();
        let engine = &mut self.engine;
        let resident = self.graphs.get_mut(&group.spec.graph).expect("resident");
        let spec = &group.spec;
        let entries = &group.entries;
        // Kernels may assert on parameters a direct (non-wire) QuerySpec can
        // carry; a panic must not take the worker thread (and its resident
        // graphs) down, and the partial work must still be billed.
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| match spec.kind {
            QueryKind::TriangleCount if spec.budget.is_none() => {
                let value = batched_triangle_count(engine, &resident.oriented, window, entries);
                (value, false)
            }
            QueryKind::TriangleCount => {
                let run = triangle_count(engine, &resident.oriented, &limits);
                (run.result, run.truncated)
            }
            QueryKind::KCliqueCount { k } => {
                let run = k_clique_count(engine, &resident.oriented, k, &limits);
                (run.result, run.truncated)
            }
            QueryKind::StarCount { k } => {
                let pattern = star_pattern(k);
                let run = subgraph_isomorphism_count(engine, &resident.plain, &pattern, &limits);
                (run.result, run.truncated)
            }
            QueryKind::Mutate(_) => unreachable!("mutations take the run_mutation path"),
        }));
        let wall_ns = ns(started.elapsed());
        let delta = scope.finish(self.engine.stats());

        let (value, truncated) = match outcome {
            Ok(result) => result,
            Err(payload) => {
                let error = format!("query panicked: {}", panic_message(payload.as_ref()));
                self.attribute_panic(&group, &delta, wall_ns, &error);
                return;
            }
        };
        resident.queries_served += group.entries.len() as u64;

        // Publish the result under the generation of the lease it was
        // computed against: if the registry has since evicted or replaced
        // the name, its per-name generation already moved on and this entry
        // is stillborn — a stale hit is structurally impossible.
        let evicted = self.cache.insert(
            resident.generation,
            &group.spec,
            CachedResult {
                value,
                truncated,
                stats: QueryStats::from_delta(&delta, wall_ns),
            },
        );
        if evicted > 0 {
            self.metrics
                .counter_add("sisa_cache_evictions_total", evicted);
        }

        self.settle_group(&group, value, truncated, &delta, wall_ns, started, false);
    }

    /// Bills and answers every entry of an executed group: the first entry
    /// absorbs the execution delta (as a query or, when `mutation`, in the
    /// tenant's `mutations` column), every other entry receives the shared
    /// value as a zero-cost coalesced response, and each terminal event
    /// releases its admission slot (the in-flight count covers queued *and*
    /// executing requests, so the slot frees only after the event).
    #[allow(clippy::too_many_arguments)]
    fn settle_group(
        &self,
        group: &JobGroup,
        value: u64,
        truncated: bool,
        delta: &ExecStats,
        wall_ns: u64,
        started: Instant,
        mutation: bool,
    ) {
        let mut ledger = self.ledger.lock().expect("ledger lock");
        for (i, job) in group.entries.iter().enumerate() {
            let queue_ns = ns(started.saturating_duration_since(job.submitted));
            let span_ns = ns(job.submitted.elapsed());
            let stats = if i == 0 {
                if mutation {
                    ledger.record_mutation(&job.tenant, delta, wall_ns);
                    self.metrics.counter_add("sisa_mutations_total", 1);
                } else {
                    ledger.record_query(&job.tenant, delta, wall_ns);
                }
                self.metrics.counter_add("sisa_queries_completed_total", 1);
                QueryStats::from_delta(delta, wall_ns)
            } else {
                ledger.record_coalesced(&job.tenant);
                self.metrics.counter_add("sisa_queries_completed_total", 1);
                self.metrics.counter_add("sisa_queries_coalesced_total", 1);
                QueryStats::coalesced()
            }
            .with_spans(queue_ns, wall_ns, span_ns);
            self.metrics.observe("sisa_query_queue_ns", queue_ns);
            self.metrics.observe("sisa_query_latency_ns", span_ns);
            let _ = job.events.send(QueryEvent::Done(QueryOutcome {
                value,
                truncated,
                stats,
            }));
            self.admission.complete(&job.tenant);
        }
    }

    /// The maintained stream counter answering `spec`, if any: unbudgeted
    /// triangle counts (`k = 3`) and tracked k-clique counts over a graph
    /// whose stream state matches the registry's *current* generation. A
    /// stale stream (the registry moved the name since the last mutation)
    /// never answers.
    fn stream_count_for(&self, spec: &QuerySpec) -> Option<u64> {
        if spec.budget.is_some() {
            return None;
        }
        let k = match spec.kind {
            QueryKind::TriangleCount => 3,
            QueryKind::KCliqueCount { k } => k,
            _ => return None,
        };
        let state = self.streams.get(&spec.graph)?;
        if state.generation != self.registry.generation_of(&spec.graph) {
            return None;
        }
        state.miner.count(k)
    }

    /// Serves a group from an incrementally-maintained stream counter: one
    /// host op to read it (billed to the first entry's tenant), with the
    /// value published to the result cache under the stream's generation so
    /// repeats hit at the dispatcher.
    fn serve_streamed(&mut self, group: JobGroup, value: u64) {
        let scope = StatsScope::begin(self.engine.stats());
        let started = Instant::now();
        self.engine.host_ops(1);
        let wall_ns = ns(started.elapsed());
        let delta = scope.finish(self.engine.stats());
        let generation = self
            .streams
            .get(&group.spec.graph)
            .expect("stream state answered")
            .generation;
        self.metrics.counter_add("sisa_stream_serves_total", 1);
        let evicted = self.cache.insert(
            generation,
            &group.spec,
            CachedResult {
                value,
                truncated: false,
                stats: QueryStats::from_delta(&delta, wall_ns),
            },
        );
        if evicted > 0 {
            self.metrics
                .counter_add("sisa_cache_evictions_total", evicted);
        }
        self.settle_group(&group, value, false, &delta, wall_ns, started, false);
    }

    /// Applies one streaming mutation: brings this worker's incremental
    /// stream state up to date, applies the delta as priced set-engine work
    /// billed to the mutating tenant, then publishes the successor graph
    /// through the registry's replace path — the generation tick is what
    /// structurally invalidates every cached result for the name.
    fn run_mutation(&mut self, group: JobGroup) {
        let QueryKind::Mutate(delta) = group.spec.kind.clone() else {
            unreachable!("run_mutation requires a mutate spec");
        };
        let name = group.spec.graph.clone();
        let Some(pre) = self.registry.acquire_lease(&name) else {
            self.fail_group(&group, &format!("unknown graph {name:?}"));
            return;
        };

        // (1) Make the stream state current. A first mutation — or one
        // arriving after the registry moved the name, or naming vertices
        // beyond the miner's capacity — rebuilds from the pre-mutation CSR,
        // billed to the registry ledger like any graph load. Steady-state
        // mutations skip this entirely; that asymmetry is the entire point
        // of the incremental path.
        let stale = self
            .streams
            .get(&name)
            .is_none_or(|s| s.generation != pre.generation || !s.miner.fits(&delta));
        if stale {
            let scope = StatsScope::begin(self.engine.stats());
            if let Some(old) = self.streams.remove(&name) {
                old.miner.unload(&mut self.engine);
            }
            let capacity = pre
                .graph
                .num_vertices()
                .max(delta.max_vertex().map_or(0, |v| v as usize + 1));
            let miner = StreamingMiner::load_with_capacity(
                &mut self.engine,
                &pre.graph,
                &self.stream_ks,
                capacity,
            );
            let load_delta = scope.finish(self.engine.stats());
            self.ledger
                .lock()
                .expect("ledger lock")
                .registry_stats
                .merge(&load_delta);
            self.metrics.counter_add("sisa_stream_loads_total", 1);
            self.streams.insert(
                name.clone(),
                StreamState {
                    generation: pre.generation,
                    miner,
                },
            );
        }

        // (2) Apply incrementally, billed to the mutating tenant.
        let scope = StatsScope::begin(self.engine.stats());
        let started = Instant::now();
        let engine = &mut self.engine;
        let state = self.streams.get_mut(&name).expect("stream state");
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            state.miner.apply(engine, &delta)
        }));
        let wall_ns = ns(started.elapsed());
        let exec_delta = scope.finish(self.engine.stats());
        let report = match outcome {
            Ok(report) => report,
            Err(payload) => {
                // The miner may be mid-update and inconsistent: drop it (the
                // next mutation rebuilds), bill the cleanup to the registry
                // ledger and the partial work to the tenant.
                let error = format!("mutation panicked: {}", panic_message(payload.as_ref()));
                self.drop_stream_state(&name);
                self.attribute_panic(&group, &exec_delta, wall_ns, &error);
                return;
            }
        };

        // (3) Publish the successor through the replace path.
        let Some(lease) = self.registry.mutate(&name, &delta) else {
            // The name was evicted between the lease and the publish (a
            // racing evict_graph): the applied set work was real, so it
            // folds into the registry ledger, and the request fails.
            self.drop_stream_state(&name);
            self.ledger
                .lock()
                .expect("ledger lock")
                .registry_stats
                .merge(&exec_delta);
            self.fail_group(&group, &format!("graph {name:?} was evicted mid-mutation"));
            return;
        };
        let state = self.streams.get_mut(&name).expect("stream state");
        state.generation = lease.generation;
        debug_assert_eq!(
            lease.graph.num_edges(),
            state.miner.num_edges(),
            "incremental state and registry successor disagree"
        );
        self.settle_group(
            &group,
            report.applied as u64,
            false,
            &exec_delta,
            wall_ns,
            started,
            true,
        );
    }

    /// Unloads and forgets `name`'s stream state, billing the set deletions
    /// to the registry ledger.
    fn drop_stream_state(&mut self, name: &str) {
        let Some(state) = self.streams.remove(name) else {
            return;
        };
        let scope = StatsScope::begin(self.engine.stats());
        state.miner.unload(&mut self.engine);
        let cleanup = scope.finish(self.engine.stats());
        self.ledger
            .lock()
            .expect("ledger lock")
            .registry_stats
            .merge(&cleanup);
    }
}

/// Best-effort extraction of a panic payload's message.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> &str {
    payload
        .downcast_ref::<&'static str>()
        .copied()
        .or_else(|| payload.downcast_ref::<String>().map(String::as_str))
        .unwrap_or("non-string panic payload")
}

/// Unbudgeted triangle counting through the threaded
/// [`ShardedEngine::execute`] batch path: one `IntersectCount` per oriented
/// edge, flushed in windows, with a streamed progress frame per window.
///
/// Produces exactly the same count as the serial
/// [`sisa_algorithms::setcentric::triangle_count`] kernel (both sum
/// `|N⁺(v) ∩ N⁺(w)|` over every oriented edge `(v, w)`), and the same
/// per-edge `host_ops(2)` loop-control pricing.
fn batched_triangle_count(
    engine: &mut ShardedEngine<SisaRuntime>,
    oriented: &SetGraph,
    window: usize,
    entries: &[Job],
) -> u64 {
    let total_ops: u64 = oriented
        .vertices()
        .map(|v| oriented.neighbors(v).len() as u64)
        .sum();
    let mut ops: Vec<BatchOp> = Vec::with_capacity(window.min(total_ops as usize + 1));
    let mut done: u64 = 0;
    let mut partial: u64 = 0;
    let flush = |engine: &mut ShardedEngine<SisaRuntime>,
                 ops: &mut Vec<BatchOp>,
                 done: &mut u64,
                 partial: &mut u64| {
        if ops.is_empty() {
            return;
        }
        let results = engine.execute(ops);
        *done += ops.len() as u64;
        *partial += results.into_iter().map(|r| r.count() as u64).sum::<u64>();
        ops.clear();
        for job in entries {
            let _ = job.events.send(QueryEvent::Progress {
                done_ops: *done,
                total_ops,
                partial: *partial,
            });
        }
    };
    for v in oriented.vertices() {
        let nv = oriented.neighborhood(v);
        for &w in oriented.neighbors(v) {
            engine.host_ops(2);
            ops.push(BatchOp::IntersectCount(nv, oriented.neighborhood(w)));
            if ops.len() >= window {
                flush(engine, &mut ops, &mut done, &mut partial);
            }
        }
    }
    flush(engine, &mut ops, &mut done, &mut partial);
    partial
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::admission::AdmissionConfig;
    use crate::query::QuerySpec;
    use sisa_core::{PartitionStrategy, SisaConfig};
    use std::sync::mpsc::channel;

    fn worker() -> Worker {
        let (done, _done_rx) = channel();
        Worker::new(
            ShardedEngine::sisa(2, PartitionStrategy::Modulo, SisaConfig::default()),
            Arc::new(GraphRegistry::new(1)),
            Arc::new(Mutex::new(LedgerInner::default())),
            Arc::new(Admission::new(AdmissionConfig::default())),
            Arc::new(MetricsRegistry::new()),
            Arc::new(ResultCache::new(16, 1 << 20)),
            SetGraphConfig::default(),
            64,
            vec![3, 4],
            0,
            done,
        )
    }

    #[test]
    fn panic_attribution_folds_partial_work_and_releases_admission() {
        let mut w = worker();
        w.engine.set_universe(16);
        // Real partial engine work, carved out exactly like run_group's scope
        // around a kernel that panics midway would carve it.
        let scope = StatsScope::begin(w.engine.stats());
        let s = w.engine.create_sorted([1, 2, 3]);
        w.engine.host_ops(10);
        w.engine.delete(s);
        let delta = scope.finish(w.engine.stats());
        assert!(delta.total_cycles() > 0, "the partial delta is non-trivial");

        w.admission.try_admit("t").unwrap();
        let (events, rx) = channel();
        let spec = QuerySpec::new("g", QueryKind::KCliqueCount { k: 0 });
        let group = JobGroup {
            spec: spec.clone(),
            entries: vec![Job {
                tenant: "t".to_string(),
                spec,
                events,
                submitted: Instant::now(),
            }],
        };
        w.attribute_panic(&group, &delta, 5, "query panicked: boom");

        assert_eq!(
            rx.recv().unwrap(),
            QueryEvent::Failed("query panicked: boom".to_string())
        );
        assert_eq!(w.admission.in_flight(), 0, "the slot is released");
        let ledger = w.ledger.lock().unwrap();
        let usage = &ledger.tenants["t"];
        assert_eq!(usage.failed, 1);
        assert_eq!(usage.queries, 0);
        // The fold is exact (bit-exact energy included): nothing the engine
        // spent is dropped, preserving pool + registry ≡ engines.
        assert_eq!(usage.stats, delta);
        assert_eq!(usage.stats.energy_nj.to_bits(), delta.energy_nj.to_bits());
        assert_eq!(w.metrics.counter("sisa_queries_panicked_total"), 1);
        assert_eq!(w.metrics.counter("sisa_queries_failed_total"), 1);
        assert_eq!(w.metrics.counter("sisa_queries_completed_total"), 0);
    }

    #[test]
    fn panic_messages_unwrap_static_and_owned_payloads() {
        let boxed: Box<dyn std::any::Any + Send> = Box::new("static message");
        assert_eq!(panic_message(boxed.as_ref()), "static message");
        let boxed: Box<dyn std::any::Any + Send> = Box::new(format!("owned {}", 7));
        assert_eq!(panic_message(boxed.as_ref()), "owned 7");
        let boxed: Box<dyn std::any::Any + Send> = Box::new(42u32);
        assert_eq!(panic_message(boxed.as_ref()), "non-string panic payload");
    }
}
