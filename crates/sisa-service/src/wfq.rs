//! Weighted fair queueing for the dispatcher: per-tenant queues drained by
//! **weighted deficit round-robin** (WDRR).
//!
//! Each backlogged tenant holds a FIFO of queued items. A *round* visits
//! every tenant that was backlogged when the round formed, granting each a
//! deficit of `weight` credits (every item costs one credit — queries are
//! admitted one at a time, so unit cost is exact, and unused credit is
//! discarded when a queue drains, the standard DRR reset). Within a round,
//! tenants are visited in ascending backlog order: the lightly-loaded
//! tenant is served *first*, so a tenant flooding the queue can delay
//! others by at most its per-round share — never starve them. With equal
//! weights and `k` backlogged tenants every tenant gets `1/k` of worker
//! throughput regardless of arrival rates; weights shift that share
//! proportionally ([`ServiceConfig::tenant_weights`]).
//!
//! The scheduler is deliberately a plain data structure (no threads, no
//! clocks) so fairness is unit-testable: feed arrivals, pop departures,
//! assert the order.
//!
//! [`ServiceConfig::tenant_weights`]: crate::ServiceConfig::tenant_weights

use std::collections::{BTreeMap, VecDeque};

/// A per-tenant weighted-deficit-round-robin queue of `T`.
#[derive(Debug)]
pub struct WfqScheduler<T> {
    weights: BTreeMap<String, u64>,
    queues: BTreeMap<String, VecDeque<T>>,
    /// The current round: `(tenant, remaining credit)` in service order.
    round: VecDeque<(String, u64)>,
    len: usize,
}

impl<T> WfqScheduler<T> {
    /// Creates a scheduler with explicit per-tenant weights; tenants absent
    /// from the map weigh `1`. Zero weights are clamped to `1` (a zero
    /// weight would starve the tenant, which is exactly what WFQ exists to
    /// prevent).
    #[must_use]
    pub fn new(weights: BTreeMap<String, u64>) -> Self {
        WfqScheduler {
            weights,
            queues: BTreeMap::new(),
            round: VecDeque::new(),
            len: 0,
        }
    }

    /// The effective weight of `tenant`.
    #[must_use]
    pub fn weight(&self, tenant: &str) -> u64 {
        self.weights.get(tenant).copied().unwrap_or(1).max(1)
    }

    /// Total queued items across all tenants.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether nothing is queued.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Queued items of one tenant.
    #[must_use]
    pub fn depth(&self, tenant: &str) -> usize {
        self.queues.get(tenant).map_or(0, VecDeque::len)
    }

    /// Appends an item to `tenant`'s queue.
    pub fn enqueue(&mut self, tenant: &str, item: T) {
        self.queues
            .entry(tenant.to_string())
            .or_default()
            .push_back(item);
        self.len += 1;
    }

    /// Starts a new round over the currently backlogged tenants, shortest
    /// queue first (ties broken by name for determinism), each with a fresh
    /// deficit of `weight` credits.
    fn form_round(&mut self) {
        let mut tenants: Vec<(&String, usize)> = self
            .queues
            .iter()
            .filter(|(_, queue)| !queue.is_empty())
            .map(|(tenant, queue)| (tenant, queue.len()))
            .collect();
        tenants.sort_by(|a, b| a.1.cmp(&b.1).then_with(|| a.0.cmp(b.0)));
        self.round = tenants
            .into_iter()
            .map(|(tenant, _)| {
                let credit = self.weights.get(tenant).copied().unwrap_or(1).max(1);
                (tenant.clone(), credit)
            })
            .collect();
    }

    /// Removes and returns the next item in WDRR order, with its tenant.
    pub fn pop(&mut self) -> Option<(String, T)> {
        if self.len == 0 {
            return None;
        }
        loop {
            let Some((tenant, credit)) = self.round.pop_front() else {
                self.form_round();
                continue;
            };
            let Some(queue) = self.queues.get_mut(&tenant) else {
                continue;
            };
            let Some(item) = queue.pop_front() else {
                // Queue drained mid-round (or emptied by drain_matching):
                // the unused deficit is discarded, per standard DRR, and the
                // empty per-tenant entry is pruned so one-shot tenants leave
                // no residue behind.
                self.queues.remove(&tenant);
                continue;
            };
            self.len -= 1;
            let drained = queue.is_empty();
            if credit > 1 && !drained {
                self.round.push_front((tenant.clone(), credit - 1));
            }
            if drained {
                self.queues.remove(&tenant);
            }
            return Some((tenant, item));
        }
    }

    /// Removes every queued item matching `pred`, across all tenants, in
    /// per-tenant FIFO order, up to `limit` items — the coalescing hook: the
    /// dispatcher pops one item, then drains its identical siblings so one
    /// execution answers them all. Round credits are untouched; a tenant's
    /// coalesced items simply no longer occupy its queue.
    pub fn drain_matching<F>(&mut self, limit: usize, mut pred: F) -> Vec<(String, T)>
    where
        F: FnMut(&T) -> bool,
    {
        let mut drained = Vec::new();
        for (tenant, queue) in &mut self.queues {
            let mut kept = VecDeque::with_capacity(queue.len());
            while let Some(item) = queue.pop_front() {
                if drained.len() < limit && pred(&item) {
                    drained.push((tenant.clone(), item));
                } else {
                    kept.push_back(item);
                }
            }
            *queue = kept;
        }
        // Entries fully emptied by the drain are pruned (round credits are
        // untouched; `pop` skips and prunes stale round entries).
        self.queues.retain(|_, queue| !queue.is_empty());
        self.len -= drained.len();
        drained
    }

    /// Removes and returns everything queued (shutdown drain), in pop order
    /// semantics-free tenant order.
    pub fn drain_all(&mut self) -> Vec<(String, T)> {
        let mut drained = Vec::new();
        for (tenant, queue) in &mut self.queues {
            while let Some(item) = queue.pop_front() {
                drained.push((tenant.clone(), item));
            }
        }
        self.len = 0;
        self.round.clear();
        self.queues.clear();
        drained
    }

    /// The tenants for which the scheduler currently holds *any* state in
    /// its queue map. With pruning this always equals [`Self::backlogged`];
    /// it exists so tests can pin that one-shot tenants leave no residue.
    #[must_use]
    pub fn tracked_tenants(&self) -> Vec<String> {
        self.queues.keys().cloned().collect()
    }

    /// The tenants currently holding a non-empty queue.
    #[must_use]
    pub fn backlogged(&self) -> Vec<String> {
        self.queues
            .iter()
            .filter(|(_, queue)| !queue.is_empty())
            .map(|(tenant, _)| tenant.clone())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn equal_weights() -> WfqScheduler<u32> {
        WfqScheduler::new(BTreeMap::new())
    }

    /// Pops everything, returning just the tenant service order.
    fn service_order(s: &mut WfqScheduler<u32>) -> Vec<String> {
        let mut order = Vec::new();
        while let Some((tenant, _)) = s.pop() {
            order.push(tenant);
        }
        order
    }

    #[test]
    fn a_flooding_tenant_cannot_starve_a_light_one() {
        let mut s = equal_weights();
        for i in 0..10 {
            s.enqueue("heavy", i);
        }
        s.enqueue("light", 100);
        // Shortest queue first: light is served in the very first round,
        // then heavy drains alone.
        let order = service_order(&mut s);
        assert_eq!(order[0], "light");
        assert_eq!(order.len(), 11);
        assert!(order[1..].iter().all(|t| t == "heavy"));
    }

    #[test]
    fn equal_weights_alternate_between_backlogged_tenants() {
        let mut s = equal_weights();
        for i in 0..4 {
            s.enqueue("a", i);
            s.enqueue("b", 10 + i);
        }
        let order = service_order(&mut s);
        // One item per tenant per round: strict alternation (ties by name).
        assert_eq!(order, vec!["a", "b", "a", "b", "a", "b", "a", "b"]);
    }

    #[test]
    fn weights_shift_the_per_round_share_proportionally() {
        let mut s: WfqScheduler<u32> = WfqScheduler::new(BTreeMap::from([("big".to_string(), 3)]));
        for i in 0..6 {
            s.enqueue("big", i);
        }
        for i in 0..2 {
            s.enqueue("small", 10 + i);
        }
        let order = service_order(&mut s);
        // Per round (shorter queue first): small once, then big ×3 —
        // a 3:1 throughput split while both stay backlogged.
        assert_eq!(
            order,
            vec!["small", "big", "big", "big", "small", "big", "big", "big"]
        );
    }

    #[test]
    fn zero_weights_are_clamped_not_starved() {
        let mut s: WfqScheduler<u32> = WfqScheduler::new(BTreeMap::from([("z".to_string(), 0)]));
        assert_eq!(s.weight("z"), 1);
        s.enqueue("z", 1);
        s.enqueue("other", 2);
        let order = service_order(&mut s);
        assert!(order.contains(&"z".to_string()));
    }

    #[test]
    fn fifo_order_is_preserved_within_a_tenant() {
        let mut s = equal_weights();
        for i in 0..5 {
            s.enqueue("t", i);
        }
        let mut items = Vec::new();
        while let Some((_, item)) = s.pop() {
            items.push(item);
        }
        assert_eq!(items, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn drain_matching_coalesces_across_tenants_up_to_the_limit() {
        let mut s = equal_weights();
        s.enqueue("a", 7);
        s.enqueue("a", 3);
        s.enqueue("b", 7);
        s.enqueue("b", 7);
        let drained = s.drain_matching(2, |&item| item == 7);
        assert_eq!(drained.len(), 2, "limit respected");
        assert!(drained.iter().all(|(_, item)| *item == 7));
        assert_eq!(s.len(), 2);
        // The non-matching item and the over-limit duplicate remain.
        let rest: Vec<u32> = {
            let mut rest = Vec::new();
            while let Some((_, item)) = s.pop() {
                rest.push(item);
            }
            rest
        };
        assert!(rest.contains(&3));
        assert!(rest.contains(&7), "over-limit duplicate still queued");
    }

    #[test]
    fn emptied_tenant_queues_are_pruned_without_disturbing_round_credits() {
        // Regression: `queues` used to keep an empty VecDeque per tenant
        // forever, so state grew with every tenant name ever seen.
        let mut s: WfqScheduler<u32> = WfqScheduler::new(BTreeMap::from([("big".to_string(), 3)]));
        for i in 0..6 {
            s.enqueue("big", i);
        }
        for i in 0..2 {
            s.enqueue("small", 10 + i);
        }
        // Same WDRR service order as before pruning existed.
        let mut order = Vec::new();
        let mut tracked_peak = s.tracked_tenants().len();
        while let Some((tenant, _)) = s.pop() {
            order.push(tenant);
            tracked_peak = tracked_peak.max(s.tracked_tenants().len());
            assert_eq!(
                s.tracked_tenants(),
                s.backlogged(),
                "no empty queue entries linger after a pop"
            );
        }
        assert_eq!(
            order,
            vec!["small", "big", "big", "big", "small", "big", "big", "big"]
        );
        assert_eq!(tracked_peak, 2);
        assert!(s.tracked_tenants().is_empty());

        // drain_matching that empties a tenant prunes its entry too.
        s.enqueue("a", 7);
        s.enqueue("b", 7);
        s.enqueue("b", 3);
        let drained = s.drain_matching(usize::MAX, |&item| item == 7);
        assert_eq!(drained.len(), 2);
        assert_eq!(s.tracked_tenants(), vec!["b".to_string()]);

        // drain_all clears the map outright.
        s.enqueue("c", 1);
        s.drain_all();
        assert!(s.tracked_tenants().is_empty());
    }

    #[test]
    fn late_arrivals_join_the_next_round_and_counters_stay_exact() {
        let mut s = equal_weights();
        s.enqueue("a", 1);
        assert_eq!(s.pop().unwrap(), ("a".to_string(), 1));
        assert!(s.pop().is_none());
        s.enqueue("b", 2);
        assert_eq!(s.depth("b"), 1);
        assert_eq!(s.backlogged(), vec!["b"]);
        assert_eq!(s.pop().unwrap(), ("b".to_string(), 2));
        assert!(s.is_empty());
        let drained = s.drain_all();
        assert!(drained.is_empty());
    }
}
