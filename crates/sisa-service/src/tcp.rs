//! The TCP transport: line-delimited JSON over `std::net::TcpListener`.
//!
//! Each connection is served by its own thread and is *pipelined*: the
//! reader keeps accepting request lines while accepted queries drain on
//! scoped helper threads, so several queries submitted on one connection
//! execute concurrently. Every frame carries its request's `id` for
//! correlation, each frame is written atomically (one line under the shared
//! writer lock), and frames of different in-flight requests may interleave
//! on the wire in any order. Backpressure appears as `rejected` frames with
//! a `retry_after_ms` hint; malformed lines get `error` frames instead of a
//! dropped connection; `{"id": N, "query": "metrics"}` is answered inline
//! with a `metrics` snapshot frame without entering admission control.

use crate::protocol::{Frame, Request};
use crate::query::QueryEvent;
use crate::service::{QueryHandle, ServiceClient};
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// A running TCP front-end for a service.
pub struct TcpServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept: Option<JoinHandle<()>>,
}

impl TcpServer {
    /// Binds `bind_addr` (e.g. `"127.0.0.1:0"` for an ephemeral port) and
    /// starts accepting connections, serving queries through `client`.
    ///
    /// # Errors
    ///
    /// Returns the I/O error when the address cannot be bound.
    pub fn serve(client: ServiceClient, bind_addr: &str) -> std::io::Result<Self> {
        let listener = TcpListener::bind(bind_addr)?;
        let addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let stop = Arc::new(AtomicBool::new(false));
        let accept = {
            let stop = Arc::clone(&stop);
            std::thread::Builder::new()
                .name("sisa-service-accept".to_string())
                .spawn(move || accept_loop(&listener, &client, &stop))
                .expect("spawn accept thread")
        };
        Ok(TcpServer {
            addr,
            stop,
            accept: Some(accept),
        })
    }

    /// The bound address (useful with ephemeral ports).
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops accepting new connections and joins the accept thread.
    /// Established connections keep draining on their own threads.
    pub fn stop(mut self) {
        self.stop_impl();
    }

    fn stop_impl(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(join) = self.accept.take() {
            let _ = join.join();
        }
    }
}

impl Drop for TcpServer {
    fn drop(&mut self) {
        self.stop_impl();
    }
}

fn accept_loop(listener: &TcpListener, client: &ServiceClient, stop: &AtomicBool) {
    while !stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                let client = client.clone();
                let _ = std::thread::Builder::new()
                    .name("sisa-service-conn".to_string())
                    .spawn(move || {
                        let _ = handle_connection(stream, &client);
                    });
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(2));
            }
            Err(_) => break,
        }
    }
}

fn write_frame(stream: &mut TcpStream, frame: &Frame) -> std::io::Result<()> {
    let mut line = serde_json::to_string(frame)
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, format!("{e:?}")))?;
    line.push('\n');
    stream.write_all(line.as_bytes())?;
    stream.flush()
}

fn write_locked(writer: &Mutex<TcpStream>, frame: &Frame) -> std::io::Result<()> {
    let mut stream = writer.lock().expect("connection writer lock");
    write_frame(&mut stream, frame)
}

fn handle_connection(stream: TcpStream, client: &ServiceClient) -> std::io::Result<()> {
    stream.set_nonblocking(false)?;
    let reader = BufReader::new(stream.try_clone()?);
    let writer = Arc::new(Mutex::new(stream));
    // The scope keeps reading new request lines while accepted queries drain
    // on their own threads; it joins every drain before the connection
    // closes, so no frame is ever lost to a disconnect race on our side.
    std::thread::scope(|scope| -> std::io::Result<()> {
        for line in reader.lines() {
            let line = line?;
            if line.trim().is_empty() {
                continue;
            }
            let request = match Request::parse(&line) {
                Ok(request) => request,
                Err(error) => {
                    write_locked(&writer, &Frame::error(0, &error))?;
                    continue;
                }
            };
            if request.query == "metrics" {
                write_locked(
                    &writer,
                    &Frame::metrics(request.id, &client.metrics_snapshot()),
                )?;
                continue;
            }
            let spec = match request.spec() {
                Ok(spec) => spec,
                Err(error) => {
                    write_locked(&writer, &Frame::error(request.id, &error))?;
                    continue;
                }
            };
            match client.submit(&request.tenant, spec) {
                Err(rejection) => {
                    write_locked(&writer, &Frame::rejected(request.id, &rejection))?;
                }
                Ok(handle) => {
                    let writer = Arc::clone(&writer);
                    let id = request.id;
                    scope.spawn(move || drain_query(id, &handle, &writer));
                }
            }
        }
        Ok(())
    })
}

/// Streams one accepted query's frames until its terminal frame (or until
/// the peer goes away — write errors just end the drain).
fn drain_query(id: u64, handle: &QueryHandle, writer: &Mutex<TcpStream>) {
    loop {
        let frame = match handle.next_event() {
            Some(QueryEvent::Progress {
                done_ops,
                total_ops,
                partial,
            }) => Frame::progress(id, done_ops, total_ops, partial),
            Some(QueryEvent::Done(outcome)) => Frame::result(id, &outcome),
            Some(QueryEvent::Failed(error)) => Frame::error(id, &error),
            None => Frame::error(id, "service shut down mid-query"),
        };
        let terminal = frame.is_terminal();
        if write_locked(writer, &frame).is_err() || terminal {
            break;
        }
    }
}
