//! Query model of the service: what tenants ask for, what they get back,
//! and the per-query accounting carved out of the engine pool.

use sisa_core::ExecStats;
use sisa_graph::GraphDelta;

/// A mining query the service knows how to execute.
///
/// Every kind maps onto one of the set-centric kernels from
/// `sisa-algorithms`, run against the shard-resident [`sisa_core::SetGraph`]
/// the worker pool keeps per named graph.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum QueryKind {
    /// Triangle count on the degeneracy-oriented graph. Unbudgeted triangle
    /// counts execute through the batched `ShardedEngine::execute` path and
    /// stream progress frames.
    TriangleCount,
    /// k-clique count on the degeneracy-oriented graph (`k >= 2`).
    KCliqueCount {
        /// Clique size.
        k: usize,
    },
    /// Embedding count of the k-star pattern (one hub, `k` leaves) via the
    /// subgraph-isomorphism kernel — the service's "subgraph check".
    StarCount {
        /// Number of leaves of the star pattern (`k >= 1`).
        k: usize,
    },
    /// A streaming mutation: apply the delta (deletes, then inserts) to the
    /// named graph through the registry's replace path, ticking its
    /// generation, and maintain the worker's incremental clique counts.
    /// Never answered from the cache and never coalesced; the outcome value
    /// is the number of edge intents that actually changed the graph.
    Mutate(GraphDelta),
}

impl QueryKind {
    /// The wire name used by the line-delimited JSON protocol.
    #[must_use]
    pub fn wire_name(&self) -> &'static str {
        match self {
            QueryKind::TriangleCount => "tc",
            QueryKind::KCliqueCount { .. } => "kclique",
            QueryKind::StarCount { .. } => "star",
            QueryKind::Mutate(_) => "mutate",
        }
    }

    /// The kind's size parameter, if it has one.
    #[must_use]
    pub fn k(&self) -> Option<usize> {
        match self {
            QueryKind::TriangleCount | QueryKind::Mutate(_) => None,
            QueryKind::KCliqueCount { k } | QueryKind::StarCount { k } => Some(*k),
        }
    }

    /// Whether this kind mutates its graph. Mutations bypass the result
    /// cache (they *invalidate* it), are never coalesced, and are ordered
    /// against queries on the same graph by worker affinity.
    #[must_use]
    pub fn is_mutation(&self) -> bool {
        matches!(self, QueryKind::Mutate(_))
    }

    /// Parses a wire-level (`query`, `k`) pair, validating parameter bounds.
    ///
    /// # Errors
    ///
    /// Returns a protocol-level message for unknown query names, missing or
    /// out-of-range `k`.
    pub fn from_wire(query: &str, k: Option<u64>) -> Result<Self, String> {
        match query {
            "tc" => Ok(QueryKind::TriangleCount),
            "kclique" => {
                let k = k.ok_or("kclique requires field `k`")? as usize;
                if k < 2 {
                    return Err(format!("kclique requires k >= 2, got {k}"));
                }
                Ok(QueryKind::KCliqueCount { k })
            }
            "star" => {
                let k = k.ok_or("star requires field `k`")? as usize;
                if k < 1 {
                    return Err(format!("star requires k >= 1, got {k}"));
                }
                Ok(QueryKind::StarCount { k })
            }
            "mutate" => Err(
                "mutate carries edge lists, not a (query, k) pair; build it from the \
                 request's `inserts`/`deletes` fields"
                    .to_string(),
            ),
            other => Err(format!(
                "unknown query kind {other:?} (tc|kclique|star|mutate)"
            )),
        }
    }
}

impl std::fmt::Display for QueryKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.k() {
            Some(k) => write!(f, "{}{k}", self.wire_name()),
            None => f.write_str(self.wire_name()),
        }
    }
}

/// A fully-specified query: a kind over a named graph, optionally truncated
/// by a pattern budget (the paper's simulation-time cutoff).
///
/// Two specs that compare equal are *coalescible*: the batcher executes them
/// once and fans the result out to every requester.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct QuerySpec {
    /// The registered graph name (see `sisa_graph::registry`).
    pub graph: String,
    /// What to mine.
    pub kind: QueryKind,
    /// Optional pattern budget (`SearchLimits::patterns`); `None` is
    /// unlimited.
    pub budget: Option<u64>,
}

impl QuerySpec {
    /// An unbudgeted query of `kind` over `graph`.
    #[must_use]
    pub fn new(graph: impl Into<String>, kind: QueryKind) -> Self {
        QuerySpec {
            graph: graph.into(),
            kind,
            budget: None,
        }
    }

    /// Caps the query at `n` found patterns.
    #[must_use]
    pub fn with_budget(mut self, n: u64) -> Self {
        self.budget = Some(n);
        self
    }
}

/// Per-query resource accounting, carved out of the executing worker's
/// engine with a [`sisa_core::StatsScope`].
#[derive(Clone, Debug, Default, PartialEq)]
pub struct QueryStats {
    /// Simulated cycles this query added across all platform units.
    pub simulated_cycles: u64,
    /// Dynamic SISA instructions this query issued.
    pub instructions: u64,
    /// Simulated energy this query added, in nanojoules.
    pub energy_nj: f64,
    /// Host wall-clock time of the execution, in nanoseconds.
    pub wall_ns: u64,
    /// Span: admission to worker pickup (queueing + dispatch), nanoseconds.
    pub queue_ns: u64,
    /// Span: kernel execution on the worker, nanoseconds.
    pub execute_ns: u64,
    /// Span: admission to terminal response, nanoseconds.
    pub span_ns: u64,
    /// Whether this response was coalesced onto an identical in-flight
    /// query: the value is shared and the execution cost was billed to the
    /// query that actually ran, so the cost counters above are zero (the
    /// span durations are still this response's own real timings).
    pub coalesced: bool,
    /// Whether this response was served from the generation-keyed result
    /// cache. The cost counters above then describe what the *original*
    /// execution cost (informational); the hit itself billed **zero**
    /// engine cycles to anyone — it is accounted in the ledger's
    /// `cache_hits` column instead. `execute_ns` is zero; `queue_ns` and
    /// `span_ns` are this response's own real (dispatcher-side) timings.
    pub cache_hit: bool,
}

impl QueryStats {
    /// Builds the billing record from a scope delta and a wall-clock sample.
    #[must_use]
    pub fn from_delta(delta: &ExecStats, wall_ns: u64) -> Self {
        QueryStats {
            simulated_cycles: delta.total_cycles(),
            instructions: delta.total_instructions(),
            energy_nj: delta.energy_nj,
            wall_ns,
            coalesced: false,
            ..QueryStats::default()
        }
    }

    /// The zero-cost record attached to a coalesced response.
    #[must_use]
    pub fn coalesced() -> Self {
        QueryStats {
            coalesced: true,
            ..QueryStats::default()
        }
    }

    /// The record attached to a cache-hit response: the original execution's
    /// cost counters, marked `cache_hit` (the hit itself bills nothing —
    /// span fields are reset and should be re-attached with
    /// [`QueryStats::with_spans`] using the hit's own timings).
    #[must_use]
    pub fn from_cached(original: &QueryStats) -> Self {
        QueryStats {
            simulated_cycles: original.simulated_cycles,
            instructions: original.instructions,
            energy_nj: original.energy_nj,
            wall_ns: original.wall_ns,
            cache_hit: true,
            ..QueryStats::default()
        }
    }

    /// Attaches the per-query span durations (admit→pickup, kernel
    /// execution, admit→response).
    #[must_use]
    pub fn with_spans(mut self, queue_ns: u64, execute_ns: u64, span_ns: u64) -> Self {
        self.queue_ns = queue_ns;
        self.execute_ns = execute_ns;
        self.span_ns = span_ns;
        self
    }
}

/// A completed query.
#[derive(Clone, Debug, PartialEq)]
pub struct QueryOutcome {
    /// The mined count.
    pub value: u64,
    /// Whether the pattern budget stopped the search early.
    pub truncated: bool,
    /// What the query cost, attributed to its tenant.
    pub stats: QueryStats,
}

/// An admission-control refusal: the service is saturated (or shutting
/// down) and the client should retry after the hinted delay. This is the
/// *backpressure* path — queues are bounded, so overload produces explicit
/// rejections instead of unbounded memory growth.
#[derive(Clone, Debug, PartialEq)]
pub struct Rejection {
    /// Suggested client back-off before resubmitting, in milliseconds.
    pub retry_after_ms: u64,
    /// Which limit was hit.
    pub reason: String,
}

impl std::fmt::Display for Rejection {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} (retry after {} ms)",
            self.reason, self.retry_after_ms
        )
    }
}

/// One streamed event of an accepted query, in delivery order: zero or more
/// `Progress` frames, then exactly one `Done` or `Failed`.
#[derive(Clone, Debug, PartialEq)]
pub enum QueryEvent {
    /// A long batched query finished another window of batch operations.
    Progress {
        /// Batch operations completed so far.
        done_ops: u64,
        /// Total batch operations the query decomposed into.
        total_ops: u64,
        /// The running partial result.
        partial: u64,
    },
    /// The query completed.
    Done(QueryOutcome),
    /// The query could not be executed (e.g. unknown graph name).
    Failed(String),
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_parsing_validates_bounds() {
        assert_eq!(
            QueryKind::from_wire("tc", None).unwrap(),
            QueryKind::TriangleCount
        );
        assert_eq!(
            QueryKind::from_wire("kclique", Some(4)).unwrap(),
            QueryKind::KCliqueCount { k: 4 }
        );
        assert_eq!(
            QueryKind::from_wire("star", Some(2)).unwrap(),
            QueryKind::StarCount { k: 2 }
        );
        assert!(QueryKind::from_wire("kclique", Some(1)).is_err());
        assert!(QueryKind::from_wire("kclique", None).is_err());
        assert!(QueryKind::from_wire("star", Some(0)).is_err());
        assert!(QueryKind::from_wire("rank", None).is_err());
    }

    #[test]
    fn specs_coalesce_by_equality() {
        let a = QuerySpec::new("g", QueryKind::KCliqueCount { k: 3 });
        let b = QuerySpec::new("g", QueryKind::KCliqueCount { k: 3 });
        assert_eq!(a, b);
        assert_ne!(a, b.clone().with_budget(10));
        assert_ne!(a, QuerySpec::new("h", QueryKind::KCliqueCount { k: 3 }));
    }

    #[test]
    fn display_names_are_compact() {
        assert_eq!(QueryKind::TriangleCount.to_string(), "tc");
        assert_eq!(QueryKind::KCliqueCount { k: 5 }.to_string(), "kclique5");
        assert_eq!(QueryKind::StarCount { k: 3 }.to_string(), "star3");
        assert_eq!(QueryKind::Mutate(GraphDelta::new()).to_string(), "mutate");
    }

    #[test]
    fn mutations_are_flagged_and_not_wire_parseable_from_k_alone() {
        let kind = QueryKind::Mutate(GraphDelta::new().insert(0, 1));
        assert!(kind.is_mutation());
        assert_eq!(kind.k(), None);
        assert!(!QueryKind::TriangleCount.is_mutation());
        assert!(QueryKind::from_wire("mutate", None)
            .unwrap_err()
            .contains("inserts"));
    }
}
