//! # sisa-service
//!
//! A long-lived, multi-tenant **graph-mining query service** over pooled
//! sharded SISA engines — the framework layer that multiplexes many
//! concurrent mining workloads onto the simulated PIM platform (the
//! "graph-mining-as-a-service" item of the roadmap).
//!
//! The service is built from six pieces:
//!
//! * **Graph registry** ([`sisa_graph::registry::GraphRegistry`]) —
//!   load-once/share-many: named graphs are materialised once, loaded into
//!   shard-resident sets on exactly one affinity worker, leased immutably to
//!   queries (an [`std::sync::Arc`] ref-count) and evictable on demand.
//!   Every lease carries a per-name **generation** that ticks on each
//!   materialise, evict and replace, and [`RegistryConfig::max_resident`]
//!   bounds residency with LRU eviction.
//! * **Admission controller + batcher** ([`Admission`], the dispatcher) —
//!   bounded in-flight queues and per-tenant quotas answer overload with
//!   explicit [`Rejection`]`{ retry_after_ms }` responses (the hint scales
//!   with actual queue occupancy) instead of unbounded growth, and a
//!   coalescing window executes identical concurrent queries once.
//! * **Result cache** ([`ResultCache`]) — a bounded LRU keyed by
//!   *(graph generation, query spec)* consulted by the dispatcher before
//!   scheduling: a hit answers immediately with the stored value, bills
//!   zero engine cycles (the conservation identity stays exact; hits land
//!   in their own ledger column) and is invalidated structurally by the
//!   registry's generation ticks. Sized by
//!   [`ServiceConfig::cache_entries`] / [`ServiceConfig::cache_bytes`].
//! * **Streaming mutations** — the `mutate` request family
//!   ([`QueryKind::Mutate`]) applies batched edge inserts and deletes
//!   ([`GraphDelta`]) through the registry's replace path, ticking the
//!   per-name generation so every cached result for the graph dies
//!   structurally. The affinity worker maintains triangle / k-clique counts
//!   **incrementally** ([`ServiceConfig::stream_ks`]): per changed edge it
//!   intersects the endpoints' adjacency sets on the set engine — priced on
//!   the PIM cost model and billed to the mutating tenant — instead of
//!   recomputing from scratch, and serves subsequent unbudgeted counts
//!   straight from the maintained counters. Mutations are never coalesced
//!   and never answered from the cache, and worker affinity orders them
//!   against queries on the same graph.
//! * **Weighted-fair scheduler** ([`WfqScheduler`]) — per-tenant FIFOs
//!   drained by weighted deficit round-robin
//!   ([`ServiceConfig::tenant_weights`], absent = weight 1), so a flooding
//!   tenant can delay but not starve the others.
//! * **Worker pool** — `std::thread` workers (no async runtime; the
//!   workspace is offline/vendored-shims only), each owning one
//!   [`sisa_core::ShardedEngine`]. Every query's exact simulated-cycle /
//!   energy / wall-clock cost is carved out with a
//!   [`sisa_core::StatsScope`] and billed to its tenant; graph loads and
//!   evictions are billed to the registry ledger. Integer counters telescope
//!   exactly: per-tenant totals + registry overhead = raw engine aggregates.
//! * **Transport** — the in-process [`ServiceClient`] plus a line-delimited
//!   JSON protocol over `std::net::TcpListener` ([`TcpServer`]) with
//!   streamed progress frames for long batched queries. Connections are
//!   pipelined: queries submitted on one connection execute concurrently,
//!   with every frame correlated by the request `id`.
//! * **Observability** — a service-wide [`sisa_core::MetricsRegistry`]
//!   (admission gauges, dispatcher/worker counters, cache
//!   hit/miss/eviction counters and the hit-ratio gauge, per-tenant
//!   scheduler-depth gauges, latency histograms)
//!   exposed over TCP by the `{"id": N, "query": "metrics"}` request, an
//!   optional [`sisa_core::SharedCollector`] in [`ServiceConfig`] that
//!   records every worker engine's lane timeline, and per-query span
//!   summaries (`queue_ns`, `execute_ns`, `span_ns`) on terminal result
//!   frames. All of it is observer-only: enabling telemetry never changes
//!   results or [`sisa_core::ExecStats`].
//!
//! ## Quickstart (in-process)
//!
//! ```
//! use sisa_service::{QueryKind, QuerySpec, ServiceConfig, SisaService};
//!
//! let service = SisaService::start(ServiceConfig::smoke());
//! // Tiny custom graph (any dataset name from `sisa_graph::datasets` works
//! // out of the box): a triangle plus a pendant vertex.
//! let mut b = sisa_graph::GraphBuilder::new(4);
//! for (u, v) in [(0, 1), (1, 2), (0, 2), (2, 3)] {
//!     b.add_edge(u, v);
//! }
//! service.register_graph("demo", b.build());
//!
//! let handle = service
//!     .submit("alice", QuerySpec::new("demo", QueryKind::TriangleCount))
//!     .expect("admitted");
//! let outcome = handle.wait().expect("completes");
//! assert_eq!(outcome.value, 1);
//! assert!(outcome.stats.simulated_cycles > 0);
//!
//! // Stream an update: one effective edge change, the cached triangle
//! // count dies with the generation tick, and the new count is maintained
//! // incrementally rather than recomputed.
//! let mutation = service
//!     .submit(
//!         "alice",
//!         QuerySpec::new(
//!             "demo",
//!             QueryKind::Mutate(sisa_service::GraphDelta::new().insert(1, 3)),
//!         ),
//!     )
//!     .expect("admitted");
//! assert_eq!(mutation.wait().expect("applies").value, 1);
//! let after = service
//!     .submit("alice", QuerySpec::new("demo", QueryKind::TriangleCount))
//!     .expect("admitted")
//!     .wait()
//!     .expect("completes");
//! assert_eq!(after.value, 2);
//!
//! let usage = service.tenant_usage();
//! assert_eq!(usage["alice"].queries, 2);
//! assert_eq!(usage["alice"].mutations, 1);
//! service.close();
//! ```
//!
//! ## Quickstart (TCP)
//!
//! ```no_run
//! use sisa_service::{ServiceConfig, SisaService, TcpServer};
//!
//! let service = SisaService::start(ServiceConfig::default());
//! let server = TcpServer::serve(service.client(), "127.0.0.1:7463").unwrap();
//! println!("serving on {}", server.addr());
//! // Clients: one JSON request per line, e.g.
//! //   {"id":1,"tenant":"alice","graph":"bn-mouse","query":"tc"}
//! // Responses stream back as JSON frames ending in result|rejected|error.
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod admission;
pub mod cache;
pub mod protocol;
pub mod query;
pub mod service;
pub mod tcp;
pub mod wfq;
mod worker;

pub use admission::{Admission, AdmissionConfig};
pub use cache::{CacheCounters, CachedResult, ResultCache};
pub use protocol::{Frame, Request};
pub use query::{QueryEvent, QueryKind, QueryOutcome, QuerySpec, QueryStats, Rejection};
pub use service::{
    QueryHandle, ServiceClient, ServiceConfig, ServiceReport, SisaService, TenantUsage,
};
pub use tcp::TcpServer;
pub use wfq::WfqScheduler;

// Observability types service embedders need alongside the service API.
pub use sisa_core::{MetricsRegistry, MetricsSnapshot, SharedCollector};

// Registry types surfaced through `ServiceConfig`.
pub use sisa_graph::{GraphDelta, GraphLease, RegistryConfig};
