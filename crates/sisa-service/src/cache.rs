//! The generation-keyed query result cache.
//!
//! Keyed by `(per-name graph generation, QuerySpec)` — the spec already
//! carries the graph name, so the generation is the only extra ingredient.
//! Workers insert under the generation of the registry lease they executed
//! against; the dispatcher looks up under the name's *current* generation
//! ([`sisa_graph::GraphRegistry::generation_of`]). Because every evict,
//! reload and re-registration ticks the per-name generation (and the
//! counter also ticks while the name is non-resident), a stale entry's key
//! can never match a live lookup: invalidation is structural, not
//! best-effort.
//!
//! The cache is a bounded LRU on two axes — entry count and approximate
//! resident bytes ([`ServiceConfig::cache_entries`] /
//! [`ServiceConfig::cache_bytes`]) — and is shared between the dispatcher
//! (lookups) and every worker (inserts) behind one mutex; both operations
//! are O(log n) map work plus, on overflow, an O(n) LRU victim scan, all of
//! it far below one engine-executed query.
//!
//! [`ServiceConfig::cache_entries`]: crate::ServiceConfig::cache_entries
//! [`ServiceConfig::cache_bytes`]: crate::ServiceConfig::cache_bytes

use crate::query::{QuerySpec, QueryStats};
use std::collections::BTreeMap;
use std::sync::Mutex;

/// A stored query result: everything needed to answer an identical query on
/// the same graph generation without touching an engine.
#[derive(Clone, Debug, PartialEq)]
pub struct CachedResult {
    /// The mined count.
    pub value: u64,
    /// Whether the original search was budget-truncated (budgets are part
    /// of the spec key, so a truncated result only ever answers the same
    /// budget).
    pub truncated: bool,
    /// The original execution's billing record (served back to hit
    /// responses, marked `cache_hit`, with the hit's own span timings).
    pub stats: QueryStats,
}

#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
struct CacheKey {
    generation: u64,
    spec: QuerySpec,
}

#[derive(Debug)]
struct CacheEntry {
    result: CachedResult,
    bytes: usize,
    last_used: u64,
}

#[derive(Debug, Default)]
struct CacheInner {
    entries: BTreeMap<CacheKey, CacheEntry>,
    bytes: usize,
    touch: u64,
    hits: u64,
    misses: u64,
    evictions: u64,
}

/// Aggregate cache counters, sampled atomically.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheCounters {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that found nothing (or hit a dead generation).
    pub misses: u64,
    /// Entries displaced by the entry/byte bounds.
    pub evictions: u64,
    /// Entries currently resident.
    pub resident: u64,
    /// Approximate bytes currently resident.
    pub resident_bytes: u64,
}

impl CacheCounters {
    /// The hit ratio in permille (`hits * 1000 / lookups`), 0 when idle —
    /// the integer form the metrics gauge surface uses.
    #[must_use]
    pub fn hit_ratio_permille(&self) -> u64 {
        (self.hits * 1000)
            .checked_div(self.hits + self.misses)
            .unwrap_or(0)
    }
}

/// The bounded, generation-keyed LRU result cache (see the module docs).
#[derive(Debug)]
pub struct ResultCache {
    max_entries: usize,
    max_bytes: usize,
    inner: Mutex<CacheInner>,
}

/// Approximate resident size of one entry: the map key + entry structs plus
/// the only heap payload, the spec's graph-name string (stored once, in the
/// key).
fn entry_bytes(spec: &QuerySpec) -> usize {
    std::mem::size_of::<CacheKey>() + std::mem::size_of::<CacheEntry>() + spec.graph.len()
}

impl ResultCache {
    /// Creates a cache bounded to `max_entries` entries and (approximately)
    /// `max_bytes` resident bytes. `max_entries == 0` disables the cache
    /// entirely: every lookup misses and inserts are dropped.
    #[must_use]
    pub fn new(max_entries: usize, max_bytes: usize) -> Self {
        ResultCache {
            max_entries,
            max_bytes,
            inner: Mutex::new(CacheInner::default()),
        }
    }

    /// Whether the cache is configured away (`max_entries == 0`).
    #[must_use]
    pub fn is_disabled(&self) -> bool {
        self.max_entries == 0
    }

    /// Looks up `spec` under `generation`, touching LRU recency on a hit.
    pub fn get(&self, generation: u64, spec: &QuerySpec) -> Option<CachedResult> {
        self.lookup(generation, spec, true)
    }

    /// A second-chance lookup for a query whose first lookup already missed
    /// (and was counted): a hit is still counted (a duplicate that queued
    /// behind the execution that filled the entry really is served from the
    /// cache), but a repeat miss is *not* — otherwise every executed query
    /// would be billed two misses and the hit ratio would undercount.
    pub fn recheck(&self, generation: u64, spec: &QuerySpec) -> Option<CachedResult> {
        self.lookup(generation, spec, false)
    }

    fn lookup(&self, generation: u64, spec: &QuerySpec, count_miss: bool) -> Option<CachedResult> {
        if self.is_disabled() {
            return None;
        }
        let key = CacheKey {
            generation,
            spec: spec.clone(),
        };
        let mut inner = self.inner.lock().expect("cache lock");
        let stamp = inner.touch + 1;
        inner.touch = stamp;
        match inner.entries.get_mut(&key) {
            Some(entry) => {
                entry.last_used = stamp;
                let result = entry.result.clone();
                inner.hits += 1;
                Some(result)
            }
            None => {
                if count_miss {
                    inner.misses += 1;
                }
                None
            }
        }
    }

    /// Stores a result under `(generation, spec)`, displacing
    /// least-recently-used entries if the entry or byte bound overflows.
    /// Returns how many entries were evicted to make room.
    pub fn insert(&self, generation: u64, spec: &QuerySpec, result: CachedResult) -> u64 {
        if self.is_disabled() {
            return 0;
        }
        let bytes = entry_bytes(spec);
        if self.max_bytes > 0 && bytes > self.max_bytes {
            return 0;
        }
        let key = CacheKey {
            generation,
            spec: spec.clone(),
        };
        let mut inner = self.inner.lock().expect("cache lock");
        let stamp = inner.touch + 1;
        inner.touch = stamp;
        if let Some(old) = inner.entries.insert(
            key,
            CacheEntry {
                result,
                bytes,
                last_used: stamp,
            },
        ) {
            inner.bytes -= old.bytes;
        }
        inner.bytes += bytes;
        let mut evicted = 0;
        while inner.entries.len() > self.max_entries
            || (self.max_bytes > 0 && inner.bytes > self.max_bytes)
        {
            let victim = inner
                .entries
                .iter()
                .min_by_key(|(_, entry)| entry.last_used)
                .map(|(key, _)| key.clone())
                .expect("non-empty over-capacity cache");
            let entry = inner.entries.remove(&victim).expect("victim present");
            inner.bytes -= entry.bytes;
            inner.evictions += 1;
            evicted += 1;
        }
        evicted
    }

    /// An atomic sample of the cache's aggregate counters.
    #[must_use]
    pub fn counters(&self) -> CacheCounters {
        let inner = self.inner.lock().expect("cache lock");
        CacheCounters {
            hits: inner.hits,
            misses: inner.misses,
            evictions: inner.evictions,
            resident: inner.entries.len() as u64,
            resident_bytes: inner.bytes as u64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::QueryKind;

    fn result(value: u64) -> CachedResult {
        CachedResult {
            value,
            truncated: false,
            stats: QueryStats {
                simulated_cycles: 100 + value,
                ..QueryStats::default()
            },
        }
    }

    fn spec(graph: &str) -> QuerySpec {
        QuerySpec::new(graph, QueryKind::TriangleCount)
    }

    #[test]
    fn hits_require_both_the_spec_and_the_generation_to_match() {
        let cache = ResultCache::new(8, 1 << 20);
        cache.insert(3, &spec("g"), result(17));
        assert_eq!(cache.get(3, &spec("g")).unwrap().value, 17);
        assert!(cache.get(4, &spec("g")).is_none(), "newer generation");
        assert!(cache.get(2, &spec("g")).is_none(), "older generation");
        assert!(cache.get(3, &spec("h")).is_none(), "different graph");
        assert!(
            cache.get(3, &spec("g").with_budget(5)).is_none(),
            "budget is part of the key"
        );
        let counters = cache.counters();
        assert_eq!((counters.hits, counters.misses), (1, 4));
        assert_eq!(counters.hit_ratio_permille(), 200);
    }

    #[test]
    fn rechecks_count_hits_but_never_repeat_misses() {
        let cache = ResultCache::new(8, 1 << 20);
        assert!(cache.get(1, &spec("g")).is_none()); // intake miss: counted
        assert!(cache.recheck(1, &spec("g")).is_none()); // pop-time: not
        cache.insert(1, &spec("g"), result(9));
        assert_eq!(cache.recheck(1, &spec("g")).unwrap().value, 9);
        let counters = cache.counters();
        assert_eq!((counters.hits, counters.misses), (1, 1));
    }

    #[test]
    fn entry_bound_evicts_least_recently_used() {
        let cache = ResultCache::new(2, 1 << 20);
        cache.insert(1, &spec("a"), result(1));
        cache.insert(1, &spec("b"), result(2));
        // Touch `a` so `b` is the LRU victim.
        assert!(cache.get(1, &spec("a")).is_some());
        let evicted = cache.insert(1, &spec("c"), result(3));
        assert_eq!(evicted, 1);
        assert!(cache.get(1, &spec("a")).is_some(), "recently used survives");
        assert!(cache.get(1, &spec("b")).is_none(), "LRU victim");
        assert!(cache.get(1, &spec("c")).is_some());
        assert_eq!(cache.counters().evictions, 1);
        assert_eq!(cache.counters().resident, 2);
    }

    #[test]
    fn byte_bound_evicts_and_reinsertion_replaces_in_place() {
        let per_entry = entry_bytes(&spec("x"));
        let cache = ResultCache::new(64, 2 * per_entry);
        cache.insert(1, &spec("x"), result(1));
        cache.insert(1, &spec("y"), result(2));
        assert_eq!(cache.counters().resident_bytes, 2 * per_entry as u64);
        // Replacing an entry must not double-count its bytes or evict.
        assert_eq!(cache.insert(1, &spec("y"), result(20)), 0);
        assert_eq!(cache.counters().resident, 2);
        assert_eq!(cache.get(1, &spec("y")).unwrap().value, 20);
        // A third distinct entry overflows the byte bound.
        assert_eq!(cache.insert(1, &spec("z"), result(3)), 1);
        assert_eq!(cache.counters().resident, 2);
        assert!(
            cache.counters().resident_bytes <= 2 * per_entry as u64,
            "byte bound holds"
        );
    }

    #[test]
    fn zero_entries_disables_the_cache() {
        let cache = ResultCache::new(0, 1 << 20);
        assert!(cache.is_disabled());
        assert_eq!(cache.insert(1, &spec("g"), result(1)), 0);
        assert!(cache.get(1, &spec("g")).is_none());
        let counters = cache.counters();
        assert_eq!(counters.resident, 0);
        assert_eq!(counters.misses, 0, "disabled lookups are not misses");
    }
}
