//! The line-delimited JSON wire protocol.
//!
//! One request per line; the server answers each request with zero or more
//! `progress` frames followed by exactly one terminal frame (`result`,
//! `rejected` or `error`), each on its own line. Frames carry the request's
//! `id` so clients can correlate.
//!
//! Request example (field order free; `k`, `budget` optional):
//!
//! ```json
//! {"id": 1, "tenant": "alice", "graph": "bn-mouse", "query": "kclique", "k": 4}
//! ```
//!
//! Frame examples:
//!
//! ```json
//! {"id": 1, "frame": "progress", "done_ops": 2048, "total_ops": 90800, "partial": 1034, ...}
//! {"id": 1, "frame": "result", "value": 412116, "truncated": false, "simulated_cycles": 73
//!     1188, "instructions": 90800, "energy_nj": 5120.4, "wall_ns": 1893411, "coalesced": false, ...}
//! {"id": 2, "frame": "rejected", "retry_after_ms": 40, "error": "service saturated: ...", ...}
//! ```

use crate::query::{QueryKind, QueryOutcome, QuerySpec, Rejection};
use serde::{Content, Deserialize, Serialize};
use sisa_core::MetricsSnapshot;
use sisa_graph::{GraphDelta, Vertex};

/// A parsed request line.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Request {
    /// Client-chosen correlation id, echoed on every frame.
    pub id: u64,
    /// The tenant the query is billed to.
    pub tenant: String,
    /// The registered graph name.
    pub graph: String,
    /// The query kind: `tc`, `kclique` or `star`.
    pub query: String,
    /// Size parameter for `kclique` / `star`.
    pub k: Option<u64>,
    /// Optional pattern budget.
    pub budget: Option<u64>,
    /// Edges to insert, as `[u, v]` pairs (`mutate` only; applied after
    /// `deletes`).
    pub inserts: Option<Vec<(u64, u64)>>,
    /// Edges to delete, as `[u, v]` pairs (`mutate` only; applied first).
    pub deletes: Option<Vec<(u64, u64)>>,
}

impl Request {
    /// Builds a request for `spec`.
    #[must_use]
    pub fn from_spec(id: u64, tenant: &str, spec: &QuerySpec) -> Self {
        let (inserts, deletes) = match &spec.kind {
            QueryKind::Mutate(delta) => (
                Some(wire_edges(&delta.inserts)),
                Some(wire_edges(&delta.deletes)),
            ),
            _ => (None, None),
        };
        Request {
            id,
            tenant: tenant.to_string(),
            graph: spec.graph.clone(),
            query: spec.kind.wire_name().to_string(),
            k: spec.kind.k().map(|k| k as u64),
            budget: spec.budget,
            inserts,
            deletes,
        }
    }

    /// Validates the request into an executable [`QuerySpec`].
    ///
    /// # Errors
    ///
    /// Returns a protocol-level message for unknown kinds or bad parameters
    /// (for `mutate`: absent/empty edge lists, or vertex ids beyond the
    /// 32-bit vertex range).
    pub fn spec(&self) -> Result<QuerySpec, String> {
        if self.query == "mutate" {
            let delta = GraphDelta {
                inserts: parse_edges("inserts", self.inserts.as_deref())?,
                deletes: parse_edges("deletes", self.deletes.as_deref())?,
            };
            if delta.is_empty() {
                return Err("mutate requires a non-empty `inserts` or `deletes`".to_string());
            }
            return Ok(QuerySpec {
                graph: self.graph.clone(),
                kind: QueryKind::Mutate(delta),
                budget: None,
            });
        }
        let kind = QueryKind::from_wire(&self.query, self.k)?;
        Ok(QuerySpec {
            graph: self.graph.clone(),
            kind,
            budget: self.budget,
        })
    }

    /// Parses one request line *leniently*: `k` and `budget` may be absent
    /// entirely (the derived deserializer, used for round-trips of frames the
    /// service itself emitted, requires every field to be present). The
    /// introspection request `{"id": N, "query": "metrics"}` needs no
    /// `tenant` or `graph` — it is answered by the transport itself with a
    /// `metrics` frame and never reaches admission control.
    ///
    /// # Errors
    ///
    /// Returns a message describing the malformed line.
    pub fn parse(line: &str) -> Result<Self, String> {
        let value: Content = serde_json::from_str(line).map_err(|e| format!("{e:?}"))?;
        let get_u64 = |key: &str| -> Result<Option<u64>, String> {
            match value.get(key) {
                None | Some(Content::Null) => Ok(None),
                Some(Content::U64(n)) => Ok(Some(*n)),
                Some(Content::I64(n)) if *n >= 0 => Ok(Some(*n as u64)),
                Some(other) => Err(format!(
                    "field `{key}` is not an unsigned integer: {other:?}"
                )),
            }
        };
        let get_str = |key: &str| -> Result<String, String> {
            match value.get(key) {
                Some(Content::Str(s)) => Ok(s.clone()),
                _ => Err(format!("missing or non-string field `{key}`")),
            }
        };
        let get_edges = |key: &str| -> Result<Option<Vec<(u64, u64)>>, String> {
            let endpoint = |c: &Content| -> Result<u64, String> {
                match c {
                    Content::U64(n) => Ok(*n),
                    Content::I64(n) if *n >= 0 => Ok(*n as u64),
                    other => Err(format!(
                        "edge endpoint is not an unsigned integer: {other:?}"
                    )),
                }
            };
            match value.get(key) {
                None | Some(Content::Null) => Ok(None),
                Some(Content::Seq(items)) => {
                    let mut out = Vec::with_capacity(items.len());
                    for item in items {
                        match item {
                            Content::Seq(pair) if pair.len() == 2 => {
                                out.push((endpoint(&pair[0])?, endpoint(&pair[1])?));
                            }
                            other => {
                                return Err(format!(
                                    "field `{key}` entries must be `[u, v]` pairs, \
                                     found {other:?}"
                                ))
                            }
                        }
                    }
                    Ok(Some(out))
                }
                Some(other) => Err(format!("field `{key}` is not an array: {other:?}")),
            }
        };
        let query = get_str("query")?;
        let (tenant, graph) = if query == "metrics" {
            (
                get_str("tenant").unwrap_or_default(),
                get_str("graph").unwrap_or_default(),
            )
        } else {
            (get_str("tenant")?, get_str("graph")?)
        };
        Ok(Request {
            id: get_u64("id")?.ok_or("missing field `id`")?,
            tenant,
            graph,
            query,
            k: get_u64("k")?,
            budget: get_u64("budget")?,
            inserts: get_edges("inserts")?,
            deletes: get_edges("deletes")?,
        })
    }
}

/// Renders vertex-typed edges as wire (`u64`) pairs.
fn wire_edges(edges: &[(Vertex, Vertex)]) -> Vec<(u64, u64)> {
    edges
        .iter()
        .map(|&(u, v)| (u64::from(u), u64::from(v)))
        .collect()
}

/// Validates wire edge pairs into vertex-typed edges.
fn parse_edges(key: &str, edges: Option<&[(u64, u64)]>) -> Result<Vec<(Vertex, Vertex)>, String> {
    let mut out = Vec::with_capacity(edges.map_or(0, <[_]>::len));
    for &(u, v) in edges.unwrap_or_default() {
        let narrow = |n: u64| {
            Vertex::try_from(n).map_err(|_| format!("`{key}` vertex id {n} exceeds vertex range"))
        };
        out.push((narrow(u)?, narrow(v)?));
    }
    Ok(out)
}

/// One response line. `frame` selects which optional fields are populated:
/// `progress` (`done_ops`, `total_ops`, `partial`), `result` (`value`,
/// `truncated`, the stats fields and the per-query span summary),
/// `metrics` (`metrics`, `metrics_text`), `rejected` (`retry_after_ms`,
/// `error`) or `error` (`error`).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Frame {
    /// The request's correlation id (0 when the line was unparseable).
    pub id: u64,
    /// `progress`, `result`, `rejected` or `error`.
    pub frame: String,
    /// Batch operations completed so far (progress).
    pub done_ops: Option<u64>,
    /// Total batch operations of the query (progress).
    pub total_ops: Option<u64>,
    /// Running partial result (progress).
    pub partial: Option<u64>,
    /// The mined count (result).
    pub value: Option<u64>,
    /// Whether the pattern budget truncated the search (result).
    pub truncated: Option<bool>,
    /// Simulated cycles billed to the tenant (result).
    pub simulated_cycles: Option<u64>,
    /// SISA instructions billed to the tenant (result).
    pub instructions: Option<u64>,
    /// Simulated energy billed to the tenant, nanojoules (result).
    pub energy_nj: Option<f64>,
    /// Host wall-clock of the execution, nanoseconds (result).
    pub wall_ns: Option<u64>,
    /// Span: admission to worker pickup, nanoseconds (result).
    pub queue_ns: Option<u64>,
    /// Span: kernel execution on the worker, nanoseconds (result).
    pub execute_ns: Option<u64>,
    /// Span: admission to this terminal response, nanoseconds (result).
    pub span_ns: Option<u64>,
    /// Whether the response was coalesced onto an identical query (result).
    pub coalesced: Option<bool>,
    /// Whether the response was served from the generation-keyed result
    /// cache at zero engine cost (result).
    pub cache_hit: Option<bool>,
    /// Client back-off hint, milliseconds (rejected).
    pub retry_after_ms: Option<u64>,
    /// Failure or rejection detail (rejected, error).
    pub error: Option<String>,
    /// The service's metrics registry snapshot (metrics).
    pub metrics: Option<MetricsSnapshot>,
    /// The same snapshot rendered in Prometheus text exposition format
    /// (metrics).
    pub metrics_text: Option<String>,
}

impl Frame {
    fn base(id: u64, frame: &str) -> Self {
        Frame {
            id,
            frame: frame.to_string(),
            done_ops: None,
            total_ops: None,
            partial: None,
            value: None,
            truncated: None,
            simulated_cycles: None,
            instructions: None,
            energy_nj: None,
            wall_ns: None,
            queue_ns: None,
            execute_ns: None,
            span_ns: None,
            coalesced: None,
            cache_hit: None,
            retry_after_ms: None,
            error: None,
            metrics: None,
            metrics_text: None,
        }
    }

    /// A streaming progress frame.
    #[must_use]
    pub fn progress(id: u64, done_ops: u64, total_ops: u64, partial: u64) -> Self {
        Frame {
            done_ops: Some(done_ops),
            total_ops: Some(total_ops),
            partial: Some(partial),
            ..Frame::base(id, "progress")
        }
    }

    /// The terminal frame of a completed query.
    #[must_use]
    pub fn result(id: u64, outcome: &QueryOutcome) -> Self {
        Frame {
            value: Some(outcome.value),
            truncated: Some(outcome.truncated),
            simulated_cycles: Some(outcome.stats.simulated_cycles),
            instructions: Some(outcome.stats.instructions),
            energy_nj: Some(outcome.stats.energy_nj),
            wall_ns: Some(outcome.stats.wall_ns),
            queue_ns: Some(outcome.stats.queue_ns),
            execute_ns: Some(outcome.stats.execute_ns),
            span_ns: Some(outcome.stats.span_ns),
            coalesced: Some(outcome.stats.coalesced),
            cache_hit: Some(outcome.stats.cache_hit),
            ..Frame::base(id, "result")
        }
    }

    /// The reply to a `metrics` introspection request: the registry snapshot
    /// both as structured JSON and in Prometheus text exposition format.
    #[must_use]
    pub fn metrics(id: u64, snapshot: &MetricsSnapshot) -> Self {
        Frame {
            metrics_text: Some(snapshot.to_prometheus()),
            metrics: Some(snapshot.clone()),
            ..Frame::base(id, "metrics")
        }
    }

    /// The terminal frame of a backpressure rejection.
    #[must_use]
    pub fn rejected(id: u64, rejection: &Rejection) -> Self {
        Frame {
            retry_after_ms: Some(rejection.retry_after_ms),
            error: Some(rejection.reason.clone()),
            ..Frame::base(id, "rejected")
        }
    }

    /// The terminal frame of a failed or malformed request.
    #[must_use]
    pub fn error(id: u64, message: &str) -> Self {
        Frame {
            error: Some(message.to_string()),
            ..Frame::base(id, "error")
        }
    }

    /// Whether this frame terminates its request.
    #[must_use]
    pub fn is_terminal(&self) -> bool {
        self.frame != "progress"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::QueryStats;

    #[test]
    fn lenient_request_parsing_accepts_missing_optionals() {
        let req = Request::parse(r#"{"id": 3, "tenant": "t", "graph": "g", "query": "tc"}"#)
            .expect("parses");
        assert_eq!(req.k, None);
        assert_eq!(req.budget, None);
        assert_eq!(req.spec().unwrap().kind, QueryKind::TriangleCount);
    }

    #[test]
    fn requests_round_trip_through_the_derived_codec() {
        let spec = QuerySpec::new("bn-mouse", QueryKind::KCliqueCount { k: 4 }).with_budget(100);
        let req = Request::from_spec(9, "alice", &spec);
        let json = serde_json::to_string(&req).unwrap();
        let back = Request::parse(&json).unwrap();
        assert_eq!(back, req);
        assert_eq!(back.spec().unwrap(), spec);
    }

    #[test]
    fn malformed_lines_are_reported_not_panicked() {
        assert!(Request::parse("not json").is_err());
        assert!(Request::parse(r#"{"id": 1}"#).is_err());
        assert!(Request::parse(
            r#"{"id": 1, "tenant": "t", "graph": "g", "query": "tc", "k": -4}"#
        )
        .is_err());
    }

    #[test]
    fn frames_round_trip_and_flag_terminality() {
        let outcome = QueryOutcome {
            value: 17,
            truncated: false,
            stats: QueryStats {
                simulated_cycles: 100,
                instructions: 4,
                energy_nj: 2.5,
                wall_ns: 900,
                queue_ns: 120,
                execute_ns: 900,
                span_ns: 1500,
                coalesced: false,
                cache_hit: false,
            },
        };
        let frame = Frame::result(5, &outcome);
        let json = serde_json::to_string(&frame).unwrap();
        let back: Frame = serde_json::from_str(&json).unwrap();
        assert_eq!(back, frame);
        assert!(back.is_terminal());
        assert_eq!(back.queue_ns, Some(120));
        assert_eq!(back.execute_ns, Some(900));
        assert_eq!(back.span_ns, Some(1500));
        assert!(!Frame::progress(5, 10, 100, 3).is_terminal());
        assert!(Frame::rejected(
            5,
            &Rejection {
                retry_after_ms: 7,
                reason: "full".into()
            }
        )
        .is_terminal());
        assert!(Frame::error(0, "bad line").is_terminal());
    }

    #[test]
    fn mutate_requests_carry_edge_lists_and_round_trip() {
        let req = Request::parse(
            r#"{"id": 4, "tenant": "t", "graph": "g", "query": "mutate",
                "inserts": [[0, 1], [2, 3]], "deletes": [[5, 6]]}"#,
        )
        .expect("parses");
        let spec = req.spec().expect("valid mutate");
        let QueryKind::Mutate(delta) = &spec.kind else {
            panic!("expected a mutation, got {:?}", spec.kind);
        };
        assert_eq!(delta.inserts, vec![(0, 1), (2, 3)]);
        assert_eq!(delta.deletes, vec![(5, 6)]);
        assert_eq!(spec.budget, None);

        // from_spec ↔ parse round-trips through the JSON codec.
        let rebuilt = Request::from_spec(4, "t", &spec);
        let json = serde_json::to_string(&rebuilt).unwrap();
        let back = Request::parse(&json).unwrap();
        assert_eq!(back.spec().unwrap(), spec);
    }

    #[test]
    fn malformed_mutations_are_rejected_with_messages() {
        // Empty delta.
        let req =
            Request::parse(r#"{"id": 1, "tenant": "t", "graph": "g", "query": "mutate"}"#).unwrap();
        assert!(req.spec().unwrap_err().contains("non-empty"));
        // Vertex id beyond the 32-bit range.
        let req = Request::parse(
            r#"{"id": 1, "tenant": "t", "graph": "g", "query": "mutate",
                "inserts": [[0, 5000000000]]}"#,
        )
        .unwrap();
        assert!(req.spec().unwrap_err().contains("vertex range"));
        // Non-pair entries fail at parse time.
        assert!(Request::parse(
            r#"{"id": 1, "tenant": "t", "graph": "g", "query": "mutate", "inserts": [[1]]}"#
        )
        .is_err());
        assert!(Request::parse(
            r#"{"id": 1, "tenant": "t", "graph": "g", "query": "mutate", "inserts": 3}"#
        )
        .is_err());
        assert!(Request::parse(
            r#"{"id": 1, "tenant": "t", "graph": "g", "query": "mutate", "inserts": [[1, -2]]}"#
        )
        .is_err());
    }

    #[test]
    fn metrics_requests_need_no_tenant_or_graph() {
        let req = Request::parse(r#"{"id": 8, "query": "metrics"}"#).expect("parses");
        assert_eq!(req.id, 8);
        assert_eq!(req.query, "metrics");
        assert_eq!(req.tenant, "");
        assert_eq!(req.graph, "");
        // Non-introspection queries still require both fields.
        assert!(Request::parse(r#"{"id": 8, "query": "tc"}"#).is_err());
    }

    #[test]
    fn metrics_frames_round_trip_snapshot_and_text() {
        let mut snapshot = MetricsSnapshot::default();
        snapshot
            .counters
            .insert("sisa_queries_completed_total".to_string(), 104);
        snapshot
            .gauges
            .insert("sisa_admission_in_flight".to_string(), 3);
        let frame = Frame::metrics(11, &snapshot);
        assert!(frame.is_terminal());
        let json = serde_json::to_string(&frame).unwrap();
        let back: Frame = serde_json::from_str(&json).unwrap();
        assert_eq!(back, frame);
        let snap = back.metrics.expect("snapshot travels");
        assert_eq!(snap.counters["sisa_queries_completed_total"], 104);
        let text = back.metrics_text.expect("prometheus text travels");
        assert!(text.contains("sisa_queries_completed_total 104"), "{text}");
        assert!(
            text.contains("# TYPE sisa_admission_in_flight gauge"),
            "{text}"
        );
    }
}
