//! The service itself: configuration, the dispatcher/batcher, the tenant
//! ledger and the in-process client API.

use crate::admission::{Admission, AdmissionConfig};
use crate::cache::{CacheCounters, CachedResult, ResultCache};
use crate::query::{QueryEvent, QueryOutcome, QuerySpec, QueryStats, Rejection};
use crate::wfq::WfqScheduler;
use crate::worker::{Worker, WorkerMsg};
use sisa_core::{
    ExecStats, MetricsRegistry, MetricsSnapshot, PartitionStrategy, SetGraphConfig, ShardedEngine,
    SharedCollector, SisaConfig,
};
use sisa_graph::{CsrGraph, GraphRegistry, RegistryConfig};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{channel, Receiver, RecvTimeoutError, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Everything that shapes a [`SisaService`] instance.
#[derive(Clone, Debug)]
pub struct ServiceConfig {
    /// Worker threads, each owning one [`ShardedEngine`]. Queries are routed
    /// to workers by graph affinity, so a graph's shard-resident sets are
    /// loaded on exactly one worker.
    pub workers: usize,
    /// Shards (simulated memory cubes) per worker engine.
    pub shards: usize,
    /// How the set universe is partitioned across shards.
    pub strategy: PartitionStrategy,
    /// The simulated-platform configuration of every worker engine.
    pub sisa: SisaConfig,
    /// How graphs are loaded into sets (dense-bitvector fraction, budget).
    pub graph: SetGraphConfig,
    /// Admission-control limits (bounded queues, per-tenant quotas).
    pub admission: AdmissionConfig,
    /// Graph-registry limits (residency capacity with LRU eviction).
    pub registry: RegistryConfig,
    /// Maximum identical queries one worker dispatch coalesces into a
    /// single execution (the group-size cap of the coalescing drain).
    pub coalesce_window: usize,
    /// Maximum entries of the generation-keyed query result cache; `0`
    /// disables caching entirely.
    pub cache_entries: usize,
    /// Approximate byte bound of the result cache (second LRU axis).
    pub cache_bytes: usize,
    /// Weighted-fair-queueing weights per tenant; absent tenants weigh 1.
    /// With equal weights every backlogged tenant gets an equal share of
    /// each worker's throughput regardless of offered load.
    pub tenant_weights: BTreeMap<String, u64>,
    /// Clique sizes (`k >= 3`) every worker maintains incrementally for
    /// graphs that receive streaming mutations: after a `mutate`, unbudgeted
    /// triangle counts (`k = 3`) and k-clique counts for these sizes are
    /// served from the maintained counters instead of re-mining. Empty
    /// disables incremental maintenance (mutations still apply and still
    /// tick generations).
    pub stream_ks: Vec<usize>,
    /// Batch operations per `execute` window of a batched (unbudgeted)
    /// triangle count; one streamed progress frame is emitted per window.
    pub progress_window_ops: usize,
    /// Seed for every dataset stand-in this service materialises.
    pub seed: u64,
    /// An optional telemetry sink shared by every worker engine. Worker `i`
    /// records its shards under trace groups `i * shards ..`, so one
    /// collector receives the whole pool's lane timeline. Observer-only:
    /// attaching a collector never changes results or [`ExecStats`].
    pub collector: Option<SharedCollector>,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            workers: 2,
            shards: 4,
            strategy: PartitionStrategy::Modulo,
            sisa: SisaConfig::default(),
            graph: SetGraphConfig::default(),
            admission: AdmissionConfig::default(),
            registry: RegistryConfig::default(),
            coalesce_window: 16,
            cache_entries: 1024,
            cache_bytes: 16 << 20,
            tenant_weights: BTreeMap::new(),
            stream_ks: vec![3, 4],
            progress_window_ops: 2048,
            seed: 42,
            collector: None,
        }
    }
}

impl ServiceConfig {
    /// A small deterministic configuration for tests and CI smoke runs.
    #[must_use]
    pub fn smoke() -> Self {
        ServiceConfig {
            workers: 2,
            shards: 2,
            ..ServiceConfig::default()
        }
    }
}

/// One accepted query travelling from a client to a worker.
pub(crate) struct Job {
    pub(crate) tenant: String,
    pub(crate) spec: QuerySpec,
    pub(crate) events: Sender<QueryEvent>,
    /// When admission accepted the query — the origin of its span timeline.
    pub(crate) submitted: Instant,
}

/// A coalesced batch of identical queries: executed once, fanned out to
/// every entry.
pub(crate) struct JobGroup {
    pub(crate) spec: QuerySpec,
    pub(crate) entries: Vec<Job>,
}

/// What flows into the dispatcher: accepted jobs from clients, and
/// completion signals from workers (the flow control that keeps at most one
/// group outstanding per worker, so scheduling order is decided in the
/// dispatcher's WFQ queues — not in unbounded worker channels).
pub(crate) enum DispatchMsg {
    /// An admitted query.
    Job(Job),
    /// Worker `0..workers` finished its outstanding group and is idle.
    Done {
        /// The worker's pool index.
        worker: usize,
    },
}

/// Per-tenant accounting, maintained by the workers under the service
/// ledger lock.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct TenantUsage {
    /// Queries executed (billed) for this tenant.
    pub queries: u64,
    /// Streaming mutations applied (billed) for this tenant. Counted apart
    /// from `queries`: a mutation changes the graph rather than answering a
    /// question about it.
    pub mutations: u64,
    /// Responses served from a coalesced execution at zero cost.
    pub coalesced: u64,
    /// Responses served from the result cache at zero engine cost. Like
    /// coalesced responses these also count in `queries` (the tenant got an
    /// answer) while merging nothing into `stats` — which is what keeps the
    /// pool + registry ≡ engines conservation identity exact.
    pub cache_hits: u64,
    /// Queries that failed (e.g. unknown graph).
    pub failed: u64,
    /// Total host wall-clock nanoseconds of billed executions.
    pub wall_ns: u64,
    /// Exact simulated-work attribution, carved per query with
    /// [`sisa_core::StatsScope`].
    pub stats: ExecStats,
}

/// The service-wide ledger: per-tenant usage plus the registry overheads
/// (graph loads, evictions) that are deliberately billed to no tenant.
#[derive(Debug, Default)]
pub(crate) struct LedgerInner {
    pub(crate) tenants: BTreeMap<String, TenantUsage>,
    pub(crate) registry_stats: ExecStats,
    pub(crate) graph_loads: u64,
    pub(crate) evictions: u64,
    pub(crate) completed: u64,
    pub(crate) coalesced_total: u64,
    pub(crate) cache_hits_total: u64,
    pub(crate) failed_total: u64,
    pub(crate) mutations_total: u64,
}

impl LedgerInner {
    fn tenant(&mut self, tenant: &str) -> &mut TenantUsage {
        self.tenants.entry(tenant.to_string()).or_default()
    }

    pub(crate) fn record_query(&mut self, tenant: &str, delta: &ExecStats, wall_ns: u64) {
        let usage = self.tenant(tenant);
        usage.queries += 1;
        usage.wall_ns += wall_ns;
        usage.stats.merge(delta);
        self.completed += 1;
    }

    pub(crate) fn record_coalesced(&mut self, tenant: &str) {
        let usage = self.tenant(tenant);
        usage.queries += 1;
        usage.coalesced += 1;
        self.completed += 1;
        self.coalesced_total += 1;
    }

    /// Accounts a response served from the result cache: the tenant got an
    /// answer (`queries`, `completed`) in a dedicated `cache_hits` column,
    /// with **zero** execution stats merged — no engine cycle was spent, so
    /// nothing may enter the conservation identity.
    pub(crate) fn record_cache_hit(&mut self, tenant: &str) {
        let usage = self.tenant(tenant);
        usage.queries += 1;
        usage.cache_hits += 1;
        self.completed += 1;
        self.cache_hits_total += 1;
    }

    /// Accounts an applied streaming mutation: billed to the mutating
    /// tenant exactly like a query's execution delta (so conservation stays
    /// exact), but counted in its own `mutations` column — the tenant
    /// changed the graph, it did not get a mining answer.
    pub(crate) fn record_mutation(&mut self, tenant: &str, delta: &ExecStats, wall_ns: u64) {
        let usage = self.tenant(tenant);
        usage.mutations += 1;
        usage.wall_ns += wall_ns;
        usage.stats.merge(delta);
        self.completed += 1;
        self.mutations_total += 1;
    }

    pub(crate) fn record_failed(&mut self, tenant: &str) {
        self.tenant(tenant).failed += 1;
        self.failed_total += 1;
    }

    /// Bills the partial work of a *panicked* execution to its tenant. The
    /// engine cycles were really spent, so dropping the delta would break the
    /// pool + registry ≡ engines conservation identity; instead the partial
    /// stats fold into the tenant's ledger exactly like a completed query's,
    /// while the query itself counts as failed (not completed).
    pub(crate) fn record_panicked(&mut self, tenant: &str, delta: &ExecStats, wall_ns: u64) {
        let usage = self.tenant(tenant);
        usage.failed += 1;
        usage.wall_ns += wall_ns;
        usage.stats.merge(delta);
        self.failed_total += 1;
    }
}

/// A snapshot of the service's aggregate counters.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ServiceReport {
    /// Requests completed (executed + coalesced + cache hits + mutations).
    pub completed: u64,
    /// Streaming mutations applied.
    pub mutations: u64,
    /// Responses served by coalescing.
    pub coalesced: u64,
    /// Responses served from the result cache at zero engine cost.
    pub cache_hits: u64,
    /// Failed queries.
    pub failed: u64,
    /// Admission rejections (backpressure).
    pub rejected: u64,
    /// Queries currently in flight.
    pub in_flight: usize,
    /// Graph loads performed across all workers.
    pub graph_loads: u64,
    /// Graph evictions performed across all workers.
    pub evictions: u64,
}

/// A handle to one accepted query: a stream of [`QueryEvent`]s ending in
/// `Done` or `Failed`.
pub struct QueryHandle {
    rx: Receiver<QueryEvent>,
}

impl QueryHandle {
    /// Blocks for the next event; `None` once the stream is exhausted (or
    /// the service dropped the query during shutdown).
    pub fn next_event(&self) -> Option<QueryEvent> {
        self.rx.recv().ok()
    }

    /// Drains the stream to completion, discarding progress frames.
    ///
    /// # Errors
    ///
    /// Returns the failure message for failed queries, or a shutdown notice
    /// when the service dropped the query.
    pub fn wait(self) -> Result<QueryOutcome, String> {
        loop {
            match self.rx.recv() {
                Ok(QueryEvent::Progress { .. }) => {}
                Ok(QueryEvent::Done(outcome)) => return Ok(outcome),
                Ok(QueryEvent::Failed(error)) => return Err(error),
                Err(_) => return Err("service shut down before the query completed".to_string()),
            }
        }
    }
}

/// A cheap, cloneable submission handle — give one to every client thread
/// (and to the TCP transport).
#[derive(Clone)]
pub struct ServiceClient {
    job_tx: Sender<DispatchMsg>,
    admission: Arc<Admission>,
    metrics: Arc<MetricsRegistry>,
}

impl ServiceClient {
    /// Submits a query for `tenant`, subject to admission control.
    ///
    /// # Errors
    ///
    /// Returns the [`Rejection`] (with a retry hint) when the service is
    /// saturated, the tenant's quota is exhausted, or the service is
    /// shutting down.
    pub fn submit(&self, tenant: &str, spec: QuerySpec) -> Result<QueryHandle, Rejection> {
        self.admission.try_admit(tenant)?;
        self.metrics.counter_add("sisa_queries_submitted_total", 1);
        let (events, rx) = channel();
        let job = Job {
            tenant: tenant.to_string(),
            spec,
            events,
            submitted: Instant::now(),
        };
        if self.job_tx.send(DispatchMsg::Job(job)).is_err() {
            self.admission.complete(tenant);
            return Err(Rejection {
                retry_after_ms: self.admission.config().retry_after_ms.max(1),
                reason: "service is shutting down".to_string(),
            });
        }
        Ok(QueryHandle { rx })
    }

    /// A consistent snapshot of the service's metrics registry — what the
    /// TCP transport returns for a `metrics` request.
    #[must_use]
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        self.metrics.snapshot()
    }
}

struct WorkerHandle {
    tx: Sender<WorkerMsg>,
    join: Option<JoinHandle<()>>,
}

/// The multi-tenant graph-mining service: a graph registry, an admission
/// controller, a coalescing dispatcher and a pool of sharded-engine
/// workers.
///
/// See the crate docs for a quickstart.
pub struct SisaService {
    cfg: ServiceConfig,
    registry: Arc<GraphRegistry>,
    admission: Arc<Admission>,
    ledger: Arc<Mutex<LedgerInner>>,
    metrics: Arc<MetricsRegistry>,
    cache: Arc<ResultCache>,
    job_tx: Option<Sender<DispatchMsg>>,
    stop: Arc<AtomicBool>,
    dispatcher: Option<JoinHandle<()>>,
    workers: Vec<WorkerHandle>,
}

impl SisaService {
    /// Starts the worker pool and dispatcher.
    ///
    /// # Panics
    ///
    /// Panics when `cfg.workers` or `cfg.shards` is zero.
    #[must_use]
    pub fn start(cfg: ServiceConfig) -> Self {
        assert!(cfg.workers > 0, "a service needs at least one worker");
        assert!(cfg.shards > 0, "worker engines need at least one shard");
        let registry = Arc::new(GraphRegistry::with_config(cfg.seed, cfg.registry.clone()));
        let metrics = Arc::new(MetricsRegistry::new());
        let admission = Arc::new(Admission::with_metrics(
            cfg.admission.clone(),
            Arc::clone(&metrics),
        ));
        let ledger = Arc::new(Mutex::new(LedgerInner::default()));
        let cache = Arc::new(ResultCache::new(cfg.cache_entries, cfg.cache_bytes));
        let stop = Arc::new(AtomicBool::new(false));
        let (job_tx, job_rx) = channel::<DispatchMsg>();

        let mut workers = Vec::with_capacity(cfg.workers);
        let mut worker_txs = Vec::with_capacity(cfg.workers);
        for i in 0..cfg.workers {
            let (tx, rx) = channel::<WorkerMsg>();
            let registry = Arc::clone(&registry);
            let ledger = Arc::clone(&ledger);
            let admission = Arc::clone(&admission);
            let worker_metrics = Arc::clone(&metrics);
            let worker_cache = Arc::clone(&cache);
            let done = job_tx.clone();
            let collector = cfg.collector.clone();
            let shards = cfg.shards;
            let strategy = cfg.strategy;
            let sisa = cfg.sisa;
            let graph_cfg = cfg.graph;
            let window = cfg.progress_window_ops;
            let stream_ks = cfg.stream_ks.clone();
            let join = std::thread::Builder::new()
                .name(format!("sisa-service-worker-{i}"))
                .spawn(move || {
                    let mut engine = ShardedEngine::sisa(shards, strategy, sisa);
                    if let Some(collector) = collector {
                        // Worker i's shards land on trace groups i*shards ..,
                        // so the pool shares one collector without clashes.
                        engine.attach_collector(collector, (i * shards) as u32);
                    }
                    Worker::new(
                        engine,
                        registry,
                        ledger,
                        admission,
                        worker_metrics,
                        worker_cache,
                        graph_cfg,
                        window,
                        stream_ks,
                        i,
                        done,
                    )
                    .run(&rx);
                })
                .expect("spawn worker thread");
            worker_txs.push(tx.clone());
            workers.push(WorkerHandle {
                tx,
                join: Some(join),
            });
        }

        let dispatcher = {
            let stop = Arc::clone(&stop);
            let mut state = Dispatcher {
                worker_txs,
                schedulers: (0..cfg.workers)
                    .map(|_| WfqScheduler::new(cfg.tenant_weights.clone()))
                    .collect(),
                busy: vec![false; cfg.workers],
                cache: Arc::clone(&cache),
                registry: Arc::clone(&registry),
                ledger: Arc::clone(&ledger),
                admission: Arc::clone(&admission),
                metrics: Arc::clone(&metrics),
                window: cfg.coalesce_window.max(1),
            };
            std::thread::Builder::new()
                .name("sisa-service-dispatcher".to_string())
                .spawn(move || state.run(&job_rx, &stop))
                .expect("spawn dispatcher thread")
        };

        SisaService {
            cfg,
            registry,
            admission,
            ledger,
            metrics,
            cache,
            job_tx: Some(job_tx),
            stop,
            dispatcher: Some(dispatcher),
            workers,
        }
    }

    /// A cloneable submission handle for client threads and transports.
    ///
    /// # Panics
    ///
    /// Panics if called after [`SisaService::close`].
    #[must_use]
    pub fn client(&self) -> ServiceClient {
        ServiceClient {
            job_tx: self.job_tx.as_ref().expect("service is running").clone(),
            admission: Arc::clone(&self.admission),
            metrics: Arc::clone(&self.metrics),
        }
    }

    /// Submits a query for `tenant` (convenience over [`SisaService::client`]).
    ///
    /// # Errors
    ///
    /// Returns the [`Rejection`] when admission control refuses the query.
    pub fn submit(&self, tenant: &str, spec: QuerySpec) -> Result<QueryHandle, Rejection> {
        self.client().submit(tenant, spec)
    }

    /// The shared named-graph registry.
    #[must_use]
    pub fn registry(&self) -> &GraphRegistry {
        &self.registry
    }

    /// Registers a caller-supplied graph under `name` (evicting any resident
    /// load of a previous graph of that name first), making it queryable.
    pub fn register_graph(&self, name: &str, graph: CsrGraph) {
        for worker in &self.workers {
            let _ = worker.tx.send(WorkerMsg::Evict(name.to_string()));
        }
        let _ = self.registry.register(name, graph);
    }

    /// Evicts `name` everywhere: drops the registry handle and the
    /// shard-resident sets on every worker. In-flight queries already past
    /// admission finish normally (eviction is processed in queue order
    /// behind them). Returns whether the registry held the name.
    pub fn evict_graph(&self, name: &str) -> bool {
        let existed = self.registry.evict(name);
        for worker in &self.workers {
            let _ = worker.tx.send(WorkerMsg::Evict(name.to_string()));
        }
        existed
    }

    /// Per-tenant usage, exactly attributing the pool's simulated work.
    #[must_use]
    pub fn tenant_usage(&self) -> BTreeMap<String, TenantUsage> {
        self.ledger.lock().expect("ledger lock").tenants.clone()
    }

    /// The pool aggregate: the fold of every tenant's attributed stats, in
    /// tenant order. By construction the per-tenant records sum exactly
    /// (bit-exact energy included) to this aggregate; together with
    /// [`SisaService::registry_stats`] it telescopes integer-exactly to the
    /// raw engine counters ([`SisaService::engine_stats`]).
    #[must_use]
    pub fn pool_stats(&self) -> ExecStats {
        let ledger = self.ledger.lock().expect("ledger lock");
        let mut total = ExecStats::default();
        for usage in ledger.tenants.values() {
            total.merge(&usage.stats);
        }
        total
    }

    /// Registry overheads (graph loads and evictions) billed to no tenant.
    #[must_use]
    pub fn registry_stats(&self) -> ExecStats {
        self.ledger
            .lock()
            .expect("ledger lock")
            .registry_stats
            .clone()
    }

    /// The raw aggregate statistics of every worker engine, folded in worker
    /// order. Acts as a barrier: each worker replies only after finishing
    /// all previously queued work.
    #[must_use]
    pub fn engine_stats(&self) -> ExecStats {
        let mut total = ExecStats::default();
        for stats in self.worker_engine_stats() {
            total.merge(&stats);
        }
        total
    }

    /// Per-worker engine aggregates, in worker order (see
    /// [`SisaService::engine_stats`]).
    #[must_use]
    pub fn worker_engine_stats(&self) -> Vec<ExecStats> {
        let mut replies = Vec::with_capacity(self.workers.len());
        for worker in &self.workers {
            let (tx, rx) = channel();
            if worker.tx.send(WorkerMsg::Report(tx)).is_ok() {
                if let Ok(stats) = rx.recv() {
                    replies.push(stats);
                }
            }
        }
        replies
    }

    /// The service-wide metrics registry (counters, gauges, latency
    /// histograms) fed by the admission controller, dispatcher, registry
    /// bookkeeping and worker pool.
    #[must_use]
    pub fn metrics(&self) -> &Arc<MetricsRegistry> {
        &self.metrics
    }

    /// A consistent snapshot of [`SisaService::metrics`].
    #[must_use]
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        self.metrics.snapshot()
    }

    /// Aggregate service counters.
    #[must_use]
    pub fn report(&self) -> ServiceReport {
        let ledger = self.ledger.lock().expect("ledger lock");
        ServiceReport {
            completed: ledger.completed,
            mutations: ledger.mutations_total,
            coalesced: ledger.coalesced_total,
            cache_hits: ledger.cache_hits_total,
            failed: ledger.failed_total,
            rejected: self.admission.rejected(),
            in_flight: self.admission.in_flight(),
            graph_loads: ledger.graph_loads,
            evictions: ledger.evictions,
        }
    }

    /// The configuration the service was started with.
    #[must_use]
    pub fn config(&self) -> &ServiceConfig {
        &self.cfg
    }

    /// An atomic sample of the result cache's counters (hits, misses,
    /// evictions, residency).
    #[must_use]
    pub fn cache_counters(&self) -> CacheCounters {
        self.cache.counters()
    }

    /// Stops accepting queries, drains the pipeline and joins every thread.
    /// Queries still queued when `close` is called receive `Failed` events.
    pub fn close(mut self) {
        self.shutdown();
    }

    fn shutdown(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        self.job_tx = None;
        if let Some(dispatcher) = self.dispatcher.take() {
            let _ = dispatcher.join();
        }
        for worker in &self.workers {
            let _ = worker.tx.send(WorkerMsg::Shutdown);
        }
        for worker in &mut self.workers {
            if let Some(join) = worker.join.take() {
                let _ = join.join();
            }
        }
    }
}

impl Drop for SisaService {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Routes a graph name to its affinity worker (FNV-1a over the name), so
/// each graph is loaded into shard-resident sets on exactly one worker.
pub(crate) fn worker_for(graph: &str, workers: usize) -> usize {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in graph.bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    (hash % workers as u64) as usize
}

/// Saturating nanoseconds of a host duration.
fn ns(duration: Duration) -> u64 {
    u64::try_from(duration.as_nanos()).unwrap_or(u64::MAX)
}

/// The dispatcher: cache lookups at intake, per-worker WFQ backlogs, and
/// flow-controlled assignment (at most one group outstanding per worker, so
/// service order is decided here — by weighted deficit round-robin — rather
/// than in unbounded worker channels).
struct Dispatcher {
    worker_txs: Vec<Sender<WorkerMsg>>,
    /// One WFQ backlog per worker: affinity routing happens at enqueue, so
    /// fairness is enforced where it matters — on each worker's serial
    /// execution capacity.
    schedulers: Vec<WfqScheduler<Job>>,
    busy: Vec<bool>,
    cache: Arc<ResultCache>,
    registry: Arc<GraphRegistry>,
    ledger: Arc<Mutex<LedgerInner>>,
    admission: Arc<Admission>,
    metrics: Arc<MetricsRegistry>,
    window: usize,
}

impl Dispatcher {
    fn run(&mut self, job_rx: &Receiver<DispatchMsg>, stop: &AtomicBool) {
        loop {
            let first = match job_rx.recv_timeout(Duration::from_millis(20)) {
                Ok(msg) => Some(msg),
                Err(RecvTimeoutError::Timeout) => None,
                Err(RecvTimeoutError::Disconnected) => break,
            };
            if stop.load(Ordering::SeqCst) {
                // Fail everything still queued (channel + WFQ backlogs):
                // the queues are bounded and nothing may linger.
                let mut leftovers: Vec<Job> = Vec::new();
                if let Some(DispatchMsg::Job(job)) = first {
                    leftovers.push(job);
                }
                while let Ok(msg) = job_rx.try_recv() {
                    if let DispatchMsg::Job(job) = msg {
                        leftovers.push(job);
                    }
                }
                for scheduler in &mut self.schedulers {
                    leftovers.extend(scheduler.drain_all().into_iter().map(|(_, job)| job));
                }
                for job in leftovers {
                    let _ = job
                        .events
                        .send(QueryEvent::Failed("service shut down".to_string()));
                    self.admission.complete(&job.tenant);
                }
                break;
            }
            let Some(first) = first else { continue };
            let mut batch_jobs: u64 = 0;
            let mut msg = Some(first);
            loop {
                match msg {
                    Some(DispatchMsg::Job(job)) => {
                        batch_jobs += 1;
                        self.intake(job);
                    }
                    Some(DispatchMsg::Done { worker }) => self.busy[worker] = false,
                    None => break,
                }
                msg = job_rx.try_recv().ok();
            }
            if batch_jobs > 0 {
                self.metrics.counter_add("sisa_dispatch_batches_total", 1);
                self.metrics
                    .counter_add("sisa_dispatch_jobs_total", batch_jobs);
                self.metrics
                    .gauge_set("sisa_dispatch_last_batch_jobs", batch_jobs as i64);
            }
            self.assign_idle();
        }
    }

    /// Accepts one admitted job: answered from the cache right here when the
    /// current graph generation holds the result (a hit never occupies more
    /// of its admission slot than a map lookup), queued under its tenant on
    /// its affinity worker otherwise. Mutations never consult the cache —
    /// they are what *invalidates* it — and always queue, so they stay
    /// ordered behind earlier queries on the same graph (same affinity
    /// worker, same WFQ backlog).
    fn intake(&mut self, job: Job) {
        if !job.spec.kind.is_mutation() {
            let generation = self.registry.generation_of(&job.spec.graph);
            if let Some(hit) = self.cache.get(generation, &job.spec) {
                self.serve_hit(job, &hit);
                return;
            }
            self.metrics.counter_add("sisa_cache_misses_total", 1);
            self.publish_hit_ratio();
        }
        let target = worker_for(&job.spec.graph, self.schedulers.len());
        let tenant = job.tenant.clone();
        self.schedulers[target].enqueue(&tenant, job);
        self.publish_depth(&tenant);
    }

    /// Serves a cache hit: the stored value and the original execution's
    /// stats, marked `cache_hit`, with this response's own real timings and
    /// zero engine cycles billed (ledger `cache_hits` column).
    fn serve_hit(&self, job: Job, hit: &CachedResult) {
        let queue_ns = ns(job.submitted.elapsed());
        self.ledger
            .lock()
            .expect("ledger lock")
            .record_cache_hit(&job.tenant);
        self.metrics.counter_add("sisa_cache_hits_total", 1);
        self.metrics.counter_add("sisa_queries_completed_total", 1);
        self.publish_hit_ratio();
        let span_ns = ns(job.submitted.elapsed());
        let stats = QueryStats::from_cached(&hit.stats).with_spans(queue_ns, 0, span_ns);
        self.metrics.observe("sisa_query_queue_ns", queue_ns);
        self.metrics.observe("sisa_query_latency_ns", span_ns);
        // Release the slot *before* the terminal event: a hit was never
        // queued or executing, and a client observing its completion must
        // already see the slot free.
        self.admission.complete(&job.tenant);
        let _ = job.events.send(QueryEvent::Done(QueryOutcome {
            value: hit.value,
            truncated: hit.truncated,
            stats,
        }));
    }

    /// Hands every idle worker its next WDRR-ordered group. A job whose
    /// result landed in the cache while it was queued (an identical query
    /// executed ahead of it) is served as a hit here instead of re-executing.
    fn assign_idle(&mut self) {
        for worker in 0..self.worker_txs.len() {
            while !self.busy[worker] && !self.schedulers[worker].is_empty() {
                let Some((tenant, job)) = self.schedulers[worker].pop() else {
                    break;
                };
                let mutation = job.spec.kind.is_mutation();
                if !mutation {
                    let generation = self.registry.generation_of(&job.spec.graph);
                    if let Some(hit) = self.cache.recheck(generation, &job.spec) {
                        self.serve_hit(job, &hit);
                        self.publish_depth(&tenant);
                        continue;
                    }
                }
                let spec = job.spec.clone();
                let mut entries = vec![job];
                let mut touched = vec![tenant];
                // Mutations are never coalesced: every mutate request is an
                // intent to change the graph and executes by itself, in
                // queue order.
                if !mutation {
                    for (sibling_tenant, sibling) in
                        self.schedulers[worker].drain_matching(self.window - 1, |j| j.spec == spec)
                    {
                        entries.push(sibling);
                        touched.push(sibling_tenant);
                    }
                }
                touched.sort();
                touched.dedup();
                for tenant in &touched {
                    self.publish_depth(tenant);
                }
                self.metrics.counter_add("sisa_dispatch_groups_total", 1);
                let group = JobGroup { spec, entries };
                if self.worker_txs[worker].send(WorkerMsg::Run(group)).is_err() {
                    return;
                }
                self.busy[worker] = true;
            }
        }
    }

    /// Publishes one tenant's total WFQ backlog (summed across workers). A
    /// tenant whose backlog has drained to zero has its labelled gauge
    /// *removed* — matching the schedulers' own pruning — so the metrics
    /// registry never accretes one gauge per tenant name ever seen.
    fn publish_depth(&self, tenant: &str) {
        let depth: usize = self.schedulers.iter().map(|s| s.depth(tenant)).sum();
        let name = format!("sisa_wfq_queue_depth{{tenant=\"{tenant}\"}}");
        if depth == 0 {
            self.metrics.gauge_remove(&name);
        } else {
            self.metrics.gauge_set(&name, depth as i64);
        }
    }

    /// Publishes the cache hit-ratio gauge (permille of all lookups).
    fn publish_hit_ratio(&self) {
        let counters = self.cache.counters();
        self.metrics.gauge_set(
            "sisa_cache_hit_ratio_permille",
            counters.hit_ratio_permille() as i64,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::QueryKind;
    use std::sync::mpsc::channel;

    fn job(tenant: &str, spec: QuerySpec) -> Job {
        let (events, _rx) = channel();
        // The receiver is dropped: these jobs only exercise scheduling.
        Job {
            tenant: tenant.to_string(),
            spec,
            events,
            submitted: Instant::now(),
        }
    }

    #[test]
    fn wfq_coalescing_drains_identical_specs_but_not_budget_variants() {
        let tc = QuerySpec::new("g", QueryKind::TriangleCount);
        let budgeted = tc.clone().with_budget(5);
        let mut scheduler: WfqScheduler<Job> = WfqScheduler::new(BTreeMap::new());
        scheduler.enqueue("a", job("a", tc.clone()));
        scheduler.enqueue("b", job("b", budgeted.clone()));
        scheduler.enqueue("c", job("c", tc.clone()));
        let (_, first) = scheduler.pop().expect("something queued");
        let spec = first.spec.clone();
        let siblings = scheduler.drain_matching(15, |j| j.spec == spec);
        assert_eq!(siblings.len(), 1, "only the identical spec coalesces");
        assert_ne!(siblings[0].1.spec, budgeted);
        assert_eq!(scheduler.len(), 1, "the budget variant stays queued");
    }

    #[test]
    fn cache_hits_are_completions_with_zero_attributed_stats() {
        let mut ledger = LedgerInner::default();
        ledger.record_cache_hit("t");
        ledger.record_cache_hit("t");
        let usage = &ledger.tenants["t"];
        assert_eq!(usage.queries, 2, "the tenant got answers");
        assert_eq!(usage.cache_hits, 2);
        assert_eq!(usage.coalesced, 0);
        assert_eq!(
            usage.stats,
            ExecStats::default(),
            "zero engine cycles billed: conservation stays exact"
        );
        assert_eq!(ledger.completed, 2);
        assert_eq!(ledger.cache_hits_total, 2);
    }

    #[test]
    fn panicked_deltas_fold_into_the_tenant_ledger() {
        let mut ledger = LedgerInner::default();
        let delta = ExecStats {
            energy_nj: 2.5,
            host_cycles: 7,
            ..ExecStats::default()
        };
        ledger.record_panicked("t", &delta, 900);
        let usage = &ledger.tenants["t"];
        assert_eq!(usage.failed, 1);
        assert_eq!(usage.queries, 0, "a panicked query is not a completion");
        assert_eq!(usage.wall_ns, 900);
        assert_eq!(usage.stats.host_cycles, 7);
        assert_eq!(usage.stats.energy_nj.to_bits(), 2.5f64.to_bits());
        assert_eq!(ledger.failed_total, 1);
        assert_eq!(ledger.completed, 0);
    }

    #[test]
    fn graph_affinity_is_stable_and_in_range() {
        for workers in 1..5 {
            let w = worker_for("soc-fbMsg", workers);
            assert!(w < workers);
            assert_eq!(w, worker_for("soc-fbMsg", workers), "deterministic");
        }
    }
}
