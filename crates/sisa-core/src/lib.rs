//! # sisa-core
//!
//! The SISA runtime: everything between a set-centric algorithm and the PIM
//! cost models.
//!
//! This crate plays four roles from the paper's cross-layer design (§3, §8):
//!
//! * **The execution-backend boundary**: [`SetEngine`] is the trait every
//!   set-centric algorithm in `sisa-algorithms` is written against — C-style
//!   set operations (`intersect`, `union`, `difference`, counting variants,
//!   membership, element insertion/removal, set lifecycle) addressed by
//!   logical [`SetId`]s. Four backends ship: the simulated SISA platform
//!   ([`SisaRuntime`]), a software baseline on the CPU cost model
//!   ([`HostEngine`]), a cost-free functional oracle ([`FunctionalEngine`])
//!   and a sharded multi-cube wrapper ([`ShardedEngine`]) that partitions the
//!   set universe across inner engines via a [`PartitionStrategy`] and prices
//!   cross-shard operand movement with the PNM link model.
//! * **The thin software layer + SCU** (§6.3.3, §8.2): inside `SisaRuntime`
//!   every operation is first *issued* — materialised as a genuine
//!   [`sisa_isa::SisaInstruction`] with operands mapped through the
//!   [`issue::RegisterFile`] binding table, optionally captured by a bounded
//!   [`TraceSink`] — then *dispatched* by the [`scu::Scu`], which consults the
//!   Set-Metadata table (through the SMB cache), chooses SISA-PUM or SISA-PNM
//!   and merge vs. galloping using the §8.3 performance models, and returns a
//!   costed outcome that is absorbed into the work counters and enqueued into
//!   the scoreboarded [`IssueQueue`] (§8.4 "Harnessing Parallelism"):
//!   instructions with disjoint operand sets overlap across virtual vault
//!   lanes, dependent ones stall on the set-ID [`Scoreboard`], and
//!   [`ExecStats`] reports the overlapped makespan and dependence-stall
//!   cycles next to the serial work totals. A captured trace is a real
//!   [`sisa_isa::SisaProgram`] and can be replayed against any backend by the
//!   [`Interpreter`].
//! * **The set organisation** (§6.1): [`SetGraph`] loads a CSR graph into
//!   SISA sets, storing the largest neighbourhoods as dense bitvectors and the
//!   rest as sparse arrays, subject to the user's bias parameter and storage
//!   budget.
//! * **Scheduling**: [`parallel`] provides the virtual-thread scheduler that
//!   turns per-task cycle counts (from any [`SetEngine`]) into end-to-end
//!   runtimes, per-thread stall fractions and bandwidth-contention effects —
//!   the quantities plotted in Figures 1, 6, 8 and 9 of the paper.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod dynamic;
pub mod engine;
pub mod functional;
pub mod host_engine;
pub mod interpreter;
pub mod issue;
pub mod metadata;
pub mod parallel;
pub mod pipeline;
pub mod rename;
pub mod runtime;
pub mod scoreboard;
pub mod scu;
pub mod set_graph;
pub mod shard;
pub mod sharded;
pub(crate) mod slots;
pub mod stats;
pub mod telemetry;
pub mod trace;

pub use config::{SetGraphConfig, SisaConfig, VariantSelection};
pub use dynamic::DynamicSetGraph;
pub use engine::SetEngine;
pub use functional::FunctionalEngine;
pub use host_engine::HostEngine;
pub use interpreter::{Interpreter, ReplayReport};
pub use issue::RegisterFile;
pub use metadata::{SetMetadata, SetMetadataTable, SmbCache};
pub use parallel::{schedule, schedule_cpu, RunReport, TaskRecord, ThreadReport};
pub use pipeline::{IssueOutcome, IssueQueue, LaneKind, WriteIntent};
pub use rename::{RenameMap, TagAlloc};
pub use runtime::SisaRuntime;
pub use scoreboard::Scoreboard;
pub use scu::{ExecutionChoice, ExecutionTarget, Scu};
pub use set_graph::SetGraph;
pub use shard::PartitionStrategy;
pub use sharded::{BatchOp, BatchResult, LinkTraffic, ShardReport, ShardedEngine};
pub use stats::{ExecStats, StatsCheckpoint, StatsScope};
pub use telemetry::{
    ChromeTraceCollector, Collector, InstructionEvent, MetricsRegistry, MetricsSnapshot,
    NoopCollector, SharedCollector, TransferEvent,
};
pub use trace::{TraceEvent, TraceOp, TraceSink};

/// A logical SISA set identifier (re-exported from `sisa-isa`).
pub type SetId = sisa_isa::SetId;

/// A vertex identifier (re-exported from `sisa-sets`).
pub type Vertex = sisa_sets::Vertex;
