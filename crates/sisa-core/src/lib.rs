//! # sisa-core
//!
//! The SISA runtime: everything between a set-centric algorithm and the PIM
//! cost models.
//!
//! This crate plays three roles from the paper's cross-layer design (§3, §8):
//!
//! * **The thin software layer** (§6.3.3): [`SisaRuntime`] exposes C-style
//!   set operations (`intersect`, `union`, `difference`, counting variants,
//!   membership, element insertion/removal, set lifecycle) addressed by
//!   logical [`SetId`]s — the programming interface the set-centric
//!   algorithms in `sisa-algorithms` are written against.
//! * **The SISA Controller Unit** (§8.2): every operation is turned into a
//!   [`sisa_isa::SisaInstruction`], handed to the [`scu::Scu`], which consults
//!   the Set-Metadata table (through the SMB cache), chooses SISA-PUM or
//!   SISA-PNM and merge vs. galloping using the §8.3 performance models, and
//!   charges the corresponding cycles.
//! * **The set organisation** (§6.1): [`SetGraph`] loads a CSR graph into
//!   SISA sets, storing the largest neighbourhoods as dense bitvectors and the
//!   rest as sparse arrays, subject to the user's bias parameter and storage
//!   budget.
//!
//! [`parallel`] provides the virtual-thread scheduler that turns per-task
//! cycle counts (from either the SISA runtime or the baseline CPU model in
//! `sisa-pim`) into end-to-end runtimes, per-thread stall fractions and
//! bandwidth-contention effects — the quantities plotted in Figures 1, 6, 8
//! and 9 of the paper.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod metadata;
pub mod parallel;
pub mod runtime;
pub mod scu;
pub mod set_graph;
pub mod stats;

pub use config::{SetGraphConfig, SisaConfig, VariantSelection};
pub use metadata::{SetMetadata, SetMetadataTable, SmbCache};
pub use parallel::{schedule, schedule_cpu, RunReport, TaskRecord, ThreadReport};
pub use runtime::SisaRuntime;
pub use scu::{ExecutionChoice, ExecutionTarget, Scu};
pub use set_graph::SetGraph;
pub use stats::ExecStats;

/// A logical SISA set identifier (re-exported from `sisa-isa`).
pub type SetId = sisa_isa::SetId;

/// A vertex identifier (re-exported from `sisa-sets`).
pub type Vertex = sisa_sets::Vertex;
