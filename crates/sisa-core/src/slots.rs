//! LIFO slot allocation shared by every engine's set-ID table.
//!
//! All engines store their sets (or, for the sharded engine, placements) in a
//! `Vec<Option<T>>` indexed by raw set ID and reuse freed IDs
//! most-recently-freed-first. The reuse order is observable: the cross-engine
//! equivalence and interpreter-replay tests rely on every backend allocating
//! identical IDs for identical operation sequences, so the allocator lives in
//! one place instead of being re-implemented per engine.

use sisa_isa::SetId;

/// Allocates a slot: pops the most recently freed ID, or appends a fresh
/// empty slot and returns its index.
pub(crate) fn allocate<T>(slots: &mut Vec<Option<T>>, free_ids: &mut Vec<u32>) -> SetId {
    if let Some(raw) = free_ids.pop() {
        SetId(raw)
    } else {
        let id = SetId(slots.len() as u32);
        slots.push(None);
        id
    }
}

/// Releases a slot, making its ID the next one reused.
pub(crate) fn release<T>(slots: &mut [Option<T>], free_ids: &mut Vec<u32>, id: SetId) {
    slots[id.0 as usize] = None;
    free_ids.push(id.0);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_reused_lifo() {
        let mut slots: Vec<Option<u32>> = Vec::new();
        let mut free = Vec::new();
        let a = allocate(&mut slots, &mut free);
        let b = allocate(&mut slots, &mut free);
        assert_eq!((a, b), (SetId(0), SetId(1)));
        release(&mut slots, &mut free, a);
        release(&mut slots, &mut free, b);
        // Most recently freed first.
        assert_eq!(allocate(&mut slots, &mut free), b);
        assert_eq!(allocate(&mut slots, &mut free), a);
        assert_eq!(allocate(&mut slots, &mut free), SetId(2));
        assert_eq!(slots.len(), 3);
    }
}
