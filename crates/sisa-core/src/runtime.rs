//! The SISA runtime: the programming interface set-centric algorithms use.
//!
//! [`SisaRuntime`] owns the physical sets (indexed by [`SetId`]), the
//! Set-Metadata table and the SCU. Every public operation does two things:
//!
//! 1. **Functionally executes** the set operation on the real data (so
//!    algorithms produce real answers that tests can validate), and
//! 2. **Charges simulated cycles** by recording a SISA instruction and letting
//!    the SCU dispatch it onto the PUM/PNM cost models.
//!
//! Invalid set identifiers are programming errors and panic, mirroring how a
//! real SISA program would fault on a dangling set ID.

use crate::config::SisaConfig;
use crate::metadata::SetMetadataTable;
use crate::scu::{BinarySetOp, DispatchOutcome, ExecutionTarget, Scu};
use crate::stats::ExecStats;
use crate::Vertex;
use sisa_isa::{SetId, SisaOpcode};
use sisa_sets::{RepresentationKind, SetRepr};

/// The SISA runtime (thin software layer + SCU + set storage).
#[derive(Clone, Debug)]
pub struct SisaRuntime {
    config: SisaConfig,
    scu: Scu,
    sets: Vec<Option<SetRepr>>,
    metadata: SetMetadataTable,
    stats: ExecStats,
    universe: usize,
    free_ids: Vec<u32>,
    host_ops_pending: f64,
    task_mark: u64,
}

impl SisaRuntime {
    /// Creates a runtime with the given configuration. The vertex universe
    /// defaults to 0 and is usually set by [`crate::SetGraph::load`] or
    /// [`SisaRuntime::set_universe`].
    #[must_use]
    pub fn new(config: SisaConfig) -> Self {
        Self {
            config,
            scu: Scu::new(config.platform, config.variant_selection),
            sets: Vec::new(),
            metadata: SetMetadataTable::new(),
            stats: ExecStats::default(),
            universe: 0,
            free_ids: Vec::new(),
            host_ops_pending: 0.0,
            task_mark: 0,
        }
    }

    /// Creates a runtime with the default configuration.
    #[must_use]
    pub fn with_defaults() -> Self {
        Self::new(SisaConfig::default())
    }

    /// The runtime configuration.
    #[must_use]
    pub fn config(&self) -> &SisaConfig {
        &self.config
    }

    /// Sets the vertex universe `n` used when dense bitvectors are created.
    pub fn set_universe(&mut self, n: usize) {
        self.universe = self.universe.max(n);
    }

    /// The current vertex universe.
    #[must_use]
    pub fn universe(&self) -> usize {
        self.universe
    }

    /// Execution statistics accumulated so far.
    #[must_use]
    pub fn stats(&self) -> &ExecStats {
        &self.stats
    }

    /// Clears the accumulated statistics (used after graph loading so that
    /// reported cycles cover only the algorithm itself, matching the paper's
    /// methodology of excluding graph construction).
    pub fn reset_stats(&mut self) {
        self.stats = ExecStats::default();
        self.host_ops_pending = 0.0;
        self.task_mark = 0;
    }

    /// The SCU (exposed for harnesses that want its hit ratios and models).
    #[must_use]
    pub fn scu(&self) -> &Scu {
        &self.scu
    }

    /// Number of live sets.
    #[must_use]
    pub fn live_sets(&self) -> usize {
        self.sets.iter().filter(|s| s.is_some()).count()
    }

    // -----------------------------------------------------------------------
    // Set lifecycle
    // -----------------------------------------------------------------------

    /// Creates a set from an explicit representation, returning its ID.
    pub fn create(&mut self, repr: SetRepr) -> SetId {
        let id = self.allocate_id();
        self.metadata
            .register(id, repr.kind(), repr.len(), self.universe_of(&repr));
        self.record_lifecycle(SisaOpcode::CreateSet, &[id]);
        self.scu.prime(id);
        self.sets[id.0 as usize] = Some(repr);
        id
    }

    /// Creates an empty sorted sparse-array set.
    pub fn create_empty_sorted(&mut self) -> SetId {
        self.create(SetRepr::empty_sorted())
    }

    /// Creates an empty dense bitvector over the current universe.
    pub fn create_empty_dense(&mut self) -> SetId {
        let universe = self.universe;
        self.create(SetRepr::empty_dense(universe))
    }

    /// Creates a sorted sparse-array set from members.
    pub fn create_sorted(&mut self, members: impl IntoIterator<Item = Vertex>) -> SetId {
        self.create(SetRepr::sorted_from(members))
    }

    /// Creates a dense-bitvector set over the current universe from members.
    pub fn create_dense(&mut self, members: impl IntoIterator<Item = Vertex>) -> SetId {
        let universe = self.universe;
        self.create(SetRepr::dense_from(universe, members))
    }

    /// Creates a dense-bitvector set containing every vertex of the universe.
    pub fn create_full_dense(&mut self) -> SetId {
        let universe = self.universe;
        self.create(SetRepr::Dense(sisa_sets::DenseBitVector::full(universe)))
    }

    /// Clones a set into a fresh ID.
    pub fn clone_set(&mut self, id: SetId) -> SetId {
        let repr = self.repr(id).clone();
        let new_id = self.allocate_id();
        self.metadata
            .register(new_id, repr.kind(), repr.len(), self.universe_of(&repr));
        self.record_lifecycle(SisaOpcode::CloneSet, &[id, new_id]);
        self.scu.prime(new_id);
        // Cloning physically copies the set's storage.
        let cost = match repr.kind() {
            RepresentationKind::DenseBitvector => self
                .scu
                .pum_model()
                .bulk_op_cost(sisa_pim::pum::BulkOp::Or, self.universe_of(&repr)),
            _ => self.scu.pnm_model().streaming_cost(repr.len(), 0),
        };
        self.stats.pnm_cycles += cost;
        self.sets[new_id.0 as usize] = Some(repr);
        new_id
    }

    /// Deletes a set, freeing its ID.
    pub fn delete(&mut self, id: SetId) {
        self.record_lifecycle(SisaOpcode::DeleteSet, &[id]);
        self.expect_slot(id);
        self.sets[id.0 as usize] = None;
        self.metadata.remove(id);
        self.scu.invalidate(id);
        self.free_ids.push(id.0);
    }

    // -----------------------------------------------------------------------
    // Queries
    // -----------------------------------------------------------------------

    /// The cardinality `|A|` (an `O(1)` metadata lookup, §6.2.3).
    pub fn cardinality(&mut self, id: SetId) -> usize {
        self.stats.record_instruction(SisaOpcode::Cardinality);
        let outcome = self.scu.dispatch_metadata(&[id]);
        self.apply_outcome(&outcome, None);
        self.repr(id).len()
    }

    /// Membership `x ∈ A`.
    pub fn contains(&mut self, id: SetId, v: Vertex) -> bool {
        self.stats.record_instruction(SisaOpcode::Membership);
        let meta = *self.metadata.get(id).expect("membership on unknown set");
        let outcome = self.scu.dispatch_element(id, &meta);
        self.apply_outcome(&outcome, None);
        self.repr(id).contains(v)
    }

    /// The members of a set as a sorted vector. Host-side iteration is
    /// charged at one host operation per element.
    pub fn members(&mut self, id: SetId) -> Vec<Vertex> {
        let members = self.repr(id).to_sorted_vec();
        self.host_ops(members.len() as u64);
        members
    }

    /// Read-only access to a set's physical representation (no cost; intended
    /// for result extraction and tests).
    #[must_use]
    pub fn repr(&self, id: SetId) -> &SetRepr {
        self.sets
            .get(id.0 as usize)
            .and_then(Option::as_ref)
            .unwrap_or_else(|| panic!("set {id} does not exist"))
    }

    // -----------------------------------------------------------------------
    // Element updates
    // -----------------------------------------------------------------------

    /// Inserts a vertex: `A ∪= {x}`.
    pub fn insert(&mut self, id: SetId, v: Vertex) -> bool {
        self.element_update(id, v, SisaOpcode::InsertElement, true)
    }

    /// Removes a vertex: `A \= {x}`.
    pub fn remove(&mut self, id: SetId, v: Vertex) -> bool {
        self.element_update(id, v, SisaOpcode::RemoveElement, false)
    }

    fn element_update(&mut self, id: SetId, v: Vertex, opcode: SisaOpcode, insert: bool) -> bool {
        self.stats.record_instruction(opcode);
        let meta = *self
            .metadata
            .get(id)
            .expect("element update on unknown set");
        let outcome = self.scu.dispatch_element(id, &meta);
        self.apply_outcome(&outcome, None);
        self.expect_slot(id);
        let repr = self.sets[id.0 as usize]
            .as_mut()
            .unwrap_or_else(|| panic!("set {id} does not exist"));
        let changed = if insert {
            repr.insert(v)
        } else {
            repr.remove(v)
        };
        let (kind, len) = (repr.kind(), repr.len());
        self.metadata.update(id, kind, len);
        changed
    }

    // -----------------------------------------------------------------------
    // Binary set operations
    // -----------------------------------------------------------------------

    /// `A ∩ B`, materialised as a new set.
    pub fn intersect(&mut self, a: SetId, b: SetId) -> SetId {
        self.binary_materialising(a, b, BinarySetOp::Intersection, SisaOpcode::IntersectAuto)
    }

    /// `A ∪ B`, materialised as a new set.
    pub fn union(&mut self, a: SetId, b: SetId) -> SetId {
        self.binary_materialising(a, b, BinarySetOp::Union, SisaOpcode::UnionAuto)
    }

    /// `A \ B`, materialised as a new set.
    pub fn difference(&mut self, a: SetId, b: SetId) -> SetId {
        self.binary_materialising(a, b, BinarySetOp::Difference, SisaOpcode::DifferenceAuto)
    }

    /// `|A ∩ B|` without materialising the intersection.
    pub fn intersect_count(&mut self, a: SetId, b: SetId) -> usize {
        self.binary_counting(
            a,
            b,
            BinarySetOp::Intersection,
            SisaOpcode::IntersectCountAuto,
        )
    }

    /// `|A ∪ B|` without materialising the union.
    pub fn union_count(&mut self, a: SetId, b: SetId) -> usize {
        self.binary_counting(a, b, BinarySetOp::Union, SisaOpcode::UnionCountAuto)
    }

    /// `|A \ B|` without materialising the difference.
    pub fn difference_count(&mut self, a: SetId, b: SetId) -> usize {
        self.binary_counting(
            a,
            b,
            BinarySetOp::Difference,
            SisaOpcode::DifferenceCountAuto,
        )
    }

    /// In-place union `A ∪= B` (the result replaces `A`).
    pub fn union_assign(&mut self, a: SetId, b: SetId) {
        let result = self.binary_repr(a, b, BinarySetOp::Union, SisaOpcode::UnionAuto);
        self.replace(a, result);
    }

    /// In-place intersection `A ∩= B`.
    pub fn intersect_assign(&mut self, a: SetId, b: SetId) {
        let result = self.binary_repr(a, b, BinarySetOp::Intersection, SisaOpcode::IntersectAuto);
        self.replace(a, result);
    }

    /// In-place difference `A \= B`.
    pub fn difference_assign(&mut self, a: SetId, b: SetId) {
        let result = self.binary_repr(a, b, BinarySetOp::Difference, SisaOpcode::DifferenceAuto);
        self.replace(a, result);
    }

    fn binary_materialising(
        &mut self,
        a: SetId,
        b: SetId,
        op: BinarySetOp,
        opcode: SisaOpcode,
    ) -> SetId {
        let result = self.binary_repr(a, b, op, opcode);
        let id = self.allocate_id();
        self.metadata
            .register(id, result.kind(), result.len(), self.universe_of(&result));
        self.scu.prime(id);
        self.sets[id.0 as usize] = Some(result);
        id
    }

    fn binary_counting(
        &mut self,
        a: SetId,
        b: SetId,
        op: BinarySetOp,
        opcode: SisaOpcode,
    ) -> usize {
        self.charge_binary(a, b, op, opcode, true);
        let (ra, rb) = (self.repr(a), self.repr(b));
        match op {
            BinarySetOp::Intersection => ra.intersect_count(rb),
            BinarySetOp::Union => ra.union_count(rb),
            BinarySetOp::Difference => ra.difference_count(rb),
        }
    }

    fn binary_repr(&mut self, a: SetId, b: SetId, op: BinarySetOp, opcode: SisaOpcode) -> SetRepr {
        self.charge_binary(a, b, op, opcode, false);
        let (ra, rb) = (self.repr(a), self.repr(b));
        match op {
            BinarySetOp::Intersection => ra.intersect(rb),
            BinarySetOp::Union => ra.union(rb),
            BinarySetOp::Difference => ra.difference(rb),
        }
    }

    fn charge_binary(
        &mut self,
        a: SetId,
        b: SetId,
        op: BinarySetOp,
        opcode: SisaOpcode,
        count_only: bool,
    ) {
        self.stats.record_instruction(opcode);
        let ma = *self.metadata.get(a).expect("operation on unknown set A");
        let mb = *self.metadata.get(b).expect("operation on unknown set B");
        let outcome = self.scu.dispatch_binary(op, count_only, a, &ma, b, &mb);
        if self.config.track_set_sizes {
            self.stats.processed_set_sizes.push(ma.cardinality as u32);
            self.stats.processed_set_sizes.push(mb.cardinality as u32);
        }
        self.apply_outcome(&outcome, Some(outcome.choice));
    }

    fn replace(&mut self, id: SetId, repr: SetRepr) {
        self.expect_slot(id);
        self.metadata.update(id, repr.kind(), repr.len());
        self.sets[id.0 as usize] = Some(repr);
    }

    // -----------------------------------------------------------------------
    // Host-side accounting and task boundaries
    // -----------------------------------------------------------------------

    /// Charges `n` host-side scalar operations (loop control, counters,
    /// comparisons done outside SISA instructions).
    pub fn host_ops(&mut self, n: u64) {
        self.host_ops_pending += n as f64 * self.config.host_op_cost;
        let whole = self.host_ops_pending.floor();
        if whole >= 1.0 {
            self.stats.host_cycles += whole as u64;
            self.host_ops_pending -= whole;
        }
    }

    /// Marks the beginning of a parallel task; [`SisaRuntime::task_end`]
    /// returns the cycles accumulated since this call.
    pub fn task_begin(&mut self) {
        self.task_mark = self.stats.total_cycles();
    }

    /// Ends the current task, returning its cycle count.
    pub fn task_end(&mut self) -> u64 {
        self.stats.total_cycles() - self.task_mark
    }

    // -----------------------------------------------------------------------
    // Internals
    // -----------------------------------------------------------------------

    fn allocate_id(&mut self) -> SetId {
        if let Some(raw) = self.free_ids.pop() {
            SetId(raw)
        } else {
            let id = SetId(self.sets.len() as u32);
            self.sets.push(None);
            id
        }
    }

    fn record_lifecycle(&mut self, opcode: SisaOpcode, ids: &[SetId]) {
        self.stats.record_instruction(opcode);
        let outcome = self.scu.dispatch_metadata(ids);
        self.apply_outcome(&outcome, None);
    }

    fn apply_outcome(
        &mut self,
        outcome: &DispatchOutcome,
        choice: Option<crate::scu::ExecutionChoice>,
    ) {
        self.stats.scu_cycles += outcome.scu_cycles;
        self.stats.smb_hits += outcome.smb_hits;
        self.stats.smb_misses += outcome.smb_misses;
        self.stats.energy_nj += outcome.energy_nj;
        match outcome.choice.target() {
            ExecutionTarget::Pum => self.stats.pum_cycles += outcome.exec_cycles,
            ExecutionTarget::Pnm => self.stats.pnm_cycles += outcome.exec_cycles,
        }
        if let Some(choice) = choice {
            match choice {
                crate::scu::ExecutionChoice::PumBulk(_) => self.stats.pum_ops += 1,
                crate::scu::ExecutionChoice::PnmMerge => {
                    self.stats.pnm_ops += 1;
                    self.stats.merge_selected += 1;
                }
                crate::scu::ExecutionChoice::PnmGalloping => {
                    self.stats.pnm_ops += 1;
                    self.stats.gallop_selected += 1;
                }
                _ => self.stats.pnm_ops += 1,
            }
        }
    }

    fn universe_of(&self, repr: &SetRepr) -> usize {
        match repr {
            SetRepr::Dense(d) => d.universe(),
            _ => self.universe,
        }
    }

    fn expect_slot(&self, id: SetId) {
        assert!(
            (id.0 as usize) < self.sets.len() && self.sets[id.0 as usize].is_some(),
            "set {id} does not exist"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn runtime() -> SisaRuntime {
        let mut rt = SisaRuntime::with_defaults();
        rt.set_universe(256);
        rt
    }

    #[test]
    fn create_query_delete_lifecycle() {
        let mut rt = runtime();
        let a = rt.create_sorted([1, 5, 9]);
        assert_eq!(rt.cardinality(a), 3);
        assert!(rt.contains(a, 5));
        assert!(!rt.contains(a, 6));
        assert_eq!(rt.members(a), vec![1, 5, 9]);
        assert_eq!(rt.live_sets(), 1);
        rt.delete(a);
        assert_eq!(rt.live_sets(), 0);
        // The freed ID is reused.
        let b = rt.create_sorted([2]);
        assert_eq!(b, a);
    }

    #[test]
    #[should_panic(expected = "does not exist")]
    fn using_a_deleted_set_panics() {
        let mut rt = runtime();
        let a = rt.create_sorted([1]);
        rt.delete(a);
        let _ = rt.repr(a);
    }

    #[test]
    fn set_algebra_is_correct_across_representations() {
        let mut rt = runtime();
        let sparse = rt.create_sorted([1, 2, 3, 10, 20]);
        let dense = rt.create_dense([2, 10, 30, 40]);
        let inter = rt.intersect(sparse, dense);
        assert_eq!(rt.members(inter), vec![2, 10]);
        let uni = rt.union(sparse, dense);
        assert_eq!(rt.members(uni), vec![1, 2, 3, 10, 20, 30, 40]);
        let diff = rt.difference(sparse, dense);
        assert_eq!(rt.members(diff), vec![1, 3, 20]);
        assert_eq!(rt.intersect_count(sparse, dense), 2);
        assert_eq!(rt.union_count(sparse, dense), 7);
        assert_eq!(rt.difference_count(sparse, dense), 3);
    }

    #[test]
    fn in_place_operations_mutate_their_first_argument() {
        let mut rt = runtime();
        let a = rt.create_dense([1, 2, 3, 4]);
        let b = rt.create_dense([3, 4, 5]);
        rt.intersect_assign(a, b);
        assert_eq!(rt.members(a), vec![3, 4]);
        rt.union_assign(a, b);
        assert_eq!(rt.members(a), vec![3, 4, 5]);
        rt.difference_assign(a, b);
        assert!(rt.members(a).is_empty());
    }

    #[test]
    fn insert_and_remove_update_metadata() {
        let mut rt = runtime();
        let a = rt.create_dense([1]);
        assert!(rt.insert(a, 7));
        assert!(!rt.insert(a, 7));
        assert_eq!(rt.cardinality(a), 2);
        assert!(rt.remove(a, 1));
        assert_eq!(rt.cardinality(a), 1);
    }

    #[test]
    fn clone_produces_an_independent_set() {
        let mut rt = runtime();
        let a = rt.create_sorted([1, 2]);
        let b = rt.clone_set(a);
        assert_ne!(a, b);
        rt.insert(b, 3);
        assert_eq!(rt.members(a), vec![1, 2]);
        assert_eq!(rt.members(b), vec![1, 2, 3]);
    }

    #[test]
    fn cycles_accumulate_and_split_by_unit() {
        let mut rt = runtime();
        let a = rt.create_dense((0..200).collect::<Vec<_>>());
        let b = rt.create_dense((100..256).collect::<Vec<_>>());
        let s = rt.create_sorted([1, 2, 3]);
        let _ = rt.intersect(a, b); // PUM
        let _ = rt.intersect(s, a); // PNM probe
        let stats = rt.stats();
        assert!(stats.pum_cycles > 0);
        assert!(stats.pnm_cycles > 0);
        assert!(stats.scu_cycles > 0);
        assert_eq!(stats.pum_ops, 1);
        assert_eq!(stats.pnm_ops, 1);
        assert!(stats.energy_nj > 0.0);
        assert!(stats.total_instructions() >= 5);
    }

    #[test]
    fn task_boundaries_measure_deltas() {
        let mut rt = runtime();
        let a = rt.create_dense([1, 2, 3]);
        let b = rt.create_dense([2, 3, 4]);
        rt.task_begin();
        let _ = rt.intersect(a, b);
        let t1 = rt.task_end();
        assert!(t1 > 0);
        rt.task_begin();
        let t2 = rt.task_end();
        assert_eq!(t2, 0);
    }

    #[test]
    fn set_size_tracking_records_operand_sizes() {
        let mut rt = SisaRuntime::new(SisaConfig::with_set_size_tracking());
        rt.set_universe(64);
        let a = rt.create_sorted([1, 2, 3]);
        let b = rt.create_sorted([2, 3]);
        let _ = rt.intersect_count(a, b);
        assert_eq!(rt.stats().processed_set_sizes, vec![3, 2]);
    }

    #[test]
    fn host_ops_accumulate_fractionally() {
        let mut rt = runtime();
        rt.host_ops(1); // 0.5 cycles -> pending
        assert_eq!(rt.stats().host_cycles, 0);
        rt.host_ops(1); // reaches 1.0
        assert_eq!(rt.stats().host_cycles, 1);
    }
}
