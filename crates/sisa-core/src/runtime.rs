//! The SISA runtime: the simulated SISA platform behind [`SetEngine`].
//!
//! [`SisaRuntime`] owns the physical sets (indexed by [`SetId`]), the
//! Set-Metadata table and the SCU. Every operation flows through two stages:
//!
//! 1. **Issue** — the operation is materialised as a genuine
//!    [`sisa_isa::SisaInstruction`]: operands are mapped onto RISC-V registers
//!    through the [`crate::issue::RegisterFile`] binding table, the dynamic
//!    instruction count is recorded, and (when a [`TraceSink`] is attached)
//!    the instruction plus its semantic payload are captured so the run can
//!    be replayed by [`crate::Interpreter`].
//! 2. **Dispatch** — the SCU consults the set metadata (through the SMB),
//!    chooses SISA-PUM or SISA-PNM and merge vs. galloping (§8.2–§8.3), and
//!    returns a costed [`DispatchOutcome`]; the runtime absorbs the outcome's
//!    cycles/energy into the per-unit work counters and **enqueues** the
//!    instruction's latency, operand reads and result writes into the
//!    scoreboarded [`IssueQueue`], which computes where it lands on the
//!    overlapped timeline ([`ExecStats::makespan_cycles`], with operand
//!    hazards attributed to [`ExecStats::dep_stall_cycles`]). The operation
//!    is then functionally executed on the real set data so algorithms
//!    produce validated answers. At issue depth 1 (the default) the queue is
//!    fully serial and the makespan equals the serial work total
//!    cycle-for-cycle.
//!
//! Invalid set identifiers are programming errors and panic, mirroring how a
//! real SISA program would fault on a dangling set ID.

use crate::config::SisaConfig;
use crate::engine::SetEngine;
use crate::issue::RegisterFile;
use crate::metadata::SetMetadataTable;
use crate::parallel::TaskRecord;
use crate::pipeline::{IssueQueue, LaneKind, WriteIntent};
use crate::scu::{BinarySetOp, DispatchOutcome, ExecutionTarget, Scu};
use crate::stats::ExecStats;
use crate::telemetry::{InstructionEvent, SharedCollector};
use crate::trace::{TraceOp, TraceSink};
use crate::Vertex;
use sisa_isa::{SetId, SisaInstruction, SisaOpcode};
use sisa_sets::{RepresentationKind, SetRepr};

/// The SISA runtime (thin software layer + SCU + set storage).
#[derive(Clone, Debug)]
pub struct SisaRuntime {
    config: SisaConfig,
    scu: Scu,
    sets: Vec<Option<SetRepr>>,
    metadata: SetMetadataTable,
    stats: ExecStats,
    universe: usize,
    free_ids: Vec<u32>,
    host_ops_pending: f64,
    task_mark: u64,
    regs: RegisterFile,
    trace: Option<TraceSink>,
    pipeline: IssueQueue,
    collector: Option<SharedCollector>,
    telemetry_group: u32,
}

impl SisaRuntime {
    /// Creates a runtime with the given configuration. The vertex universe
    /// defaults to 0 and is usually set by [`crate::SetGraph::load`] or
    /// [`SetEngine::set_universe`].
    #[must_use]
    pub fn new(config: SisaConfig) -> Self {
        Self {
            config,
            scu: Scu::new(config.platform, config.variant_selection),
            sets: Vec::new(),
            metadata: SetMetadataTable::new(),
            stats: ExecStats::default(),
            universe: 0,
            free_ids: Vec::new(),
            host_ops_pending: 0.0,
            task_mark: 0,
            regs: RegisterFile::new(),
            trace: None,
            pipeline: Self::build_pipeline(&config),
            collector: None,
            telemetry_group: 0,
        }
    }

    /// Builds the issue queue the configuration asks for: the in-order
    /// scoreboarded queue by default, or — when either rename/out-of-order
    /// knob is set — the renamed out-of-order scheduler whose shadow
    /// reference is the in-order queue at `issue_depth` × lanes.
    fn build_pipeline(config: &SisaConfig) -> IssueQueue {
        let lanes = config.resolved_issue_lanes();
        if config.uses_ooo() {
            IssueQueue::with_ooo(
                config.issue_depth,
                lanes,
                config.ooo_window,
                config.rename_tags,
            )
        } else {
            IssueQueue::new(config.issue_depth, lanes)
        }
    }

    /// Creates a runtime with the default configuration.
    #[must_use]
    pub fn with_defaults() -> Self {
        Self::new(SisaConfig::default())
    }

    /// The runtime configuration.
    #[must_use]
    pub fn config(&self) -> &SisaConfig {
        &self.config
    }

    /// The SCU (exposed for harnesses that want its hit ratios and models).
    #[must_use]
    pub fn scu(&self) -> &Scu {
        &self.scu
    }

    /// The register binding table of the issue stage.
    #[must_use]
    pub fn registers(&self) -> &RegisterFile {
        &self.regs
    }

    /// The scoreboarded issue queue pricing instruction overlap.
    #[must_use]
    pub fn pipeline(&self) -> &IssueQueue {
        &self.pipeline
    }

    // -----------------------------------------------------------------------
    // Tracing
    // -----------------------------------------------------------------------

    /// Attaches a bounded [`TraceSink`] capturing up to `capacity` events;
    /// subsequent operations are recorded until [`SisaRuntime::take_trace`].
    pub fn enable_trace(&mut self, capacity: usize) {
        self.trace = Some(TraceSink::bounded(capacity));
    }

    /// Attaches a trace sink with the default capacity.
    pub fn enable_default_trace(&mut self) {
        self.trace = Some(TraceSink::default());
    }

    /// The attached trace, if any.
    #[must_use]
    pub fn trace(&self) -> Option<&TraceSink> {
        self.trace.as_ref()
    }

    /// Detaches and returns the trace, stopping further recording.
    pub fn take_trace(&mut self) -> Option<TraceSink> {
        self.trace.take()
    }

    // -----------------------------------------------------------------------
    // Telemetry
    // -----------------------------------------------------------------------

    /// Attaches a telemetry collector; every subsequent timed work item is
    /// reported as an [`InstructionEvent`] tagged with `group` (the track
    /// group — shard index for sharded engines, 0 for a flat runtime).
    ///
    /// Collectors are strictly observers: attaching one never changes
    /// results, work counters, makespan or energy (pinned by proptest).
    /// Statistics resets restart the pipeline clock but keep the collector
    /// attached, so events recorded after a reset start again at cycle 0.
    pub fn attach_collector(&mut self, collector: SharedCollector, group: u32) {
        self.collector = Some(collector);
        self.telemetry_group = group;
    }

    /// Detaches the telemetry collector, if any.
    pub fn detach_collector(&mut self) -> Option<SharedCollector> {
        self.collector.take()
    }

    /// The attached telemetry collector, if any.
    #[must_use]
    pub fn collector(&self) -> Option<&SharedCollector> {
        self.collector.as_ref()
    }

    // -----------------------------------------------------------------------
    // Issue stage
    // -----------------------------------------------------------------------

    /// Records the materialised instruction in the dynamic-count statistics
    /// and the trace, completing the issue stage.
    fn issued(&mut self, instruction: SisaInstruction, op: TraceOp) {
        self.stats.record_instruction(instruction.opcode);
        if let Some(sink) = &mut self.trace {
            sink.record(Some(instruction), op);
        }
    }

    /// Records a host-side event (no SISA instruction) in the trace.
    fn host_event(&mut self, op: TraceOp) {
        if let Some(sink) = &mut self.trace {
            sink.record(None, op);
        }
    }

    /// Charges host scalar operations without recording a trace event (used
    /// where the charge is a sub-step of an already-traced operation). The
    /// whole cycles charged are enqueued as serial work on the issue queue's
    /// host resource: host work overlaps vault work but never itself.
    fn charge_host_ops(&mut self, n: u64) {
        self.host_ops_pending += n as f64 * self.config.host_op_cost;
        let whole = self.host_ops_pending.floor();
        if whole >= 1.0 {
            self.stats.host_cycles += whole as u64;
            self.host_ops_pending -= whole;
            self.timeline(None, LaneKind::Host, whole as u64, &[], &[]);
        }
    }

    // -----------------------------------------------------------------------
    // Dispatch stage internals
    // -----------------------------------------------------------------------

    /// Enqueues one timed work item into the scoreboarded issue queue and
    /// folds the schedule it lands on into the statistics: the overlapped
    /// makespan, any operand-hazard stall, removed false dependences and
    /// out-of-order bypasses (each attributed to `opcode` when the item is a
    /// SISA instruction). A `sisa.del` routes through the renaming layer as
    /// a [`WriteIntent::Release`], so under renaming it consumes the dying
    /// version instead of WAR-waiting on its readers.
    fn timeline(
        &mut self,
        opcode: Option<SisaOpcode>,
        kind: LaneKind,
        cycles: u64,
        reads: &[SetId],
        writes: &[SetId],
    ) {
        let intent = if opcode == Some(SisaOpcode::DeleteSet) {
            WriteIntent::Release
        } else {
            WriteIntent::Produce
        };
        let landed = self.pipeline.issue_op(kind, cycles, reads, writes, intent);
        self.stats.makespan_cycles = self.pipeline.makespan_cycles();
        if landed.dep_stall > 0 {
            self.stats.dep_stall_cycles += landed.dep_stall;
            if let Some(op) = opcode {
                *self.stats.dep_stall_by_opcode.entry(op).or_insert(0) += landed.dep_stall;
            }
        }
        if landed.false_dep_removed > 0 {
            self.stats.false_dep_stalls_removed += landed.false_dep_removed;
            if let Some(op) = opcode {
                *self
                    .stats
                    .false_dep_removed_by_opcode
                    .entry(op)
                    .or_insert(0) += landed.false_dep_removed;
            }
        }
        if landed.bypassed {
            self.stats.bypassed_instructions += 1;
            if let Some(op) = opcode {
                *self.stats.bypass_by_opcode.entry(op).or_insert(0) += 1;
            }
        }
        if let Some(collector) = &self.collector {
            collector.instruction(&InstructionEvent {
                group: self.telemetry_group,
                opcode,
                kind,
                lane: landed.lane,
                start: landed.start,
                finish: landed.finish,
                cycles,
                dep_stall: landed.dep_stall,
                false_dep_removed: landed.false_dep_removed,
                bypassed: landed.bypassed,
                phys_tag: landed.phys_tag,
                in_flight: self.pipeline.in_flight(),
                free_tags: self.pipeline.free_tags(),
            });
        }
    }

    fn binary_dispatch(
        &mut self,
        a: SetId,
        b: SetId,
        op: BinarySetOp,
        count_only: bool,
    ) -> DispatchOutcome {
        let ma = *self.metadata.get(a).expect("operation on unknown set A");
        let mb = *self.metadata.get(b).expect("operation on unknown set B");
        let outcome = self.scu.dispatch_binary(op, count_only, a, &ma, b, &mb);
        if self.config.track_set_sizes {
            self.stats.processed_set_sizes.push(ma.cardinality as u32);
            self.stats.processed_set_sizes.push(mb.cardinality as u32);
        }
        self.apply_outcome(&outcome, Some(outcome.choice));
        outcome
    }

    /// Functionally applies a binary operation to two representations.
    fn combine(ra: &SetRepr, rb: &SetRepr, op: BinarySetOp) -> SetRepr {
        match op {
            BinarySetOp::Intersection => ra.intersect(rb),
            BinarySetOp::Union => ra.union(rb),
            BinarySetOp::Difference => ra.difference(rb),
        }
    }

    fn register_set(&mut self, repr: SetRepr) -> SetId {
        let id = self.allocate_id();
        self.metadata
            .register(id, repr.kind(), repr.len(), self.universe_of(&repr));
        self.scu.prime(id);
        self.sets[id.0 as usize] = Some(repr);
        id
    }

    fn replace(&mut self, id: SetId, repr: SetRepr) {
        self.expect_slot(id);
        self.metadata.update(id, repr.kind(), repr.len());
        self.sets[id.0 as usize] = Some(repr);
    }

    fn element_update(&mut self, id: SetId, v: Vertex, opcode: SisaOpcode, insert: bool) -> bool {
        let meta = *self
            .metadata
            .get(id)
            .expect("element update on unknown set");
        let instr = self.regs.issue_element(opcode, id);
        let trace_op = if insert {
            TraceOp::Insert { id, v }
        } else {
            TraceOp::Remove { id, v }
        };
        self.issued(instr, trace_op);
        let outcome = self.scu.dispatch_element(id, &meta);
        self.apply_outcome(&outcome, None);
        // An element update reads and rewrites its set.
        self.timeline(
            Some(opcode),
            LaneKind::Vault,
            outcome.latency(),
            &[id],
            &[id],
        );
        self.expect_slot(id);
        let repr = self.sets[id.0 as usize]
            .as_mut()
            .unwrap_or_else(|| panic!("set {id} does not exist"));
        let changed = if insert {
            repr.insert(v)
        } else {
            repr.remove(v)
        };
        let (kind, len) = (repr.kind(), repr.len());
        self.metadata.update(id, kind, len);
        changed
    }

    fn opcode_of(op: BinarySetOp, count_only: bool) -> SisaOpcode {
        match (op, count_only) {
            (BinarySetOp::Intersection, false) => SisaOpcode::IntersectAuto,
            (BinarySetOp::Union, false) => SisaOpcode::UnionAuto,
            (BinarySetOp::Difference, false) => SisaOpcode::DifferenceAuto,
            (BinarySetOp::Intersection, true) => SisaOpcode::IntersectCountAuto,
            (BinarySetOp::Union, true) => SisaOpcode::UnionCountAuto,
            (BinarySetOp::Difference, true) => SisaOpcode::DifferenceCountAuto,
        }
    }

    fn binary_materialising(&mut self, a: SetId, b: SetId, op: BinarySetOp) -> SetId {
        let outcome = self.binary_dispatch(a, b, op, false);
        let result = Self::combine(self.repr(a), self.repr(b), op);
        let id = self.register_set(result);
        let instr = self
            .regs
            .issue_binary(Self::opcode_of(op, false), a, b, Some(id));
        self.issued(instr, TraceOp::Binary { op, a, b, dst: id });
        self.timeline(
            Some(instr.opcode),
            LaneKind::Vault,
            outcome.latency(),
            &[a, b],
            &[id],
        );
        id
    }

    fn binary_counting(&mut self, a: SetId, b: SetId, op: BinarySetOp) -> usize {
        // Validate before issuing, so a dangling operand faults without
        // corrupting the instruction counts or the register binding table.
        self.expect_slot(a);
        self.expect_slot(b);
        let instr = self
            .regs
            .issue_binary(Self::opcode_of(op, true), a, b, None);
        self.issued(instr, TraceOp::BinaryCount { op, a, b });
        let outcome = self.binary_dispatch(a, b, op, true);
        self.timeline(
            Some(instr.opcode),
            LaneKind::Vault,
            outcome.latency(),
            &[a, b],
            &[],
        );
        let (ra, rb) = (self.repr(a), self.repr(b));
        match op {
            BinarySetOp::Intersection => ra.intersect_count(rb),
            BinarySetOp::Union => ra.union_count(rb),
            BinarySetOp::Difference => ra.difference_count(rb),
        }
    }

    fn binary_assign(&mut self, a: SetId, b: SetId, op: BinarySetOp) {
        self.expect_slot(a);
        self.expect_slot(b);
        // The in-place form writes the result back over A, so rd = rs1.
        let instr = self
            .regs
            .issue_binary(Self::opcode_of(op, false), a, b, Some(a));
        self.issued(instr, TraceOp::BinaryAssign { op, a, b });
        let outcome = self.binary_dispatch(a, b, op, false);
        let result = Self::combine(self.repr(a), self.repr(b), op);
        self.timeline(
            Some(instr.opcode),
            LaneKind::Vault,
            outcome.latency(),
            &[a, b],
            &[a],
        );
        self.replace(a, result);
    }

    /// Dispatches a metadata-only SCU operation, absorbing its cost into the
    /// work counters and returning its latency for the caller's issue-queue
    /// entry.
    fn dispatch_metadata(&mut self, ids: &[SetId]) -> u64 {
        let outcome = self.scu.dispatch_metadata(ids);
        self.apply_outcome(&outcome, None);
        outcome.latency()
    }

    fn allocate_id(&mut self) -> SetId {
        crate::slots::allocate(&mut self.sets, &mut self.free_ids)
    }

    fn apply_outcome(
        &mut self,
        outcome: &DispatchOutcome,
        choice: Option<crate::scu::ExecutionChoice>,
    ) {
        self.stats.scu_cycles += outcome.scu_cycles;
        self.stats.smb_hits += outcome.smb_hits;
        self.stats.smb_misses += outcome.smb_misses;
        self.stats.energy_nj += outcome.energy_nj;
        match outcome.choice.target() {
            ExecutionTarget::Pum => self.stats.pum_cycles += outcome.exec_cycles,
            ExecutionTarget::Pnm => self.stats.pnm_cycles += outcome.exec_cycles,
        }
        if let Some(choice) = choice {
            match choice {
                crate::scu::ExecutionChoice::PumBulk(_) => self.stats.pum_ops += 1,
                crate::scu::ExecutionChoice::PnmMerge => {
                    self.stats.pnm_ops += 1;
                    self.stats.merge_selected += 1;
                }
                crate::scu::ExecutionChoice::PnmGalloping => {
                    self.stats.pnm_ops += 1;
                    self.stats.gallop_selected += 1;
                }
                _ => self.stats.pnm_ops += 1,
            }
        }
    }

    fn universe_of(&self, repr: &SetRepr) -> usize {
        match repr {
            SetRepr::Dense(d) => d.universe(),
            _ => self.universe,
        }
    }

    fn expect_slot(&self, id: SetId) {
        assert!(
            (id.0 as usize) < self.sets.len() && self.sets[id.0 as usize].is_some(),
            "set {id} does not exist"
        );
    }
}

impl SetEngine for SisaRuntime {
    fn backend_name(&self) -> &'static str {
        "sisa"
    }

    fn set_universe(&mut self, n: usize) {
        self.universe = self.universe.max(n);
        self.host_event(TraceOp::SetUniverse { n });
    }

    fn universe(&self) -> usize {
        self.universe
    }

    fn stats(&self) -> &ExecStats {
        &self.stats
    }

    fn reset_stats(&mut self) {
        self.stats = ExecStats::default();
        self.host_ops_pending = 0.0;
        self.task_mark = 0;
        // The load/measure boundary restarts the overlap timeline too.
        self.pipeline.reset();
        self.host_event(TraceOp::ResetStats);
    }

    fn live_sets(&self) -> usize {
        self.sets.iter().filter(|s| s.is_some()).count()
    }

    // -----------------------------------------------------------------------
    // Set lifecycle
    // -----------------------------------------------------------------------

    fn create(&mut self, repr: SetRepr) -> SetId {
        // The set contents are cloned into the trace only when one is attached.
        let traced = self.trace.is_some().then(|| repr.clone());
        let id = self.allocate_id();
        self.metadata
            .register(id, repr.kind(), repr.len(), self.universe_of(&repr));
        let instr = self
            .regs
            .issue_lifecycle(SisaOpcode::CreateSet, None, Some(id));
        match traced {
            Some(repr) => self.issued(instr, TraceOp::Create { id, repr }),
            None => self.stats.record_instruction(instr.opcode),
        }
        // The create instruction's own metadata lookup precedes the SMB prime:
        // the SCU only writes the SMB entry once the set exists.
        let latency = self.dispatch_metadata(&[id]);
        self.timeline(
            Some(SisaOpcode::CreateSet),
            LaneKind::Vault,
            latency,
            &[],
            &[id],
        );
        self.scu.prime(id);
        self.sets[id.0 as usize] = Some(repr);
        id
    }

    fn clone_set(&mut self, id: SetId) -> SetId {
        let repr = self.repr(id).clone();
        // Cloning physically copies the set's storage.
        let cost = match repr.kind() {
            RepresentationKind::DenseBitvector => self
                .scu
                .pum_model()
                .bulk_op_cost(sisa_pim::pum::BulkOp::Or, self.universe_of(&repr)),
            _ => self.scu.pnm_model().streaming_cost(repr.len(), 0),
        };
        let new_id = self.allocate_id();
        self.metadata
            .register(new_id, repr.kind(), repr.len(), self.universe_of(&repr));
        let instr = self
            .regs
            .issue_lifecycle(SisaOpcode::CloneSet, Some(id), Some(new_id));
        self.issued(
            instr,
            TraceOp::Clone {
                src: id,
                dst: new_id,
            },
        );
        let latency = self.dispatch_metadata(&[id, new_id]) + cost;
        self.scu.prime(new_id);
        self.stats.pnm_cycles += cost;
        // The physical copy reads the source and produces the clone.
        self.timeline(
            Some(SisaOpcode::CloneSet),
            LaneKind::Vault,
            latency,
            &[id],
            &[new_id],
        );
        self.sets[new_id.0 as usize] = Some(repr);
        new_id
    }

    fn delete(&mut self, id: SetId) {
        // Validate before touching statistics or the binding table, so a
        // double delete faults without corrupting the instruction counts.
        self.expect_slot(id);
        let instr = self
            .regs
            .issue_lifecycle(SisaOpcode::DeleteSet, Some(id), None);
        self.issued(instr, TraceOp::Delete { id });
        let latency = self.dispatch_metadata(&[id]);
        // Deletion writes the set's slot: WAR/WAW hazards keep it behind
        // every in-flight use of the set, and a later create recycling the
        // ID stays behind the delete.
        self.timeline(
            Some(SisaOpcode::DeleteSet),
            LaneKind::Vault,
            latency,
            &[],
            &[id],
        );
        crate::slots::release(&mut self.sets, &mut self.free_ids, id);
        self.metadata.remove(id);
        self.scu.invalidate(id);
        self.regs.release(id);
    }

    // -----------------------------------------------------------------------
    // Queries
    // -----------------------------------------------------------------------

    fn cardinality(&mut self, id: SetId) -> usize {
        self.expect_slot(id);
        let instr = self
            .regs
            .issue_lifecycle(SisaOpcode::Cardinality, Some(id), None);
        self.issued(instr, TraceOp::Cardinality { id });
        let latency = self.dispatch_metadata(&[id]);
        self.timeline(
            Some(SisaOpcode::Cardinality),
            LaneKind::Vault,
            latency,
            &[id],
            &[],
        );
        self.repr(id).len()
    }

    fn contains(&mut self, id: SetId, v: Vertex) -> bool {
        let meta = *self.metadata.get(id).expect("membership on unknown set");
        let instr = self.regs.issue_element(SisaOpcode::Membership, id);
        self.issued(instr, TraceOp::Membership { id, v });
        let outcome = self.scu.dispatch_element(id, &meta);
        self.apply_outcome(&outcome, None);
        self.timeline(
            Some(SisaOpcode::Membership),
            LaneKind::Vault,
            outcome.latency(),
            &[id],
            &[],
        );
        self.repr(id).contains(v)
    }

    fn members(&mut self, id: SetId) -> Vec<Vertex> {
        let members = self.repr(id).to_sorted_vec();
        // Result extraction streams the set out of memory through the PNM
        // (dense bitvectors stream their whole bitmap, sparse arrays their
        // elements) and then hands each element to the host.
        let stream_elems = match self.repr(id).kind() {
            RepresentationKind::DenseBitvector => self.universe_of(self.repr(id)).div_ceil(32),
            _ => members.len(),
        };
        let stream_cost = self.scu.pnm_model().streaming_cost(stream_elems, 0);
        self.stats.pnm_cycles += stream_cost;
        // The read-out streams the set through a vault lane (a read hazard on
        // the set); the per-element host hand-off below lands on the host
        // resource via `charge_host_ops`.
        self.timeline(None, LaneKind::Vault, stream_cost, &[id], &[]);
        self.host_event(TraceOp::Members { id });
        // Charged without a separate trace event: replaying `Members` already
        // re-executes this per-element host iteration.
        self.charge_host_ops(members.len() as u64);
        members
    }

    fn repr(&self, id: SetId) -> &SetRepr {
        self.sets
            .get(id.0 as usize)
            .and_then(Option::as_ref)
            .unwrap_or_else(|| panic!("set {id} does not exist"))
    }

    // -----------------------------------------------------------------------
    // Element updates
    // -----------------------------------------------------------------------

    fn insert(&mut self, id: SetId, v: Vertex) -> bool {
        self.element_update(id, v, SisaOpcode::InsertElement, true)
    }

    fn remove(&mut self, id: SetId, v: Vertex) -> bool {
        self.element_update(id, v, SisaOpcode::RemoveElement, false)
    }

    // -----------------------------------------------------------------------
    // Binary set operations
    // -----------------------------------------------------------------------

    fn intersect(&mut self, a: SetId, b: SetId) -> SetId {
        self.binary_materialising(a, b, BinarySetOp::Intersection)
    }

    fn union(&mut self, a: SetId, b: SetId) -> SetId {
        self.binary_materialising(a, b, BinarySetOp::Union)
    }

    fn difference(&mut self, a: SetId, b: SetId) -> SetId {
        self.binary_materialising(a, b, BinarySetOp::Difference)
    }

    fn intersect_count(&mut self, a: SetId, b: SetId) -> usize {
        self.binary_counting(a, b, BinarySetOp::Intersection)
    }

    fn union_count(&mut self, a: SetId, b: SetId) -> usize {
        self.binary_counting(a, b, BinarySetOp::Union)
    }

    fn difference_count(&mut self, a: SetId, b: SetId) -> usize {
        self.binary_counting(a, b, BinarySetOp::Difference)
    }

    fn intersect_assign(&mut self, a: SetId, b: SetId) {
        self.binary_assign(a, b, BinarySetOp::Intersection);
    }

    fn union_assign(&mut self, a: SetId, b: SetId) {
        self.binary_assign(a, b, BinarySetOp::Union);
    }

    fn difference_assign(&mut self, a: SetId, b: SetId) {
        self.binary_assign(a, b, BinarySetOp::Difference);
    }

    // -----------------------------------------------------------------------
    // Host-side accounting and task boundaries
    // -----------------------------------------------------------------------

    fn host_ops(&mut self, n: u64) {
        self.host_event(TraceOp::HostOps { n });
        self.charge_host_ops(n);
    }

    fn absorb_lane_work(&mut self, cycles: u64, writes: &[SetId]) {
        // Externally billed cycles (cross-shard link transfers) occupy a
        // vault lane on the overlap timeline but charge no work counters
        // here — the composite wrapper owns those. The write set keeps
        // consumers of whatever the work delivers behind it.
        if cycles > 0 {
            self.timeline(None, LaneKind::Vault, cycles, &[], writes);
        }
    }

    fn task_begin(&mut self) {
        self.task_mark = self.stats.total_cycles();
    }

    fn task_end(&mut self) -> TaskRecord {
        // SISA tasks carry no separate stall/DRAM component: the PIM cost
        // models already include memory time and PNM bandwidth scales with
        // the vault count (§8.4).
        TaskRecord::compute_only(self.stats.total_cycles() - self.task_mark)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn runtime() -> SisaRuntime {
        let mut rt = SisaRuntime::with_defaults();
        rt.set_universe(256);
        rt
    }

    #[test]
    fn create_query_delete_lifecycle() {
        let mut rt = runtime();
        let a = rt.create_sorted([1, 5, 9]);
        assert_eq!(rt.cardinality(a), 3);
        assert!(rt.contains(a, 5));
        assert!(!rt.contains(a, 6));
        assert_eq!(rt.members(a), vec![1, 5, 9]);
        assert_eq!(rt.live_sets(), 1);
        rt.delete(a);
        assert_eq!(rt.live_sets(), 0);
        // The freed ID is reused.
        let b = rt.create_sorted([2]);
        assert_eq!(b, a);
    }

    #[test]
    #[should_panic(expected = "does not exist")]
    fn using_a_deleted_set_panics() {
        let mut rt = runtime();
        let a = rt.create_sorted([1]);
        rt.delete(a);
        let _ = rt.repr(a);
    }

    #[test]
    fn double_delete_panics_without_corrupting_instruction_counts() {
        let mut rt = runtime();
        let a = rt.create_sorted([1, 2]);
        rt.delete(a);
        let counts_before = rt.stats().instructions.clone();
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            rt.delete(a);
        }));
        assert!(outcome.is_err(), "double delete must fault");
        // The faulting delete must not have been counted as executed.
        assert_eq!(rt.stats().instructions, counts_before);
    }

    #[test]
    fn dangling_operands_fault_before_any_stats_or_binding_mutation() {
        let mut rt = runtime();
        let live = rt.create_sorted([1, 2, 3]);
        let dead = rt.create_sorted([4, 5]);
        rt.delete(dead);

        let ops: [&mut dyn FnMut(&mut SisaRuntime); 4] = [
            &mut |p| {
                let _ = p.intersect_count(live, dead);
            },
            &mut |p| {
                let _ = p.union_count(dead, live);
            },
            &mut |p| p.difference_assign(live, dead),
            &mut |p| {
                let _ = p.cardinality(dead);
            },
        ];
        for f in ops {
            let mut probe = rt.clone();
            let stats_before = probe.stats().clone();
            let bound_before = probe.registers().bound();
            let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(&mut probe)));
            assert!(outcome.is_err(), "dangling operand must fault");
            // The faulting operation must not have been counted or have bound
            // the dead ID into the register file.
            assert_eq!(probe.stats(), &stats_before);
            assert_eq!(probe.registers().bound(), bound_before);
        }
    }

    #[test]
    fn set_algebra_is_correct_across_representations() {
        let mut rt = runtime();
        let sparse = rt.create_sorted([1, 2, 3, 10, 20]);
        let dense = rt.create_dense([2, 10, 30, 40]);
        let inter = rt.intersect(sparse, dense);
        assert_eq!(rt.members(inter), vec![2, 10]);
        let uni = rt.union(sparse, dense);
        assert_eq!(rt.members(uni), vec![1, 2, 3, 10, 20, 30, 40]);
        let diff = rt.difference(sparse, dense);
        assert_eq!(rt.members(diff), vec![1, 3, 20]);
        assert_eq!(rt.intersect_count(sparse, dense), 2);
        assert_eq!(rt.union_count(sparse, dense), 7);
        assert_eq!(rt.difference_count(sparse, dense), 3);
    }

    #[test]
    fn in_place_operations_mutate_their_first_argument() {
        let mut rt = runtime();
        let a = rt.create_dense([1, 2, 3, 4]);
        let b = rt.create_dense([3, 4, 5]);
        rt.intersect_assign(a, b);
        assert_eq!(rt.members(a), vec![3, 4]);
        rt.union_assign(a, b);
        assert_eq!(rt.members(a), vec![3, 4, 5]);
        rt.difference_assign(a, b);
        assert!(rt.members(a).is_empty());
    }

    #[test]
    fn insert_and_remove_update_metadata() {
        let mut rt = runtime();
        let a = rt.create_dense([1]);
        assert!(rt.insert(a, 7));
        assert!(!rt.insert(a, 7));
        assert_eq!(rt.cardinality(a), 2);
        assert!(rt.remove(a, 1));
        assert_eq!(rt.cardinality(a), 1);
    }

    #[test]
    fn clone_produces_an_independent_set() {
        let mut rt = runtime();
        let a = rt.create_sorted([1, 2]);
        let b = rt.clone_set(a);
        assert_ne!(a, b);
        rt.insert(b, 3);
        assert_eq!(rt.members(a), vec![1, 2]);
        assert_eq!(rt.members(b), vec![1, 2, 3]);
    }

    #[test]
    fn cycles_accumulate_and_split_by_unit() {
        let mut rt = runtime();
        let a = rt.create_dense((0..200).collect::<Vec<_>>());
        let b = rt.create_dense((100..256).collect::<Vec<_>>());
        let s = rt.create_sorted([1, 2, 3]);
        let _ = rt.intersect(a, b); // PUM
        let _ = rt.intersect(s, a); // PNM probe
        let stats = rt.stats();
        assert!(stats.pum_cycles > 0);
        assert!(stats.pnm_cycles > 0);
        assert!(stats.scu_cycles > 0);
        assert_eq!(stats.pum_ops, 1);
        assert_eq!(stats.pnm_ops, 1);
        assert!(stats.energy_nj > 0.0);
        assert!(stats.total_instructions() >= 5);
    }

    #[test]
    fn members_charges_pnm_streaming_for_result_extraction() {
        let mut rt = runtime();
        let sparse = rt.create_sorted((0..200).collect::<Vec<_>>());
        let dense = rt.create_dense((0..200).collect::<Vec<_>>());
        for id in [sparse, dense] {
            let before = rt.stats().clone();
            let out = rt.members(id);
            assert_eq!(out.len(), 200);
            let after = rt.stats();
            assert!(
                after.pnm_cycles > before.pnm_cycles,
                "reading a set out must charge PNM streaming cycles"
            );
            assert!(
                after.host_cycles > before.host_cycles,
                "per-element host iteration must still be charged"
            );
        }
    }

    #[test]
    fn task_boundaries_measure_deltas() {
        let mut rt = runtime();
        let a = rt.create_dense([1, 2, 3]);
        let b = rt.create_dense([2, 3, 4]);
        rt.task_begin();
        let _ = rt.intersect(a, b);
        let t1 = rt.task_end();
        assert!(t1.cycles > 0);
        assert_eq!(t1.stall_cycles, 0);
        rt.task_begin();
        let t2 = rt.task_end();
        assert_eq!(t2.cycles, 0);
    }

    #[test]
    fn set_size_tracking_records_operand_sizes() {
        let mut rt = SisaRuntime::new(SisaConfig::with_set_size_tracking());
        rt.set_universe(64);
        let a = rt.create_sorted([1, 2, 3]);
        let b = rt.create_sorted([2, 3]);
        let _ = rt.intersect_count(a, b);
        assert_eq!(rt.stats().processed_set_sizes, vec![3, 2]);
    }

    #[test]
    fn host_ops_accumulate_fractionally() {
        let mut rt = runtime();
        rt.host_ops(1); // 0.5 cycles -> pending
        assert_eq!(rt.stats().host_cycles, 0);
        rt.host_ops(1); // reaches 1.0
        assert_eq!(rt.stats().host_cycles, 1);
    }

    #[test]
    fn depth_one_makespan_equals_the_serial_work_total() {
        // The default configuration issues serially (depth 1): every charged
        // cycle lands end-to-end on the timeline, so the overlapped makespan
        // degenerates to the serial total and no dependence stall is exposed.
        let mut rt = runtime();
        let a = rt.create_dense((0..100).collect::<Vec<_>>());
        let b = rt.create_dense((50..150).collect::<Vec<_>>());
        let c = rt.intersect(a, b);
        let _ = rt.intersect_count(c, a);
        let _ = rt.members(a);
        rt.insert(c, 200);
        rt.host_ops(11);
        rt.delete(c);
        let stats = rt.stats();
        assert!(stats.total_cycles() > 0);
        assert_eq!(stats.makespan_cycles, stats.total_cycles());
        assert_eq!(stats.dep_stall_cycles, 0);
        assert!(stats.dep_stall_by_opcode.is_empty());
        assert!((stats.overlap_speedup() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn deeper_queues_overlap_independent_instructions() {
        // Counting intersections over pairwise-disjoint operand sets carry no
        // hazards: with lanes and depth available they overlap, and the work
        // counters (incl. energy) stay exactly the serial totals.
        let run = |config: SisaConfig| {
            let mut rt = SisaRuntime::new(config);
            rt.set_universe(512);
            let sets: Vec<SetId> = (0..16u32)
                .map(|i| rt.create_sorted((i * 32..i * 32 + 30).collect::<Vec<_>>()))
                .collect();
            rt.reset_stats();
            for pair in sets.chunks(2) {
                let _ = rt.intersect_count(pair[0], pair[1]);
            }
            rt
        };
        let serial = run(SisaConfig::default());
        let deep = run(SisaConfig::with_pipeline(16, 8));
        assert_eq!(
            serial.stats().total_cycles(),
            deep.stats().total_cycles(),
            "work is conserved across issue depths"
        );
        assert_eq!(serial.stats().energy_nj, deep.stats().energy_nj);
        assert_eq!(serial.stats().instructions, deep.stats().instructions);
        assert!(
            deep.stats().makespan_cycles < serial.stats().makespan_cycles,
            "independent instructions must overlap: {} !< {}",
            deep.stats().makespan_cycles,
            serial.stats().makespan_cycles
        );
        assert!(deep.stats().overlap_speedup() > 1.0);
    }

    #[test]
    fn dependent_instructions_stall_with_the_wait_attributed_per_opcode() {
        let mut rt = SisaRuntime::new(SisaConfig::with_pipeline(16, 8));
        rt.set_universe(256);
        let a = rt.create_sorted((0..64).collect::<Vec<_>>());
        let b = rt.create_sorted((32..96).collect::<Vec<_>>());
        rt.reset_stats();
        let c = rt.intersect(a, b); // writes c
        let _ = rt.intersect_count(c, a); // RAW on c: must wait
        let stats = rt.stats();
        assert!(stats.dep_stall_cycles > 0, "the RAW hazard must stall");
        assert!(
            stats.dep_stall_by_opcode[&SisaOpcode::IntersectCountAuto] > 0,
            "the stall is attributed to the stalled instruction's opcode"
        );
        assert!(stats.makespan_cycles <= stats.total_cycles());
    }

    #[test]
    fn reset_stats_restarts_the_overlap_timeline() {
        let mut rt = SisaRuntime::new(SisaConfig::pipelined(8));
        rt.set_universe(128);
        let a = rt.create_sorted([1, 2, 3]);
        let b = rt.create_sorted([2, 3, 4]);
        let _ = rt.intersect_count(a, b);
        assert!(rt.stats().makespan_cycles > 0);
        rt.reset_stats();
        assert_eq!(rt.stats().makespan_cycles, 0);
        assert_eq!(rt.pipeline().issued(), 0);
        // Work after the boundary starts a fresh timeline at cycle 0.
        let _ = rt.intersect_count(a, b);
        assert!(rt.stats().makespan_cycles <= rt.stats().total_cycles());
    }

    #[test]
    fn absorbed_lane_work_occupies_the_timeline_but_charges_no_counters() {
        let mut rt = runtime();
        let before = rt.stats().clone();
        rt.absorb_lane_work(1_000, &[]);
        let after = rt.stats();
        assert_eq!(after.total_cycles(), before.total_cycles());
        assert_eq!(after.total_instructions(), before.total_instructions());
        assert_eq!(
            after.makespan_cycles,
            before.makespan_cycles + 1_000,
            "at depth 1 the absorbed wait serialises onto the timeline"
        );
    }

    /// A materialise → read → delete chain over recycled set IDs: the
    /// k-clique pattern whose WAR/WAW hazards floor the in-order pipeline.
    fn recycled_temporaries(rt: &mut SisaRuntime) -> (SetId, SetId) {
        let a = rt.create_sorted((0..64).collect::<Vec<_>>());
        let b = rt.create_sorted((32..96).collect::<Vec<_>>());
        rt.reset_stats();
        for _ in 0..12 {
            let t = rt.intersect(a, b); // materialise a temporary
            let _ = rt.intersect_count(t, a); // read it
            rt.delete(t); // kill it; the next intersect recycles the ID
        }
        (a, b)
    }

    #[test]
    fn renaming_conserves_work_and_shrinks_the_makespan() {
        let mut inorder = SisaRuntime::new(SisaConfig::with_pipeline(8, 8));
        inorder.set_universe(256);
        recycled_temporaries(&mut inorder);
        let mut renamed = SisaRuntime::new(SisaConfig::with_rename_ooo(8, 8, 8, 64));
        renamed.set_universe(256);
        recycled_temporaries(&mut renamed);
        // Scheduling never changes what the program costs or computes.
        assert_eq!(
            renamed.stats().total_cycles(),
            inorder.stats().total_cycles()
        );
        assert_eq!(renamed.stats().energy_nj, inorder.stats().energy_nj);
        assert_eq!(renamed.stats().instructions, inorder.stats().instructions);
        // The recycled-ID chains serialise in order and overlap renamed.
        assert!(
            renamed.stats().makespan_cycles < inorder.stats().makespan_cycles,
            "renamed {} !< in-order {}",
            renamed.stats().makespan_cycles,
            inorder.stats().makespan_cycles
        );
        assert!(renamed.stats().bypassed_instructions > 0);
        assert!(!renamed.stats().bypass_by_opcode.is_empty());
    }

    #[test]
    fn rename_stall_decomposition_matches_the_in_order_run_per_opcode() {
        let mut inorder = SisaRuntime::new(SisaConfig::with_pipeline(8, 4));
        inorder.set_universe(256);
        recycled_temporaries(&mut inorder);
        let mut renamed = SisaRuntime::new(SisaConfig::with_rename_ooo(8, 4, 16, 64));
        renamed.set_universe(256);
        recycled_temporaries(&mut renamed);
        // The chain genuinely carries false dependences...
        assert!(renamed.stats().false_dep_stalls_removed > 0);
        // ...and the decomposition reconstructs the rename-off stall report
        // exactly: totals and every per-opcode entry.
        assert_eq!(
            renamed.stats().dep_stall_cycles + renamed.stats().false_dep_stalls_removed,
            inorder.stats().dep_stall_cycles
        );
        let mut recombined = renamed.stats().dep_stall_by_opcode.clone();
        for (&op, &n) in &renamed.stats().false_dep_removed_by_opcode {
            *recombined.entry(op).or_insert(0) += n;
        }
        assert_eq!(recombined, inorder.stats().dep_stall_by_opcode);
    }

    #[test]
    fn rename_off_configuration_is_bitexact_with_the_in_order_pipeline() {
        // Both knobs off must reproduce PR4 behaviour exactly — and a
        // reorder window without renaming obeys the same hazard rules as an
        // in-order window of that size.
        let run = |config: SisaConfig| {
            let mut rt = SisaRuntime::new(config);
            rt.set_universe(256);
            recycled_temporaries(&mut rt);
            rt.stats().clone()
        };
        let inorder = run(SisaConfig::with_pipeline(8, 4));
        let windowed = run(SisaConfig::with_rename_ooo(1, 4, 8, 0));
        assert_eq!(windowed, inorder);
    }

    #[test]
    fn reset_stats_rearms_the_renamed_timeline() {
        let mut rt = SisaRuntime::new(SisaConfig::renamed(8));
        rt.set_universe(256);
        recycled_temporaries(&mut rt);
        assert!(rt.stats().makespan_cycles > 0);
        rt.reset_stats();
        assert_eq!(rt.stats().makespan_cycles, 0);
        assert_eq!(rt.stats().false_dep_stalls_removed, 0);
        assert_eq!(rt.pipeline().bypasses(), 0);
        // Pre-existing sets are readable on the fresh timeline.
        let a = rt.create_sorted([1, 2, 3]);
        let _ = rt.cardinality(a);
        assert!(rt.stats().makespan_cycles <= rt.stats().total_cycles());
    }

    #[test]
    fn trace_captures_a_program_of_real_instructions() {
        let mut rt = runtime();
        rt.enable_default_trace();
        let a = rt.create_sorted([1, 2, 3]);
        let b = rt.create_dense([2, 3, 4]);
        let c = rt.intersect(a, b);
        let _ = rt.intersect_count(a, b);
        assert!(rt.contains(c, 2));
        rt.delete(c);
        let trace = rt.take_trace().expect("trace attached");
        assert!(trace.is_complete());
        let program = trace.program();
        let mix = program.mnemonic_histogram();
        assert_eq!(mix["sisa.new"], 2);
        assert_eq!(mix["sisa.int"], 1);
        assert_eq!(mix["sisa.intc"], 1);
        assert_eq!(mix["sisa.member"], 1);
        assert_eq!(mix["sisa.del"], 1);
        // The materialised instructions carry real register operands: the
        // intersect result register differs from its operand registers.
        let int = program
            .instructions()
            .iter()
            .find(|i| i.opcode == SisaOpcode::IntersectAuto)
            .unwrap();
        assert_ne!(int.rd, int.rs1);
        assert_ne!(int.rd, int.rs2);
        // The program round-trips through the RISC-V encoding.
        let words = program.encode();
        assert_eq!(
            sisa_isa::SisaProgram::decode(&words).unwrap().len(),
            program.len()
        );
    }

    #[test]
    fn instruction_counts_match_the_traced_program() {
        let mut rt = runtime();
        rt.enable_default_trace();
        let a = rt.create_sorted([1, 2, 3, 8]);
        let b = rt.create_dense([2, 3, 4]);
        let c = rt.union(a, b);
        rt.insert(c, 17);
        rt.remove(c, 2);
        let _ = rt.cardinality(c);
        rt.difference_assign(a, b);
        let trace = rt.take_trace().unwrap();
        let program_total: u64 = trace.program().opcode_histogram().values().sum::<usize>() as u64;
        assert_eq!(rt.stats().total_instructions(), program_total);
    }
}
