//! The hybrid SISA graph representation (§6.1, Figure 4).
//!
//! A [`SetGraph`] registers every vertex neighbourhood as a SISA set: the
//! largest neighbourhoods become dense bitvectors (processed in situ by
//! SISA-PUM) and the rest stay sparse arrays (processed by SISA-PNM), subject
//! to the user's bias parameter and storage budget. This mirrors the paper's
//! "predefined graph structure, where small and large neighborhoods are
//! automatically created (when a SISA program starts) as sparse arrays and
//! dense bitvectors, respectively".

use crate::config::SetGraphConfig;
use crate::engine::SetEngine;
use crate::{SetId, Vertex};
use sisa_graph::CsrGraph;
use sisa_sets::SetRepr;

/// A graph whose neighbourhoods are SISA sets.
#[derive(Clone, Debug)]
pub struct SetGraph {
    csr: CsrGraph,
    neighborhoods: Vec<SetId>,
    dense: Vec<bool>,
    extra_storage_bits: usize,
}

impl SetGraph {
    /// Loads `g` into any [`SetEngine`], creating one set per neighbourhood.
    ///
    /// Neighbourhoods are ranked by degree; the largest `cfg.db_fraction`
    /// fraction are stored as dense bitvectors as long as the cumulative
    /// *additional* storage (DB bits minus the SA bits they replace) stays
    /// within `cfg.storage_budget_frac` of the CSR size. Everything else is a
    /// sorted sparse array.
    #[must_use]
    pub fn load<E: SetEngine>(rt: &mut E, g: &CsrGraph, cfg: &SetGraphConfig) -> Self {
        let n = g.num_vertices();
        rt.set_universe(n);

        // Rank vertices by degree (descending) to pick DB candidates.
        let mut by_degree: Vec<Vertex> = (0..n as Vertex).collect();
        by_degree.sort_by_key(|&v| std::cmp::Reverse(g.degree(v)));

        let budget_bits = if cfg.storage_budget_frac.is_infinite() {
            usize::MAX
        } else {
            ((g.csr_bytes() * 8) as f64 * cfg.storage_budget_frac) as usize
        };
        let target_db_count = ((n as f64) * cfg.db_fraction.clamp(0.0, 1.0)).round() as usize;

        let mut dense = vec![false; n];
        let mut extra_bits: usize = 0;
        for &v in by_degree.iter().take(target_db_count) {
            let sa_bits = g.degree(v) * 32;
            let db_bits = sisa_sets::dense_bitvector_bits(n);
            let extra = db_bits.saturating_sub(sa_bits);
            if budget_bits != usize::MAX && extra_bits + extra > budget_bits {
                // The budget is exhausted: remaining (smaller) neighbourhoods
                // stay sparse (§6.1 "above a certain number of DBs, SISA
                // starts to use SAs only").
                break;
            }
            extra_bits += extra;
            dense[v as usize] = true;
        }

        let neighborhoods: Vec<SetId> = (0..n as Vertex)
            .map(|v| {
                let nbrs = g.neighbors(v).iter().copied();
                let repr = if dense[v as usize] {
                    SetRepr::dense_from(n, nbrs)
                } else {
                    SetRepr::sorted_from(nbrs)
                };
                rt.create(repr)
            })
            .collect();

        Self {
            csr: g.clone(),
            neighborhoods,
            dense,
            extra_storage_bits: extra_bits,
        }
    }

    /// Number of vertices.
    #[must_use]
    pub fn num_vertices(&self) -> usize {
        self.csr.num_vertices()
    }

    /// Number of edges (arcs for a directed graph).
    #[must_use]
    pub fn num_edges(&self) -> usize {
        self.csr.num_edges()
    }

    /// The degree of `v`.
    #[must_use]
    pub fn degree(&self, v: Vertex) -> usize {
        self.csr.degree(v)
    }

    /// The SISA set holding `N(v)`.
    #[must_use]
    pub fn neighborhood(&self, v: Vertex) -> SetId {
        self.neighborhoods[v as usize]
    }

    /// The neighbourhood of `v` as a plain sorted slice (host-side view used
    /// for loop control; the heavy lifting stays in SISA set operations).
    #[must_use]
    pub fn neighbors(&self, v: Vertex) -> &[Vertex] {
        self.csr.neighbors(v)
    }

    /// Whether the edge `u → v` (or `{u, v}`) exists.
    #[must_use]
    pub fn has_edge(&self, u: Vertex, v: Vertex) -> bool {
        self.csr.has_edge(u, v)
    }

    /// Whether `N(v)` is stored as a dense bitvector.
    #[must_use]
    pub fn is_dense(&self, v: Vertex) -> bool {
        self.dense[v as usize]
    }

    /// Fraction of neighbourhoods stored as dense bitvectors.
    #[must_use]
    pub fn db_fraction(&self) -> f64 {
        if self.dense.is_empty() {
            return 0.0;
        }
        self.dense.iter().filter(|&&d| d).count() as f64 / self.dense.len() as f64
    }

    /// Additional storage (bits) used by dense bitvectors beyond the SA-only
    /// layout.
    #[must_use]
    pub fn extra_storage_bits(&self) -> usize {
        self.extra_storage_bits
    }

    /// The underlying CSR graph.
    #[must_use]
    pub fn csr(&self) -> &CsrGraph {
        &self.csr
    }

    /// All vertex identifiers.
    pub fn vertices(&self) -> impl Iterator<Item = Vertex> + '_ {
        self.csr.vertices()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SisaConfig;
    use crate::runtime::SisaRuntime;
    use sisa_graph::generators;

    fn load(g: &CsrGraph, cfg: &SetGraphConfig) -> (SisaRuntime, SetGraph) {
        let mut rt = SisaRuntime::new(SisaConfig::default());
        let sg = SetGraph::load(&mut rt, g, cfg);
        (rt, sg)
    }

    #[test]
    fn neighborhood_sets_hold_the_adjacency() {
        let g = generators::complete(10);
        let (mut rt, sg) = load(&g, &SetGraphConfig::default());
        assert_eq!(sg.num_vertices(), 10);
        assert_eq!(sg.num_edges(), 45);
        for v in 0..10u32 {
            let members = rt.members(sg.neighborhood(v));
            let expected: Vec<Vertex> = (0..10u32).filter(|&u| u != v).collect();
            assert_eq!(members, expected);
            assert_eq!(sg.neighbors(v), expected.as_slice());
        }
        assert!(sg.has_edge(0, 9));
    }

    #[test]
    fn db_fraction_targets_largest_neighbourhoods() {
        // A star: the hub has degree n-1, leaves have degree 1.
        let g = generators::star(100);
        let cfg = SetGraphConfig {
            db_fraction: 0.05,
            storage_budget_frac: 1.0,
        };
        let (_, sg) = load(&g, &cfg);
        assert!(sg.is_dense(0), "the hub must be stored densely");
        assert!((sg.db_fraction() - 0.05).abs() < 0.011);
    }

    #[test]
    fn zero_fraction_keeps_everything_sparse() {
        let g = generators::erdos_renyi(200, 0.1, 3);
        let (_, sg) = load(&g, &SetGraphConfig::sparse_only());
        assert_eq!(sg.db_fraction(), 0.0);
        assert_eq!(sg.extra_storage_bits(), 0);
    }

    #[test]
    fn dense_only_stores_every_neighbourhood_densely() {
        let g = generators::erdos_renyi(100, 0.1, 3);
        let (_, sg) = load(&g, &SetGraphConfig::dense_only());
        assert!((sg.db_fraction() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn storage_budget_caps_db_count() {
        // A sparse graph: each DB costs ≈ n bits while saving few SA bits, so
        // a tight budget should stop DB conversion early.
        let g = generators::erdos_renyi(2000, 0.002, 9);
        let generous = SetGraphConfig {
            db_fraction: 0.5,
            storage_budget_frac: 10.0,
        };
        let tight = SetGraphConfig {
            db_fraction: 0.5,
            storage_budget_frac: 0.05,
        };
        let (_, sg_generous) = load(&g, &generous);
        let (_, sg_tight) = load(&g, &tight);
        assert!(sg_tight.db_fraction() < sg_generous.db_fraction());
        let budget_bits = (g.csr_bytes() * 8) as f64 * 0.05;
        assert!((sg_tight.extra_storage_bits() as f64) <= budget_bits);
    }

    #[test]
    fn intersecting_two_dense_neighbourhoods_uses_pum() {
        let g = generators::complete(64);
        let (mut rt, sg) = load(&g, &SetGraphConfig::dense_only());
        rt.reset_stats();
        let _ = rt.intersect_count(sg.neighborhood(0), sg.neighborhood(1));
        assert_eq!(rt.stats().pum_ops, 1);
        assert_eq!(rt.stats().pnm_ops, 0);
    }
}
