//! Set metadata (SM) and the Set-Metadata Buffer (SMB).
//!
//! The paper's SCU "maintains set metadata (SM) using a dedicated in-memory SM
//! structure. SM contains mappings between logical set IDs and set addresses,
//! and the type of the representation as well as the cardinality of a given
//! set" (§3). Metadata lookups normally go through a small cache, the SMB;
//! when the entry is not cached, "there is a single additional memory access
//! for one set operation" (§8.4).

use crate::SetId;
use sisa_sets::RepresentationKind;
use std::collections::HashMap;

/// One SM entry: everything the SCU needs to know about a set to pick an
/// instruction variant.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SetMetadata {
    /// Physical representation of the set.
    pub kind: RepresentationKind,
    /// Current cardinality (kept up to date on every mutation, giving `O(1)`
    /// cardinality instructions, §6.2.3).
    pub cardinality: usize,
    /// Universe size for dense bitvectors (and the graph's `n` in general).
    pub universe: usize,
    /// Synthetic physical base address of the set's storage.
    pub address: u64,
}

/// The in-memory SM structure: a map from set IDs to metadata entries.
#[derive(Clone, Debug, Default)]
pub struct SetMetadataTable {
    entries: HashMap<SetId, SetMetadata>,
    next_address: u64,
}

impl SetMetadataTable {
    /// Creates an empty table.
    #[must_use]
    pub fn new() -> Self {
        Self {
            entries: HashMap::new(),
            next_address: 0x4000_0000,
        }
    }

    /// Registers a new set and assigns it a synthetic storage address.
    pub fn register(
        &mut self,
        id: SetId,
        kind: RepresentationKind,
        cardinality: usize,
        universe: usize,
    ) {
        let bits = match kind {
            RepresentationKind::DenseBitvector => universe,
            _ => cardinality * 32,
        };
        let address = self.next_address;
        self.next_address += (bits as u64 / 8).max(64) + 64;
        self.entries.insert(
            id,
            SetMetadata {
                kind,
                cardinality,
                universe,
                address,
            },
        );
    }

    /// Looks an entry up.
    #[must_use]
    pub fn get(&self, id: SetId) -> Option<&SetMetadata> {
        self.entries.get(&id)
    }

    /// Updates the representation and cardinality of an existing entry.
    ///
    /// # Panics
    ///
    /// Panics if the set was never registered.
    pub fn update(&mut self, id: SetId, kind: RepresentationKind, cardinality: usize) {
        let entry = self
            .entries
            .get_mut(&id)
            .unwrap_or_else(|| panic!("set {id} has no metadata entry"));
        entry.kind = kind;
        entry.cardinality = cardinality;
    }

    /// Removes an entry (set deletion).
    pub fn remove(&mut self, id: SetId) {
        self.entries.remove(&id);
    }

    /// Number of live entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the table is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// The Set-Metadata Buffer: a small LRU cache of SM entries held by the SCU.
///
/// Only presence is modelled (the actual metadata lives in
/// [`SetMetadataTable`]); the SCU charges the hit latency or the SM-miss
/// memory access depending on the outcome reported here.
#[derive(Clone, Debug)]
pub struct SmbCache {
    capacity: usize,
    stamps: HashMap<SetId, u64>,
    clock: u64,
    hits: u64,
    misses: u64,
}

impl SmbCache {
    /// Creates an SMB with room for `capacity` entries.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        Self {
            capacity: capacity.max(1),
            stamps: HashMap::new(),
            clock: 0,
            hits: 0,
            misses: 0,
        }
    }

    /// Performs a lookup for `id`; returns `true` on hit. Misses install the
    /// entry, evicting the least recently used one if the buffer is full.
    pub fn lookup(&mut self, id: SetId) -> bool {
        self.clock += 1;
        if let Some(stamp) = self.stamps.get_mut(&id) {
            *stamp = self.clock;
            self.hits += 1;
            return true;
        }
        self.misses += 1;
        if self.stamps.len() >= self.capacity {
            if let Some((&victim, _)) = self.stamps.iter().min_by_key(|(_, &s)| s) {
                self.stamps.remove(&victim);
            }
        }
        self.stamps.insert(id, self.clock);
        false
    }

    /// Installs `id` without counting a hit or a miss — used when the SCU has
    /// just written the entry itself (set creation), so the metadata is
    /// necessarily resident.
    pub fn prime(&mut self, id: SetId) {
        self.clock += 1;
        if self.stamps.len() >= self.capacity && !self.stamps.contains_key(&id) {
            if let Some((&victim, _)) = self.stamps.iter().min_by_key(|(_, &s)| s) {
                self.stamps.remove(&victim);
            }
        }
        self.stamps.insert(id, self.clock);
    }

    /// Drops a set from the buffer (set deletion).
    pub fn invalidate(&mut self, id: SetId) {
        self.stamps.remove(&id);
    }

    /// Hits recorded so far.
    #[must_use]
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Misses recorded so far.
    #[must_use]
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Hit ratio (0 with no lookups).
    #[must_use]
    pub fn hit_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sisa_isa::SetId;

    #[test]
    fn register_get_update_remove() {
        let mut table = SetMetadataTable::new();
        let id = SetId(7);
        table.register(id, RepresentationKind::SortedArray, 10, 1000);
        let entry = *table.get(id).unwrap();
        assert_eq!(entry.cardinality, 10);
        assert_eq!(entry.kind, RepresentationKind::SortedArray);
        table.update(id, RepresentationKind::DenseBitvector, 25);
        assert_eq!(table.get(id).unwrap().cardinality, 25);
        assert_eq!(
            table.get(id).unwrap().kind,
            RepresentationKind::DenseBitvector
        );
        assert_eq!(table.len(), 1);
        table.remove(id);
        assert!(table.is_empty());
        assert!(table.get(id).is_none());
    }

    #[test]
    fn addresses_are_distinct() {
        let mut table = SetMetadataTable::new();
        table.register(SetId(1), RepresentationKind::SortedArray, 100, 1000);
        table.register(SetId(2), RepresentationKind::DenseBitvector, 5, 1000);
        let a1 = table.get(SetId(1)).unwrap().address;
        let a2 = table.get(SetId(2)).unwrap().address;
        assert_ne!(a1, a2);
    }

    #[test]
    #[should_panic(expected = "no metadata entry")]
    fn updating_unknown_set_panics() {
        let mut table = SetMetadataTable::new();
        table.update(SetId(3), RepresentationKind::SortedArray, 1);
    }

    #[test]
    fn smb_caches_recent_ids() {
        let mut smb = SmbCache::new(2);
        assert!(!smb.lookup(SetId(1)));
        assert!(!smb.lookup(SetId(2)));
        assert!(smb.lookup(SetId(1)));
        // Inserting a third entry evicts the LRU (SetId 2).
        assert!(!smb.lookup(SetId(3)));
        assert!(!smb.lookup(SetId(2)));
        assert_eq!(smb.hits(), 1);
        assert_eq!(smb.misses(), 4);
        assert!((smb.hit_ratio() - 0.2).abs() < 1e-12);
    }

    #[test]
    fn smb_invalidation() {
        let mut smb = SmbCache::new(4);
        smb.lookup(SetId(1));
        smb.invalidate(SetId(1));
        assert!(!smb.lookup(SetId(1)));
    }
}
