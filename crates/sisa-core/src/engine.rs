//! The execution-backend abstraction set-centric algorithms are written
//! against.
//!
//! The paper's central claim is that SISA is an *ISA*: algorithms express
//! their heavy work as set instructions and the platform underneath is free to
//! execute them however it likes (§3, §6.3). [`SetEngine`] is that boundary in
//! code. Every set-centric algorithm in `sisa-algorithms` is generic over
//! `E: SetEngine`, so the same formulation runs on
//!
//! * [`crate::SisaRuntime`] — the simulated SISA platform (SCU dispatch onto
//!   the PUM/PNM cost models),
//! * [`crate::HostEngine`] — a software set-centric backend on the baseline
//!   out-of-order CPU model,
//! * [`crate::FunctionalEngine`] — plain software sets with no cost model
//!   (the correctness oracle / fuzzing backend), and
//! * [`crate::ShardedEngine`] — a multi-cube wrapper sharding the set
//!   universe across several inner engines and pricing cross-shard traffic,
//!
//! and the benchmark harness compares backends by swapping the engine rather
//! than by maintaining per-backend driver code.
//!
//! The trait surface mirrors the paper's instruction families: set lifecycle
//! (§6.3.4), `O(1)` metadata queries (§6.2.3), single-element updates (§6.2),
//! the three binary operations with their counting twins (§6.2.1, Table 5)
//! plus in-place variants, and the host-side accounting hooks that keep loop
//! control on the CPU ("Does SISA Execute All Set Operations?", §5).

use crate::parallel::TaskRecord;
use crate::stats::ExecStats;
use crate::Vertex;
use sisa_isa::SetId;
use sisa_sets::{DenseBitVector, SetRepr};

/// A backend that executes SISA-style set operations.
///
/// Implementations must both **functionally execute** every operation on real
/// set data (so algorithms produce validated answers) and **charge simulated
/// cost** into their [`ExecStats`] / task records. Invalid set identifiers are
/// programming errors and panic, mirroring how a real SISA program would fault
/// on a dangling set ID.
pub trait SetEngine {
    /// A short label for the backend (used in reports and figures).
    fn backend_name(&self) -> &'static str;

    // -----------------------------------------------------------------------
    // Universe and statistics
    // -----------------------------------------------------------------------

    /// Grows the vertex universe to at least `n` (used when dense bitvectors
    /// are created).
    fn set_universe(&mut self, n: usize);

    /// The current vertex universe.
    fn universe(&self) -> usize;

    /// Execution statistics accumulated so far.
    fn stats(&self) -> &ExecStats;

    /// Clears the accumulated statistics (used after graph loading so that
    /// reported cycles cover only the algorithm itself, matching the paper's
    /// methodology of excluding graph construction).
    fn reset_stats(&mut self);

    /// Number of live sets.
    fn live_sets(&self) -> usize;

    // -----------------------------------------------------------------------
    // Set lifecycle
    // -----------------------------------------------------------------------

    /// Creates a set from an explicit representation, returning its ID.
    fn create(&mut self, repr: SetRepr) -> SetId;

    /// Clones a set into a fresh ID.
    fn clone_set(&mut self, id: SetId) -> SetId;

    /// Deletes a set, freeing its ID.
    fn delete(&mut self, id: SetId);

    // -----------------------------------------------------------------------
    // Queries
    // -----------------------------------------------------------------------

    /// The cardinality `|A|`.
    fn cardinality(&mut self, id: SetId) -> usize;

    /// Membership `x ∈ A`.
    fn contains(&mut self, id: SetId, v: Vertex) -> bool;

    /// The members of a set as a sorted vector, charging the cost of reading
    /// the set out of memory.
    fn members(&mut self, id: SetId) -> Vec<Vertex>;

    /// Read-only access to a set's physical representation (no cost; intended
    /// for result extraction and tests).
    fn repr(&self, id: SetId) -> &SetRepr;

    // -----------------------------------------------------------------------
    // Element updates
    // -----------------------------------------------------------------------

    /// Inserts a vertex: `A ∪= {x}`. Returns whether the set changed.
    fn insert(&mut self, id: SetId, v: Vertex) -> bool;

    /// Removes a vertex: `A \= {x}`. Returns whether the set changed.
    fn remove(&mut self, id: SetId, v: Vertex) -> bool;

    // -----------------------------------------------------------------------
    // Binary set operations
    // -----------------------------------------------------------------------

    /// `A ∩ B`, materialised as a new set.
    fn intersect(&mut self, a: SetId, b: SetId) -> SetId;

    /// `A ∪ B`, materialised as a new set.
    fn union(&mut self, a: SetId, b: SetId) -> SetId;

    /// `A \ B`, materialised as a new set.
    fn difference(&mut self, a: SetId, b: SetId) -> SetId;

    /// `|A ∩ B|` without materialising the intersection.
    fn intersect_count(&mut self, a: SetId, b: SetId) -> usize;

    /// `|A ∪ B|` without materialising the union.
    fn union_count(&mut self, a: SetId, b: SetId) -> usize;

    /// `|A \ B|` without materialising the difference.
    fn difference_count(&mut self, a: SetId, b: SetId) -> usize;

    /// In-place intersection `A ∩= B`.
    fn intersect_assign(&mut self, a: SetId, b: SetId);

    /// In-place union `A ∪= B`.
    fn union_assign(&mut self, a: SetId, b: SetId);

    /// In-place difference `A \= B`.
    fn difference_assign(&mut self, a: SetId, b: SetId);

    // -----------------------------------------------------------------------
    // Host-side accounting and task boundaries
    // -----------------------------------------------------------------------

    /// Charges `n` host-side scalar operations (loop control, counters,
    /// comparisons done outside set operations).
    fn host_ops(&mut self, n: u64);

    /// Absorbs externally priced lane work — cycles a composite wrapper has
    /// already accounted for elsewhere (e.g. a [`crate::ShardedEngine`]
    /// cross-shard link transfer, billed to the aggregate's link counters) —
    /// into this engine's overlap timeline, so the wait occupies a virtual
    /// vault lane and can overlap with independent instructions instead of
    /// serialising the whole machine. `writes` names the local sets the work
    /// produces (e.g. the staged replica a link transfer delivers): hazard
    /// tracking then keeps consumers of those sets behind the absorbed work.
    /// Engines without an overlap model (the default) ignore it; no work
    /// counters are charged.
    fn absorb_lane_work(&mut self, cycles: u64, writes: &[SetId]) {
        let _ = (cycles, writes);
    }

    /// Marks the beginning of a parallel task; [`SetEngine::task_end`] returns
    /// the cost accumulated since this call.
    fn task_begin(&mut self);

    /// Ends the current task, returning its cost as a schedulable record.
    fn task_end(&mut self) -> TaskRecord;

    // -----------------------------------------------------------------------
    // Provided constructors (sugar over `create`)
    // -----------------------------------------------------------------------

    /// Creates an empty sorted sparse-array set.
    fn create_empty_sorted(&mut self) -> SetId
    where
        Self: Sized,
    {
        self.create(SetRepr::empty_sorted())
    }

    /// Creates an empty dense bitvector over the current universe.
    fn create_empty_dense(&mut self) -> SetId
    where
        Self: Sized,
    {
        let universe = self.universe();
        self.create(SetRepr::empty_dense(universe))
    }

    /// Creates a sorted sparse-array set from members.
    fn create_sorted(&mut self, members: impl IntoIterator<Item = Vertex>) -> SetId
    where
        Self: Sized,
    {
        self.create(SetRepr::sorted_from(members))
    }

    /// Creates a dense-bitvector set over the current universe from members.
    fn create_dense(&mut self, members: impl IntoIterator<Item = Vertex>) -> SetId
    where
        Self: Sized,
    {
        let universe = self.universe();
        self.create(SetRepr::dense_from(universe, members))
    }

    /// Creates a dense-bitvector set containing every vertex of the universe.
    fn create_full_dense(&mut self) -> SetId
    where
        Self: Sized,
    {
        let universe = self.universe();
        self.create(SetRepr::Dense(DenseBitVector::full(universe)))
    }
}
