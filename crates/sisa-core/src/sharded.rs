//! Sharded multi-cube execution: one inner engine per vault group / cube.
//!
//! The paper's PNM platform is 16 HMC cubes × 32 vaults (§9.1), and its
//! performance story rests on spreading set operations across them. A flat
//! [`crate::SisaRuntime`] models a single undifferentiated pool where
//! cross-partition traffic is free; [`ShardedEngine`] adds the missing
//! first-order effect. It partitions the set-ID universe across `N` inner
//! engines through a [`PartitionStrategy`], routes every [`SetEngine`]
//! operation to the shard owning its operands, and prices the movement a
//! multi-cube machine cannot avoid: when a binary operation's operands live on
//! different shards, the smaller operand (by storage footprint) is transferred
//! over the vault/cube links — charged through the [`LinkModel`] as hop
//! latency plus a bandwidth-limited transfer, recorded in
//! [`ExecStats::link_cycles`] / [`ExecStats::link_bytes`] and in the engine's
//! [`LinkTraffic`] ledger — and staged as a short-lived replica on the
//! executing shard (whose create/delete cost models the staging buffer).
//!
//! Because every set-centric algorithm is generic over [`SetEngine`], wrapping
//! a runtime in `ShardedEngine` gives any workload multi-cube execution with
//! no algorithm changes. With a single shard the wrapper is a transparent
//! pass-through: every operation forwards exactly once, so a 1-shard
//! `ShardedEngine<SisaRuntime>` reproduces a flat [`crate::SisaRuntime`]'s
//! [`ExecStats`] cycle-for-cycle (a property the test suite pins down).
//!
//! Placement: explicitly created sets (including graph neighbourhoods, which
//! [`crate::SetGraph::load`] creates in vertex order) are placed by the
//! strategy; clones and binary-operation results stay on the shard that holds
//! the data they derive from (locality), and host-side scalar work is charged
//! to shard 0, next to the issuing host core.

use crate::config::SisaConfig;
use crate::engine::SetEngine;
use crate::parallel::{schedule, RunReport, TaskRecord};
use crate::runtime::SisaRuntime;
use crate::shard::PartitionStrategy;
use crate::stats::{ExecStats, StatsCheckpoint};
use crate::Vertex;
use sisa_isa::SetId;
use sisa_pim::{EnergyModel, LinkModel};
use sisa_sets::SetRepr;

/// Accounting of cross-shard operand movement.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct LinkTraffic {
    /// Number of binary operations whose operands lived on different shards.
    pub cross_ops: u64,
    /// Bytes moved over vault/cube links.
    pub bytes: u64,
    /// Cycles spent on link transfers.
    pub cycles: u64,
    /// Energy spent on link transfers, in nanojoules.
    pub energy_nj: f64,
    /// Bytes sent out of each shard (indexed by shard).
    pub sent_by_shard: Vec<u64>,
    /// Link-transfer cycles attributed to each shard (the executing shard
    /// that waited for the operand to arrive).
    pub cycles_by_shard: Vec<u64>,
}

/// Aggregated view of a sharded run: per-shard load, cross-shard traffic and
/// the schedule treating each shard as one execution unit.
#[derive(Clone, Debug, PartialEq)]
pub struct ShardReport {
    /// Number of shards.
    pub shards: usize,
    /// The placement strategy the engine ran with.
    pub strategy: PartitionStrategy,
    /// Total simulated cycles accumulated by each shard, including the link
    /// transfers it waited for.
    pub per_shard_cycles: Vec<u64>,
    /// Dynamic SISA instructions executed by each shard.
    pub per_shard_instructions: Vec<u64>,
    /// Live sets stored on each shard.
    pub per_shard_live_sets: Vec<usize>,
    /// Cross-shard transfer ledger.
    pub traffic: LinkTraffic,
    /// The per-shard loads scheduled as one task per shard onto `shards`
    /// threads (the multi-cube makespan / imbalance view).
    pub schedule: RunReport,
}

impl ShardReport {
    /// Load imbalance across shards (1.0 = perfectly balanced).
    #[must_use]
    pub fn imbalance(&self) -> f64 {
        self.schedule.imbalance()
    }

    /// Multi-cube makespan: the busiest shard's cycles.
    #[must_use]
    pub fn makespan_cycles(&self) -> u64 {
        self.schedule.makespan_cycles
    }
}

/// Where a binary operation executes after operand resolution.
struct ResolvedBinary {
    shard: usize,
    a: SetId,
    b: SetId,
    /// A staged replica of the remote operand, deleted after the operation.
    temp: Option<SetId>,
}

/// One operation of a [`ShardedEngine::execute`] batch.
///
/// Batches are restricted to the side-effect-free binary forms (materialising
/// and counting): every operation reads pre-existing sets and at most creates
/// a fresh result, so all operations in a batch are mutually independent and
/// the engine is free to run different shards' work on different host
/// threads. Operands must name sets that exist when `execute` is called —
/// results of earlier operations in the same batch are not yet addressable.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BatchOp {
    /// `A ∩ B`, materialised.
    Intersect(SetId, SetId),
    /// `A ∪ B`, materialised.
    Union(SetId, SetId),
    /// `A \ B`, materialised.
    Difference(SetId, SetId),
    /// `|A ∩ B|`.
    IntersectCount(SetId, SetId),
    /// `|A ∪ B|`.
    UnionCount(SetId, SetId),
    /// `|A \ B|`.
    DifferenceCount(SetId, SetId),
}

impl BatchOp {
    /// The operation's `(A, B)` operand pair.
    #[must_use]
    pub fn operands(self) -> (SetId, SetId) {
        match self {
            Self::Intersect(a, b)
            | Self::Union(a, b)
            | Self::Difference(a, b)
            | Self::IntersectCount(a, b)
            | Self::UnionCount(a, b)
            | Self::DifferenceCount(a, b) => (a, b),
        }
    }
}

/// The outcome of one [`BatchOp`], in batch order.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BatchResult {
    /// A materialised result set (global ID).
    Set(SetId),
    /// A cardinality.
    Count(usize),
}

impl BatchResult {
    /// The global set ID of a materialised result.
    ///
    /// # Panics
    ///
    /// Panics if this result is a count.
    #[must_use]
    pub fn set(self) -> SetId {
        match self {
            Self::Set(id) => id,
            Self::Count(n) => panic!("expected a set result, got count {n}"),
        }
    }

    /// The cardinality of a counting result.
    ///
    /// # Panics
    ///
    /// Panics if this result is a materialised set.
    #[must_use]
    pub fn count(self) -> usize {
        match self {
            Self::Count(n) => n,
            Self::Set(id) => panic!("expected a count result, got set {id}"),
        }
    }
}

/// A batch operation bound to its executing shard's local IDs.
struct QueuedOp {
    index: usize,
    op: BatchOp,
    a: SetId,
    b: SetId,
    temp: Option<SetId>,
}

/// What a shard worker produced for one queued operation.
enum LocalOutcome {
    Set(SetId),
    Count(usize),
}

/// Runs one shard's queue against its inner engine, in queue order. This is
/// the only code that touches a shard during the execution phase, so running
/// queues inline or on worker threads produces identical shard states.
fn run_queue<E: SetEngine>(engine: &mut E, queue: &[QueuedOp]) -> Vec<(usize, LocalOutcome)> {
    let mut out = Vec::with_capacity(queue.len());
    for item in queue {
        let outcome = match item.op {
            BatchOp::Intersect(..) => LocalOutcome::Set(engine.intersect(item.a, item.b)),
            BatchOp::Union(..) => LocalOutcome::Set(engine.union(item.a, item.b)),
            BatchOp::Difference(..) => LocalOutcome::Set(engine.difference(item.a, item.b)),
            BatchOp::IntersectCount(..) => {
                LocalOutcome::Count(engine.intersect_count(item.a, item.b))
            }
            BatchOp::UnionCount(..) => LocalOutcome::Count(engine.union_count(item.a, item.b)),
            BatchOp::DifferenceCount(..) => {
                LocalOutcome::Count(engine.difference_count(item.a, item.b))
            }
        };
        if let Some(temp) = item.temp {
            engine.delete(temp);
        }
        out.push((item.index, outcome));
    }
    out
}

/// A [`SetEngine`] that partitions the set universe across several inner
/// engines and prices cross-shard operand movement.
#[derive(Clone, Debug)]
pub struct ShardedEngine<E: SetEngine> {
    shards: Vec<E>,
    strategy: PartitionStrategy,
    link: LinkModel,
    energy: EnergyModel,
    /// Global set ID → (shard, shard-local ID).
    placement: Vec<Option<(usize, SetId)>>,
    free_ids: Vec<u32>,
    universe: usize,
    stats: ExecStats,
    traffic: LinkTraffic,
    /// Cumulative created cardinality per shard (the degree-aware placement
    /// signal; results and clones count toward the shard that stores them).
    created_load: Vec<u64>,
    /// Cached ordered fold of per-shard energies (see `refresh_energy`).
    shard_energy_sum: f64,
    task_mark: u64,
    /// Worker threads for [`Self::execute`]; 0 = available parallelism.
    host_threads: usize,
    /// Telemetry sink for link-transfer events (observer-only).
    collector: Option<crate::telemetry::SharedCollector>,
    /// Track-group base reported with transfer events.
    telemetry_group: u32,
}

impl<E: SetEngine> ShardedEngine<E> {
    /// Wraps `shards` inner engines behind one sharded engine.
    ///
    /// # Panics
    ///
    /// Panics if `shards` is empty.
    #[must_use]
    pub fn from_shards(shards: Vec<E>, strategy: PartitionStrategy, link: LinkModel) -> Self {
        assert!(
            !shards.is_empty(),
            "a sharded engine needs at least one shard"
        );
        let n = shards.len();
        Self {
            shards,
            strategy,
            link,
            energy: EnergyModel::default(),
            placement: Vec::new(),
            free_ids: Vec::new(),
            universe: 0,
            stats: ExecStats::default(),
            traffic: LinkTraffic {
                sent_by_shard: vec![0; n],
                cycles_by_shard: vec![0; n],
                ..LinkTraffic::default()
            },
            created_load: vec![0; n],
            shard_energy_sum: 0.0,
            task_mark: 0,
            host_threads: 0,
            collector: None,
            telemetry_group: 0,
        }
    }

    /// Number of shards.
    #[must_use]
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The placement strategy in use.
    #[must_use]
    pub fn strategy(&self) -> PartitionStrategy {
        self.strategy
    }

    /// The link cost model in use.
    #[must_use]
    pub fn link(&self) -> &LinkModel {
        &self.link
    }

    /// The statistics accumulated by one shard.
    #[must_use]
    pub fn shard_stats(&self, shard: usize) -> &ExecStats {
        self.shards[shard].stats()
    }

    /// The cross-shard transfer ledger.
    #[must_use]
    pub fn traffic(&self) -> &LinkTraffic {
        &self.traffic
    }

    /// The configured worker-thread knob for [`Self::execute`]
    /// (0 = resolve to available parallelism at run time).
    #[must_use]
    pub fn host_threads(&self) -> usize {
        self.host_threads
    }

    /// Sets the worker-thread knob for [`Self::execute`]. 0 (the default)
    /// resolves to the machine's available parallelism; 1 forces sequential
    /// execution. Thread count never changes results or simulated statistics.
    pub fn set_host_threads(&mut self, threads: usize) {
        self.host_threads = threads;
    }

    /// The number of worker threads [`Self::execute`] will actually use.
    #[must_use]
    pub fn resolved_host_threads(&self) -> usize {
        if self.host_threads == 0 {
            std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
        } else {
            self.host_threads
        }
    }

    /// The shard currently storing a set.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not name a live set.
    #[must_use]
    pub fn shard_of(&self, id: SetId) -> usize {
        self.locate(id).0
    }

    /// The stored representation of a live set, read in place on the shard
    /// that holds it (no transfer is priced — this is host-side inspection,
    /// not a simulated operation).
    ///
    /// # Panics
    ///
    /// Panics if `id` does not name a live set.
    #[must_use]
    pub fn repr_of(&self, id: SetId) -> &SetRepr {
        let (shard, local) = self.locate(id);
        self.shards[shard].repr(local)
    }

    /// Aggregates per-shard statistics and the traffic ledger into a
    /// [`ShardReport`], scheduling each shard's load as one task per shard so
    /// the multi-cube makespan and imbalance come from the existing
    /// [`crate::parallel`] machinery. Link-transfer cycles count toward the
    /// executing shard that received the operand, so communication-heavy
    /// placements pay for their traffic in the makespan.
    #[must_use]
    pub fn report(&self) -> ShardReport {
        let per_shard_cycles: Vec<u64> = self
            .shards
            .iter()
            .zip(&self.traffic.cycles_by_shard)
            .map(|(s, &link)| s.stats().total_cycles() + link)
            .collect();
        let records: Vec<TaskRecord> = per_shard_cycles
            .iter()
            .map(|&c| TaskRecord::compute_only(c))
            .collect();
        ShardReport {
            shards: self.shards.len(),
            strategy: self.strategy,
            per_shard_instructions: self
                .shards
                .iter()
                .map(|s| s.stats().total_instructions())
                .collect(),
            per_shard_live_sets: self.shards.iter().map(SetEngine::live_sets).collect(),
            traffic: self.traffic.clone(),
            schedule: schedule(&records, self.shards.len()),
            per_shard_cycles,
        }
    }

    // -----------------------------------------------------------------------
    // Internals
    // -----------------------------------------------------------------------

    /// Runs `f` on one shard, absorbing the cost it accumulates into the
    /// aggregate statistics. `merge_since` handles every counter; the energy
    /// it accumulates as a floating-point delta is then overwritten by
    /// `refresh_energy`'s exact ordered fold — keep the two calls paired.
    fn on_shard<R>(&mut self, shard: usize, f: impl FnOnce(&mut E) -> R) -> R {
        let at = self.shards[shard].stats().checkpoint();
        let out = f(&mut self.shards[shard]);
        self.stats.merge_since(self.shards[shard].stats(), &at);
        self.refresh_energy();
        out
    }

    /// Recomputes the aggregate energy as the ordered sum over shards plus the
    /// link ledger, caching the shard fold for [`Self::charge_transfer`].
    /// Summing totals (instead of accumulating per-operation floating-point
    /// deltas) keeps the aggregate bit-for-bit equal to the sum of its parts,
    /// which the conservation tests and the 1-shard ≡ flat equivalence rely
    /// on; per-shard delta schemes would break that exactness, so the O(N)
    /// fold (N ≤ #cubes) is deliberate.
    fn refresh_energy(&mut self) {
        let mut energy = 0.0;
        for shard in &self.shards {
            energy += shard.stats().energy_nj;
        }
        self.shard_energy_sum = energy;
        self.stats.energy_nj = energy + self.traffic.energy_nj;
    }

    fn locate(&self, id: SetId) -> (usize, SetId) {
        self.placement
            .get(id.raw() as usize)
            .copied()
            .flatten()
            .unwrap_or_else(|| panic!("set {id} does not exist"))
    }

    fn allocate_global(&mut self) -> SetId {
        crate::slots::allocate(&mut self.placement, &mut self.free_ids)
    }

    fn register_global(&mut self, shard: usize, local: SetId) -> SetId {
        let global = self.allocate_global();
        self.placement[global.raw() as usize] = Some((shard, local));
        global
    }

    /// Charges one cross-shard operand transfer of `bytes` bytes from `src`
    /// to `dst` into the aggregate statistics and the traffic ledger. The
    /// transfer cycles are attributed to the executing shard `dst`, which
    /// waits for the operand to arrive — and are handed to that shard's
    /// overlap timeline as lane work *writing* the staged replica `delivers`,
    /// so on a pipelined inner engine the wait occupies one virtual vault
    /// lane, the instruction consuming the replica stays behind the transfer
    /// (a RAW hazard), and independent instructions keep flowing instead of
    /// the whole machine stalling.
    fn charge_transfer(&mut self, src: usize, dst: usize, bytes: u64, delivers: SetId) {
        let cycles = self.ledger_transfer(src, dst, bytes);
        // Link wait becomes overlappable lane work on the receiving shard
        // (no work counters charged there — the ledger above owns the cost).
        // Routed through `on_shard` so whatever the shard's timeline does
        // record (makespan growth, a WAW stall behind the replica's create)
        // is checkpoint-merged into the aggregate like every other counter.
        self.on_shard(dst, |e| e.absorb_lane_work(cycles, &[delivers]));
    }

    /// Books one `src → dst` transfer of `bytes` bytes into the aggregate
    /// statistics and the traffic ledger, returning the link cycles it cost.
    /// The lane-work absorption on the receiving shard is the caller's
    /// responsibility (forwarding path: through [`Self::on_shard`]; batch
    /// path: raw, folded in by the end-of-batch merge).
    fn ledger_transfer(&mut self, src: usize, dst: usize, bytes: u64) -> u64 {
        let route = self.link.route(src, dst, self.shards.len());
        let cycles = self.link.transfer_cost(bytes as usize, route);
        let energy = self.energy.link_energy(bytes, route.hops as u64);
        self.stats.link_cycles += cycles;
        self.stats.link_bytes += bytes;
        self.traffic.cross_ops += 1;
        self.traffic.bytes += bytes;
        self.traffic.cycles += cycles;
        self.traffic.cycles_by_shard[dst] += cycles;
        self.traffic.energy_nj += energy;
        self.traffic.sent_by_shard[src] += bytes;
        // Only the ledger changed; reuse the cached shard fold. (During a
        // batch the shard fold may be stale — the batch's closing
        // `refresh_energy` recomputes it before anyone can observe it.)
        self.stats.energy_nj = self.shard_energy_sum + self.traffic.energy_nj;
        // Both transfer paths (forwarding and batch staging) funnel through
        // here, so one hook covers every priced link crossing.
        if let Some(collector) = &self.collector {
            collector.transfer(&crate::telemetry::TransferEvent {
                group: self.telemetry_group,
                src,
                dst,
                bytes,
                cycles,
            });
        }
        cycles
    }

    /// Resolves a binary operation's operands to one executing shard. When the
    /// operands live on different shards, the smaller operand (`pin_to_a`
    /// forces the result-carrying operand `a` to stay put, as in-place forms
    /// require) is transferred over the links and staged as a temporary
    /// replica on the executing shard.
    fn resolve_binary(&mut self, a: SetId, b: SetId, pin_to_a: bool) -> ResolvedBinary {
        let (sa, la) = self.locate(a);
        let (sb, lb) = self.locate(b);
        if sa == sb {
            return ResolvedBinary {
                shard: sa,
                a: la,
                b: lb,
                temp: None,
            };
        }
        let bits_a = self.shards[sa].repr(la).storage_bits();
        let bits_b = self.shards[sb].repr(lb).storage_bits();
        // The paper's streaming model already bills the operands' read-out;
        // what a multi-cube machine adds is moving the smaller operand to the
        // data of the larger one (§8.4 "Harnessing Parallelism").
        let move_b = pin_to_a || bits_b <= bits_a;
        let (dst, src, moved_local, moved_bits) = if move_b {
            (sa, sb, lb, bits_b)
        } else {
            (sb, sa, la, bits_a)
        };
        // Stage the replica's slot first, then price the transfer that fills
        // it: the transfer writes the replica on the destination's overlap
        // timeline, so the consuming operation waits for the operand to
        // actually arrive (RAW) instead of racing its own transfer.
        let replica = self.shards[src].repr(moved_local).clone();
        let temp = self.on_shard(dst, |e| e.create(replica));
        self.charge_transfer(src, dst, moved_bits.div_ceil(8) as u64, temp);
        ResolvedBinary {
            shard: dst,
            a: if move_b { la } else { temp },
            b: if move_b { temp } else { lb },
            temp: Some(temp),
        }
    }

    /// Batch-staging variant of [`Self::resolve_binary`]: the shard-level
    /// effects (replica creation, transfer pricing, lane-work absorption) are
    /// identical, but nothing is merged into the aggregate per operation —
    /// [`Self::execute`] checkpoints every shard before staging and folds one
    /// delta per shard when the batch closes.
    fn resolve_binary_raw(&mut self, a: SetId, b: SetId) -> ResolvedBinary {
        let (sa, la) = self.locate(a);
        let (sb, lb) = self.locate(b);
        if sa == sb {
            return ResolvedBinary {
                shard: sa,
                a: la,
                b: lb,
                temp: None,
            };
        }
        let bits_a = self.shards[sa].repr(la).storage_bits();
        let bits_b = self.shards[sb].repr(lb).storage_bits();
        let move_b = bits_b <= bits_a;
        let (dst, src, moved_local, moved_bits) = if move_b {
            (sa, sb, lb, bits_b)
        } else {
            (sb, sa, la, bits_a)
        };
        let replica = self.shards[src].repr(moved_local).clone();
        let temp = self.shards[dst].create(replica);
        let cycles = self.ledger_transfer(src, dst, moved_bits.div_ceil(8) as u64);
        self.shards[dst].absorb_lane_work(cycles, &[temp]);
        ResolvedBinary {
            shard: dst,
            a: if move_b { la } else { temp },
            b: if move_b { temp } else { lb },
            temp: Some(temp),
        }
    }

    fn release_temp(&mut self, site: &ResolvedBinary) {
        if let Some(temp) = site.temp {
            self.on_shard(site.shard, |e| e.delete(temp));
        }
    }

    fn binary_materialising(
        &mut self,
        a: SetId,
        b: SetId,
        f: impl FnOnce(&mut E, SetId, SetId) -> SetId,
    ) -> SetId {
        let site = self.resolve_binary(a, b, false);
        let local = self.on_shard(site.shard, |e| f(e, site.a, site.b));
        self.release_temp(&site);
        self.created_load[site.shard] += self.shards[site.shard].repr(local).len() as u64;
        self.register_global(site.shard, local)
    }

    fn binary_counting(
        &mut self,
        a: SetId,
        b: SetId,
        f: impl FnOnce(&mut E, SetId, SetId) -> usize,
    ) -> usize {
        let site = self.resolve_binary(a, b, false);
        let out = self.on_shard(site.shard, |e| f(e, site.a, site.b));
        self.release_temp(&site);
        out
    }

    fn binary_assign(&mut self, a: SetId, b: SetId, f: impl FnOnce(&mut E, SetId, SetId)) {
        let site = self.resolve_binary(a, b, true);
        self.on_shard(site.shard, |e| f(e, site.a, site.b));
        self.release_temp(&site);
    }
}

impl<E: SetEngine + Send> ShardedEngine<E> {
    /// Operations staged per [`Self::execute`] window: large enough to keep
    /// every worker's queue full on wide batches, small enough that the
    /// staged replicas alive at once stay within the shard allocators' hot
    /// slot-reuse footprint.
    const EXECUTE_WINDOW: usize = 1024;

    /// Executes a batch of independent binary operations, fanning per-shard
    /// work across host worker threads (see [`Self::set_host_threads`]).
    ///
    /// The batch runs as staged/run **windows** between one opening
    /// checkpoint and one closing merge:
    ///
    /// 1. **Checkpoint** (main thread): every shard's statistics are
    ///    checkpointed once, before any staging — the whole batch settles
    ///    into the aggregate as a single delta per shard at the end, instead
    ///    of the forwarding path's per-operation checkpoint/merge/refresh.
    /// 2. **Stage a window** (main thread, batch order): operands of the
    ///    next `EXECUTE_WINDOW` (1024) operations are resolved and
    ///    cross-shard transfers are priced exactly as the per-op path does —
    ///    the smaller operand crosses the link and is staged as a replica on
    ///    the executing shard. Each operation is appended to its executing
    ///    shard's queue. Windowing bounds how many staged replicas are alive
    ///    at once, so the shard allocators keep recycling the same hot slots
    ///    instead of growing a batch-sized cold tail.
    /// 3. **Run the window**: every shard's queue runs against that shard
    ///    alone, either inline (one worker) or on `std::thread::scope`
    ///    workers over disjoint shard chunks. A shard's state evolution
    ///    depends only on its own queue, so thread count cannot change what
    ///    any shard computes or records.
    /// 4. **Merge** (main thread, shard order, once after the last window):
    ///    one checkpoint delta per shard is folded into the aggregate
    ///    statistics, then the aggregate energy is recomputed as the usual
    ///    ordered fold over shards. This makes the aggregate — including the
    ///    floating-point `energy_nj` — bit-for-bit identical for every
    ///    thread count. Materialised results are then registered in batch
    ///    order.
    ///
    /// Returns one [`BatchResult`] per operation, in batch order.
    ///
    /// # Panics
    ///
    /// Panics if an operand does not name a live set, or if a worker thread
    /// panics.
    pub fn execute(&mut self, ops: &[BatchOp]) -> Vec<BatchResult> {
        let n = self.shards.len();
        let checkpoints: Vec<StatsCheckpoint> =
            self.shards.iter().map(|s| s.stats().checkpoint()).collect();
        let threads = self.resolved_host_threads().clamp(1, n);
        let mut results: Vec<Option<(usize, LocalOutcome)>> = ops.iter().map(|_| None).collect();
        let mut queues: Vec<Vec<QueuedOp>> = (0..n).map(|_| Vec::new()).collect();
        for (w, window) in ops.chunks(Self::EXECUTE_WINDOW).enumerate() {
            for queue in &mut queues {
                queue.clear();
            }
            for (off, &op) in window.iter().enumerate() {
                let (a, b) = op.operands();
                let site = self.resolve_binary_raw(a, b);
                queues[site.shard].push(QueuedOp {
                    index: w * Self::EXECUTE_WINDOW + off,
                    op,
                    a: site.a,
                    b: site.b,
                    temp: site.temp,
                });
            }
            if threads <= 1 {
                for (shard, queue) in queues.iter().enumerate() {
                    for (index, outcome) in run_queue(&mut self.shards[shard], queue) {
                        results[index] = Some((shard, outcome));
                    }
                }
            } else {
                let chunk = n.div_ceil(threads);
                let shard_chunks = self.shards.chunks_mut(chunk);
                let results = &mut results;
                std::thread::scope(|scope| {
                    let mut handles = Vec::new();
                    for (ci, (shard_chunk, queue_chunk)) in
                        shard_chunks.zip(queues.chunks(chunk)).enumerate()
                    {
                        handles.push(scope.spawn(move || {
                            let base = ci * chunk;
                            let mut out = Vec::new();
                            for (off, (engine, queue)) in
                                shard_chunk.iter_mut().zip(queue_chunk).enumerate()
                            {
                                for (index, outcome) in run_queue(engine, queue) {
                                    out.push((index, base + off, outcome));
                                }
                            }
                            out
                        }));
                    }
                    for handle in handles {
                        for (index, shard, outcome) in handle.join().expect("shard worker panicked")
                        {
                            results[index] = Some((shard, outcome));
                        }
                    }
                });
            }
        }

        for (shard, at) in checkpoints.iter().enumerate() {
            self.stats.merge_since(self.shards[shard].stats(), at);
        }
        self.refresh_energy();

        results
            .into_iter()
            .map(|slot| {
                let (shard, outcome) = slot.expect("every batch op produces an outcome");
                match outcome {
                    LocalOutcome::Set(local) => {
                        self.created_load[shard] += self.shards[shard].repr(local).len() as u64;
                        BatchResult::Set(self.register_global(shard, local))
                    }
                    LocalOutcome::Count(count) => BatchResult::Count(count),
                }
            })
            .collect()
    }
}

impl<E: SetEngine + Sync> ShardedEngine<E> {
    /// Evaluates a batch of **counting** operations with the host kernels
    /// alone: results are computed directly on the shard-resident
    /// representations, in place, without issuing instructions or advancing
    /// the simulated machine — no cycles, energy, traffic or metadata change.
    ///
    /// This is the raw-speed functional layer beneath the priced paths. Use
    /// it when only the answers matter (validation sweeps, result-only
    /// analyses, wall-clock kernel benchmarking); use [`Self::execute`] or
    /// the per-op [`SetEngine`] calls when the run must be priced. The priced
    /// paths compute every count through the same [`SetRepr`] kernels, so
    /// this evaluator returns exactly what they would.
    ///
    /// Operations are grouped by executing shard (the shard holding the
    /// larger operand — the same site rule the priced paths use) and fan out
    /// over [`Self::resolved_host_threads`] worker threads; shard state is
    /// only read, so thread count affects wall-clock alone.
    ///
    /// # Panics
    ///
    /// Panics if an operand does not name a live set, if the batch contains
    /// a materialising form, or if a worker thread panics.
    #[must_use]
    pub fn host_count_batch(&self, ops: &[BatchOp]) -> Vec<usize> {
        let n = self.shards.len();
        let mut queues: Vec<Vec<(usize, BatchOp)>> = (0..n).map(|_| Vec::new()).collect();
        for (index, &op) in ops.iter().enumerate() {
            assert!(
                matches!(
                    op,
                    BatchOp::IntersectCount(..)
                        | BatchOp::UnionCount(..)
                        | BatchOp::DifferenceCount(..)
                ),
                "host_count_batch evaluates counting forms only"
            );
            let (a, b) = op.operands();
            let (sa, la) = self.locate(a);
            let (sb, lb) = self.locate(b);
            let site = if sa == sb
                || self.shards[sb].repr(lb).storage_bits()
                    <= self.shards[sa].repr(la).storage_bits()
            {
                sa
            } else {
                sb
            };
            queues[site].push((index, op));
        }

        let eval = |op: BatchOp| -> usize {
            let (a, b) = op.operands();
            let (ra, rb) = (self.repr_of(a), self.repr_of(b));
            match op {
                BatchOp::IntersectCount(..) => ra.intersect_count(rb),
                BatchOp::UnionCount(..) => ra.union_count(rb),
                BatchOp::DifferenceCount(..) => ra.difference_count(rb),
                _ => unreachable!("materialising forms rejected above"),
            }
        };
        let mut results = vec![0usize; ops.len()];
        let threads = self.resolved_host_threads().clamp(1, n);
        if threads <= 1 {
            for queue in &queues {
                for &(index, op) in queue {
                    results[index] = eval(op);
                }
            }
        } else {
            let chunk = n.div_ceil(threads);
            let results = &mut results;
            std::thread::scope(|scope| {
                let mut handles = Vec::new();
                for queue_chunk in queues.chunks(chunk) {
                    handles.push(scope.spawn(move || {
                        queue_chunk
                            .iter()
                            .flat_map(|queue| queue.iter().map(|&(index, op)| (index, eval(op))))
                            .collect::<Vec<_>>()
                    }));
                }
                for handle in handles {
                    for (index, count) in handle.join().expect("kernel worker panicked") {
                        results[index] = count;
                    }
                }
            });
        }
        results
    }
}

impl ShardedEngine<SisaRuntime> {
    /// A sharded SISA platform: `shards` independent [`SisaRuntime`]s (each a
    /// vault group / cube slice of the configured platform) behind the given
    /// placement strategy, with the link model taken from the platform's PNM
    /// configuration.
    #[must_use]
    pub fn sisa(shards: usize, strategy: PartitionStrategy, config: SisaConfig) -> Self {
        let link = LinkModel::new(config.platform.pnm);
        let engines = (0..shards.max(1))
            .map(|_| SisaRuntime::new(config))
            .collect();
        let mut engine = Self::from_shards(engines, strategy, link);
        engine.set_host_threads(config.host_threads);
        engine
    }

    /// Attaches a telemetry collector to the wrapper and every shard:
    /// shard `i` reports instruction events under track group
    /// `group_base + i`, and the wrapper reports link-transfer events under
    /// `group_base`. Collectors are strictly observers (results, work
    /// counters and energy are bit-exact with or without one); the shared
    /// handle is `Sync`, so the threaded [`Self::execute`] batch path keeps
    /// working with a collector attached.
    pub fn attach_collector(
        &mut self,
        collector: crate::telemetry::SharedCollector,
        group_base: u32,
    ) {
        for (i, shard) in self.shards.iter_mut().enumerate() {
            shard.attach_collector(collector.clone(), group_base + i as u32);
        }
        self.collector = Some(collector);
        self.telemetry_group = group_base;
    }

    /// Detaches the collector from the wrapper and every shard.
    pub fn detach_collector(&mut self) {
        for shard in &mut self.shards {
            let _ = shard.detach_collector();
        }
        self.collector = None;
    }
}

impl<E: SetEngine> SetEngine for ShardedEngine<E> {
    fn backend_name(&self) -> &'static str {
        "sharded"
    }

    fn set_universe(&mut self, n: usize) {
        self.universe = self.universe.max(n);
        for shard in 0..self.shards.len() {
            self.on_shard(shard, |e| e.set_universe(n));
        }
    }

    fn universe(&self) -> usize {
        self.universe
    }

    fn stats(&self) -> &ExecStats {
        &self.stats
    }

    fn reset_stats(&mut self) {
        for shard in &mut self.shards {
            shard.reset_stats();
        }
        self.stats = ExecStats::default();
        self.traffic = LinkTraffic {
            sent_by_shard: vec![0; self.shards.len()],
            cycles_by_shard: vec![0; self.shards.len()],
            ..LinkTraffic::default()
        };
        self.shard_energy_sum = 0.0;
        self.task_mark = 0;
    }

    fn live_sets(&self) -> usize {
        self.shards.iter().map(SetEngine::live_sets).sum()
    }

    fn create(&mut self, repr: SetRepr) -> SetId {
        let global = self.allocate_global();
        let shard = self
            .strategy
            .shard_for(global.raw(), self.universe, &self.created_load);
        self.created_load[shard] += repr.len() as u64;
        let local = self.on_shard(shard, |e| e.create(repr));
        self.placement[global.raw() as usize] = Some((shard, local));
        global
    }

    fn clone_set(&mut self, id: SetId) -> SetId {
        let (shard, local) = self.locate(id);
        self.created_load[shard] += self.shards[shard].repr(local).len() as u64;
        let new_local = self.on_shard(shard, |e| e.clone_set(local));
        self.register_global(shard, new_local)
    }

    fn delete(&mut self, id: SetId) {
        let (shard, local) = self.locate(id);
        self.on_shard(shard, |e| e.delete(local));
        crate::slots::release(&mut self.placement, &mut self.free_ids, id);
    }

    fn cardinality(&mut self, id: SetId) -> usize {
        let (shard, local) = self.locate(id);
        self.on_shard(shard, |e| e.cardinality(local))
    }

    fn contains(&mut self, id: SetId, v: Vertex) -> bool {
        let (shard, local) = self.locate(id);
        self.on_shard(shard, |e| e.contains(local, v))
    }

    fn members(&mut self, id: SetId) -> Vec<Vertex> {
        let (shard, local) = self.locate(id);
        self.on_shard(shard, |e| e.members(local))
    }

    fn repr(&self, id: SetId) -> &SetRepr {
        let (shard, local) = self.locate(id);
        self.shards[shard].repr(local)
    }

    fn insert(&mut self, id: SetId, v: Vertex) -> bool {
        let (shard, local) = self.locate(id);
        self.on_shard(shard, |e| e.insert(local, v))
    }

    fn remove(&mut self, id: SetId, v: Vertex) -> bool {
        let (shard, local) = self.locate(id);
        self.on_shard(shard, |e| e.remove(local, v))
    }

    fn intersect(&mut self, a: SetId, b: SetId) -> SetId {
        self.binary_materialising(a, b, |e, a, b| e.intersect(a, b))
    }

    fn union(&mut self, a: SetId, b: SetId) -> SetId {
        self.binary_materialising(a, b, |e, a, b| e.union(a, b))
    }

    fn difference(&mut self, a: SetId, b: SetId) -> SetId {
        self.binary_materialising(a, b, |e, a, b| e.difference(a, b))
    }

    fn intersect_count(&mut self, a: SetId, b: SetId) -> usize {
        self.binary_counting(a, b, |e, a, b| e.intersect_count(a, b))
    }

    fn union_count(&mut self, a: SetId, b: SetId) -> usize {
        self.binary_counting(a, b, |e, a, b| e.union_count(a, b))
    }

    fn difference_count(&mut self, a: SetId, b: SetId) -> usize {
        self.binary_counting(a, b, |e, a, b| e.difference_count(a, b))
    }

    fn intersect_assign(&mut self, a: SetId, b: SetId) {
        self.binary_assign(a, b, |e, a, b| e.intersect_assign(a, b));
    }

    fn union_assign(&mut self, a: SetId, b: SetId) {
        self.binary_assign(a, b, |e, a, b| e.union_assign(a, b));
    }

    fn difference_assign(&mut self, a: SetId, b: SetId) {
        self.binary_assign(a, b, |e, a, b| e.difference_assign(a, b));
    }

    fn host_ops(&mut self, n: u64) {
        // Host-side scalar work executes on the host core, modelled next to
        // shard 0.
        self.on_shard(0, |e| e.host_ops(n));
    }

    fn task_begin(&mut self) {
        self.task_mark = self.stats.total_cycles();
    }

    fn task_end(&mut self) -> TaskRecord {
        // Task records are compute-only, like the flat SISA runtime's: a task
        // can span shards, so inner task boundaries are never delegated, and
        // per-task stall/DRAM components an inner engine would report (e.g.
        // `HostEngine`) are not reconstructed. Sharding targets the PIM
        // platform, whose cost models fold memory time into cycles; wrap
        // `HostEngine`s only where `schedule_cpu`'s bandwidth-contention
        // modelling is not needed.
        TaskRecord::compute_only(self.stats.total_cycles() - self.task_mark)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SisaConfig;

    fn sharded(n: usize, strategy: PartitionStrategy) -> ShardedEngine<SisaRuntime> {
        let mut e = ShardedEngine::sisa(n, strategy, SisaConfig::default());
        e.set_universe(256);
        e
    }

    /// A workload touching every trait method family.
    fn run_workload<E: SetEngine>(engine: &mut E) -> Vec<Vec<Vertex>> {
        let mut observed = Vec::new();
        let a = engine.create_sorted([1, 2, 3, 40, 90]);
        let b = engine.create_dense([2, 3, 4, 80]);
        let c = engine.create_sorted([3, 4, 5, 6]);
        engine.task_begin();
        let i = engine.intersect(a, b);
        let u = engine.union(b, c);
        let d = engine.difference(c, a);
        observed.push(engine.members(i));
        observed.push(engine.members(u));
        observed.push(engine.members(d));
        observed.push(vec![engine.intersect_count(a, c) as Vertex]);
        observed.push(vec![engine.union_count(a, b) as Vertex]);
        observed.push(vec![engine.difference_count(b, c) as Vertex]);
        engine.union_assign(d, b);
        engine.insert(d, 100);
        engine.remove(d, 2);
        observed.push(engine.members(d));
        observed.push(vec![engine.cardinality(d) as Vertex]);
        observed.push(vec![Vertex::from(engine.contains(d, 100))]);
        let k = engine.clone_set(d);
        observed.push(engine.members(k));
        engine.host_ops(13);
        let record = engine.task_end();
        observed.push(vec![Vertex::from(record.cycles > 0)]);
        engine.delete(i);
        engine.delete(u);
        engine.delete(k);
        observed
    }

    #[test]
    fn one_shard_matches_the_flat_runtime_cycle_for_cycle() {
        for strategy in PartitionStrategy::ALL {
            let mut flat = SisaRuntime::with_defaults();
            flat.set_universe(256);
            let from_flat = run_workload(&mut flat);

            let mut one = sharded(1, strategy);
            let from_sharded = run_workload(&mut one);

            assert_eq!(from_flat, from_sharded, "{strategy:?}");
            assert_eq!(flat.stats(), one.stats(), "{strategy:?}");
            assert_eq!(flat.live_sets(), one.live_sets());
            assert_eq!(one.traffic().cross_ops, 0);
            assert_eq!(one.stats().link_cycles, 0);
        }
    }

    #[test]
    fn all_strategies_and_shard_counts_agree_with_the_flat_runtime() {
        let mut flat = SisaRuntime::with_defaults();
        flat.set_universe(256);
        let reference = run_workload(&mut flat);
        for strategy in PartitionStrategy::ALL {
            for n in [2usize, 3, 8] {
                let mut engine = sharded(n, strategy);
                let observed = run_workload(&mut engine);
                assert_eq!(reference, observed, "{strategy:?} x{n}");
                assert_eq!(engine.live_sets(), flat.live_sets());
            }
        }
    }

    #[test]
    fn cross_shard_operations_charge_link_transfers() {
        let mut engine = sharded(2, PartitionStrategy::Modulo);
        let a = engine.create_sorted([1, 2, 3]); // id 0 -> shard 0
        let b = engine.create_sorted([2, 3, 4]); // id 1 -> shard 1
        assert_ne!(engine.shard_of(a), engine.shard_of(b));
        let c = engine.intersect(a, b);
        assert_eq!(engine.members(c), vec![2, 3]);
        assert_eq!(engine.traffic().cross_ops, 1);
        assert!(engine.stats().link_cycles > 0);
        assert!(engine.stats().link_bytes > 0);
        assert_eq!(
            engine.traffic().sent_by_shard.iter().sum::<u64>(),
            engine.stats().link_bytes
        );
        assert_eq!(
            engine.traffic().cycles_by_shard.iter().sum::<u64>(),
            engine.stats().link_cycles
        );
        // Same-shard operations stay free of link charges.
        let d = engine.create_sorted([5, 6]); // id 3 -> shard 1... depends on ids
        let before = engine.stats().link_bytes;
        let _ = engine.intersect_count(d, d);
        assert_eq!(engine.stats().link_bytes, before);
    }

    #[test]
    fn the_smaller_operand_is_the_one_transferred() {
        let mut engine = sharded(2, PartitionStrategy::Modulo);
        let small = engine.create_sorted([1, 2]); // shard 0
        let large = engine.create_sorted((0..200).collect::<Vec<_>>()); // shard 1
        let result = engine.intersect(small, large);
        // Only the small operand's bytes moved (2 elements * 4 bytes).
        assert_eq!(engine.stats().link_bytes, 8);
        assert_eq!(engine.traffic().sent_by_shard[0], 8);
        assert_eq!(engine.traffic().sent_by_shard[1], 0);
        // The result lives with the large operand.
        assert_eq!(engine.shard_of(result), engine.shard_of(large));
    }

    #[test]
    fn in_place_forms_execute_on_the_mutated_operand_shard() {
        let mut engine = sharded(2, PartitionStrategy::Modulo);
        let a = engine.create_sorted([1, 2, 3, 4, 5, 6, 7, 8]); // shard 0
        let big = engine.create_sorted((0..100).collect::<Vec<_>>()); // shard 1
        let home = engine.shard_of(a);
        engine.intersect_assign(a, big);
        assert_eq!(engine.shard_of(a), home, "a must not migrate");
        assert_eq!(engine.members(a), vec![1, 2, 3, 4, 5, 6, 7, 8]);
        // The (larger) right operand was transferred because a is pinned.
        assert_eq!(engine.stats().link_bytes, 400);
    }

    #[test]
    fn link_transfers_become_lane_work_on_the_receiving_shard() {
        let mut engine = sharded(2, PartitionStrategy::Modulo);
        let a = engine.create_sorted([1, 2, 3]); // shard 0
        let b = engine.create_sorted((0..50).collect::<Vec<_>>()); // shard 1
        let c = engine.intersect(a, b); // the smaller operand crosses the link
        assert_eq!(engine.members(c), vec![1, 2, 3]);
        let dst = engine.shard_of(b);
        let waited = engine.traffic().cycles_by_shard[dst];
        assert!(waited > 0);
        // The wait was absorbed into the receiving shard's overlap timeline:
        // at the default issue depth (1) the inner engine serialises it, so
        // its makespan is its own work plus the link cycles it waited for —
        // while its work counters stay untouched by the transfer.
        assert_eq!(
            engine.shard_stats(dst).makespan_cycles,
            engine.shard_stats(dst).total_cycles() + waited
        );
        // The aggregate's makespan view tracks the slowest shard.
        assert_eq!(
            engine.stats().makespan_cycles,
            (0..engine.shard_count())
                .map(|s| engine.shard_stats(s).makespan_cycles)
                .max()
                .unwrap()
        );
    }

    #[test]
    fn pipelined_shards_keep_consumers_behind_their_transfers() {
        // On pipelined inner engines the transfer must act as a producer of
        // the staged replica: the consuming operation stalls until the
        // operand has actually crossed the link, rather than racing its own
        // transfer on a free lane.
        let mut engine = ShardedEngine::sisa(
            2,
            PartitionStrategy::Modulo,
            SisaConfig::with_pipeline(8, 4),
        );
        engine.set_universe(2048);
        let small = engine.create_sorted([1, 2, 3]); // shard 0
        let large = engine.create_sorted((0..1000).collect::<Vec<_>>()); // shard 1
        let _ = engine.intersect(small, large); // the small operand crosses
        let dst = engine.shard_of(large);
        let waited = engine.traffic().cycles_by_shard[dst];
        assert!(waited > 0);
        // The consumer's RAW stall on the replica covers at least the whole
        // transfer duration (the transfer finishes no earlier than `waited`
        // cycles in, and the intersect could otherwise have started at ~0).
        assert!(
            engine.shard_stats(dst).dep_stall_cycles >= waited,
            "consumer stalled {} cycles, transfer took {}",
            engine.shard_stats(dst).dep_stall_cycles,
            waited
        );
        // Every stall recorded on a shard timeline — including any recorded
        // by the absorbed transfer itself — survives into the aggregate.
        let summed: u64 = (0..engine.shard_count())
            .map(|s| engine.shard_stats(s).dep_stall_cycles)
            .sum();
        assert_eq!(engine.stats().dep_stall_cycles, summed);
    }

    #[test]
    fn renamed_shards_conserve_work_and_keep_consumers_behind_transfers() {
        // Inner engines route through the renamed out-of-order scheduler when
        // the shared configuration arms it: work and results stay identical
        // to the in-order sharded run, the rename telemetry aggregates, and a
        // cross-shard transfer still gates its consumer — the staged replica
        // is renamed like any other produced set, so the RAW hazard survives.
        let mut inorder = ShardedEngine::sisa(
            2,
            PartitionStrategy::Modulo,
            SisaConfig::with_pipeline(8, 4),
        );
        inorder.set_universe(256);
        let reference = run_workload(&mut inorder);

        let mut renamed = ShardedEngine::sisa(
            2,
            PartitionStrategy::Modulo,
            SisaConfig::with_rename_ooo(8, 4, 8, 64),
        );
        renamed.set_universe(256);
        let observed = run_workload(&mut renamed);
        assert_eq!(reference, observed, "scheduling never changes answers");
        assert_eq!(
            renamed.stats().total_cycles(),
            inorder.stats().total_cycles(),
            "the renamed shards must conserve work"
        );
        assert_eq!(renamed.stats().energy_nj, inorder.stats().energy_nj);
        assert_eq!(renamed.stats().instructions, inorder.stats().instructions);
        // The decomposition aggregates across shards like every counter:
        // true RAW + removed false dependences = the in-order stall budget.
        assert_eq!(
            renamed.stats().dep_stall_cycles + renamed.stats().false_dep_stalls_removed,
            inorder.stats().dep_stall_cycles
        );
        // The transfer-consumer ordering survives renaming: the consuming
        // intersect stalls on the replica produced by the link transfer.
        let mut engine = ShardedEngine::sisa(
            2,
            PartitionStrategy::Modulo,
            SisaConfig::with_rename_ooo(8, 4, 8, 256),
        );
        engine.set_universe(2048);
        let small = engine.create_sorted([1, 2, 3]); // shard 0
        let large = engine.create_sorted((0..1000).collect::<Vec<_>>()); // shard 1
        let _ = engine.intersect(small, large); // the small operand crosses
        let dst = engine.shard_of(large);
        let waited = engine.traffic().cycles_by_shard[dst];
        assert!(waited > 0);
        assert!(
            engine.shard_stats(dst).makespan_cycles >= waited,
            "the consumer cannot finish before the transfer completes"
        );
    }

    #[test]
    fn aggregate_stats_are_conserved_across_shards() {
        let mut engine = sharded(4, PartitionStrategy::DegreeBalanced);
        let _ = run_workload(&mut engine);
        let mut recomputed = ExecStats::default();
        for shard in 0..engine.shard_count() {
            recomputed.merge(engine.shard_stats(shard));
        }
        recomputed.link_cycles += engine.traffic().cycles;
        recomputed.link_bytes += engine.traffic().bytes;
        recomputed.energy_nj += engine.traffic().energy_nj;
        assert_eq!(recomputed, *engine.stats());
    }

    #[test]
    fn report_schedules_one_task_per_shard() {
        let mut engine = sharded(3, PartitionStrategy::Modulo);
        let _ = run_workload(&mut engine);
        let report = engine.report();
        assert_eq!(report.shards, 3);
        assert_eq!(report.per_shard_cycles.len(), 3);
        assert_eq!(
            report.makespan_cycles(),
            report.per_shard_cycles.iter().copied().max().unwrap()
        );
        assert!(report.imbalance() >= 1.0);
        assert_eq!(
            report.per_shard_live_sets.iter().sum::<usize>(),
            engine.live_sets()
        );
        assert_eq!(
            report.per_shard_instructions.iter().sum::<u64>(),
            engine.stats().total_instructions()
        );
        // Link cycles are attributed to shards, so the per-shard loads add up
        // to the full aggregate — communication is not free in the makespan.
        assert_eq!(
            report.per_shard_cycles.iter().sum::<u64>(),
            engine.stats().total_cycles()
        );
    }

    #[test]
    fn reset_stats_clears_shards_and_traffic() {
        let mut engine = sharded(2, PartitionStrategy::Modulo);
        let a = engine.create_sorted([1, 2]);
        let b = engine.create_sorted([2, 3]);
        let _ = engine.intersect(a, b);
        assert!(engine.stats().total_cycles() > 0);
        engine.reset_stats();
        assert_eq!(*engine.stats(), ExecStats::default());
        assert_eq!(engine.traffic().cross_ops, 0);
        for shard in 0..engine.shard_count() {
            assert_eq!(engine.shard_stats(shard).total_cycles(), 0);
        }
        // The engine still works after a reset.
        assert_eq!(engine.members(a), vec![1, 2]);
    }

    /// Seed sets plus a batch touching every [`BatchOp`] form, with both
    /// same-shard and cross-shard operand pairs.
    fn batch_fixture(engine: &mut ShardedEngine<SisaRuntime>) -> (Vec<SetId>, Vec<BatchOp>) {
        let ids = vec![
            engine.create_sorted([1, 2, 3, 40, 90]),
            engine.create_dense([2, 3, 4, 80]),
            engine.create_sorted([3, 4, 5, 6]),
            engine.create_sorted((0..120).collect::<Vec<_>>()),
        ];
        let ops = vec![
            BatchOp::Intersect(ids[0], ids[1]),
            BatchOp::Union(ids[1], ids[2]),
            BatchOp::Difference(ids[3], ids[0]),
            BatchOp::IntersectCount(ids[0], ids[3]),
            BatchOp::UnionCount(ids[1], ids[3]),
            BatchOp::DifferenceCount(ids[2], ids[1]),
            BatchOp::Intersect(ids[2], ids[3]),
        ];
        (ids, ops)
    }

    #[test]
    fn execute_matches_the_per_op_results() {
        let mut batched = sharded(3, PartitionStrategy::Modulo);
        let (_, ops) = batch_fixture(&mut batched);
        let results = batched.execute(&ops);

        let mut reference = sharded(3, PartitionStrategy::Modulo);
        let (ids, _) = batch_fixture(&mut reference);
        let expected_sets = [
            reference.intersect(ids[0], ids[1]),
            reference.union(ids[1], ids[2]),
            reference.difference(ids[3], ids[0]),
        ];
        let expected_counts = [
            reference.intersect_count(ids[0], ids[3]),
            reference.union_count(ids[1], ids[3]),
            reference.difference_count(ids[2], ids[1]),
        ];
        let last = reference.intersect(ids[2], ids[3]);

        for (i, &id) in expected_sets.iter().enumerate() {
            assert_eq!(
                batched.members(results[i].set()),
                reference.members(id),
                "op {i}"
            );
        }
        for (i, &count) in expected_counts.iter().enumerate() {
            assert_eq!(results[i + 3].count(), count, "op {}", i + 3);
        }
        assert_eq!(batched.members(results[6].set()), reference.members(last));
        // Staged replicas were all released: only seeds + materialised
        // results remain live.
        assert_eq!(batched.live_sets(), reference.live_sets());
    }

    #[test]
    fn execute_stats_are_identical_for_every_thread_count() {
        let reference = {
            let mut engine = sharded(4, PartitionStrategy::Modulo);
            engine.set_host_threads(1);
            let (_, ops) = batch_fixture(&mut engine);
            let _ = engine.execute(&ops);
            engine
        };
        for threads in [2usize, 3, 8, 64] {
            let mut engine = sharded(4, PartitionStrategy::Modulo);
            engine.set_host_threads(threads);
            assert_eq!(engine.resolved_host_threads(), threads);
            let (_, ops) = batch_fixture(&mut engine);
            let _ = engine.execute(&ops);
            assert_eq!(engine.stats(), reference.stats(), "{threads} threads");
            assert_eq!(
                engine.stats().energy_nj.to_bits(),
                reference.stats().energy_nj.to_bits(),
                "energy must be bit-for-bit identical at {threads} threads"
            );
            assert_eq!(engine.traffic(), reference.traffic());
            for shard in 0..engine.shard_count() {
                assert_eq!(
                    engine.shard_stats(shard),
                    reference.shard_stats(shard),
                    "shard {shard} at {threads} threads"
                );
            }
        }
    }

    #[test]
    fn repr_of_reads_the_shard_resident_representation() {
        let mut engine = sharded(3, PartitionStrategy::Modulo);
        let a = engine.create_sorted([1, 5, 9]);
        let b = engine.create_dense([2, 4]);
        let before = engine.stats().clone();
        assert_eq!(engine.repr_of(a).to_sorted_vec(), vec![1, 5, 9]);
        assert_eq!(engine.repr_of(b).to_sorted_vec(), vec![2, 4]);
        assert_eq!(*engine.stats(), before, "inspection prices nothing");
    }

    #[test]
    fn host_count_batch_matches_the_priced_paths_and_prices_nothing() {
        let mut engine = sharded(3, PartitionStrategy::Modulo);
        let (ids, _) = batch_fixture(&mut engine);
        let ops = vec![
            BatchOp::IntersectCount(ids[0], ids[3]),
            BatchOp::UnionCount(ids[1], ids[3]),
            BatchOp::DifferenceCount(ids[2], ids[1]),
            BatchOp::IntersectCount(ids[2], ids[2]),
        ];
        let before = engine.stats().clone();
        let before_live = engine.live_sets();
        let counts = engine.host_count_batch(&ops);
        assert_eq!(*engine.stats(), before, "functional layer advances nothing");
        assert_eq!(engine.live_sets(), before_live);
        let expected = vec![
            engine.intersect_count(ids[0], ids[3]),
            engine.union_count(ids[1], ids[3]),
            engine.difference_count(ids[2], ids[1]),
            engine.intersect_count(ids[2], ids[2]),
        ];
        assert_eq!(counts, expected);
        // Thread count affects wall-clock alone, never the answers.
        for threads in [2usize, 8] {
            engine.set_host_threads(threads);
            assert_eq!(engine.host_count_batch(&ops), expected, "{threads} threads");
        }
    }

    #[test]
    #[should_panic(expected = "counting forms only")]
    fn host_count_batch_rejects_materialising_forms() {
        let mut engine = sharded(2, PartitionStrategy::Modulo);
        let a = engine.create_sorted([1, 2]);
        let b = engine.create_sorted([2, 3]);
        let _ = engine.host_count_batch(&[BatchOp::Intersect(a, b)]);
    }

    #[test]
    fn execute_conserves_the_aggregate_like_the_per_op_path() {
        let mut engine = sharded(4, PartitionStrategy::DegreeBalanced);
        engine.set_host_threads(4);
        let (_, ops) = batch_fixture(&mut engine);
        let _ = engine.execute(&ops);
        let mut recomputed = ExecStats::default();
        for shard in 0..engine.shard_count() {
            recomputed.merge(engine.shard_stats(shard));
        }
        recomputed.link_cycles += engine.traffic().cycles;
        recomputed.link_bytes += engine.traffic().bytes;
        recomputed.energy_nj += engine.traffic().energy_nj;
        assert_eq!(recomputed, *engine.stats());
    }

    #[test]
    fn host_threads_knob_flows_from_the_config() {
        let mut config = SisaConfig::default();
        assert_eq!(config.host_threads, 0, "auto by default");
        config.host_threads = 3;
        let engine = ShardedEngine::sisa(2, PartitionStrategy::Modulo, config);
        assert_eq!(engine.host_threads(), 3);
        assert_eq!(engine.resolved_host_threads(), 3);
        let auto = ShardedEngine::sisa(2, PartitionStrategy::Modulo, SisaConfig::default());
        assert!(auto.resolved_host_threads() >= 1, "auto resolves to >= 1");
    }

    #[test]
    fn freed_global_ids_are_reused() {
        let mut engine = sharded(2, PartitionStrategy::Modulo);
        let a = engine.create_sorted([1]);
        engine.delete(a);
        let b = engine.create_sorted([2]);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "does not exist")]
    fn using_a_deleted_global_id_panics() {
        let mut engine = sharded(2, PartitionStrategy::Modulo);
        let a = engine.create_sorted([1]);
        engine.delete(a);
        let _ = engine.cardinality(a);
    }

    #[test]
    fn strategies_place_graph_sets_differently() {
        // 8 sets over 4 shards with skewed sizes: modulo round-robins, range
        // blocks, degree-balanced equalises created cardinality.
        let sizes = [100usize, 90, 80, 1, 1, 1, 1, 1];
        let mut placements = Vec::new();
        for strategy in PartitionStrategy::ALL {
            let mut engine = ShardedEngine::sisa(4, strategy, SisaConfig::default());
            engine.set_universe(8);
            let ids: Vec<SetId> = sizes
                .iter()
                .map(|&s| engine.create_sorted(0..s as Vertex))
                .collect();
            placements.push(
                ids.iter()
                    .map(|&id| engine.shard_of(id))
                    .collect::<Vec<_>>(),
            );
        }
        assert_eq!(placements[0], vec![0, 1, 2, 3, 0, 1, 2, 3]); // modulo
        assert_eq!(placements[1], vec![0, 0, 1, 1, 2, 2, 3, 3]); // range
                                                                 // Degree-balanced: the three big sets land on three different shards.
        let degree = &placements[2];
        assert_eq!(degree[0], 0);
        assert_eq!(degree[1], 1);
        assert_eq!(degree[2], 2);
        assert_eq!(degree[3], 3);
    }
}
