//! The instruction-issue stage: mapping logical set IDs onto the RISC-V
//! register operands of real [`SisaInstruction`]s.
//!
//! The paper's encoding (Figure 5) names *registers*, not set IDs: the thin
//! software layer keeps each live set's logical ID in an integer register and
//! the SISA instruction's `rs1`/`rs2`/`rd` fields say which registers hold the
//! operand and result IDs (§6.3.2, §6.3.4). [`RegisterFile`] is that binding
//! table: a small LRU-managed pool of registers holding set IDs, with two
//! reserved registers for scalar results and vertex operands. Every operation
//! [`crate::SisaRuntime`] executes is first materialised as a genuine
//! [`SisaInstruction`] through this table (the *issue* stage) before the SCU
//! dispatches it onto the PIM cost models (the *dispatch* stage) and the
//! costed result is enqueued into the scoreboarded
//! [`crate::pipeline::IssueQueue`], which decides where the instruction lands
//! on the overlapped vault-lane timeline.

use sisa_isa::{Register, SetId, SisaInstruction, SisaOpcode};

/// Index of the first general-purpose register used for set IDs (`x1`; `x0`
/// is hard-wired zero).
const FIRST_SET_REGISTER: u8 = 1;

/// Number of registers in the set-ID pool (`x1`–`x29`; `x30`/`x31` are
/// reserved).
const SET_REGISTER_POOL: usize = 29;

/// The register receiving scalar results (counts, membership booleans).
const SCALAR_RESULT_REGISTER: u8 = 30;

/// The register holding the vertex operand of element instructions (the host
/// loads the vertex id into it before issuing, like an immediate).
const VERTEX_OPERAND_REGISTER: u8 = 31;

/// The set-ID → register binding table of the issue stage.
///
/// Binding an unbound set ID claims the least-recently-used register of the
/// pool (evicting whatever set ID it held — in a real program the software
/// layer would reload the spilled ID from its stack slot, which is host-side
/// work already covered by the algorithms' scalar-op accounting).
#[derive(Clone, Debug)]
pub struct RegisterFile {
    /// `bindings[i]` is the set ID currently held by register `x(i+1)`.
    bindings: [Option<SetId>; SET_REGISTER_POOL],
    /// LRU stamp per pool register.
    stamps: [u64; SET_REGISTER_POOL],
    clock: u64,
}

impl Default for RegisterFile {
    fn default() -> Self {
        Self::new()
    }
}

impl RegisterFile {
    /// Creates an empty binding table.
    #[must_use]
    pub fn new() -> Self {
        Self {
            bindings: [None; SET_REGISTER_POOL],
            stamps: [0; SET_REGISTER_POOL],
            clock: 0,
        }
    }

    /// The register that receives scalar (count / boolean) results.
    #[must_use]
    pub fn scalar_result() -> Register {
        Register::new(SCALAR_RESULT_REGISTER)
    }

    /// The register holding the vertex operand of element instructions.
    #[must_use]
    pub fn vertex_operand() -> Register {
        Register::new(VERTEX_OPERAND_REGISTER)
    }

    /// Returns the register holding `id`, binding it to the least-recently-
    /// used pool register first if necessary.
    pub fn bind(&mut self, id: SetId) -> Register {
        self.clock += 1;
        if let Some(slot) = self.slot_of(id) {
            self.stamps[slot] = self.clock;
            return Self::register_of(slot);
        }
        // Claim the LRU slot (free slots have stamp 0, so they go first).
        let slot = (0..SET_REGISTER_POOL)
            .min_by_key(|&i| (self.stamps[i], i))
            .expect("the register pool is non-empty");
        self.bindings[slot] = Some(id);
        self.stamps[slot] = self.clock;
        Self::register_of(slot)
    }

    /// Drops the binding for `id` (called when the set is deleted).
    pub fn release(&mut self, id: SetId) {
        if let Some(slot) = self.slot_of(id) {
            self.bindings[slot] = None;
            self.stamps[slot] = 0;
        }
    }

    /// The register currently bound to `id`, if any (no LRU update).
    #[must_use]
    pub fn lookup(&self, id: SetId) -> Option<Register> {
        self.slot_of(id).map(Self::register_of)
    }

    /// Number of set IDs currently bound.
    #[must_use]
    pub fn bound(&self) -> usize {
        self.bindings.iter().filter(|b| b.is_some()).count()
    }

    fn slot_of(&self, id: SetId) -> Option<usize> {
        self.bindings.iter().position(|&b| b == Some(id))
    }

    fn register_of(slot: usize) -> Register {
        Register::new(FIRST_SET_REGISTER + slot as u8)
    }

    // -----------------------------------------------------------------------
    // Instruction materialisation
    // -----------------------------------------------------------------------

    /// Materialises a binary set instruction `opcode rd, rs1, rs2` over two
    /// set operands; scalar-result opcodes (the counting twins) write to the
    /// scalar-result register instead of a set register.
    pub fn issue_binary(
        &mut self,
        opcode: SisaOpcode,
        a: SetId,
        b: SetId,
        dst: Option<SetId>,
    ) -> SisaInstruction {
        let rs1 = self.bind(a);
        let rs2 = self.bind(b);
        let rd = match dst {
            Some(id) => self.bind(id),
            None => Self::scalar_result(),
        };
        SisaInstruction::new(opcode, rd, rs1, rs2)
    }

    /// Materialises a single-element instruction (`sisa.ins` / `sisa.rem` /
    /// `sisa.member`): `rs1` names the set, `rs2` the register holding the
    /// vertex id.
    pub fn issue_element(&mut self, opcode: SisaOpcode, id: SetId) -> SisaInstruction {
        let rs1 = self.bind(id);
        let rd = if opcode.is_scalar_result() {
            Self::scalar_result()
        } else {
            Register::ZERO
        };
        SisaInstruction::new(opcode, rd, rs1, Self::vertex_operand())
    }

    /// Materialises a lifecycle/metadata instruction (`sisa.new`, `sisa.del`,
    /// `sisa.clone`, `sisa.card`).
    pub fn issue_lifecycle(
        &mut self,
        opcode: SisaOpcode,
        src: Option<SetId>,
        dst: Option<SetId>,
    ) -> SisaInstruction {
        let rs1 = src.map_or(Register::ZERO, |id| self.bind(id));
        let rd = match (opcode.is_scalar_result(), dst) {
            (true, _) => Self::scalar_result(),
            (false, Some(id)) => self.bind(id),
            (false, None) => Register::ZERO,
        };
        SisaInstruction::new(opcode, rd, rs1, Register::ZERO)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn binding_is_stable_until_evicted() {
        let mut rf = RegisterFile::new();
        let r1 = rf.bind(SetId(7));
        assert_eq!(rf.bind(SetId(7)), r1);
        assert_eq!(rf.lookup(SetId(7)), Some(r1));
        assert_eq!(rf.bound(), 1);
    }

    #[test]
    fn distinct_ids_get_distinct_registers() {
        let mut rf = RegisterFile::new();
        let regs: Vec<Register> = (0..SET_REGISTER_POOL as u32)
            .map(|i| rf.bind(SetId(i)))
            .collect();
        let mut seen: Vec<u8> = regs.iter().map(|r| r.index()).collect();
        seen.sort_unstable();
        seen.dedup();
        assert_eq!(seen.len(), SET_REGISTER_POOL);
        assert!(seen.iter().all(|r| (1..=29).contains(r)));
    }

    #[test]
    fn overflowing_the_pool_evicts_the_least_recently_used() {
        let mut rf = RegisterFile::new();
        for i in 0..SET_REGISTER_POOL as u32 {
            rf.bind(SetId(i));
        }
        // Touch SetId(0) so SetId(1) becomes the LRU victim.
        rf.bind(SetId(0));
        let newcomer = rf.bind(SetId(1000));
        assert_eq!(rf.lookup(SetId(1)), None, "LRU entry must be evicted");
        assert_eq!(rf.lookup(SetId(1000)), Some(newcomer));
        assert!(rf.lookup(SetId(0)).is_some());
    }

    #[test]
    fn release_frees_the_register_for_reuse() {
        let mut rf = RegisterFile::new();
        let r = rf.bind(SetId(3));
        rf.release(SetId(3));
        assert_eq!(rf.lookup(SetId(3)), None);
        assert_eq!(rf.bound(), 0);
        // A fresh binding reuses the freed (stamp-0) slot.
        assert_eq!(rf.bind(SetId(4)), r);
    }

    #[test]
    fn issued_instructions_use_the_reserved_registers() {
        let mut rf = RegisterFile::new();
        let count = rf.issue_binary(SisaOpcode::IntersectCountAuto, SetId(1), SetId(2), None);
        assert_eq!(count.rd, RegisterFile::scalar_result());
        let mat = rf.issue_binary(
            SisaOpcode::IntersectAuto,
            SetId(1),
            SetId(2),
            Some(SetId(3)),
        );
        assert_ne!(mat.rd, RegisterFile::scalar_result());
        assert_eq!(mat.rs1, count.rs1);
        assert_eq!(mat.rs2, count.rs2);
        let ins = rf.issue_element(SisaOpcode::InsertElement, SetId(1));
        assert_eq!(ins.rs2, RegisterFile::vertex_operand());
        assert_eq!(ins.rd, Register::ZERO);
        let member = rf.issue_element(SisaOpcode::Membership, SetId(1));
        assert_eq!(member.rd, RegisterFile::scalar_result());
        let card = rf.issue_lifecycle(SisaOpcode::Cardinality, Some(SetId(1)), None);
        assert_eq!(card.rd, RegisterFile::scalar_result());
        let new = rf.issue_lifecycle(SisaOpcode::CreateSet, None, Some(SetId(9)));
        assert_eq!(new.rs1, Register::ZERO);
        assert_ne!(new.rd, Register::ZERO);
    }
}
