//! The set-ID scoreboard: hazard tracking for the issue queue.
//!
//! SISA instructions name *sets*, not registers, so the dependences that
//! decide whether two instructions may overlap are dependences on set IDs:
//!
//! * **RAW** — an instruction reading a set must wait for the last write to
//!   that set to complete;
//! * **WAW** — an instruction writing a set must wait for the previous write
//!   to complete (results must land in program order);
//! * **WAR** — an instruction writing a set must wait for every earlier
//!   reader to drain (the write would otherwise clobber an operand that is
//!   still streaming out of a vault).
//!
//! [`Scoreboard`] keeps, per set ID, the completion time of the last write
//! and the latest completion time over all reads, on the issue queue's
//! virtual clock. [`Scoreboard::ready_at`] folds the three hazard rules into
//! the earliest cycle an instruction's operands allow it to start, and
//! [`Scoreboard::record`] publishes an issued instruction's completion time.
//!
//! Set IDs are reused after deletion (the slot allocator is LIFO). The
//! scoreboard deliberately keeps the dead ID's times: a `sisa.new` that
//! recycles the ID *writes* it, so the WAW/WAR rules serialise the new set's
//! creation behind every use of its predecessor — exactly the conservative
//! behaviour a real SCU tracking physical set slots would exhibit.

use sisa_isa::SetId;

/// Completion times recorded for one set ID.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
struct SetTimes {
    /// Cycle at which the last write to the set completes.
    write_done: u64,
    /// Latest cycle at which any read of the set completes.
    reads_done: u64,
}

/// Tracks RAW/WAW/WAR hazards on operand sets for the issue queue.
#[derive(Clone, Debug, Default)]
pub struct Scoreboard {
    times: Vec<SetTimes>,
}

impl Scoreboard {
    /// Creates an empty scoreboard.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    fn entry(&self, id: SetId) -> SetTimes {
        self.times
            .get(id.raw() as usize)
            .copied()
            .unwrap_or_default()
    }

    fn entry_mut(&mut self, id: SetId) -> &mut SetTimes {
        let slot = id.raw() as usize;
        if slot >= self.times.len() {
            self.times.resize(slot + 1, SetTimes::default());
        }
        &mut self.times[slot]
    }

    /// The earliest cycle at which an instruction reading `reads` and writing
    /// `writes` may start, honouring RAW, WAW and WAR hazards.
    #[must_use]
    pub fn ready_at(&self, reads: &[SetId], writes: &[SetId]) -> u64 {
        let mut ready = 0;
        for &r in reads {
            // RAW: the operand must have been produced.
            ready = ready.max(self.entry(r).write_done);
        }
        for &w in writes {
            let t = self.entry(w);
            // WAW: writes to a set complete in program order.
            // WAR: earlier readers drain before the set is overwritten.
            ready = ready.max(t.write_done).max(t.reads_done);
        }
        ready
    }

    /// Publishes an issued instruction's completion time against its operands.
    pub fn record(&mut self, reads: &[SetId], writes: &[SetId], finish: u64) {
        for &r in reads {
            let t = self.entry_mut(r);
            t.reads_done = t.reads_done.max(finish);
        }
        for &w in writes {
            let t = self.entry_mut(w);
            t.write_done = t.write_done.max(finish);
        }
    }

    /// Forgets every recorded time (the timeline restarts at cycle 0).
    pub fn clear(&mut self) {
        self.times.clear();
    }

    /// Number of set IDs with recorded hazard state (capacity telemetry).
    #[must_use]
    pub fn tracked(&self) -> usize {
        self.times.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn independent_sets_are_always_ready() {
        let mut sb = Scoreboard::new();
        sb.record(&[], &[SetId(0)], 100);
        assert_eq!(sb.ready_at(&[SetId(1)], &[SetId(2)]), 0);
    }

    #[test]
    fn raw_waits_for_the_producing_write() {
        let mut sb = Scoreboard::new();
        sb.record(&[], &[SetId(3)], 40);
        assert_eq!(sb.ready_at(&[SetId(3)], &[]), 40);
        // Reads do not gate later reads.
        sb.record(&[SetId(3)], &[], 90);
        assert_eq!(sb.ready_at(&[SetId(3)], &[]), 40);
    }

    #[test]
    fn waw_and_war_gate_writes() {
        let mut sb = Scoreboard::new();
        sb.record(&[], &[SetId(5)], 30); // write at 30
        sb.record(&[SetId(5)], &[], 70); // read drains at 70
                                         // A new write must wait for both the prior write and the reader.
        assert_eq!(sb.ready_at(&[], &[SetId(5)]), 70);
    }

    #[test]
    fn clear_restarts_the_timeline() {
        let mut sb = Scoreboard::new();
        sb.record(&[], &[SetId(9)], 500);
        assert!(sb.tracked() > 0);
        sb.clear();
        assert_eq!(sb.ready_at(&[SetId(9)], &[SetId(9)]), 0);
        assert_eq!(sb.tracked(), 0);
    }

    #[test]
    fn recycled_ids_serialise_behind_their_predecessor() {
        let mut sb = Scoreboard::new();
        sb.record(&[SetId(2)], &[], 80); // old set still being read until 80
        sb.record(&[], &[SetId(2)], 50); // delete completes at 50
                                         // Creating a new set in the recycled slot is a write: WAR against the
                                         // old reader keeps it ordered.
        assert_eq!(sb.ready_at(&[], &[SetId(2)]), 80);
    }
}
