//! The set-ID scoreboard: hazard tracking for the issue queue.
//!
//! SISA instructions name *sets*, not registers, so the dependences that
//! decide whether two instructions may overlap are dependences on set IDs:
//!
//! * **RAW** — an instruction reading a set must wait for the last write to
//!   that set to complete;
//! * **WAW** — an instruction writing a set must wait for the previous write
//!   to complete (results must land in program order);
//! * **WAR** — an instruction writing a set must wait for every earlier
//!   reader to drain (the write would otherwise clobber an operand that is
//!   still streaming out of a vault).
//!
//! [`Scoreboard`] keeps, per set ID, the completion time of the last write
//! and the latest completion time over all reads, on the issue queue's
//! virtual clock. [`Scoreboard::ready_at`] folds the three hazard rules into
//! the earliest cycle an instruction's operands allow it to start, and
//! [`Scoreboard::record`] publishes an issued instruction's completion time.
//!
//! The scoreboard serves two masters:
//!
//! * The **in-order issue queue** indexes it by *logical* set ID. Set IDs are
//!   reused after deletion (the slot allocator is LIFO) and the stale times
//!   are deliberately kept: a `sisa.new` that recycles the ID *writes* it, so
//!   the WAW/WAR rules serialise the new set's creation behind every use of
//!   its predecessor — exactly the conservative behaviour a real SCU tracking
//!   physical set slots would exhibit. (Those are the *false* dependences the
//!   renaming layer in [`crate::rename`] removes.)
//! * The **renamed out-of-order path** indexes it by *physical tag*: every
//!   write gets a fresh tag, so only the RAW rule ever fires, and a tag's
//!   entry is [released](Scoreboard::release) when the tag is reclaimed.
//!
//! Entries whose recorded times can no longer influence any future schedule
//! are pruned by [`Scoreboard::prune_completed`], so a scoreboard driven
//! across a long program stays bounded by the *in-flight* operand footprint
//! instead of growing with every set ID the program ever touched.

use sisa_isa::SetId;
use std::collections::BTreeMap;

/// Completion times recorded for one set ID.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
struct SetTimes {
    /// Cycle at which the last write to the set completes.
    write_done: u64,
    /// Latest cycle at which any read of the set completes.
    reads_done: u64,
}

/// Tracks RAW/WAW/WAR hazards on operand sets for the issue queue.
#[derive(Clone, Debug, Default)]
pub struct Scoreboard {
    times: BTreeMap<u32, SetTimes>,
}

impl Scoreboard {
    /// Creates an empty scoreboard.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    fn entry(&self, id: SetId) -> SetTimes {
        self.times.get(&id.raw()).copied().unwrap_or_default()
    }

    /// The earliest cycle at which an instruction reading `reads` and writing
    /// `writes` may start, honouring RAW, WAW and WAR hazards.
    #[must_use]
    pub fn ready_at(&self, reads: &[SetId], writes: &[SetId]) -> u64 {
        let mut ready = 0;
        for &r in reads {
            // RAW: the operand must have been produced.
            ready = ready.max(self.entry(r).write_done);
        }
        for &w in writes {
            let t = self.entry(w);
            // WAW: writes to a set complete in program order.
            // WAR: earlier readers drain before the set is overwritten.
            ready = ready.max(t.write_done).max(t.reads_done);
        }
        ready
    }

    /// The earliest cycle the *producer* of each of `reads` allows a reader
    /// to start — the RAW rule alone, ignoring WAW/WAR. This is the readiness
    /// rule of the renamed pipeline, whose fresh-tag-per-write discipline
    /// makes the write-side hazards structurally impossible.
    #[must_use]
    pub fn raw_ready_at(&self, reads: &[SetId]) -> u64 {
        reads
            .iter()
            .map(|&r| self.entry(r).write_done)
            .max()
            .unwrap_or(0)
    }

    /// Publishes an issued instruction's completion time against its operands.
    pub fn record(&mut self, reads: &[SetId], writes: &[SetId], finish: u64) {
        for &r in reads {
            let t = self.times.entry(r.raw()).or_default();
            t.reads_done = t.reads_done.max(finish);
        }
        for &w in writes {
            let t = self.times.entry(w.raw()).or_default();
            t.write_done = t.write_done.max(finish);
        }
    }

    /// The last write completion and latest read completion recorded for
    /// `id` (both 0 when the ID carries no hazard state). The renamed
    /// pipeline uses this to price when a superseded physical tag's storage
    /// has drained and can be reclaimed.
    #[must_use]
    pub fn times_of(&self, id: SetId) -> (u64, u64) {
        let t = self.entry(id);
        (t.write_done, t.reads_done)
    }

    /// Forgets the hazard state of one ID (a reclaimed physical tag: the next
    /// binding of the tag starts with a clean slate instead of inheriting its
    /// predecessor's times).
    pub fn release(&mut self, id: SetId) {
        self.times.remove(&id.raw());
    }

    /// Prunes every entry whose recorded times have fully retired: once the
    /// issue queue can prove that no future instruction will start before
    /// `horizon`, an entry with both times `<= horizon` can never again bind
    /// a `ready_at` result (the start-time max is dominated by the queue's
    /// structural/resource floor), so dropping it changes no schedule.
    /// Returns the number of entries dropped.
    pub fn prune_completed(&mut self, horizon: u64) -> usize {
        let before = self.times.len();
        self.times
            .retain(|_, t| t.write_done > horizon || t.reads_done > horizon);
        before - self.times.len()
    }

    /// Forgets every recorded time (the timeline restarts at cycle 0).
    pub fn clear(&mut self) {
        self.times.clear();
    }

    /// Number of set IDs with recorded hazard state (capacity telemetry).
    #[must_use]
    pub fn tracked(&self) -> usize {
        self.times.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn independent_sets_are_always_ready() {
        let mut sb = Scoreboard::new();
        sb.record(&[], &[SetId(0)], 100);
        assert_eq!(sb.ready_at(&[SetId(1)], &[SetId(2)]), 0);
    }

    #[test]
    fn raw_waits_for_the_producing_write() {
        let mut sb = Scoreboard::new();
        sb.record(&[], &[SetId(3)], 40);
        assert_eq!(sb.ready_at(&[SetId(3)], &[]), 40);
        // Reads do not gate later reads.
        sb.record(&[SetId(3)], &[], 90);
        assert_eq!(sb.ready_at(&[SetId(3)], &[]), 40);
    }

    #[test]
    fn waw_and_war_gate_writes() {
        let mut sb = Scoreboard::new();
        sb.record(&[], &[SetId(5)], 30); // write at 30
        sb.record(&[SetId(5)], &[], 70); // read drains at 70
                                         // A new write must wait for both the prior write and the reader.
        assert_eq!(sb.ready_at(&[], &[SetId(5)]), 70);
    }

    #[test]
    fn raw_only_readiness_ignores_readers() {
        let mut sb = Scoreboard::new();
        sb.record(&[], &[SetId(5)], 30);
        sb.record(&[SetId(5)], &[], 70);
        // The RAW-only rule sees the producer, never the drained readers.
        assert_eq!(sb.raw_ready_at(&[SetId(5)]), 30);
        assert_eq!(sb.raw_ready_at(&[SetId(9)]), 0);
        assert_eq!(sb.raw_ready_at(&[]), 0);
    }

    #[test]
    fn clear_restarts_the_timeline() {
        let mut sb = Scoreboard::new();
        sb.record(&[], &[SetId(9)], 500);
        assert!(sb.tracked() > 0);
        sb.clear();
        assert_eq!(sb.ready_at(&[SetId(9)], &[SetId(9)]), 0);
        assert_eq!(sb.tracked(), 0);
    }

    #[test]
    fn recycled_ids_serialise_behind_their_predecessor() {
        let mut sb = Scoreboard::new();
        sb.record(&[SetId(2)], &[], 80); // old set still being read until 80
        sb.record(&[], &[SetId(2)], 50); // delete completes at 50
                                         // Creating a new set in the recycled slot is a write: WAR against the
                                         // old reader keeps it ordered.
        assert_eq!(sb.ready_at(&[], &[SetId(2)]), 80);
    }

    #[test]
    fn release_forgets_one_id() {
        let mut sb = Scoreboard::new();
        sb.record(&[], &[SetId(7)], 100);
        sb.record(&[], &[SetId(8)], 100);
        sb.release(SetId(7));
        assert_eq!(sb.ready_at(&[SetId(7)], &[SetId(7)]), 0);
        assert_eq!(sb.ready_at(&[SetId(8)], &[]), 100);
        assert_eq!(sb.tracked(), 1);
    }

    #[test]
    fn pruning_drops_only_retired_entries() {
        let mut sb = Scoreboard::new();
        sb.record(&[], &[SetId(1)], 50);
        sb.record(&[SetId(2)], &[], 200);
        sb.record(&[], &[SetId(3)], 120);
        // Horizon 100: only set 1 (both times <= 100) is prunable.
        assert_eq!(sb.prune_completed(100), 1);
        assert_eq!(sb.tracked(), 2);
        // The surviving entries still constrain schedules.
        assert_eq!(sb.ready_at(&[], &[SetId(2)]), 200);
        assert_eq!(sb.ready_at(&[SetId(3)], &[]), 120);
        // And the pruned one no longer does (which is safe: the queue only
        // prunes once every future start is provably >= the horizon).
        assert_eq!(sb.ready_at(&[SetId(1)], &[SetId(1)]), 0);
    }

    #[test]
    fn pruning_a_long_id_stream_keeps_the_scoreboard_bounded() {
        // Regression for the unbounded-growth bug: a scoreboard fed an
        // ever-growing stream of distinct IDs used to retain one entry per ID
        // forever. Pruning at the retire horizon keeps it at the in-flight
        // footprint.
        let mut sb = Scoreboard::new();
        for i in 0..10_000u32 {
            let t = u64::from(i) * 10;
            sb.record(&[SetId(i)], &[SetId(i)], t + 10);
            if i % 64 == 0 {
                // Everything finishing at or before `t` has retired.
                sb.prune_completed(t);
            }
        }
        sb.prune_completed(u64::MAX);
        assert_eq!(sb.tracked(), 0);
    }
}
