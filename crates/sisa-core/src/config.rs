//! Runtime configuration: platform parameters, variant-selection policy and
//! hybrid set-graph layout knobs.

use sisa_pim::PimPlatform;

/// How the SCU chooses between the merge and galloping variants of a sparse
/// set operation.
///
/// The paper's default is the performance-model comparison (§8.3); the size
/// -ratio policy corresponds to the "galloping threshold" swept in the
/// sensitivity analysis of Figure 7b, and the two fixed policies are the
/// ablation extremes.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum VariantSelection {
    /// Evaluate both §8.3 models and pick the cheaper variant (paper default).
    PerformanceModel,
    /// Use galloping whenever `max(|A|,|B|) / min(|A|,|B|)` is at least the
    /// given threshold (e.g. 5, 100, 10000 in Figure 7b).
    SizeRatio(f64),
    /// Always use the merge variant.
    AlwaysMerge,
    /// Always use the galloping variant.
    AlwaysGalloping,
}

/// Configuration of the hybrid SISA set-graph layout (§6.1).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SetGraphConfig {
    /// Fraction of neighbourhoods (the largest ones) stored as dense
    /// bitvectors. The paper's evaluation sets this bias parameter `t` to 0.4
    /// ("40% of neighbourhoods are stored as DBs", §9.1) and sweeps it from 0
    /// (PNM only) to 1 (PUM only) in Figure 7b.
    pub db_fraction: f64,
    /// Maximum additional storage allowed on top of the CSR/SA-only layout,
    /// as a fraction of the CSR size (paper default: 10%).
    pub storage_budget_frac: f64,
}

impl Default for SetGraphConfig {
    fn default() -> Self {
        Self {
            db_fraction: 0.4,
            storage_budget_frac: 0.10,
        }
    }
}

impl SetGraphConfig {
    /// A layout that never uses dense bitvectors (SISA-PNM only).
    #[must_use]
    pub fn sparse_only() -> Self {
        Self {
            db_fraction: 0.0,
            ..Self::default()
        }
    }

    /// A layout that stores every neighbourhood densely (SISA-PUM only), with
    /// an unlimited budget — the other Figure 7b extreme.
    #[must_use]
    pub fn dense_only() -> Self {
        Self {
            db_fraction: 1.0,
            storage_budget_frac: f64::INFINITY,
        }
    }
}

/// Top-level configuration of the SISA runtime.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SisaConfig {
    /// The simulated PIM platform (PNM + PUM + SCU parameters).
    pub platform: PimPlatform,
    /// How merge vs. galloping is selected for sparse operations.
    pub variant_selection: VariantSelection,
    /// Cycles charged per host-side scalar operation reported by algorithms
    /// (loop control, counters); the paper leaves this work on the host /
    /// vault cores.
    pub host_op_cost: f64,
    /// Whether to record the sizes of every pair of sets processed (used by
    /// the Figure 9b set-size histograms). Off by default to save memory.
    pub track_set_sizes: bool,
    /// Depth of the scoreboarded issue queue: how many SISA instructions may
    /// be in flight at once. Depth 1 (the default) is fully serial execution
    /// — every instruction waits for its predecessor to retire, reproducing
    /// the classic sequential cost model cycle-for-cycle. Larger depths let
    /// instructions with disjoint operand sets overlap across the virtual
    /// vault lanes; dependent instructions stall (RAW/WAW/WAR on set IDs)
    /// and the stall lands in [`crate::ExecStats::dep_stall_cycles`].
    pub issue_depth: usize,
    /// Number of virtual vault lanes the issue queue dispatches onto. 0 (the
    /// default) derives the count from the PNM cube/vault geometry via
    /// [`sisa_pim::PnmConfig::issue_lanes`]; any other value overrides it
    /// (used by the `pipeline_overlap` lane sweep).
    pub issue_lanes: usize,
    /// Capacity of the set-ID renaming pool: how many physical tags the
    /// runtime may hold in flight. 0 (the default) disables renaming — the
    /// scoreboard then tracks logical set IDs and recycled IDs serialise on
    /// WAR/WAW hazards, reproducing the in-order pipeline bit-exactly. Any
    /// other value arms the renamed out-of-order scheduler: every logical
    /// write binds a fresh tag from a pool of this size (free-list pressure
    /// surfaces as a structural stall) and only true RAW dependences remain.
    pub rename_tags: usize,
    /// Reorder-window capacity of the out-of-order scheduler: how many
    /// instructions may be in flight while ready ones bypass stalled
    /// predecessors (retirement stays in program order). 0 (the default)
    /// keeps the in-order issue window of `issue_depth`; a non-zero window
    /// arms the out-of-order scheduler even without renaming (it then
    /// reorders under the full logical-ID hazard rules, which is provably
    /// identical to an in-order window of the same size).
    pub ooo_window: usize,
    /// Host worker threads used by [`crate::ShardedEngine::execute`] to fan
    /// independent per-shard batch work across OS threads. 0 (the default)
    /// resolves to the machine's available parallelism at run time; 1 forces
    /// sequential execution. Purely a host-speed knob: the simulated
    /// statistics are bit-for-bit identical for every thread count.
    pub host_threads: usize,
}

impl Default for SisaConfig {
    fn default() -> Self {
        Self {
            platform: PimPlatform::default(),
            variant_selection: VariantSelection::PerformanceModel,
            host_op_cost: 0.5,
            track_set_sizes: false,
            issue_depth: 1,
            issue_lanes: 0,
            rename_tags: 0,
            ooo_window: 0,
            host_threads: 0,
        }
    }
}

impl SisaConfig {
    /// The default configuration with set-size tracking enabled.
    #[must_use]
    pub fn with_set_size_tracking() -> Self {
        Self {
            track_set_sizes: true,
            ..Self::default()
        }
    }

    /// A configuration whose SCU metadata cache (SMB) is disabled — the §9.2
    /// "SCU cache" sensitivity experiment.
    #[must_use]
    pub fn without_smb() -> Self {
        let mut cfg = Self::default();
        cfg.platform.smb_enabled = false;
        cfg
    }

    /// The default configuration with a pipelined issue queue of the given
    /// depth (lane count derived from the PNM cube/vault geometry).
    #[must_use]
    pub fn pipelined(issue_depth: usize) -> Self {
        Self {
            issue_depth,
            ..Self::default()
        }
    }

    /// The default configuration with an explicit issue-queue depth and lane
    /// count (the `pipeline_overlap` sweep's knobs).
    #[must_use]
    pub fn with_pipeline(issue_depth: usize, issue_lanes: usize) -> Self {
        Self {
            issue_depth,
            issue_lanes,
            ..Self::default()
        }
    }

    /// The lane count the issue queue actually runs with: the explicit
    /// override if set, otherwise derived from the PNM geometry.
    #[must_use]
    pub fn resolved_issue_lanes(&self) -> usize {
        if self.issue_lanes == 0 {
            self.platform.pnm.issue_lanes()
        } else {
            self.issue_lanes
        }
    }

    /// Whether the runtime schedules through the renamed out-of-order path
    /// (either knob arms it; both off reproduces the in-order pipeline
    /// bit-exactly).
    #[must_use]
    pub fn uses_ooo(&self) -> bool {
        self.rename_tags > 0 || self.ooo_window > 0
    }

    /// The default configuration with set-ID renaming and an out-of-order
    /// reorder window of `window` instructions: tags come from the
    /// platform's physical set-slot table
    /// ([`sisa_pim::PimPlatform::rename_tag_slots`]), lanes from the PNM
    /// geometry, and `issue_depth` is set to the same `window` so the shadow
    /// in-order reference — the baseline `ExecStats::dep_stall_cycles` and
    /// `false_dep_stalls_removed` decompose — is the equally-sized in-order
    /// pipeline.
    #[must_use]
    pub fn renamed(window: usize) -> Self {
        let base = Self::default();
        Self {
            issue_depth: window,
            ooo_window: window,
            rename_tags: base.platform.rename_tag_slots,
            ..base
        }
    }

    /// Full-knob constructor for the rename/out-of-order sweeps: in-order
    /// reference depth, explicit lane count, reorder-window capacity and
    /// physical-tag pool size.
    #[must_use]
    pub fn with_rename_ooo(
        issue_depth: usize,
        issue_lanes: usize,
        ooo_window: usize,
        rename_tags: usize,
    ) -> Self {
        Self {
            issue_depth,
            issue_lanes,
            ooo_window,
            rename_tags,
            ..Self::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_settings() {
        let sg = SetGraphConfig::default();
        assert!((sg.db_fraction - 0.4).abs() < 1e-12);
        assert!((sg.storage_budget_frac - 0.10).abs() < 1e-12);
        let cfg = SisaConfig::default();
        assert_eq!(cfg.variant_selection, VariantSelection::PerformanceModel);
        assert!(cfg.platform.smb_enabled);
    }

    #[test]
    fn extreme_layouts() {
        assert_eq!(SetGraphConfig::sparse_only().db_fraction, 0.0);
        assert_eq!(SetGraphConfig::dense_only().db_fraction, 1.0);
        assert!(SetGraphConfig::dense_only()
            .storage_budget_frac
            .is_infinite());
    }

    #[test]
    fn smb_can_be_disabled() {
        assert!(!SisaConfig::without_smb().platform.smb_enabled);
        assert!(SisaConfig::with_set_size_tracking().track_set_sizes);
    }

    #[test]
    fn pipeline_defaults_are_serial_with_derived_lanes() {
        let cfg = SisaConfig::default();
        assert_eq!(cfg.issue_depth, 1, "serial issue by default");
        assert_eq!(cfg.issue_lanes, 0, "lane count derived from the platform");
        assert_eq!(cfg.resolved_issue_lanes(), cfg.platform.pnm.issue_lanes());
        let deep = SisaConfig::pipelined(16);
        assert_eq!(deep.issue_depth, 16);
        assert_eq!(deep.resolved_issue_lanes(), deep.platform.pnm.issue_lanes());
        let explicit = SisaConfig::with_pipeline(8, 4);
        assert_eq!(explicit.issue_depth, 8);
        assert_eq!(explicit.resolved_issue_lanes(), 4);
    }

    #[test]
    fn rename_and_ooo_default_off() {
        let cfg = SisaConfig::default();
        assert_eq!(cfg.rename_tags, 0, "renaming off by default");
        assert_eq!(cfg.ooo_window, 0, "in-order issue by default");
        assert!(!cfg.uses_ooo());
    }

    #[test]
    fn renamed_configuration_arms_both_knobs() {
        let cfg = SisaConfig::renamed(8);
        assert!(cfg.uses_ooo());
        assert_eq!(cfg.ooo_window, 8);
        assert_eq!(
            cfg.issue_depth, 8,
            "the shadow reference is the equally-sized in-order window"
        );
        assert_eq!(cfg.rename_tags, cfg.platform.rename_tag_slots);
        let explicit = SisaConfig::with_rename_ooo(4, 16, 8, 64);
        assert!(explicit.uses_ooo());
        assert_eq!(
            (
                explicit.issue_depth,
                explicit.resolved_issue_lanes(),
                explicit.ooo_window,
                explicit.rename_tags
            ),
            (4, 16, 8, 64)
        );
        // A window alone (no renaming) also routes through the scheduler.
        assert!(SisaConfig::with_rename_ooo(1, 4, 8, 0).uses_ooo());
    }
}
