//! Capturing a run as a stream of SISA instructions.
//!
//! A [`TraceSink`] attached to [`crate::SisaRuntime`] records every operation
//! the issue stage materialises: the genuine [`SisaInstruction`] (when the
//! operation is a SISA instruction) plus the semantic payload needed to
//! re-execute it ([`TraceOp`]). Host-side events that cost cycles but are not
//! SISA instructions — result extraction via `members`, scalar `host_ops`,
//! universe/statistics bookkeeping — are recorded too, so that
//! [`crate::Interpreter::replay`] can reproduce a captured run's
//! [`crate::ExecStats`] cycle-for-cycle on a fresh engine.
//!
//! The sink is **bounded**: once `capacity` events are recorded, further
//! events are counted but dropped, so tracing a long run cannot exhaust
//! memory. A truncated trace still replays correctly as a prefix of the run.
//!
//! Traces record *what* was issued, never *when* it executed: no schedule or
//! cycle information is stored, so the same capture replays against a serial
//! (depth-1) runtime or any pipelined configuration and the issue-queue model
//! is free to evolve without invalidating checked-in fixtures.

use crate::scu::BinarySetOp;
use crate::Vertex;
use sisa_isa::{SetId, SisaInstruction, SisaProgram};
use sisa_sets::SetRepr;

/// The semantic payload of one traced event: everything the interpreter needs
/// to re-execute the operation against another engine.
#[derive(Clone, Debug, PartialEq)]
pub enum TraceOp {
    /// The universe was grown to at least `n` vertices.
    SetUniverse {
        /// The requested universe size.
        n: usize,
    },
    /// Statistics were cleared (the load/measure boundary).
    ResetStats,
    /// A set was created with the given contents.
    Create {
        /// The ID the run assigned to the new set.
        id: SetId,
        /// The representation the set was created with.
        repr: SetRepr,
    },
    /// `dst = clone(src)`.
    Clone {
        /// The source set.
        src: SetId,
        /// The ID assigned to the copy.
        dst: SetId,
    },
    /// A set was deleted.
    Delete {
        /// The deleted set.
        id: SetId,
    },
    /// `|A|` was queried.
    Cardinality {
        /// The queried set.
        id: SetId,
    },
    /// `x ∈ A` was queried.
    Membership {
        /// The queried set.
        id: SetId,
        /// The probed vertex.
        v: Vertex,
    },
    /// `A ∪= {x}`.
    Insert {
        /// The updated set.
        id: SetId,
        /// The inserted vertex.
        v: Vertex,
    },
    /// `A \= {x}`.
    Remove {
        /// The updated set.
        id: SetId,
        /// The removed vertex.
        v: Vertex,
    },
    /// A materialising binary operation `dst = A op B`.
    Binary {
        /// The abstract operation.
        op: BinarySetOp,
        /// Left operand.
        a: SetId,
        /// Right operand.
        b: SetId,
        /// The ID assigned to the result set.
        dst: SetId,
    },
    /// A counting binary operation `|A op B|`.
    BinaryCount {
        /// The abstract operation.
        op: BinarySetOp,
        /// Left operand.
        a: SetId,
        /// Right operand.
        b: SetId,
    },
    /// An in-place binary operation `A op= B`.
    BinaryAssign {
        /// The abstract operation.
        op: BinarySetOp,
        /// The mutated left operand.
        a: SetId,
        /// Right operand.
        b: SetId,
    },
    /// The set's members were read out to the host.
    Members {
        /// The read set.
        id: SetId,
    },
    /// `n` host-side scalar operations were charged.
    HostOps {
        /// Number of scalar operations.
        n: u64,
    },
}

/// One recorded event: the materialised instruction (for SISA operations) and
/// the semantic payload.
#[derive(Clone, Debug, PartialEq)]
pub struct TraceEvent {
    /// The instruction the issue stage materialised, or `None` for host-side
    /// events (`members`, `host_ops`, bookkeeping).
    pub instruction: Option<SisaInstruction>,
    /// The semantic payload.
    pub op: TraceOp,
}

/// A bounded recorder of issued operations.
#[derive(Clone, Debug)]
pub struct TraceSink {
    events: Vec<TraceEvent>,
    capacity: usize,
    dropped: u64,
}

impl TraceSink {
    /// The default event capacity (events beyond it are counted but dropped).
    pub const DEFAULT_CAPACITY: usize = 1 << 20;

    /// Creates a sink that stops recording after `capacity` events.
    #[must_use]
    pub fn bounded(capacity: usize) -> Self {
        Self {
            events: Vec::new(),
            capacity,
            dropped: 0,
        }
    }

    /// Records one event (drops it if the sink is full).
    pub fn record(&mut self, instruction: Option<SisaInstruction>, op: TraceOp) {
        if self.events.len() >= self.capacity {
            self.dropped += 1;
            return;
        }
        self.events.push(TraceEvent { instruction, op });
    }

    /// The recorded events, in issue order.
    #[must_use]
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Number of recorded events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether nothing has been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Number of events dropped after the capacity was reached.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Whether the sink captured the complete run (nothing was dropped).
    #[must_use]
    pub fn is_complete(&self) -> bool {
        self.dropped == 0
    }

    /// The captured run as a genuine [`SisaProgram`]: the dynamic stream of
    /// materialised SISA instructions, host-side events elided.
    #[must_use]
    pub fn program(&self) -> SisaProgram {
        self.events.iter().filter_map(|e| e.instruction).collect()
    }
}

impl Default for TraceSink {
    fn default() -> Self {
        Self::bounded(Self::DEFAULT_CAPACITY)
    }
}

// ---------------------------------------------------------------------------
// Serialization (through the vendored serde shim)
// ---------------------------------------------------------------------------
//
// A serialized trace is a complete, self-contained workload: instructions are
// stored as their 32-bit machine words (the Figure 5 encoding), semantic
// payloads as tagged maps. Round-tripping a `TraceSink` through JSON preserves
// `PartialEq` equality, so captured runs can be checked in as fixtures and
// replayed by the `Interpreter` in later PRs. The vendored `serde_derive` shim
// only handles named-field structs, hence the manual impls for the enums.

use serde::{Content, Deserialize, Error, Serialize};

impl Serialize for BinarySetOp {
    fn to_content(&self) -> Content {
        Content::Str(
            match self {
                BinarySetOp::Intersection => "intersection",
                BinarySetOp::Union => "union",
                BinarySetOp::Difference => "difference",
            }
            .to_string(),
        )
    }
}

impl Deserialize for BinarySetOp {
    fn from_content(content: &Content) -> Result<Self, Error> {
        match String::from_content(content)?.as_str() {
            "intersection" => Ok(BinarySetOp::Intersection),
            "union" => Ok(BinarySetOp::Union),
            "difference" => Ok(BinarySetOp::Difference),
            other => Err(Error::custom(format!("unknown binary set op `{other}`"))),
        }
    }
}

/// Builds the tagged map for one trace op.
fn tagged(tag: &str, fields: Vec<(String, Content)>) -> Content {
    let mut entries = vec![("op".to_string(), Content::Str(tag.to_string()))];
    entries.extend(fields);
    Content::Map(entries)
}

/// Reads one required field of a tagged map.
fn field<T: Deserialize>(content: &Content, tag: &str, name: &str) -> Result<T, Error> {
    let value = content
        .get(name)
        .ok_or_else(|| Error::custom(format!("trace op `{tag}` missing field `{name}`")))?;
    T::from_content(value)
}

impl Serialize for TraceOp {
    fn to_content(&self) -> Content {
        let entry = |name: &str, value: Content| (name.to_string(), value);
        match self {
            TraceOp::SetUniverse { n } => tagged("set_universe", vec![entry("n", n.to_content())]),
            TraceOp::ResetStats => tagged("reset_stats", vec![]),
            TraceOp::Create { id, repr } => tagged(
                "create",
                vec![
                    entry("id", id.to_content()),
                    entry("repr", repr.to_content()),
                ],
            ),
            TraceOp::Clone { src, dst } => tagged(
                "clone",
                vec![
                    entry("src", src.to_content()),
                    entry("dst", dst.to_content()),
                ],
            ),
            TraceOp::Delete { id } => tagged("delete", vec![entry("id", id.to_content())]),
            TraceOp::Cardinality { id } => {
                tagged("cardinality", vec![entry("id", id.to_content())])
            }
            TraceOp::Membership { id, v } => tagged(
                "membership",
                vec![entry("id", id.to_content()), entry("v", v.to_content())],
            ),
            TraceOp::Insert { id, v } => tagged(
                "insert",
                vec![entry("id", id.to_content()), entry("v", v.to_content())],
            ),
            TraceOp::Remove { id, v } => tagged(
                "remove",
                vec![entry("id", id.to_content()), entry("v", v.to_content())],
            ),
            TraceOp::Binary { op, a, b, dst } => tagged(
                "binary",
                vec![
                    entry("kind", op.to_content()),
                    entry("a", a.to_content()),
                    entry("b", b.to_content()),
                    entry("dst", dst.to_content()),
                ],
            ),
            TraceOp::BinaryCount { op, a, b } => tagged(
                "binary_count",
                vec![
                    entry("kind", op.to_content()),
                    entry("a", a.to_content()),
                    entry("b", b.to_content()),
                ],
            ),
            TraceOp::BinaryAssign { op, a, b } => tagged(
                "binary_assign",
                vec![
                    entry("kind", op.to_content()),
                    entry("a", a.to_content()),
                    entry("b", b.to_content()),
                ],
            ),
            TraceOp::Members { id } => tagged("members", vec![entry("id", id.to_content())]),
            TraceOp::HostOps { n } => tagged("host_ops", vec![entry("n", n.to_content())]),
        }
    }
}

impl Deserialize for TraceOp {
    fn from_content(content: &Content) -> Result<Self, Error> {
        let tag = String::from_content(
            content
                .get("op")
                .ok_or_else(|| Error::custom("trace op without an `op` tag"))?,
        )?;
        let t = tag.as_str();
        match t {
            "set_universe" => Ok(TraceOp::SetUniverse {
                n: field(content, t, "n")?,
            }),
            "reset_stats" => Ok(TraceOp::ResetStats),
            "create" => Ok(TraceOp::Create {
                id: field(content, t, "id")?,
                repr: field(content, t, "repr")?,
            }),
            "clone" => Ok(TraceOp::Clone {
                src: field(content, t, "src")?,
                dst: field(content, t, "dst")?,
            }),
            "delete" => Ok(TraceOp::Delete {
                id: field(content, t, "id")?,
            }),
            "cardinality" => Ok(TraceOp::Cardinality {
                id: field(content, t, "id")?,
            }),
            "membership" => Ok(TraceOp::Membership {
                id: field(content, t, "id")?,
                v: field(content, t, "v")?,
            }),
            "insert" => Ok(TraceOp::Insert {
                id: field(content, t, "id")?,
                v: field(content, t, "v")?,
            }),
            "remove" => Ok(TraceOp::Remove {
                id: field(content, t, "id")?,
                v: field(content, t, "v")?,
            }),
            "binary" => Ok(TraceOp::Binary {
                op: field(content, t, "kind")?,
                a: field(content, t, "a")?,
                b: field(content, t, "b")?,
                dst: field(content, t, "dst")?,
            }),
            "binary_count" => Ok(TraceOp::BinaryCount {
                op: field(content, t, "kind")?,
                a: field(content, t, "a")?,
                b: field(content, t, "b")?,
            }),
            "binary_assign" => Ok(TraceOp::BinaryAssign {
                op: field(content, t, "kind")?,
                a: field(content, t, "a")?,
                b: field(content, t, "b")?,
            }),
            "members" => Ok(TraceOp::Members {
                id: field(content, t, "id")?,
            }),
            "host_ops" => Ok(TraceOp::HostOps {
                n: field(content, t, "n")?,
            }),
            other => Err(Error::custom(format!("unknown trace op `{other}`"))),
        }
    }
}

impl Serialize for TraceEvent {
    fn to_content(&self) -> Content {
        Content::Map(vec![
            ("instruction".to_string(), self.instruction.to_content()),
            ("op".to_string(), self.op.to_content()),
        ])
    }
}

impl Deserialize for TraceEvent {
    fn from_content(content: &Content) -> Result<Self, Error> {
        Ok(TraceEvent {
            instruction: field(content, "event", "instruction")?,
            op: field(content, "event", "op")?,
        })
    }
}

impl Serialize for TraceSink {
    fn to_content(&self) -> Content {
        Content::Map(vec![
            ("capacity".to_string(), self.capacity.to_content()),
            ("dropped".to_string(), self.dropped.to_content()),
            ("events".to_string(), self.events.to_content()),
        ])
    }
}

impl Deserialize for TraceSink {
    fn from_content(content: &Content) -> Result<Self, Error> {
        Ok(TraceSink {
            capacity: field(content, "trace", "capacity")?,
            dropped: field(content, "trace", "dropped")?,
            events: field(content, "trace", "events")?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sisa_isa::{Register, SisaOpcode};

    fn instr(op: SisaOpcode) -> SisaInstruction {
        SisaInstruction::new(op, Register::new(1), Register::new(2), Register::new(3))
    }

    #[test]
    fn records_until_capacity_then_counts_drops() {
        let mut sink = TraceSink::bounded(2);
        sink.record(None, TraceOp::HostOps { n: 1 });
        sink.record(None, TraceOp::HostOps { n: 2 });
        assert!(sink.is_complete());
        sink.record(None, TraceOp::HostOps { n: 3 });
        assert_eq!(sink.len(), 2);
        assert_eq!(sink.dropped(), 1);
        assert!(!sink.is_complete());
        assert!(!sink.is_empty());
    }

    #[test]
    fn program_keeps_only_instruction_events_in_order() {
        let mut sink = TraceSink::default();
        sink.record(
            Some(instr(SisaOpcode::CreateSet)),
            TraceOp::Create {
                id: SetId(0),
                repr: SetRepr::empty_sorted(),
            },
        );
        sink.record(None, TraceOp::HostOps { n: 5 });
        sink.record(
            Some(instr(SisaOpcode::IntersectAuto)),
            TraceOp::Binary {
                op: BinarySetOp::Intersection,
                a: SetId(0),
                b: SetId(0),
                dst: SetId(1),
            },
        );
        let program = sink.program();
        assert_eq!(program.len(), 2);
        assert_eq!(program.instructions()[0].opcode, SisaOpcode::CreateSet);
        assert_eq!(program.instructions()[1].opcode, SisaOpcode::IntersectAuto);
        assert_eq!(sink.events().len(), 3);
    }

    /// Every `TraceOp` variant, with representative payloads.
    fn one_of_every_op() -> Vec<TraceOp> {
        vec![
            TraceOp::SetUniverse { n: 64 },
            TraceOp::ResetStats,
            TraceOp::Create {
                id: SetId(0),
                repr: SetRepr::sorted_from([1u32, 2, 9]),
            },
            TraceOp::Create {
                id: SetId(1),
                repr: SetRepr::dense_from(64, [3u32, 63]),
            },
            TraceOp::Clone {
                src: SetId(0),
                dst: SetId(2),
            },
            TraceOp::Delete { id: SetId(2) },
            TraceOp::Cardinality { id: SetId(0) },
            TraceOp::Membership { id: SetId(0), v: 2 },
            TraceOp::Insert { id: SetId(1), v: 5 },
            TraceOp::Remove { id: SetId(1), v: 3 },
            TraceOp::Binary {
                op: BinarySetOp::Intersection,
                a: SetId(0),
                b: SetId(1),
                dst: SetId(3),
            },
            TraceOp::BinaryCount {
                op: BinarySetOp::Union,
                a: SetId(0),
                b: SetId(1),
            },
            TraceOp::BinaryAssign {
                op: BinarySetOp::Difference,
                a: SetId(0),
                b: SetId(1),
            },
            TraceOp::Members { id: SetId(0) },
            TraceOp::HostOps { n: 17 },
        ]
    }

    #[test]
    fn every_trace_op_round_trips_through_json() {
        use serde::{Deserialize as _, Serialize as _};
        for op in one_of_every_op() {
            let content = op.to_content();
            let back = TraceOp::from_content(&content).unwrap();
            assert_eq!(back, op);
        }
    }

    #[test]
    fn a_full_sink_round_trips_through_json() {
        let mut sink = TraceSink::bounded(4);
        sink.record(
            Some(instr(SisaOpcode::CreateSet)),
            TraceOp::Create {
                id: SetId(0),
                repr: SetRepr::sorted_from([4u32, 7]),
            },
        );
        sink.record(None, TraceOp::HostOps { n: 3 });
        sink.record(
            Some(instr(SisaOpcode::IntersectCountAuto)),
            TraceOp::BinaryCount {
                op: BinarySetOp::Intersection,
                a: SetId(0),
                b: SetId(0),
            },
        );
        // Overflow one event so capacity/dropped state is exercised too.
        sink.record(None, TraceOp::HostOps { n: 1 });
        sink.record(None, TraceOp::HostOps { n: 1 });
        let json = serde_json::to_string_pretty(&sink).unwrap();
        let back: TraceSink = serde_json::from_str(&json).unwrap();
        assert_eq!(back.events(), sink.events());
        assert_eq!(back.dropped(), sink.dropped());
        assert_eq!(back.is_complete(), sink.is_complete());
        // The instructions survive as decodable machine words.
        assert_eq!(back.program(), sink.program());
    }

    #[test]
    fn malformed_trace_ops_are_rejected() {
        use serde::{Content, Deserialize as _};
        assert!(TraceOp::from_content(&Content::U64(1)).is_err());
        let unknown = Content::Map(vec![("op".into(), Content::Str("warp".into()))]);
        assert!(TraceOp::from_content(&unknown).is_err());
        let missing_field = Content::Map(vec![("op".into(), Content::Str("delete".into()))]);
        assert!(TraceOp::from_content(&missing_field).is_err());
        assert!(BinarySetOp::from_content(&Content::Str("xor".into())).is_err());
    }
}
