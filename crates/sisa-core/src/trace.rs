//! Capturing a run as a stream of SISA instructions.
//!
//! A [`TraceSink`] attached to [`crate::SisaRuntime`] records every operation
//! the issue stage materialises: the genuine [`SisaInstruction`] (when the
//! operation is a SISA instruction) plus the semantic payload needed to
//! re-execute it ([`TraceOp`]). Host-side events that cost cycles but are not
//! SISA instructions — result extraction via `members`, scalar `host_ops`,
//! universe/statistics bookkeeping — are recorded too, so that
//! [`crate::Interpreter::replay`] can reproduce a captured run's
//! [`crate::ExecStats`] cycle-for-cycle on a fresh engine.
//!
//! The sink is **bounded**: once `capacity` events are recorded, further
//! events are counted but dropped, so tracing a long run cannot exhaust
//! memory. A truncated trace still replays correctly as a prefix of the run.

use crate::scu::BinarySetOp;
use crate::Vertex;
use sisa_isa::{SetId, SisaInstruction, SisaProgram};
use sisa_sets::SetRepr;

/// The semantic payload of one traced event: everything the interpreter needs
/// to re-execute the operation against another engine.
#[derive(Clone, Debug, PartialEq)]
pub enum TraceOp {
    /// The universe was grown to at least `n` vertices.
    SetUniverse {
        /// The requested universe size.
        n: usize,
    },
    /// Statistics were cleared (the load/measure boundary).
    ResetStats,
    /// A set was created with the given contents.
    Create {
        /// The ID the run assigned to the new set.
        id: SetId,
        /// The representation the set was created with.
        repr: SetRepr,
    },
    /// `dst = clone(src)`.
    Clone {
        /// The source set.
        src: SetId,
        /// The ID assigned to the copy.
        dst: SetId,
    },
    /// A set was deleted.
    Delete {
        /// The deleted set.
        id: SetId,
    },
    /// `|A|` was queried.
    Cardinality {
        /// The queried set.
        id: SetId,
    },
    /// `x ∈ A` was queried.
    Membership {
        /// The queried set.
        id: SetId,
        /// The probed vertex.
        v: Vertex,
    },
    /// `A ∪= {x}`.
    Insert {
        /// The updated set.
        id: SetId,
        /// The inserted vertex.
        v: Vertex,
    },
    /// `A \= {x}`.
    Remove {
        /// The updated set.
        id: SetId,
        /// The removed vertex.
        v: Vertex,
    },
    /// A materialising binary operation `dst = A op B`.
    Binary {
        /// The abstract operation.
        op: BinarySetOp,
        /// Left operand.
        a: SetId,
        /// Right operand.
        b: SetId,
        /// The ID assigned to the result set.
        dst: SetId,
    },
    /// A counting binary operation `|A op B|`.
    BinaryCount {
        /// The abstract operation.
        op: BinarySetOp,
        /// Left operand.
        a: SetId,
        /// Right operand.
        b: SetId,
    },
    /// An in-place binary operation `A op= B`.
    BinaryAssign {
        /// The abstract operation.
        op: BinarySetOp,
        /// The mutated left operand.
        a: SetId,
        /// Right operand.
        b: SetId,
    },
    /// The set's members were read out to the host.
    Members {
        /// The read set.
        id: SetId,
    },
    /// `n` host-side scalar operations were charged.
    HostOps {
        /// Number of scalar operations.
        n: u64,
    },
}

/// One recorded event: the materialised instruction (for SISA operations) and
/// the semantic payload.
#[derive(Clone, Debug, PartialEq)]
pub struct TraceEvent {
    /// The instruction the issue stage materialised, or `None` for host-side
    /// events (`members`, `host_ops`, bookkeeping).
    pub instruction: Option<SisaInstruction>,
    /// The semantic payload.
    pub op: TraceOp,
}

/// A bounded recorder of issued operations.
#[derive(Clone, Debug)]
pub struct TraceSink {
    events: Vec<TraceEvent>,
    capacity: usize,
    dropped: u64,
}

impl TraceSink {
    /// The default event capacity (events beyond it are counted but dropped).
    pub const DEFAULT_CAPACITY: usize = 1 << 20;

    /// Creates a sink that stops recording after `capacity` events.
    #[must_use]
    pub fn bounded(capacity: usize) -> Self {
        Self {
            events: Vec::new(),
            capacity,
            dropped: 0,
        }
    }

    /// Records one event (drops it if the sink is full).
    pub fn record(&mut self, instruction: Option<SisaInstruction>, op: TraceOp) {
        if self.events.len() >= self.capacity {
            self.dropped += 1;
            return;
        }
        self.events.push(TraceEvent { instruction, op });
    }

    /// The recorded events, in issue order.
    #[must_use]
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Number of recorded events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether nothing has been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Number of events dropped after the capacity was reached.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Whether the sink captured the complete run (nothing was dropped).
    #[must_use]
    pub fn is_complete(&self) -> bool {
        self.dropped == 0
    }

    /// The captured run as a genuine [`SisaProgram`]: the dynamic stream of
    /// materialised SISA instructions, host-side events elided.
    #[must_use]
    pub fn program(&self) -> SisaProgram {
        self.events.iter().filter_map(|e| e.instruction).collect()
    }
}

impl Default for TraceSink {
    fn default() -> Self {
        Self::bounded(Self::DEFAULT_CAPACITY)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sisa_isa::{Register, SisaOpcode};

    fn instr(op: SisaOpcode) -> SisaInstruction {
        SisaInstruction::new(op, Register::new(1), Register::new(2), Register::new(3))
    }

    #[test]
    fn records_until_capacity_then_counts_drops() {
        let mut sink = TraceSink::bounded(2);
        sink.record(None, TraceOp::HostOps { n: 1 });
        sink.record(None, TraceOp::HostOps { n: 2 });
        assert!(sink.is_complete());
        sink.record(None, TraceOp::HostOps { n: 3 });
        assert_eq!(sink.len(), 2);
        assert_eq!(sink.dropped(), 1);
        assert!(!sink.is_complete());
        assert!(!sink.is_empty());
    }

    #[test]
    fn program_keeps_only_instruction_events_in_order() {
        let mut sink = TraceSink::default();
        sink.record(
            Some(instr(SisaOpcode::CreateSet)),
            TraceOp::Create {
                id: SetId(0),
                repr: SetRepr::empty_sorted(),
            },
        );
        sink.record(None, TraceOp::HostOps { n: 5 });
        sink.record(
            Some(instr(SisaOpcode::IntersectAuto)),
            TraceOp::Binary {
                op: BinarySetOp::Intersection,
                a: SetId(0),
                b: SetId(0),
                dst: SetId(1),
            },
        );
        let program = sink.program();
        assert_eq!(program.len(), 2);
        assert_eq!(program.instructions()[0].opcode, SisaOpcode::CreateSet);
        assert_eq!(program.instructions()[1].opcode, SisaOpcode::IntersectAuto);
        assert_eq!(sink.events().len(), 3);
    }
}
