//! A software set-centric backend on the baseline CPU model.
//!
//! [`HostEngine`] implements [`SetEngine`] without any PIM hardware: every set
//! operation is functionally executed on the same [`SetRepr`] storage the SISA
//! runtime uses, but its cost is charged to a simulated out-of-order CPU
//! hardware thread ([`CpuThread`], §9.1) — sets live at synthetic addresses,
//! binary operations stream their operands through the cache hierarchy, probes
//! into dense bitvectors are dependent random accesses, and merge loops pay
//! the data-dependent-branch penalty software sorted-set intersection is known
//! for.
//!
//! This is what makes backend comparisons a one-line change: the figure
//! harnesses run the *same* generic set-centric algorithm with a
//! [`crate::SisaRuntime`] (PIM) and a `HostEngine` (CPU) and schedule the
//! resulting task records, instead of maintaining per-backend algorithm
//! drivers. Unlike the SISA runtime's task records, `HostEngine` records carry
//! real stall cycles and DRAM traffic, so [`crate::parallel::schedule_cpu`]
//! can model memory-bandwidth contention between threads (Figure 1).

use crate::engine::SetEngine;
use crate::parallel::TaskRecord;
use crate::stats::ExecStats;
use crate::Vertex;
use sisa_isa::{SetId, SisaOpcode};
use sisa_pim::{AddressSpace, CpuConfig, CpuThread, Cycles};
use sisa_sets::{dense_bitvector_bits, RepresentationKind, SetRepr};

/// Scalar operations charged per element advanced in a merge loop (compare,
/// increment, and the amortised data-dependent branch).
const MERGE_OPS_PER_ELEMENT: u64 = 6;

/// Scalar operations charged per binary-search level or bit probe.
const PROBE_OPS_PER_STEP: u64 = 3;

/// One set stored by the engine: its representation plus the synthetic
/// address region backing it in the cache model.
#[derive(Clone, Debug)]
struct HostSet {
    repr: SetRepr,
    base: u64,
    alloc_bytes: u64,
}

/// A [`SetEngine`] executing set operations in software on the baseline CPU
/// cost model.
#[derive(Clone, Debug)]
pub struct HostEngine {
    thread: CpuThread,
    space: AddressSpace,
    sets: Vec<Option<HostSet>>,
    free_ids: Vec<u32>,
    universe: usize,
    stats: ExecStats,
    cycles_at_reset: Cycles,
}

impl HostEngine {
    /// Creates an engine on one CPU hardware thread; `threads_sharing_l3`
    /// determines its slice of the shared L3 (as in [`CpuThread::new`]).
    #[must_use]
    pub fn new(cfg: &CpuConfig, threads_sharing_l3: usize) -> Self {
        Self {
            thread: CpuThread::new(cfg, threads_sharing_l3),
            space: AddressSpace::new(),
            sets: Vec::new(),
            free_ids: Vec::new(),
            universe: 0,
            stats: ExecStats::default(),
            cycles_at_reset: 0,
        }
    }

    /// Creates an engine with the default CPU configuration and a private L3.
    #[must_use]
    pub fn with_defaults() -> Self {
        Self::new(&CpuConfig::default(), 1)
    }

    /// The underlying CPU thread model (exposed for harnesses).
    #[must_use]
    pub fn thread(&self) -> &CpuThread {
        &self.thread
    }

    /// Bytes a representation occupies in memory.
    fn repr_bytes(repr: &SetRepr) -> u64 {
        match repr {
            SetRepr::Dense(d) => (dense_bitvector_bits(d.universe()) / 8) as u64,
            _ => repr.len() as u64 * 4,
        }
    }

    fn slot(&self, id: SetId) -> &HostSet {
        self.sets
            .get(id.0 as usize)
            .and_then(Option::as_ref)
            .unwrap_or_else(|| panic!("set {id} does not exist"))
    }

    fn allocate_id(&mut self) -> SetId {
        crate::slots::allocate(&mut self.sets, &mut self.free_ids)
    }

    /// Stores `repr` under a fresh ID, charging the write-out of its bytes.
    fn store_new(&mut self, repr: SetRepr) -> SetId {
        let bytes = Self::repr_bytes(&repr);
        let base = self.space.alloc(bytes.max(64));
        self.thread.stream(base, bytes);
        let id = self.allocate_id();
        self.sets[id.0 as usize] = Some(HostSet {
            repr,
            base,
            alloc_bytes: bytes.max(64),
        });
        // The write-out above advanced the thread's cycle counter; keep the
        // statistics current so per-op deltas attribute it to this operation.
        self.sync();
        id
    }

    /// Replaces the contents of `id`, reallocating if the set outgrew its
    /// region, and charges the write-out.
    fn store_replace(&mut self, id: SetId, repr: SetRepr) {
        let bytes = Self::repr_bytes(&repr);
        let slot = self.sets[id.0 as usize]
            .as_mut()
            .unwrap_or_else(|| panic!("set {id} does not exist"));
        if bytes > slot.alloc_bytes {
            slot.base = self.space.alloc(bytes);
            slot.alloc_bytes = bytes;
        }
        slot.repr = repr;
        let base = slot.base;
        self.thread.stream(base, bytes);
        self.sync();
    }

    /// Streams a whole set in from memory.
    fn stream_set(&mut self, id: SetId) {
        let (base, bytes) = {
            let s = self.slot(id);
            (s.base, Self::repr_bytes(&s.repr))
        };
        self.thread.stream(base, bytes);
    }

    /// Charges the software execution of one binary operation over `a` and
    /// `b` (operand reads + compute; result write-out is charged separately
    /// by `store_new`/`store_replace`).
    fn charge_binary_inputs(&mut self, a: SetId, b: SetId) {
        let (ka, kb) = (self.slot(a).repr.kind(), self.slot(b).repr.kind());
        let dense = RepresentationKind::DenseBitvector;
        match (ka, kb) {
            // Bitmap AND/OR/ANDNOT: stream both bitmaps, one scalar op per
            // machine word of the wider operand.
            (a_kind, b_kind) if a_kind == dense && b_kind == dense => {
                let bits = Self::dense_universe(&self.slot(a).repr)
                    .max(Self::dense_universe(&self.slot(b).repr));
                self.stream_set(a);
                self.stream_set(b);
                let words = bits.div_ceil(64) as u64;
                self.thread.scalar_ops(words.max(1));
            }
            // Sparse against dense: stream the sparse side, one dependent bit
            // probe into the bitmap per element.
            (a_kind, _) if a_kind == dense => self.charge_probe(b, a),
            (_, b_kind) if b_kind == dense => self.charge_probe(a, b),
            // Sparse merge: stream both arrays, pay the merge-loop scalar work.
            _ => {
                let (la, lb) = (self.slot(a).repr.len(), self.slot(b).repr.len());
                self.stream_set(a);
                self.stream_set(b);
                self.thread
                    .scalar_ops(MERGE_OPS_PER_ELEMENT * (la + lb) as u64);
            }
        }
    }

    /// The universe (in bits) of a dense representation.
    fn dense_universe(repr: &SetRepr) -> usize {
        match repr {
            SetRepr::Dense(d) => d.universe(),
            _ => 0,
        }
    }

    /// Streams the sparse set and probes the dense bitmap once per element
    /// (probe order does not matter for the cost model, so the members are
    /// walked in storage order without sorting).
    fn charge_probe(&mut self, sparse: SetId, dense: SetId) {
        self.stream_set(sparse);
        let dense_base = self.slot(dense).base;
        let probes: Vec<u64> = self
            .slot(sparse)
            .repr
            .iter()
            .map(|v| dense_base + u64::from(v) / 8)
            .collect();
        for addr in probes {
            self.thread.random_access(addr);
            self.thread.scalar_ops(PROBE_OPS_PER_STEP);
        }
    }

    /// Records the dynamic operation count and syncs the cycle statistics.
    fn count(&mut self, opcode: SisaOpcode) {
        self.stats.record_instruction(opcode);
        self.sync();
    }

    /// Mirrors the CPU thread's cycle counter into the statistics.
    fn sync(&mut self) {
        self.stats.host_cycles = self.thread.cycles() - self.cycles_at_reset;
    }

    fn binary_result(&mut self, a: SetId, b: SetId, opcode: SisaOpcode) -> SetRepr {
        self.charge_binary_inputs(a, b);
        let (ra, rb) = (&self.slot(a).repr, &self.slot(b).repr);
        let result = match opcode {
            SisaOpcode::IntersectAuto => ra.intersect(rb),
            SisaOpcode::UnionAuto => ra.union(rb),
            SisaOpcode::DifferenceAuto => ra.difference(rb),
            _ => unreachable!("not a materialising opcode"),
        };
        self.count(opcode);
        result
    }

    fn binary_count_result(&mut self, a: SetId, b: SetId, opcode: SisaOpcode) -> usize {
        self.charge_binary_inputs(a, b);
        let (ra, rb) = (&self.slot(a).repr, &self.slot(b).repr);
        let count = match opcode {
            SisaOpcode::IntersectCountAuto => ra.intersect_count(rb),
            SisaOpcode::UnionCountAuto => ra.union_count(rb),
            SisaOpcode::DifferenceCountAuto => ra.difference_count(rb),
            _ => unreachable!("not a counting opcode"),
        };
        self.count(opcode);
        count
    }
}

impl Default for HostEngine {
    fn default() -> Self {
        Self::with_defaults()
    }
}

impl SetEngine for HostEngine {
    fn backend_name(&self) -> &'static str {
        "cpu"
    }

    fn set_universe(&mut self, n: usize) {
        self.universe = self.universe.max(n);
    }

    fn universe(&self) -> usize {
        self.universe
    }

    fn stats(&self) -> &ExecStats {
        &self.stats
    }

    fn reset_stats(&mut self) {
        self.stats = ExecStats::default();
        self.cycles_at_reset = self.thread.cycles();
    }

    fn live_sets(&self) -> usize {
        self.sets.iter().filter(|s| s.is_some()).count()
    }

    fn create(&mut self, repr: SetRepr) -> SetId {
        let id = self.store_new(repr);
        self.count(SisaOpcode::CreateSet);
        id
    }

    fn clone_set(&mut self, id: SetId) -> SetId {
        self.stream_set(id);
        let repr = self.slot(id).repr.clone();
        let new_id = self.store_new(repr);
        self.count(SisaOpcode::CloneSet);
        new_id
    }

    fn delete(&mut self, id: SetId) {
        // Validate before counting, matching the SISA runtime's fault
        // behaviour on dangling IDs.
        let _ = self.slot(id);
        self.thread.scalar_ops(1);
        crate::slots::release(&mut self.sets, &mut self.free_ids, id);
        self.count(SisaOpcode::DeleteSet);
    }

    fn cardinality(&mut self, id: SetId) -> usize {
        // Software sets keep their length in a header word.
        let base = self.slot(id).base;
        self.thread.access(base);
        self.thread.scalar_ops(1);
        let len = self.slot(id).repr.len();
        self.count(SisaOpcode::Cardinality);
        len
    }

    fn contains(&mut self, id: SetId, v: Vertex) -> bool {
        let (base, kind, len) = {
            let s = self.slot(id);
            (s.base, s.repr.kind(), s.repr.len())
        };
        match kind {
            RepresentationKind::DenseBitvector => {
                self.thread.random_access(base + u64::from(v) / 8);
                self.thread.scalar_ops(PROBE_OPS_PER_STEP);
            }
            RepresentationKind::SortedArray => {
                // Binary search: one dependent access per level.
                let levels = (usize::BITS - len.leading_zeros()).max(1) as u64;
                for level in 0..levels {
                    self.thread.random_access(base + level * 64);
                    self.thread.scalar_ops(PROBE_OPS_PER_STEP);
                }
            }
            RepresentationKind::UnsortedArray => {
                self.stream_set(id);
                self.thread.scalar_ops(len as u64);
            }
        }
        let result = self.slot(id).repr.contains(v);
        self.count(SisaOpcode::Membership);
        result
    }

    fn members(&mut self, id: SetId) -> Vec<Vertex> {
        self.stream_set(id);
        let members = self.slot(id).repr.to_sorted_vec();
        self.thread.scalar_ops(members.len() as u64);
        self.sync();
        members
    }

    fn repr(&self, id: SetId) -> &SetRepr {
        &self.slot(id).repr
    }

    fn insert(&mut self, id: SetId, v: Vertex) -> bool {
        let (base, kind, len) = {
            let s = self.slot(id);
            (s.base, s.repr.kind(), s.repr.len())
        };
        match kind {
            RepresentationKind::DenseBitvector => {
                self.thread.random_access(base + u64::from(v) / 8);
            }
            // Sorted insertion shifts half the array on average.
            RepresentationKind::SortedArray => self.thread.stream(base, (len as u64 * 4) / 2),
            RepresentationKind::UnsortedArray => self.thread.access(base + len as u64 * 4),
        }
        self.thread.scalar_ops(2);
        let slot = self.sets[id.0 as usize].as_mut().expect("validated above");
        let changed = slot.repr.insert(v);
        self.count(SisaOpcode::InsertElement);
        changed
    }

    fn remove(&mut self, id: SetId, v: Vertex) -> bool {
        let (base, kind, len) = {
            let s = self.slot(id);
            (s.base, s.repr.kind(), s.repr.len())
        };
        match kind {
            RepresentationKind::DenseBitvector => {
                self.thread.random_access(base + u64::from(v) / 8);
            }
            RepresentationKind::SortedArray => self.thread.stream(base, (len as u64 * 4) / 2),
            RepresentationKind::UnsortedArray => self.stream_set(id),
        }
        self.thread.scalar_ops(2);
        let slot = self.sets[id.0 as usize].as_mut().expect("validated above");
        let changed = slot.repr.remove(v);
        self.count(SisaOpcode::RemoveElement);
        changed
    }

    fn intersect(&mut self, a: SetId, b: SetId) -> SetId {
        let result = self.binary_result(a, b, SisaOpcode::IntersectAuto);
        self.store_new(result)
    }

    fn union(&mut self, a: SetId, b: SetId) -> SetId {
        let result = self.binary_result(a, b, SisaOpcode::UnionAuto);
        self.store_new(result)
    }

    fn difference(&mut self, a: SetId, b: SetId) -> SetId {
        let result = self.binary_result(a, b, SisaOpcode::DifferenceAuto);
        self.store_new(result)
    }

    fn intersect_count(&mut self, a: SetId, b: SetId) -> usize {
        self.binary_count_result(a, b, SisaOpcode::IntersectCountAuto)
    }

    fn union_count(&mut self, a: SetId, b: SetId) -> usize {
        self.binary_count_result(a, b, SisaOpcode::UnionCountAuto)
    }

    fn difference_count(&mut self, a: SetId, b: SetId) -> usize {
        self.binary_count_result(a, b, SisaOpcode::DifferenceCountAuto)
    }

    fn intersect_assign(&mut self, a: SetId, b: SetId) {
        let result = self.binary_result(a, b, SisaOpcode::IntersectAuto);
        self.store_replace(a, result);
    }

    fn union_assign(&mut self, a: SetId, b: SetId) {
        let result = self.binary_result(a, b, SisaOpcode::UnionAuto);
        self.store_replace(a, result);
    }

    fn difference_assign(&mut self, a: SetId, b: SetId) {
        let result = self.binary_result(a, b, SisaOpcode::DifferenceAuto);
        self.store_replace(a, result);
    }

    fn host_ops(&mut self, n: u64) {
        self.thread.scalar_ops(n);
        self.sync();
    }

    fn task_begin(&mut self) {
        self.thread.task_begin();
    }

    fn task_end(&mut self) -> TaskRecord {
        let record = TaskRecord::from(self.thread.task_end());
        self.sync();
        record
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runtime::SisaRuntime;

    fn engine() -> HostEngine {
        let mut e = HostEngine::with_defaults();
        e.set_universe(256);
        e
    }

    #[test]
    fn set_algebra_matches_the_sisa_runtime() {
        let mut host = engine();
        let mut sisa = SisaRuntime::with_defaults();
        sisa.set_universe(256);
        let ha = host.create_sorted([1, 2, 3, 10, 20]);
        let hb = host.create_dense([2, 10, 30, 40]);
        let sa = sisa.create_sorted([1, 2, 3, 10, 20]);
        let sb = sisa.create_dense([2, 10, 30, 40]);
        let hi = host.intersect(ha, hb);
        let si = sisa.intersect(sa, sb);
        assert_eq!(host.members(hi), sisa.members(si));
        assert_eq!(host.union_count(ha, hb), sisa.union_count(sa, sb));
        assert_eq!(host.difference_count(ha, hb), sisa.difference_count(sa, sb));
        host.union_assign(hi, hb);
        sisa.union_assign(si, sb);
        assert_eq!(host.members(hi), sisa.members(si));
        assert_eq!(host.contains(hi, 30), sisa.contains(si, 30));
        assert_eq!(host.cardinality(hi), sisa.cardinality(si));
    }

    #[test]
    fn operations_charge_cpu_cycles_with_memory_stalls() {
        // Working set (two 8 MiB sorted arrays) exceeds the modelled L3, so
        // the intersection's streams must reach DRAM even though creation
        // warmed the caches.
        let mut e = engine();
        let a = e.create_sorted((0..2_000_000).map(|i| i * 2).collect::<Vec<_>>());
        let b = e.create_sorted((0..2_000_000).map(|i| i * 3).collect::<Vec<_>>());
        e.task_begin();
        let _ = e.intersect_count(a, b);
        let record = e.task_end();
        assert!(record.cycles > 0);
        assert!(record.stall_cycles > 0, "large streams must expose stalls");
        assert!(record.dram_bytes > 0, "large streams must touch DRAM");
        assert!(e.stats().host_cycles > 0);
        assert_eq!(e.backend_name(), "cpu");
    }

    #[test]
    fn dense_ops_price_from_the_operand_universe() {
        // The engine-level universe is never set here (stays 0): the cost of
        // a bitmap op must still scale with the operands' own universes.
        let mut big = HostEngine::with_defaults();
        let a = big.create(SetRepr::dense_from(1 << 20, [1u32, 2, 3]));
        let b = big.create(SetRepr::dense_from(1 << 20, [2u32, 3, 4]));
        big.task_begin();
        let _ = big.intersect_count(a, b);
        let big_cost = big.task_end().cycles;

        let mut small = HostEngine::with_defaults();
        let c = small.create(SetRepr::dense_from(64, [1u32, 2]));
        let d = small.create(SetRepr::dense_from(64, [2u32]));
        small.task_begin();
        let _ = small.intersect_count(c, d);
        let small_cost = small.task_end().cycles;

        assert!(
            big_cost > small_cost * 10,
            "1M-bit bitmaps ({big_cost} cycles) must dwarf 64-bit ones ({small_cost})"
        );
    }

    #[test]
    fn stats_stay_in_sync_after_every_operation() {
        // Materialising and in-place binary ops charge a result write-out as
        // their last step; the statistics must include it immediately, not
        // after the next unrelated operation.
        let mut e = engine();
        let a = e.create_sorted([1, 2, 3, 4, 5]);
        let b = e.create_dense([2, 4, 6, 8]);
        let _ = e.intersect(a, b);
        assert_eq!(e.stats().host_cycles, e.thread().cycles());
        e.union_assign(a, b);
        assert_eq!(e.stats().host_cycles, e.thread().cycles());
        let _ = e.difference(b, a);
        assert_eq!(e.stats().host_cycles, e.thread().cycles());
    }

    #[test]
    fn reset_stats_rebases_the_cycle_counter() {
        let mut e = engine();
        let a = e.create_sorted([1, 2, 3]);
        assert!(e.stats().host_cycles > 0);
        e.reset_stats();
        assert_eq!(e.stats().host_cycles, 0);
        let _ = e.cardinality(a);
        assert!(e.stats().host_cycles > 0);
    }

    #[test]
    fn lifecycle_and_id_reuse() {
        let mut e = engine();
        let a = e.create_sorted([1, 2]);
        assert_eq!(e.live_sets(), 1);
        e.delete(a);
        assert_eq!(e.live_sets(), 0);
        let b = e.create_sorted([9]);
        assert_eq!(a, b, "freed IDs are reused");
    }

    #[test]
    #[should_panic(expected = "does not exist")]
    fn dangling_ids_fault() {
        let mut e = engine();
        let a = e.create_sorted([1]);
        e.delete(a);
        let _ = e.members(a);
    }
}
