//! A mutable set-graph for the streaming/dynamic-graph path.
//!
//! [`crate::SetGraph`] is a one-shot load of an immutable CSR: perfect for
//! static mining, useless for edge streams. [`DynamicSetGraph`] keeps one
//! **sparse-array** SISA set per vertex neighbourhood and supports in-place
//! edge insertion and removal through the engine's priced element updates
//! ([`SetEngine::insert`] / [`SetEngine::remove`]) — exactly the operation
//! class the paper motivates for dynamic graphs: an edge flip is two element
//! updates on the endpoint adjacency sets, not a reload.
//!
//! A host-side sorted adjacency mirror backs loop control (`neighbors`,
//! `has_edge`) without engine round-trips, mirroring how [`crate::SetGraph`]
//! exposes its CSR. The vertex capacity is fixed at load time; callers that
//! outgrow it rebuild (the registry's replace path hands them the successor
//! graph to rebuild from).

use crate::engine::SetEngine;
use crate::{SetId, Vertex};
use sisa_graph::CsrGraph;

/// A graph whose neighbourhoods are mutable SISA sparse-array sets.
#[derive(Clone, Debug)]
pub struct DynamicSetGraph {
    neighborhoods: Vec<SetId>,
    /// Host-side sorted adjacency mirror (loop control only; the priced
    /// state of record lives in the engine's sets).
    adjacency: Vec<Vec<Vertex>>,
    edges: usize,
}

impl DynamicSetGraph {
    /// Creates an edgeless dynamic graph of `capacity` vertices, registering
    /// one empty sparse set per vertex.
    #[must_use]
    pub fn empty<E: SetEngine>(rt: &mut E, capacity: usize) -> Self {
        rt.set_universe(capacity);
        let neighborhoods = (0..capacity).map(|_| rt.create_empty_sorted()).collect();
        DynamicSetGraph {
            neighborhoods,
            adjacency: vec![Vec::new(); capacity],
            edges: 0,
        }
    }

    /// Loads `g` into mutable sets, with room for `capacity` vertices
    /// (`capacity` is clamped up to `g.num_vertices()`).
    #[must_use]
    pub fn load<E: SetEngine>(rt: &mut E, g: &CsrGraph, capacity: usize) -> Self {
        let capacity = capacity.max(g.num_vertices());
        rt.set_universe(capacity);
        let mut adjacency = vec![Vec::new(); capacity];
        let neighborhoods = (0..capacity as Vertex)
            .map(|v| {
                if (v as usize) < g.num_vertices() {
                    adjacency[v as usize] = g.neighbors(v).to_vec();
                    rt.create_sorted(g.neighbors(v).iter().copied())
                } else {
                    rt.create_empty_sorted()
                }
            })
            .collect();
        let edges = g.num_edges();
        DynamicSetGraph {
            neighborhoods,
            adjacency,
            edges,
        }
    }

    /// Vertex capacity (fixed at construction).
    #[must_use]
    pub fn num_vertices(&self) -> usize {
        self.neighborhoods.len()
    }

    /// Current undirected edge count.
    #[must_use]
    pub fn num_edges(&self) -> usize {
        self.edges
    }

    /// The SISA set holding `N(v)`.
    #[must_use]
    pub fn neighborhood(&self, v: Vertex) -> SetId {
        self.neighborhoods[v as usize]
    }

    /// The current neighbourhood of `v` as a sorted slice (host-side mirror
    /// for loop control).
    #[must_use]
    pub fn neighbors(&self, v: Vertex) -> &[Vertex] {
        &self.adjacency[v as usize]
    }

    /// Whether the undirected edge `{u, v}` currently exists.
    #[must_use]
    pub fn has_edge(&self, u: Vertex, v: Vertex) -> bool {
        self.adjacency[u as usize].binary_search(&v).is_ok()
    }

    /// Whether both endpoints fall inside the vertex capacity.
    #[must_use]
    pub fn in_range(&self, u: Vertex, v: Vertex) -> bool {
        (u as usize) < self.num_vertices() && (v as usize) < self.num_vertices()
    }

    /// Inserts the undirected edge `{u, v}`: one priced element insert per
    /// endpoint set, plus host work for the mirror. Returns whether the
    /// graph changed (self-loops and present edges are no-ops).
    ///
    /// # Panics
    ///
    /// Panics when an endpoint is outside the vertex capacity (callers gate
    /// with [`DynamicSetGraph::in_range`] and rebuild on overflow).
    pub fn insert_edge<E: SetEngine>(&mut self, rt: &mut E, u: Vertex, v: Vertex) -> bool {
        assert!(self.in_range(u, v), "edge ({u}, {v}) outside capacity");
        if u == v || self.has_edge(u, v) {
            return false;
        }
        rt.insert(self.neighborhoods[u as usize], v);
        rt.insert(self.neighborhoods[v as usize], u);
        rt.host_ops(2);
        let pos = self.adjacency[u as usize].binary_search(&v).unwrap_err();
        self.adjacency[u as usize].insert(pos, v);
        let pos = self.adjacency[v as usize].binary_search(&u).unwrap_err();
        self.adjacency[v as usize].insert(pos, u);
        self.edges += 1;
        true
    }

    /// Removes the undirected edge `{u, v}`: one priced element removal per
    /// endpoint set, plus host work for the mirror. Returns whether the
    /// graph changed (absent edges are no-ops).
    ///
    /// # Panics
    ///
    /// Panics when an endpoint is outside the vertex capacity.
    pub fn remove_edge<E: SetEngine>(&mut self, rt: &mut E, u: Vertex, v: Vertex) -> bool {
        assert!(self.in_range(u, v), "edge ({u}, {v}) outside capacity");
        if u == v || !self.has_edge(u, v) {
            return false;
        }
        rt.remove(self.neighborhoods[u as usize], v);
        rt.remove(self.neighborhoods[v as usize], u);
        rt.host_ops(2);
        let pos = self.adjacency[u as usize]
            .binary_search(&v)
            .expect("mirror desync");
        self.adjacency[u as usize].remove(pos);
        let pos = self.adjacency[v as usize]
            .binary_search(&u)
            .expect("mirror desync");
        self.adjacency[v as usize].remove(pos);
        self.edges -= 1;
        true
    }

    /// Deletes every neighbourhood set from the engine (priced). The graph
    /// is unusable afterwards; callers drop it.
    pub fn unload<E: SetEngine>(self, rt: &mut E) {
        for id in self.neighborhoods {
            rt.delete(id);
        }
    }

    /// The current edge set as a plain CSR snapshot (host-side; used by
    /// tests to compare against from-scratch reference runs).
    #[must_use]
    pub fn to_csr(&self) -> CsrGraph {
        CsrGraph::from_adjacency(self.adjacency.clone(), false, None)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SisaConfig;
    use crate::runtime::SisaRuntime;
    use sisa_graph::generators;

    #[test]
    fn edge_updates_keep_engine_sets_and_mirror_in_sync() {
        let mut rt = SisaRuntime::new(SisaConfig::default());
        let g = generators::erdos_renyi(24, 0.15, 5);
        let mut dg = DynamicSetGraph::load(&mut rt, &g, 24);
        assert_eq!(dg.num_edges(), g.num_edges());

        // Insert a fresh edge and delete an existing one.
        let (u, v) = (0, 23);
        let existed = dg.has_edge(u, v);
        if !existed {
            assert!(dg.insert_edge(&mut rt, u, v));
        }
        assert!(!dg.insert_edge(&mut rt, u, v), "double insert is a no-op");
        assert!(dg.has_edge(u, v) && dg.has_edge(v, u));
        assert!(dg.remove_edge(&mut rt, u, v));
        assert!(!dg.remove_edge(&mut rt, u, v), "double remove is a no-op");
        assert!(!dg.insert_edge(&mut rt, 3, 3), "self-loops are no-ops");

        // Engine set and host mirror agree on every vertex.
        for w in 0..24u32 {
            assert_eq!(rt.members(dg.neighborhood(w)), dg.neighbors(w).to_vec());
        }
        let snapshot = dg.to_csr();
        assert_eq!(snapshot.num_edges(), dg.num_edges());
    }

    #[test]
    fn capacity_reserves_room_for_isolated_vertices() {
        let mut rt = SisaRuntime::new(SisaConfig::default());
        let g = generators::path(4);
        let mut dg = DynamicSetGraph::load(&mut rt, &g, 8);
        assert_eq!(dg.num_vertices(), 8);
        assert!(dg.in_range(3, 7));
        assert!(!dg.in_range(3, 8));
        assert!(dg.insert_edge(&mut rt, 3, 7));
        assert_eq!(dg.neighbors(7), &[3]);
        let live_before = rt.live_sets();
        dg.unload(&mut rt);
        assert_eq!(rt.live_sets(), live_before - 8, "unload frees every set");
    }

    #[test]
    fn empty_graphs_grow_edge_by_edge() {
        let mut rt = SisaRuntime::new(SisaConfig::default());
        let mut dg = DynamicSetGraph::empty(&mut rt, 5);
        assert_eq!(dg.num_edges(), 0);
        for (u, v) in [(0, 1), (1, 2), (0, 2)] {
            assert!(dg.insert_edge(&mut rt, u, v));
        }
        assert_eq!(dg.num_edges(), 3);
        assert_eq!(rt.members(dg.neighborhood(1)), vec![0, 2]);
    }
}
