//! The SISA Controller Unit (SCU).
//!
//! The SCU "receives SISA instructions from the CPU, and it appropriately
//! schedules their execution on SISA-PNM and SISA-PUM" (§3). Its decisions
//! (§8.2) are:
//!
//! 1. **PUM vs. PNM** — two dense bitvectors are always processed in situ;
//!    everything else runs on the logic-layer cores.
//! 2. **Merge vs. galloping** — for two sparse arrays the SCU consults the
//!    §8.3 performance models (or a fixed size-ratio threshold / forced
//!    variant, for the sensitivity studies) and picks the cheaper algorithm.
//!
//! Each dispatch also charges the SCU's own overheads: a fixed decode delay
//! plus set-metadata lookups that hit in the SMB or fall through to a memory
//! access (§8.4).

use crate::config::VariantSelection;
use crate::metadata::{SetMetadata, SmbCache};
use crate::SetId;
use sisa_pim::pum::BulkOp;
use sisa_pim::{Cycles, EnergyModel, PimPlatform, PnmModel, PumModel};
use sisa_sets::RepresentationKind;

/// The abstract binary set operation being dispatched.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BinarySetOp {
    /// `A ∩ B`.
    Intersection,
    /// `A ∪ B`.
    Union,
    /// `A \ B`.
    Difference,
}

impl BinarySetOp {
    /// The in-situ bulk bitwise primitive implementing this operation on two
    /// dense bitvectors (§8.1).
    #[must_use]
    pub fn bulk_op(self) -> BulkOp {
        match self {
            Self::Intersection => BulkOp::And,
            Self::Union => BulkOp::Or,
            Self::Difference => BulkOp::AndNot,
        }
    }
}

/// Which memory accelerator executed an operation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ExecutionTarget {
    /// In-situ bulk bitwise DRAM processing.
    Pum,
    /// Near-memory logic-layer cores.
    Pnm,
}

/// The concrete execution variant the SCU selected.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ExecutionChoice {
    /// Bulk bitwise operation over dense bitvectors.
    PumBulk(BulkOp),
    /// Merge-based streaming over two sparse arrays.
    PnmMerge,
    /// Galloping (binary-search) processing of two sparse arrays.
    PnmGalloping,
    /// Per-element probing of a dense bitvector by a sparse array.
    PnmProbe,
    /// A direct single access (element update, membership, metadata).
    PnmDirect,
}

impl ExecutionChoice {
    /// The accelerator that executes this choice.
    #[must_use]
    pub fn target(self) -> ExecutionTarget {
        match self {
            Self::PumBulk(_) => ExecutionTarget::Pum,
            _ => ExecutionTarget::Pnm,
        }
    }
}

/// The outcome of dispatching one SISA instruction.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DispatchOutcome {
    /// The execution variant chosen.
    pub choice: ExecutionChoice,
    /// Cycles spent in the SCU itself (decode + metadata lookups).
    pub scu_cycles: Cycles,
    /// Cycles spent executing the operation on the chosen accelerator.
    pub exec_cycles: Cycles,
    /// Estimated energy in nanojoules.
    pub energy_nj: f64,
    /// SMB hits incurred by this dispatch.
    pub smb_hits: u64,
    /// SMB misses incurred by this dispatch.
    pub smb_misses: u64,
}

impl DispatchOutcome {
    /// End-to-end latency of this dispatch: SCU front-end plus accelerator
    /// execution. This is the duration the instruction occupies a virtual
    /// vault lane in the scoreboarded issue queue; the same cycles are also
    /// absorbed into the per-unit work counters, so at issue depth 1 the
    /// queue's makespan equals the serial total exactly.
    #[must_use]
    pub fn latency(&self) -> Cycles {
        self.scu_cycles + self.exec_cycles
    }
}

/// The SISA Controller Unit.
#[derive(Clone, Debug)]
pub struct Scu {
    platform: PimPlatform,
    pnm: PnmModel,
    pum: PumModel,
    smb: SmbCache,
    selection: VariantSelection,
    energy: EnergyModel,
}

impl Scu {
    /// Creates an SCU for the given platform and variant-selection policy.
    #[must_use]
    pub fn new(platform: PimPlatform, selection: VariantSelection) -> Self {
        Self {
            platform,
            pnm: PnmModel::new(platform.pnm),
            pum: PumModel::new(platform.pum),
            smb: SmbCache::new(platform.smb_entries),
            selection,
            energy: EnergyModel::default(),
        }
    }

    /// The platform this SCU drives.
    #[must_use]
    pub fn platform(&self) -> &PimPlatform {
        &self.platform
    }

    /// The near-memory cost model (exposed for the harness's model plots).
    #[must_use]
    pub fn pnm_model(&self) -> &PnmModel {
        &self.pnm
    }

    /// The in-situ cost model.
    #[must_use]
    pub fn pum_model(&self) -> &PumModel {
        &self.pum
    }

    /// Charges SCU decode plus metadata lookups for the given operand set IDs.
    fn frontend(&mut self, ids: &[SetId]) -> (Cycles, u64, u64) {
        let mut cycles = self.platform.scu_delay;
        let mut hits = 0;
        let mut misses = 0;
        for &id in ids {
            if !self.platform.smb_enabled {
                // Without the SMB every lookup is an SM memory access.
                cycles += self.platform.sm_miss_latency;
                misses += 1;
                continue;
            }
            if self.smb.lookup(id) {
                cycles += self.platform.smb_hit_latency;
                hits += 1;
            } else {
                cycles += self.platform.sm_miss_latency;
                misses += 1;
            }
        }
        (cycles, hits, misses)
    }

    /// Removes a deleted set from the SMB.
    pub fn invalidate(&mut self, id: SetId) {
        self.smb.invalidate(id);
    }

    /// Marks a freshly created set's metadata as resident in the SMB (the SCU
    /// wrote the entry itself, so the first lookup should not be a miss).
    pub fn prime(&mut self, id: SetId) {
        if self.platform.smb_enabled {
            self.smb.prime(id);
        }
    }

    /// Decides merge vs. galloping for two sparse arrays of the given sizes.
    #[must_use]
    pub fn choose_sparse_algorithm(&self, a_len: usize, b_len: usize) -> ExecutionChoice {
        match self.selection {
            VariantSelection::AlwaysMerge => ExecutionChoice::PnmMerge,
            VariantSelection::AlwaysGalloping => ExecutionChoice::PnmGalloping,
            VariantSelection::SizeRatio(threshold) => {
                let small = a_len.min(b_len).max(1) as f64;
                let large = a_len.max(b_len) as f64;
                if large / small >= threshold {
                    ExecutionChoice::PnmGalloping
                } else {
                    ExecutionChoice::PnmMerge
                }
            }
            VariantSelection::PerformanceModel => {
                let merge = self.pnm.streaming_cost(a_len, b_len);
                let gallop = self.pnm.random_access_cost(a_len, b_len);
                if gallop < merge {
                    ExecutionChoice::PnmGalloping
                } else {
                    ExecutionChoice::PnmMerge
                }
            }
        }
    }

    /// Dispatches a binary set operation (`∩`, `∪`, `\` or their counting
    /// twins) on operands described by their metadata.
    pub fn dispatch_binary(
        &mut self,
        op: BinarySetOp,
        count_only: bool,
        a_id: SetId,
        a: &SetMetadata,
        b_id: SetId,
        b: &SetMetadata,
    ) -> DispatchOutcome {
        let (scu_cycles, smb_hits, smb_misses) = self.frontend(&[a_id, b_id]);
        let universe_bits = a.universe.max(b.universe);
        let (choice, exec_cycles, energy_nj) = match (a.kind, b.kind) {
            (RepresentationKind::DenseBitvector, RepresentationKind::DenseBitvector) => {
                let bulk = op.bulk_op();
                let cycles = if count_only {
                    self.pum.bulk_op_count_cost(bulk, universe_bits)
                } else {
                    self.pum.bulk_op_cost(bulk, universe_bits)
                };
                let energy = self
                    .energy
                    .pum_energy(self.pum.row_activations(bulk, universe_bits));
                (ExecutionChoice::PumBulk(bulk), cycles, energy)
            }
            (RepresentationKind::DenseBitvector, _) | (_, RepresentationKind::DenseBitvector) => {
                let sparse_len = if a.kind == RepresentationKind::DenseBitvector {
                    b.cardinality
                } else {
                    a.cardinality
                };
                let mut cycles = self.pnm.probe_cost(sparse_len, universe_bits);
                let mut energy = self
                    .energy
                    .pnm_energy((sparse_len * 4) as u64, sparse_len as u64);
                // Union with a dense operand (and difference producing a dense
                // result) additionally row-clones the dense operand into the
                // result rows, an in-situ copy.
                if op != BinarySetOp::Intersection && !count_only {
                    cycles += self.pum.bulk_op_cost(BulkOp::Or, universe_bits);
                    energy += self
                        .energy
                        .pum_energy(self.pum.row_activations(BulkOp::Or, universe_bits));
                }
                (ExecutionChoice::PnmProbe, cycles, energy)
            }
            _ => {
                let choice = self.choose_sparse_algorithm(a.cardinality, b.cardinality);
                let cycles = match choice {
                    ExecutionChoice::PnmGalloping => {
                        self.pnm.random_access_cost(a.cardinality, b.cardinality)
                    }
                    _ => self.pnm.streaming_cost(a.cardinality, b.cardinality),
                };
                let bytes = ((a.cardinality + b.cardinality) * 4) as u64;
                let energy = self
                    .energy
                    .pnm_energy(bytes, (a.cardinality + b.cardinality) as u64);
                (choice, cycles, energy)
            }
        };
        DispatchOutcome {
            choice,
            scu_cycles,
            exec_cycles,
            energy_nj,
            smb_hits,
            smb_misses,
        }
    }

    /// Dispatches a single-element operation (`A ∪ {x}`, `A \ {x}`, `x ∈ A`).
    pub fn dispatch_element(&mut self, id: SetId, meta: &SetMetadata) -> DispatchOutcome {
        let (scu_cycles, smb_hits, smb_misses) = self.frontend(&[id]);
        let exec_cycles = match meta.kind {
            // Setting / clearing / probing one bit: one DRAM access (§8.1).
            RepresentationKind::DenseBitvector => self.pum.bit_update_cost(),
            // Sparse arrays: a near-memory access plus (for sorted arrays) the
            // element shifting the paper notes costs O(|A|); we charge the
            // streaming cost of half the array.
            RepresentationKind::SortedArray => {
                self.pnm.element_update_cost() + self.pnm.streaming_cost(meta.cardinality / 2, 0)
            }
            RepresentationKind::UnsortedArray => self.pnm.element_update_cost(),
        };
        DispatchOutcome {
            choice: ExecutionChoice::PnmDirect,
            scu_cycles,
            exec_cycles,
            energy_nj: self.energy.pnm_energy(64, 4),
            smb_hits,
            smb_misses,
        }
    }

    /// Dispatches a metadata-only operation (cardinality, create, delete,
    /// clone bookkeeping).
    pub fn dispatch_metadata(&mut self, ids: &[SetId]) -> DispatchOutcome {
        let (scu_cycles, smb_hits, smb_misses) = self.frontend(ids);
        DispatchOutcome {
            choice: ExecutionChoice::PnmDirect,
            scu_cycles,
            exec_cycles: 0,
            energy_nj: self.energy.pnm_energy(16, 1),
            smb_hits,
            smb_misses,
        }
    }

    /// SMB hit ratio observed so far.
    #[must_use]
    pub fn smb_hit_ratio(&self) -> f64 {
        self.smb.hit_ratio()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sisa_isa::SetId;

    fn meta(kind: RepresentationKind, cardinality: usize, universe: usize) -> SetMetadata {
        SetMetadata {
            kind,
            cardinality,
            universe,
            address: 0,
        }
    }

    fn scu() -> Scu {
        Scu::new(PimPlatform::default(), VariantSelection::PerformanceModel)
    }

    #[test]
    fn dense_dense_goes_to_pum() {
        let mut s = scu();
        let a = meta(RepresentationKind::DenseBitvector, 500, 10_000);
        let b = meta(RepresentationKind::DenseBitvector, 700, 10_000);
        let out = s.dispatch_binary(BinarySetOp::Intersection, false, SetId(1), &a, SetId(2), &b);
        assert_eq!(out.choice, ExecutionChoice::PumBulk(BulkOp::And));
        assert_eq!(out.choice.target(), ExecutionTarget::Pum);
        assert!(out.exec_cycles > 0);
        assert!(out.energy_nj > 0.0);
        assert_eq!(out.latency(), out.scu_cycles + out.exec_cycles);
    }

    #[test]
    fn sparse_dense_probes_on_pnm() {
        let mut s = scu();
        let a = meta(RepresentationKind::SortedArray, 50, 10_000);
        let b = meta(RepresentationKind::DenseBitvector, 4000, 10_000);
        let out = s.dispatch_binary(BinarySetOp::Intersection, true, SetId(1), &a, SetId(2), &b);
        assert_eq!(out.choice, ExecutionChoice::PnmProbe);
        assert_eq!(out.choice.target(), ExecutionTarget::Pnm);
    }

    #[test]
    fn sparse_sparse_picks_merge_or_gallop_by_size_ratio() {
        let mut s = scu();
        let similar_a = meta(RepresentationKind::SortedArray, 5_000, 100_000);
        let similar_b = meta(RepresentationKind::SortedArray, 6_000, 100_000);
        let out = s.dispatch_binary(
            BinarySetOp::Intersection,
            false,
            SetId(1),
            &similar_a,
            SetId(2),
            &similar_b,
        );
        assert_eq!(out.choice, ExecutionChoice::PnmMerge);

        let tiny = meta(RepresentationKind::SortedArray, 4, 100_000);
        let huge = meta(RepresentationKind::SortedArray, 900_000, 1_000_000);
        let out = s.dispatch_binary(
            BinarySetOp::Intersection,
            false,
            SetId(3),
            &tiny,
            SetId(4),
            &huge,
        );
        assert_eq!(out.choice, ExecutionChoice::PnmGalloping);
    }

    #[test]
    fn selection_policies_are_respected() {
        let platform = PimPlatform::default();
        let merge_only = Scu::new(platform, VariantSelection::AlwaysMerge);
        assert_eq!(
            merge_only.choose_sparse_algorithm(1, 1_000_000),
            ExecutionChoice::PnmMerge
        );
        let gallop_only = Scu::new(platform, VariantSelection::AlwaysGalloping);
        assert_eq!(
            gallop_only.choose_sparse_algorithm(500, 500),
            ExecutionChoice::PnmGalloping
        );
        let ratio = Scu::new(platform, VariantSelection::SizeRatio(5.0));
        assert_eq!(
            ratio.choose_sparse_algorithm(10, 49),
            ExecutionChoice::PnmMerge
        );
        assert_eq!(
            ratio.choose_sparse_algorithm(10, 51),
            ExecutionChoice::PnmGalloping
        );
    }

    #[test]
    fn smb_warm_lookups_get_cheaper() {
        let mut s = scu();
        let a = meta(RepresentationKind::SortedArray, 100, 1_000);
        let b = meta(RepresentationKind::SortedArray, 100, 1_000);
        let cold = s.dispatch_binary(BinarySetOp::Union, false, SetId(1), &a, SetId(2), &b);
        let warm = s.dispatch_binary(BinarySetOp::Union, false, SetId(1), &a, SetId(2), &b);
        assert_eq!(cold.smb_misses, 2);
        assert_eq!(warm.smb_hits, 2);
        assert!(warm.scu_cycles < cold.scu_cycles);
        assert!(s.smb_hit_ratio() > 0.0);
    }

    #[test]
    fn disabling_the_smb_makes_every_lookup_a_memory_access() {
        let platform = PimPlatform {
            smb_enabled: false,
            ..PimPlatform::default()
        };
        let mut s = Scu::new(platform, VariantSelection::PerformanceModel);
        let a = meta(RepresentationKind::SortedArray, 10, 100);
        let out1 = s.dispatch_binary(BinarySetOp::Intersection, false, SetId(1), &a, SetId(2), &a);
        let out2 = s.dispatch_binary(BinarySetOp::Intersection, false, SetId(1), &a, SetId(2), &a);
        assert_eq!(out1.scu_cycles, out2.scu_cycles);
        assert_eq!(out1.smb_hits, 0);
        assert_eq!(out2.smb_hits, 0);
    }

    #[test]
    fn element_dispatch_depends_on_representation() {
        let mut s = scu();
        let dense = meta(RepresentationKind::DenseBitvector, 100, 1_000_000);
        let sorted = meta(RepresentationKind::SortedArray, 100_000, 1_000_000);
        let d = s.dispatch_element(SetId(1), &dense);
        let so = s.dispatch_element(SetId(2), &sorted);
        assert!(
            d.exec_cycles < so.exec_cycles,
            "bit update should be cheaper than array shifting"
        );
        assert_eq!(d.choice, ExecutionChoice::PnmDirect);
    }

    #[test]
    fn metadata_dispatch_has_no_exec_cost() {
        let mut s = scu();
        let out = s.dispatch_metadata(&[SetId(1)]);
        assert_eq!(out.exec_cycles, 0);
        assert!(out.scu_cycles > 0);
    }
}
