//! Partitioning the set-ID universe across shards.
//!
//! A [`crate::ShardedEngine`] owns several inner engines (one per vault group
//! / HMC cube) and must decide, for every freshly created set, which shard
//! stores it. That placement decision is the first-order knob of multi-cube
//! graph mining: it determines how often a binary operation finds both
//! operands local and how much traffic crosses vault/cube links (cf.
//! Tesseract's graph partitioning and PIMMiner's architecture-aware
//! locality optimisations). [`PartitionStrategy`] collects the policies the
//! `multi_cube` experiment sweeps.

/// Policy deciding which shard stores a newly created set.
///
/// Set IDs double as vertex IDs for graph neighbourhoods
/// ([`crate::SetGraph::load`] creates one set per vertex, in vertex order), so
/// ID-based placement is effectively vertex partitioning for the graph and
/// falls back to generic placement for algorithm temporaries.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum PartitionStrategy {
    /// Round-robin by set ID (`id mod shards`): scatters neighbouring
    /// vertices, giving near-perfect storage balance but no locality.
    Modulo,
    /// Contiguous ID ranges: IDs `[k·U/N, (k+1)·U/N)` of an expected universe
    /// of `U` sets map to shard `k`. Preserves vertex locality for
    /// community-ordered graphs; IDs beyond the expected universe (algorithm
    /// temporaries) land on the last shard.
    Range,
    /// Greedy balance by created cardinality: each new set goes to the shard
    /// with the least total elements created so far. Degree-aware for graph
    /// loads, where a set's cardinality is its vertex's degree.
    DegreeBalanced,
}

impl PartitionStrategy {
    /// All strategies, in sweep order.
    pub const ALL: [PartitionStrategy; 3] = [
        PartitionStrategy::Modulo,
        PartitionStrategy::Range,
        PartitionStrategy::DegreeBalanced,
    ];

    /// A short label for figures and reports.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Self::Modulo => "modulo",
            Self::Range => "range",
            Self::DegreeBalanced => "degree-balanced",
        }
    }

    /// Chooses the shard for a new set.
    ///
    /// * `raw_id` — the global set ID being placed.
    /// * `expected_sets` — the expected size of the set-ID universe (the
    ///   vertex universe; 0 when unknown).
    /// * `created_load` — per-shard cumulative created cardinality (the
    ///   degree-aware signal), updated by the caller after each placement.
    #[must_use]
    pub fn shard_for(self, raw_id: u32, expected_sets: usize, created_load: &[u64]) -> usize {
        let shards = created_load.len().max(1);
        match self {
            Self::Modulo => raw_id as usize % shards,
            Self::Range => {
                let expected = expected_sets.max(1);
                ((raw_id as usize).min(expected - 1) * shards / expected).min(shards - 1)
            }
            Self::DegreeBalanced => created_load
                .iter()
                .enumerate()
                .min_by_key(|&(i, &load)| (load, i))
                .map_or(0, |(i, _)| i),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_are_distinct() {
        let labels: std::collections::BTreeSet<_> =
            PartitionStrategy::ALL.iter().map(|s| s.label()).collect();
        assert_eq!(labels.len(), PartitionStrategy::ALL.len());
    }

    #[test]
    fn modulo_scatters_round_robin() {
        let loads = [0u64; 4];
        let shards: Vec<usize> = (0..8)
            .map(|id| PartitionStrategy::Modulo.shard_for(id, 100, &loads))
            .collect();
        assert_eq!(shards, vec![0, 1, 2, 3, 0, 1, 2, 3]);
    }

    #[test]
    fn range_keeps_contiguous_blocks_together() {
        let loads = [0u64; 4];
        let place = |id| PartitionStrategy::Range.shard_for(id, 100, &loads);
        assert_eq!(place(0), 0);
        assert_eq!(place(24), 0);
        assert_eq!(place(25), 1);
        assert_eq!(place(99), 3);
        // Temporaries beyond the expected universe land on the last shard.
        assert_eq!(place(1234), 3);
    }

    #[test]
    fn degree_balanced_picks_the_lightest_shard() {
        let loads = [10u64, 3, 7];
        assert_eq!(
            PartitionStrategy::DegreeBalanced.shard_for(0, 100, &loads),
            1
        );
        // Ties break towards the lowest shard index.
        let tied = [4u64, 4, 4];
        assert_eq!(
            PartitionStrategy::DegreeBalanced.shard_for(7, 100, &tied),
            0
        );
    }

    #[test]
    fn single_shard_always_places_locally() {
        let loads = [42u64];
        for strategy in PartitionStrategy::ALL {
            for id in [0u32, 1, 17, 10_000] {
                assert_eq!(strategy.shard_for(id, 0, &loads), 0, "{strategy:?}");
            }
        }
    }
}
