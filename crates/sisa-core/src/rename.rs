//! Set-ID renaming: the register-renaming analogue for SISA's logical sets.
//!
//! The SISA runtime recycles logical set IDs through a LIFO slot allocator,
//! so the dependence chains graph-mining kernels build — materialise a
//! temporary, recurse on it, delete it, and immediately create the next
//! temporary in the recycled slot — serialise on *false* WAR/WAW hazards:
//! the new set's creation has nothing to do with the old set's readers, yet
//! a scoreboard keyed on logical IDs must conservatively order them. This is
//! exactly the problem register renaming solves in out-of-order cores, and
//! the fix is the same: [`RenameMap`] assigns every *write* of a logical set
//! ID a fresh **physical tag**, so the hazard scoreboard tracks tags instead
//! of IDs and only true read-after-write dependences remain.
//!
//! The tag pool is bounded (a real SCU has a finite physical set-slot table,
//! [`sisa_pim::PimPlatform::rename_tag_slots`]): a superseded or deleted
//! version's tag returns to the pool only once its storage has drained —
//! every in-flight read finished and the superseding write completed. When
//! the pool runs dry, allocation waits for the earliest pending reclaim and
//! the wait surfaces as a *structural* stall on the issue timeline (free-list
//! pressure), never as a dependence stall. A pool too small to hold the
//! program's live versions grows on demand (an architectural spill, counted
//! in [`RenameMap::spills`]) rather than deadlocking the analytic pipeline.

use sisa_isa::SetId;
use std::cmp::Reverse;
use std::collections::{BTreeMap, BinaryHeap};

/// The outcome of allocating a fresh physical tag for one logical write.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TagAlloc {
    /// The fresh physical tag now bound to the logical ID.
    pub tag: SetId,
    /// The cycle at which the tag becomes usable (0 for a free tag; the
    /// earliest pending reclaim time under free-list pressure).
    pub available_at: u64,
    /// The physical tag this write superseded (the logical ID's previous
    /// binding), if any. The caller prices its reclaim time — the scoreboard
    /// knows when the old version's readers drain — and hands the tag back
    /// through [`RenameMap::reclaim`].
    pub superseded: Option<SetId>,
}

/// Maps logical set IDs to physical tags, a fresh tag per write.
#[derive(Clone, Debug, Default)]
pub struct RenameMap {
    /// Current logical → physical binding.
    current: BTreeMap<u32, u32>,
    /// Tags returned to the pool and immediately reusable.
    free: Vec<u32>,
    /// Tags whose storage is still draining: usable from the recorded cycle.
    pending: BinaryHeap<Reverse<(u64, u32)>>,
    /// Next never-used tag (the pool is materialised lazily).
    next_tag: u32,
    /// Configured pool capacity; allocation beyond it spills.
    capacity: usize,
    /// Fresh-tag allocations performed.
    allocations: u64,
    /// Allocations that had to grow the pool past `capacity` because nothing
    /// was free or pending (more live set versions than physical slots).
    spills: u64,
}

impl RenameMap {
    /// Creates a map backed by a pool of `capacity` physical tags (clamped to
    /// at least 1).
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        Self {
            capacity: capacity.max(1),
            ..Self::default()
        }
    }

    /// The configured pool capacity.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Fresh-tag allocations performed since the last reset.
    #[must_use]
    pub fn allocations(&self) -> u64 {
        self.allocations
    }

    /// Allocations that grew the pool past its capacity.
    #[must_use]
    pub fn spills(&self) -> u64 {
        self.spills
    }

    /// Number of logical IDs currently bound to a tag.
    #[must_use]
    pub fn bound(&self) -> usize {
        self.current.len()
    }

    /// Tags allocatable right now without waiting: the freed tags plus the
    /// never-used remainder of the configured pool. Versions still draining
    /// towards a pending reclaim are not counted — they cost a structural
    /// wait. This is the free-tag-pool sample telemetry collectors record.
    #[must_use]
    pub fn available(&self) -> usize {
        self.free.len() + self.capacity.saturating_sub(self.next_tag as usize)
    }

    /// The tag a *read* of `logical` consumes: the current binding, or a
    /// fresh binding for a set that predates the rename map (e.g. created
    /// before a statistics reset re-armed the timeline — architecturally,
    /// state loaded before the measured region). A lazy bind takes a clean
    /// tag (freed, or grown past the capacity if none is free) and never
    /// pops a still-draining pending reclaim: pre-loaded state occupied its
    /// slot before the measured region, so it neither waits nor counts as an
    /// allocation or a spill.
    pub fn read_tag(&mut self, logical: SetId) -> SetId {
        if let Some(&tag) = self.current.get(&logical.raw()) {
            return SetId(tag);
        }
        let tag = self.free.pop().unwrap_or_else(|| {
            let fresh = self.next_tag;
            self.next_tag += 1;
            fresh
        });
        self.current.insert(logical.raw(), tag);
        SetId(tag)
    }

    /// Binds a fresh tag to `logical` for a *write*, returning the tag, the
    /// cycle free-list pressure delays it to, and the superseded binding.
    pub fn write_tag(&mut self, logical: SetId) -> TagAlloc {
        let (tag, available_at) = self.take_tag();
        self.allocations += 1;
        let superseded = self.current.insert(logical.raw(), tag).map(SetId);
        TagAlloc {
            tag: SetId(tag),
            available_at,
            superseded,
        }
    }

    /// Unbinds `logical` (a `sisa.del`), returning the tag whose storage the
    /// caller must price for reclaim.
    pub fn release(&mut self, logical: SetId) -> Option<SetId> {
        self.current.remove(&logical.raw()).map(SetId)
    }

    /// Hands a superseded/deleted tag back to the pool, usable once its
    /// storage has drained at cycle `available_at`.
    pub fn reclaim(&mut self, tag: SetId, available_at: u64) {
        if available_at == 0 {
            self.free.push(tag.raw());
        } else {
            self.pending.push(Reverse((available_at, tag.raw())));
        }
    }

    /// Pops the cheapest usable tag: a never-used or freed tag at cycle 0,
    /// else the earliest pending reclaim, else a spill past the capacity.
    fn take_tag(&mut self) -> (u32, u64) {
        if let Some(tag) = self.free.pop() {
            return (tag, 0);
        }
        if (self.next_tag as usize) < self.capacity {
            let tag = self.next_tag;
            self.next_tag += 1;
            return (tag, 0);
        }
        if let Some(Reverse((at, tag))) = self.pending.pop() {
            return (tag, at);
        }
        // Nothing free, nothing draining: the program holds more live set
        // versions than the pool has slots. Grow rather than deadlock.
        let tag = self.next_tag;
        self.next_tag += 1;
        self.spills += 1;
        (tag, 0)
    }

    /// Forgets all bindings and pool state (the timeline restarted).
    pub fn clear(&mut self) {
        self.current.clear();
        self.free.clear();
        self.pending.clear();
        self.next_tag = 0;
        self.allocations = 0;
        self.spills = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_write_gets_a_fresh_tag() {
        let mut rm = RenameMap::new(16);
        let a = rm.write_tag(SetId(3));
        let b = rm.write_tag(SetId(3));
        assert_ne!(a.tag, b.tag, "a new write must not reuse the live tag");
        assert_eq!(a.superseded, None);
        assert_eq!(b.superseded, Some(a.tag), "the old binding is superseded");
        assert_eq!(rm.read_tag(SetId(3)), b.tag, "reads see the latest write");
        assert_eq!(rm.allocations(), 2);
    }

    #[test]
    fn distinct_logicals_get_distinct_tags() {
        let mut rm = RenameMap::new(16);
        let a = rm.write_tag(SetId(0)).tag;
        let b = rm.write_tag(SetId(1)).tag;
        assert_ne!(a, b);
        assert_eq!(rm.bound(), 2);
    }

    #[test]
    fn reads_of_unbound_logicals_bind_without_pressure() {
        let mut rm = RenameMap::new(4);
        let t = rm.read_tag(SetId(9));
        assert_eq!(rm.read_tag(SetId(9)), t, "the lazy binding is stable");
        assert_eq!(rm.allocations(), 0, "a lazy bind is not a write");
        assert_eq!(rm.spills(), 0, "a lazy bind is not pool pressure");
    }

    #[test]
    fn lazy_binds_never_steal_a_draining_tag() {
        // Regression: with the pool at capacity and a version still
        // draining, a lazy read bind must not pop the pending reclaim (that
        // would rebind a physical slot whose storage has not drained and
        // push the next write onto a later reclaim). It grows the pool —
        // pre-loaded state held its slot before the measured region — and
        // counts neither as an allocation nor as a spill.
        let mut rm = RenameMap::new(1);
        let v1 = rm.write_tag(SetId(0));
        let freed = rm.release(SetId(0)).unwrap();
        rm.reclaim(freed, 500); // still draining until cycle 500
        let lazy = rm.read_tag(SetId(7));
        assert_ne!(lazy, v1.tag, "the draining tag must stay pending");
        assert_eq!(rm.spills(), 0);
        // The next write still finds the pending reclaim where it left it.
        let w = rm.write_tag(SetId(8));
        assert_eq!((w.tag, w.available_at), (v1.tag, 500));
    }

    #[test]
    fn released_then_reclaimed_tags_cycle_through_the_pool() {
        let mut rm = RenameMap::new(2);
        let a = rm.write_tag(SetId(0)).tag;
        let released = rm.release(SetId(0)).expect("was bound");
        assert_eq!(released, a);
        rm.reclaim(a, 0);
        // The freed tag is preferred over pool growth.
        assert_eq!(rm.write_tag(SetId(1)).tag, a);
        assert_eq!(rm.spills(), 0);
    }

    #[test]
    fn pressure_waits_for_the_earliest_pending_reclaim() {
        let mut rm = RenameMap::new(2);
        let a = rm.write_tag(SetId(0));
        let b = rm.write_tag(SetId(1));
        assert_eq!((a.available_at, b.available_at), (0, 0));
        // Both tags drain at known times; the pool is now empty.
        let t0 = rm.release(SetId(0)).unwrap();
        rm.reclaim(t0, 300);
        let t1 = rm.release(SetId(1)).unwrap();
        rm.reclaim(t1, 100);
        let c = rm.write_tag(SetId(2));
        assert_eq!(c.available_at, 100, "pressure picks the earliest reclaim");
        let d = rm.write_tag(SetId(3));
        assert_eq!(d.available_at, 300);
        assert_eq!(rm.spills(), 0);
    }

    #[test]
    fn exhaustion_spills_instead_of_deadlocking() {
        let mut rm = RenameMap::new(1);
        let a = rm.write_tag(SetId(0));
        let b = rm.write_tag(SetId(1)); // pool empty, nothing pending
        assert_ne!(a.tag, b.tag);
        assert_eq!(b.available_at, 0);
        assert_eq!(rm.spills(), 1);
    }

    #[test]
    fn available_counts_free_and_unused_tags_only() {
        let mut rm = RenameMap::new(4);
        assert_eq!(rm.available(), 4);
        let a = rm.write_tag(SetId(0));
        assert_eq!(rm.available(), 3, "one tag live");
        let t = rm.release(SetId(0)).unwrap();
        rm.reclaim(t, 0);
        assert_eq!(rm.available(), 4, "an immediate reclaim is available");
        let b = rm.write_tag(SetId(1));
        assert_eq!(b.tag, a.tag, "the freed tag is reused");
        let t = rm.release(SetId(1)).unwrap();
        rm.reclaim(t, 500);
        assert_eq!(rm.available(), 3, "a draining reclaim is not available");
    }

    #[test]
    fn clear_resets_pool_and_bindings() {
        let mut rm = RenameMap::new(4);
        let _ = rm.write_tag(SetId(0));
        rm.reclaim(SetId(99), 1_000);
        rm.clear();
        assert_eq!(rm.bound(), 0);
        assert_eq!(rm.allocations(), 0);
        assert_eq!(rm.write_tag(SetId(0)).tag, SetId(0), "tags restart at 0");
    }
}
