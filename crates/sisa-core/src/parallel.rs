//! Virtual-thread scheduling of per-task cycle counts.
//!
//! The paper parallelises graph mining at the level of outer-loop work items
//! ("[in par]" in the algorithm listings) and reports end-to-end runtimes,
//! per-thread stalled-time fractions (Figure 9a) and the way stall ratios grow
//! with the thread count on a stock multicore (Figure 1). To reproduce those
//! quantities deterministically, algorithms record one [`TaskRecord`] per work
//! item and this module schedules the records onto `T` virtual threads:
//!
//! * [`schedule`] — longest-processing-time-first assignment with no
//!   inter-thread interference; used for SISA runs, whose PNM bandwidth scales
//!   with the number of vaults (§8.4 "Harnessing Parallelism").
//! * [`schedule_cpu`] — the same assignment, but each task's memory stall is
//!   first inflated to respect the DRAM bandwidth share available to its
//!   thread, which is what makes a stock multicore's stall fraction climb as
//!   threads are added.

use sisa_pim::cpu::TaskCost;
use sisa_pim::CpuConfig;

/// The cost of one parallel work item.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TaskRecord {
    /// Busy cycles (compute plus exposed memory latency).
    pub cycles: u64,
    /// The subset of `cycles` stalled on memory.
    pub stall_cycles: u64,
    /// DRAM bytes transferred (used for bandwidth contention).
    pub dram_bytes: u64,
}

impl TaskRecord {
    /// A task with only busy cycles (used for SISA tasks, whose cost models
    /// already include memory time and whose bandwidth scales with vaults).
    #[must_use]
    pub fn compute_only(cycles: u64) -> Self {
        Self {
            cycles,
            stall_cycles: 0,
            dram_bytes: 0,
        }
    }
}

impl From<TaskCost> for TaskRecord {
    fn from(cost: TaskCost) -> Self {
        Self {
            cycles: cost.cycles,
            stall_cycles: cost.stall_cycles,
            dram_bytes: cost.dram_bytes,
        }
    }
}

/// Busy/stall cycles accumulated by one virtual thread.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ThreadReport {
    /// Total cycles of work assigned to the thread.
    pub busy_cycles: u64,
    /// The subset of `busy_cycles` stalled on memory.
    pub stall_cycles: u64,
    /// Number of tasks assigned.
    pub tasks: usize,
}

impl ThreadReport {
    /// Fraction of this thread's cycles spent stalled.
    #[must_use]
    pub fn stall_fraction(&self) -> f64 {
        if self.busy_cycles == 0 {
            0.0
        } else {
            self.stall_cycles as f64 / self.busy_cycles as f64
        }
    }
}

/// The result of scheduling a task list onto `threads` virtual threads.
#[derive(Clone, Debug, PartialEq)]
pub struct RunReport {
    /// Number of virtual threads used.
    pub threads: usize,
    /// End-to-end runtime: the maximum per-thread load (makespan).
    pub makespan_cycles: u64,
    /// Per-thread busy/stall breakdown.
    pub per_thread: Vec<ThreadReport>,
    /// Sum of all task cycles (the serial runtime).
    pub total_task_cycles: u64,
}

impl RunReport {
    /// Average stalled-time fraction across threads, weighted by busy cycles.
    #[must_use]
    pub fn stall_fraction(&self) -> f64 {
        let busy: u64 = self.per_thread.iter().map(|t| t.busy_cycles).sum();
        let stall: u64 = self.per_thread.iter().map(|t| t.stall_cycles).sum();
        if busy == 0 {
            0.0
        } else {
            stall as f64 / busy as f64
        }
    }

    /// Parallel speedup relative to executing every task serially.
    #[must_use]
    pub fn speedup_vs_serial(&self) -> f64 {
        if self.makespan_cycles == 0 {
            1.0
        } else {
            self.total_task_cycles as f64 / self.makespan_cycles as f64
        }
    }

    /// Load imbalance: makespan divided by the average per-thread load
    /// (1.0 = perfectly balanced).
    #[must_use]
    pub fn imbalance(&self) -> f64 {
        let avg = self.total_task_cycles as f64 / self.threads.max(1) as f64;
        if avg == 0.0 {
            1.0
        } else {
            self.makespan_cycles as f64 / avg
        }
    }
}

/// Schedules tasks onto `threads` virtual threads using longest-processing-
/// time-first assignment, with no inter-thread interference.
#[must_use]
pub fn schedule(tasks: &[TaskRecord], threads: usize) -> RunReport {
    let threads = threads.max(1);
    let mut order: Vec<usize> = (0..tasks.len()).collect();
    order.sort_by_key(|&i| std::cmp::Reverse(tasks[i].cycles));

    let mut reports = vec![ThreadReport::default(); threads];
    for &i in &order {
        let task = tasks[i];
        // Assign to the least-loaded thread (ties broken by index, so the
        // result is deterministic).
        let target = (0..threads)
            .min_by_key(|&t| (reports[t].busy_cycles, t))
            .expect("at least one thread");
        reports[target].busy_cycles += task.cycles;
        reports[target].stall_cycles += task.stall_cycles;
        reports[target].tasks += 1;
    }
    let makespan = reports.iter().map(|t| t.busy_cycles).max().unwrap_or(0);
    RunReport {
        threads,
        makespan_cycles: makespan,
        total_task_cycles: tasks.iter().map(|t| t.cycles).sum(),
        per_thread: reports,
    }
}

/// Schedules CPU-baseline tasks, first inflating each task's stall time so
/// that its DRAM traffic respects the per-thread bandwidth share
/// `total_bandwidth(threads) / threads`.
#[must_use]
pub fn schedule_cpu(tasks: &[TaskRecord], threads: usize, cfg: &CpuConfig) -> RunReport {
    let threads = threads.max(1);
    let share = cfg.total_bandwidth(threads) / threads as f64;
    let adjusted: Vec<TaskRecord> = tasks
        .iter()
        .map(|t| {
            let bandwidth_cycles = if share > 0.0 {
                (t.dram_bytes as f64 / share).ceil() as u64
            } else {
                0
            };
            let extra = bandwidth_cycles.saturating_sub(t.stall_cycles);
            TaskRecord {
                cycles: t.cycles + extra,
                stall_cycles: t.stall_cycles + extra,
                dram_bytes: t.dram_bytes,
            }
        })
        .collect();
    schedule(&adjusted, threads)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn uniform_tasks(n: usize, cycles: u64, stall: u64, bytes: u64) -> Vec<TaskRecord> {
        vec![
            TaskRecord {
                cycles,
                stall_cycles: stall,
                dram_bytes: bytes,
            };
            n
        ]
    }

    #[test]
    fn single_thread_serialises_everything() {
        let tasks = uniform_tasks(10, 100, 20, 0);
        let report = schedule(&tasks, 1);
        assert_eq!(report.makespan_cycles, 1000);
        assert_eq!(report.total_task_cycles, 1000);
        assert!((report.speedup_vs_serial() - 1.0).abs() < 1e-12);
        assert!((report.stall_fraction() - 0.2).abs() < 1e-12);
    }

    #[test]
    fn balanced_tasks_scale_linearly() {
        let tasks = uniform_tasks(64, 100, 0, 0);
        let report = schedule(&tasks, 8);
        assert_eq!(report.makespan_cycles, 800);
        assert!((report.speedup_vs_serial() - 8.0).abs() < 1e-12);
        assert!((report.imbalance() - 1.0).abs() < 1e-12);
        assert!(report.per_thread.iter().all(|t| t.tasks == 8));
    }

    #[test]
    fn one_huge_task_limits_the_makespan() {
        let mut tasks = uniform_tasks(16, 10, 0, 0);
        tasks.push(TaskRecord::compute_only(1000));
        let report = schedule(&tasks, 8);
        assert_eq!(report.makespan_cycles, 1000);
        assert!(report.imbalance() > 1.5);
    }

    #[test]
    fn lpt_is_deterministic() {
        let tasks: Vec<TaskRecord> = (0..50)
            .map(|i| TaskRecord::compute_only(100 + (i * 37) % 90))
            .collect();
        let a = schedule(&tasks, 4);
        let b = schedule(&tasks, 4);
        assert_eq!(a, b);
    }

    #[test]
    fn stock_multicore_stall_fraction_grows_with_threads() {
        // Memory-heavy tasks on a fixed-bandwidth machine: more threads means
        // a smaller bandwidth share per thread, hence more stalling — the
        // Figure 1 effect.
        let cfg = CpuConfig::stock_multicore();
        let tasks = uniform_tasks(256, 10_000, 3_000, 200_000);
        let t1 = schedule_cpu(&tasks, 1, &cfg);
        let t32 = schedule_cpu(&tasks, 32, &cfg);
        assert!(t32.stall_fraction() > t1.stall_fraction());
        // Speedup flattens: nowhere near 32x.
        let speedup = t1.makespan_cycles as f64 / t32.makespan_cycles as f64;
        assert!(speedup < 20.0, "speedup {speedup}");
        assert!(speedup > 1.0);
    }

    #[test]
    fn bandwidth_scaling_removes_the_contention_penalty() {
        let scaled = CpuConfig::default();
        let tasks = uniform_tasks(256, 10_000, 3_000, 100_000);
        let t1 = schedule_cpu(&tasks, 1, &scaled);
        let t32 = schedule_cpu(&tasks, 32, &scaled);
        // With per-core bandwidth, per-task inflation is identical at any
        // thread count, so the stall fraction stays flat.
        assert!((t32.stall_fraction() - t1.stall_fraction()).abs() < 1e-9);
        let speedup = t1.makespan_cycles as f64 / t32.makespan_cycles as f64;
        assert!(speedup > 20.0);
    }

    #[test]
    fn empty_task_list() {
        let report = schedule(&[], 4);
        assert_eq!(report.makespan_cycles, 0);
        assert_eq!(report.stall_fraction(), 0.0);
        assert_eq!(report.speedup_vs_serial(), 1.0);
    }

    #[test]
    fn task_record_from_task_cost() {
        let cost = TaskCost {
            cycles: 10,
            stall_cycles: 3,
            dram_bytes: 128,
            dram_accesses: 2,
        };
        let rec = TaskRecord::from(cost);
        assert_eq!(rec.cycles, 10);
        assert_eq!(rec.stall_cycles, 3);
        assert_eq!(rec.dram_bytes, 128);
    }
}
