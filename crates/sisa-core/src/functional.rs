//! A plain software [`SetEngine`] with no cost model.
//!
//! [`FunctionalEngine`] executes every set operation directly on
//! [`SetRepr`] storage and charges nothing: its [`ExecStats`] stay zero and
//! task records are empty. It exists for *correctness*, not measurement — as
//! the oracle in differential property tests (any priced backend must compute
//! the same sets the functional engine does) and as the fastest backend for
//! fuzzing set-centric algorithms, since it skips the SCU, the cache models
//! and all instruction materialisation.

use crate::engine::SetEngine;
use crate::parallel::TaskRecord;
use crate::stats::ExecStats;
use crate::Vertex;
use sisa_isa::SetId;
use sisa_sets::SetRepr;

/// A cost-free software backend: real set algebra, zero simulated cycles.
#[derive(Clone, Debug, Default)]
pub struct FunctionalEngine {
    sets: Vec<Option<SetRepr>>,
    free_ids: Vec<u32>,
    universe: usize,
    stats: ExecStats,
}

impl FunctionalEngine {
    /// Creates an empty engine.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    fn slot(&self, id: SetId) -> &SetRepr {
        self.sets
            .get(id.0 as usize)
            .and_then(Option::as_ref)
            .unwrap_or_else(|| panic!("set {id} does not exist"))
    }

    fn slot_mut(&mut self, id: SetId) -> &mut SetRepr {
        self.sets
            .get_mut(id.0 as usize)
            .and_then(Option::as_mut)
            .unwrap_or_else(|| panic!("set {id} does not exist"))
    }

    fn store(&mut self, repr: SetRepr) -> SetId {
        let id = crate::slots::allocate(&mut self.sets, &mut self.free_ids);
        self.sets[id.0 as usize] = Some(repr);
        id
    }
}

impl SetEngine for FunctionalEngine {
    fn backend_name(&self) -> &'static str {
        "functional"
    }

    fn set_universe(&mut self, n: usize) {
        self.universe = self.universe.max(n);
    }

    fn universe(&self) -> usize {
        self.universe
    }

    fn stats(&self) -> &ExecStats {
        &self.stats
    }

    fn reset_stats(&mut self) {
        self.stats = ExecStats::default();
    }

    fn live_sets(&self) -> usize {
        self.sets.iter().filter(|s| s.is_some()).count()
    }

    fn create(&mut self, repr: SetRepr) -> SetId {
        self.store(repr)
    }

    fn clone_set(&mut self, id: SetId) -> SetId {
        let repr = self.slot(id).clone();
        self.store(repr)
    }

    fn delete(&mut self, id: SetId) {
        let _ = self.slot(id);
        crate::slots::release(&mut self.sets, &mut self.free_ids, id);
    }

    fn cardinality(&mut self, id: SetId) -> usize {
        self.slot(id).len()
    }

    fn contains(&mut self, id: SetId, v: Vertex) -> bool {
        self.slot(id).contains(v)
    }

    fn members(&mut self, id: SetId) -> Vec<Vertex> {
        self.slot(id).to_sorted_vec()
    }

    fn repr(&self, id: SetId) -> &SetRepr {
        self.slot(id)
    }

    fn insert(&mut self, id: SetId, v: Vertex) -> bool {
        self.slot_mut(id).insert(v)
    }

    fn remove(&mut self, id: SetId, v: Vertex) -> bool {
        self.slot_mut(id).remove(v)
    }

    fn intersect(&mut self, a: SetId, b: SetId) -> SetId {
        let result = self.slot(a).intersect(self.slot(b));
        self.store(result)
    }

    fn union(&mut self, a: SetId, b: SetId) -> SetId {
        let result = self.slot(a).union(self.slot(b));
        self.store(result)
    }

    fn difference(&mut self, a: SetId, b: SetId) -> SetId {
        let result = self.slot(a).difference(self.slot(b));
        self.store(result)
    }

    fn intersect_count(&mut self, a: SetId, b: SetId) -> usize {
        self.slot(a).intersect_count(self.slot(b))
    }

    fn union_count(&mut self, a: SetId, b: SetId) -> usize {
        self.slot(a).union_count(self.slot(b))
    }

    fn difference_count(&mut self, a: SetId, b: SetId) -> usize {
        self.slot(a).difference_count(self.slot(b))
    }

    fn intersect_assign(&mut self, a: SetId, b: SetId) {
        let result = self.slot(a).intersect(self.slot(b));
        *self.slot_mut(a) = result;
    }

    fn union_assign(&mut self, a: SetId, b: SetId) {
        let result = self.slot(a).union(self.slot(b));
        *self.slot_mut(a) = result;
    }

    fn difference_assign(&mut self, a: SetId, b: SetId) {
        let result = self.slot(a).difference(self.slot(b));
        *self.slot_mut(a) = result;
    }

    fn host_ops(&mut self, _n: u64) {}

    fn task_begin(&mut self) {}

    fn task_end(&mut self) -> TaskRecord {
        TaskRecord::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_algebra_is_correct_and_free() {
        let mut e = FunctionalEngine::new();
        e.set_universe(64);
        let a = e.create_sorted([1, 2, 3, 10]);
        let b = e.create_dense([2, 10, 30]);
        let i = e.intersect(a, b);
        assert_eq!(e.members(i), vec![2, 10]);
        assert_eq!(e.union_count(a, b), 5);
        assert_eq!(e.difference_count(a, b), 2);
        e.union_assign(a, b);
        assert_eq!(e.cardinality(a), 5);
        assert!(e.contains(a, 30));
        e.host_ops(1_000_000);
        let record = e.task_end();
        assert_eq!(record, TaskRecord::default());
        assert_eq!(*e.stats(), ExecStats::default());
        assert_eq!(e.stats().total_cycles(), 0);
    }

    #[test]
    fn lifecycle_reuses_freed_ids_like_the_priced_engines() {
        let mut e = FunctionalEngine::new();
        let a = e.create_sorted([1]);
        let c = e.clone_set(a);
        assert_ne!(a, c);
        e.delete(c);
        let d = e.create_sorted([9]);
        assert_eq!(c, d);
        assert_eq!(e.live_sets(), 2);
    }

    #[test]
    #[should_panic(expected = "does not exist")]
    fn deleted_sets_fault() {
        let mut e = FunctionalEngine::new();
        let a = e.create_sorted([1]);
        e.delete(a);
        let _ = e.members(a);
    }
}
