//! The scoreboarded issue queue: overlapping independent SISA instructions
//! across virtual vault lanes, in order or — with set-ID renaming — out of
//! order.
//!
//! The paper's performance story (§8.4 "Harnessing Parallelism") rests on
//! hundreds of vault cores executing set operations concurrently. A serial
//! cost model — issue, dispatch, retire, one instruction at a time — makes a
//! 16-cube/512-vault machine behave like a single in-order core. This module
//! adds the missing axis as an analytic event-timed pipeline:
//!
//! * an [`IssueQueue`] of bounded `depth` holds in-flight instructions; a new
//!   instruction cannot issue until the instruction `depth` positions ahead
//!   of it has retired (in program order), so depth 1 degenerates to today's
//!   fully serial execution;
//! * a [`crate::Scoreboard`] tracks RAW/WAW/WAR hazards on operand *sets*:
//!   instructions with disjoint live operand sets may overlap, dependent ones
//!   stall, and the stall is attributed to [`IssueOutcome::dep_stall`];
//! * work executes on interchangeable **virtual vault lanes** (a lane stands
//!   for a group of vaults; the count derives from the PNM cube/vault
//!   geometry via [`sisa_pim::PnmConfig::issue_lanes`]) plus a single serial
//!   **host** resource for the scalar loop-control work algorithms report.
//!
//! # The renamed out-of-order path
//!
//! Graph-mining kernels recycle set IDs aggressively (materialise a
//! temporary, recurse, delete it, create the next one in the recycled slot),
//! so a scoreboard keyed on *logical* IDs serialises on **false** WAR/WAW
//! hazards — the reason k-clique counting floors near 1.17x overlap while
//! triangle counting reaches 16x. [`IssueQueue::with_ooo`] arms the
//! register-renaming analogue:
//!
//! * every logical-set *write* allocates a fresh **physical tag** from the
//!   bounded [`crate::rename::RenameMap`] pool, so the hazard scoreboard
//!   tracks tags and only true RAW dependences remain; free-list pressure
//!   (no tag drained yet) delays the write as a *structural* stall;
//! * a bounded **reorder window** of `ooo_window` in-flight instructions lets
//!   ready instructions start while program-earlier ones are still stalled
//!   (counted as [`IssueOutcome::bypassed`]), with retirement kept in program
//!   order — a full window waits for the oldest in-flight retire;
//! * a **shadow in-order queue** (the exact rename-off pipeline at the
//!   configured `depth` × lanes) runs alongside and decomposes every
//!   dependence stall it exposes into its true-RAW component (reported as
//!   [`IssueOutcome::dep_stall`]) and the false WAR/WAW remainder renaming
//!   removed ([`IssueOutcome::false_dep_removed`]). The two therefore sum,
//!   per instruction and per opcode, to exactly the stall the rename-off run
//!   reports on the same program — the accounting invariant the differential
//!   tests pin.
//!
//! The queue prices *time*, not *work*: per-unit cycle and energy counters in
//! [`crate::ExecStats`] stay the serial work totals regardless of depth (they
//! are conserved quantities, and every existing figure reports them), while
//! the queue computes [`IssueQueue::makespan_cycles`] — the completion time
//! of the overlapped schedule — and the dependence-stall cycles. Overlap
//! speedup is then simply `work / makespan`, and a depth-1 queue reproduces
//! the serial totals cycle-for-cycle: with one slot in flight every item
//! starts exactly when its predecessor finishes, so the makespan equals the
//! sum of all charged cycles and no dependence stall is ever exposed.

use crate::rename::RenameMap;
use crate::scoreboard::Scoreboard;
use sisa_isa::SetId;
use std::collections::{BTreeMap, VecDeque};

/// How often (in issued items) the queue prunes retired scoreboard entries.
const PRUNE_INTERVAL: u64 = 64;

/// The execution resource a timed work item occupies.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LaneKind {
    /// A virtual vault lane (set instructions, PNM/PUM execution, link
    /// transfers absorbed from a sharded wrapper).
    Vault,
    /// The single serial host core (scalar loop-control work, result
    /// hand-off). Host items overlap vault work but never each other.
    Host,
}

/// What an item's `writes` operands mean to the renaming layer.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum WriteIntent {
    /// The item produces a new value for each written set: renaming binds a
    /// fresh physical tag (creates, materialising/in-place binary ops,
    /// element updates, absorbed transfers).
    #[default]
    Produce,
    /// The item kills the written sets (`sisa.del`): renaming *reads* the
    /// dying version's tag — so the delete orders only behind the producer,
    /// never behind the version's readers — and schedules the tag's reclaim
    /// once its storage drains.
    Release,
}

/// Where one issued item landed on the virtual timeline.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct IssueOutcome {
    /// Cycle at which the item started executing.
    pub start: u64,
    /// Cycle at which the item completes.
    pub finish: u64,
    /// Cycles the item stalled on operand hazards *beyond* what the issue
    /// window and lane availability already imposed. On the in-order path
    /// this is the full RAW/WAW/WAR cost; on the renamed path it is the
    /// true-RAW component of the in-order reference schedule (the part
    /// renaming cannot remove).
    pub dep_stall: u64,
    /// False WAR/WAW stall cycles of the in-order reference schedule that
    /// renaming removed for this item (always 0 when renaming is off).
    /// `dep_stall + false_dep_removed` equals the stall a rename-off run
    /// reports for the same instruction.
    pub false_dep_removed: u64,
    /// Whether the item started ahead of a program-earlier instruction still
    /// in the reorder window (an out-of-order bypass; always `false` on the
    /// in-order path).
    pub bypassed: bool,
    /// The vault lane the item executed on (`None` for host items).
    pub lane: Option<usize>,
    /// The physical tag renaming bound to the item's first written set
    /// (`None` when renaming is off, for read-only items, and for releases —
    /// a delete consumes a version, it does not produce one).
    pub phys_tag: Option<SetId>,
}

/// One instruction in flight in the reorder window.
#[derive(Clone, Copy, Debug)]
struct InFlight {
    start: u64,
    retire: u64,
}

/// State of the renamed out-of-order scheduler (absent on the in-order path).
#[derive(Clone, Debug)]
struct OooState {
    /// Reorder-window capacity: in-flight (issued, unretired) instructions.
    window: usize,
    /// Busy-until time per virtual vault lane of the out-of-order schedule.
    lanes: Vec<u64>,
    /// Busy-until time of the serial host resource.
    host_busy: u64,
    /// The in-flight instructions, oldest first.
    inflight: VecDeque<InFlight>,
    /// Retire time of the youngest in-flight instruction (retirement is in
    /// program order, so retire times are non-decreasing).
    last_retire: u64,
    /// Hazard state keyed by physical tag (renaming on) or logical set ID
    /// (renaming off).
    board: Scoreboard,
    /// The renaming table, when `rename_tags > 0`.
    rename: Option<RenameMap>,
    /// Shadow decomposition state: per logical ID, the finish time of its
    /// last producer *in the shadow in-order schedule* — the RAW component a
    /// renamed machine cannot remove.
    last_write: BTreeMap<u32, u64>,
    /// Completion time of the out-of-order schedule.
    makespan: u64,
    /// Items that started ahead of a program-earlier in-flight instruction.
    bypasses: u64,
    /// Cycles write allocations waited on tag free-list pressure.
    pressure_cycles: u64,
    /// Scratch operand buffers, reused across issues.
    reads_buf: Vec<SetId>,
    writes_buf: Vec<SetId>,
    reclaim_buf: Vec<SetId>,
}

impl OooState {
    fn new(window: usize, lanes: usize, rename_tags: usize) -> Self {
        Self {
            window: window.max(1),
            lanes: vec![0; lanes.max(1)],
            host_busy: 0,
            inflight: VecDeque::new(),
            last_retire: 0,
            board: Scoreboard::new(),
            rename: (rename_tags > 0).then(|| RenameMap::new(rename_tags)),
            last_write: BTreeMap::new(),
            makespan: 0,
            bypasses: 0,
            pressure_cycles: 0,
            reads_buf: Vec::new(),
            writes_buf: Vec::new(),
            reclaim_buf: Vec::new(),
        }
    }

    /// Issues one item on the out-of-order timeline. Returns
    /// `(start, finish, lane, bypassed, exposed_dep_stall)` — the exposed
    /// stall is only meaningful when renaming is off (with renaming on the
    /// caller reports the shadow decomposition instead).
    fn issue(
        &mut self,
        kind: LaneKind,
        cycles: u64,
        reads: &[SetId],
        writes: &[SetId],
        intent: WriteIntent,
    ) -> (u64, u64, Option<usize>, bool, u64) {
        // Operand translation: logical IDs, or physical tags under renaming.
        // Read tags resolve before write tags bind, so an item that reads and
        // rewrites the same set (an element update, an in-place binary op)
        // depends on the previous version and produces the next one.
        self.reads_buf.clear();
        self.writes_buf.clear();
        self.reclaim_buf.clear();
        let mut tag_avail = 0u64;
        let renaming = self.rename.is_some();
        if let Some(rm) = self.rename.as_mut() {
            for &r in reads {
                self.reads_buf.push(rm.read_tag(r));
            }
            match intent {
                WriteIntent::Produce => {
                    for &w in writes {
                        let alloc = rm.write_tag(w);
                        tag_avail = tag_avail.max(alloc.available_at);
                        if let Some(old) = alloc.superseded {
                            self.reclaim_buf.push(old);
                        }
                        self.writes_buf.push(alloc.tag);
                    }
                }
                WriteIntent::Release => {
                    for &w in writes {
                        // The delete consumes the dying version: RAW on its
                        // producer only, then the tag drains back to the pool.
                        let tag = rm.read_tag(w);
                        rm.release(w);
                        self.reads_buf.push(tag);
                        self.reclaim_buf.push(tag);
                    }
                }
            }
        } else {
            self.reads_buf.extend_from_slice(reads);
            self.writes_buf.extend_from_slice(writes);
        }

        // Structural constraint: a full reorder window frees its oldest slot
        // at that instruction's in-order retire time.
        let structural = if self.inflight.len() >= self.window {
            self.inflight.pop_front().map_or(0, |f| f.retire)
        } else {
            0
        };
        // Resource constraint: the earliest-free vault lane, or the host.
        let (resource, lane) = match kind {
            LaneKind::Vault => {
                let (idx, &busy) = self
                    .lanes
                    .iter()
                    .enumerate()
                    .min_by_key(|&(i, &busy)| (busy, i))
                    .expect("at least one lane");
                (busy, Some(idx))
            }
            LaneKind::Host => (self.host_busy, None),
        };
        // Operand constraint: true RAW on tags under renaming, the full
        // RAW/WAW/WAR rules on logical IDs otherwise.
        let ready = if renaming {
            self.board.raw_ready_at(&self.reads_buf)
        } else {
            self.board.ready_at(&self.reads_buf, &self.writes_buf)
        };

        let floor = structural.max(resource);
        // Free-list pressure surfaces as a structural stall, not a
        // dependence stall.
        self.pressure_cycles += tag_avail.saturating_sub(floor.max(ready));
        let base = floor.max(tag_avail);
        let start = base.max(ready);
        let exposed_dep = ready.saturating_sub(base);
        let finish = start + cycles;

        match lane {
            Some(idx) => self.lanes[idx] = finish,
            None => self.host_busy = finish,
        }
        // Bypass: the item starts while a program-earlier instruction in the
        // window has not even started yet.
        let bypassed = self.inflight.iter().any(|f| f.start > start);
        if bypassed {
            self.bypasses += 1;
        }
        // In-order retirement: an item cannot retire before its predecessor.
        let retire = self.last_retire.max(finish);
        self.inflight.push_back(InFlight { start, retire });
        self.last_retire = retire;

        self.board.record(&self.reads_buf, &self.writes_buf, finish);
        // Superseded / deleted versions drain once their last recorded use
        // and the superseding item complete; then the tag returns to the pool
        // with a clean hazard slate.
        if let Some(rm) = &mut self.rename {
            for &old in &self.reclaim_buf {
                let (w, r) = self.board.times_of(old);
                self.board.release(old);
                rm.reclaim(old, w.max(r).max(finish));
            }
        }
        self.makespan = self.makespan.max(finish);
        (start, finish, lane, bypassed, exposed_dep)
    }

    /// Drops hazard state that can no longer bind any future start time: on
    /// the out-of-order timeline every vault item starts at or after the
    /// earliest-free lane, and with a full window at or after the oldest
    /// in-flight retire.
    fn prune(&mut self) {
        let mut horizon = self.lanes.iter().copied().min().unwrap_or(0);
        if self.inflight.len() >= self.window {
            horizon = horizon.max(self.inflight.front().map_or(0, |f| f.retire));
        }
        self.board.prune_completed(horizon);
    }

    fn reset(&mut self) {
        for lane in &mut self.lanes {
            *lane = 0;
        }
        self.host_busy = 0;
        self.inflight.clear();
        self.last_retire = 0;
        self.board.clear();
        if let Some(rm) = &mut self.rename {
            rm.clear();
        }
        self.last_write.clear();
        self.makespan = 0;
        self.bypasses = 0;
        self.pressure_cycles = 0;
    }
}

/// A bounded, scoreboarded issue queue over virtual vault lanes.
///
/// The queue is *analytic*: it never simulates cycle-by-cycle, it computes
/// each item's start time as the maximum of its three constraints
/// (issue-window slot, operand readiness, resource availability) and
/// advances the affected timelines. All times are on a virtual clock that
/// starts at 0 and is reset by [`IssueQueue::reset`].
///
/// [`IssueQueue::new`] builds the in-order queue; [`IssueQueue::with_ooo`]
/// adds the renamed out-of-order scheduler on top, in which case the in-order
/// state keeps advancing as the *shadow reference schedule* that prices what
/// the same program costs without renaming (the stall-decomposition baseline
/// and [`IssueQueue::shadow_makespan_cycles`]).
#[derive(Clone, Debug)]
pub struct IssueQueue {
    depth: usize,
    /// Busy-until time per virtual vault lane.
    lanes: Vec<u64>,
    /// Busy-until time of the serial host resource.
    host_busy: u64,
    /// Retire times of the last `depth` issued items, in program order.
    /// Retirement is in order, so the deque is kept non-decreasing.
    window: VecDeque<u64>,
    scoreboard: Scoreboard,
    makespan: u64,
    issued: u64,
    /// The renamed out-of-order scheduler, when armed.
    ooo: Option<Box<OooState>>,
}

impl IssueQueue {
    /// Creates an in-order queue with `depth` in-flight slots over `lanes`
    /// vault lanes. Both are clamped to at least 1.
    #[must_use]
    pub fn new(depth: usize, lanes: usize) -> Self {
        Self {
            depth: depth.max(1),
            lanes: vec![0; lanes.max(1)],
            host_busy: 0,
            window: VecDeque::new(),
            scoreboard: Scoreboard::new(),
            makespan: 0,
            issued: 0,
            ooo: None,
        }
    }

    /// Creates a queue whose items execute on the renamed out-of-order
    /// scheduler: a reorder window of `ooo_window` in-flight instructions
    /// (0 falls back to `depth`) over the same `lanes`, with set-ID renaming
    /// through a pool of `rename_tags` physical tags (0 disables renaming —
    /// the window then reorders under the full logical-ID hazard rules).
    /// The in-order state of `depth` × `lanes` keeps running as the shadow
    /// reference schedule.
    #[must_use]
    pub fn with_ooo(depth: usize, lanes: usize, ooo_window: usize, rename_tags: usize) -> Self {
        let mut queue = Self::new(depth, lanes);
        let window = if ooo_window == 0 {
            queue.depth
        } else {
            ooo_window
        };
        queue.ooo = Some(Box::new(OooState::new(
            window,
            queue.lanes.len(),
            rename_tags,
        )));
        queue
    }

    /// The configured issue-window depth (the in-order window; the shadow
    /// reference window when the out-of-order scheduler is armed).
    #[must_use]
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// The reorder-window capacity, when the out-of-order scheduler is armed.
    #[must_use]
    pub fn ooo_window(&self) -> Option<usize> {
        self.ooo.as_ref().map(|o| o.window)
    }

    /// Whether set-ID renaming is armed.
    #[must_use]
    pub fn renaming(&self) -> bool {
        self.ooo.as_ref().is_some_and(|o| o.rename.is_some())
    }

    /// The number of virtual vault lanes.
    #[must_use]
    pub fn lane_count(&self) -> usize {
        self.lanes.len()
    }

    /// Completion time of the overlapped schedule so far (the out-of-order
    /// schedule when armed, the in-order schedule otherwise).
    #[must_use]
    pub fn makespan_cycles(&self) -> u64 {
        self.ooo.as_ref().map_or(self.makespan, |o| o.makespan)
    }

    /// Completion time of the shadow in-order reference schedule, when the
    /// out-of-order scheduler is armed: what the same program costs at
    /// `depth` × lanes without renaming.
    #[must_use]
    pub fn shadow_makespan_cycles(&self) -> Option<u64> {
        self.ooo.as_ref().map(|_| self.makespan)
    }

    /// Number of items issued since the last reset.
    #[must_use]
    pub fn issued(&self) -> u64 {
        self.issued
    }

    /// Items that started ahead of a program-earlier in-flight instruction
    /// (0 on the in-order path).
    #[must_use]
    pub fn bypasses(&self) -> u64 {
        self.ooo.as_ref().map_or(0, |o| o.bypasses)
    }

    /// Cycles write allocations waited on renaming free-list pressure (the
    /// structural stall of an exhausted physical-tag pool).
    #[must_use]
    pub fn rename_pressure_cycles(&self) -> u64 {
        self.ooo.as_ref().map_or(0, |o| o.pressure_cycles)
    }

    /// Allocations that grew the tag pool past its configured capacity
    /// (more live set versions than physical slots).
    #[must_use]
    pub fn rename_spills(&self) -> u64 {
        self.ooo
            .as_ref()
            .and_then(|o| o.rename.as_ref())
            .map_or(0, RenameMap::spills)
    }

    /// Items currently occupying the active issue window (the reorder window
    /// when the out-of-order scheduler is armed, the in-order window
    /// otherwise) — the queue-depth sample telemetry collectors record.
    #[must_use]
    pub fn in_flight(&self) -> usize {
        self.ooo
            .as_ref()
            .map_or(self.window.len(), |o| o.inflight.len())
    }

    /// Physical tags still allocatable from the renaming pool (`None` when
    /// renaming is off) — the free-tag-pool sample telemetry collectors
    /// record. Versions still draining towards a pending reclaim are not
    /// counted.
    #[must_use]
    pub fn free_tags(&self) -> Option<usize> {
        self.ooo
            .as_ref()
            .and_then(|o| o.rename.as_ref())
            .map(RenameMap::available)
    }

    /// Number of operand IDs (or physical tags) currently carrying hazard
    /// state, across the active and shadow scoreboards (capacity telemetry;
    /// pruning keeps this bounded by the in-flight footprint).
    #[must_use]
    pub fn tracked_operands(&self) -> usize {
        self.scoreboard.tracked() + self.ooo.as_ref().map_or(0, |o| o.board.tracked())
    }

    /// Issues one timed work item producing its written sets: `cycles` of
    /// execution on `kind`, reading `reads` and writing `writes`. Returns
    /// where it landed on the timeline.
    pub fn issue(
        &mut self,
        kind: LaneKind,
        cycles: u64,
        reads: &[SetId],
        writes: &[SetId],
    ) -> IssueOutcome {
        self.issue_op(kind, cycles, reads, writes, WriteIntent::Produce)
    }

    /// Issues one timed work item, with `intent` telling the renaming layer
    /// whether the written sets are produced or killed ([`WriteIntent`]).
    pub fn issue_op(
        &mut self,
        kind: LaneKind,
        cycles: u64,
        reads: &[SetId],
        writes: &[SetId],
        intent: WriteIntent,
    ) -> IssueOutcome {
        // Host items model the serial scalar resource and must not name
        // operand sets: the retire-horizon pruning proof covers vault items
        // only (a host item with hazards could start below the lane-derived
        // horizon and read pruned state). The runtime never issues one.
        assert!(
            kind != LaneKind::Host || (reads.is_empty() && writes.is_empty()),
            "host items must not carry operand sets"
        );
        // The in-order schedule: the only schedule without the out-of-order
        // scheduler, the shadow reference schedule with it.
        let shadow = self.issue_in_order(kind, cycles, reads, writes);
        let outcome = if let Some(ooo) = self.ooo.as_mut() {
            // Decompose the shadow's stall into the true-RAW component (the
            // producer dependence a renamed machine keeps) and the false
            // WAR/WAW remainder, *before* the shadow's finish times are
            // published to the last-producer map.
            let renaming = ooo.rename.is_some();
            let (s_true, s_false) = if renaming {
                let base = shadow.start - shadow.dep_stall;
                let mut ready_true = 0u64;
                for &r in reads {
                    ready_true = ready_true.max(ooo.last_write.get(&r.raw()).copied().unwrap_or(0));
                }
                if intent == WriteIntent::Release {
                    // A renamed delete still consumes the dying version.
                    for &w in writes {
                        ready_true =
                            ready_true.max(ooo.last_write.get(&w.raw()).copied().unwrap_or(0));
                    }
                }
                let s_true = ready_true.saturating_sub(base);
                debug_assert!(s_true <= shadow.dep_stall);
                (s_true, shadow.dep_stall - s_true)
            } else {
                (0, 0)
            };
            if renaming {
                // The last-producer map only feeds the decomposition above.
                for &w in writes {
                    ooo.last_write.insert(w.raw(), shadow.finish);
                }
            }
            let (start, finish, lane, bypassed, exposed_dep) =
                ooo.issue(kind, cycles, reads, writes, intent);
            // The scratch write buffer still holds the physical tags the
            // issue just bound (it is cleared only on the next issue).
            let phys_tag = (renaming && intent == WriteIntent::Produce)
                .then(|| ooo.writes_buf.first().copied())
                .flatten();
            IssueOutcome {
                start,
                finish,
                // With renaming on, report the shadow decomposition (it sums
                // with `false_dep_removed` to the rename-off stall); without
                // renaming the reordered schedule's own exposed stall is the
                // full hazard cost.
                dep_stall: if renaming { s_true } else { exposed_dep },
                false_dep_removed: s_false,
                bypassed,
                lane,
                phys_tag,
            }
        } else {
            shadow
        };
        self.issued += 1;
        if self.issued.is_multiple_of(PRUNE_INTERVAL) {
            self.prune();
        }
        outcome
    }

    /// The in-order scheduling rule: issue-window slot, earliest-free lane,
    /// full RAW/WAW/WAR readiness on logical set IDs.
    fn issue_in_order(
        &mut self,
        kind: LaneKind,
        cycles: u64,
        reads: &[SetId],
        writes: &[SetId],
    ) -> IssueOutcome {
        // Structural constraint: with the window full, the oldest in-flight
        // item must retire (in program order) to free a slot.
        let structural = if self.window.len() >= self.depth {
            self.window.pop_front().unwrap_or(0)
        } else {
            0
        };
        // Resource constraint: the earliest-free vault lane, or the host.
        let (resource_free, lane) = match kind {
            LaneKind::Vault => {
                let (idx, &busy) = self
                    .lanes
                    .iter()
                    .enumerate()
                    .min_by_key(|&(i, &busy)| (busy, i))
                    .expect("at least one lane");
                (busy, Some(idx))
            }
            LaneKind::Host => (self.host_busy, None),
        };
        // Operand constraint: RAW/WAW/WAR hazards on the named sets.
        let ready = self.scoreboard.ready_at(reads, writes);

        let base = structural.max(resource_free);
        let start = base.max(ready);
        let dep_stall = ready.saturating_sub(base);
        let finish = start + cycles;

        match lane {
            Some(idx) => self.lanes[idx] = finish,
            None => self.host_busy = finish,
        }
        // In-order retirement: an item cannot retire before its predecessor.
        let retire = self.window.back().map_or(finish, |&r| r.max(finish));
        self.window.push_back(retire);
        self.scoreboard.record(reads, writes, finish);
        self.makespan = self.makespan.max(finish);
        IssueOutcome {
            start,
            finish,
            dep_stall,
            false_dep_removed: 0,
            bypassed: false,
            lane,
            phys_tag: None,
        }
    }

    /// Prunes retired hazard state from both scoreboards and the shadow
    /// last-producer map. Safe because every future vault item starts at or
    /// after the earliest-free lane (and the oldest in-flight retire once
    /// the window is full), so entries at or below that horizon can never
    /// again bind a start time.
    fn prune(&mut self) {
        let mut horizon = self.lanes.iter().copied().min().unwrap_or(0);
        if self.window.len() >= self.depth {
            horizon = horizon.max(self.window.front().copied().unwrap_or(0));
        }
        self.scoreboard.prune_completed(horizon);
        if let Some(ooo) = &mut self.ooo {
            ooo.last_write.retain(|_, &mut finish| finish > horizon);
            ooo.prune();
        }
    }

    /// Restarts the virtual clock at 0 and forgets all in-flight state (the
    /// load/measure boundary: statistics resets re-zero the timeline too).
    pub fn reset(&mut self) {
        for lane in &mut self.lanes {
            *lane = 0;
        }
        self.host_busy = 0;
        self.window.clear();
        self.scoreboard.clear();
        self.makespan = 0;
        self.issued = 0;
        if let Some(ooo) = &mut self.ooo {
            ooo.reset();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids(raw: &[u32]) -> Vec<SetId> {
        raw.iter().map(|&r| SetId(r)).collect()
    }

    #[test]
    fn depth_one_serialises_everything() {
        let mut q = IssueQueue::new(1, 8);
        let costs = [10u64, 7, 23, 5];
        let mut expected = 0;
        for (i, &c) in costs.iter().enumerate() {
            // Items touch disjoint sets — only the window can serialise them.
            let out = q.issue(LaneKind::Vault, c, &ids(&[i as u32]), &[]);
            assert_eq!(out.start, expected, "item {i} must wait for {expected}");
            assert_eq!(out.dep_stall, 0);
            expected += c;
        }
        assert_eq!(q.makespan_cycles(), costs.iter().sum::<u64>());
    }

    #[test]
    fn independent_items_overlap_across_lanes() {
        let mut q = IssueQueue::new(8, 4);
        for i in 0..4u32 {
            let out = q.issue(LaneKind::Vault, 100, &ids(&[i]), &[]);
            assert_eq!(out.start, 0, "lane {i} should start immediately");
        }
        assert_eq!(q.makespan_cycles(), 100);
        // A fifth item waits for the earliest lane to free up.
        let out = q.issue(LaneKind::Vault, 10, &ids(&[9]), &[]);
        assert_eq!(out.start, 100);
        assert_eq!(out.dep_stall, 0);
    }

    #[test]
    fn raw_dependences_stall_and_are_attributed() {
        let mut q = IssueQueue::new(8, 4);
        let w = q.issue(LaneKind::Vault, 50, &[], &ids(&[1]));
        assert_eq!(w.finish, 50);
        // Reader of set 1 must wait for the write even though lanes are free.
        let r = q.issue(LaneKind::Vault, 10, &ids(&[1]), &[]);
        assert_eq!(r.start, 50);
        assert_eq!(r.dep_stall, 50);
        // An unrelated item overlaps with both.
        let free = q.issue(LaneKind::Vault, 10, &ids(&[2]), &[]);
        assert_eq!(free.start, 0);
    }

    #[test]
    fn host_items_serialise_on_the_host_but_overlap_lane_work() {
        let mut q = IssueQueue::new(8, 4);
        let lane = q.issue(LaneKind::Vault, 100, &ids(&[1]), &[]);
        assert_eq!(lane.start, 0);
        let h1 = q.issue(LaneKind::Host, 30, &[], &[]);
        let h2 = q.issue(LaneKind::Host, 30, &[], &[]);
        assert_eq!(h1.start, 0, "host work overlaps vault work");
        assert_eq!(h2.start, 30, "host work never overlaps itself");
        assert!(h1.lane.is_none() && h2.lane.is_none());
    }

    #[test]
    #[should_panic(expected = "host items must not carry operand sets")]
    fn host_items_with_operands_are_rejected() {
        // The retire-horizon pruning proof covers vault items only; a host
        // item naming sets would be able to start below the lane-derived
        // horizon, so the queue rejects the combination outright.
        let mut q = IssueQueue::new(4, 2);
        q.issue(LaneKind::Host, 10, &ids(&[1]), &[]);
    }

    #[test]
    fn the_window_bounds_in_flight_items() {
        let mut q = IssueQueue::new(2, 16);
        // Three independent long items on 16 free lanes: the third must wait
        // for the first to retire (window depth 2).
        let a = q.issue(LaneKind::Vault, 100, &ids(&[1]), &[]);
        let b = q.issue(LaneKind::Vault, 100, &ids(&[2]), &[]);
        let c = q.issue(LaneKind::Vault, 100, &ids(&[3]), &[]);
        assert_eq!((a.start, b.start), (0, 0));
        assert_eq!(c.start, 100);
        assert_eq!(c.dep_stall, 0, "a structural wait is not a dep stall");
    }

    #[test]
    fn retirement_is_in_program_order() {
        let mut q = IssueQueue::new(2, 16);
        // A long item followed by a short one: the short item finishes first
        // but retires after its predecessor, so the window frees at 100, not
        // at 10.
        q.issue(LaneKind::Vault, 100, &ids(&[1]), &[]);
        q.issue(LaneKind::Vault, 10, &ids(&[2]), &[]);
        let third = q.issue(LaneKind::Vault, 1, &ids(&[3]), &[]);
        assert_eq!(third.start, 100);
    }

    #[test]
    fn reset_restarts_the_clock() {
        let mut q = IssueQueue::new(4, 2);
        q.issue(LaneKind::Vault, 500, &[], &ids(&[1]));
        q.issue(LaneKind::Host, 40, &[], &[]);
        assert!(q.makespan_cycles() > 0);
        q.reset();
        assert_eq!(q.makespan_cycles(), 0);
        assert_eq!(q.issued(), 0);
        let out = q.issue(LaneKind::Vault, 5, &ids(&[1]), &[]);
        assert_eq!(out.start, 0);
    }

    #[test]
    fn degenerate_configurations_are_clamped() {
        let q = IssueQueue::new(0, 0);
        assert_eq!(q.depth(), 1);
        assert_eq!(q.lane_count(), 1);
        let oq = IssueQueue::with_ooo(0, 0, 0, 0);
        assert_eq!(oq.ooo_window(), Some(1), "window falls back to the depth");
        assert!(!oq.renaming());
    }

    #[test]
    fn more_lanes_never_slow_a_schedule_down() {
        // A mixed dependent/independent workload, replayed at increasing lane
        // counts: the makespan must be non-increasing (the property the
        // pipeline_overlap figure's schema check rests on).
        let items: Vec<(u64, Vec<SetId>, Vec<SetId>)> = (0..40u32)
            .map(|i| {
                let cost = 5 + u64::from(i % 7) * 11;
                let reads = ids(&[i % 5, (i * 3) % 11]);
                let writes = if i % 3 == 0 {
                    ids(&[i % 4 + 20])
                } else {
                    vec![]
                };
                (cost, reads, writes)
            })
            .collect();
        let mut last = u64::MAX;
        for lanes in [1usize, 2, 4, 8, 16] {
            let mut q = IssueQueue::new(8, lanes);
            for (cost, reads, writes) in &items {
                q.issue(LaneKind::Vault, *cost, reads, writes);
            }
            assert!(
                q.makespan_cycles() <= last,
                "makespan grew from {last} to {} at {lanes} lanes",
                q.makespan_cycles()
            );
            last = q.makespan_cycles();
        }
    }

    // -----------------------------------------------------------------------
    // The renamed out-of-order path
    // -----------------------------------------------------------------------

    /// A delete/recreate chain over one recycled logical ID: the classic
    /// false-dependence pattern (materialise → read → delete → recreate).
    fn recycled_chain(q: &mut IssueQueue) {
        for _ in 0..8 {
            q.issue(LaneKind::Vault, 10, &[], &ids(&[1])); // create / produce
            q.issue(LaneKind::Vault, 100, &ids(&[1]), &[]); // long read
            q.issue_op(LaneKind::Vault, 5, &[], &ids(&[1]), WriteIntent::Release);
        }
    }

    #[test]
    fn renaming_removes_war_waw_hazards_on_recycled_ids() {
        let mut inorder = IssueQueue::new(8, 8);
        recycled_chain(&mut inorder);
        let mut renamed = IssueQueue::with_ooo(8, 8, 8, 64);
        recycled_chain(&mut renamed);
        assert!(renamed.renaming());
        // In order, every recreate WAR-waits for the previous long read; with
        // renaming the chains run on distinct tags and overlap across lanes.
        assert!(
            renamed.makespan_cycles() < inorder.makespan_cycles(),
            "renamed {} !< in-order {}",
            renamed.makespan_cycles(),
            inorder.makespan_cycles()
        );
        // The shadow reference reproduces the in-order schedule exactly.
        assert_eq!(
            renamed.shadow_makespan_cycles(),
            Some(inorder.makespan_cycles())
        );
        assert!(renamed.bypasses() > 0, "later chains bypass stalled ones");
    }

    #[test]
    fn stall_decomposition_sums_to_the_in_order_stall() {
        // For every item: dep_stall + false_dep_removed (renamed run) equals
        // the in-order run's dep_stall, exactly.
        let items: Vec<(u64, Vec<SetId>, Vec<SetId>, WriteIntent)> = (0..60u32)
            .map(|i| {
                let cost = 3 + u64::from(i % 9) * 7;
                let reads = ids(&[i % 4]);
                let writes = ids(&[(i + 1) % 4]);
                let intent = if i % 5 == 4 {
                    WriteIntent::Release
                } else {
                    WriteIntent::Produce
                };
                (cost, reads, writes, intent)
            })
            .collect();
        let mut inorder = IssueQueue::new(6, 3);
        let mut renamed = IssueQueue::with_ooo(6, 3, 12, 32);
        for (cost, reads, writes, intent) in &items {
            let a = inorder.issue_op(LaneKind::Vault, *cost, reads, writes, *intent);
            let b = renamed.issue_op(LaneKind::Vault, *cost, reads, writes, *intent);
            assert_eq!(
                b.dep_stall + b.false_dep_removed,
                a.dep_stall,
                "decomposition must sum to the in-order stall"
            );
        }
    }

    #[test]
    fn reordering_without_renaming_matches_the_in_order_queue() {
        // With renaming off, the reorder window obeys the same full-hazard
        // rules and the same window arithmetic as an in-order queue of that
        // depth: the two schedules must coincide cycle-for-cycle.
        let items: Vec<(u64, Vec<SetId>, Vec<SetId>)> = (0..50u32)
            .map(|i| (2 + u64::from(i % 6) * 9, ids(&[i % 7]), ids(&[(i * 5) % 9])))
            .collect();
        let mut inorder = IssueQueue::new(5, 4);
        let mut windowed = IssueQueue::with_ooo(1, 4, 5, 0);
        for (cost, reads, writes) in &items {
            let a = inorder.issue(LaneKind::Vault, *cost, reads, writes);
            let b = windowed.issue(LaneKind::Vault, *cost, reads, writes);
            assert_eq!(
                (a.start, a.finish, a.dep_stall),
                (b.start, b.finish, b.dep_stall)
            );
        }
        assert_eq!(inorder.makespan_cycles(), windowed.makespan_cycles());
    }

    #[test]
    fn tag_pressure_is_a_structural_stall() {
        // Two tags, three live versions in flight: the third write waits for
        // the earliest reclaim without charging a dependence stall.
        let mut q = IssueQueue::with_ooo(8, 8, 8, 2);
        q.issue(LaneKind::Vault, 100, &[], &ids(&[0]));
        q.issue(LaneKind::Vault, 100, &[], &ids(&[1]));
        let third = q.issue(LaneKind::Vault, 10, &[], &ids(&[2]));
        assert_eq!(third.dep_stall, 0, "pool pressure is not a dependence");
        assert!(
            q.rename_pressure_cycles() == 0 && q.rename_spills() > 0,
            "no version has a pending reclaim yet: the pool spills"
        );
        // Now versions drain: a pool of two over one logical alternates, and
        // the third write waits for the first version's pending reclaim.
        let mut tight = IssueQueue::with_ooo(8, 8, 8, 2);
        tight.issue(LaneKind::Vault, 100, &[], &ids(&[0])); // tag A, drains at 100
        tight.issue(LaneKind::Vault, 100, &[], &ids(&[0])); // tag B supersedes A
        let third = tight.issue(LaneKind::Vault, 10, &[], &ids(&[0]));
        assert_eq!(third.start, 100, "waits for the first version to drain");
        assert_eq!(third.dep_stall, 0);
        assert_eq!(tight.rename_pressure_cycles(), 100);
        assert_eq!(tight.rename_spills(), 0);
    }

    #[test]
    fn window_growth_never_slows_the_renamed_schedule() {
        let items: Vec<(u64, Vec<SetId>, Vec<SetId>, WriteIntent)> = (0..80u32)
            .map(|i| {
                let cost = 4 + u64::from(i % 5) * 13;
                let reads = ids(&[i % 6, (i * 7) % 11]);
                let writes = ids(&[i % 3]);
                let intent = if i % 7 == 6 {
                    WriteIntent::Release
                } else {
                    WriteIntent::Produce
                };
                (cost, reads, writes, intent)
            })
            .collect();
        let mut last = u64::MAX;
        for window in [1usize, 2, 4, 8, 16, 64] {
            let mut q = IssueQueue::with_ooo(4, 4, window, 128);
            for (cost, reads, writes, intent) in &items {
                q.issue_op(LaneKind::Vault, *cost, reads, writes, *intent);
            }
            assert!(
                q.makespan_cycles() <= last,
                "makespan grew from {last} to {} at window {window}",
                q.makespan_cycles()
            );
            last = q.makespan_cycles();
        }
    }

    #[test]
    fn pruning_keeps_hazard_state_bounded_across_long_programs() {
        // Regression for the scoreboard-growth bug: a queue fed an unbounded
        // stream of distinct operand IDs used to retain hazard state for
        // every ID it ever saw.
        let mut q = IssueQueue::new(4, 2);
        for i in 0..10_000u32 {
            q.issue(LaneKind::Vault, 3, &ids(&[i]), &ids(&[i + 100_000]));
        }
        assert!(
            q.tracked_operands() <= 4 * PRUNE_INTERVAL as usize,
            "in-order hazard state must stay near the in-flight footprint, \
             got {}",
            q.tracked_operands()
        );
        let mut oq = IssueQueue::with_ooo(4, 2, 8, 64);
        for i in 0..10_000u32 {
            oq.issue(LaneKind::Vault, 3, &ids(&[i]), &ids(&[i + 100_000]));
        }
        assert!(
            oq.tracked_operands() <= 8 * PRUNE_INTERVAL as usize,
            "renamed hazard state must stay near the tag-pool footprint, \
             got {}",
            oq.tracked_operands()
        );
    }

    #[test]
    fn pruning_never_changes_the_schedule() {
        // The same dependent workload issued twice, once short enough that no
        // prune fires and once padded past the prune interval with
        // independent filler: the shared prefix must land identically.
        let build = |pad: usize| {
            let mut q = IssueQueue::new(8, 4);
            let mut outcomes = Vec::new();
            for i in 0..pad {
                q.issue(LaneKind::Vault, 1, &ids(&[1_000 + i as u32]), &[]);
            }
            for i in 0..30u32 {
                outcomes.push(q.issue(LaneKind::Vault, 7, &ids(&[i % 3]), &ids(&[(i + 1) % 3])));
            }
            outcomes
                .iter()
                .map(|o| (o.start - outcomes[0].start, o.dep_stall))
                .collect::<Vec<_>>()
        };
        assert_eq!(build(0), build(200), "pruning must be schedule-invariant");
    }

    #[test]
    fn telemetry_getters_expose_tags_and_occupancy() {
        let mut q = IssueQueue::new(4, 2);
        assert_eq!(q.in_flight(), 0);
        assert_eq!(q.free_tags(), None);
        let out = q.issue(LaneKind::Vault, 5, &[], &ids(&[1]));
        assert_eq!(out.phys_tag, None, "no renaming, no tag");
        assert_eq!(q.in_flight(), 1);

        let mut rq = IssueQueue::with_ooo(4, 2, 4, 8);
        assert_eq!(rq.free_tags(), Some(8));
        let w = rq.issue(LaneKind::Vault, 5, &[], &ids(&[1]));
        assert_eq!(w.phys_tag, Some(SetId(0)), "the bound tag is reported");
        assert_eq!(rq.free_tags(), Some(7));
        assert_eq!(rq.in_flight(), 1);
        let r = rq.issue(LaneKind::Vault, 5, &ids(&[1]), &[]);
        assert_eq!(r.phys_tag, None, "read-only items bind no tag");
        let d = rq.issue_op(LaneKind::Vault, 1, &[], &ids(&[1]), WriteIntent::Release);
        assert_eq!(d.phys_tag, None, "a release consumes, it does not produce");
    }

    #[test]
    fn reset_rearms_the_ooo_state() {
        let mut q = IssueQueue::with_ooo(4, 4, 8, 16);
        recycled_chain(&mut q);
        assert!(q.makespan_cycles() > 0);
        q.reset();
        assert_eq!(q.makespan_cycles(), 0);
        assert_eq!(q.bypasses(), 0);
        assert_eq!(q.rename_pressure_cycles(), 0);
        assert_eq!(q.shadow_makespan_cycles(), Some(0));
        let out = q.issue(LaneKind::Vault, 5, &ids(&[1]), &[]);
        assert_eq!(out.start, 0);
    }
}
