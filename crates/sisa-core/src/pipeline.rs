//! The scoreboarded issue queue: overlapping independent SISA instructions
//! across virtual vault lanes.
//!
//! The paper's performance story (§8.4 "Harnessing Parallelism") rests on
//! hundreds of vault cores executing set operations concurrently. A serial
//! cost model — issue, dispatch, retire, one instruction at a time — makes a
//! 16-cube/512-vault machine behave like a single in-order core. This module
//! adds the missing axis as an analytic event-timed pipeline:
//!
//! * an [`IssueQueue`] of bounded `depth` holds in-flight instructions; a new
//!   instruction cannot issue until the instruction `depth` positions ahead
//!   of it has retired (in program order), so depth 1 degenerates to today's
//!   fully serial execution;
//! * a [`crate::Scoreboard`] tracks RAW/WAW/WAR hazards on operand *sets*:
//!   instructions with disjoint live operand sets may overlap, dependent ones
//!   stall, and the stall is attributed to [`IssueOutcome::dep_stall`];
//! * work executes on interchangeable **virtual vault lanes** (a lane stands
//!   for a group of vaults; the count derives from the PNM cube/vault
//!   geometry via [`sisa_pim::PnmConfig::issue_lanes`]) plus a single serial
//!   **host** resource for the scalar loop-control work algorithms report.
//!
//! The queue prices *time*, not *work*: per-unit cycle and energy counters in
//! [`crate::ExecStats`] stay the serial work totals regardless of depth (they
//! are conserved quantities, and every existing figure reports them), while
//! the queue computes [`IssueQueue::makespan_cycles`] — the completion time
//! of the overlapped schedule — and the dependence-stall cycles. Overlap
//! speedup is then simply `work / makespan`, and a depth-1 queue reproduces
//! the serial totals cycle-for-cycle: with one slot in flight every item
//! starts exactly when its predecessor finishes, so the makespan equals the
//! sum of all charged cycles and no dependence stall is ever exposed.

use crate::scoreboard::Scoreboard;
use sisa_isa::SetId;
use std::collections::VecDeque;

/// The execution resource a timed work item occupies.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LaneKind {
    /// A virtual vault lane (set instructions, PNM/PUM execution, link
    /// transfers absorbed from a sharded wrapper).
    Vault,
    /// The single serial host core (scalar loop-control work, result
    /// hand-off). Host items overlap vault work but never each other.
    Host,
}

/// Where one issued item landed on the virtual timeline.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct IssueOutcome {
    /// Cycle at which the item started executing.
    pub start: u64,
    /// Cycle at which the item completes.
    pub finish: u64,
    /// Cycles the item stalled on operand hazards *beyond* what the issue
    /// window and lane availability already imposed (the RAW/WAW/WAR cost).
    pub dep_stall: u64,
    /// The vault lane the item executed on (`None` for host items).
    pub lane: Option<usize>,
}

/// A bounded, scoreboarded issue queue over virtual vault lanes.
///
/// The queue is *analytic*: it never simulates cycle-by-cycle, it computes
/// each item's start time as the maximum of its three constraints
/// (issue-window slot, operand readiness, resource availability) and
/// advances the affected timelines. All times are on a virtual clock that
/// starts at 0 and is reset by [`IssueQueue::reset`].
#[derive(Clone, Debug)]
pub struct IssueQueue {
    depth: usize,
    /// Busy-until time per virtual vault lane.
    lanes: Vec<u64>,
    /// Busy-until time of the serial host resource.
    host_busy: u64,
    /// Retire times of the last `depth` issued items, in program order.
    /// Retirement is in order, so the deque is kept non-decreasing.
    window: VecDeque<u64>,
    scoreboard: Scoreboard,
    makespan: u64,
    issued: u64,
}

impl IssueQueue {
    /// Creates a queue with `depth` in-flight slots over `lanes` vault lanes.
    /// Both are clamped to at least 1.
    #[must_use]
    pub fn new(depth: usize, lanes: usize) -> Self {
        Self {
            depth: depth.max(1),
            lanes: vec![0; lanes.max(1)],
            host_busy: 0,
            window: VecDeque::new(),
            scoreboard: Scoreboard::new(),
            makespan: 0,
            issued: 0,
        }
    }

    /// The configured issue-window depth.
    #[must_use]
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// The number of virtual vault lanes.
    #[must_use]
    pub fn lane_count(&self) -> usize {
        self.lanes.len()
    }

    /// Completion time of the overlapped schedule so far.
    #[must_use]
    pub fn makespan_cycles(&self) -> u64 {
        self.makespan
    }

    /// Number of items issued since the last reset.
    #[must_use]
    pub fn issued(&self) -> u64 {
        self.issued
    }

    /// Issues one timed work item: `cycles` of execution on `kind`, reading
    /// `reads` and writing `writes`. Returns where it landed on the timeline.
    pub fn issue(
        &mut self,
        kind: LaneKind,
        cycles: u64,
        reads: &[SetId],
        writes: &[SetId],
    ) -> IssueOutcome {
        // Structural constraint: with the window full, the oldest in-flight
        // item must retire (in program order) to free a slot.
        let structural = if self.window.len() >= self.depth {
            self.window.pop_front().unwrap_or(0)
        } else {
            0
        };
        // Resource constraint: the earliest-free vault lane, or the host.
        let (resource_free, lane) = match kind {
            LaneKind::Vault => {
                let (idx, &busy) = self
                    .lanes
                    .iter()
                    .enumerate()
                    .min_by_key(|&(i, &busy)| (busy, i))
                    .expect("at least one lane");
                (busy, Some(idx))
            }
            LaneKind::Host => (self.host_busy, None),
        };
        // Operand constraint: RAW/WAW/WAR hazards on the named sets.
        let ready = self.scoreboard.ready_at(reads, writes);

        let base = structural.max(resource_free);
        let start = base.max(ready);
        let dep_stall = ready.saturating_sub(base);
        let finish = start + cycles;

        match lane {
            Some(idx) => self.lanes[idx] = finish,
            None => self.host_busy = finish,
        }
        // In-order retirement: an item cannot retire before its predecessor.
        let retire = self.window.back().map_or(finish, |&r| r.max(finish));
        self.window.push_back(retire);
        self.scoreboard.record(reads, writes, finish);
        self.makespan = self.makespan.max(finish);
        self.issued += 1;
        IssueOutcome {
            start,
            finish,
            dep_stall,
            lane,
        }
    }

    /// Restarts the virtual clock at 0 and forgets all in-flight state (the
    /// load/measure boundary: statistics resets re-zero the timeline too).
    pub fn reset(&mut self) {
        for lane in &mut self.lanes {
            *lane = 0;
        }
        self.host_busy = 0;
        self.window.clear();
        self.scoreboard.clear();
        self.makespan = 0;
        self.issued = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids(raw: &[u32]) -> Vec<SetId> {
        raw.iter().map(|&r| SetId(r)).collect()
    }

    #[test]
    fn depth_one_serialises_everything() {
        let mut q = IssueQueue::new(1, 8);
        let costs = [10u64, 7, 23, 5];
        let mut expected = 0;
        for (i, &c) in costs.iter().enumerate() {
            // Items touch disjoint sets — only the window can serialise them.
            let out = q.issue(LaneKind::Vault, c, &ids(&[i as u32]), &[]);
            assert_eq!(out.start, expected, "item {i} must wait for {expected}");
            assert_eq!(out.dep_stall, 0);
            expected += c;
        }
        assert_eq!(q.makespan_cycles(), costs.iter().sum::<u64>());
    }

    #[test]
    fn independent_items_overlap_across_lanes() {
        let mut q = IssueQueue::new(8, 4);
        for i in 0..4u32 {
            let out = q.issue(LaneKind::Vault, 100, &ids(&[i]), &[]);
            assert_eq!(out.start, 0, "lane {i} should start immediately");
        }
        assert_eq!(q.makespan_cycles(), 100);
        // A fifth item waits for the earliest lane to free up.
        let out = q.issue(LaneKind::Vault, 10, &ids(&[9]), &[]);
        assert_eq!(out.start, 100);
        assert_eq!(out.dep_stall, 0);
    }

    #[test]
    fn raw_dependences_stall_and_are_attributed() {
        let mut q = IssueQueue::new(8, 4);
        let w = q.issue(LaneKind::Vault, 50, &[], &ids(&[1]));
        assert_eq!(w.finish, 50);
        // Reader of set 1 must wait for the write even though lanes are free.
        let r = q.issue(LaneKind::Vault, 10, &ids(&[1]), &[]);
        assert_eq!(r.start, 50);
        assert_eq!(r.dep_stall, 50);
        // An unrelated item overlaps with both.
        let free = q.issue(LaneKind::Vault, 10, &ids(&[2]), &[]);
        assert_eq!(free.start, 0);
    }

    #[test]
    fn host_items_serialise_on_the_host_but_overlap_lane_work() {
        let mut q = IssueQueue::new(8, 4);
        let lane = q.issue(LaneKind::Vault, 100, &ids(&[1]), &[]);
        assert_eq!(lane.start, 0);
        let h1 = q.issue(LaneKind::Host, 30, &[], &[]);
        let h2 = q.issue(LaneKind::Host, 30, &[], &[]);
        assert_eq!(h1.start, 0, "host work overlaps vault work");
        assert_eq!(h2.start, 30, "host work never overlaps itself");
        assert!(h1.lane.is_none() && h2.lane.is_none());
    }

    #[test]
    fn the_window_bounds_in_flight_items() {
        let mut q = IssueQueue::new(2, 16);
        // Three independent long items on 16 free lanes: the third must wait
        // for the first to retire (window depth 2).
        let a = q.issue(LaneKind::Vault, 100, &ids(&[1]), &[]);
        let b = q.issue(LaneKind::Vault, 100, &ids(&[2]), &[]);
        let c = q.issue(LaneKind::Vault, 100, &ids(&[3]), &[]);
        assert_eq!((a.start, b.start), (0, 0));
        assert_eq!(c.start, 100);
        assert_eq!(c.dep_stall, 0, "a structural wait is not a dep stall");
    }

    #[test]
    fn retirement_is_in_program_order() {
        let mut q = IssueQueue::new(2, 16);
        // A long item followed by a short one: the short item finishes first
        // but retires after its predecessor, so the window frees at 100, not
        // at 10.
        q.issue(LaneKind::Vault, 100, &ids(&[1]), &[]);
        q.issue(LaneKind::Vault, 10, &ids(&[2]), &[]);
        let third = q.issue(LaneKind::Vault, 1, &ids(&[3]), &[]);
        assert_eq!(third.start, 100);
    }

    #[test]
    fn reset_restarts_the_clock() {
        let mut q = IssueQueue::new(4, 2);
        q.issue(LaneKind::Vault, 500, &[], &ids(&[1]));
        q.issue(LaneKind::Host, 40, &[], &[]);
        assert!(q.makespan_cycles() > 0);
        q.reset();
        assert_eq!(q.makespan_cycles(), 0);
        assert_eq!(q.issued(), 0);
        let out = q.issue(LaneKind::Vault, 5, &ids(&[1]), &[]);
        assert_eq!(out.start, 0);
    }

    #[test]
    fn degenerate_configurations_are_clamped() {
        let q = IssueQueue::new(0, 0);
        assert_eq!(q.depth(), 1);
        assert_eq!(q.lane_count(), 1);
    }

    #[test]
    fn more_lanes_never_slow_a_schedule_down() {
        // A mixed dependent/independent workload, replayed at increasing lane
        // counts: the makespan must be non-increasing (the property the
        // pipeline_overlap figure's schema check rests on).
        let items: Vec<(u64, Vec<SetId>, Vec<SetId>)> = (0..40u32)
            .map(|i| {
                let cost = 5 + u64::from(i % 7) * 11;
                let reads = ids(&[i % 5, (i * 3) % 11]);
                let writes = if i % 3 == 0 {
                    ids(&[i % 4 + 20])
                } else {
                    vec![]
                };
                (cost, reads, writes)
            })
            .collect();
        let mut last = u64::MAX;
        for lanes in [1usize, 2, 4, 8, 16] {
            let mut q = IssueQueue::new(8, lanes);
            for (cost, reads, writes) in &items {
                q.issue(LaneKind::Vault, *cost, reads, writes);
            }
            assert!(
                q.makespan_cycles() <= last,
                "makespan grew from {last} to {} at {lanes} lanes",
                q.makespan_cycles()
            );
            last = q.makespan_cycles();
        }
    }
}
