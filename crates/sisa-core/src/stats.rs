//! Execution statistics collected by the SISA runtime.

use sisa_isa::SisaOpcode;
use std::collections::BTreeMap;

/// Statistics accumulated while executing SISA instructions.
///
/// Cycles are split by the unit that spends them — the SCU (decode, metadata
/// lookups), SISA-PUM (in-situ bulk bitwise), SISA-PNM (vault cores) and the
/// host (scalar loop-control work reported by algorithms) — so the harness can
/// attribute speedups to the right mechanism.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ExecStats {
    /// Cycles spent in the SISA Controller Unit (fixed delays + SMB/SM).
    pub scu_cycles: u64,
    /// Cycles spent executing bulk bitwise operations in DRAM (SISA-PUM).
    pub pum_cycles: u64,
    /// Cycles spent on logic-layer vault cores (SISA-PNM).
    pub pnm_cycles: u64,
    /// Cycles of host-side scalar work reported by the algorithm.
    pub host_cycles: u64,
    /// Cycles spent moving operands over vault/cube links (cross-shard
    /// transfers in a sharded engine; always 0 for flat engines).
    pub link_cycles: u64,
    /// Bytes moved over vault/cube links by cross-shard transfers.
    pub link_bytes: u64,
    /// Cycles instructions stalled on operand hazards (RAW/WAW/WAR on set
    /// IDs) in the scoreboarded issue queue, beyond what the issue window and
    /// lane availability already imposed. Always 0 for engines that do not
    /// model overlap and for a depth-1 (serial) queue.
    pub dep_stall_cycles: u64,
    /// Completion time of the overlapped schedule on the issue queue's
    /// virtual clock. Equals [`ExecStats::total_cycles`] for a depth-1
    /// (serial) queue; at depth > 1 with several lanes it is at most the
    /// serial total, and `work / makespan` is the overlap speedup. 0 for
    /// engines that do not model overlap (see the README engines table).
    pub makespan_cycles: u64,
    /// False WAR/WAW stall cycles the set-ID renaming layer removed from the
    /// in-order reference schedule. Under renaming, `dep_stall_cycles` is the
    /// true-RAW component of that reference, so `dep_stall_cycles +
    /// false_dep_stalls_removed` equals — exactly, per opcode — the
    /// `dep_stall_cycles` a rename-off run reports on the same program.
    /// Always 0 when renaming is off.
    pub false_dep_stalls_removed: u64,
    /// Instructions that started ahead of a program-earlier instruction
    /// still in the reorder window (out-of-order bypasses; includes
    /// non-instruction timeline items such as result read-outs). Always 0 on
    /// the in-order path.
    pub bypassed_instructions: u64,
    /// Dependence-stall cycles attributed per opcode (the instruction that
    /// stalled), feeding the instruction-mix stall report.
    pub dep_stall_by_opcode: BTreeMap<SisaOpcode, u64>,
    /// False-dependence stall cycles removed by renaming, attributed per
    /// opcode (the instruction the in-order reference would have stalled).
    pub false_dep_removed_by_opcode: BTreeMap<SisaOpcode, u64>,
    /// Out-of-order bypasses attributed per opcode (the instruction that
    /// overtook a stalled predecessor).
    pub bypass_by_opcode: BTreeMap<SisaOpcode, u64>,
    /// Dynamic instruction counts per opcode.
    pub instructions: BTreeMap<SisaOpcode, u64>,
    /// Number of operations dispatched to SISA-PUM.
    pub pum_ops: u64,
    /// Number of operations dispatched to SISA-PNM.
    pub pnm_ops: u64,
    /// Number of sparse operations executed with the merge algorithm.
    pub merge_selected: u64,
    /// Number of sparse operations executed with the galloping algorithm.
    pub gallop_selected: u64,
    /// SMB hits.
    pub smb_hits: u64,
    /// SMB misses.
    pub smb_misses: u64,
    /// Estimated energy in nanojoules.
    pub energy_nj: f64,
    /// Sizes of the operand sets of every executed binary operation, recorded
    /// only when `SisaConfig::track_set_sizes` is on (Figure 9b).
    pub processed_set_sizes: Vec<u32>,
}

impl ExecStats {
    /// Total simulated cycles across all units.
    #[must_use]
    pub fn total_cycles(&self) -> u64 {
        self.scu_cycles + self.pum_cycles + self.pnm_cycles + self.host_cycles + self.link_cycles
    }

    /// Total dynamic SISA instruction count.
    #[must_use]
    pub fn total_instructions(&self) -> u64 {
        self.instructions.values().sum()
    }

    /// Records one executed instruction of the given opcode.
    pub fn record_instruction(&mut self, opcode: SisaOpcode) {
        *self.instructions.entry(opcode).or_insert(0) += 1;
    }

    /// Fraction of PIM-dispatched operations that went to SISA-PUM.
    #[must_use]
    pub fn pum_fraction(&self) -> f64 {
        let total = self.pum_ops + self.pnm_ops;
        if total == 0 {
            0.0
        } else {
            self.pum_ops as f64 / total as f64
        }
    }

    /// Overlap speedup of the scoreboarded issue queue: serial work divided
    /// by the overlapped makespan. 1.0 when no makespan was modelled.
    #[must_use]
    pub fn overlap_speedup(&self) -> f64 {
        if self.makespan_cycles == 0 {
            1.0
        } else {
            self.total_cycles() as f64 / self.makespan_cycles as f64
        }
    }

    /// SMB hit ratio.
    #[must_use]
    pub fn smb_hit_ratio(&self) -> f64 {
        let total = self.smb_hits + self.smb_misses;
        if total == 0 {
            0.0
        } else {
            self.smb_hits as f64 / total as f64
        }
    }

    /// Merges another statistics record into this one. Work counters add;
    /// `makespan_cycles` takes the maximum (merged records model units that
    /// ran in parallel, e.g. the shards of a [`crate::ShardedEngine`]).
    pub fn merge(&mut self, other: &ExecStats) {
        self.scu_cycles += other.scu_cycles;
        self.pum_cycles += other.pum_cycles;
        self.pnm_cycles += other.pnm_cycles;
        self.host_cycles += other.host_cycles;
        self.link_cycles += other.link_cycles;
        self.link_bytes += other.link_bytes;
        self.dep_stall_cycles += other.dep_stall_cycles;
        self.false_dep_stalls_removed += other.false_dep_stalls_removed;
        self.bypassed_instructions += other.bypassed_instructions;
        self.makespan_cycles = self.makespan_cycles.max(other.makespan_cycles);
        for (&op, &n) in &other.dep_stall_by_opcode {
            *self.dep_stall_by_opcode.entry(op).or_insert(0) += n;
        }
        for (&op, &n) in &other.false_dep_removed_by_opcode {
            *self.false_dep_removed_by_opcode.entry(op).or_insert(0) += n;
        }
        for (&op, &n) in &other.bypass_by_opcode {
            *self.bypass_by_opcode.entry(op).or_insert(0) += n;
        }
        for (&op, &n) in &other.instructions {
            *self.instructions.entry(op).or_insert(0) += n;
        }
        self.pum_ops += other.pum_ops;
        self.pnm_ops += other.pnm_ops;
        self.merge_selected += other.merge_selected;
        self.gallop_selected += other.gallop_selected;
        self.smb_hits += other.smb_hits;
        self.smb_misses += other.smb_misses;
        self.energy_nj += other.energy_nj;
        self.processed_set_sizes
            .extend_from_slice(&other.processed_set_sizes);
    }

    /// Takes a cheap snapshot of the current counters, so that the cost of
    /// the operations executed after it can be attributed elsewhere with
    /// [`ExecStats::merge_since`]. The snapshot is allocation-free — opcode
    /// counts go into a fixed `funct7`-indexed array and only the length of
    /// `processed_set_sizes` is recorded, not its contents — because
    /// composite engines checkpoint on every forwarded operation.
    #[must_use]
    pub fn checkpoint(&self) -> StatsCheckpoint {
        let mut instructions = [0u64; StatsCheckpoint::OPCODE_SLOTS];
        for (&op, &n) in &self.instructions {
            instructions[op.funct7() as usize] = n;
        }
        let mut dep_stall_by_opcode = [0u64; StatsCheckpoint::OPCODE_SLOTS];
        for (&op, &n) in &self.dep_stall_by_opcode {
            dep_stall_by_opcode[op.funct7() as usize] = n;
        }
        let mut false_dep_removed_by_opcode = [0u64; StatsCheckpoint::OPCODE_SLOTS];
        for (&op, &n) in &self.false_dep_removed_by_opcode {
            false_dep_removed_by_opcode[op.funct7() as usize] = n;
        }
        let mut bypass_by_opcode = [0u64; StatsCheckpoint::OPCODE_SLOTS];
        for (&op, &n) in &self.bypass_by_opcode {
            bypass_by_opcode[op.funct7() as usize] = n;
        }
        StatsCheckpoint {
            scu_cycles: self.scu_cycles,
            pum_cycles: self.pum_cycles,
            pnm_cycles: self.pnm_cycles,
            host_cycles: self.host_cycles,
            link_cycles: self.link_cycles,
            link_bytes: self.link_bytes,
            dep_stall_cycles: self.dep_stall_cycles,
            false_dep_stalls_removed: self.false_dep_stalls_removed,
            bypassed_instructions: self.bypassed_instructions,
            dep_stall_by_opcode,
            false_dep_removed_by_opcode,
            bypass_by_opcode,
            instructions,
            pum_ops: self.pum_ops,
            pnm_ops: self.pnm_ops,
            merge_selected: self.merge_selected,
            gallop_selected: self.gallop_selected,
            smb_hits: self.smb_hits,
            smb_misses: self.smb_misses,
            energy_nj: self.energy_nj,
            processed_set_sizes_len: self.processed_set_sizes.len(),
        }
    }

    /// Adds `current - at` into `self`: the cost accumulated by the observed
    /// statistics record since the checkpoint was taken. Counters only grow
    /// between checkpoints (statistics resets are handled by re-checkpointing),
    /// so the subtraction is well defined. `makespan_cycles` is not a delta:
    /// the observed record's current makespan is folded in with `max`, exactly
    /// as [`ExecStats::merge`] does, so composite engines track the slowest
    /// parallel unit.
    pub fn merge_since(&mut self, current: &ExecStats, at: &StatsCheckpoint) {
        self.scu_cycles += current.scu_cycles - at.scu_cycles;
        self.pum_cycles += current.pum_cycles - at.pum_cycles;
        self.pnm_cycles += current.pnm_cycles - at.pnm_cycles;
        self.host_cycles += current.host_cycles - at.host_cycles;
        self.link_cycles += current.link_cycles - at.link_cycles;
        self.link_bytes += current.link_bytes - at.link_bytes;
        self.dep_stall_cycles += current.dep_stall_cycles - at.dep_stall_cycles;
        self.false_dep_stalls_removed +=
            current.false_dep_stalls_removed - at.false_dep_stalls_removed;
        self.bypassed_instructions += current.bypassed_instructions - at.bypassed_instructions;
        self.makespan_cycles = self.makespan_cycles.max(current.makespan_cycles);
        for (&op, &n) in &current.dep_stall_by_opcode {
            let before = at.dep_stall_by_opcode[op.funct7() as usize];
            if n > before {
                *self.dep_stall_by_opcode.entry(op).or_insert(0) += n - before;
            }
        }
        for (&op, &n) in &current.false_dep_removed_by_opcode {
            let before = at.false_dep_removed_by_opcode[op.funct7() as usize];
            if n > before {
                *self.false_dep_removed_by_opcode.entry(op).or_insert(0) += n - before;
            }
        }
        for (&op, &n) in &current.bypass_by_opcode {
            let before = at.bypass_by_opcode[op.funct7() as usize];
            if n > before {
                *self.bypass_by_opcode.entry(op).or_insert(0) += n - before;
            }
        }
        for (&op, &n) in &current.instructions {
            let before = at.instructions[op.funct7() as usize];
            if n > before {
                *self.instructions.entry(op).or_insert(0) += n - before;
            }
        }
        self.pum_ops += current.pum_ops - at.pum_ops;
        self.pnm_ops += current.pnm_ops - at.pnm_ops;
        self.merge_selected += current.merge_selected - at.merge_selected;
        self.gallop_selected += current.gallop_selected - at.gallop_selected;
        self.smb_hits += current.smb_hits - at.smb_hits;
        self.smb_misses += current.smb_misses - at.smb_misses;
        self.energy_nj += current.energy_nj - at.energy_nj;
        self.processed_set_sizes
            .extend_from_slice(&current.processed_set_sizes[at.processed_set_sizes_len..]);
    }
}

/// An attribution scope over a live statistics record: everything an engine
/// accrues between [`StatsScope::begin`] and [`StatsScope::finish`] is carved
/// out as a standalone [`ExecStats`] delta.
///
/// This is the public face of the [`ExecStats::checkpoint`] /
/// [`ExecStats::merge_since`] mechanism that composite engines use
/// internally, packaged for *per-query attribution*: a long-lived engine
/// (e.g. one worker of a service pool) opens a scope around each piece of
/// work and bills the resulting delta to whoever asked for it.
///
/// ## Exactness guarantees
///
/// * Every `u64` counter (cycles, bytes, instruction counts, stalls, …)
///   telescopes **exactly**: for any partition of an execution into
///   consecutive scopes, the per-scope deltas sum to precisely the engine's
///   aggregate, because each delta is an integer subtraction of running
///   totals.
/// * `energy_nj` deltas are exact differences of the engine's running `f64`
///   energy total. Recomposing sibling scopes of comparable magnitude is
///   bit-exact (the subtraction is exact by the Sterbenz lemma whenever the
///   running total at most doubles across a scope); wildly unbalanced
///   partitions recompose to within 1 ulp per scope boundary.
/// * `makespan_cycles` is **not** a delta: the scope reports the engine's
///   overlapped-clock position at `finish`, mirroring
///   [`ExecStats::merge_since`].
///
/// ## Example
///
/// ```
/// use sisa_core::{SetEngine, SisaConfig, SisaRuntime, StatsScope};
///
/// let mut rt = SisaRuntime::new(SisaConfig::default());
/// let a = rt.create_sorted([1, 2, 3]);
/// let b = rt.create_sorted([2, 3, 4]);
///
/// let scope = StatsScope::begin(rt.stats());
/// rt.intersect_count(a, b);
/// let per_query = scope.finish(rt.stats());
/// assert!(per_query.total_cycles() > 0);
/// assert_eq!(per_query.total_instructions(), 1);
/// ```
#[derive(Clone, Debug)]
pub struct StatsScope {
    at: StatsCheckpoint,
}

impl StatsScope {
    /// Opens a scope at the record's current counters. The snapshot is
    /// allocation-free, so scoping every query of a busy service is cheap.
    #[must_use]
    pub fn begin(stats: &ExecStats) -> Self {
        StatsScope {
            at: stats.checkpoint(),
        }
    }

    /// Returns the delta accrued since the scope opened (or since the last
    /// `split`) and re-anchors the scope at the record's current counters —
    /// carving one execution into consecutive, exactly-telescoping slices.
    #[must_use]
    pub fn split(&mut self, stats: &ExecStats) -> ExecStats {
        let mut delta = ExecStats::default();
        delta.merge_since(stats, &self.at);
        self.at = stats.checkpoint();
        delta
    }

    /// Closes the scope, returning everything accrued since it opened (or
    /// since the last [`StatsScope::split`]).
    #[must_use]
    pub fn finish(self, stats: &ExecStats) -> ExecStats {
        let mut delta = ExecStats::default();
        delta.merge_since(stats, &self.at);
        delta
    }
}

/// A snapshot of [`ExecStats`] counters taken by [`ExecStats::checkpoint`],
/// used by composite engines (e.g. [`crate::ShardedEngine`]) to attribute the
/// cost of each forwarded operation to an aggregate record.
#[derive(Clone, Debug, PartialEq)]
pub struct StatsCheckpoint {
    scu_cycles: u64,
    pum_cycles: u64,
    pnm_cycles: u64,
    host_cycles: u64,
    link_cycles: u64,
    link_bytes: u64,
    dep_stall_cycles: u64,
    false_dep_stalls_removed: u64,
    bypassed_instructions: u64,
    /// Per-opcode dependence-stall cycles indexed by `funct7`.
    dep_stall_by_opcode: [u64; Self::OPCODE_SLOTS],
    /// Per-opcode removed-false-dependence cycles indexed by `funct7`.
    false_dep_removed_by_opcode: [u64; Self::OPCODE_SLOTS],
    /// Per-opcode out-of-order bypass counts indexed by `funct7`.
    bypass_by_opcode: [u64; Self::OPCODE_SLOTS],
    /// Per-opcode counts indexed by the opcode's 7-bit `funct7` value.
    instructions: [u64; Self::OPCODE_SLOTS],
    pum_ops: u64,
    pnm_ops: u64,
    merge_selected: u64,
    gallop_selected: u64,
    smb_hits: u64,
    smb_misses: u64,
    energy_nj: f64,
    processed_set_sizes_len: usize,
}

impl StatsCheckpoint {
    /// One slot per possible `funct7` value (a 7-bit field).
    const OPCODE_SLOTS: usize = 128;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_and_ratios() {
        let mut s = ExecStats {
            scu_cycles: 10,
            pum_cycles: 20,
            pnm_cycles: 30,
            host_cycles: 40,
            pum_ops: 1,
            pnm_ops: 3,
            smb_hits: 9,
            smb_misses: 1,
            ..ExecStats::default()
        };
        s.record_instruction(SisaOpcode::IntersectAuto);
        s.record_instruction(SisaOpcode::IntersectAuto);
        s.record_instruction(SisaOpcode::UnionAuto);
        assert_eq!(s.total_cycles(), 100);
        assert_eq!(s.total_instructions(), 3);
        assert!((s.pum_fraction() - 0.25).abs() < 1e-12);
        assert!((s.smb_hit_ratio() - 0.9).abs() < 1e-12);
    }

    #[test]
    fn empty_stats_have_zero_ratios() {
        let s = ExecStats::default();
        assert_eq!(s.total_cycles(), 0);
        assert_eq!(s.pum_fraction(), 0.0);
        assert_eq!(s.smb_hit_ratio(), 0.0);
    }

    #[test]
    fn total_cycles_include_link_transfers() {
        let s = ExecStats {
            pnm_cycles: 5,
            link_cycles: 7,
            link_bytes: 64,
            ..ExecStats::default()
        };
        assert_eq!(s.total_cycles(), 12);
    }

    #[test]
    fn checkpoint_delta_matches_direct_merge() {
        let mut base = ExecStats::default();
        base.record_instruction(SisaOpcode::IntersectAuto);
        base.pnm_cycles = 10;
        base.energy_nj = 1.0;
        base.processed_set_sizes.push(4);

        let at = base.checkpoint();
        // Simulate further execution on the same record.
        let mut grown = base.clone();
        grown.record_instruction(SisaOpcode::IntersectAuto);
        grown.record_instruction(SisaOpcode::UnionAuto);
        grown.pnm_cycles += 3;
        grown.scu_cycles += 2;
        grown.link_cycles += 9;
        grown.link_bytes += 128;
        grown.dep_stall_cycles += 6;
        *grown
            .dep_stall_by_opcode
            .entry(SisaOpcode::UnionAuto)
            .or_insert(0) += 6;
        grown.false_dep_stalls_removed += 11;
        *grown
            .false_dep_removed_by_opcode
            .entry(SisaOpcode::DeleteSet)
            .or_insert(0) += 11;
        grown.bypassed_instructions += 2;
        *grown
            .bypass_by_opcode
            .entry(SisaOpcode::IntersectCountAuto)
            .or_insert(0) += 2;
        grown.makespan_cycles = 40;
        grown.energy_nj += 0.5;
        grown.processed_set_sizes.push(8);

        let mut agg = ExecStats::default();
        agg.merge_since(&grown, &at);
        assert_eq!(agg.total_instructions(), 2);
        assert_eq!(agg.instructions[&SisaOpcode::UnionAuto], 1);
        assert_eq!(agg.pnm_cycles, 3);
        assert_eq!(agg.scu_cycles, 2);
        assert_eq!(agg.link_cycles, 9);
        assert_eq!(agg.link_bytes, 128);
        assert_eq!(agg.dep_stall_cycles, 6);
        assert_eq!(agg.dep_stall_by_opcode[&SisaOpcode::UnionAuto], 6);
        assert_eq!(agg.false_dep_stalls_removed, 11);
        assert_eq!(agg.false_dep_removed_by_opcode[&SisaOpcode::DeleteSet], 11);
        assert_eq!(agg.bypassed_instructions, 2);
        assert_eq!(agg.bypass_by_opcode[&SisaOpcode::IntersectCountAuto], 2);
        assert_eq!(
            agg.makespan_cycles, 40,
            "makespan folds in the observed record's current value"
        );
        assert!((agg.energy_nj - 0.5).abs() < 1e-12);
        assert_eq!(agg.processed_set_sizes, vec![8]);
    }

    #[test]
    fn makespan_merges_as_a_maximum_and_stalls_add() {
        let mut a = ExecStats {
            makespan_cycles: 100,
            dep_stall_cycles: 5,
            ..ExecStats::default()
        };
        let b = ExecStats {
            makespan_cycles: 70,
            dep_stall_cycles: 8,
            ..ExecStats::default()
        };
        a.merge(&b);
        assert_eq!(a.makespan_cycles, 100, "parallel units: slowest wins");
        assert_eq!(a.dep_stall_cycles, 13);
    }

    #[test]
    fn overlap_speedup_is_work_over_makespan() {
        let s = ExecStats {
            pnm_cycles: 300,
            makespan_cycles: 100,
            ..ExecStats::default()
        };
        assert!((s.overlap_speedup() - 3.0).abs() < 1e-12);
        assert_eq!(ExecStats::default().overlap_speedup(), 1.0);
    }

    #[test]
    fn merge_accumulates_everything() {
        let mut a = ExecStats::default();
        a.record_instruction(SisaOpcode::IntersectAuto);
        a.pnm_cycles = 5;
        a.processed_set_sizes.push(3);
        let mut b = ExecStats::default();
        b.record_instruction(SisaOpcode::IntersectAuto);
        b.record_instruction(SisaOpcode::Membership);
        b.pum_cycles = 7;
        b.energy_nj = 2.0;
        b.processed_set_sizes.push(9);
        a.merge(&b);
        assert_eq!(a.total_instructions(), 3);
        assert_eq!(a.instructions[&SisaOpcode::IntersectAuto], 2);
        assert_eq!(a.total_cycles(), 12);
        assert_eq!(a.processed_set_sizes, vec![3, 9]);
        assert!((a.energy_nj - 2.0).abs() < 1e-12);
    }
}
