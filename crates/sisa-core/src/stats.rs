//! Execution statistics collected by the SISA runtime.

use sisa_isa::SisaOpcode;
use std::collections::BTreeMap;

/// Statistics accumulated while executing SISA instructions.
///
/// Cycles are split by the unit that spends them — the SCU (decode, metadata
/// lookups), SISA-PUM (in-situ bulk bitwise), SISA-PNM (vault cores) and the
/// host (scalar loop-control work reported by algorithms) — so the harness can
/// attribute speedups to the right mechanism.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ExecStats {
    /// Cycles spent in the SISA Controller Unit (fixed delays + SMB/SM).
    pub scu_cycles: u64,
    /// Cycles spent executing bulk bitwise operations in DRAM (SISA-PUM).
    pub pum_cycles: u64,
    /// Cycles spent on logic-layer vault cores (SISA-PNM).
    pub pnm_cycles: u64,
    /// Cycles of host-side scalar work reported by the algorithm.
    pub host_cycles: u64,
    /// Dynamic instruction counts per opcode.
    pub instructions: BTreeMap<SisaOpcode, u64>,
    /// Number of operations dispatched to SISA-PUM.
    pub pum_ops: u64,
    /// Number of operations dispatched to SISA-PNM.
    pub pnm_ops: u64,
    /// Number of sparse operations executed with the merge algorithm.
    pub merge_selected: u64,
    /// Number of sparse operations executed with the galloping algorithm.
    pub gallop_selected: u64,
    /// SMB hits.
    pub smb_hits: u64,
    /// SMB misses.
    pub smb_misses: u64,
    /// Estimated energy in nanojoules.
    pub energy_nj: f64,
    /// Sizes of the operand sets of every executed binary operation, recorded
    /// only when `SisaConfig::track_set_sizes` is on (Figure 9b).
    pub processed_set_sizes: Vec<u32>,
}

impl ExecStats {
    /// Total simulated cycles across all units.
    #[must_use]
    pub fn total_cycles(&self) -> u64 {
        self.scu_cycles + self.pum_cycles + self.pnm_cycles + self.host_cycles
    }

    /// Total dynamic SISA instruction count.
    #[must_use]
    pub fn total_instructions(&self) -> u64 {
        self.instructions.values().sum()
    }

    /// Records one executed instruction of the given opcode.
    pub fn record_instruction(&mut self, opcode: SisaOpcode) {
        *self.instructions.entry(opcode).or_insert(0) += 1;
    }

    /// Fraction of PIM-dispatched operations that went to SISA-PUM.
    #[must_use]
    pub fn pum_fraction(&self) -> f64 {
        let total = self.pum_ops + self.pnm_ops;
        if total == 0 {
            0.0
        } else {
            self.pum_ops as f64 / total as f64
        }
    }

    /// SMB hit ratio.
    #[must_use]
    pub fn smb_hit_ratio(&self) -> f64 {
        let total = self.smb_hits + self.smb_misses;
        if total == 0 {
            0.0
        } else {
            self.smb_hits as f64 / total as f64
        }
    }

    /// Merges another statistics record into this one.
    pub fn merge(&mut self, other: &ExecStats) {
        self.scu_cycles += other.scu_cycles;
        self.pum_cycles += other.pum_cycles;
        self.pnm_cycles += other.pnm_cycles;
        self.host_cycles += other.host_cycles;
        for (&op, &n) in &other.instructions {
            *self.instructions.entry(op).or_insert(0) += n;
        }
        self.pum_ops += other.pum_ops;
        self.pnm_ops += other.pnm_ops;
        self.merge_selected += other.merge_selected;
        self.gallop_selected += other.gallop_selected;
        self.smb_hits += other.smb_hits;
        self.smb_misses += other.smb_misses;
        self.energy_nj += other.energy_nj;
        self.processed_set_sizes
            .extend_from_slice(&other.processed_set_sizes);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_and_ratios() {
        let mut s = ExecStats {
            scu_cycles: 10,
            pum_cycles: 20,
            pnm_cycles: 30,
            host_cycles: 40,
            pum_ops: 1,
            pnm_ops: 3,
            smb_hits: 9,
            smb_misses: 1,
            ..ExecStats::default()
        };
        s.record_instruction(SisaOpcode::IntersectAuto);
        s.record_instruction(SisaOpcode::IntersectAuto);
        s.record_instruction(SisaOpcode::UnionAuto);
        assert_eq!(s.total_cycles(), 100);
        assert_eq!(s.total_instructions(), 3);
        assert!((s.pum_fraction() - 0.25).abs() < 1e-12);
        assert!((s.smb_hit_ratio() - 0.9).abs() < 1e-12);
    }

    #[test]
    fn empty_stats_have_zero_ratios() {
        let s = ExecStats::default();
        assert_eq!(s.total_cycles(), 0);
        assert_eq!(s.pum_fraction(), 0.0);
        assert_eq!(s.smb_hit_ratio(), 0.0);
    }

    #[test]
    fn merge_accumulates_everything() {
        let mut a = ExecStats::default();
        a.record_instruction(SisaOpcode::IntersectAuto);
        a.pnm_cycles = 5;
        a.processed_set_sizes.push(3);
        let mut b = ExecStats::default();
        b.record_instruction(SisaOpcode::IntersectAuto);
        b.record_instruction(SisaOpcode::Membership);
        b.pum_cycles = 7;
        b.energy_nj = 2.0;
        b.processed_set_sizes.push(9);
        a.merge(&b);
        assert_eq!(a.total_instructions(), 3);
        assert_eq!(a.instructions[&SisaOpcode::IntersectAuto], 2);
        assert_eq!(a.total_cycles(), 12);
        assert_eq!(a.processed_set_sizes, vec![3, 9]);
        assert!((a.energy_nj - 2.0).abs() < 1e-12);
    }
}
