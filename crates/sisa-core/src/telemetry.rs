//! End-to-end telemetry: span collection, Chrome-trace timelines and a
//! metrics registry.
//!
//! The paper's attribution story — *where* do cycles, stalls and inter-cube
//! transfers go — needs a live window into the pipeline, not just the
//! aggregate [`ExecStats`](crate::ExecStats) left behind after a run. This
//! module provides that window as a strictly observer-only layer:
//!
//! * [`Collector`] — the trait every sink implements. The default method
//!   bodies are no-ops, so [`NoopCollector`] is literally free, and a run
//!   with *any* collector attached must leave every result and every
//!   `ExecStats` field bit-exact (pinned by proptest in
//!   `tests/telemetry_properties.rs`).
//! * [`SharedCollector`] — the cloneable `Arc<Mutex<_>>` handle the runtime
//!   and the sharded engine carry; it is what
//!   [`SisaRuntime::attach_collector`](crate::SisaRuntime::attach_collector)
//!   and `ShardedEngine::attach_collector` accept.
//! * [`ChromeTraceCollector`] — records every event and renders the Chrome
//!   trace-event JSON that Perfetto (<https://ui.perfetto.dev>) loads
//!   directly: one track per vault lane, one per shard link, plus counter
//!   tracks for issue-queue depth and the free physical-tag pool.
//! * [`MetricsRegistry`] — counters, gauges and fixed-bucket histograms with
//!   nearest-rank p50/p95/p99 (the same rank rule `sisa-bench` uses), a
//!   serialisable [`MetricsSnapshot`] and a Prometheus-style text rendering.
//!
//! Events carry the *simulated* clock of the issue pipeline (cycle `start`
//! and `finish`), so a rendered timeline reproduces the makespan exactly:
//! `ChromeTraceCollector::recorded_makespan()` equals
//! `ExecStats::makespan_cycles` for the captured engine.

use crate::pipeline::LaneKind;
use crate::SetId;
use serde::{Deserialize, Serialize};
use sisa_isa::SisaOpcode;
use std::collections::BTreeMap;
use std::fmt;
use std::sync::{Arc, Mutex};

/// One instruction (or lane work item) as the issue pipeline timed it.
///
/// `start`/`finish` are simulated cycles on the engine's pipeline clock;
/// `finish - start` includes the dependence stall (`dep_stall`) the
/// scoreboard charged before the operation occupied its lane.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct InstructionEvent {
    /// The track group (shard index for sharded engines, 0 for a flat
    /// runtime) this event belongs to.
    pub group: u32,
    /// The SISA opcode, when the work item was a decoded instruction;
    /// `None` for host-loop charges and absorbed lane work.
    pub opcode: Option<SisaOpcode>,
    /// Which resource class executed the item.
    pub kind: LaneKind,
    /// The vault lane index the item occupied (`None` on the host path).
    pub lane: Option<usize>,
    /// Simulated cycle the item issued (after any dependence stall).
    pub start: u64,
    /// Simulated cycle the item retired.
    pub finish: u64,
    /// Occupancy cycles charged for the item itself.
    pub cycles: u64,
    /// True-dependence stall cycles charged before issue.
    pub dep_stall: u64,
    /// Stall cycles that renaming removed relative to the in-order shadow.
    pub false_dep_removed: u64,
    /// Whether the out-of-order window let the item bypass an older one.
    pub bypassed: bool,
    /// The physical tag renaming allocated for the item's first write
    /// operand (`None` without renaming or for read-only items).
    pub phys_tag: Option<SetId>,
    /// Items in flight in the issue window, sampled just after this issue.
    pub in_flight: usize,
    /// Free physical tags remaining, sampled just after this issue
    /// (`None` when renaming is off).
    pub free_tags: Option<usize>,
}

/// One inter-shard link transfer, as priced by the link model.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TransferEvent {
    /// The track group of the engine that owns the link ledger.
    pub group: u32,
    /// Source shard.
    pub src: usize,
    /// Destination shard.
    pub dst: usize,
    /// Payload bytes moved.
    pub bytes: u64,
    /// Link cycles charged for the transfer.
    pub cycles: u64,
}

/// A telemetry sink. All methods default to no-ops, so implementations opt
/// into exactly the events they care about and an attached collector can
/// never change results, work counters or energy — it only observes.
pub trait Collector {
    /// Called once per timed instruction or lane work item.
    fn instruction(&mut self, _event: &InstructionEvent) {}
    /// Called once per inter-shard link transfer.
    fn transfer(&mut self, _event: &TransferEvent) {}
}

/// The do-nothing sink: attaching it is observationally identical to
/// attaching nothing at all (pinned by proptest).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NoopCollector;

impl Collector for NoopCollector {}

/// A cheaply cloneable, thread-safe handle to one shared [`Collector`].
///
/// Engines hold one of these (the sharded engine clones it into every
/// shard), so events from threaded batch execution interleave safely under
/// the mutex; every event carries its own `group` and simulated timestamps,
/// which makes the rendered timeline independent of arrival order.
#[derive(Clone)]
pub struct SharedCollector(Arc<Mutex<dyn Collector + Send>>);

impl SharedCollector {
    /// Wraps a collector in a fresh shared handle.
    pub fn new(collector: impl Collector + Send + 'static) -> Self {
        SharedCollector(Arc::new(Mutex::new(collector)))
    }

    /// Wraps an existing `Arc<Mutex<_>>` so the caller keeps a typed handle
    /// to read the collector back after the run:
    ///
    /// ```
    /// use sisa_core::telemetry::{ChromeTraceCollector, SharedCollector};
    /// use std::sync::{Arc, Mutex};
    ///
    /// let trace = Arc::new(Mutex::new(ChromeTraceCollector::new()));
    /// let handle = SharedCollector::from_arc(trace.clone());
    /// // ... attach `handle`, run the workload ...
    /// let json = trace.lock().unwrap().render();
    /// assert!(json.contains("traceEvents"));
    /// ```
    #[must_use]
    pub fn from_arc(collector: Arc<Mutex<dyn Collector + Send>>) -> Self {
        SharedCollector(collector)
    }

    /// Forwards one instruction event to the shared sink.
    pub fn instruction(&self, event: &InstructionEvent) {
        self.0.lock().expect("collector lock").instruction(event);
    }

    /// Forwards one transfer event to the shared sink.
    pub fn transfer(&self, event: &TransferEvent) {
        self.0.lock().expect("collector lock").transfer(event);
    }
}

impl fmt::Debug for SharedCollector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("SharedCollector(..)")
    }
}

/// Records every event and renders the Chrome trace-event JSON that
/// Perfetto and `chrome://tracing` load directly.
///
/// Track layout (one *process* per `group`, one *thread* per track):
///
/// * tid 0 — the host lane; tids 1..=L — the vault lanes. Instruction
///   events are `"X"` complete events positioned on the simulated clock.
/// * tids 1000+ — one per `(src, dst)` shard link, carrying transfer
///   occupancy back-to-back (link transfers are priced, not scheduled, so
///   their track shows cumulative busy time rather than wall position).
/// * `"C"` counter tracks `queue depth` and `free tags` sampled at each
///   issue.
#[derive(Clone, Debug, Default)]
pub struct ChromeTraceCollector {
    instructions: Vec<InstructionEvent>,
    transfers: Vec<TransferEvent>,
}

impl ChromeTraceCollector {
    /// An empty trace.
    #[must_use]
    pub fn new() -> Self {
        ChromeTraceCollector::default()
    }

    /// Every recorded instruction event, in arrival order.
    #[must_use]
    pub fn instruction_events(&self) -> &[InstructionEvent] {
        &self.instructions
    }

    /// Every recorded transfer event, in arrival order.
    #[must_use]
    pub fn transfer_events(&self) -> &[TransferEvent] {
        &self.transfers
    }

    /// The maximum retire cycle over every recorded instruction event — by
    /// construction equal to the captured engine's
    /// `ExecStats::makespan_cycles`.
    #[must_use]
    pub fn recorded_makespan(&self) -> u64 {
        self.instructions
            .iter()
            .map(|e| e.finish)
            .max()
            .unwrap_or(0)
    }

    /// The maximum retire cycle recorded for one track group.
    #[must_use]
    pub fn recorded_makespan_for(&self, group: u32) -> u64 {
        self.instructions
            .iter()
            .filter(|e| e.group == group)
            .map(|e| e.finish)
            .max()
            .unwrap_or(0)
    }

    /// Renders the trace as Chrome trace-event JSON (the object form:
    /// `{"traceEvents": [...]}`), loadable in Perfetto unmodified. Durations
    /// are reported in microseconds-as-simulated-cycles (1 cycle = 1 µs on
    /// the viewer's axis).
    #[must_use]
    pub fn render(&self) -> String {
        let mut events: Vec<String> = Vec::new();
        let mut named_threads: BTreeMap<(u32, u64), String> = BTreeMap::new();
        let mut link_tids: BTreeMap<(u32, usize, usize), u64> = BTreeMap::new();
        let mut link_busy: BTreeMap<(u32, usize, usize), u64> = BTreeMap::new();

        for ev in &self.instructions {
            let tid = match (ev.kind, ev.lane) {
                (LaneKind::Host, _) | (_, None) => 0,
                (LaneKind::Vault, Some(lane)) => lane as u64 + 1,
            };
            let thread_name = if tid == 0 {
                "host".to_string()
            } else {
                format!("lane {}", tid - 1)
            };
            named_threads.entry((ev.group, tid)).or_insert(thread_name);
            let name = match ev.opcode {
                Some(op) => op.mnemonic().to_string(),
                None if ev.kind == LaneKind::Host => "host-ops".to_string(),
                None => "lane-work".to_string(),
            };
            let mut args = format!(
                "\"cycles\":{},\"dep_stall\":{},\"false_dep_removed\":{},\"bypassed\":{}",
                ev.cycles, ev.dep_stall, ev.false_dep_removed, ev.bypassed
            );
            if let Some(tag) = ev.phys_tag {
                args.push_str(&format!(",\"phys_tag\":{}", tag.0));
            }
            events.push(format!(
                "{{\"name\":{},\"ph\":\"X\",\"pid\":{},\"tid\":{tid},\"ts\":{},\"dur\":{},\"args\":{{{args}}}}}",
                json_string(&name),
                ev.group,
                ev.start,
                ev.finish.saturating_sub(ev.start).max(1),
            ));
            events.push(format!(
                "{{\"name\":\"queue depth\",\"ph\":\"C\",\"pid\":{},\"tid\":0,\"ts\":{},\"args\":{{\"in_flight\":{}}}}}",
                ev.group, ev.start, ev.in_flight
            ));
            if let Some(free) = ev.free_tags {
                events.push(format!(
                    "{{\"name\":\"free tags\",\"ph\":\"C\",\"pid\":{},\"tid\":0,\"ts\":{},\"args\":{{\"free\":{free}}}}}",
                    ev.group, ev.start
                ));
            }
        }

        for ev in &self.transfers {
            let key = (ev.group, ev.src, ev.dst);
            let next_tid = 1000 + link_tids.len() as u64;
            let tid = *link_tids.entry(key).or_insert(next_tid);
            named_threads
                .entry((ev.group, tid))
                .or_insert_with(|| format!("link {}->{}", ev.src, ev.dst));
            let at = link_busy.entry(key).or_insert(0);
            events.push(format!(
                "{{\"name\":\"transfer\",\"ph\":\"X\",\"pid\":{},\"tid\":{tid},\"ts\":{},\"dur\":{},\"args\":{{\"bytes\":{},\"src\":{},\"dst\":{}}}}}",
                ev.group,
                *at,
                ev.cycles.max(1),
                ev.bytes,
                ev.src,
                ev.dst,
            ));
            *at += ev.cycles.max(1);
        }

        let mut meta: Vec<String> = Vec::new();
        let mut named_pids: BTreeMap<u32, ()> = BTreeMap::new();
        for ((pid, tid), name) in &named_threads {
            if named_pids.insert(*pid, ()).is_none() {
                meta.push(format!(
                    "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{pid},\"args\":{{\"name\":{}}}}}",
                    json_string(&format!("track {pid}"))
                ));
            }
            meta.push(format!(
                "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":{pid},\"tid\":{tid},\"args\":{{\"name\":{}}}}}",
                json_string(name)
            ));
        }

        let mut out = String::from("{\"traceEvents\":[");
        let mut first = true;
        for chunk in meta.iter().chain(events.iter()) {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(chunk);
        }
        out.push_str("],\"displayTimeUnit\":\"ms\"}");
        out
    }
}

impl Collector for ChromeTraceCollector {
    fn instruction(&mut self, event: &InstructionEvent) {
        self.instructions.push(*event);
    }

    fn transfer(&mut self, event: &TransferEvent) {
        self.transfers.push(*event);
    }
}

fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// A fixed-bucket histogram: power-of-two upper bounds plus an overflow
/// bucket, with nearest-rank percentiles over the bucket counts (the same
/// rank rule — `ceil(p/100 · n)` — that `sisa-bench` applies to raw
/// samples; a bucketed observation reports its bucket's upper bound).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Histogram {
    bounds: Vec<u64>,
    counts: Vec<u64>,
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Histogram {
    /// A histogram over the given ascending upper bounds (an overflow
    /// bucket is appended automatically).
    ///
    /// # Panics
    ///
    /// Panics when `bounds` is empty or not strictly ascending.
    #[must_use]
    pub fn with_bounds(bounds: Vec<u64>) -> Self {
        assert!(!bounds.is_empty(), "histogram needs at least one bound");
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly ascending"
        );
        let buckets = bounds.len() + 1;
        Histogram {
            bounds,
            counts: vec![0; buckets],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// The default latency histogram: power-of-four bounds from 1 µs to
    /// ~4.6 min in nanoseconds.
    #[must_use]
    pub fn latency_ns() -> Self {
        Histogram::with_bounds((5..=19).map(|i| 1u64 << (2 * i)).collect())
    }

    /// Records one observation.
    pub fn observe(&mut self, value: u64) {
        let idx = self
            .bounds
            .iter()
            .position(|&b| value <= b)
            .unwrap_or(self.bounds.len());
        self.counts[idx] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Observations recorded so far.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// The nearest-rank percentile (`pct` in 0..=100): the upper bound of
    /// the bucket holding the rank-`ceil(pct/100 · n)` observation, with the
    /// overflow bucket reporting the exact recorded maximum. Returns 0 with
    /// no observations.
    #[must_use]
    pub fn percentile(&self, pct: u64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = (pct * self.count).div_ceil(100).max(1);
        let mut seen = 0;
        for (idx, &n) in self.counts.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return if idx < self.bounds.len() {
                    self.bounds[idx]
                } else {
                    self.max
                };
            }
        }
        self.max
    }

    fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            count: self.count,
            sum: self.sum,
            min: if self.count == 0 { 0 } else { self.min },
            max: self.max,
            p50: self.percentile(50),
            p95: self.percentile(95),
            p99: self.percentile(99),
            buckets: self
                .bounds
                .iter()
                .copied()
                .chain(std::iter::once(u64::MAX))
                .zip(self.counts.iter().copied())
                .map(|(le, count)| BucketCount { le, count })
                .collect(),
        }
    }
}

/// One bucket of a [`HistogramSnapshot`]; `le == u64::MAX` marks the
/// overflow (`+Inf`) bucket.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct BucketCount {
    /// Inclusive upper bound of the bucket.
    pub le: u64,
    /// Observations that fell into this bucket.
    pub count: u64,
}

/// A serialisable point-in-time view of one histogram.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct HistogramSnapshot {
    /// Observations recorded.
    pub count: u64,
    /// Sum of all observed values (saturating).
    pub sum: u64,
    /// Smallest observation (0 when empty).
    pub min: u64,
    /// Largest observation.
    pub max: u64,
    /// Nearest-rank 50th percentile (bucket upper bound).
    pub p50: u64,
    /// Nearest-rank 95th percentile (bucket upper bound).
    pub p95: u64,
    /// Nearest-rank 99th percentile (bucket upper bound).
    pub p99: u64,
    /// Per-bucket counts, ascending by bound.
    pub buckets: Vec<BucketCount>,
}

/// A point-in-time view of the whole registry: the JSON form of the
/// service's `metrics` wire frame.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct MetricsSnapshot {
    /// Monotonic counters by name.
    pub counters: BTreeMap<String, u64>,
    /// Last-set gauge values by name.
    pub gauges: BTreeMap<String, i64>,
    /// Histograms by name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

impl MetricsSnapshot {
    /// Renders the snapshot in the Prometheus text exposition format.
    /// Names may embed a label set (`name{label="v"}`); the `# TYPE` header
    /// uses the bare name before the label block.
    #[must_use]
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        let mut typed: BTreeMap<String, ()> = BTreeMap::new();
        let mut type_line = |out: &mut String, name: &str, kind: &str| {
            let base = name.split('{').next().unwrap_or(name);
            if typed.insert(base.to_string(), ()).is_none() {
                out.push_str(&format!("# TYPE {base} {kind}\n"));
            }
        };
        for (name, value) in &self.counters {
            type_line(&mut out, name, "counter");
            out.push_str(&format!("{name} {value}\n"));
        }
        for (name, value) in &self.gauges {
            type_line(&mut out, name, "gauge");
            out.push_str(&format!("{name} {value}\n"));
        }
        for (name, hist) in &self.histograms {
            type_line(&mut out, name, "histogram");
            let mut cumulative = 0;
            for bucket in &hist.buckets {
                cumulative += bucket.count;
                let le = if bucket.le == u64::MAX {
                    "+Inf".to_string()
                } else {
                    bucket.le.to_string()
                };
                out.push_str(&format!("{name}_bucket{{le=\"{le}\"}} {cumulative}\n"));
            }
            out.push_str(&format!("{name}_sum {}\n", hist.sum));
            out.push_str(&format!("{name}_count {}\n", hist.count));
        }
        out
    }
}

#[derive(Debug, Default)]
struct RegistryInner {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, i64>,
    histograms: BTreeMap<String, Histogram>,
}

/// A thread-safe metrics registry: named counters, gauges and fixed-bucket
/// histograms, created lazily on first touch. The service's admission
/// controller, dispatcher, registry ledger and worker pool all write here;
/// the TCP `metrics` frame exposes [`MetricsRegistry::snapshot`].
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    inner: Mutex<RegistryInner>,
}

impl MetricsRegistry {
    /// An empty registry.
    #[must_use]
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    /// Adds `delta` to the named monotonic counter.
    pub fn counter_add(&self, name: &str, delta: u64) {
        let mut inner = self.inner.lock().expect("metrics lock");
        *inner.counters.entry(name.to_string()).or_insert(0) += delta;
    }

    /// Reads the named counter (0 if never touched).
    #[must_use]
    pub fn counter(&self, name: &str) -> u64 {
        let inner = self.inner.lock().expect("metrics lock");
        inner.counters.get(name).copied().unwrap_or(0)
    }

    /// Sets the named gauge.
    pub fn gauge_set(&self, name: &str, value: i64) {
        let mut inner = self.inner.lock().expect("metrics lock");
        inner.gauges.insert(name.to_string(), value);
    }

    /// Adds `delta` (possibly negative) to the named gauge.
    pub fn gauge_add(&self, name: &str, delta: i64) {
        let mut inner = self.inner.lock().expect("metrics lock");
        *inner.gauges.entry(name.to_string()).or_insert(0) += delta;
    }

    /// Removes the named gauge entirely (it disappears from snapshots and
    /// the Prometheus exposition). Writers with per-entity labels — e.g. the
    /// service's `{tenant="..."}` gauges — call this when the entity's state
    /// is pruned, so label cardinality stays bounded by *active* entities
    /// instead of growing with every entity ever seen. Returns whether the
    /// gauge existed.
    pub fn gauge_remove(&self, name: &str) -> bool {
        let mut inner = self.inner.lock().expect("metrics lock");
        inner.gauges.remove(name).is_some()
    }

    /// Records one observation into the named latency histogram (created
    /// with [`Histogram::latency_ns`] bounds on first touch).
    pub fn observe(&self, name: &str, value: u64) {
        let mut inner = self.inner.lock().expect("metrics lock");
        inner
            .histograms
            .entry(name.to_string())
            .or_insert_with(Histogram::latency_ns)
            .observe(value);
    }

    /// A consistent snapshot of every metric.
    #[must_use]
    pub fn snapshot(&self) -> MetricsSnapshot {
        let inner = self.inner.lock().expect("metrics lock");
        MetricsSnapshot {
            counters: inner.counters.clone(),
            gauges: inner.gauges.clone(),
            histograms: inner
                .histograms
                .iter()
                .map(|(name, hist)| (name.clone(), hist.snapshot()))
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn event(group: u32, lane: Option<usize>, start: u64, finish: u64) -> InstructionEvent {
        InstructionEvent {
            group,
            opcode: Some(SisaOpcode::IntersectMerge),
            kind: if lane.is_some() {
                LaneKind::Vault
            } else {
                LaneKind::Host
            },
            lane,
            start,
            finish,
            cycles: finish - start,
            dep_stall: 0,
            false_dep_removed: 0,
            bypassed: false,
            phys_tag: None,
            in_flight: 1,
            free_tags: None,
        }
    }

    #[test]
    fn chrome_trace_records_makespan_and_renders_tracks() {
        let mut trace = ChromeTraceCollector::new();
        trace.instruction(&event(0, Some(0), 0, 10));
        trace.instruction(&event(0, Some(1), 4, 25));
        trace.instruction(&event(1, None, 0, 7));
        trace.transfer(&TransferEvent {
            group: 0,
            src: 0,
            dst: 1,
            bytes: 64,
            cycles: 9,
        });
        assert_eq!(trace.recorded_makespan(), 25);
        assert_eq!(trace.recorded_makespan_for(1), 7);
        let json = trace.render();
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.contains("\"thread_name\""));
        assert!(json.contains("\"lane 1\""));
        assert!(json.contains("\"link 0->1\""));
        assert!(json.contains("\"queue depth\""));
        assert!(json.contains(&format!("\"{}\"", SisaOpcode::IntersectMerge.mnemonic())));
    }

    #[test]
    fn histogram_percentiles_use_nearest_rank() {
        let mut h = Histogram::with_bounds(vec![10, 100, 1000]);
        for v in [1, 2, 3, 50, 70, 200, 500, 900, 950, 5000] {
            h.observe(v);
        }
        assert_eq!(h.count(), 10);
        // rank(p50) = 5 -> the 5th observation (70) sits in the (10, 100]
        // bucket, reported as its upper bound.
        assert_eq!(h.percentile(50), 100);
        // rank(p95) = 10 -> overflow bucket reports the exact max.
        assert_eq!(h.percentile(95), 5000);
        assert_eq!(h.percentile(99), 5000);
        let snap = h.snapshot();
        assert_eq!(snap.count, 10);
        assert_eq!(snap.min, 1);
        assert_eq!(snap.max, 5000);
        assert_eq!(snap.buckets.iter().map(|b| b.count).sum::<u64>(), 10);
        assert_eq!(snap.buckets.last().unwrap().le, u64::MAX);
    }

    #[test]
    fn registry_snapshot_round_trips_and_renders_prometheus() {
        let reg = MetricsRegistry::new();
        reg.counter_add("sisa_queries_completed_total", 3);
        reg.counter_add("sisa_queries_completed_total", 1);
        reg.gauge_set("sisa_admission_in_flight", 2);
        reg.gauge_add("sisa_admission_in_flight", -1);
        reg.observe("sisa_query_latency_ns", 1 << 11);
        reg.observe("sisa_query_latency_ns", 1 << 21);
        assert_eq!(reg.counter("sisa_queries_completed_total"), 4);

        let snap = reg.snapshot();
        let json = serde_json::to_string(&snap).unwrap();
        let back: MetricsSnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(back, snap);

        let text = snap.to_prometheus();
        assert!(text.contains("# TYPE sisa_queries_completed_total counter"));
        assert!(text.contains("sisa_queries_completed_total 4\n"));
        assert!(text.contains("sisa_admission_in_flight 1\n"));
        assert!(text.contains("# TYPE sisa_query_latency_ns histogram"));
        assert!(text.contains("sisa_query_latency_ns_bucket{le=\"+Inf\"} 2\n"));
        assert!(text.contains("sisa_query_latency_ns_count 2\n"));
    }

    #[test]
    fn removed_gauges_disappear_from_snapshots() {
        let reg = MetricsRegistry::new();
        reg.gauge_set("sisa_tenant_in_flight{tenant=\"gone\"}", 3);
        reg.gauge_set("sisa_tenant_in_flight{tenant=\"kept\"}", 1);
        assert!(reg.gauge_remove("sisa_tenant_in_flight{tenant=\"gone\"}"));
        assert!(
            !reg.gauge_remove("sisa_tenant_in_flight{tenant=\"gone\"}"),
            "second removal reports absence"
        );
        let snap = reg.snapshot();
        assert!(!snap
            .gauges
            .contains_key("sisa_tenant_in_flight{tenant=\"gone\"}"));
        assert_eq!(snap.gauges["sisa_tenant_in_flight{tenant=\"kept\"}"], 1);
        assert!(!snap.to_prometheus().contains("gone"));
    }

    #[test]
    fn labelled_names_share_one_type_header() {
        let reg = MetricsRegistry::new();
        reg.gauge_set("sisa_tenant_in_flight{tenant=\"a\"}", 1);
        reg.gauge_set("sisa_tenant_in_flight{tenant=\"b\"}", 2);
        let text = reg.snapshot().to_prometheus();
        assert_eq!(
            text.matches("# TYPE sisa_tenant_in_flight gauge").count(),
            1
        );
        assert!(text.contains("sisa_tenant_in_flight{tenant=\"a\"} 1\n"));
    }

    #[test]
    fn shared_collector_fans_into_one_sink() {
        let trace = Arc::new(Mutex::new(ChromeTraceCollector::new()));
        let handle = SharedCollector::from_arc(trace.clone());
        let clone = handle.clone();
        handle.instruction(&event(0, Some(0), 0, 4));
        clone.instruction(&event(0, Some(1), 2, 9));
        assert_eq!(trace.lock().unwrap().instruction_events().len(), 2);
        assert_eq!(trace.lock().unwrap().recorded_makespan(), 9);
    }
}
