//! Replaying a captured trace against any [`SetEngine`].
//!
//! [`Interpreter::replay`] walks the events of a [`TraceSink`] and re-executes
//! each one on a target engine, translating the trace's set IDs to the IDs the
//! target engine allocates. Replaying a complete trace into a fresh
//! [`crate::SisaRuntime`] with the same configuration reproduces the original
//! run's [`crate::ExecStats`] cycle-for-cycle (the SCU's decisions depend only
//! on the set metadata, which the replayed operations rebuild identically);
//! replaying into a [`crate::HostEngine`] re-prices the same instruction
//! stream on the baseline CPU model instead.
//!
//! Replay routes through the same scoreboarded issue queue as live execution,
//! so a captured trace can also be *re-scheduled*: replaying into a runtime
//! configured with a deeper queue or more virtual lanes
//! ([`crate::SisaConfig::with_pipeline`]) conserves every work counter while
//! the overlapped makespan shrinks — the property `tests/pipeline_replay.rs`
//! pins on the checked-in triangle-count fixture.

use crate::engine::SetEngine;
use crate::scu::BinarySetOp;
use crate::trace::{TraceOp, TraceSink};
use sisa_isa::SetId;
use std::collections::HashMap;

/// Summary of one replay.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ReplayReport {
    /// Number of trace events re-executed.
    pub events: usize,
    /// The subset of `events` that were SISA instructions.
    pub instructions: usize,
    /// Whether the trace covered the whole original run (a bounded sink may
    /// have dropped the tail; the replay is then a faithful prefix).
    pub complete: bool,
}

/// Replays captured traces against a [`SetEngine`].
#[derive(Clone, Copy, Debug, Default)]
pub struct Interpreter;

impl Interpreter {
    /// Re-executes every event of `trace` on `engine`.
    ///
    /// # Panics
    ///
    /// Panics if the trace references a set that was never created in it —
    /// which cannot happen for traces captured from the start of a
    /// [`crate::SisaRuntime`]'s life (a bounded sink only ever drops the
    /// *tail* of a run).
    pub fn replay<E: SetEngine>(trace: &TraceSink, engine: &mut E) -> ReplayReport {
        let mut ids: HashMap<SetId, SetId> = HashMap::new();
        let mut instructions = 0usize;
        for event in trace.events() {
            if event.instruction.is_some() {
                instructions += 1;
            }
            match &event.op {
                TraceOp::SetUniverse { n } => engine.set_universe(*n),
                TraceOp::ResetStats => engine.reset_stats(),
                TraceOp::Create { id, repr } => {
                    let local = engine.create(repr.clone());
                    ids.insert(*id, local);
                }
                TraceOp::Clone { src, dst } => {
                    let local = engine.clone_set(Self::resolve(&ids, *src));
                    ids.insert(*dst, local);
                }
                TraceOp::Delete { id } => {
                    engine.delete(Self::resolve(&ids, *id));
                    ids.remove(id);
                }
                TraceOp::Cardinality { id } => {
                    let _ = engine.cardinality(Self::resolve(&ids, *id));
                }
                TraceOp::Membership { id, v } => {
                    let _ = engine.contains(Self::resolve(&ids, *id), *v);
                }
                TraceOp::Insert { id, v } => {
                    let _ = engine.insert(Self::resolve(&ids, *id), *v);
                }
                TraceOp::Remove { id, v } => {
                    let _ = engine.remove(Self::resolve(&ids, *id), *v);
                }
                TraceOp::Binary { op, a, b, dst } => {
                    let (a, b) = (Self::resolve(&ids, *a), Self::resolve(&ids, *b));
                    let local = match op {
                        BinarySetOp::Intersection => engine.intersect(a, b),
                        BinarySetOp::Union => engine.union(a, b),
                        BinarySetOp::Difference => engine.difference(a, b),
                    };
                    ids.insert(*dst, local);
                }
                TraceOp::BinaryCount { op, a, b } => {
                    let (a, b) = (Self::resolve(&ids, *a), Self::resolve(&ids, *b));
                    let _ = match op {
                        BinarySetOp::Intersection => engine.intersect_count(a, b),
                        BinarySetOp::Union => engine.union_count(a, b),
                        BinarySetOp::Difference => engine.difference_count(a, b),
                    };
                }
                TraceOp::BinaryAssign { op, a, b } => {
                    let (a, b) = (Self::resolve(&ids, *a), Self::resolve(&ids, *b));
                    match op {
                        BinarySetOp::Intersection => engine.intersect_assign(a, b),
                        BinarySetOp::Union => engine.union_assign(a, b),
                        BinarySetOp::Difference => engine.difference_assign(a, b),
                    }
                }
                TraceOp::Members { id } => {
                    let _ = engine.members(Self::resolve(&ids, *id));
                }
                TraceOp::HostOps { n } => engine.host_ops(*n),
            }
        }
        ReplayReport {
            events: trace.events().len(),
            instructions,
            complete: trace.is_complete(),
        }
    }

    fn resolve(ids: &HashMap<SetId, SetId>, id: SetId) -> SetId {
        *ids.get(&id)
            .unwrap_or_else(|| panic!("trace references unknown set {id}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SisaConfig;
    use crate::runtime::SisaRuntime;

    /// A small but representative workload: lifecycle, element ops, all three
    /// binary families with counting and in-place variants, queries, reads.
    fn run_workload<E: SetEngine>(engine: &mut E) {
        engine.set_universe(128);
        let a = engine.create_sorted([1, 2, 3, 40, 90]);
        let b = engine.create_dense([2, 3, 4, 80]);
        engine.reset_stats();
        let c = engine.intersect(a, b);
        let _ = engine.union_count(a, b);
        let d = engine.difference(b, a);
        engine.union_assign(c, d);
        engine.insert(c, 100);
        engine.remove(c, 2);
        let _ = engine.cardinality(c);
        let _ = engine.contains(c, 100);
        let _ = engine.members(c);
        engine.host_ops(17);
        let e = engine.clone_set(c);
        engine.delete(d);
        engine.delete(e);
    }

    #[test]
    fn replay_reproduces_exec_stats_cycle_for_cycle() {
        let mut original = SisaRuntime::new(SisaConfig::default());
        original.enable_default_trace();
        run_workload(&mut original);
        let trace = original.take_trace().unwrap();

        let mut replayed = SisaRuntime::new(SisaConfig::default());
        let report = Interpreter::replay(&trace, &mut replayed);
        assert!(report.complete);
        assert!(report.instructions > 0);
        assert_eq!(report.events, trace.len());
        assert_eq!(replayed.stats(), original.stats());
        assert_eq!(replayed.live_sets(), original.live_sets());
    }

    #[test]
    fn replay_reproduces_functional_state() {
        let mut original = SisaRuntime::new(SisaConfig::default());
        original.enable_default_trace();
        original.set_universe(64);
        let a = original.create_sorted([5, 6, 7]);
        let b = original.create_dense([6, 7, 8]);
        let c = original.intersect(a, b);
        let trace = original.take_trace().unwrap();

        let mut replayed = SisaRuntime::new(SisaConfig::default());
        Interpreter::replay(&trace, &mut replayed);
        // A fresh runtime allocates the same IDs for the same event order.
        assert_eq!(replayed.members(c), original.members(c));
    }

    #[test]
    fn truncated_traces_replay_as_a_prefix() {
        let mut original = SisaRuntime::new(SisaConfig::default());
        original.enable_trace(3); // SetUniverse + two creates
        original.set_universe(32);
        let a = original.create_sorted([1]);
        let b = original.create_sorted([2]);
        let _ = original.intersect(a, b); // dropped
        let trace = original.take_trace().unwrap();
        assert!(!trace.is_complete());

        let mut replayed = SisaRuntime::new(SisaConfig::default());
        let report = Interpreter::replay(&trace, &mut replayed);
        assert!(!report.complete);
        assert_eq!(replayed.live_sets(), 2);
    }
}
