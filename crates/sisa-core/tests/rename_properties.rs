//! Differential property tests for the set-ID renaming + out-of-order issue
//! layer, pinning the contract that scheduling changes *when* instructions
//! execute, never *what* they cost or compute:
//!
//! 1. **Agreement** — random programs run at (rename off, depth 1),
//!    (rename off, depth N) and (rename on, window M) must produce identical
//!    observable results, identical serial work counters (per-unit cycles,
//!    per-opcode counts, SMB traffic) and the bit-identical f64 energy sum.
//! 2. **Monotonicity** — the renamed makespan is non-increasing as the
//!    reorder window grows and as the physical-tag pool grows, and never
//!    exceeds the serial work total.
//! 3. **Stall accounting** — on every run, the renamed pipeline's
//!    `dep_stall_cycles` (true RAW) plus `false_dep_stalls_removed`
//!    reconstructs the rename-off run's dependence-stall report exactly,
//!    in total and per opcode.
//! 4. **Degeneration** — a reorder window without renaming is bit-identical
//!    to the in-order pipeline of the same depth, and rename-on at window 1
//!    still reproduces the serial work totals.

use proptest::prelude::*;
use sisa_core::{ExecStats, SetEngine, SisaConfig, SisaRuntime};
use sisa_sets::Vertex;
use std::collections::BTreeSet;

const UNIVERSE: usize = 256;

fn vertex_set() -> impl Strategy<Value = BTreeSet<Vertex>> {
    proptest::collection::btree_set(0u32..UNIVERSE as u32, 0..64)
}

/// One step of a random workload, biased towards the temporary-recycling
/// patterns (materialise → read → delete → recreate) whose WAR/WAW hazards
/// the renaming layer exists to break.
#[derive(Clone, Debug)]
enum Step {
    /// Materialise `a ∩ b`, read it back, delete it (the ID recycles).
    TempIntersect,
    /// Materialise `a ∪ b`, count against `a`, delete it.
    TempUnion,
    /// Materialise `a \ b`, insert into it, delete it.
    TempDifference,
    /// Clone `b`, read the clone, delete it.
    TempClone,
    IntersectCount,
    UnionCount,
    DifferenceCount,
    UnionAssign,
    DifferenceAssign,
    Insert(Vertex),
    Remove(Vertex),
    Contains(Vertex),
    Cardinality,
    Members,
    HostOps(u64),
}

/// Decodes a random integer into one workload step (the vendored proptest
/// shim has no `prop_oneof`, so the variant choice and its payload are both
/// derived from a single draw).
fn step() -> impl Strategy<Value = Step> {
    (0u64..1_000_000).prop_map(|raw| {
        let v = ((raw / 16) % UNIVERSE as u64) as Vertex;
        match raw % 15 {
            0 | 1 => Step::TempIntersect,
            2 => Step::TempUnion,
            3 => Step::TempDifference,
            4 => Step::TempClone,
            5 => Step::IntersectCount,
            6 => Step::UnionCount,
            7 => Step::DifferenceCount,
            8 => Step::UnionAssign,
            9 => Step::DifferenceAssign,
            10 => Step::Insert(v),
            11 => Step::Remove(v),
            12 => Step::Contains(v),
            13 => Step::Cardinality,
            _ => {
                if raw % 2 == 0 {
                    Step::Members
                } else {
                    Step::HostOps(raw % 31 + 1)
                }
            }
        }
    })
}

/// Executes a workload over two seed sets (one sorted, one dense) on a fresh
/// runtime of the given configuration; returns the runtime and the observable
/// results. Statistics are reset after seeding so every configuration prices
/// the identical measured region.
fn run_steps(
    config: SisaConfig,
    a_members: &BTreeSet<Vertex>,
    b_members: &BTreeSet<Vertex>,
    steps: &[Step],
) -> (SisaRuntime, Vec<Vec<Vertex>>) {
    let mut rt = SisaRuntime::new(config);
    rt.set_universe(UNIVERSE);
    let a = rt.create_sorted(a_members.iter().copied());
    let b = rt.create_dense(b_members.iter().copied());
    rt.reset_stats();
    let mut observed = Vec::new();
    let scalar = |x: usize| vec![x as Vertex];
    for s in steps {
        match s {
            Step::TempIntersect => {
                let t = rt.intersect(a, b);
                observed.push(rt.members(t));
                rt.delete(t);
            }
            Step::TempUnion => {
                let t = rt.union(a, b);
                observed.push(scalar(rt.intersect_count(t, a)));
                rt.delete(t);
            }
            Step::TempDifference => {
                let t = rt.difference(a, b);
                rt.insert(t, 7);
                observed.push(scalar(rt.cardinality(t)));
                rt.delete(t);
            }
            Step::TempClone => {
                let t = rt.clone_set(b);
                observed.push(rt.members(t));
                rt.delete(t);
            }
            Step::IntersectCount => observed.push(scalar(rt.intersect_count(a, b))),
            Step::UnionCount => observed.push(scalar(rt.union_count(a, b))),
            Step::DifferenceCount => observed.push(scalar(rt.difference_count(a, b))),
            Step::UnionAssign => {
                rt.union_assign(a, b);
                observed.push(scalar(rt.cardinality(a)));
            }
            Step::DifferenceAssign => {
                rt.difference_assign(a, b);
                observed.push(scalar(rt.cardinality(a)));
            }
            Step::Insert(v) => observed.push(scalar(usize::from(rt.insert(a, *v)))),
            Step::Remove(v) => observed.push(scalar(usize::from(rt.remove(b, *v)))),
            Step::Contains(v) => observed.push(scalar(usize::from(rt.contains(a, *v)))),
            Step::Cardinality => {
                observed.push(scalar(rt.cardinality(a)));
                observed.push(scalar(rt.cardinality(b)));
            }
            Step::Members => {
                observed.push(rt.members(a));
                observed.push(rt.members(b));
            }
            Step::HostOps(n) => rt.host_ops(*n),
        }
    }
    (rt, observed)
}

/// Strips the scheduling view (makespan, stall decomposition, bypasses) off
/// a statistics record, leaving only the serial work counters that every
/// configuration must conserve bit-for-bit.
fn work_only(stats: &ExecStats) -> ExecStats {
    let mut work = stats.clone();
    work.makespan_cycles = 0;
    work.dep_stall_cycles = 0;
    work.dep_stall_by_opcode.clear();
    work.false_dep_stalls_removed = 0;
    work.false_dep_removed_by_opcode.clear();
    work.bypassed_instructions = 0;
    work.bypass_by_opcode.clear();
    work
}

proptest! {
    /// (1) + (4) Serial, deep in-order and renamed runs agree on results,
    /// serial work counters and the exact f64 energy sum; a renamed run never
    /// schedules past the serial total.
    #[test]
    fn serial_deep_and_renamed_runs_agree_on_results_work_and_energy(
        a in vertex_set(),
        b in vertex_set(),
        steps in proptest::collection::vec(step(), 1..40),
    ) {
        let (serial, from_serial) = run_steps(SisaConfig::default(), &a, &b, &steps);
        let (deep, from_deep) = run_steps(SisaConfig::with_pipeline(8, 4), &a, &b, &steps);
        let (renamed, from_renamed) =
            run_steps(SisaConfig::with_rename_ooo(8, 4, 12, 48), &a, &b, &steps);

        prop_assert_eq!(&from_serial, &from_deep);
        prop_assert_eq!(&from_serial, &from_renamed);
        prop_assert_eq!(serial.live_sets(), renamed.live_sets());

        // Serial work counters — including the exact f64 energy sum — are
        // conserved by every scheduler.
        let reference = work_only(serial.stats());
        prop_assert_eq!(&work_only(deep.stats()), &reference);
        prop_assert_eq!(&work_only(renamed.stats()), &reference);
        prop_assert!(
            renamed.stats().energy_nj.to_bits() == serial.stats().energy_nj.to_bits(),
            "energy must be bit-identical, not approximately equal"
        );

        // The schedule can only shrink relative to serial work.
        prop_assert_eq!(serial.stats().makespan_cycles, serial.stats().total_cycles());
        prop_assert!(renamed.stats().makespan_cycles <= serial.stats().total_cycles());
        prop_assert!(renamed.stats().makespan_cycles <= deep.stats().makespan_cycles);
    }

    /// (2) The renamed makespan is monotone non-increasing in the reorder
    /// window and in the tag-pool size.
    #[test]
    fn renamed_makespan_is_monotone_in_window_and_tags(
        a in vertex_set(),
        b in vertex_set(),
        steps in proptest::collection::vec(step(), 1..30),
    ) {
        let mut last = u64::MAX;
        for window in [1usize, 2, 4, 8, 32] {
            let (rt, _) =
                run_steps(SisaConfig::with_rename_ooo(window, 4, window, 64), &a, &b, &steps);
            prop_assert!(
                rt.stats().makespan_cycles <= last,
                "makespan grew from {} to {} at window {}",
                last, rt.stats().makespan_cycles, window
            );
            last = rt.stats().makespan_cycles;
        }
        let mut last = u64::MAX;
        for tags in [1usize, 2, 8, 32, 128] {
            let (rt, _) =
                run_steps(SisaConfig::with_rename_ooo(8, 4, 8, tags), &a, &b, &steps);
            prop_assert!(
                rt.stats().makespan_cycles <= last,
                "makespan grew from {} to {} at {} tags",
                last, rt.stats().makespan_cycles, tags
            );
            last = rt.stats().makespan_cycles;
        }
    }

    /// (3) Stall-accounting invariant: true RAW + removed false dependences
    /// under rename-on reconstructs the rename-off dependence-stall report on
    /// the same program — exactly, in total and per opcode.
    #[test]
    fn stall_decomposition_reconstructs_the_rename_off_report(
        a in vertex_set(),
        b in vertex_set(),
        steps in proptest::collection::vec(step(), 1..40),
    ) {
        for (depth, lanes, window, tags) in
            [(1usize, 2usize, 4usize, 16usize), (4, 4, 4, 64), (8, 4, 16, 8)]
        {
            let (plain, _) = run_steps(SisaConfig::with_pipeline(depth, lanes), &a, &b, &steps);
            let (renamed, _) =
                run_steps(SisaConfig::with_rename_ooo(depth, lanes, window, tags), &a, &b, &steps);

            prop_assert_eq!(
                renamed.stats().dep_stall_cycles + renamed.stats().false_dep_stalls_removed,
                plain.stats().dep_stall_cycles,
                "total decomposition at depth {} window {} tags {}",
                depth, window, tags
            );
            let mut recombined = renamed.stats().dep_stall_by_opcode.clone();
            for (&op, &n) in &renamed.stats().false_dep_removed_by_opcode {
                *recombined.entry(op).or_insert(0) += n;
            }
            prop_assert_eq!(
                &recombined,
                &plain.stats().dep_stall_by_opcode,
                "per-opcode decomposition at depth {} window {} tags {}",
                depth, window, tags
            );
        }
    }

    /// (4) A reorder window without renaming degenerates to the in-order
    /// pipeline of the same depth, bit for bit — every statistic, including
    /// the makespan and the stall report.
    #[test]
    fn reordering_without_renaming_is_the_in_order_pipeline(
        a in vertex_set(),
        b in vertex_set(),
        steps in proptest::collection::vec(step(), 1..30),
    ) {
        let (inorder, from_inorder) = run_steps(SisaConfig::with_pipeline(6, 4), &a, &b, &steps);
        let (windowed, from_windowed) =
            run_steps(SisaConfig::with_rename_ooo(1, 4, 6, 0), &a, &b, &steps);
        prop_assert_eq!(&from_inorder, &from_windowed);
        // The windowed run reports its own (out-of-order path) makespan and
        // stalls; they must coincide with the in-order queue's exactly.
        let mut in_stats = inorder.stats().clone();
        let mut win_stats = windowed.stats().clone();
        prop_assert_eq!(win_stats.makespan_cycles, in_stats.makespan_cycles);
        prop_assert_eq!(win_stats.dep_stall_cycles, in_stats.dep_stall_cycles);
        // Bypass telemetry is the one deliberate difference (the in-order
        // path never counts bypasses); normalise it away and the records
        // must be identical.
        in_stats.bypassed_instructions = 0;
        in_stats.bypass_by_opcode.clear();
        win_stats.bypassed_instructions = 0;
        win_stats.bypass_by_opcode.clear();
        prop_assert_eq!(&in_stats, &win_stats);
    }
}
