//! Regression tests for the public [`StatsScope`] attribution API: nested
//! scopes must recompose **exactly** — every `u64` counter and, for the
//! balanced partitions a query service produces, the `f64` energy total
//! bit-for-bit — to the engine's aggregate record.

use sisa_core::{
    BatchOp, ExecStats, PartitionStrategy, SetEngine, ShardedEngine, SisaConfig, SisaRuntime,
    StatsScope,
};

/// A deterministic slab of engine work, sized by `rounds`. Two calls with the
/// same `rounds` cost a comparable amount, which keeps sibling scopes within
/// the Sterbenz window where energy recomposition is exact.
fn workload<E: SetEngine>(rt: &mut E, rounds: u32, salt: u32) -> u64 {
    let mut acc = 0u64;
    for r in 0..rounds {
        let base = (r * 7 + salt) % 53;
        let a = rt.create_sorted([base, base + 2, base + 5, base + 9, base + 14]);
        let b = rt.create_sorted([base + 2, base + 3, base + 9, base + 21]);
        acc += rt.intersect_count(a, b) as u64;
        let c = rt.union(a, b);
        acc += rt.cardinality(c) as u64;
        acc += u64::from(rt.contains(c, base + 3));
        rt.host_ops(3);
        rt.delete(a);
        rt.delete(b);
        rt.delete(c);
    }
    acc
}

fn assert_bit_exact(sum: &ExecStats, aggregate: &ExecStats) {
    assert_eq!(
        sum.energy_nj.to_bits(),
        aggregate.energy_nj.to_bits(),
        "scope energy must recompose bit-exactly: {} vs {}",
        sum.energy_nj,
        aggregate.energy_nj
    );
    assert_eq!(sum, aggregate, "scope deltas must recompose exactly");
}

#[test]
fn nested_scopes_sum_exactly_to_flat_engine_aggregate() {
    let mut rt = SisaRuntime::new(SisaConfig::default());

    let outer = StatsScope::begin(rt.stats());
    let inner_a = StatsScope::begin(rt.stats());
    workload(&mut rt, 40, 1);
    let delta_a = inner_a.finish(rt.stats());
    let inner_b = StatsScope::begin(rt.stats());
    workload(&mut rt, 40, 2);
    let delta_b = inner_b.finish(rt.stats());
    let delta_outer = outer.finish(rt.stats());

    assert!(delta_a.total_cycles() > 0 && delta_b.total_cycles() > 0);
    let mut sum = delta_a.clone();
    sum.merge(&delta_b);
    assert_bit_exact(&sum, &delta_outer);

    // The outermost scope covered the engine's whole life, so it must also
    // equal the aggregate record itself.
    assert_bit_exact(&delta_outer, rt.stats());
}

#[test]
fn split_carves_consecutive_exactly_telescoping_slices() {
    let mut rt = SisaRuntime::new(SisaConfig::default());
    let mut scope = StatsScope::begin(rt.stats());
    let mut sum = ExecStats::default();
    for salt in 0..4 {
        workload(&mut rt, 25, salt);
        sum.merge(&scope.split(rt.stats()));
    }
    assert_bit_exact(&sum, rt.stats());
}

#[test]
fn scopes_attribute_sharded_batch_execution_exactly() {
    let mut engine = ShardedEngine::sisa(4, PartitionStrategy::Modulo, SisaConfig::default());

    let outer = StatsScope::begin(engine.stats());

    let inner_a = StatsScope::begin(engine.stats());
    let a = engine.create_sorted([1, 5, 9, 13, 40, 77]);
    let b = engine.create_sorted([5, 9, 40, 81, 90]);
    let batch: Vec<BatchOp> = (0..32).map(|_| BatchOp::IntersectCount(a, b)).collect();
    let results = engine.execute(&batch);
    assert!(results.iter().all(|r| r.count() == 3));
    let delta_a = inner_a.finish(engine.stats());

    let inner_b = StatsScope::begin(engine.stats());
    let results = engine.execute(&batch);
    assert_eq!(results.len(), 32);
    let delta_b = inner_b.finish(engine.stats());

    let delta_outer = outer.finish(engine.stats());

    let mut sum = delta_a.clone();
    sum.merge(&delta_b);
    assert_bit_exact(&sum, &delta_outer);
    assert_bit_exact(&delta_outer, engine.stats());
}

#[test]
fn u64_counters_telescope_under_unbalanced_partitions() {
    // Energy recomposition is only guaranteed bit-exact for balanced
    // siblings; the integer counters must telescope for *any* partition.
    let mut rt = SisaRuntime::new(SisaConfig::default());
    let mut scope = StatsScope::begin(rt.stats());
    let mut sum = ExecStats::default();
    for (rounds, salt) in [(1u32, 0u32), (90, 1), (3, 2), (55, 3)] {
        workload(&mut rt, rounds, salt);
        sum.merge(&scope.split(rt.stats()));
    }
    let agg = rt.stats();
    assert_eq!(sum.total_cycles(), agg.total_cycles());
    assert_eq!(sum.total_instructions(), agg.total_instructions());
    assert_eq!(sum.scu_cycles, agg.scu_cycles);
    assert_eq!(sum.pum_cycles, agg.pum_cycles);
    assert_eq!(sum.pnm_cycles, agg.pnm_cycles);
    assert_eq!(sum.host_cycles, agg.host_cycles);
    assert_eq!(sum.pum_ops, agg.pum_ops);
    assert_eq!(sum.pnm_ops, agg.pnm_ops);
    assert_eq!(sum.smb_hits, agg.smb_hits);
    assert_eq!(sum.smb_misses, agg.smb_misses);
    assert_eq!(sum.instructions, agg.instructions);
    let rel = (sum.energy_nj - agg.energy_nj).abs() / agg.energy_nj.max(1.0);
    assert!(
        rel < 1e-12,
        "energy drift {rel} exceeds 1 ulp-ish tolerance"
    );
}
