//! Property-based tests for the `SetEngine` boundary:
//!
//! 1. **Trace replay fidelity** — replaying a captured trace through the
//!    [`Interpreter`] into a fresh [`SisaRuntime`] reproduces the original
//!    run's [`sisa_core::ExecStats`] exactly, for arbitrary operation
//!    sequences.
//! 2. **Backend agreement** — [`HostEngine`] and [`SisaRuntime`] compute the
//!    same set-algebra results across every representation pairing
//!    (sorted × sorted, sorted × dense, dense × dense).
//! 3. **Functional oracle** — the cost-free [`FunctionalEngine`] executes the
//!    same workloads and every priced backend must agree with it, while its
//!    statistics stay identically zero.

use proptest::prelude::*;
use sisa_core::{
    ExecStats, FunctionalEngine, HostEngine, Interpreter, SetEngine, SisaConfig, SisaRuntime,
};
use sisa_sets::Vertex;
use std::collections::BTreeSet;

const UNIVERSE: usize = 256;

fn vertex_set() -> impl Strategy<Value = BTreeSet<Vertex>> {
    proptest::collection::btree_set(0u32..UNIVERSE as u32, 0..64)
}

/// One step of a random engine workload. Every binary-operation family is
/// covered in all three forms — materialising, counting and in-place — so the
/// differential tests exercise the full Table 5 instruction surface, not just
/// the materialising paths.
#[derive(Clone, Debug)]
enum Step {
    Intersect,
    Union,
    Difference,
    IntersectCount,
    UnionCount,
    DifferenceCount,
    IntersectAssign,
    UnionAssign,
    DifferenceAssign,
    Insert(Vertex),
    Remove(Vertex),
    Contains(Vertex),
    Cardinality,
    Members,
    CloneAndDelete,
    HostOps(u64),
}

/// Decodes a random integer into one workload step (the vendored proptest
/// shim has no `prop_oneof`, so the variant choice and its payload are both
/// derived from a single draw).
fn step() -> impl Strategy<Value = Step> {
    (0u64..1_000_000).prop_map(|raw| {
        let v = ((raw / 16) % UNIVERSE as u64) as Vertex;
        match raw % 16 {
            0 => Step::Intersect,
            1 => Step::Union,
            2 => Step::Difference,
            3 => Step::IntersectCount,
            4 => Step::UnionCount,
            5 => Step::DifferenceCount,
            6 => Step::IntersectAssign,
            7 => Step::UnionAssign,
            8 => Step::DifferenceAssign,
            9 => Step::Insert(v),
            10 => Step::Remove(v),
            11 => Step::Contains(v),
            12 => Step::Cardinality,
            13 => Step::Members,
            14 => Step::CloneAndDelete,
            _ => Step::HostOps(raw % 31 + 1),
        }
    })
}

/// Executes a workload over the two seed sets (one sorted, one dense, so the
/// SCU sees mixed representation pairings) and collects observable results.
fn run_steps<E: SetEngine>(
    engine: &mut E,
    a_members: &BTreeSet<Vertex>,
    b_members: &BTreeSet<Vertex>,
    steps: &[Step],
) -> Vec<Vec<Vertex>> {
    engine.set_universe(UNIVERSE);
    let a = engine.create_sorted(a_members.iter().copied());
    let b = engine.create_dense(b_members.iter().copied());
    let mut observed = Vec::new();
    let scalar = |x: usize| vec![x as Vertex];
    for s in steps {
        match s {
            Step::Intersect => {
                let c = engine.intersect(a, b);
                observed.push(engine.members(c));
                engine.delete(c);
            }
            Step::Union => {
                let c = engine.union(a, b);
                observed.push(engine.members(c));
                engine.delete(c);
            }
            Step::Difference => {
                let c = engine.difference(a, b);
                observed.push(engine.members(c));
                engine.delete(c);
            }
            Step::IntersectCount => observed.push(scalar(engine.intersect_count(a, b))),
            Step::UnionCount => observed.push(scalar(engine.union_count(a, b))),
            Step::DifferenceCount => observed.push(scalar(engine.difference_count(a, b))),
            Step::IntersectAssign => {
                engine.intersect_assign(a, b);
                observed.push(engine.members(a));
            }
            Step::UnionAssign => {
                engine.union_assign(a, b);
                observed.push(engine.members(a));
            }
            Step::DifferenceAssign => {
                engine.difference_assign(a, b);
                observed.push(engine.members(a));
            }
            Step::Insert(v) => observed.push(scalar(usize::from(engine.insert(a, *v)))),
            Step::Remove(v) => observed.push(scalar(usize::from(engine.remove(b, *v)))),
            Step::Contains(v) => observed.push(scalar(usize::from(engine.contains(a, *v)))),
            Step::Cardinality => {
                observed.push(scalar(engine.cardinality(a)));
                observed.push(scalar(engine.cardinality(b)));
            }
            Step::Members => {
                observed.push(engine.members(a));
                observed.push(engine.members(b));
            }
            Step::CloneAndDelete => {
                let c = engine.clone_set(b);
                observed.push(engine.members(c));
                engine.delete(c);
            }
            Step::HostOps(n) => engine.host_ops(*n),
        }
    }
    observed
}

proptest! {
    /// (a) Replaying a captured trace reproduces `ExecStats` exactly.
    #[test]
    fn trace_replay_reproduces_exec_stats(
        a in vertex_set(),
        b in vertex_set(),
        steps in proptest::collection::vec(step(), 1..40),
    ) {
        let mut original = SisaRuntime::new(SisaConfig::default());
        original.enable_default_trace();
        let _ = run_steps(&mut original, &a, &b, &steps);
        let trace = original.take_trace().expect("trace attached");
        prop_assert!(trace.is_complete());

        let mut replayed = SisaRuntime::new(SisaConfig::default());
        let report = Interpreter::replay(&trace, &mut replayed);
        prop_assert!(report.complete);
        prop_assert_eq!(replayed.stats(), original.stats());
        prop_assert_eq!(replayed.live_sets(), original.live_sets());
    }

    /// (b) The CPU backend and the SISA runtime agree on every observable
    /// result across representation pairings.
    #[test]
    fn host_engine_and_sisa_runtime_agree(
        a in vertex_set(),
        b in vertex_set(),
        steps in proptest::collection::vec(step(), 1..40),
    ) {
        let mut sisa = SisaRuntime::new(SisaConfig::default());
        let mut host = HostEngine::with_defaults();
        let from_sisa = run_steps(&mut sisa, &a, &b, &steps);
        let from_host = run_steps(&mut host, &a, &b, &steps);
        prop_assert_eq!(from_sisa, from_host);
        prop_assert_eq!(sisa.live_sets(), host.live_sets());
    }

    /// (c) The functional engine is an oracle: the priced backends agree with
    /// its results on every workload, and running it costs nothing.
    #[test]
    fn functional_engine_is_an_oracle_for_priced_backends(
        a in vertex_set(),
        b in vertex_set(),
        steps in proptest::collection::vec(step(), 1..40),
    ) {
        let mut oracle = FunctionalEngine::new();
        let mut sisa = SisaRuntime::new(SisaConfig::default());
        let expected = run_steps(&mut oracle, &a, &b, &steps);
        let from_sisa = run_steps(&mut sisa, &a, &b, &steps);
        prop_assert_eq!(&expected, &from_sisa);
        prop_assert_eq!(oracle.live_sets(), sisa.live_sets());
        prop_assert_eq!(oracle.stats(), &ExecStats::default());
    }

    /// (d) A depth-1 issue queue *is* the flat serial runtime, cycle for
    /// cycle including energy: the makespan collapses onto the serial work
    /// total, no dependence stall is ever exposed, and every work counter —
    /// per-unit cycles, per-opcode counts, SMB traffic, the exact f64 energy
    /// sum — is identical at any queue depth (the queue prices time, not
    /// work). Deeper queues may only shorten the makespan, never grow it.
    #[test]
    fn depth_one_issue_queue_reproduces_serial_exec_stats(
        a in vertex_set(),
        b in vertex_set(),
        steps in proptest::collection::vec(step(), 1..40),
    ) {
        let mut serial = SisaRuntime::new(SisaConfig::default());
        let from_serial = run_steps(&mut serial, &a, &b, &steps);
        prop_assert_eq!(serial.config().issue_depth, 1);
        prop_assert_eq!(
            serial.stats().makespan_cycles,
            serial.stats().total_cycles(),
            "depth 1: the overlapped timeline degenerates to serial"
        );
        prop_assert_eq!(serial.stats().dep_stall_cycles, 0);

        for (depth, lanes) in [(1usize, 1usize), (8, 4), (32, 16)] {
            let mut deep = SisaRuntime::new(SisaConfig::with_pipeline(depth, lanes));
            let observed = run_steps(&mut deep, &a, &b, &steps);
            prop_assert_eq!(&from_serial, &observed, "depth {} x {} lanes", depth, lanes);

            // Work counters are conserved exactly — compare the full records
            // with the timing fields normalised away.
            let mut serial_work = serial.stats().clone();
            let mut deep_work = deep.stats().clone();
            prop_assert!(deep_work.makespan_cycles <= serial_work.makespan_cycles);
            serial_work.makespan_cycles = 0;
            deep_work.makespan_cycles = 0;
            serial_work.dep_stall_cycles = 0;
            deep_work.dep_stall_cycles = 0;
            serial_work.dep_stall_by_opcode.clear();
            deep_work.dep_stall_by_opcode.clear();
            prop_assert_eq!(&serial_work, &deep_work, "depth {} x {} lanes", depth, lanes);

            if depth == 1 {
                // Any 1-deep queue is serial regardless of lane count.
                prop_assert_eq!(deep.stats(), serial.stats());
            }
        }
    }
}
