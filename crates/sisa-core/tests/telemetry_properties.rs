//! Property-based tests pinning telemetry's observer-only contract:
//!
//! 1. **Invariance** — a run with no collector, with [`NoopCollector`] and
//!    with [`ChromeTraceCollector`] attached produces identical observable
//!    results and bit-identical [`ExecStats`] (exact `f64` energy included),
//!    on the flat runtime and on a sharded engine, across the in-order,
//!    pipelined and renamed out-of-order configurations.
//! 2. **Makespan fidelity** — the Chrome trace's recorded event span (the
//!    maximum retire cycle over every instruction event) equals
//!    `ExecStats::makespan_cycles` exactly, per engine, which is the claim
//!    the `trace_timeline` figure asserts on a real dataset.

use proptest::prelude::*;
use sisa_core::telemetry::{ChromeTraceCollector, NoopCollector, SharedCollector};
use sisa_core::{ExecStats, PartitionStrategy, SetEngine, ShardedEngine, SisaConfig, SisaRuntime};
use sisa_sets::Vertex;
use std::collections::BTreeSet;
use std::sync::{Arc, Mutex};

const UNIVERSE: usize = 128;

fn vertex_set() -> impl Strategy<Value = BTreeSet<Vertex>> {
    proptest::collection::btree_set(0u32..UNIVERSE as u32, 0..32)
}

/// One step of a random engine workload (single-draw decoding; the vendored
/// proptest shim has no `prop_oneof`).
#[derive(Clone, Debug)]
enum Step {
    Intersect,
    Union,
    Difference,
    IntersectCount,
    UnionAssign,
    Insert(Vertex),
    Remove(Vertex),
    CloneAndDelete,
    CreateAndKeep(Vertex),
    HostOps(u64),
}

fn step() -> impl Strategy<Value = Step> {
    (0u64..1_000_000).prop_map(|raw| {
        let v = ((raw / 10) % UNIVERSE as u64) as Vertex;
        match raw % 10 {
            0 => Step::Intersect,
            1 => Step::Union,
            2 => Step::Difference,
            3 => Step::IntersectCount,
            4 => Step::UnionAssign,
            5 => Step::Insert(v),
            6 => Step::Remove(v),
            7 => Step::CloneAndDelete,
            8 => Step::CreateAndKeep(v),
            _ => Step::HostOps(raw % 17 + 1),
        }
    })
}

fn run_steps<E: SetEngine>(
    engine: &mut E,
    a_members: &BTreeSet<Vertex>,
    b_members: &BTreeSet<Vertex>,
    steps: &[Step],
) -> Vec<Vec<Vertex>> {
    engine.set_universe(UNIVERSE);
    let a = engine.create_sorted(a_members.iter().copied());
    let b = engine.create_dense(b_members.iter().copied());
    let mut observed = Vec::new();
    let scalar = |x: usize| vec![x as Vertex];
    for s in steps {
        match s {
            Step::Intersect => {
                let c = engine.intersect(a, b);
                observed.push(engine.members(c));
                engine.delete(c);
            }
            Step::Union => {
                let c = engine.union(a, b);
                observed.push(engine.members(c));
                engine.delete(c);
            }
            Step::Difference => {
                let c = engine.difference(b, a);
                observed.push(engine.members(c));
                engine.delete(c);
            }
            Step::IntersectCount => observed.push(scalar(engine.intersect_count(a, b))),
            Step::UnionAssign => {
                engine.union_assign(a, b);
                observed.push(engine.members(a));
            }
            Step::Insert(v) => observed.push(scalar(usize::from(engine.insert(a, *v)))),
            Step::Remove(v) => observed.push(scalar(usize::from(engine.remove(b, *v)))),
            Step::CloneAndDelete => {
                let c = engine.clone_set(b);
                observed.push(engine.members(c));
                engine.delete(c);
            }
            Step::CreateAndKeep(v) => {
                let c = engine.create_sorted([*v, v.wrapping_add(1) % UNIVERSE as u32]);
                observed.push(engine.members(c));
            }
            Step::HostOps(n) => engine.host_ops(*n),
        }
    }
    observed
}

/// Which sink (if any) a run attaches.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Sink {
    None,
    Noop,
    Chrome,
}

/// Runs the workload on a flat runtime with the given sink; returns the
/// observations, the final stats and (for the Chrome sink) the recorded
/// event span.
fn run_flat(
    config: SisaConfig,
    sink: Sink,
    a: &BTreeSet<Vertex>,
    b: &BTreeSet<Vertex>,
    steps: &[Step],
) -> (Vec<Vec<Vertex>>, ExecStats, Option<u64>) {
    let mut engine = SisaRuntime::new(config);
    let trace = attach(sink, |collector| engine.attach_collector(collector, 0));
    let observed = run_steps(&mut engine, a, b, steps);
    let span = trace.map(|t| t.lock().unwrap().recorded_makespan());
    (observed, engine.stats().clone(), span)
}

/// Runs the workload on a 2-shard engine with the given sink.
fn run_sharded(
    config: SisaConfig,
    sink: Sink,
    a: &BTreeSet<Vertex>,
    b: &BTreeSet<Vertex>,
    steps: &[Step],
) -> (Vec<Vec<Vertex>>, ExecStats, Option<u64>) {
    let mut engine = ShardedEngine::sisa(2, PartitionStrategy::Modulo, config);
    let trace = attach(sink, |collector| engine.attach_collector(collector, 0));
    let observed = run_steps(&mut engine, a, b, steps);
    let span = trace.map(|t| t.lock().unwrap().recorded_makespan());
    (observed, engine.stats().clone(), span)
}

fn attach(
    sink: Sink,
    hook: impl FnOnce(SharedCollector),
) -> Option<Arc<Mutex<ChromeTraceCollector>>> {
    match sink {
        Sink::None => None,
        Sink::Noop => {
            hook(SharedCollector::new(NoopCollector));
            None
        }
        Sink::Chrome => {
            let trace = Arc::new(Mutex::new(ChromeTraceCollector::new()));
            hook(SharedCollector::from_arc(trace.clone()));
            Some(trace)
        }
    }
}

fn configs() -> [SisaConfig; 3] {
    [
        SisaConfig::default(),
        SisaConfig::pipelined(8),
        SisaConfig::renamed(16),
    ]
}

proptest! {
    /// (1) + (2) on the flat runtime: collectors never perturb results or
    /// stats, and the Chrome trace's event span is exactly the makespan.
    #[test]
    fn collectors_are_invisible_on_the_flat_runtime(
        a in vertex_set(),
        b in vertex_set(),
        steps in proptest::collection::vec(step(), 1..24),
    ) {
        for config in configs() {
            let (base_obs, base_stats, _) = run_flat(config, Sink::None, &a, &b, &steps);
            for sink in [Sink::Noop, Sink::Chrome] {
                let (obs, stats, span) = run_flat(config, sink, &a, &b, &steps);
                prop_assert_eq!(&base_obs, &obs, "{:?}", sink);
                prop_assert_eq!(&base_stats, &stats, "{:?}", sink);
                prop_assert_eq!(
                    base_stats.energy_nj.to_bits(),
                    stats.energy_nj.to_bits(),
                    "energy must be bit-exact under {:?}", sink
                );
                if let Some(span) = span {
                    prop_assert_eq!(span, stats.makespan_cycles, "event span == makespan");
                }
            }
        }
    }

    /// (1) + (2) on a sharded engine: the conservation identities and the
    /// threaded batch path stay bit-exact with a collector attached, and the
    /// recorded event span over every shard track equals the aggregate
    /// makespan (which merges per-shard makespans as a max).
    #[test]
    fn collectors_are_invisible_on_sharded_engines(
        a in vertex_set(),
        b in vertex_set(),
        steps in proptest::collection::vec(step(), 1..16),
    ) {
        for config in configs() {
            let (base_obs, base_stats, _) = run_sharded(config, Sink::None, &a, &b, &steps);
            for sink in [Sink::Noop, Sink::Chrome] {
                let (obs, stats, span) = run_sharded(config, sink, &a, &b, &steps);
                prop_assert_eq!(&base_obs, &obs, "{:?}", sink);
                prop_assert_eq!(&base_stats, &stats, "{:?}", sink);
                prop_assert_eq!(
                    base_stats.energy_nj.to_bits(),
                    stats.energy_nj.to_bits(),
                    "energy must be bit-exact under {:?}", sink
                );
                if let Some(span) = span {
                    prop_assert_eq!(span, stats.makespan_cycles, "event span == makespan");
                }
            }
        }
    }
}
