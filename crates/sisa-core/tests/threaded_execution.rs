//! Property-based tests for the threaded batch executor: for arbitrary set
//! populations and batches, `ShardedEngine::execute` must produce
//!
//! 1. the same *values* as issuing the operations one at a time through the
//!    [`SetEngine`] trait, and
//! 2. the same *results, work counters and bit-exact `energy_nj`* for every
//!    host thread count — threading is a wall-clock knob, never a semantic
//!    one.

use proptest::prelude::*;
use sisa_core::{
    BatchOp, BatchResult, PartitionStrategy, SetEngine, ShardedEngine, SisaConfig, SisaRuntime,
};
use sisa_sets::Vertex;
use std::collections::BTreeSet;

const UNIVERSE: usize = 192;
const POOL: usize = 6;

fn vertex_set() -> impl Strategy<Value = BTreeSet<Vertex>> {
    proptest::collection::btree_set(0u32..UNIVERSE as u32, 0..48)
}

/// A batch operation encoded as one draw (the vendored proptest shim has no
/// `prop_oneof` or tuple strategies): the low bits pick the form, the rest
/// pick the operands.
fn batch_op() -> impl Strategy<Value = (u64, usize, usize)> {
    (0u64..1_000_000).prop_map(|raw| {
        (
            raw % 6,
            (raw / 6) as usize % POOL,
            (raw / 6 / POOL as u64) as usize % POOL,
        )
    })
}

fn decode(ops: &[(u64, usize, usize)], ids: &[sisa_core::SetId]) -> Vec<BatchOp> {
    ops.iter()
        .map(|&(kind, a, b)| {
            let (a, b) = (ids[a], ids[b]);
            match kind {
                0 => BatchOp::Intersect(a, b),
                1 => BatchOp::Union(a, b),
                2 => BatchOp::Difference(a, b),
                3 => BatchOp::IntersectCount(a, b),
                4 => BatchOp::UnionCount(a, b),
                _ => BatchOp::DifferenceCount(a, b),
            }
        })
        .collect()
}

/// Builds a sharded engine holding the pool sets (alternating sorted/dense
/// representations so both sparse and bitmap paths are exercised).
fn build(
    shards: usize,
    threads: usize,
    pool: &[BTreeSet<Vertex>],
) -> (ShardedEngine<SisaRuntime>, Vec<sisa_core::SetId>) {
    let mut engine = ShardedEngine::sisa(shards, PartitionStrategy::Modulo, SisaConfig::default());
    engine.set_host_threads(threads);
    engine.set_universe(UNIVERSE);
    let ids = pool
        .iter()
        .enumerate()
        .map(|(i, members)| {
            if i % 2 == 0 {
                engine.create_sorted(members.iter().copied())
            } else {
                engine.create_dense(members.iter().copied())
            }
        })
        .collect();
    (engine, ids)
}

/// Reads every batch result back as comparable values.
fn observe(engine: &mut ShardedEngine<SisaRuntime>, results: &[BatchResult]) -> Vec<Vec<Vertex>> {
    results
        .iter()
        .map(|r| match *r {
            BatchResult::Set(id) => engine.members(id),
            BatchResult::Count(n) => vec![n as Vertex],
        })
        .collect()
}

proptest! {
    /// (2): thread count is invisible — results, every work counter, the
    /// traffic ledger and the floating-point energy are bit-for-bit equal.
    #[test]
    fn threaded_execution_reproduces_sequential_stats_bit_for_bit(
        pool in proptest::collection::vec(vertex_set(), POOL..POOL + 1),
        ops in proptest::collection::vec(batch_op(), 1..24),
    ) {
        let (mut sequential, ids) = build(4, 1, &pool);
        let batch = decode(&ops, &ids);
        let seq_results = sequential.execute(&batch);
        let seq_observed = observe(&mut sequential, &seq_results);

        for threads in [2usize, 4, 16] {
            let (mut threaded, ids) = build(4, threads, &pool);
            let batch = decode(&ops, &ids);
            let results = threaded.execute(&batch);
            prop_assert_eq!(&results, &seq_results, "{} threads", threads);
            prop_assert_eq!(
                &observe(&mut threaded, &results),
                &seq_observed,
                "{} threads",
                threads
            );
            prop_assert_eq!(threaded.stats(), sequential.stats(), "{} threads", threads);
            prop_assert_eq!(
                threaded.stats().energy_nj.to_bits(),
                sequential.stats().energy_nj.to_bits(),
                "energy must be bit-exact at {} threads",
                threads
            );
            prop_assert_eq!(threaded.traffic(), sequential.traffic());
            for shard in 0..threaded.shard_count() {
                prop_assert_eq!(
                    threaded.shard_stats(shard),
                    sequential.shard_stats(shard),
                    "shard {} at {} threads",
                    shard,
                    threads
                );
            }
            prop_assert_eq!(threaded.live_sets(), sequential.live_sets());
        }
    }

    /// (1): a batch agrees value-for-value with the one-at-a-time trait path.
    #[test]
    fn batches_agree_with_the_per_op_path(
        pool in proptest::collection::vec(vertex_set(), POOL..POOL + 1),
        ops in proptest::collection::vec(batch_op(), 1..16),
    ) {
        let (mut batched, ids) = build(3, 2, &pool);
        let batch = decode(&ops, &ids);
        let results = batched.execute(&batch);
        let batched_observed = observe(&mut batched, &results);

        let (mut reference, ids) = build(3, 1, &pool);
        let mut expected = Vec::new();
        for op in decode(&ops, &ids) {
            expected.push(match op {
                BatchOp::Intersect(a, b) => {
                    let id = reference.intersect(a, b);
                    reference.members(id)
                }
                BatchOp::Union(a, b) => {
                    let id = reference.union(a, b);
                    reference.members(id)
                }
                BatchOp::Difference(a, b) => {
                    let id = reference.difference(a, b);
                    reference.members(id)
                }
                BatchOp::IntersectCount(a, b) => {
                    vec![reference.intersect_count(a, b) as Vertex]
                }
                BatchOp::UnionCount(a, b) => vec![reference.union_count(a, b) as Vertex],
                BatchOp::DifferenceCount(a, b) => {
                    vec![reference.difference_count(a, b) as Vertex]
                }
            });
        }
        prop_assert_eq!(batched_observed, expected);
        prop_assert_eq!(batched.live_sets(), reference.live_sets());
    }
}
