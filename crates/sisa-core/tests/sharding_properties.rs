//! Property-based tests for the sharded multi-cube engine:
//!
//! 1. **Transparency** — a [`ShardedEngine`]`<SisaRuntime>` returns identical
//!    set contents, counts and query results to a flat [`SisaRuntime`] for
//!    every partition strategy and shard count, over arbitrary operation
//!    sequences.
//! 2. **1-shard equivalence** — with a single shard the wrapper reproduces the
//!    flat runtime's [`ExecStats`] cycle-for-cycle.
//! 3. **Conservation** — the aggregate statistics equal the sum of the
//!    per-shard statistics plus the cross-shard link ledger, so no cost is
//!    lost or double-counted in the sharded plumbing.

use proptest::prelude::*;
use sisa_core::{ExecStats, PartitionStrategy, SetEngine, ShardedEngine, SisaConfig, SisaRuntime};
use sisa_sets::Vertex;
use std::collections::BTreeSet;

const UNIVERSE: usize = 192;

fn vertex_set() -> impl Strategy<Value = BTreeSet<Vertex>> {
    proptest::collection::btree_set(0u32..UNIVERSE as u32, 0..48)
}

/// One step of a random engine workload (single-draw decoding; the vendored
/// proptest shim has no `prop_oneof`).
#[derive(Clone, Debug)]
enum Step {
    Intersect,
    Union,
    Difference,
    IntersectCount,
    UnionCount,
    DifferenceCount,
    UnionAssign,
    DifferenceAssign,
    Insert(Vertex),
    Remove(Vertex),
    Contains(Vertex),
    Cardinality,
    Members,
    CloneAndDelete,
    CreateAndKeep(Vertex),
    HostOps(u64),
}

fn step() -> impl Strategy<Value = Step> {
    (0u64..1_000_000).prop_map(|raw| {
        let v = ((raw / 16) % UNIVERSE as u64) as Vertex;
        match raw % 16 {
            0 => Step::Intersect,
            1 => Step::Union,
            2 => Step::Difference,
            3 => Step::IntersectCount,
            4 => Step::UnionCount,
            5 => Step::DifferenceCount,
            6 => Step::UnionAssign,
            7 => Step::DifferenceAssign,
            8 => Step::Insert(v),
            9 => Step::Remove(v),
            10 => Step::Contains(v),
            11 => Step::Cardinality,
            12 => Step::Members,
            13 => Step::CloneAndDelete,
            14 => Step::CreateAndKeep(v),
            _ => Step::HostOps(raw % 23 + 1),
        }
    })
}

/// Runs the workload over one sorted and one dense seed set, collecting every
/// observable result. `CreateAndKeep` grows the live-set population so that
/// placement decisions keep happening mid-run.
fn run_steps<E: SetEngine>(
    engine: &mut E,
    a_members: &BTreeSet<Vertex>,
    b_members: &BTreeSet<Vertex>,
    steps: &[Step],
) -> Vec<Vec<Vertex>> {
    engine.set_universe(UNIVERSE);
    let a = engine.create_sorted(a_members.iter().copied());
    let b = engine.create_dense(b_members.iter().copied());
    let mut observed = Vec::new();
    let scalar = |x: usize| vec![x as Vertex];
    for s in steps {
        match s {
            Step::Intersect => {
                let c = engine.intersect(a, b);
                observed.push(engine.members(c));
                engine.delete(c);
            }
            Step::Union => {
                let c = engine.union(a, b);
                observed.push(engine.members(c));
                engine.delete(c);
            }
            Step::Difference => {
                let c = engine.difference(b, a);
                observed.push(engine.members(c));
                engine.delete(c);
            }
            Step::IntersectCount => observed.push(scalar(engine.intersect_count(a, b))),
            Step::UnionCount => observed.push(scalar(engine.union_count(a, b))),
            Step::DifferenceCount => observed.push(scalar(engine.difference_count(a, b))),
            Step::UnionAssign => {
                engine.union_assign(a, b);
                observed.push(engine.members(a));
            }
            Step::DifferenceAssign => {
                engine.difference_assign(a, b);
                observed.push(engine.members(a));
            }
            Step::Insert(v) => observed.push(scalar(usize::from(engine.insert(a, *v)))),
            Step::Remove(v) => observed.push(scalar(usize::from(engine.remove(b, *v)))),
            Step::Contains(v) => observed.push(scalar(usize::from(engine.contains(a, *v)))),
            Step::Cardinality => {
                observed.push(scalar(engine.cardinality(a)));
                observed.push(scalar(engine.cardinality(b)));
            }
            Step::Members => {
                observed.push(engine.members(a));
                observed.push(engine.members(b));
            }
            Step::CloneAndDelete => {
                let c = engine.clone_set(b);
                observed.push(engine.members(c));
                engine.delete(c);
            }
            Step::CreateAndKeep(v) => {
                let c = engine.create_sorted([*v, v.wrapping_add(1) % UNIVERSE as u32]);
                observed.push(engine.members(c));
            }
            Step::HostOps(n) => engine.host_ops(*n),
        }
    }
    observed
}

/// Recomputes the aggregate from per-shard statistics plus the link ledger.
fn recompute_aggregate(engine: &ShardedEngine<SisaRuntime>) -> ExecStats {
    let mut total = ExecStats::default();
    for shard in 0..engine.shard_count() {
        total.merge(engine.shard_stats(shard));
    }
    let traffic = engine.traffic();
    total.link_cycles += traffic.cycles;
    total.link_bytes += traffic.bytes;
    total.energy_nj += traffic.energy_nj;
    total
}

proptest! {
    /// (1) + (3): every strategy and shard count is a transparent, cost-
    /// conserving wrapper.
    #[test]
    fn sharded_engines_are_transparent_and_conserve_stats(
        a in vertex_set(),
        b in vertex_set(),
        steps in proptest::collection::vec(step(), 1..32),
    ) {
        let mut flat = SisaRuntime::new(SisaConfig::default());
        let reference = run_steps(&mut flat, &a, &b, &steps);
        for strategy in PartitionStrategy::ALL {
            for shards in [1usize, 2, 4] {
                let mut engine =
                    ShardedEngine::sisa(shards, strategy, SisaConfig::default());
                let observed = run_steps(&mut engine, &a, &b, &steps);
                prop_assert_eq!(&reference, &observed, "{:?} x{}", strategy, shards);
                prop_assert_eq!(engine.live_sets(), flat.live_sets());

                // Conservation: aggregate == Σ shards + link ledger, so the
                // sharded plumbing neither loses nor double-counts cost.
                let recomputed = recompute_aggregate(&engine);
                prop_assert_eq!(&recomputed, engine.stats(), "{:?} x{}", strategy, shards);
                if shards == 1 {
                    prop_assert_eq!(engine.traffic().cross_ops, 0);
                }
            }
        }
    }

    /// (2): with one shard the wrapper is invisible, cycle for cycle.
    #[test]
    fn one_shard_reproduces_the_flat_runtime_exactly(
        a in vertex_set(),
        b in vertex_set(),
        steps in proptest::collection::vec(step(), 1..32),
    ) {
        let mut flat = SisaRuntime::new(SisaConfig::default());
        let from_flat = run_steps(&mut flat, &a, &b, &steps);
        for strategy in PartitionStrategy::ALL {
            let mut one = ShardedEngine::sisa(1, strategy, SisaConfig::default());
            let from_sharded = run_steps(&mut one, &a, &b, &steps);
            prop_assert_eq!(&from_flat, &from_sharded, "{:?}", strategy);
            prop_assert_eq!(one.stats(), flat.stats(), "{:?}", strategy);
            prop_assert_eq!(one.stats().link_cycles, 0);
        }
    }
}
