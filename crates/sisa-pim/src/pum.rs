//! SISA-PUM: in-situ bulk bitwise processing (Ambit-style).
//!
//! Dense-bitvector set operations are executed entirely inside DRAM: Ambit
//! copies the two operand rows onto designated triple rows with RowClone,
//! performs a majority-based AND/OR (NOT via dual-contact cells), and copies
//! the result back (§8.1). The paper's simulation models the runtime of one
//! such in-situ operation as
//!
//! ```text
//! l_M + l_I * ceil(n / (q * R))
//! ```
//!
//! where `l_M` is the DRAM access latency to initiate the operation, `l_I` the
//! latency of one bulk bitwise step, `n` the bitvector length, `q` the number
//! of rows processable in parallel and `R` the DRAM row size (§9.1). This
//! module implements exactly that model plus the corresponding row-activation
//! counts used for energy accounting.

use crate::config::PumConfig;
use crate::Cycles;

/// Which bulk bitwise primitive an operation maps to.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum BulkOp {
    /// Intersection: bulk AND.
    And,
    /// Union: bulk OR.
    Or,
    /// Difference: AND with the negated second operand (`A ∩ B'`).
    AndNot,
    /// Single-operand negation.
    Not,
}

impl BulkOp {
    /// Number of triple-row activation steps one chunk of this operation
    /// needs (AND/OR need one, AND-NOT needs a NOT first).
    #[must_use]
    pub fn steps(self) -> u64 {
        match self {
            Self::And | Self::Or | Self::Not => 1,
            Self::AndNot => 2,
        }
    }
}

/// The Ambit-style bulk bitwise cost model.
#[derive(Clone, Copy, Debug)]
pub struct PumModel {
    cfg: PumConfig,
}

impl PumModel {
    /// Creates the model from a configuration.
    #[must_use]
    pub fn new(cfg: PumConfig) -> Self {
        Self { cfg }
    }

    /// The configuration in use.
    #[must_use]
    pub fn config(&self) -> &PumConfig {
        &self.cfg
    }

    /// Number of sequential in-situ chunks needed for an `n_bits` bitvector:
    /// `ceil(n / (q * R))` (at least one for non-empty inputs).
    #[must_use]
    pub fn chunks(&self, n_bits: usize) -> u64 {
        if n_bits == 0 {
            return 0;
        }
        let per_chunk = self.cfg.parallel_rows * self.cfg.row_bits;
        n_bits.div_ceil(per_chunk) as u64
    }

    /// Cycles to execute `op` over two `n_bits` dense bitvectors
    /// (`l_M + l_I * steps * ceil(n/(q*R))`).
    #[must_use]
    pub fn bulk_op_cost(&self, op: BulkOp, n_bits: usize) -> Cycles {
        if n_bits == 0 {
            return self.cfg.dram_latency;
        }
        self.cfg.dram_latency + self.cfg.insitu_op_latency * op.steps() * self.chunks(n_bits)
    }

    /// Cycles to execute `op` and then obtain the cardinality of the result.
    ///
    /// The popcount is performed by the logic-layer core streaming the result
    /// row(s); we fold that into a per-row constant since rows are read at
    /// full internal bandwidth.
    #[must_use]
    pub fn bulk_op_count_cost(&self, op: BulkOp, n_bits: usize) -> Cycles {
        let rows = n_bits.div_ceil(self.cfg.row_bits) as u64;
        self.bulk_op_cost(op, n_bits) + rows * 32
    }

    /// Cycles for a single-bit update (`A ∪ {x}` / `A \ {x}` on a DB): one
    /// DRAM access (§8.1 "a single DRAM access to a specific memory cell").
    #[must_use]
    pub fn bit_update_cost(&self) -> Cycles {
        self.cfg.dram_latency
    }

    /// Total DRAM row activations for `op` over `n_bits` bits: each processed
    /// row needs two RowClone copies in, one triple-row activation per step and
    /// one copy out — we count 3 activations per step plus 1 for the copy-out,
    /// matching Ambit's AAP sequences. Used by the energy model.
    #[must_use]
    pub fn row_activations(&self, op: BulkOp, n_bits: usize) -> u64 {
        if n_bits == 0 {
            return 0;
        }
        let rows = n_bits.div_ceil(self.cfg.row_bits) as u64;
        rows * (3 * op.steps() + 1)
    }
}

impl Default for PumModel {
    fn default() -> Self {
        Self::new(PumConfig::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_bitvectors_cost_one_chunk() {
        let m = PumModel::default();
        let cfg = *m.config();
        assert_eq!(m.chunks(1), 1);
        assert_eq!(m.chunks(cfg.row_bits), 1);
        assert_eq!(
            m.bulk_op_cost(BulkOp::And, 1024),
            cfg.dram_latency + cfg.insitu_op_latency
        );
    }

    #[test]
    fn cost_grows_only_past_the_parallel_capacity() {
        let m = PumModel::default();
        let cfg = *m.config();
        let capacity_bits = cfg.parallel_rows * cfg.row_bits;
        assert_eq!(m.chunks(capacity_bits), 1);
        assert_eq!(m.chunks(capacity_bits + 1), 2);
        assert!(
            m.bulk_op_cost(BulkOp::Or, capacity_bits)
                < m.bulk_op_cost(BulkOp::Or, 2 * capacity_bits)
        );
    }

    #[test]
    fn andnot_costs_twice_the_steps_of_and() {
        let m = PumModel::default();
        let cfg = *m.config();
        let and = m.bulk_op_cost(BulkOp::And, 4096);
        let andnot = m.bulk_op_cost(BulkOp::AndNot, 4096);
        assert_eq!(andnot - cfg.dram_latency, 2 * (and - cfg.dram_latency));
    }

    #[test]
    fn count_adds_popcount_cost() {
        let m = PumModel::default();
        assert!(m.bulk_op_count_cost(BulkOp::And, 100_000) > m.bulk_op_cost(BulkOp::And, 100_000));
    }

    #[test]
    fn bit_update_is_one_access() {
        let m = PumModel::default();
        assert_eq!(m.bit_update_cost(), m.config().dram_latency);
    }

    #[test]
    fn row_activations_scale_with_rows_and_steps() {
        let m = PumModel::default();
        let row = m.config().row_bits;
        assert_eq!(m.row_activations(BulkOp::And, row), 4);
        assert_eq!(m.row_activations(BulkOp::And, 2 * row), 8);
        assert_eq!(m.row_activations(BulkOp::AndNot, row), 7);
        assert_eq!(m.row_activations(BulkOp::And, 0), 0);
    }

    #[test]
    fn empty_input_costs_only_initiation() {
        let m = PumModel::default();
        assert_eq!(m.bulk_op_cost(BulkOp::And, 0), m.config().dram_latency);
    }
}
