//! Per-operation energy accounting.
//!
//! The paper motivates in-situ processing partly through energy efficiency
//! (Ambit's bulk bitwise operations avoid moving data over the memory
//! channel). This module provides a simple event-based energy model so the
//! benchmark harness can report energy alongside cycles. Constants are in
//! nanojoules per event and follow the published characterisations of DDR
//! activation energy, HMC SerDes transfer energy and on-chip cache access
//! energy; their absolute values matter less than their ratios (DRAM channel
//! transfers are roughly an order of magnitude more expensive per byte than
//! in-DRAM row operations).

use serde::{Deserialize, Serialize};

/// Event-based energy model (all values in nanojoules).
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct EnergyModel {
    /// Energy of one DRAM row activation (used by PUM bulk operations).
    pub dram_row_activation_nj: f64,
    /// Energy per byte transferred over the off-chip memory channel
    /// (CPU baseline DRAM traffic).
    pub channel_transfer_nj_per_byte: f64,
    /// Energy per byte moved through a TSV/vault link (PNM traffic).
    pub tsv_transfer_nj_per_byte: f64,
    /// Energy per byte per hop moved over vault/cube interconnect links
    /// (cross-shard operand transfers; pricier than a TSV, cheaper than the
    /// off-chip channel).
    pub link_transfer_nj_per_byte_hop: f64,
    /// Energy of one cache access (any level, averaged).
    pub cache_access_nj: f64,
    /// Energy of one scalar core operation.
    pub scalar_op_nj: f64,
}

impl Default for EnergyModel {
    fn default() -> Self {
        Self {
            dram_row_activation_nj: 25.0,
            channel_transfer_nj_per_byte: 0.30,
            tsv_transfer_nj_per_byte: 0.06,
            link_transfer_nj_per_byte_hop: 0.12,
            cache_access_nj: 0.10,
            scalar_op_nj: 0.02,
        }
    }
}

impl EnergyModel {
    /// Energy of a PUM bulk operation given its row-activation count.
    #[must_use]
    pub fn pum_energy(&self, row_activations: u64) -> f64 {
        row_activations as f64 * self.dram_row_activation_nj
    }

    /// Energy of a PNM operation that moves `bytes` bytes through TSVs and
    /// executes `ops` scalar operations on the vault core.
    #[must_use]
    pub fn pnm_energy(&self, bytes: u64, ops: u64) -> f64 {
        bytes as f64 * self.tsv_transfer_nj_per_byte + ops as f64 * self.scalar_op_nj
    }

    /// Energy of moving `bytes` bytes over `hops` vault/cube link hops (a
    /// cross-shard operand transfer).
    #[must_use]
    pub fn link_energy(&self, bytes: u64, hops: u64) -> f64 {
        bytes as f64 * hops as f64 * self.link_transfer_nj_per_byte_hop
    }

    /// Energy of CPU-side work given cache accesses, DRAM bytes and scalar
    /// operations.
    #[must_use]
    pub fn cpu_energy(&self, cache_accesses: u64, dram_bytes: u64, scalar_ops: u64) -> f64 {
        cache_accesses as f64 * self.cache_access_nj
            + dram_bytes as f64 * self.channel_transfer_nj_per_byte
            + scalar_ops as f64 * self.scalar_op_nj
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pum_is_cheaper_than_moving_the_rows_over_the_channel() {
        let e = EnergyModel::default();
        // One 8 KiB row AND: 4 activations vs moving 2×8 KiB over the channel.
        let pum = e.pum_energy(4);
        let channel = e.cpu_energy(0, 2 * 8192, 0);
        assert!(pum < channel, "pum {pum} vs channel {channel}");
    }

    #[test]
    fn tsv_transfers_are_cheaper_than_channel_transfers() {
        let e = EnergyModel::default();
        assert!(e.pnm_energy(1024, 0) < e.cpu_energy(0, 1024, 0));
    }

    #[test]
    fn link_energy_sits_between_tsv_and_channel() {
        let e = EnergyModel::default();
        let one_hop = e.link_energy(1024, 1);
        assert!(one_hop > e.pnm_energy(1024, 0));
        assert!(one_hop < e.cpu_energy(0, 1024, 0));
        // Energy grows with the hop count and is zero for local data.
        assert!(e.link_energy(1024, 3) > one_hop);
        assert_eq!(e.link_energy(1024, 0), 0.0);
    }

    #[test]
    fn energy_is_additive_in_events() {
        let e = EnergyModel::default();
        assert!((e.cpu_energy(10, 0, 0) - 1.0).abs() < 1e-9);
        assert!((e.pnm_energy(0, 100) - 2.0).abs() < 1e-9);
        assert_eq!(e.pum_energy(0), 0.0);
    }
}
