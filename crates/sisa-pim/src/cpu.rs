//! The baseline out-of-order CPU model.
//!
//! The paper's comparison targets — hand-tuned non-set and set-based software
//! algorithms — run "on a high-performance Out-of-Order manycore CPU" with a
//! three-level cache hierarchy (§9.1). [`CpuThread`] models one such hardware
//! thread: algorithms report their memory accesses (with synthetic addresses
//! derived from the CSR layout via [`AddressSpace`]) and scalar work, and the
//! model accumulates busy and stalled cycles using the cache simulator plus
//! DRAM latency. Bandwidth contention between threads is applied later by the
//! parallel scheduler in `sisa-core`, which knows how many threads run
//! concurrently.

use crate::cache::{Cache, CacheConfig};
use crate::config::CpuConfig;
use crate::stats::MemoryStats;
use crate::Cycles;

/// The cost of one task (a unit of parallel work) executed on a CPU thread.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TaskCost {
    /// Total busy cycles (compute plus exposed memory latency).
    pub cycles: Cycles,
    /// The subset of `cycles` spent stalled on the memory hierarchy.
    pub stall_cycles: Cycles,
    /// Bytes transferred from DRAM (used for bandwidth contention).
    pub dram_bytes: u64,
    /// Number of DRAM accesses.
    pub dram_accesses: u64,
}

impl TaskCost {
    /// Adds another task's cost into this one.
    pub fn merge(&mut self, other: &TaskCost) {
        self.cycles += other.cycles;
        self.stall_cycles += other.stall_cycles;
        self.dram_bytes += other.dram_bytes;
        self.dram_accesses += other.dram_accesses;
    }

    /// The fraction of cycles spent stalled (0 if the task is empty).
    #[must_use]
    pub fn stall_fraction(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.stall_cycles as f64 / self.cycles as f64
        }
    }
}

/// A single simulated CPU hardware thread with a private L1/L2 and a slice of
/// the shared L3.
#[derive(Clone, Debug)]
pub struct CpuThread {
    cfg: CpuConfig,
    l1: Cache,
    l2: Cache,
    l3: Cache,
    stats: MemoryStats,
    cycles: Cycles,
    stall_cycles: Cycles,
    task_mark: (Cycles, Cycles, MemoryStats),
}

impl CpuThread {
    /// Creates a thread. `threads_sharing_l3` determines the L3 slice this
    /// thread can use (the paper's 8 MiB L3 is shared among all cores).
    #[must_use]
    pub fn new(cfg: &CpuConfig, threads_sharing_l3: usize) -> Self {
        let l3_slice = (cfg.l3_bytes / threads_sharing_l3.max(1)).max(cfg.line_bytes * 8);
        Self {
            cfg: *cfg,
            l1: Cache::new(CacheConfig::new(cfg.l1_bytes, cfg.line_bytes, 8)),
            l2: Cache::new(CacheConfig::new(cfg.l2_bytes, cfg.line_bytes, 8)),
            l3: Cache::new(CacheConfig::new(l3_slice, cfg.line_bytes, 16)),
            stats: MemoryStats::default(),
            cycles: 0,
            stall_cycles: 0,
            task_mark: (0, 0, MemoryStats::default()),
        }
    }

    /// The configuration this thread was built with.
    #[must_use]
    pub fn config(&self) -> &CpuConfig {
        &self.cfg
    }

    /// Executes `n` scalar (non-memory) operations.
    pub fn scalar_ops(&mut self, n: u64) {
        self.stats.scalar_ops += n;
        self.cycles += (n as f64 / self.cfg.ipc).ceil() as Cycles;
    }

    /// Performs one data access of at most one cache line at `addr`.
    pub fn access(&mut self, addr: u64) {
        let (busy, stall) = self.access_cost(addr);
        self.cycles += busy;
        self.stall_cycles += stall;
    }

    /// Streams `bytes` bytes sequentially starting at `base` (touching each
    /// cache line once), the access pattern of merge-based set algorithms and
    /// CSR neighbourhood scans.
    pub fn stream(&mut self, base: u64, bytes: u64) {
        if bytes == 0 {
            return;
        }
        let line = self.cfg.line_bytes as u64;
        let first = base / line;
        let last = (base + bytes - 1) / line;
        for l in first..=last {
            self.access(l * line);
        }
    }

    /// Performs a dependent random access (e.g. one binary-search probe or a
    /// hash lookup), which the out-of-order window cannot overlap as well as
    /// independent ones.
    pub fn random_access(&mut self, addr: u64) {
        self.access(addr);
    }

    fn access_cost(&mut self, addr: u64) -> (Cycles, Cycles) {
        let c = &self.cfg;
        if self.l1.access(addr) {
            self.stats.l1_hits += 1;
            return (1, 0);
        }
        self.stats.l1_misses += 1;
        let hide = 1.0 - c.mlp_hiding;
        if self.l2.access(addr) {
            self.stats.l2_hits += 1;
            let exposed = (c.l2_latency as f64 * hide).round() as Cycles;
            return (1 + exposed, exposed);
        }
        self.stats.l2_misses += 1;
        if self.l3.access(addr) {
            self.stats.l3_hits += 1;
            let exposed = (c.l3_latency as f64 * hide).round() as Cycles;
            return (1 + exposed, exposed);
        }
        self.stats.l3_misses += 1;
        self.stats.dram_bytes += c.line_bytes as u64;
        let exposed = (c.dram_latency as f64 * hide).round() as Cycles;
        (1 + exposed, exposed)
    }

    /// Total busy cycles accumulated so far.
    #[must_use]
    pub fn cycles(&self) -> Cycles {
        self.cycles
    }

    /// Total stalled cycles accumulated so far.
    #[must_use]
    pub fn stall_cycles(&self) -> Cycles {
        self.stall_cycles
    }

    /// Memory-hierarchy counters accumulated so far.
    #[must_use]
    pub fn stats(&self) -> &MemoryStats {
        &self.stats
    }

    /// Marks the beginning of a task; the next [`CpuThread::task_end`] returns
    /// the cost accumulated since this point.
    pub fn task_begin(&mut self) {
        self.task_mark = (self.cycles, self.stall_cycles, self.stats);
    }

    /// Ends the current task and returns its cost.
    pub fn task_end(&mut self) -> TaskCost {
        let (c0, s0, stats0) = self.task_mark;
        let delta = self.stats.delta_since(&stats0);
        TaskCost {
            cycles: self.cycles - c0,
            stall_cycles: self.stall_cycles - s0,
            dram_bytes: delta.dram_bytes,
            dram_accesses: delta.dram_accesses(),
        }
    }

    /// The total cost accumulated over the lifetime of the thread.
    #[must_use]
    pub fn total_cost(&self) -> TaskCost {
        TaskCost {
            cycles: self.cycles,
            stall_cycles: self.stall_cycles,
            dram_bytes: self.stats.dram_bytes,
            dram_accesses: self.stats.dram_accesses(),
        }
    }
}

/// A synthetic address-space allocator.
///
/// Baseline algorithms need realistic addresses so the cache model sees the
/// spatial locality of CSR arrays; this allocator hands out disjoint,
/// line-aligned regions for each logical array.
#[derive(Clone, Debug, Default)]
pub struct AddressSpace {
    next: u64,
}

impl AddressSpace {
    /// Creates an allocator starting at a non-zero base.
    #[must_use]
    pub fn new() -> Self {
        Self { next: 0x1_0000 }
    }

    /// Allocates a region of `bytes` bytes and returns its base address.
    pub fn alloc(&mut self, bytes: u64) -> u64 {
        let base = self.next;
        // Keep regions line-aligned and separated by a guard line so that
        // distinct arrays never share a cache line.
        let aligned = bytes.div_ceil(64) * 64 + 64;
        self.next += aligned;
        base
    }

    /// Allocates a region sized for `elements` items of `element_bytes` bytes.
    pub fn alloc_array(&mut self, elements: usize, element_bytes: usize) -> u64 {
        self.alloc((elements * element_bytes) as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn thread() -> CpuThread {
        CpuThread::new(&CpuConfig::default(), 1)
    }

    #[test]
    fn scalar_ops_use_ipc() {
        let mut t = thread();
        t.scalar_ops(400);
        assert_eq!(t.cycles(), 100);
        assert_eq!(t.stall_cycles(), 0);
    }

    #[test]
    fn first_touch_misses_then_hits() {
        let mut t = thread();
        t.access(0x2000);
        let after_miss = t.cycles();
        assert!(after_miss > 10, "DRAM miss should cost tens of cycles");
        assert!(t.stall_cycles() > 0);
        let stall_before = t.stall_cycles();
        t.access(0x2000);
        assert_eq!(t.cycles(), after_miss + 1, "L1 hit costs one cycle");
        assert_eq!(t.stall_cycles(), stall_before);
    }

    #[test]
    fn stream_touches_each_line_once() {
        let mut t = thread();
        t.stream(0x8000, 256);
        assert_eq!(t.stats().accesses(), 4);
        t.stream(0x8000, 0);
        assert_eq!(t.stats().accesses(), 4);
        // Unaligned stream crossing a line boundary touches both lines.
        let mut t2 = thread();
        t2.stream(0x8000 + 60, 8);
        assert_eq!(t2.stats().accesses(), 2);
    }

    #[test]
    fn task_deltas_are_isolated() {
        let mut t = thread();
        t.access(0x100);
        t.task_begin();
        t.scalar_ops(40);
        t.access(0x9000);
        t.access(0x9000);
        let cost = t.task_end();
        assert_eq!(cost.dram_accesses, 1);
        assert!(cost.cycles >= 10);
        assert!(cost.stall_cycles > 0);
        assert!(t.total_cost().dram_accesses >= 2);
        assert!(cost.stall_fraction() > 0.0 && cost.stall_fraction() < 1.0);
    }

    #[test]
    fn working_set_larger_than_l1_spills_to_l2() {
        let mut t = thread();
        // 128 KiB working set streamed twice: second pass should hit in L2,
        // not in L1 (32 KiB).
        for _ in 0..2 {
            t.stream(0, 128 * 1024);
        }
        assert!(t.stats().l2_hits > 0);
        assert!(t.stats().l1_misses > t.stats().l2_misses);
    }

    #[test]
    fn l3_slice_shrinks_with_sharers() {
        let alone = CpuThread::new(&CpuConfig::default(), 1);
        let crowded = CpuThread::new(&CpuConfig::default(), 32);
        assert!(alone.l3.config().capacity_bytes > crowded.l3.config().capacity_bytes);
    }

    #[test]
    fn address_space_regions_do_not_overlap() {
        let mut a = AddressSpace::new();
        let r1 = a.alloc(100);
        let r2 = a.alloc_array(50, 4);
        let r3 = a.alloc(1);
        assert!(r1 + 100 <= r2);
        assert!(r2 + 200 <= r3);
        assert_eq!(r1 % 64, 0);
        assert_eq!(r2 % 64, 0);
    }

    #[test]
    fn task_cost_merge() {
        let mut a = TaskCost {
            cycles: 10,
            stall_cycles: 4,
            dram_bytes: 64,
            dram_accesses: 1,
        };
        a.merge(&a.clone());
        assert_eq!(a.cycles, 20);
        assert_eq!(a.dram_accesses, 2);
    }
}
