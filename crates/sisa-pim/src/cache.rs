//! A set-associative LRU cache simulator.
//!
//! Used by the baseline-CPU model (`sisa-pim::cpu`) for its L1/L2/L3 hierarchy
//! and by the SISA Controller Unit for its Set-Metadata Buffer (the SMB is "a
//! small scratchpad ... to cache metadata", §3; its behaviour "is similar to
//! that of other such units such as L1", §9.2).

/// Configuration of one cache level.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub capacity_bytes: usize,
    /// Line size in bytes.
    pub line_bytes: usize,
    /// Associativity (ways per set).
    pub ways: usize,
}

impl CacheConfig {
    /// A convenience constructor.
    #[must_use]
    pub fn new(capacity_bytes: usize, line_bytes: usize, ways: usize) -> Self {
        Self {
            capacity_bytes,
            line_bytes,
            ways,
        }
    }

    /// Number of sets implied by the configuration (at least 1).
    #[must_use]
    pub fn num_sets(&self) -> usize {
        (self.capacity_bytes / (self.line_bytes * self.ways)).max(1)
    }
}

/// A set-associative cache with LRU replacement, tracking hits and misses.
///
/// Only tags are stored — the simulator does not model data contents, only
/// whether an access would have hit.
#[derive(Clone, Debug)]
pub struct Cache {
    config: CacheConfig,
    /// `tags[set * ways + way]`; `u64::MAX` marks an empty way.
    tags: Vec<u64>,
    /// Monotonic per-way timestamps for LRU.
    stamps: Vec<u64>,
    clock: u64,
    hits: u64,
    misses: u64,
}

impl Cache {
    /// Creates an empty cache.
    #[must_use]
    pub fn new(config: CacheConfig) -> Self {
        let slots = config.num_sets() * config.ways;
        Self {
            config,
            tags: vec![u64::MAX; slots],
            stamps: vec![0; slots],
            clock: 0,
            hits: 0,
            misses: 0,
        }
    }

    /// The cache configuration.
    #[must_use]
    pub fn config(&self) -> CacheConfig {
        self.config
    }

    /// Performs an access to `addr`; returns `true` on hit. On miss the line
    /// is installed, evicting the LRU way of its set.
    pub fn access(&mut self, addr: u64) -> bool {
        self.clock += 1;
        let line = addr / self.config.line_bytes as u64;
        let num_sets = self.config.num_sets() as u64;
        let set = (line % num_sets) as usize;
        let base = set * self.config.ways;
        let ways = &mut self.tags[base..base + self.config.ways];

        if let Some(way) = ways.iter().position(|&t| t == line) {
            self.stamps[base + way] = self.clock;
            self.hits += 1;
            return true;
        }
        self.misses += 1;
        // Evict the LRU (or fill an empty way, which has stamp 0).
        let victim = (0..self.config.ways)
            .min_by_key(|&w| self.stamps[base + w])
            .expect("cache has at least one way");
        self.tags[base + victim] = line;
        self.stamps[base + victim] = self.clock;
        false
    }

    /// Checks whether `addr` currently resides in the cache without touching
    /// replacement state or statistics.
    #[must_use]
    pub fn probe(&self, addr: u64) -> bool {
        let line = addr / self.config.line_bytes as u64;
        let num_sets = self.config.num_sets() as u64;
        let set = (line % num_sets) as usize;
        let base = set * self.config.ways;
        self.tags[base..base + self.config.ways].contains(&line)
    }

    /// Number of hits recorded so far.
    #[must_use]
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Number of misses recorded so far.
    #[must_use]
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Hit ratio (0 when no access has been made).
    #[must_use]
    pub fn hit_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Empties the cache and resets statistics.
    pub fn reset(&mut self) {
        self.tags.fill(u64::MAX);
        self.stamps.fill(0);
        self.clock = 0;
        self.hits = 0;
        self.misses = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Cache {
        // 4 sets × 2 ways × 64 B lines = 512 B.
        Cache::new(CacheConfig::new(512, 64, 2))
    }

    #[test]
    fn config_set_count() {
        assert_eq!(CacheConfig::new(512, 64, 2).num_sets(), 4);
        assert_eq!(CacheConfig::new(32 * 1024, 64, 8).num_sets(), 64);
        // Degenerate configuration still has one set.
        assert_eq!(CacheConfig::new(64, 64, 4).num_sets(), 1);
    }

    #[test]
    fn repeated_access_hits() {
        let mut c = tiny();
        assert!(!c.access(0x1000));
        assert!(c.access(0x1000));
        assert!(c.access(0x1004)); // same line
        assert_eq!(c.hits(), 2);
        assert_eq!(c.misses(), 1);
        assert!((c.hit_ratio() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn lru_eviction_within_a_set() {
        let mut c = tiny();
        // Three lines mapping to the same set (stride = sets * line = 256 B).
        let a = 0u64;
        let b = 256;
        let d = 512;
        assert!(!c.access(a));
        assert!(!c.access(b));
        assert!(!c.access(d)); // evicts a (LRU)
        assert!(!c.probe(a));
        assert!(c.probe(b));
        assert!(c.probe(d));
        // Touch b, then insert a again: d is now LRU and gets evicted.
        assert!(c.access(b));
        assert!(!c.access(a));
        assert!(!c.probe(d));
    }

    #[test]
    fn streaming_larger_than_capacity_misses() {
        let mut c = tiny();
        for addr in (0..64 * 1024u64).step_by(64) {
            c.access(addr);
        }
        assert_eq!(c.hits(), 0);
        assert_eq!(c.misses(), 1024);
    }

    #[test]
    fn working_set_within_capacity_hits_after_warmup() {
        let mut c = Cache::new(CacheConfig::new(32 * 1024, 64, 8));
        // 16 KiB working set streamed twice.
        for _ in 0..2 {
            for addr in (0..16 * 1024u64).step_by(64) {
                c.access(addr);
            }
        }
        assert_eq!(c.misses(), 256);
        assert_eq!(c.hits(), 256);
    }

    #[test]
    fn reset_clears_state() {
        let mut c = tiny();
        c.access(0x40);
        c.reset();
        assert_eq!(c.hits() + c.misses(), 0);
        assert!(!c.probe(0x40));
    }
}
