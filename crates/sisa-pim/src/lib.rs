//! # sisa-pim
//!
//! Hardware cost models for the SISA reproduction: DRAM, in-situ
//! processing-using-memory (SISA-PUM, Ambit-style), near-memory processing
//! (SISA-PNM, Tesseract/HMC-style logic-layer cores), a set-associative cache
//! hierarchy and an out-of-order CPU baseline.
//!
//! ## Why a cost model instead of a cycle-accurate simulator
//!
//! The paper evaluates SISA with Sniper (a cycle-level x86 simulator driven by
//! Pin). That toolchain cannot run here, and its role in the paper is to
//! translate *memory behaviour* into cycles: the paper itself models every
//! SISA component with analytical delays layered on top of the simulation
//! (§9.1 "SISA Implementation": the SCU is "a small fixed delay", the SM
//! structure is "random memory accesses whenever the SCU cache is not hit",
//! set operations are "appropriate delays ... using the performance models
//! described in §8.3", and SISA-PUM is the closed form
//! `l_M + l_I * ceil(n/(q*R))`). This crate therefore implements exactly those
//! analytical models, plus an execution-driven cache/DRAM model for the CPU
//! baselines, so that relative runtimes, stall fractions and sensitivity
//! trends can be regenerated without x86 binaries.
//!
//! The components:
//!
//! * [`config`] — every architectural parameter (latencies, bandwidths,
//!   geometry), with defaults matching the paper's §9.1 platform (Tesseract
//!   PNM, Ambit PUM, an OoO multicore baseline).
//! * [`cache`] — a set-associative LRU cache simulator.
//! * [`cpu`] — the baseline CPU model: per-thread cache hierarchy + DRAM with
//!   optional bandwidth scaling, scalar-op accounting and stall tracking.
//! * [`pum`] — Ambit-style bulk bitwise operation timing and energy.
//! * [`pnm`] — logic-layer streaming / random-access models (§8.3).
//! * [`energy`] — per-operation energy accounting.
//! * [`stats`] — counters shared by all models.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod config;
pub mod cpu;
pub mod energy;
pub mod pnm;
pub mod pum;
pub mod stats;

pub use cache::{Cache, CacheConfig};
pub use config::{CpuConfig, PimPlatform, PnmConfig, PumConfig};
pub use cpu::{AddressSpace, CpuThread, TaskCost};
pub use energy::EnergyModel;
pub use pnm::{LinkModel, LinkRoute, PnmModel};
pub use pum::PumModel;
pub use stats::MemoryStats;

/// Simulated cycles (at the platform clock defined in [`config`]).
pub type Cycles = u64;
