//! SISA-PNM: near-memory processing on logic-layer vault cores.
//!
//! Sparse-array set operations are executed by simple in-order cores in the
//! logic layer of 3D-stacked DRAM (Tesseract/HMC-style) or by DRAM-die cores
//! (UPMEM-style). The paper models their runtime with two closed forms (§8.3):
//!
//! * **Streaming** (merge-based operations):
//!   `l_M + W · max(|A|, |B|) / min(b_M, b_L)`
//!   — both inputs are streamed in parallel, bottlenecked by the smaller of
//!   the vault bandwidth and the inter-vault link bandwidth.
//! * **Random accesses** (galloping, probing):
//!   `l_M · min(|A|, |B|) · log(max(|A|, |B|))`
//!   — each element of the smaller set triggers a binary search over the
//!   larger one.
//!
//! The SCU evaluates both models and picks the cheaper variant (§8.2); this
//! module provides the models plus costs for the remaining PNM-executed
//! operations (bit-probe intersections against a DB, single-element updates,
//! metadata accesses).

use crate::config::PnmConfig;
use crate::Cycles;

/// The near-memory cost model.
#[derive(Clone, Copy, Debug)]
pub struct PnmModel {
    cfg: PnmConfig,
}

impl PnmModel {
    /// Creates the model from a configuration.
    #[must_use]
    pub fn new(cfg: PnmConfig) -> Self {
        Self { cfg }
    }

    /// The configuration in use.
    #[must_use]
    pub fn config(&self) -> &PnmConfig {
        &self.cfg
    }

    /// Streaming (merge) cost for sorted sparse arrays with `a_len` and
    /// `b_len` elements: `l_M + W · max / min(b_M, b_L)` plus one compare per
    /// element pair on the in-order core.
    #[must_use]
    pub fn streaming_cost(&self, a_len: usize, b_len: usize) -> Cycles {
        let max = a_len.max(b_len) as f64;
        let bytes = max * self.cfg.word_bytes as f64;
        let transfer = bytes / self.cfg.effective_stream_bandwidth();
        // The in-order core advances both streams together; the longer stream
        // bounds the compare work, which overlaps with the transfers.
        let compute = max / self.cfg.core_ipc;
        self.cfg.dram_latency + transfer.max(compute).ceil() as Cycles
    }

    /// Random-access (galloping) cost: the smaller set's elements each binary
    /// search the larger set. The paper's conservative model charges a memory
    /// access per probe: `l_M · min · log₂(max)` — but probes into a set small
    /// enough to stay resident in the vault core's 32 KiB L1 are cheap, which
    /// we reflect with a resident-fraction discount (otherwise galloping would
    /// never win and instruction `0x1` would be dead).
    #[must_use]
    pub fn random_access_cost(&self, a_len: usize, b_len: usize) -> Cycles {
        let small = a_len.min(b_len) as u64;
        let large = a_len.max(b_len) as u64;
        if small == 0 || large == 0 {
            return self.cfg.dram_latency;
        }
        let probes = small * (64 - large.leading_zeros() as u64).max(1);
        let probe_cost = self.probe_latency(large as usize * self.cfg.word_bytes);
        self.cfg.dram_latency + probes * probe_cost
    }

    /// Probing cost for an SA ∩ DB style operation: stream the sparse array
    /// and perform one bit probe per element into the dense bitvector.
    #[must_use]
    pub fn probe_cost(&self, sparse_len: usize, db_bits: usize) -> Cycles {
        let stream_bytes = (sparse_len * self.cfg.word_bytes) as f64;
        let transfer = (stream_bytes / self.cfg.effective_stream_bandwidth()).ceil() as Cycles;
        let probe = self.probe_latency(db_bits / 8);
        self.cfg.dram_latency + transfer + sparse_len as u64 * probe
    }

    /// Single-element update (`A ∪ {x}` / `A \ {x}` on a sparse array, or a
    /// bit update routed to PNM): one near-memory DRAM access.
    #[must_use]
    pub fn element_update_cost(&self) -> Cycles {
        self.cfg.dram_latency
    }

    /// Cost of fetching one set-metadata entry from memory (SM miss path).
    #[must_use]
    pub fn metadata_access_cost(&self) -> Cycles {
        self.cfg.dram_latency
    }

    /// Average latency of one dependent probe into a structure of
    /// `structure_bytes` bytes: probes into structures that fit in the vault
    /// core's 32 KiB L1 cost a couple of cycles; larger structures pay a
    /// proportionally growing share of the near-memory DRAM latency.
    #[must_use]
    pub fn probe_latency(&self, structure_bytes: usize) -> Cycles {
        const VAULT_L1_BYTES: usize = 32 * 1024;
        if structure_bytes <= VAULT_L1_BYTES {
            return 2;
        }
        let miss_fraction = 1.0 - VAULT_L1_BYTES as f64 / structure_bytes as f64;
        2 + (miss_fraction * self.cfg.dram_latency as f64 * 0.5).round() as Cycles
    }

    /// The number of vault cores available, i.e. the maximum number of set
    /// operations that can execute concurrently with full per-vault bandwidth
    /// (Tesseract-style bandwidth scalability, §8.4).
    #[must_use]
    pub fn parallel_units(&self) -> usize {
        self.cfg.total_vaults()
    }
}

impl Default for PnmModel {
    fn default() -> Self {
        Self::new(PnmConfig::default())
    }
}

/// Cost model for moving set data between vaults and cubes.
///
/// A flat runtime executes every operation "where the data already is"; a
/// sharded multi-cube runtime (one engine per vault group / cube) must move
/// one operand whenever a binary operation's inputs live on different shards.
/// Tesseract-style PIM prices that movement as hop latency plus a
/// bandwidth-limited transfer: `hops · l_H + ⌈bytes / b⌉`, where `b` is the
/// intra-cube crossbar share for neighbouring shards and the external SerDes
/// bandwidth once the transfer crosses a cube boundary.
#[derive(Clone, Copy, Debug)]
pub struct LinkModel {
    cfg: PnmConfig,
}

impl LinkModel {
    /// Creates the model from a PNM configuration.
    #[must_use]
    pub fn new(cfg: PnmConfig) -> Self {
        Self { cfg }
    }

    /// The configuration in use.
    #[must_use]
    pub fn config(&self) -> &PnmConfig {
        &self.cfg
    }

    /// Width of the (near-)square cube mesh used for hop counting: the
    /// smallest `w` with `w² ≥ cubes` (4 for the default 16 cubes, 3 for 9).
    #[must_use]
    pub fn mesh_width(&self) -> usize {
        let cubes = self.cfg.cubes.max(1);
        (1..=cubes).find(|w| w * w >= cubes).unwrap_or(1)
    }

    /// Resolves the route between two shards when `num_shards` shards are
    /// spread over the configured cubes.
    ///
    /// Shards are laid out contiguously over the cubes; two shards mapped to
    /// the same cube are one vault-to-vault crossbar hop apart, otherwise the
    /// hop count is the Manhattan distance between their cubes on a
    /// [`LinkModel::mesh_width`]-wide mesh and the route crosses the external
    /// SerDes links. The same shard is zero hops from itself.
    #[must_use]
    pub fn route(&self, shard_a: usize, shard_b: usize, num_shards: usize) -> LinkRoute {
        if shard_a == shard_b {
            return LinkRoute {
                hops: 0,
                inter_cube: false,
            };
        }
        let cubes = self.cfg.cubes.max(1);
        let n = num_shards.max(1);
        let cube_of = |shard: usize| (shard.min(n - 1) * cubes) / n;
        let (ca, cb) = (cube_of(shard_a), cube_of(shard_b));
        if ca == cb {
            // Intra-cube: one crossbar hop between vault groups.
            return LinkRoute {
                hops: 1,
                inter_cube: false,
            };
        }
        let width = self.mesh_width();
        let coord = |c: usize| (c % width, c / width);
        let ((xa, ya), (xb, yb)) = (coord(ca), coord(cb));
        LinkRoute {
            hops: xa.abs_diff(xb) + ya.abs_diff(yb),
            inter_cube: true,
        }
    }

    /// Number of link hops between two shards (see [`LinkModel::route`]).
    #[must_use]
    pub fn hops_between(&self, shard_a: usize, shard_b: usize, num_shards: usize) -> usize {
        self.route(shard_a, shard_b, num_shards).hops
    }

    /// Cycles to move `bytes` bytes over `route` (zero when the data does not
    /// move). Inter-cube routes see the external SerDes bandwidth even at one
    /// hop; intra-cube routes use the crossbar share.
    #[must_use]
    pub fn transfer_cost(&self, bytes: usize, route: LinkRoute) -> Cycles {
        if route.hops == 0 || bytes == 0 {
            return 0;
        }
        let bandwidth = if route.inter_cube {
            self.cfg.inter_cube_bandwidth_bytes_per_cycle
        } else {
            self.cfg.link_bandwidth_bytes_per_cycle
        };
        let transfer = (bytes as f64 / bandwidth).ceil() as Cycles;
        self.cfg.link_hop_latency * route.hops as u64 + transfer
    }
}

/// A resolved shard-to-shard route: how many link hops the data traverses and
/// whether any of them are external cube-to-cube SerDes links (which carry
/// less per-transfer bandwidth than the intra-cube crossbar).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LinkRoute {
    /// Number of link hops (0 = same shard).
    pub hops: usize,
    /// Whether the route crosses a cube boundary.
    pub inter_cube: bool,
}

impl Default for LinkModel {
    fn default() -> Self {
        Self::new(PnmConfig::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streaming_scales_with_the_larger_input() {
        let m = PnmModel::default();
        let small_small = m.streaming_cost(100, 100);
        let small_large = m.streaming_cost(100, 10_000);
        let large_large = m.streaming_cost(10_000, 10_000);
        assert!(small_small < small_large);
        // max() dominates, so (100, 10k) and (10k, 10k) are close.
        let diff = large_large.abs_diff(small_large);
        assert!(diff * 10 < large_large);
    }

    #[test]
    fn galloping_beats_merge_for_very_skewed_sizes() {
        let m = PnmModel::default();
        // |A| = 4 against |B| = 1M: galloping should win.
        assert!(m.random_access_cost(4, 1_000_000) < m.streaming_cost(4, 1_000_000));
        // Similar sizes: merge should win.
        assert!(m.streaming_cost(50_000, 60_000) < m.random_access_cost(50_000, 60_000));
    }

    #[test]
    fn probe_cost_grows_with_both_inputs() {
        let m = PnmModel::default();
        assert!(m.probe_cost(10, 1 << 10) < m.probe_cost(1000, 1 << 10));
        assert!(m.probe_cost(1000, 1 << 10) <= m.probe_cost(1000, 1 << 24));
    }

    #[test]
    fn probe_latency_is_small_for_resident_structures() {
        let m = PnmModel::default();
        assert_eq!(m.probe_latency(1024), 2);
        assert!(m.probe_latency(16 * 1024 * 1024) > 10);
    }

    #[test]
    fn empty_inputs_cost_only_latency() {
        let m = PnmModel::default();
        let l = m.config().dram_latency;
        assert_eq!(m.random_access_cost(0, 100), l);
        assert_eq!(m.element_update_cost(), l);
        assert_eq!(m.metadata_access_cost(), l);
    }

    #[test]
    fn parallel_units_match_vault_count() {
        let m = PnmModel::default();
        assert_eq!(m.parallel_units(), 512);
    }

    #[test]
    fn link_routes_reflect_the_shard_layout() {
        let l = LinkModel::default();
        // Same shard: no movement.
        assert_eq!(l.hops_between(3, 3, 8), 0);
        // 32 shards over 16 cubes: shards 0 and 1 share cube 0 (one
        // vault-to-vault hop); shards 0 and 2 are on adjacent cubes.
        let same_cube = l.route(0, 1, 32);
        assert_eq!(same_cube.hops, 1);
        assert!(!same_cube.inter_cube);
        let adjacent_cubes = l.route(0, 2, 32);
        assert_eq!(adjacent_cubes.hops, 1);
        assert!(adjacent_cubes.inter_cube, "cube 0 → cube 1 is external");
        // 16 shards, one per cube: opposite mesh corners are 6 hops apart.
        assert_eq!(l.hops_between(0, 15, 16), 6);
        // Routes are symmetric.
        for n in [2usize, 4, 16, 32] {
            for a in 0..n.min(8) {
                for b in 0..n.min(8) {
                    assert_eq!(l.route(a, b, n), l.route(b, a, n));
                }
            }
        }
    }

    #[test]
    fn link_transfers_price_latency_and_bandwidth() {
        let l = LinkModel::default();
        let local = LinkRoute {
            hops: 0,
            inter_cube: false,
        };
        let crossbar = LinkRoute {
            hops: 1,
            inter_cube: false,
        };
        let far = LinkRoute {
            hops: 4,
            inter_cube: true,
        };
        assert_eq!(l.transfer_cost(4096, local), 0);
        assert_eq!(l.transfer_cost(0, far), 0);
        let near_cost = l.transfer_cost(4096, crossbar);
        assert!(near_cost > 0);
        // More hops cost more latency and cross-cube transfers see the lower
        // external bandwidth.
        assert!(l.transfer_cost(4096, far) > near_cost);
        // Bandwidth term dominates for large payloads.
        assert!(l.transfer_cost(1 << 20, crossbar) > l.transfer_cost(1 << 10, crossbar) * 100);
    }

    #[test]
    fn one_hop_inter_cube_transfers_pay_the_serdes_bandwidth() {
        // A single mesh hop between adjacent cubes must not be billed at the
        // intra-cube crossbar rate: same hop count, slower external links.
        let l = LinkModel::default();
        let crossbar = LinkRoute {
            hops: 1,
            inter_cube: false,
        };
        let serdes = LinkRoute {
            hops: 1,
            inter_cube: true,
        };
        assert!(l.transfer_cost(4096, serdes) > l.transfer_cost(4096, crossbar));
    }

    #[test]
    fn mesh_width_follows_the_configured_cube_count() {
        let nine = LinkModel::new(PnmConfig {
            cubes: 9,
            ..PnmConfig::default()
        });
        assert_eq!(nine.mesh_width(), 3);
        assert_eq!(LinkModel::default().mesh_width(), 4);
        // 9 cubes, one shard per cube: opposite corners of the 3×3 mesh.
        let corner = nine.route(0, 8, 9);
        assert_eq!(corner.hops, 4);
        assert!(corner.inter_cube);
    }

    #[test]
    fn two_shards_on_default_geometry_cross_cubes() {
        let l = LinkModel::default();
        // 2 shards over 16 cubes: shard 0 → cube 0, shard 1 → cube 8.
        let route = l.route(0, 1, 2);
        assert!(route.inter_cube, "two half-machine shards are remote");
        assert!(route.hops >= 2);
    }
}
