//! SISA-PNM: near-memory processing on logic-layer vault cores.
//!
//! Sparse-array set operations are executed by simple in-order cores in the
//! logic layer of 3D-stacked DRAM (Tesseract/HMC-style) or by DRAM-die cores
//! (UPMEM-style). The paper models their runtime with two closed forms (§8.3):
//!
//! * **Streaming** (merge-based operations):
//!   `l_M + W · max(|A|, |B|) / min(b_M, b_L)`
//!   — both inputs are streamed in parallel, bottlenecked by the smaller of
//!   the vault bandwidth and the inter-vault link bandwidth.
//! * **Random accesses** (galloping, probing):
//!   `l_M · min(|A|, |B|) · log(max(|A|, |B|))`
//!   — each element of the smaller set triggers a binary search over the
//!   larger one.
//!
//! The SCU evaluates both models and picks the cheaper variant (§8.2); this
//! module provides the models plus costs for the remaining PNM-executed
//! operations (bit-probe intersections against a DB, single-element updates,
//! metadata accesses).

use crate::config::PnmConfig;
use crate::Cycles;

/// The near-memory cost model.
#[derive(Clone, Copy, Debug)]
pub struct PnmModel {
    cfg: PnmConfig,
}

impl PnmModel {
    /// Creates the model from a configuration.
    #[must_use]
    pub fn new(cfg: PnmConfig) -> Self {
        Self { cfg }
    }

    /// The configuration in use.
    #[must_use]
    pub fn config(&self) -> &PnmConfig {
        &self.cfg
    }

    /// Streaming (merge) cost for sorted sparse arrays with `a_len` and
    /// `b_len` elements: `l_M + W · max / min(b_M, b_L)` plus one compare per
    /// element pair on the in-order core.
    #[must_use]
    pub fn streaming_cost(&self, a_len: usize, b_len: usize) -> Cycles {
        let max = a_len.max(b_len) as f64;
        let bytes = max * self.cfg.word_bytes as f64;
        let transfer = bytes / self.cfg.effective_stream_bandwidth();
        // The in-order core advances both streams together; the longer stream
        // bounds the compare work, which overlaps with the transfers.
        let compute = max / self.cfg.core_ipc;
        self.cfg.dram_latency + transfer.max(compute).ceil() as Cycles
    }

    /// Random-access (galloping) cost: the smaller set's elements each binary
    /// search the larger set. The paper's conservative model charges a memory
    /// access per probe: `l_M · min · log₂(max)` — but probes into a set small
    /// enough to stay resident in the vault core's 32 KiB L1 are cheap, which
    /// we reflect with a resident-fraction discount (otherwise galloping would
    /// never win and instruction `0x1` would be dead).
    #[must_use]
    pub fn random_access_cost(&self, a_len: usize, b_len: usize) -> Cycles {
        let small = a_len.min(b_len) as u64;
        let large = a_len.max(b_len) as u64;
        if small == 0 || large == 0 {
            return self.cfg.dram_latency;
        }
        let probes = small * (64 - large.leading_zeros() as u64).max(1);
        let probe_cost = self.probe_latency(large as usize * self.cfg.word_bytes);
        self.cfg.dram_latency + probes * probe_cost
    }

    /// Probing cost for an SA ∩ DB style operation: stream the sparse array
    /// and perform one bit probe per element into the dense bitvector.
    #[must_use]
    pub fn probe_cost(&self, sparse_len: usize, db_bits: usize) -> Cycles {
        let stream_bytes = (sparse_len * self.cfg.word_bytes) as f64;
        let transfer = (stream_bytes / self.cfg.effective_stream_bandwidth()).ceil() as Cycles;
        let probe = self.probe_latency(db_bits / 8);
        self.cfg.dram_latency + transfer + sparse_len as u64 * probe
    }

    /// Single-element update (`A ∪ {x}` / `A \ {x}` on a sparse array, or a
    /// bit update routed to PNM): one near-memory DRAM access.
    #[must_use]
    pub fn element_update_cost(&self) -> Cycles {
        self.cfg.dram_latency
    }

    /// Cost of fetching one set-metadata entry from memory (SM miss path).
    #[must_use]
    pub fn metadata_access_cost(&self) -> Cycles {
        self.cfg.dram_latency
    }

    /// Average latency of one dependent probe into a structure of
    /// `structure_bytes` bytes: probes into structures that fit in the vault
    /// core's 32 KiB L1 cost a couple of cycles; larger structures pay a
    /// proportionally growing share of the near-memory DRAM latency.
    #[must_use]
    pub fn probe_latency(&self, structure_bytes: usize) -> Cycles {
        const VAULT_L1_BYTES: usize = 32 * 1024;
        if structure_bytes <= VAULT_L1_BYTES {
            return 2;
        }
        let miss_fraction = 1.0 - VAULT_L1_BYTES as f64 / structure_bytes as f64;
        2 + (miss_fraction * self.cfg.dram_latency as f64 * 0.5).round() as Cycles
    }

    /// The number of vault cores available, i.e. the maximum number of set
    /// operations that can execute concurrently with full per-vault bandwidth
    /// (Tesseract-style bandwidth scalability, §8.4).
    #[must_use]
    pub fn parallel_units(&self) -> usize {
        self.cfg.total_vaults()
    }
}

impl Default for PnmModel {
    fn default() -> Self {
        Self::new(PnmConfig::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streaming_scales_with_the_larger_input() {
        let m = PnmModel::default();
        let small_small = m.streaming_cost(100, 100);
        let small_large = m.streaming_cost(100, 10_000);
        let large_large = m.streaming_cost(10_000, 10_000);
        assert!(small_small < small_large);
        // max() dominates, so (100, 10k) and (10k, 10k) are close.
        let diff = large_large.abs_diff(small_large);
        assert!(diff * 10 < large_large);
    }

    #[test]
    fn galloping_beats_merge_for_very_skewed_sizes() {
        let m = PnmModel::default();
        // |A| = 4 against |B| = 1M: galloping should win.
        assert!(m.random_access_cost(4, 1_000_000) < m.streaming_cost(4, 1_000_000));
        // Similar sizes: merge should win.
        assert!(m.streaming_cost(50_000, 60_000) < m.random_access_cost(50_000, 60_000));
    }

    #[test]
    fn probe_cost_grows_with_both_inputs() {
        let m = PnmModel::default();
        assert!(m.probe_cost(10, 1 << 10) < m.probe_cost(1000, 1 << 10));
        assert!(m.probe_cost(1000, 1 << 10) <= m.probe_cost(1000, 1 << 24));
    }

    #[test]
    fn probe_latency_is_small_for_resident_structures() {
        let m = PnmModel::default();
        assert_eq!(m.probe_latency(1024), 2);
        assert!(m.probe_latency(16 * 1024 * 1024) > 10);
    }

    #[test]
    fn empty_inputs_cost_only_latency() {
        let m = PnmModel::default();
        let l = m.config().dram_latency;
        assert_eq!(m.random_access_cost(0, 100), l);
        assert_eq!(m.element_update_cost(), l);
        assert_eq!(m.metadata_access_cost(), l);
    }

    #[test]
    fn parallel_units_match_vault_count() {
        let m = PnmModel::default();
        assert_eq!(m.parallel_units(), 512);
    }
}
