//! Counters shared by the hardware models.

/// Memory-hierarchy event counters for one simulated thread or unit.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MemoryStats {
    /// L1 data-cache hits.
    pub l1_hits: u64,
    /// L1 data-cache misses.
    pub l1_misses: u64,
    /// L2 hits.
    pub l2_hits: u64,
    /// L2 misses.
    pub l2_misses: u64,
    /// L3 hits.
    pub l3_hits: u64,
    /// L3 misses (DRAM accesses).
    pub l3_misses: u64,
    /// Bytes transferred from DRAM.
    pub dram_bytes: u64,
    /// Scalar (non-memory) operations executed.
    pub scalar_ops: u64,
}

impl MemoryStats {
    /// Total cache-hierarchy accesses.
    #[must_use]
    pub fn accesses(&self) -> u64 {
        self.l1_hits + self.l1_misses
    }

    /// Number of DRAM accesses (L3 misses).
    #[must_use]
    pub fn dram_accesses(&self) -> u64 {
        self.l3_misses
    }

    /// L1 hit ratio (0 if no accesses).
    #[must_use]
    pub fn l1_hit_ratio(&self) -> f64 {
        if self.accesses() == 0 {
            0.0
        } else {
            self.l1_hits as f64 / self.accesses() as f64
        }
    }

    /// Adds another counter set into this one.
    pub fn merge(&mut self, other: &MemoryStats) {
        self.l1_hits += other.l1_hits;
        self.l1_misses += other.l1_misses;
        self.l2_hits += other.l2_hits;
        self.l2_misses += other.l2_misses;
        self.l3_hits += other.l3_hits;
        self.l3_misses += other.l3_misses;
        self.dram_bytes += other.dram_bytes;
        self.scalar_ops += other.scalar_ops;
    }

    /// The difference `self - earlier`, component-wise (used to compute
    /// per-task deltas from running totals).
    #[must_use]
    pub fn delta_since(&self, earlier: &MemoryStats) -> MemoryStats {
        MemoryStats {
            l1_hits: self.l1_hits - earlier.l1_hits,
            l1_misses: self.l1_misses - earlier.l1_misses,
            l2_hits: self.l2_hits - earlier.l2_hits,
            l2_misses: self.l2_misses - earlier.l2_misses,
            l3_hits: self.l3_hits - earlier.l3_hits,
            l3_misses: self.l3_misses - earlier.l3_misses,
            dram_bytes: self.dram_bytes - earlier.dram_bytes,
            scalar_ops: self.scalar_ops - earlier.scalar_ops,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_and_ratios() {
        let mut a = MemoryStats {
            l1_hits: 90,
            l1_misses: 10,
            l2_hits: 6,
            l2_misses: 4,
            l3_hits: 1,
            l3_misses: 3,
            dram_bytes: 192,
            scalar_ops: 500,
        };
        let b = a;
        a.merge(&b);
        assert_eq!(a.l1_hits, 180);
        assert_eq!(a.dram_accesses(), 6);
        assert!((a.l1_hit_ratio() - 0.9).abs() < 1e-12);
        assert_eq!(MemoryStats::default().l1_hit_ratio(), 0.0);
    }

    #[test]
    fn delta_since_subtracts() {
        let earlier = MemoryStats {
            l1_hits: 10,
            ..MemoryStats::default()
        };
        let now = MemoryStats {
            l1_hits: 25,
            l1_misses: 5,
            ..MemoryStats::default()
        };
        let d = now.delta_since(&earlier);
        assert_eq!(d.l1_hits, 15);
        assert_eq!(d.l1_misses, 5);
    }
}
