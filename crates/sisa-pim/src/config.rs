//! Architectural parameters of the simulated platforms.
//!
//! Defaults follow the paper's evaluation setup (§9.1):
//!
//! * **SISA-PNM** matches Tesseract: 16 HMC cubes × 32 vaults, one simple
//!   in-order core per vault with 32 KiB L1, 16 GB/s of memory bandwidth per
//!   vault, scalable with the number of vaults used.
//! * **SISA-PUM** matches Ambit: bulk bitwise AND/OR/NOT on 8 KiB DRAM rows,
//!   operands copied to designated rows with RowClone.
//! * **Baseline CPU**: an out-of-order multicore with 32 KiB L1, 256 KiB L2,
//!   a shared 8 MiB L3 and (for fairness in the main comparison) memory
//!   bandwidth that scales with the core count to match SISA-PNM.
//!
//! All latencies are expressed in cycles of a 2 GHz clock.

use serde::{Deserialize, Serialize};

/// Clock frequency used to convert between nanoseconds and cycles.
pub const CLOCK_GHZ: f64 = 2.0;

/// Converts nanoseconds into clock cycles.
#[must_use]
pub fn ns_to_cycles(ns: f64) -> u64 {
    (ns * CLOCK_GHZ).round() as u64
}

/// Configuration of the baseline out-of-order CPU platform.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct CpuConfig {
    /// Number of cores (threads) available.
    pub cores: usize,
    /// Sustainable scalar instructions per cycle per core.
    pub ipc: f64,
    /// L1 data cache size in bytes (per core).
    pub l1_bytes: usize,
    /// L2 cache size in bytes (per core).
    pub l2_bytes: usize,
    /// L3 cache size in bytes (shared across all cores).
    pub l3_bytes: usize,
    /// Cache line size in bytes.
    pub line_bytes: usize,
    /// L1 hit latency in cycles.
    pub l1_latency: u64,
    /// L2 hit latency in cycles.
    pub l2_latency: u64,
    /// L3 hit latency in cycles.
    pub l3_latency: u64,
    /// DRAM access latency in cycles (`l_M`).
    pub dram_latency: u64,
    /// Peak DRAM bandwidth in bytes per cycle for the whole socket when
    /// `bandwidth_scaling` is off.
    pub dram_bandwidth_bytes_per_cycle: f64,
    /// Per-core DRAM bandwidth in bytes/cycle when `bandwidth_scaling` is on
    /// (the paper matches this to one PNM vault: 16 GB/s).
    pub scaled_bandwidth_per_core: f64,
    /// Whether memory bandwidth scales with the number of cores (the paper's
    /// "fair comparison" configuration). Figure 1 uses `false` (a stock
    /// multicore), the Figure 6/8 baselines use `true`.
    pub bandwidth_scaling: bool,
    /// Fraction of a DRAM miss latency the out-of-order window can hide
    /// (0.0 = fully exposed, 1.0 = fully hidden).
    pub mlp_hiding: f64,
}

impl Default for CpuConfig {
    fn default() -> Self {
        Self {
            cores: 32,
            ipc: 4.0,
            l1_bytes: 32 * 1024,
            l2_bytes: 256 * 1024,
            l3_bytes: 8 * 1024 * 1024,
            line_bytes: 64,
            l1_latency: 4,
            l2_latency: 12,
            l3_latency: 38,
            dram_latency: ns_to_cycles(60.0),
            // 25.6 GB/s per channel, 4 channels ≈ 100 GB/s ≈ 51 B/cycle @ 2 GHz.
            dram_bandwidth_bytes_per_cycle: 51.2,
            // 16 GB/s per vault ≈ 8 B/cycle @ 2 GHz.
            scaled_bandwidth_per_core: 8.0,
            bandwidth_scaling: true,
            mlp_hiding: 0.4,
        }
    }
}

impl CpuConfig {
    /// The Figure 1 configuration: a stock multicore whose total memory
    /// bandwidth does *not* grow with the thread count, which is what makes
    /// stalled-cycle ratios climb as threads are added.
    #[must_use]
    pub fn stock_multicore() -> Self {
        Self {
            bandwidth_scaling: false,
            ..Self::default()
        }
    }

    /// Effective DRAM bandwidth (bytes/cycle) available to `threads` active
    /// threads in total.
    #[must_use]
    pub fn total_bandwidth(&self, threads: usize) -> f64 {
        if self.bandwidth_scaling {
            self.scaled_bandwidth_per_core * threads.max(1) as f64
        } else {
            self.dram_bandwidth_bytes_per_cycle
        }
    }
}

/// Configuration of the SISA-PNM platform (logic-layer cores in 3D-stacked
/// DRAM, as in Tesseract / HMC).
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct PnmConfig {
    /// Number of HMC cubes.
    pub cubes: usize,
    /// Vaults per cube (each hosts one in-order core).
    pub vaults_per_cube: usize,
    /// Per-vault memory bandwidth in bytes per cycle (`b_M`): 16 GB/s.
    pub vault_bandwidth_bytes_per_cycle: f64,
    /// Inter-vault / interconnect bandwidth in bytes per cycle (`b_L`).
    pub link_bandwidth_bytes_per_cycle: f64,
    /// DRAM access latency from a vault core, in cycles (`l_M`). Lower than
    /// the host CPU's because the access does not traverse the off-chip link.
    pub dram_latency: u64,
    /// Scalar throughput of the simple in-order vault core (ops per cycle).
    pub core_ipc: f64,
    /// Word size in bytes for sparse-array elements (`W` = 32 bits).
    pub word_bytes: usize,
    /// Latency of traversing one vault/cube link hop, in cycles (SerDes
    /// serialisation plus switching; used by the inter-vault transfer model).
    pub link_hop_latency: u64,
    /// Per-transfer bandwidth of the external cube-to-cube SerDes links in
    /// bytes per cycle (`b_C`); lower than the intra-cube share because
    /// inter-cube traffic is multiplexed over a handful of external links.
    pub inter_cube_bandwidth_bytes_per_cycle: f64,
    /// Number of vaults ganged behind one virtual issue lane of the
    /// scoreboarded issue queue. One SISA set operation occupies a whole lane
    /// (its data is striped across the lane's vaults), so the usable
    /// instruction-level parallelism is `total_vaults / vaults_per_lane`
    /// rather than one instruction per vault — the occupancy limit real PIM
    /// studies observe. The default gangs one cube's worth of vaults per
    /// lane.
    pub vaults_per_lane: usize,
}

impl Default for PnmConfig {
    fn default() -> Self {
        Self {
            cubes: 16,
            vaults_per_cube: 32,
            // 16 GB/s ≈ 8 B/cycle @ 2 GHz.
            vault_bandwidth_bytes_per_cycle: 8.0,
            // SerDes links between vaults/cubes: model 120 GB/s shared ≈ 60 B/c,
            // but per-operation we conservatively use the per-vault share.
            link_bandwidth_bytes_per_cycle: 6.0,
            // Vault cores sit next to their DRAM partition: row accesses skip
            // the off-chip link and most of the queueing a host access sees.
            dram_latency: ns_to_cycles(30.0),
            core_ipc: 1.0,
            word_bytes: 4,
            // A vault-to-vault or cube-to-cube hop costs a few nanoseconds of
            // SerDes serialisation and switching.
            link_hop_latency: ns_to_cycles(4.0),
            // External HMC links offer less per-transfer bandwidth than the
            // intra-cube crossbar share modelled by `link_bandwidth`.
            inter_cube_bandwidth_bytes_per_cycle: 4.0,
            // One lane per cube: a set operation stripes across the cube's 32
            // vaults, so 16 cubes sustain 16 concurrent set operations.
            vaults_per_lane: 32,
        }
    }
}

impl PnmConfig {
    /// Total number of vault cores (the maximum useful parallelism).
    #[must_use]
    pub fn total_vaults(&self) -> usize {
        self.cubes * self.vaults_per_cube
    }

    /// The effective streaming bandwidth `min(b_M, b_L)` used by the §8.3
    /// streaming model.
    #[must_use]
    pub fn effective_stream_bandwidth(&self) -> f64 {
        self.vault_bandwidth_bytes_per_cycle
            .min(self.link_bandwidth_bytes_per_cycle)
    }

    /// Number of virtual issue lanes the cube/vault geometry sustains:
    /// `total_vaults / vaults_per_lane`, at least 1. This is the lane count
    /// the scoreboarded issue queue derives when the runtime configuration
    /// does not override it.
    #[must_use]
    pub fn issue_lanes(&self) -> usize {
        (self.total_vaults() / self.vaults_per_lane.max(1)).max(1)
    }
}

/// Configuration of the SISA-PUM platform (Ambit-style in-DRAM bulk bitwise
/// processing).
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct PumConfig {
    /// DRAM row size in bits (`R`); the paper uses 8 KiB rows.
    pub row_bits: usize,
    /// Number of rows that can be processed in parallel (`q`): subarrays ×
    /// banks that can operate concurrently.
    pub parallel_rows: usize,
    /// DRAM access latency to initiate an operation, in cycles (`l_M`).
    pub dram_latency: u64,
    /// Latency of one in-situ bulk bitwise step (a triple-row activation plus
    /// the RowClone copies), in cycles (`l_I`).
    pub insitu_op_latency: u64,
}

impl Default for PumConfig {
    fn default() -> Self {
        Self {
            row_bits: 8 * 1024 * 8,
            // 16 banks/vault × 32 vaults/cube with one designated-subarray
            // group active per bank: model 512 concurrently usable rows.
            parallel_rows: 512,
            dram_latency: ns_to_cycles(30.0),
            // AAP (activate-activate-precharge) sequences in Ambit take on the
            // order of ~100 ns per triple-row operation including RowClone.
            insitu_op_latency: ns_to_cycles(100.0),
        }
    }
}

/// The full SISA hardware platform: PNM + PUM plus the SCU parameters.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct PimPlatform {
    /// Near-memory (logic layer) configuration.
    pub pnm: PnmConfig,
    /// In-situ (bulk bitwise) configuration.
    pub pum: PumConfig,
    /// Fixed SCU decode/dispatch delay per SISA instruction, in cycles.
    pub scu_delay: u64,
    /// SCU metadata-cache (SMB) hit latency in cycles.
    pub smb_hit_latency: u64,
    /// SMB capacity in metadata entries (32 KiB / ~16 B per entry by default).
    pub smb_entries: usize,
    /// Whether the SMB is enabled at all (the §9.2 "SCU cache" sensitivity
    /// study disables it).
    pub smb_enabled: bool,
    /// Latency of fetching a missing SM entry from memory, in cycles.
    pub sm_miss_latency: u64,
    /// Capacity of the SCU's physical set-slot renaming table: how many
    /// physical tags the set-ID renaming layer can keep in flight (one slot
    /// per vault by default, mirroring a per-vault physical set directory).
    /// This is the pool `sisa_core::SisaConfig::renamed` arms; a runtime with
    /// renaming disabled never touches it.
    pub rename_tag_slots: usize,
}

impl Default for PimPlatform {
    fn default() -> Self {
        Self {
            pnm: PnmConfig::default(),
            pum: PumConfig::default(),
            scu_delay: 4,
            smb_hit_latency: 2,
            smb_entries: 2048,
            smb_enabled: true,
            sm_miss_latency: ns_to_cycles(40.0),
            // One physical set slot per vault: 16 cubes x 32 vaults.
            rename_tag_slots: 512,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_conversion() {
        assert_eq!(ns_to_cycles(60.0), 120);
        assert_eq!(ns_to_cycles(0.0), 0);
    }

    #[test]
    fn default_cpu_matches_paper_setup() {
        let cfg = CpuConfig::default();
        assert_eq!(cfg.cores, 32);
        assert_eq!(cfg.l1_bytes, 32 * 1024);
        assert_eq!(cfg.l2_bytes, 256 * 1024);
        assert_eq!(cfg.l3_bytes, 8 * 1024 * 1024);
        assert!(cfg.bandwidth_scaling);
    }

    #[test]
    fn bandwidth_scaling_behaviour() {
        let scaled = CpuConfig::default();
        assert!(scaled.total_bandwidth(32) > scaled.total_bandwidth(1) * 16.0);
        let stock = CpuConfig::stock_multicore();
        assert_eq!(stock.total_bandwidth(1), stock.total_bandwidth(32));
    }

    #[test]
    fn default_pnm_matches_tesseract_geometry() {
        let cfg = PnmConfig::default();
        assert_eq!(cfg.cubes, 16);
        assert_eq!(cfg.vaults_per_cube, 32);
        assert_eq!(cfg.total_vaults(), 512);
        assert!(cfg.effective_stream_bandwidth() <= cfg.vault_bandwidth_bytes_per_cycle);
        assert!(cfg.link_hop_latency > 0);
        assert!(
            cfg.inter_cube_bandwidth_bytes_per_cycle <= cfg.link_bandwidth_bytes_per_cycle,
            "external SerDes links must not be faster than the intra-cube share"
        );
        // One lane per cube by default; degenerate occupancy still yields a
        // usable lane.
        assert_eq!(cfg.issue_lanes(), cfg.cubes);
        let starved = PnmConfig {
            vaults_per_lane: 10_000,
            ..cfg
        };
        assert_eq!(starved.issue_lanes(), 1);
        let zero = PnmConfig {
            vaults_per_lane: 0,
            ..cfg
        };
        assert_eq!(zero.issue_lanes(), cfg.total_vaults());
    }

    #[test]
    fn default_pum_matches_ambit_row_size() {
        let cfg = PumConfig::default();
        assert_eq!(cfg.row_bits, 65_536);
        assert!(cfg.parallel_rows >= 1);
    }

    #[test]
    fn platform_config_round_trips_through_json() {
        // The derived Serialize/Deserialize impls (including nested structs)
        // must reproduce the exact platform; bench outputs rely on this for
        // machine-readable provenance.
        let platform = PimPlatform::default();
        let json = serde_json::to_string_pretty(&platform).unwrap();
        let back: PimPlatform = serde_json::from_str(&json).unwrap();
        assert_eq!(back, platform);

        let cpu = CpuConfig::stock_multicore();
        let back: CpuConfig = serde_json::from_str(&serde_json::to_string(&cpu).unwrap()).unwrap();
        assert_eq!(back, cpu);
    }

    #[test]
    fn platform_default_enables_smb() {
        let p = PimPlatform::default();
        assert!(p.smb_enabled);
        assert!(p.smb_entries > 0);
        assert!(p.scu_delay > 0);
    }

    #[test]
    fn rename_tag_pool_matches_the_vault_count() {
        let p = PimPlatform::default();
        assert_eq!(
            p.rename_tag_slots,
            p.pnm.total_vaults(),
            "one physical set slot per vault"
        );
    }
}
