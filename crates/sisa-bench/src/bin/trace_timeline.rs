//! Lane-timeline capture: Perfetto-loadable Chrome traces of tc and kcc-4
//! on soc-fbMsg, plus a sharded run with link-transfer tracks.
//!
//! The telemetry layer's headline contract is *makespan fidelity*: the
//! Chrome trace's recorded event span (the maximum retire cycle over every
//! instruction event) equals `ExecStats::makespan_cycles` exactly, so the
//! rendered timeline is not an illustration of the schedule — it *is* the
//! schedule. This harness asserts that identity on a real dataset for both
//! workloads on the renamed out-of-order flat runtime, and again on a
//! 2-shard engine where it additionally checks that every priced link
//! crossing appears on the timeline (traced transfer bytes ≡
//! `ExecStats::link_bytes`).
//!
//! Emits `results/trace_timeline.json` (schema in
//! [`sisa_bench::TraceTimeline`]) next to the `.trace.json` files that
//! <https://ui.perfetto.dev> loads unmodified. Flags: `--check` re-validates
//! existing artifacts without re-capturing; `--full` raises the search
//! budget to paper size.

use serde::Content;
use sisa_algorithms::{setcentric, SearchLimits};
use sisa_bench::{
    emit, format_table, full_mode, results_dir, TimelineLinks, TimelineSpan, TraceTimeline,
    RENAME_OOO_HEADLINE_WINDOW, TRACE_TIMELINE_SCHEMA_VERSION,
};
use sisa_core::telemetry::{ChromeTraceCollector, Collector, SharedCollector};
use sisa_core::{
    PartitionStrategy, SetEngine, SetGraphConfig, ShardedEngine, SisaConfig, SisaRuntime,
};
use std::collections::BTreeSet;
use std::path::Path;
use std::sync::{Arc, Mutex};

const GRAPH: &str = "soc-fbMsg";
const LANES: usize = 16;
const TAGS: usize = 512;
const SHARDS: usize = 2;

/// Captures one workload on a fresh renamed flat runtime, recording into
/// `trace` under track group `group`, and asserts the makespan identity.
fn capture_flat(
    trace: &Arc<Mutex<ChromeTraceCollector>>,
    group: u32,
    workload: &str,
    g: &sisa_graph::CsrGraph,
    window: usize,
    limits: &SearchLimits,
) -> TimelineSpan {
    let config = SisaConfig::with_rename_ooo(window, LANES, window, TAGS);
    let mut rt = SisaRuntime::new(config);
    let (oriented, _) = setcentric::orient_by_degeneracy(&mut rt, g, &SetGraphConfig::default());
    // The load/measure boundary restarts the pipeline clock at 0; attaching
    // here means the trace covers exactly the cycles the stats measure.
    rt.reset_stats();
    let sink: Arc<Mutex<dyn Collector + Send>> = Arc::clone(trace) as _;
    rt.attach_collector(SharedCollector::from_arc(sink), group);
    let result = match workload {
        "tc" => setcentric::triangle_count(&mut rt, &oriented, limits).result,
        "kcc-4" => setcentric::k_clique_count(&mut rt, &oriented, 4, limits).result,
        other => unreachable!("unknown workload {other}"),
    };
    let stats = rt.stats();
    let guard = trace.lock().expect("trace lock");
    let recorded = guard.recorded_makespan_for(group);
    assert_eq!(
        recorded, stats.makespan_cycles,
        "{workload}: the trace's event span must reproduce the makespan exactly"
    );
    let events: Vec<_> = guard
        .instruction_events()
        .iter()
        .filter(|e| e.group == group)
        .collect();
    let lanes_observed = events
        .iter()
        .filter_map(|e| e.lane)
        .collect::<BTreeSet<_>>()
        .len();
    TimelineSpan {
        workload: workload.to_string(),
        result,
        makespan_cycles: stats.makespan_cycles,
        recorded_makespan: recorded,
        instruction_events: events.len(),
        lanes_observed,
    }
}

/// Captures tc on a 2-shard engine so the timeline carries link tracks, and
/// asserts both the makespan identity and transfer-bytes conservation.
fn capture_sharded(
    trace: &Arc<Mutex<ChromeTraceCollector>>,
    g: &sisa_graph::CsrGraph,
    window: usize,
    limits: &SearchLimits,
) -> TimelineLinks {
    let config = SisaConfig::with_rename_ooo(window, LANES, window, TAGS);
    let mut engine = ShardedEngine::sisa(SHARDS, PartitionStrategy::Modulo, config);
    let (oriented, _) =
        setcentric::orient_by_degeneracy(&mut engine, g, &SetGraphConfig::default());
    engine.reset_stats();
    let sink: Arc<Mutex<dyn Collector + Send>> = Arc::clone(trace) as _;
    engine.attach_collector(SharedCollector::from_arc(sink), 0);
    let result = setcentric::triangle_count(&mut engine, &oriented, limits).result;
    let stats = engine.stats();
    let guard = trace.lock().expect("trace lock");
    let recorded = guard.recorded_makespan();
    assert_eq!(
        recorded, stats.makespan_cycles,
        "sharded: the event span over every shard track must equal the \
         aggregate makespan (which merges per-shard makespans as a max)"
    );
    let transfer_bytes: u64 = guard.transfer_events().iter().map(|e| e.bytes).sum();
    assert_eq!(
        transfer_bytes, stats.link_bytes,
        "every priced link crossing must appear on the timeline"
    );
    TimelineLinks {
        shards: SHARDS,
        workload: "tc".to_string(),
        result,
        makespan_cycles: stats.makespan_cycles,
        recorded_makespan: recorded,
        transfer_events: guard.transfer_events().len(),
        transfer_bytes,
        link_bytes: stats.link_bytes,
    }
}

/// Re-validates existing artifacts: the summary document against its schema
/// and every referenced Chrome trace as well-formed trace-event JSON.
fn check(dir: &Path) {
    let path = dir.join("trace_timeline.json");
    let text = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("cannot read {}: {e}", path.display()));
    let doc = TraceTimeline::from_json(&text)
        .unwrap_or_else(|e| panic!("{} does not parse: {e}", path.display()));
    doc.validate()
        .unwrap_or_else(|e| panic!("{} violates the schema: {e}", path.display()));
    for file in &doc.trace_files {
        let trace_path = dir.join(file);
        let text = std::fs::read_to_string(&trace_path)
            .unwrap_or_else(|e| panic!("cannot read {}: {e}", trace_path.display()));
        let value: Content = serde_json::from_str(&text)
            .unwrap_or_else(|e| panic!("{} is not JSON: {e:?}", trace_path.display()));
        match value.get("traceEvents") {
            Some(Content::Seq(events)) if !events.is_empty() => {}
            _ => panic!(
                "{} has no non-empty traceEvents array",
                trace_path.display()
            ),
        }
    }
    println!(
        "{} is a valid schema-v{} document ({} spans, {} link transfers, {} trace files).",
        path.display(),
        doc.schema_version,
        doc.spans.len(),
        doc.links.transfer_events,
        doc.trace_files.len()
    );
}

fn main() {
    let dir = results_dir();
    if std::env::args().any(|a| a == "--check") {
        check(&dir);
        return;
    }

    let full = full_mode();
    let limits = SearchLimits::patterns(if full { 200_000 } else { 20_000 });
    let window = RENAME_OOO_HEADLINE_WINDOW;
    let g = sisa_graph::datasets::by_name(GRAPH)
        .expect("registered stand-in")
        .generate(1);

    // Flat runtime: both workloads share one trace, on separate track groups.
    let flat_trace = Arc::new(Mutex::new(ChromeTraceCollector::new()));
    let spans: Vec<TimelineSpan> = ["tc", "kcc-4"]
        .iter()
        .enumerate()
        .map(|(group, workload)| {
            capture_flat(&flat_trace, group as u32, workload, &g, window, &limits)
        })
        .collect();

    // Sharded engine: link tracks plus the cross-engine result check.
    let link_trace = Arc::new(Mutex::new(ChromeTraceCollector::new()));
    let links = capture_sharded(&link_trace, &g, window, &limits);

    let mut rows = Vec::new();
    for span in &spans {
        rows.push(vec![
            span.workload.clone(),
            "flat".to_string(),
            span.result.to_string(),
            format!("{:.3}", span.makespan_cycles as f64 / 1e6),
            format!("{:.3}", span.recorded_makespan as f64 / 1e6),
            span.instruction_events.to_string(),
            span.lanes_observed.to_string(),
        ]);
    }
    rows.push(vec![
        links.workload.clone(),
        format!("{} shards", links.shards),
        links.result.to_string(),
        format!("{:.3}", links.makespan_cycles as f64 / 1e6),
        format!("{:.3}", links.recorded_makespan as f64 / 1e6),
        format!("{} transfers", links.transfer_events),
        format!("{} B linked", links.link_bytes),
    ]);
    let table = format_table(
        &[
            "workload",
            "engine",
            "result",
            "makespan [Mcyc]",
            "event span [Mcyc]",
            "events",
            "lanes/links",
        ],
        &rows,
    );
    emit(
        "trace_timeline",
        &format!(
            "Lane timelines on {GRAPH} (renamed OoO, {LANES} lanes, window {window}, \
             {TAGS} tags).\n\
             Every row's recorded event span equals its measured makespan exactly, so\n\
             the exported Chrome traces are cycle-accurate renderings of the schedule;\n\
             the sharded rendering adds one track per shard link carrying every priced\n\
             transfer. Load the .trace.json files at https://ui.perfetto.dev.\n\n{table}"
        ),
    );

    let trace_files = vec![
        "trace_timeline_flat.trace.json".to_string(),
        "trace_timeline_links.trace.json".to_string(),
    ];
    let doc = TraceTimeline {
        schema_version: TRACE_TIMELINE_SCHEMA_VERSION,
        graph: GRAPH.to_string(),
        lanes: LANES,
        window,
        tags: TAGS,
        spans,
        links,
        trace_files: trace_files.clone(),
    };
    doc.validate()
        .expect("the emitted document is schema-valid");

    if std::fs::create_dir_all(&dir).is_ok() {
        let renders = [
            flat_trace.lock().expect("trace lock").render(),
            link_trace.lock().expect("trace lock").render(),
        ];
        for (file, render) in trace_files.iter().zip(&renders) {
            std::fs::write(dir.join(file), render)
                .unwrap_or_else(|e| panic!("cannot write {file}: {e}"));
        }
        std::fs::write(dir.join("trace_timeline.json"), doc.to_json())
            .unwrap_or_else(|e| panic!("cannot write trace_timeline.json: {e}"));
        println!(
            "Timelines recorded in {} (+ {}).",
            dir.join("trace_timeline.json").display(),
            trace_files.join(", ")
        );
    }
}
