//! §9.2 comparison to other paradigms: Peregrine-style neighbourhood expansion
//! and RStream-style relational joins vs. the tuned baselines and SISA.

use sisa_algorithms::baseline::{k_clique_count_baseline, BaselineMode};
use sisa_algorithms::paradigms::{
    neighborhood_expansion_cliques, neighborhood_expansion_maximal_cliques, relational_join_cliques,
};
use sisa_algorithms::setcentric::k_clique_count;
use sisa_algorithms::SearchLimits;
use sisa_bench::{emit, format_table, full_mode};
use sisa_core::{parallel, SetGraph, SetGraphConfig, SisaConfig, SisaRuntime};
use sisa_graph::{datasets, orientation::degeneracy_order};
use sisa_pim::CpuConfig;

fn main() {
    let full = full_mode();
    let limits = SearchLimits::patterns(if full { 50_000 } else { 5_000 });
    let threads = 32;
    let mut rows = Vec::new();
    for name in ["int-antCol5-d1", "soc-fbMsg"] {
        let g = datasets::by_name(name).expect("stand-in").generate(1);
        let ordering = degeneracy_order(&g);
        let oriented = ordering.orient(&g);
        let cpu = CpuConfig::default();
        let sched = |tasks: &[sisa_core::TaskRecord]| {
            parallel::schedule_cpu(tasks, threads, &cpu).makespan_cycles as f64 / 1e6
        };
        let tuned =
            k_clique_count_baseline(&oriented, 4, BaselineMode::SetBased, &cpu, threads, &limits);
        let ne = neighborhood_expansion_cliques(&oriented, 4, &cpu, threads, &limits);
        let rj = relational_join_cliques(&oriented, 4, &cpu, threads, &limits);
        let mc_ne = neighborhood_expansion_maximal_cliques(
            &g,
            &oriented,
            6,
            &cpu,
            threads,
            &SearchLimits::patterns(if full { 5_000 } else { 500 }),
        );
        let mut rt = SisaRuntime::new(SisaConfig::default());
        let sg = SetGraph::load(&mut rt, &oriented, &SetGraphConfig::default());
        rt.reset_stats();
        let sisa = k_clique_count(&mut rt, &sg, 4, &limits);
        rows.push(vec![
            name.to_string(),
            format!(
                "{:.3}",
                parallel::schedule(&sisa.tasks, threads).makespan_cycles as f64 / 1e6
            ),
            format!("{:.3}", sched(&tuned.tasks)),
            format!("{:.3}", sched(&ne.tasks)),
            format!("{:.3}", sched(&rj.tasks)),
            format!("{:.3}", sched(&mc_ne.tasks)),
        ]);
    }
    emit(
        "paradigms",
        &format!(
            "Comparison to other paradigms (kcc-4 unless noted, 32 threads, runtimes in Mcycles).\n\
             Expected shape: the neighbourhood-expansion and relational-join paradigms are one or\n\
             more orders of magnitude slower than the tuned set-based baseline, which SISA beats.\n\n{}",
            format_table(
                &["graph", "sisa", "tuned set-based", "neighborhood expansion", "relational join", "mc via expansion"],
                &rows
            )
        ),
    );
}
