//! §9.2 comparison to other paradigms: Peregrine-style neighbourhood expansion
//! and RStream-style relational joins vs. the set-centric formulation and
//! SISA.
//!
//! The set-centric columns ("sisa" and "set-based cpu") run the *same* generic
//! `k_clique_count` over [`sisa_core::SetEngine`]: only the engine differs
//! (the simulated SISA platform vs. the software CPU backend), demonstrating
//! the backend-swap comparison the SetEngine boundary exists for.

use sisa_algorithms::paradigms::{
    neighborhood_expansion_cliques, neighborhood_expansion_maximal_cliques, relational_join_cliques,
};
use sisa_algorithms::setcentric::k_clique_count;
use sisa_algorithms::SearchLimits;
use sisa_bench::{emit, format_table, full_mode};
use sisa_core::{
    parallel, HostEngine, SetEngine, SetGraph, SetGraphConfig, SisaConfig, SisaRuntime, TaskRecord,
};
use sisa_graph::{datasets, orientation::degeneracy_order, CsrGraph};
use sisa_pim::CpuConfig;

/// The engine-agnostic driver both set-centric rows share: load the oriented
/// graph, reset the statistics, count 4-cliques, hand back the task records.
fn kcc4_tasks<E: SetEngine>(
    engine: &mut E,
    oriented: &CsrGraph,
    limits: &SearchLimits,
) -> Vec<TaskRecord> {
    let sg = SetGraph::load(engine, oriented, &SetGraphConfig::default());
    engine.reset_stats();
    k_clique_count(engine, &sg, 4, limits).tasks
}

fn main() {
    let full = full_mode();
    let limits = SearchLimits::patterns(if full { 50_000 } else { 5_000 });
    let threads = 32;
    let mut rows = Vec::new();
    for name in ["int-antCol5-d1", "soc-fbMsg"] {
        let g = datasets::by_name(name).expect("stand-in").generate(1);
        let ordering = degeneracy_order(&g);
        let oriented = ordering.orient(&g);
        let cpu = CpuConfig::default();
        let sched = |tasks: &[TaskRecord]| {
            parallel::schedule_cpu(tasks, threads, &cpu).makespan_cycles as f64 / 1e6
        };
        // The same generic algorithm on both backends — only the engine swaps.
        let mut sisa_engine = SisaRuntime::new(SisaConfig::default());
        let sisa_tasks = kcc4_tasks(&mut sisa_engine, &oriented, &limits);
        let mut cpu_engine = HostEngine::new(&cpu, threads);
        let cpu_tasks = kcc4_tasks(&mut cpu_engine, &oriented, &limits);
        // The paradigm-level baselines (per-paradigm implementations).
        let ne = neighborhood_expansion_cliques(&oriented, 4, &cpu, threads, &limits);
        let rj = relational_join_cliques(&oriented, 4, &cpu, threads, &limits);
        let mc_ne = neighborhood_expansion_maximal_cliques(
            &g,
            &oriented,
            6,
            &cpu,
            threads,
            &SearchLimits::patterns(if full { 5_000 } else { 500 }),
        );
        rows.push(vec![
            name.to_string(),
            format!(
                "{:.3}",
                parallel::schedule(&sisa_tasks, threads).makespan_cycles as f64 / 1e6
            ),
            format!("{:.3}", sched(&cpu_tasks)),
            format!("{:.3}", sched(&ne.tasks)),
            format!("{:.3}", sched(&rj.tasks)),
            format!("{:.3}", sched(&mc_ne.tasks)),
        ]);
    }
    emit(
        "paradigms",
        &format!(
            "Comparison to other paradigms (kcc-4 unless noted, 32 threads, runtimes in Mcycles).\n\
             The sisa and set-based-cpu columns run the same generic set-centric algorithm and\n\
             differ only in the SetEngine backend. Expected shape: the neighbourhood-expansion and\n\
             relational-join paradigms are one or more orders of magnitude slower than the\n\
             set-centric CPU formulation, which SISA beats.\n\n{}",
            format_table(
                &["graph", "sisa", "set-based cpu", "neighborhood expansion", "relational join", "mc via expansion"],
                &rows
            )
        ),
    );
}
