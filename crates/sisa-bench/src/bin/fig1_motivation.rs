//! Figure 1: Bron–Kerbosch runtime and stalled-cycle ratio vs. thread count on
//! a stock multicore (fixed memory bandwidth), with the SISA platform as the
//! contrast row.
//!
//! Both rows run the *same* generic set-centric `maximal_cliques` — the
//! backends differ only in which [`SetEngine`] executes the set operations:
//! [`HostEngine`] (software sets on the baseline CPU, scheduled with
//! bandwidth contention) vs. [`SisaRuntime`] (PIM, whose bandwidth scales
//! with the vault count, §8.4).

use sisa_algorithms::setcentric::maximal_cliques;
use sisa_bench::{default_limits, emit, format_table, full_mode, Problem};
use sisa_core::{
    parallel, HostEngine, SetEngine, SetGraph, SetGraphConfig, SisaRuntime, TaskRecord,
};
use sisa_graph::orientation::DegeneracyOrdering;
use sisa_graph::{datasets, orientation::degeneracy_order, CsrGraph};
use sisa_pim::CpuConfig;

/// The engine-agnostic measurement: load, reset, list maximal cliques, return
/// the per-task costs.
fn mc_tasks<E: SetEngine>(
    engine: &mut E,
    g: &CsrGraph,
    ordering: &DegeneracyOrdering,
    limits: &sisa_algorithms::SearchLimits,
) -> Vec<TaskRecord> {
    let sg = SetGraph::load(engine, g, &SetGraphConfig::default());
    engine.reset_stats();
    maximal_cliques(engine, &sg, ordering, limits, false).tasks
}

fn main() {
    let full = full_mode();
    let graphs = ["bio-SC-GT", "bn-mouse", "soc-fbMsg", "bio-DM-CX"];
    let threads = [1usize, 2, 4, 8, 16, 32];
    let cfg = CpuConfig::stock_multicore();
    let limits = default_limits(Problem::Mc, full);
    let mut rows = Vec::new();
    for name in graphs {
        let g = datasets::by_name(name)
            .expect("registered stand-in")
            .generate(1);
        let ordering = degeneracy_order(&g);
        for &t in &threads {
            // Re-run per thread count: the shared L3 slice per thread shrinks
            // as cores are added, which is part of what drives Figure 1.
            let mut cpu = HostEngine::new(&cfg, t);
            let cpu_tasks = mc_tasks(&mut cpu, &g, &ordering, &limits);
            let report = parallel::schedule_cpu(&cpu_tasks, t, &cfg);
            rows.push(vec![
                name.to_string(),
                cpu.backend_name().to_string(),
                t.to_string(),
                format!("{:.3}", report.makespan_cycles as f64 / 1e6),
                format!("{:.3}", report.stall_fraction()),
            ]);
        }
        // The contrast row: the same algorithm with the engine swapped to the
        // SISA platform (no bandwidth wall; stalls are inside the PIM models).
        let mut sisa = SisaRuntime::with_defaults();
        let sisa_tasks = mc_tasks(&mut sisa, &g, &ordering, &limits);
        let report = parallel::schedule(&sisa_tasks, 32);
        rows.push(vec![
            name.to_string(),
            sisa.backend_name().to_string(),
            "32".to_string(),
            format!("{:.3}", report.makespan_cycles as f64 / 1e6),
            format!("{:.3}", report.stall_fraction()),
        ]);
    }
    let table = format_table(
        &[
            "graph",
            "engine",
            "threads",
            "runtime [Mcycles]",
            "stalled-cycle ratio",
        ],
        &rows,
    );
    emit(
        "fig1_motivation",
        &format!(
            "Figure 1: Bron-Kerbosch, one generic algorithm, two SetEngine backends.\n\
             Expected shape: on the stock multicore the runtime decrease flattens out\n\
             and the stalled-cycle ratio increases as threads are added; the sisa rows\n\
             show the same workload without the bandwidth wall.\n\n{table}"
        ),
    );
}
