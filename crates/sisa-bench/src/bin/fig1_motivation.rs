//! Figure 1: Bron–Kerbosch runtime and stalled-cycle ratio vs. thread count on
//! a stock multicore (fixed memory bandwidth).

use sisa_algorithms::baseline::{maximal_cliques_baseline, BaselineMode};
use sisa_bench::{default_limits, emit, format_table, full_mode, Problem};
use sisa_core::parallel;
use sisa_graph::{datasets, orientation::degeneracy_order};
use sisa_pim::CpuConfig;

fn main() {
    let full = full_mode();
    let graphs = ["bio-SC-GT", "bn-mouse", "soc-fbMsg", "bio-DM-CX"];
    let threads = [1usize, 2, 4, 8, 16, 32];
    let cfg = CpuConfig::stock_multicore();
    let mut rows = Vec::new();
    for name in graphs {
        let g = datasets::by_name(name)
            .expect("registered stand-in")
            .generate(1);
        let ordering = degeneracy_order(&g);
        for &t in &threads {
            // Re-run per thread count: the shared L3 slice per thread shrinks
            // as cores are added, which is part of what drives Figure 1.
            let run = maximal_cliques_baseline(
                &g,
                &ordering,
                BaselineMode::NonSet,
                &cfg,
                t,
                &default_limits(Problem::Mc, full),
                false,
            );
            let report = parallel::schedule_cpu(&run.tasks, t, &cfg);
            rows.push(vec![
                name.to_string(),
                t.to_string(),
                format!("{:.3}", report.makespan_cycles as f64 / 1e6),
                format!("{:.3}", report.stall_fraction()),
            ]);
        }
    }
    let table = format_table(
        &[
            "graph",
            "threads",
            "runtime [Mcycles]",
            "stalled-cycle ratio",
        ],
        &rows,
    );
    emit(
        "fig1_motivation",
        &format!(
            "Figure 1: Bron-Kerbosch on a stock multicore.\n\
             Expected shape: runtime decrease flattens out and the stalled-cycle\n\
             ratio increases as threads are added.\n\n{table}"
        ),
    );
}
