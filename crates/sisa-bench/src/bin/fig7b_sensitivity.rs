//! Figure 7b + §9.2 sensitivity studies: DB-fraction sweep, galloping-threshold
//! sweep and the SCU-cache (SMB) on/off ablation.

use sisa_algorithms::setcentric::k_clique_count;
use sisa_algorithms::SearchLimits;
use sisa_bench::{emit, format_table, full_mode};
use sisa_core::{
    parallel, SetEngine, SetGraph, SetGraphConfig, SisaConfig, SisaRuntime, VariantSelection,
};
use sisa_graph::{datasets, orientation::degeneracy_order};

fn run_once(
    oriented: &sisa_graph::CsrGraph,
    sisa: SisaConfig,
    sg_cfg: &SetGraphConfig,
    limits: &SearchLimits,
) -> u64 {
    let mut rt = SisaRuntime::new(sisa);
    let sg = SetGraph::load(&mut rt, oriented, sg_cfg);
    rt.reset_stats();
    let run = k_clique_count(&mut rt, &sg, 4, limits);
    parallel::schedule(&run.tasks, 32).makespan_cycles
}

fn main() {
    let full = full_mode();
    let limits = SearchLimits::patterns(if full { 100_000 } else { 10_000 });
    let g = datasets::by_name("bio-mouseGene")
        .expect("registered stand-in")
        .generate(2);
    let ordering = degeneracy_order(&g);
    let oriented = ordering.orient(&g);

    // Sweep the fraction of neighbourhoods kept as dense bitvectors.
    let mut rows = Vec::new();
    for t in [0.0, 0.1, 0.25, 0.4, 0.6, 0.8, 1.0] {
        let sg_cfg = SetGraphConfig {
            db_fraction: t,
            storage_budget_frac: f64::INFINITY,
        };
        let cycles = run_once(&oriented, SisaConfig::default(), &sg_cfg, &limits);
        rows.push(vec![
            format!("{t:.2}"),
            format!("{:.3}", cycles as f64 / 1e6),
        ]);
    }
    let db_table = format_table(&["DB fraction t", "kcc-4 runtime [Mcyc]"], &rows);

    // Sweep the galloping threshold (merge-vs-galloping switch).
    let mut rows = Vec::new();
    for (label, sel) in [
        ("perf-model", VariantSelection::PerformanceModel),
        ("t_5", VariantSelection::SizeRatio(5.0)),
        ("t_100", VariantSelection::SizeRatio(100.0)),
        ("t_10000", VariantSelection::SizeRatio(10_000.0)),
        ("always-merge", VariantSelection::AlwaysMerge),
        ("always-gallop", VariantSelection::AlwaysGalloping),
    ] {
        let sisa = SisaConfig {
            variant_selection: sel,
            ..SisaConfig::default()
        };
        let cycles = run_once(&oriented, sisa, &SetGraphConfig::default(), &limits);
        rows.push(vec![
            label.to_string(),
            format!("{:.3}", cycles as f64 / 1e6),
        ]);
    }
    let gallop_table = format_table(&["galloping threshold", "kcc-4 runtime [Mcyc]"], &rows);

    // SCU metadata cache on/off.
    let with_smb = run_once(
        &oriented,
        SisaConfig::default(),
        &SetGraphConfig::default(),
        &limits,
    );
    let without_smb = run_once(
        &oriented,
        SisaConfig::without_smb(),
        &SetGraphConfig::default(),
        &limits,
    );
    let smb_table = format_table(
        &["SMB", "kcc-4 runtime [Mcyc]"],
        &[
            vec!["enabled".into(), format!("{:.3}", with_smb as f64 / 1e6)],
            vec![
                "disabled".into(),
                format!("{:.3}", without_smb as f64 / 1e6),
            ],
        ],
    );

    emit(
        "fig7b_sensitivity",
        &format!(
            "Figure 7b + SCU-cache sensitivity (kcc-4 on the bio-mouseGene stand-in, 32 threads).\n\
             Expected shape: both extremes of the DB fraction (PNM-only and PUM-only) are slower\n\
             than the hybrid; disabling the SMB slows execution.\n\n\
             -- DB fraction sweep --\n{db_table}\n\
             -- merge/galloping selection --\n{gallop_table}\n\
             -- SCU metadata cache --\n{smb_table}"
        ),
    );
}
