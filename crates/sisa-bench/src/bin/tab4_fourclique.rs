//! Table 4: 4-clique counting — the traditional (non-set) snippet, the
//! set-centric formulation executed in software and the SISA snippet.

use sisa_algorithms::baseline::{k_clique_count_baseline, BaselineMode};
use sisa_algorithms::setcentric::four_clique_count;
use sisa_bench::{default_limits, emit, format_table, full_mode, Problem};
use sisa_core::{parallel, SetEngine, SetGraph, SetGraphConfig, SisaConfig, SisaRuntime};
use sisa_graph::{datasets, orientation::degeneracy_order};
use sisa_pim::CpuConfig;

fn main() {
    let full = full_mode();
    let limits = default_limits(Problem::Kcc(4), full);
    let mut rows = Vec::new();
    for name in ["int-antCol5-d1", "econ-beacxc", "bio-SC-GT"] {
        let g = datasets::by_name(name).expect("stand-in").generate(1);
        let oriented = degeneracy_order(&g).orient(&g);
        let non_set = k_clique_count_baseline(
            &oriented,
            4,
            BaselineMode::NonSet,
            &CpuConfig::default(),
            32,
            &limits,
        );
        let set_sw = k_clique_count_baseline(
            &oriented,
            4,
            BaselineMode::SetBased,
            &CpuConfig::default(),
            32,
            &limits,
        );
        let mut rt = SisaRuntime::new(SisaConfig::default());
        let sg = SetGraph::load(&mut rt, &oriented, &SetGraphConfig::default());
        rt.reset_stats();
        let sisa = four_clique_count(&mut rt, &sg, &limits);
        let cyc = |tasks: &[sisa_core::TaskRecord], cpu: bool| {
            if cpu {
                parallel::schedule_cpu(tasks, 32, &CpuConfig::default()).makespan_cycles
            } else {
                parallel::schedule(tasks, 32).makespan_cycles
            }
        };
        rows.push(vec![
            name.to_string(),
            sisa.result.to_string(),
            format!("{:.3}", cyc(&non_set.tasks, true) as f64 / 1e6),
            format!("{:.3}", cyc(&set_sw.tasks, true) as f64 / 1e6),
            format!("{:.3}", cyc(&sisa.tasks, false) as f64 / 1e6),
        ]);
    }
    emit(
        "tab4_fourclique",
        &format!(
            "Table 4: counting all 4-cliques with the three code variants (32 threads).\n\n{}",
            format_table(
                &[
                    "graph",
                    "4-cliques found",
                    "non-set [Mcyc]",
                    "set-centric SW [Mcyc]",
                    "SISA [Mcyc]"
                ],
                &rows
            )
        ),
    );
}
