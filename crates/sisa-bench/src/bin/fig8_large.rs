//! Figure 8: normalised runtimes on the (scaled-down) large-graph suite,
//! 8 cores.

use sisa_bench::{
    default_limits, emit, format_table, full_mode, run_cell, Problem, Scheme, Workload,
};
use sisa_graph::datasets;

fn main() {
    let full = full_mode();
    let threads = 8;
    let problems = if full {
        vec![
            Problem::Kcc(4),
            Problem::Kcc(5),
            Problem::Ksc(4),
            Problem::Ksc(5),
        ]
    } else {
        vec![Problem::Kcc(4), Problem::Ksc(4)]
    };
    let graphs: Vec<_> = if full {
        datasets::large_suite().iter().map(|d| d.name).collect()
    } else {
        vec!["bio-humanGene", "sc-pwtk", "soc-orkut"]
    };
    let mut output = String::new();
    for problem in &problems {
        let mut rows = Vec::new();
        for name in &graphs {
            let g = datasets::by_name(name)
                .expect("registered stand-in")
                .generate(2);
            let w = Workload::new(g, threads, default_limits(*problem, full));
            let cells: Vec<_> = Scheme::ALL
                .iter()
                .map(|s| run_cell(*problem, *s, &w))
                .collect();
            let worst = cells.iter().map(|c| c.cycles).max().unwrap_or(1).max(1) as f64;
            rows.push(vec![
                (*name).to_string(),
                format!("{:.3}", cells[0].cycles as f64 / worst),
                format!("{:.3}", cells[1].cycles as f64 / worst),
                format!("{:.3}", cells[2].cycles as f64 / worst),
            ]);
        }
        output.push_str(&format!(
            "\n== {} (8 cores, runtimes normalised to the slowest scheme) ==\n{}",
            problem.label(),
            format_table(&["graph", "non-set", "set-based", "sisa"], &rows)
        ));
    }
    emit(
        "fig8_large",
        &format!(
            "Figure 8: large-graph suite (scaled-down stand-ins; see DESIGN.md).\n\
             Expected shape: SISA lowest on the heavy-tailed bio graphs; the gap narrows on\n\
             sc-pwtk and soc-orkut, whose light tails reduce SISA-PUM opportunities.{output}"
        ),
    );
}
