//! §9.2 scalability study: strong and weak scaling on Kronecker graphs.

use sisa_algorithms::SearchLimits;
use sisa_bench::{emit, format_table, full_mode, run_cell, Problem, Scheme, Workload};
use sisa_graph::generators::{kronecker, RmatConfig};

fn main() {
    let full = full_mode();
    let limits = SearchLimits::patterns(if full { 100_000 } else { 10_000 });
    let threads = [1usize, 2, 4, 8, 16, 32];

    // Strong scaling: fixed graph, growing thread count.
    let g = kronecker(
        &RmatConfig {
            scale: 11,
            edge_factor: 12,
            a: 0.57,
            b: 0.19,
            c: 0.19,
        },
        3,
    );
    let mut rows = Vec::new();
    for &t in &threads {
        let w = Workload::new(g.clone(), t, limits);
        let sisa = run_cell(Problem::Kcc(4), Scheme::Sisa, &w);
        let set_based = run_cell(Problem::Kcc(4), Scheme::SetBased, &w);
        rows.push(vec![
            t.to_string(),
            format!("{:.3}", set_based.cycles as f64 / 1e6),
            format!("{:.3}", sisa.cycles as f64 / 1e6),
            format!("{:.2}x", set_based.cycles as f64 / sisa.cycles as f64),
        ]);
    }
    let strong = format_table(
        &["threads", "set-based [Mcyc]", "sisa [Mcyc]", "sisa speedup"],
        &rows,
    );

    // Weak scaling: threads grow with the number of edges per vertex.
    let mut rows = Vec::new();
    for (t, ef) in [(4usize, 4usize), (8, 8), (16, 16), (32, 32)] {
        let g = kronecker(
            &RmatConfig {
                scale: 10,
                edge_factor: ef,
                a: 0.57,
                b: 0.19,
                c: 0.19,
            },
            5,
        );
        let w = Workload::new(g, t, limits);
        let sisa = run_cell(Problem::Kcc(4), Scheme::Sisa, &w);
        let set_based = run_cell(Problem::Kcc(4), Scheme::SetBased, &w);
        rows.push(vec![
            t.to_string(),
            ef.to_string(),
            format!("{:.3}", set_based.cycles as f64 / 1e6),
            format!("{:.3}", sisa.cycles as f64 / 1e6),
        ]);
    }
    let weak = format_table(
        &["threads", "edges/vertex", "set-based [Mcyc]", "sisa [Mcyc]"],
        &rows,
    );

    emit(
        "scalability",
        &format!(
            "Scalability study on Kronecker graphs (kcc-4).\n\
             Expected shape: SISA keeps its advantage across thread counts, with smaller margins\n\
             at low thread counts where the memory subsystem is under less pressure.\n\n\
             -- strong scaling --\n{strong}\n-- weak scaling --\n{weak}"
        ),
    );
}
