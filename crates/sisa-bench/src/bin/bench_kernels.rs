//! Wall-clock benchmark of the host-side set kernels: the word-parallel
//! dense ops, the true galloping sparse kernels and the size-ratio dispatch
//! policy, measured against the seed's scalar reference kernels
//! ([`KernelPolicy::Reference`]) on fixed-seed operands — plus the headline
//! end-to-end scenario, triangle counting on the soc-fbMsg stand-in over a
//! 16-shard engine at three rungs of the execution stack: the sequential
//! scalar baseline (per-op priced loop with the seed kernels — the seed's
//! only path), the raw host execution layer
//! (`ShardedEngine::host_count_batch` — threaded optimized kernels, no
//! simulated-machine bookkeeping), and the priced batched path
//! ([`ShardedEngine::execute`]).
//!
//! Emits `results/BENCH_kernels.json` (schema in [`sisa_bench::BenchKernels`],
//! documented in the README's results appendix) and self-validates the
//! emitted artifact. Flags: `--smoke` shrinks the sampling budget for CI;
//! `--check` re-validates an existing artifact without re-measuring.

use sisa_bench::{
    emit, format_table, percentile_ns, results_dir, BenchKernels, HeadlineBench, HostPlatform,
    KernelCell, BENCH_KERNELS_SCHEMA_VERSION,
};
use sisa_core::{
    BatchOp, PartitionStrategy, SetEngine, SetGraphConfig, ShardedEngine, SisaConfig, SisaRuntime,
};
use sisa_pim::PimPlatform;
use sisa_sets::repr::{self, KernelPolicy};
use sisa_sets::{SetRepr, Vertex};
use std::hint::black_box;
use std::time::Instant;

/// Every operand draw and the graph generation start from this seed.
const SEED: u64 = 1;
/// Shard count of the headline scenario (the acceptance geometry).
const HEADLINE_SHARDS: usize = 16;
/// Universe of the micro-kernel operand sets.
const MICRO_UNIVERSE: usize = 32_768;

/// A splitmix-style deterministic generator (no external RNG crates).
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// `count` distinct sorted vertices from `0..universe`: stride sampling with
/// seeded jitter (deterministic, duplicate-free by construction).
fn sorted_members(count: usize, universe: usize, rng: &mut Rng) -> Vec<Vertex> {
    let stride = universe / count;
    assert!(stride >= 1, "universe must cover the requested count");
    (0..count)
        .map(|i| (i * stride + (rng.next() as usize % stride)) as Vertex)
        .collect()
}

/// Times `f` repeatedly: calibrates an inner iteration count so one sample
/// spans roughly `target_ns`, then returns `samples` per-call means.
fn time_ns(samples: usize, target_ns: u64, mut f: impl FnMut()) -> Vec<u64> {
    f(); // warm up caches and the arena pool
    let calibration = Instant::now();
    for _ in 0..4 {
        f();
    }
    let per_call = (calibration.elapsed().as_nanos() as u64 / 4).max(1);
    let iters = (target_ns / per_call).clamp(4, 8192) as u32;
    (0..samples)
        .map(|_| {
            let start = Instant::now();
            for _ in 0..iters {
                f();
            }
            start.elapsed().as_nanos() as u64 / u64::from(iters)
        })
        .collect()
}

/// Runs the micro matrix: op × operand shape, both kernel policies.
fn micro_matrix(samples: usize, target_ns: u64) -> Vec<KernelCell> {
    let mut rng = Rng(SEED);
    let dense = |members: &[Vertex]| SetRepr::dense_from(MICRO_UNIVERSE, members.iter().copied());
    let sorted = |members: &[Vertex]| SetRepr::sorted_from(members.iter().copied());
    let similar_a = sorted_members(4096, MICRO_UNIVERSE, &mut rng);
    let similar_b = sorted_members(4096, MICRO_UNIVERSE, &mut rng);
    let tiny = sorted_members(64, MICRO_UNIVERSE, &mut rng);
    let shapes: [(&str, SetRepr, SetRepr); 4] = [
        ("sorted-similar", sorted(&similar_a), sorted(&similar_b)),
        ("sorted-skewed-64to1", sorted(&tiny), sorted(&similar_b)),
        ("dense-dense", dense(&similar_a), dense(&similar_b)),
        ("sorted-dense", sorted(&similar_a), dense(&similar_b)),
    ];
    type OpFn = fn(&SetRepr, &SetRepr);
    let ops: [(&str, OpFn); 4] = [
        ("intersect", |a, b| {
            black_box(a.intersect(b));
        }),
        ("union", |a, b| {
            black_box(a.union(b));
        }),
        ("difference", |a, b| {
            black_box(a.difference(b));
        }),
        ("intersect_count", |a, b| {
            black_box(a.intersect_count(b));
        }),
    ];

    let mut cells = Vec::new();
    for (shape, ra, rb) in &shapes {
        for (op, f) in ops {
            let timed = |policy: KernelPolicy| {
                repr::set_kernel_policy(policy);
                let ns = time_ns(samples, target_ns, || f(ra, rb));
                repr::set_kernel_policy(KernelPolicy::Optimized);
                ns
            };
            let reference = timed(KernelPolicy::Reference);
            let optimized = timed(KernelPolicy::Optimized);
            let reference_p50_ns = percentile_ns(&reference, 50.0);
            let optimized_p50_ns = percentile_ns(&optimized, 50.0);
            cells.push(KernelCell {
                op: op.to_string(),
                shape: (*shape).to_string(),
                len_a: ra.len(),
                len_b: rb.len(),
                samples,
                reference_p50_ns,
                reference_p95_ns: percentile_ns(&reference, 95.0),
                optimized_p50_ns,
                optimized_p95_ns: percentile_ns(&optimized, 95.0),
                speedup_p50: reference_p50_ns as f64 / optimized_p50_ns.max(1) as f64,
            });
        }
    }
    cells
}

/// The headline scenario: a full triangle-count batch (one `IntersectCount`
/// per oriented edge) on a 16-shard engine, measured at three rungs —
/// the sequential scalar baseline (per-op priced loop, seed reference
/// kernels: the seed's only path), the raw host execution layer
/// (`host_count_batch`: threaded optimized kernels, no simulation), and the
/// priced batched path (`execute`). Returns the measurement and the
/// host-kernel selections the optimized path dispatched.
fn headline(samples: usize) -> (HeadlineBench, std::collections::BTreeMap<String, u64>) {
    let graph = "soc-fbMsg";
    let g = sisa_graph::datasets::by_name(graph)
        .expect("registered stand-in")
        .generate(SEED);
    let mut engine = ShardedEngine::sisa(
        HEADLINE_SHARDS,
        PartitionStrategy::Modulo,
        SisaConfig::default(),
    );
    let (oriented, _) = sisa_algorithms::setcentric::orient_by_degeneracy(
        &mut engine,
        &g,
        &SetGraphConfig::default(),
    );
    let mut batch = Vec::new();
    for u in 0..oriented.num_vertices() as Vertex {
        let nu = oriented.neighborhood(u);
        for &v in oriented.neighbors(u) {
            batch.push(BatchOp::IntersectCount(nu, oriented.neighborhood(v)));
        }
    }

    let run_baseline = |engine: &mut ShardedEngine<SisaRuntime>| -> u64 {
        repr::set_kernel_policy(KernelPolicy::Reference);
        let mut triangles = 0u64;
        for op in &batch {
            let (a, b) = op.operands();
            triangles += engine.intersect_count(a, b) as u64;
        }
        repr::set_kernel_policy(KernelPolicy::Optimized);
        triangles
    };
    let run_host = |engine: &ShardedEngine<SisaRuntime>| -> u64 {
        engine
            .host_count_batch(&batch)
            .iter()
            .map(|&c| c as u64)
            .sum()
    };
    let run_priced_batch = |engine: &mut ShardedEngine<SisaRuntime>| -> u64 {
        engine
            .execute(&batch)
            .iter()
            .map(|r| r.count() as u64)
            .sum()
    };

    // Every path must mine the same number of triangles — the optimized
    // layers are only faster engines, never a different answer.
    let expected = run_baseline(&mut engine);
    assert_eq!(run_host(&engine), expected, "host layer disagrees");
    assert_eq!(
        run_priced_batch(&mut engine),
        expected,
        "priced batch disagrees"
    );

    // Host-kernel selections of one optimized pass (dispatch provenance).
    // Tallies are thread-local, so count on the main thread alone.
    let restore_threads = engine.host_threads();
    engine.set_host_threads(1);
    repr::reset_kernel_selection_counts();
    let _ = run_host(&engine);
    let selections = repr::kernel_selection_counts();
    engine.set_host_threads(restore_threads);

    // Simulated cost of one batch (identical for every host path: host
    // kernels change wall-clock only, never the platform-level cycle model).
    engine.reset_stats();
    let _ = run_priced_batch(&mut engine);
    let simulated_total_cycles = engine.stats().total_cycles();
    let simulated_energy_nj = engine.stats().energy_nj;
    let simulated_makespan_cycles = engine.report().makespan_cycles();

    // Interleave the timed runs so drift lands evenly on all paths.
    let mut baseline_ns = Vec::with_capacity(samples);
    let mut optimized_ns = Vec::with_capacity(samples);
    let mut priced_ns = Vec::with_capacity(samples);
    for _ in 0..samples {
        let start = Instant::now();
        let t = run_baseline(&mut engine);
        baseline_ns.push(start.elapsed().as_nanos() as u64);
        assert_eq!(t, expected);
        let start = Instant::now();
        let t = run_host(&engine);
        optimized_ns.push(start.elapsed().as_nanos() as u64);
        assert_eq!(t, expected);
        let start = Instant::now();
        let t = run_priced_batch(&mut engine);
        priced_ns.push(start.elapsed().as_nanos() as u64);
        assert_eq!(t, expected);
    }

    let baseline_p50_ns = percentile_ns(&baseline_ns, 50.0);
    let optimized_p50_ns = percentile_ns(&optimized_ns, 50.0);
    let bench = HeadlineBench {
        workload: "tc".into(),
        graph: graph.into(),
        shards: HEADLINE_SHARDS,
        host_threads: engine.resolved_host_threads(),
        batch_ops: batch.len(),
        result: expected,
        samples,
        baseline_p50_ns,
        baseline_p95_ns: percentile_ns(&baseline_ns, 95.0),
        optimized_p50_ns,
        optimized_p95_ns: percentile_ns(&optimized_ns, 95.0),
        priced_batch_p50_ns: percentile_ns(&priced_ns, 50.0),
        priced_batch_p95_ns: percentile_ns(&priced_ns, 95.0),
        speedup_p50: baseline_p50_ns as f64 / optimized_p50_ns.max(1) as f64,
        simulated_total_cycles,
        simulated_makespan_cycles,
        simulated_energy_nj,
    };
    let selections = [
        ("merge".to_string(), selections.merge),
        ("gallop".to_string(), selections.gallop),
        ("bitmap".to_string(), selections.bitmap),
    ]
    .into_iter()
    .collect();
    (bench, selections)
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let path = results_dir().join("BENCH_kernels.json");

    if args.iter().any(|a| a == "--check") {
        let text = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("cannot read {}: {e}", path.display()));
        let doc = BenchKernels::from_json(&text)
            .unwrap_or_else(|e| panic!("{} does not parse: {e}", path.display()));
        doc.validate()
            .unwrap_or_else(|e| panic!("{} violates the schema: {e}", path.display()));
        println!(
            "{} is a valid schema-v{} document (headline {:.2}x, {} kernel cells).",
            path.display(),
            doc.schema_version,
            doc.headline.speedup_p50,
            doc.kernels.len()
        );
        return;
    }

    let (samples, target_ns) = if smoke { (5, 50_000) } else { (15, 200_000) };
    let kernels = micro_matrix(samples, target_ns);
    let (headline, host_kernels) = headline(if smoke { 3 } else { 7 });

    let mut rows: Vec<Vec<String>> = kernels
        .iter()
        .map(|c| {
            vec![
                c.op.clone(),
                c.shape.clone(),
                format!("{}x{}", c.len_a, c.len_b),
                c.reference_p50_ns.to_string(),
                c.optimized_p50_ns.to_string(),
                format!("{:.2}x", c.speedup_p50),
            ]
        })
        .collect();
    rows.push(vec![
        "tc batch".into(),
        format!("{} x{}shards", headline.graph, headline.shards),
        headline.batch_ops.to_string(),
        headline.baseline_p50_ns.to_string(),
        headline.optimized_p50_ns.to_string(),
        format!("{:.2}x", headline.speedup_p50),
    ]);
    let table = format_table(
        &[
            "op",
            "shape",
            "size",
            "ref p50 [ns]",
            "opt p50 [ns]",
            "speedup",
        ],
        &rows,
    );
    emit(
        "bench_kernels",
        &format!(
            "Host kernel wall clock, seed {SEED} ({} mode): seed scalar kernels \
             (KernelPolicy::Reference) vs word-parallel/galloping/arena dispatch.\n\
             Headline: triangle-count batch on {} over {} shards — {:.2}x \
             (sequential scalar baseline p50 {:.3} ms, raw host layer p50 \
             {:.3} ms, priced batched path p50 {:.3} ms, {} host threads).\n\n{table}",
            if smoke { "smoke" } else { "full" },
            headline.graph,
            headline.shards,
            headline.speedup_p50,
            headline.baseline_p50_ns as f64 / 1e6,
            headline.optimized_p50_ns as f64 / 1e6,
            headline.priced_batch_p50_ns as f64 / 1e6,
            headline.host_threads,
        ),
    );

    let doc = BenchKernels {
        schema_version: BENCH_KERNELS_SCHEMA_VERSION,
        mode: if smoke { "smoke" } else { "full" }.into(),
        seed: SEED,
        host: HostPlatform::capture(),
        pim: PimPlatform::default(),
        host_kernels,
        kernels,
        headline,
    };
    doc.validate().expect("emitted document is schema-valid");
    assert!(
        doc.headline.speedup_p50 >= 3.0,
        "headline regression: {:.2}x is below the tracked 3x floor",
        doc.headline.speedup_p50
    );

    let dir = results_dir();
    std::fs::create_dir_all(&dir).expect("results dir");
    std::fs::write(&path, doc.to_json()).expect("write BENCH_kernels.json");
    // Read the artifact back so a serialization regression fails loudly here
    // rather than in a downstream consumer.
    let reread = BenchKernels::from_json(&std::fs::read_to_string(&path).expect("reread"))
        .expect("emitted artifact parses");
    assert_eq!(reread, doc, "artifact does not round-trip");
    println!("Wall-clock trajectory recorded in {}", path.display());
}
