//! Figure 7a: degree-distribution analysis — heavy tails in mining datasets
//! vs. light tails in general graph-processing datasets.

use sisa_bench::{emit, format_table};
use sisa_graph::datasets;
use sisa_graph::degree::{degree_frequency, DegreeStats};

fn main() {
    let graphs = ["bio-humanGene", "bio-mouseGene", "soc-orkut", "sc-pwtk"];
    let mut rows = Vec::new();
    let mut detail = String::new();
    for name in graphs {
        let g = datasets::by_name(name)
            .expect("registered stand-in")
            .generate(2);
        let stats = DegreeStats::compute(&g);
        rows.push(vec![
            name.to_string(),
            stats.num_vertices.to_string(),
            stats.num_edges.to_string(),
            stats.max_degree.to_string(),
            format!("{:.1}%", 100.0 * stats.max_degree_fraction),
            format!("{:.2}", stats.skew),
            if stats.is_heavy_tailed() {
                "heavy".into()
            } else {
                "light".into()
            },
        ]);
        let freq = degree_frequency(&g);
        let sample: Vec<String> = freq
            .iter()
            .step_by((freq.len() / 12).max(1))
            .map(|(d, c)| format!("{d}:{c}"))
            .collect();
        detail.push_str(&format!(
            "{name}: degree:count samples -> {}\n",
            sample.join("  ")
        ));
    }
    let table = format_table(
        &["graph", "n", "m", "max deg", "max deg / n", "skew", "tail"],
        &rows,
    );
    emit(
        "fig7a_degrees",
        &format!(
            "Figure 7a: degree distributions.\nExpected shape: bio-* stand-ins have very heavy \
             tails (hubs adjacent to a large fraction of the graph); soc-orkut and sc-pwtk have \
             much lighter tails.\n\n{table}\n{detail}"
        ),
    );
}
