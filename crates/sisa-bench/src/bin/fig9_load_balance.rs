//! Figure 9: load-balancing analysis — per-thread stalled-time fractions
//! (9a) and set-size histograms for full vs. partial executions (9b).

use sisa_algorithms::baseline::{k_clique_count_baseline, BaselineMode};
use sisa_algorithms::setcentric::k_clique_count;
use sisa_algorithms::SearchLimits;
use sisa_bench::{emit, format_table, full_mode};
use sisa_core::{parallel, SetEngine, SetGraph, SetGraphConfig, SisaConfig, SisaRuntime};
use sisa_graph::{datasets, orientation::degeneracy_order};
use sisa_pim::CpuConfig;

fn main() {
    let full = full_mode();
    let threads = 8;
    let limits = SearchLimits::patterns(if full { 50_000 } else { 10_000 });
    let g = datasets::by_name("int-antCol3-d1")
        .expect("stand-in")
        .generate(1);
    let ordering = degeneracy_order(&g);
    let oriented = ordering.orient(&g);

    let mut output = String::new();
    for k in [4usize, 5] {
        let mut rows = Vec::new();
        for mode in [BaselineMode::NonSet, BaselineMode::SetBased] {
            let run = k_clique_count_baseline(
                &oriented,
                k,
                mode,
                &CpuConfig::default(),
                threads,
                &limits,
            );
            let report = parallel::schedule_cpu(&run.tasks, threads, &CpuConfig::default());
            let stalls: Vec<String> = report
                .per_thread
                .iter()
                .map(|t| format!("{:.2}", t.stall_fraction()))
                .collect();
            rows.push(vec![format!("kcc-{k} {}", mode.suffix()), stalls.join(" ")]);
        }
        let mut rt = SisaRuntime::new(SisaConfig::default());
        let sg = SetGraph::load(&mut rt, &oriented, &SetGraphConfig::default());
        rt.reset_stats();
        let run = k_clique_count(&mut rt, &sg, k, &limits);
        let report = parallel::schedule(&run.tasks, threads);
        rows.push(vec![
            format!("kcc-{k} sisa"),
            report
                .per_thread
                .iter()
                .map(|t| format!("{:.2}", t.stall_fraction()))
                .collect::<Vec<_>>()
                .join(" "),
        ]);
        output.push_str(&format!(
            "\n{}",
            format_table(
                &["scheme", "per-thread stalled-time fraction (8 threads)"],
                &rows
            )
        ));
    }

    // Figure 9b: histograms of processed set sizes, full vs partial run.
    let mut hist_out = String::new();
    for (label, lim) in [
        ("full", SearchLimits::unlimited()),
        ("partial", SearchLimits::patterns(2_000)),
    ] {
        let mut rt = SisaRuntime::new(SisaConfig::with_set_size_tracking());
        let sg = SetGraph::load(&mut rt, &oriented, &SetGraphConfig::default());
        rt.reset_stats();
        let _ = k_clique_count(&mut rt, &sg, 4, &lim);
        let sizes = &rt.stats().processed_set_sizes;
        let mut bins = [0usize; 8];
        for &s in sizes {
            let bin = (usize::BITS - 1 - (s.max(1) as usize).leading_zeros()).min(7) as usize;
            bins[bin] += 1;
        }
        hist_out.push_str(&format!(
            "{label:8} execution: {} set operands, size histogram (log2 bins 1,2,4,...,>=128): {:?}\n",
            sizes.len(),
            bins
        ));
    }

    emit(
        "fig9_load_balance",
        &format!(
            "Figure 9a: per-thread stalled-time fractions (graph: int-antCol3-d1 stand-in).\n\
             Expected shape: SISA's stall fractions are the lowest of the three schemes.{output}\n\n\
             Figure 9b: set-size histograms, full vs partial execution (kcc-4).\n\
             Expected shape: both executions encounter the same large-set tail, showing the\n\
             cutoff does not artificially remove load imbalance.\n{hist_out}"
        ),
    );
}
