//! Runs every experiment harness in sequence (the `EXPERIMENTS.md` workflow).

use std::process::Command;

fn main() {
    let full = std::env::args().any(|a| a == "--full");
    let mut failures = 0u32;
    let bins = [
        "fig1_motivation",
        "fig6_main",
        "fig7a_degrees",
        "fig7b_sensitivity",
        "fig8_large",
        "fig9_load_balance",
        "tab4_fourclique",
        "tab6_complexity",
        "scalability",
        "paradigms",
        "multi_cube",
        "pipeline_overlap",
        "rename_ooo",
        "trace_timeline",
    ];
    for bin in bins {
        println!("\n================ {bin} ================");
        let mut cmd = Command::new(std::env::current_exe().unwrap().parent().unwrap().join(bin));
        if full {
            cmd.arg("--full");
        }
        match cmd.status() {
            Ok(status) if status.success() => {}
            Ok(status) => {
                failures += 1;
                eprintln!("{bin} exited with {status}");
            }
            Err(e) => {
                failures += 1;
                eprintln!(
                    "failed to launch {bin}: {e} (run `cargo build --release -p sisa-bench` first)"
                );
            }
        }
    }
    // Exercise the remaining set-centric formulations (BFS, approximate
    // degeneracy) so the full inventory is covered by one command.
    let g = sisa_graph::datasets::by_name("soc-fbMsg")
        .unwrap()
        .generate(1);
    let (rounds, reached) = sisa_bench::run_auxiliary_formulations(&g);
    println!("\nAuxiliary formulations: approximate degeneracy finished in {rounds} rounds; set-centric BFS reached {reached} vertices.");

    // Capture a traced run and publish its per-opcode instruction mix (the
    // paper's instruction-mix analyses) from the genuine SisaProgram.
    let dir = sisa_bench::results_dir();
    let mix = sisa_bench::capture_instruction_mix("soc-fbMsg", &g);
    if std::fs::create_dir_all(&dir).is_ok()
        && std::fs::write(dir.join("instruction_mix.json"), mix.to_json()).is_ok()
    {
        println!(
            "Instruction mix ({} instructions) recorded in {}",
            mix.total_instructions,
            dir.join("instruction_mix.json").display()
        );
    }

    // Record the platform parameters the figures were produced with.
    let json = sisa_bench::PlatformSummary::default().to_json();
    if std::fs::create_dir_all(&dir).is_ok()
        && std::fs::write(dir.join("platform.json"), &json).is_ok()
    {
        println!(
            "Platform configuration recorded in {}",
            dir.join("platform.json").display()
        );
    }

    if failures > 0 {
        eprintln!("{failures} experiment binaries failed");
        std::process::exit(1);
    }
}
