//! Runs every experiment harness in sequence (the `EXPERIMENTS.md` workflow).

use std::process::Command;

fn main() {
    let full = std::env::args().any(|a| a == "--full");
    let bins = [
        "fig1_motivation",
        "fig6_main",
        "fig7a_degrees",
        "fig7b_sensitivity",
        "fig8_large",
        "fig9_load_balance",
        "tab4_fourclique",
        "tab6_complexity",
        "scalability",
        "paradigms",
    ];
    for bin in bins {
        println!("\n================ {bin} ================");
        let mut cmd = Command::new(std::env::current_exe().unwrap().parent().unwrap().join(bin));
        if full {
            cmd.arg("--full");
        }
        match cmd.status() {
            Ok(status) if status.success() => {}
            Ok(status) => eprintln!("{bin} exited with {status}"),
            Err(e) => eprintln!("failed to launch {bin}: {e} (run `cargo build --release -p sisa-bench` first)"),
        }
    }
    // Exercise the remaining set-centric formulations (BFS, approximate
    // degeneracy) so the full inventory is covered by one command.
    let g = sisa_graph::datasets::by_name("soc-fbMsg").unwrap().generate(1);
    let (rounds, reached) = sisa_bench::run_auxiliary_formulations(&g);
    println!("\nAuxiliary formulations: approximate degeneracy finished in {rounds} rounds; set-centric BFS reached {reached} vertices.");
}
