//! Figure 6: non-set vs. set-based vs. SISA runtimes with full parallelism
//! across the small-graph suite and all mining problems.

use sisa_algorithms::SearchLimits;
use sisa_bench::{
    default_limits, emit, format_table, full_mode, run_cell, speedup_summaries, Problem, Scheme,
    Workload,
};
use sisa_graph::datasets;

fn main() {
    let full = full_mode();
    let threads = 32;
    // The quick mode uses a representative subset of the 20 graphs; --full
    // runs all of them (slow: cycle-model simulation of every scheme).
    let graph_names: Vec<&str> = if full {
        datasets::small_suite().iter().map(|d| d.name).collect()
    } else {
        vec![
            "int-antCol3-d1",
            "bn-mouse",
            "bio-SC-GT",
            "econ-beacxc",
            "soc-fbMsg",
            "int-HosWardProx",
        ]
    };
    let problems = if full {
        Problem::figure6_panels()
    } else {
        vec![
            Problem::Tc,
            Problem::Kcc(4),
            Problem::Ksc(4),
            Problem::Mc,
            Problem::ClJac,
            Problem::Si4s,
            Problem::Si4sL,
        ]
    };

    let mut output = String::new();
    for problem in &problems {
        let limits: SearchLimits = default_limits(*problem, full);
        let mut rows = Vec::new();
        let mut non_set_cycles = Vec::new();
        let mut set_based_cycles = Vec::new();
        let mut sisa_cycles = Vec::new();
        for name in &graph_names {
            let g = datasets::by_name(name)
                .expect("registered stand-in")
                .generate(1);
            let w = Workload::new(g, threads, limits);
            let mut cells = Vec::new();
            for scheme in Scheme::ALL {
                cells.push(run_cell(*problem, scheme, &w));
            }
            assert_eq!(cells[0].result, cells[1].result, "{name} {problem:?}");
            assert_eq!(cells[0].result, cells[2].result, "{name} {problem:?}");
            non_set_cycles.push(cells[0].cycles);
            set_based_cycles.push(cells[1].cycles);
            sisa_cycles.push(cells[2].cycles);
            rows.push(vec![
                (*name).to_string(),
                format!("{:.3}", cells[0].cycles as f64 / 1e6),
                format!("{:.3}", cells[1].cycles as f64 / 1e6),
                format!("{:.3}", cells[2].cycles as f64 / 1e6),
                cells[2].result.to_string(),
            ]);
        }
        let (geo_ns, avg_ns) = speedup_summaries(&non_set_cycles, &sisa_cycles);
        let (geo_sb, avg_sb) = speedup_summaries(&set_based_cycles, &sisa_cycles);
        output.push_str(&format!(
            "\n== {} (threads = {threads}) ==\n{}\nSISA speedups: over non-set {:.2}x (avg-of-speedups) / {:.2}x (speedup-of-avgs); \
             over set-based {:.2}x / {:.2}x\n",
            problem.label(),
            format_table(
                &["graph", "non-set [Mcyc]", "set-based [Mcyc]", "sisa [Mcyc]", "result"],
                &rows
            ),
            geo_ns,
            avg_ns,
            geo_sb,
            avg_sb,
        ));
    }
    emit(
        "fig6_main",
        &format!("Figure 6: runtimes with full parallelism.{output}"),
    );
}
