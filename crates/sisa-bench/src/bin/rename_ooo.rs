//! Rename/out-of-order study: set-ID renaming tag-pool size × reorder-window
//! size on a flat SISA runtime.
//!
//! The `pipeline_overlap` figure shows kcc-4 flooring near 1.17x overlap on
//! the in-order pipeline while tc reaches 16x: its materialise → recurse →
//! delete chains serialise on WAR/WAW hazards over recycled set IDs — false
//! dependences, the register-renaming problem in set-ID clothing. This sweep
//! measures what breaking them recovers: every (window, tags) point runs the
//! renamed out-of-order scheduler (tags = 0 is the rename-off in-order
//! reference, identical to the `pipeline_overlap` cell of the same depth),
//! and reports the overlap speedup, the true-RAW dependence stalls that
//! remain, the false stalls renaming removed (the two sum exactly to the
//! rename-off stall budget) and the instructions that bypassed a stalled
//! predecessor. Expected shape: makespans are monotone non-increasing in
//! both the window and the tag pool, tc gains little (it was never
//! hazard-bound), and kcc-4 climbs well past its in-order floor.

use sisa_algorithms::SearchLimits;
use sisa_bench::{
    emit, format_table, full_mode, rename_ooo_sweep, results_dir, RenameOooCell,
    RENAME_OOO_HEADLINE_WINDOW,
};

fn main() {
    let full = full_mode();
    let limits = SearchLimits::patterns(if full { 200_000 } else { 20_000 });
    let windows = [1usize, 4, RENAME_OOO_HEADLINE_WINDOW, 16, 64];
    let tag_counts = [0usize, 64, 512];
    let lanes = 16usize;

    let g = sisa_graph::datasets::by_name("soc-fbMsg")
        .expect("registered stand-in")
        .generate(1);
    let cells = rename_ooo_sweep("soc-fbMsg", &g, &windows, &tag_counts, lanes, &limits);

    let mut rows = Vec::new();
    for cell in &cells {
        rows.push(vec![
            cell.workload.clone(),
            cell.window.to_string(),
            if cell.tags == 0 {
                "off".to_string()
            } else {
                cell.tags.to_string()
            },
            format!("{:.3}", cell.work_cycles as f64 / 1e6),
            format!("{:.3}", cell.makespan_cycles as f64 / 1e6),
            format!("{:.2}x", cell.overlap_speedup),
            format!("{:.3}", cell.dep_stall_cycles as f64 / 1e6),
            format!("{:.3}", cell.false_dep_stalls_removed as f64 / 1e6),
            cell.bypassed_instructions.to_string(),
        ]);
    }
    let table = format_table(
        &[
            "workload",
            "window",
            "tags",
            "work [Mcyc]",
            "makespan [Mcyc]",
            "speedup",
            "dep-stall [Mcyc]",
            "false-removed [Mcyc]",
            "bypasses",
        ],
        &rows,
    );

    emit(
        "rename_ooo",
        &format!(
            "Set-ID renaming + out-of-order issue on soc-fbMsg (flat SISA runtime, {lanes} lanes).\n\
             Every write binds a fresh physical tag, so recycled set IDs carry no WAR/WAW\n\
             hazards; a bounded reorder window lets ready instructions bypass stalled ones\n\
             (retirement stays in program order) and tag free-list pressure is a structural\n\
             stall. tags = off is the rename-off in-order pipeline of the same depth; on a\n\
             renamed row, true-RAW + false-removed equals the rename-off row's dependence\n\
             stall exactly.\n\n{table}"
        ),
    );

    // Machine-readable mirror for downstream analysis.
    let dir = results_dir();
    let json = serde_json::to_string_pretty(&cells).expect("cells serialize");
    if std::fs::create_dir_all(&dir).is_ok()
        && std::fs::write(dir.join("rename_ooo.json"), &json).is_ok()
    {
        println!(
            "Sweep data ({} cells) recorded in {}",
            cells.len(),
            dir.join("rename_ooo.json").display()
        );
    }

    // Scheduling must never change answers or work, stalls must decompose
    // exactly, and the headline claim must hold.
    let workloads: std::collections::BTreeSet<&str> =
        cells.iter().map(|c| c.workload.as_str()).collect();
    for workload in workloads {
        let of_workload: Vec<&RenameOooCell> =
            cells.iter().filter(|c| c.workload == workload).collect();
        assert!(
            of_workload.windows(2).all(|w| w[0].result == w[1].result),
            "{workload}: renamed runs disagree on the result"
        );
        assert!(
            of_workload
                .windows(2)
                .all(|w| w[0].work_cycles == w[1].work_cycles),
            "{workload}: the renamed pipeline must conserve work"
        );
        for cell in of_workload.iter().filter(|c| c.tags > 0) {
            let reference = of_workload
                .iter()
                .find(|c| c.tags == 0 && c.window == cell.window)
                .expect("rename-off reference row present");
            assert_eq!(
                cell.dep_stall_cycles + cell.false_dep_stalls_removed,
                reference.dep_stall_cycles,
                "{workload}: stall decomposition must reconstruct the \
                 rename-off stall budget at window {}",
                cell.window
            );
        }
    }
    assert!(
        cells.iter().any(|c| c.workload == "kcc-4"
            && c.window == RENAME_OOO_HEADLINE_WINDOW
            && c.tags >= 512
            && c.overlap_speedup > 1.5),
        "kcc-4 must exceed 1.5x overlap with renaming and an \
         {RENAME_OOO_HEADLINE_WINDOW}-entry window"
    );
}
