//! Wall-clock benchmark of the multi-tenant serving layer
//! ([`sisa_service::SisaService`]): an open-loop arrival sweep against a
//! pooled, registry-shared service (submit-to-completion latency
//! percentiles, saturation-knee throughput, shed load), a line-delimited
//! JSON TCP transport smoke with concurrent client connections, an overload
//! probe demonstrating bounded-queue rejections instead of unbounded growth,
//! and — schema v2 — a repeated-spec result-cache scenario (hit p50 must
//! undercut miss p50 by >= 10x at zero billed engine cycles) plus a
//! two-tenant heavy/light WFQ fairness scenario (light p95 within 3x of its
//! solo p95 under 10x contention). The sweep and overload probe run with the
//! cache disabled so their latencies keep measuring executions. Schema v3
//! adds a rate-controlled streaming scenario: paced `mutate` batches
//! interleaved with reads served from the workers' incrementally-maintained
//! clique counters, each answer differentially checked against a host-side
//! recount, with the incremental update cycle required to undercut a
//! wholesale register-replace + cold-query recompute by >= 2x at the p50.
//!
//! Emits `results/BENCH_service.json` (schema in
//! [`sisa_bench::BenchService`], documented in the README's results
//! appendix) and self-validates the emitted artifact. The run also asserts
//! the serving layer's exact-attribution identities: per-tenant
//! [`sisa_core::ExecStats`] records fold bit-exactly to the pool aggregate,
//! and pool + registry overhead telescopes to the raw engine counters.
//! Flags: `--smoke` shrinks the sweep for CI; `--check` re-validates an
//! existing artifact without re-measuring.

use sisa_bench::{
    emit, format_table, percentile_ns, results_dir, BenchService, CacheScenario, FairnessScenario,
    HostPlatform, ServiceSweepPoint, StreamScenario, BENCH_SERVICE_SCHEMA_VERSION,
};
use sisa_core::ExecStats;
use sisa_graph::{generators, CsrGraph, GraphDelta};
use sisa_service::{
    AdmissionConfig, Frame, QueryKind, QuerySpec, Request, ServiceConfig, SisaService, TcpServer,
};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// The benchmark graph's generation seed (and the document's `seed` field).
const SEED: u64 = 42;
/// The registered name every query targets.
const GRAPH: &str = "er-service";
/// Concurrent tenants in the sweep and TCP phases.
const CLIENTS: usize = 8;
/// Queries each TCP client issues (8 × 13 = 104 ≥ the 100-query floor).
const TCP_QUERIES_PER_CLIENT: usize = 13;

/// The query kinds cycled through every phase, keyed by wire name.
fn query_mix() -> Vec<(String, QueryKind)> {
    vec![
        ("tc".into(), QueryKind::TriangleCount),
        ("kclique3".into(), QueryKind::KCliqueCount { k: 3 }),
        ("star2".into(), QueryKind::StarCount { k: 2 }),
    ]
}

fn bench_graph(smoke: bool) -> sisa_graph::CsrGraph {
    if smoke {
        generators::erdos_renyi(96, 0.10, SEED)
    } else {
        generators::erdos_renyi(256, 0.06, SEED)
    }
}

/// Asserts the exact-attribution identities on a drained service. Returns
/// only if they hold (the `stats_identity_checked` field of the document).
fn assert_stats_identities(service: &SisaService) {
    let usage = service.tenant_usage();
    let mut folded = ExecStats::default();
    for tenant in usage.values() {
        folded.merge(&tenant.stats);
    }
    let pool = service.pool_stats();
    assert_eq!(folded, pool, "tenant fold != pool aggregate");
    assert_eq!(
        folded.energy_nj.to_bits(),
        pool.energy_nj.to_bits(),
        "pool energy is not bit-exact against the tenant fold"
    );

    let mut attributed = pool;
    attributed.merge(&service.registry_stats());
    let engines = service.engine_stats();
    assert_eq!(attributed.scu_cycles, engines.scu_cycles, "scu_cycles leak");
    assert_eq!(attributed.pum_cycles, engines.pum_cycles, "pum_cycles leak");
    assert_eq!(attributed.pnm_cycles, engines.pnm_cycles, "pnm_cycles leak");
    assert_eq!(
        attributed.host_cycles, engines.host_cycles,
        "host_cycles leak"
    );
    assert_eq!(
        attributed.link_cycles, engines.link_cycles,
        "link_cycles leak"
    );
    assert_eq!(
        attributed.instructions, engines.instructions,
        "instruction-mix leak"
    );
    let energy_err = (attributed.energy_nj - engines.energy_nj).abs();
    assert!(
        energy_err <= 1e-9 * engines.energy_nj.abs().max(1.0),
        "energy attribution drifted: {} vs {}",
        attributed.energy_nj,
        engines.energy_nj
    );
}

/// One open-loop rate point: `arrivals` queries paced at `offered_qps`,
/// round-robined over tenants and the query mix; every accepted query is
/// awaited on its own thread so latencies are measured at completion.
fn sweep_point(service: &SisaService, offered_qps: f64, arrivals: usize) -> ServiceSweepPoint {
    let mix = query_mix();
    let completed_before = service.report().completed;
    let coalesced_before = service.report().coalesced;
    let latencies: Mutex<Vec<u64>> = Mutex::new(Vec::with_capacity(arrivals));
    let mut rejected = 0u64;
    let started = Instant::now();
    let mut last_done = started;

    std::thread::scope(|scope| {
        let mut waiters = Vec::new();
        for i in 0..arrivals {
            let due = Duration::from_secs_f64(i as f64 / offered_qps);
            if let Some(sleep) = due.checked_sub(started.elapsed()) {
                std::thread::sleep(sleep);
            }
            let tenant = format!("tenant-{}", i % CLIENTS);
            let spec = QuerySpec::new(GRAPH, mix[i % mix.len()].1.clone());
            match service.submit(&tenant, spec) {
                Err(rejection) => {
                    assert!(rejection.retry_after_ms >= 1, "rejections carry hints");
                    rejected += 1;
                }
                Ok(handle) => {
                    let submitted_at = Instant::now();
                    let latencies = &latencies;
                    waiters.push(scope.spawn(move || {
                        handle.wait().expect("accepted queries complete");
                        let done = Instant::now();
                        latencies
                            .lock()
                            .expect("latency lock")
                            .push(done.duration_since(submitted_at).as_nanos() as u64);
                        done
                    }));
                }
            }
        }
        for waiter in waiters {
            last_done = last_done.max(waiter.join().expect("waiter thread"));
        }
    });

    let latencies = latencies.into_inner().expect("latency lock");
    assert!(
        !latencies.is_empty(),
        "rate {offered_qps}: nothing completed"
    );
    let span = last_done.duration_since(started).as_secs_f64().max(1e-9);
    let report = service.report();
    ServiceSweepPoint {
        offered_qps,
        submitted: arrivals as u64,
        completed: report.completed - completed_before,
        rejected,
        coalesced: report.coalesced - coalesced_before,
        p50_latency_ns: percentile_ns(&latencies, 50.0),
        p95_latency_ns: percentile_ns(&latencies, 95.0),
        p99_latency_ns: percentile_ns(&latencies, 99.0),
        achieved_qps: latencies.len() as f64 / span,
    }
}

/// The TCP transport smoke: `CLIENTS` concurrent connections against one
/// registry-shared graph, line-delimited JSON in, streamed frames out.
/// Returns the number of queries answered with a `result` frame.
fn tcp_smoke(smoke: bool) -> u64 {
    let service = SisaService::start(ServiceConfig::smoke());
    service.register_graph(GRAPH, bench_graph(smoke));
    let mix = query_mix();

    // In-process oracle per query kind, so every TCP answer is checked.
    let mut expected = Vec::with_capacity(mix.len());
    for (_, kind) in &mix {
        let outcome = service
            .submit("oracle", QuerySpec::new(GRAPH, kind.clone()))
            .expect("admitted")
            .wait()
            .expect("completes");
        expected.push(outcome.value);
    }

    let server = TcpServer::serve(service.client(), "127.0.0.1:0").expect("bind");
    let addr = server.addr();
    let answered: u64 = std::thread::scope(|scope| {
        let expected = &expected;
        let mix = &mix;
        let clients: Vec<_> = (0..CLIENTS)
            .map(|c| {
                scope.spawn(move || {
                    let stream = TcpStream::connect(addr).expect("connect");
                    let mut writer = stream.try_clone().expect("clone stream");
                    let mut lines = BufReader::new(stream).lines();
                    let mut answered = 0u64;
                    for q in 0..TCP_QUERIES_PER_CLIENT {
                        let kind_idx = (c + q) % mix.len();
                        let spec = QuerySpec::new(GRAPH, mix[kind_idx].1.clone());
                        let id = (c * TCP_QUERIES_PER_CLIENT + q) as u64;
                        let tenant = format!("tcp-{c}");
                        let request = Request::from_spec(id, &tenant, &spec);
                        let mut line = serde_json::to_string(&request).expect("request json");
                        line.push('\n');
                        writer.write_all(line.as_bytes()).expect("write");
                        loop {
                            let line = lines.next().expect("frame").expect("read");
                            let frame: Frame = serde_json::from_str(&line).expect("frame parses");
                            assert_eq!(frame.id, id, "frames correlate to their request");
                            if frame.is_terminal() {
                                assert_eq!(frame.frame, "result", "{frame:?}");
                                assert_eq!(
                                    frame.value,
                                    Some(expected[kind_idx]),
                                    "TCP answer disagrees with the in-process oracle"
                                );
                                answered += 1;
                                break;
                            }
                        }
                    }
                    answered
                })
            })
            .collect();
        clients
            .into_iter()
            .map(|join| join.join().expect("tcp client thread"))
            .sum()
    });

    assert_eq!(answered, (CLIENTS * TCP_QUERIES_PER_CLIENT) as u64);
    assert_eq!(
        service.report().graph_loads,
        1,
        "all TCP clients shared one registry load"
    );

    // Metrics round-trip over the same wire: the snapshot's query counter
    // must equal the oracle-checked count (TCP answers + in-process oracles).
    let stream = TcpStream::connect(addr).expect("connect for metrics");
    let mut writer = stream.try_clone().expect("clone stream");
    let mut lines = BufReader::new(stream).lines();
    writer
        .write_all(b"{\"id\": 9000, \"query\": \"metrics\"}\n")
        .expect("write metrics request");
    let line = lines.next().expect("metrics frame").expect("read");
    let frame: Frame = serde_json::from_str(&line).expect("metrics frame parses");
    assert_eq!(frame.frame, "metrics");
    assert_eq!(frame.id, 9000, "metrics frames echo the request id");
    let snapshot = frame.metrics.expect("snapshot payload");
    let oracle_checked = answered + expected.len() as u64;
    assert_eq!(
        snapshot.counters["sisa_queries_completed_total"], oracle_checked,
        "the TCP metrics snapshot disagrees with the oracle-checked query count"
    );
    assert_eq!(
        snapshot.counters["sisa_queries_completed_total"],
        service.report().completed,
        "metrics counter disagrees with the service ledger"
    );
    assert!(
        frame
            .metrics_text
            .expect("prometheus text")
            .contains("sisa_queries_completed_total"),
        "the Prometheus exposition names the query counter"
    );

    assert_stats_identities(&service);
    server.stop();
    service.close();
    answered
}

/// The repeated-spec cache scenario: execute a working set of unique specs
/// once (the miss phase), then re-submit the identical set `HIT_ROUNDS`
/// times (the hit phase). Asserts — in-binary — that every repeat is a
/// cache hit, that engine aggregates are frozen across the whole hit phase
/// (zero billed cycles, bit-exact energy), and that the hit p50 undercuts
/// the miss p50 by at least 10x.
fn cache_scenario(smoke: bool) -> CacheScenario {
    const DISTINCT_SPECS: u64 = 6;
    const HIT_ROUNDS: u64 = 4;
    let service = SisaService::start(ServiceConfig::smoke());
    service.register_graph(GRAPH, bench_graph(smoke));
    // Unique, never-truncating budgets keep the specs distinct, so the miss
    // phase really executes each one; k=4 cliques make each execution
    // comfortably heavier than a cache lookup round-trip.
    let specs: Vec<QuerySpec> = (0..DISTINCT_SPECS)
        .map(|i| {
            QuerySpec::new(GRAPH, QueryKind::KCliqueCount { k: 4 }).with_budget(1_000_000_000 + i)
        })
        .collect();
    let timed = |spec: &QuerySpec| {
        let started = Instant::now();
        let outcome = service
            .submit("cache-tenant", spec.clone())
            .expect("admitted")
            .wait()
            .expect("completes");
        (started.elapsed().as_nanos() as u64, outcome)
    };

    let mut miss_latencies = Vec::new();
    for spec in &specs {
        let (latency, outcome) = timed(spec);
        assert!(!outcome.stats.cache_hit, "first executions are misses");
        miss_latencies.push(latency);
    }

    let engines_before = service.engine_stats();
    let mut hit_latencies = Vec::new();
    for _ in 0..HIT_ROUNDS {
        for spec in &specs {
            let (latency, outcome) = timed(spec);
            assert!(outcome.stats.cache_hit, "repeats are served by the cache");
            assert_eq!(outcome.stats.execute_ns, 0, "hits spend no worker time");
            hit_latencies.push(latency);
        }
    }
    let engines_after = service.engine_stats();
    assert_eq!(
        engines_before, engines_after,
        "the hit phase billed engine cycles"
    );
    assert_eq!(
        engines_before.energy_nj.to_bits(),
        engines_after.energy_nj.to_bits(),
        "the hit phase drifted engine energy"
    );
    assert_stats_identities(&service);

    let report = service.report();
    assert_eq!(report.cache_hits, DISTINCT_SPECS * HIT_ROUNDS);
    let counters = service.cache_counters();
    assert!(counters.hit_ratio_permille() > 0, "hit ratio must be > 0");
    service.close();

    let miss_p50_latency_ns = percentile_ns(&miss_latencies, 50.0);
    let hit_p50_latency_ns = percentile_ns(&hit_latencies, 50.0).max(1);
    assert!(
        hit_p50_latency_ns.saturating_mul(10) <= miss_p50_latency_ns,
        "cache hit p50 {hit_p50_latency_ns} ns is not >= 10x below the miss p50 \
         {miss_p50_latency_ns} ns"
    );
    CacheScenario {
        distinct_specs: DISTINCT_SPECS,
        hit_rounds: HIT_ROUNDS,
        miss_p50_latency_ns,
        hit_p50_latency_ns,
        hit_speedup_p50: miss_p50_latency_ns as f64 / hit_p50_latency_ns as f64,
        cache_hits: counters.hits,
        cache_misses: counters.misses,
        hit_ratio_permille: counters.hit_ratio_permille(),
        zero_engine_cost_checked: true,
    }
}

/// The two-tenant WFQ fairness scenario: a single worker, equal weights, a
/// heavy tenant holding ~10x the light tenant's load in flight. Unique
/// budgets defeat the cache and coalescing so every query executes. Asserts
/// — in-binary — that the light tenant's contended p95 stays within 3x of
/// its solo p95.
fn fairness_scenario(smoke: bool) -> FairnessScenario {
    // Enough light samples that the nearest-rank p95 sits below the top two
    // outliers — the bound is about typical isolation, not the single worst
    // arrival race.
    const LIGHT_QUERIES: u64 = 40;
    const HEAVY_FACTOR: u64 = 10;
    const P95_BOUND: f64 = 3.0;
    let graph = bench_graph(smoke);
    let spec = |i: u64| {
        QuerySpec::new(GRAPH, QueryKind::KCliqueCount { k: 3 }).with_budget(2_000_000_000 + i)
    };
    let start = || {
        let mut cfg = ServiceConfig::smoke();
        cfg.workers = 1;
        cfg.admission.queue_capacity = 2048;
        cfg.admission.per_tenant_inflight = 1024;
        let service = SisaService::start(cfg);
        service.register_graph(GRAPH, graph.clone());
        // Warm the one-time shard-resident load out of the measurements.
        service
            .submit("warmup", spec(0))
            .expect("admitted")
            .wait()
            .expect("completes");
        service
    };
    let light_p95 = |service: &SisaService, base: u64| {
        let spans: Vec<u64> = (0..LIGHT_QUERIES)
            .map(|i| {
                service
                    .submit("light", spec(base + i))
                    .expect("admitted")
                    .wait()
                    .expect("completes")
                    .stats
                    .span_ns
            })
            .collect();
        percentile_ns(&spans, 95.0)
    };

    let service = start();
    let solo_p95_latency_ns = light_p95(&service, 10_000).max(1);
    service.close();

    let service = start();
    let contended_p95_latency_ns = std::thread::scope(|scope| {
        let heavy = {
            let client = service.client();
            scope.spawn(move || {
                let mut outstanding = std::collections::VecDeque::new();
                for i in 0..LIGHT_QUERIES * HEAVY_FACTOR {
                    loop {
                        match client.submit("heavy", spec(20_000 + i)) {
                            Ok(handle) => {
                                outstanding.push_back(handle);
                                break;
                            }
                            Err(_) => {
                                if let Some(handle) = outstanding.pop_front() {
                                    let _ = handle.wait();
                                }
                            }
                        }
                    }
                    if outstanding.len() >= HEAVY_FACTOR as usize {
                        let _ = outstanding.pop_front().expect("non-empty").wait();
                    }
                }
                for handle in outstanding {
                    let _ = handle.wait();
                }
            })
        };
        std::thread::sleep(Duration::from_millis(10));
        let p95 = light_p95(&service, 30_000);
        heavy.join().expect("heavy client thread");
        p95
    });
    let report = service.report();
    assert_eq!(report.cache_hits, 0, "unique budgets defeat the cache");
    assert_eq!(report.coalesced, 0, "unique budgets defeat coalescing");
    assert_stats_identities(&service);
    service.close();

    let p95_ratio = contended_p95_latency_ns as f64 / solo_p95_latency_ns as f64;
    assert!(
        p95_ratio <= P95_BOUND,
        "light-tenant p95 under {HEAVY_FACTOR}x contention ({contended_p95_latency_ns} ns) \
         exceeded {P95_BOUND}x its solo p95 ({solo_p95_latency_ns} ns)"
    );
    FairnessScenario {
        light_queries: LIGHT_QUERIES,
        heavy_factor: HEAVY_FACTOR,
        solo_p95_latency_ns,
        contended_p95_latency_ns,
        p95_ratio,
        p95_ratio_bound: P95_BOUND,
    }
}

/// A splitmix64 step: the deterministic source behind the mutation stream.
fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Host-side triangle recount of a CSR graph (sorted-adjacency merge
/// intersection) — the differential oracle for the stream scenario.
fn host_triangle_count(g: &CsrGraph) -> u64 {
    let mut total = 0u64;
    for u in 0..g.num_vertices() as u32 {
        for &v in g.neighbors(u).iter().filter(|&&v| v > u) {
            let (mut a, mut b) = (g.neighbors(u), g.neighbors(v));
            while let (Some(&x), Some(&y)) = (a.first(), b.first()) {
                match x.cmp(&y) {
                    std::cmp::Ordering::Less => a = &a[1..],
                    std::cmp::Ordering::Greater => b = &b[1..],
                    std::cmp::Ordering::Equal => {
                        if x > v {
                            total += 1;
                        }
                        a = &a[1..];
                        b = &b[1..];
                    }
                }
            }
        }
    }
    total
}

/// One pseudorandom mutation batch over `n` vertices: a few inserts plus a
/// delete drawn from the reference graph's present edges.
fn stream_delta(reference: &CsrGraph, rng: &mut u64) -> GraphDelta {
    let n = reference.num_vertices() as u64;
    let mut delta = GraphDelta::new();
    for _ in 0..2 {
        let u = splitmix(rng) % n;
        let v = splitmix(rng) % n;
        delta = delta.insert(u as u32, v as u32);
    }
    let u = (splitmix(rng) % n) as u32;
    let neigh = reference.neighbors(u);
    if let Some(&v) = neigh.get((splitmix(rng) as usize) % neigh.len().max(1)) {
        delta = delta.delete(u, v);
    }
    delta
}

/// The schema-v3 streaming scenario: a paced open-loop stream of mutation
/// batches, each followed by read queries on the same graph. Reads ride the
/// worker's incrementally-maintained counters; each triangle answer is
/// differentially checked against a host-side recount of the reference
/// successor. The recompute baseline replaces the graph wholesale per
/// update (register + cold query); the incremental p50 must undercut it 2x.
fn stream_scenario(smoke: bool) -> StreamScenario {
    const OFFERED_UPS: f64 = 200.0;
    const SPEEDUP_FLOOR: f64 = 2.0;
    let (updates, baseline_rounds) = if smoke {
        (24u64, 8usize)
    } else {
        (96u64, 16usize)
    };

    let mut cfg = ServiceConfig::smoke();
    cfg.admission.per_tenant_inflight = 64;
    let service = SisaService::start(cfg);
    let mut reference = bench_graph(smoke);
    service.register_graph(GRAPH, reference.clone());
    let mut rng = SEED ^ 0x5157_e4a3;

    // Warm the initial stream-state build (one-time, billed to the registry
    // ledger like a graph load) out of the paced measurements.
    let warm_delta = stream_delta(&reference, &mut rng);
    let mut edge_intents = warm_delta.len() as u64;
    service
        .submit(
            "stream-writer",
            QuerySpec::new(GRAPH, QueryKind::Mutate(warm_delta)),
        )
        .expect("admitted")
        .wait()
        .expect("warmup mutation applies");
    let warm = service.registry().acquire_lease(GRAPH).expect("resident");
    reference = (*warm.graph).clone();
    drop(warm);

    let mut queries = 0u64;
    let mut incremental_ns = Vec::with_capacity(updates as usize);
    let started = Instant::now();
    for i in 0..updates {
        // Open-loop pacing: update i is due at i / OFFERED_UPS seconds.
        let due = Duration::from_secs_f64(i as f64 / OFFERED_UPS);
        if let Some(wait) = due.checked_sub(started.elapsed()) {
            std::thread::sleep(wait);
        }
        let delta = stream_delta(&reference, &mut rng);
        edge_intents += delta.len() as u64;
        reference = delta.apply_to(&reference);
        let cycle = Instant::now();
        let applied = service
            .submit(
                "stream-writer",
                QuerySpec::new(GRAPH, QueryKind::Mutate(delta)),
            )
            .expect("admitted")
            .wait()
            .expect("mutation applies");
        assert!(!applied.stats.cache_hit, "mutations never hit the cache");
        let tc = service
            .submit(
                "stream-reader",
                QuerySpec::new(GRAPH, QueryKind::TriangleCount),
            )
            .expect("admitted")
            .wait()
            .expect("completes");
        incremental_ns.push(cycle.elapsed().as_nanos() as u64);
        queries += 1;
        assert_eq!(
            tc.value,
            host_triangle_count(&reference),
            "update {i}: streamed triangle count diverged from the recount"
        );
    }
    let report = service.report();
    assert_eq!(report.mutations, updates + 1, "every batch landed");
    let stream_serves = service.metrics_snapshot().counters["sisa_stream_serves_total"];
    assert_stats_identities(&service);

    // The recompute baseline on the same service: replace the graph under a
    // fresh name and pay a cold load + full kernel per update.
    const BASE: &str = "er-stream-base";
    let mut rng = SEED ^ 0x0bad_cafe;
    let mut base_graph = bench_graph(smoke);
    service.register_graph(BASE, base_graph.clone());
    let mut recompute_ns = Vec::with_capacity(baseline_rounds);
    for _ in 0..baseline_rounds {
        let delta = stream_delta(&base_graph, &mut rng);
        base_graph = delta.apply_to(&base_graph);
        let cycle = Instant::now();
        service.register_graph(BASE, base_graph.clone());
        service
            .submit(
                "recompute-reader",
                QuerySpec::new(BASE, QueryKind::TriangleCount),
            )
            .expect("admitted")
            .wait()
            .expect("completes");
        recompute_ns.push(cycle.elapsed().as_nanos() as u64);
    }
    service.close();

    let incremental_p50_latency_ns = percentile_ns(&incremental_ns, 50.0).max(1);
    let incremental_p95_latency_ns = percentile_ns(&incremental_ns, 95.0).max(1);
    let recompute_p50_latency_ns = percentile_ns(&recompute_ns, 50.0).max(1);
    let incremental_speedup_p50 =
        recompute_p50_latency_ns as f64 / incremental_p50_latency_ns as f64;
    assert!(
        incremental_speedup_p50 >= SPEEDUP_FLOOR,
        "incremental update cycle p50 ({incremental_p50_latency_ns} ns) is not \
         {SPEEDUP_FLOOR}x below the recompute baseline p50 ({recompute_p50_latency_ns} ns)"
    );
    StreamScenario {
        mutations: updates + 1,
        edge_intents,
        queries,
        stream_serves,
        offered_ups: OFFERED_UPS,
        incremental_p50_latency_ns,
        incremental_p95_latency_ns,
        recompute_p50_latency_ns,
        incremental_speedup_p50,
        speedup_floor: SPEEDUP_FLOOR,
        differential_checked: true,
    }
}

/// The overload probe: a tiny bounded queue under a hard burst must shed
/// load with retry hints — and keep serving afterwards — rather than grow
/// without bound or panic. Returns the rejection count (> 0).
fn overload_probe(smoke: bool) -> u64 {
    let mut cfg = ServiceConfig::smoke();
    cfg.workers = 1;
    // Cache off: the burst repeats one spec, and the probe is about shedding
    // *work*, not about how fast hits drain.
    cfg.cache_entries = 0;
    cfg.admission = AdmissionConfig {
        queue_capacity: 4,
        per_tenant_inflight: 2,
        retry_after_ms: 5,
    };
    let service = SisaService::start(cfg);
    service.register_graph(GRAPH, bench_graph(smoke));

    let burst = 160;
    let mut handles = Vec::new();
    let mut rejected = 0u64;
    for i in 0..burst {
        let tenant = format!("burst-{}", i % CLIENTS);
        match service.submit(&tenant, QuerySpec::new(GRAPH, QueryKind::TriangleCount)) {
            Ok(handle) => handles.push(handle),
            Err(rejection) => {
                assert!(rejection.retry_after_ms >= 1);
                rejected += 1;
            }
        }
    }
    assert!(
        rejected > 0,
        "a {burst}-query burst must overflow capacity 4"
    );
    let accepted = handles.len() as u64;
    for handle in handles {
        handle.wait().expect("accepted queries complete");
    }
    let report = service.report();
    assert_eq!(report.completed, accepted, "no accepted query was dropped");
    assert_eq!(report.in_flight, 0, "every admission slot was released");
    service
        .submit("burst-0", QuerySpec::new(GRAPH, QueryKind::TriangleCount))
        .expect("the service recovered after shedding")
        .wait()
        .expect("completes");
    service.close();
    rejected
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let path = results_dir().join("BENCH_service.json");

    if args.iter().any(|a| a == "--check") {
        let text = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("cannot read {}: {e}", path.display()));
        let doc = BenchService::from_json(&text)
            .unwrap_or_else(|e| panic!("{} does not parse: {e}", path.display()));
        doc.validate()
            .unwrap_or_else(|e| panic!("{} violates the schema: {e}", path.display()));
        println!(
            "{} is a valid schema-v{} document (knee {} qps, peak {:.1} qps, {} sweep points; \
             cache hit speedup {:.1}x at {} permille, fairness p95 ratio {:.2} <= {:.1}; \
             stream: {} mutations, incremental speedup {:.1}x >= {:.1}x).",
            path.display(),
            doc.schema_version,
            doc.knee_offered_qps,
            doc.peak_achieved_qps,
            doc.sweep.len(),
            doc.cache.hit_speedup_p50,
            doc.cache.hit_ratio_permille,
            doc.fairness.p95_ratio,
            doc.fairness.p95_ratio_bound,
            doc.stream.mutations,
            doc.stream.incremental_speedup_p50,
            doc.stream.speedup_floor,
        );
        return;
    }

    let (rates, arrivals): (&[f64], usize) = if smoke {
        (&[50.0, 200.0, 800.0], 48)
    } else {
        (&[25.0, 50.0, 100.0, 200.0, 400.0, 800.0, 1600.0], 240)
    };

    // Phase 1: the open-loop arrival sweep on one long-lived service — the
    // graph is registered (and loaded) once and shared by every rate point.
    // The result cache is disabled here so the sweep keeps measuring
    // *executions* (comparable with schema-v1 sweeps); the cache gets its
    // own scenario below.
    let mut cfg = if smoke {
        ServiceConfig::smoke()
    } else {
        ServiceConfig::default()
    };
    cfg.cache_entries = 0;
    let (workers, shards) = (cfg.workers, cfg.shards);
    let service = SisaService::start(cfg);
    service.register_graph(GRAPH, bench_graph(smoke));
    let sweep: Vec<ServiceSweepPoint> = rates
        .iter()
        .map(|&rate| sweep_point(&service, rate, arrivals))
        .collect();
    assert_stats_identities(&service);
    let sweep_rejected: u64 = sweep.iter().map(|p| p.rejected).sum();
    service.close();

    let knee_offered_qps = sweep
        .iter()
        .find(|p| p.achieved_qps < 0.9 * p.offered_qps)
        .map_or_else(|| rates[rates.len() - 1], |p| p.offered_qps);
    let peak_achieved_qps = sweep.iter().map(|p| p.achieved_qps).fold(0.0, f64::max);

    // Phase 2: the TCP transport smoke (≥ 8 concurrent connections, shared
    // registry load, every answer checked against the in-process oracle).
    let tcp_smoke_queries = tcp_smoke(smoke);

    // Phase 3: the overload probe (bounded queues shed load explicitly).
    let overload_rejected = overload_probe(smoke);

    // Phase 4 (schema v2): repeated-spec cache effectiveness — hits must be
    // >= 10x cheaper than executions and bill zero engine cycles.
    let cache = cache_scenario(smoke);

    // Phase 5 (schema v2): two-tenant WFQ fairness — a 10x-heavy tenant must
    // not push the light tenant's p95 beyond 3x its solo baseline.
    let fairness = fairness_scenario(smoke);

    // Phase 6 (schema v3): the rate-controlled streaming update/query mix —
    // incremental maintenance must undercut wholesale recompute 2x, with
    // every streamed answer differentially checked.
    let stream = stream_scenario(smoke);

    let rows: Vec<Vec<String>> = sweep
        .iter()
        .map(|p| {
            vec![
                format!("{:.0}", p.offered_qps),
                p.submitted.to_string(),
                p.rejected.to_string(),
                p.coalesced.to_string(),
                format!("{:.3}", p.p50_latency_ns as f64 / 1e6),
                format!("{:.3}", p.p99_latency_ns as f64 / 1e6),
                format!("{:.1}", p.achieved_qps),
            ]
        })
        .collect();
    let table = format_table(
        &[
            "offered [qps]",
            "submitted",
            "rejected",
            "coalesced",
            "p50 [ms]",
            "p99 [ms]",
            "achieved [qps]",
        ],
        &rows,
    );
    emit(
        "bench_service",
        &format!(
            "Service open-loop sweep, seed {SEED} ({} mode): {CLIENTS} tenants over \
             the registry-shared {GRAPH} graph, {workers} workers x {shards} shards.\n\
             Saturation knee at {knee_offered_qps} qps offered, peak {peak_achieved_qps:.1} qps \
             achieved; TCP smoke answered {tcp_smoke_queries} queries over {CLIENTS} \
             connections; overload probe shed {overload_rejected} of a 160-query burst.\n\
             Cache scenario: hit p50 {:.3} ms vs miss p50 {:.3} ms ({:.1}x, {} permille hit \
             ratio, zero engine cycles billed). Fairness: light-tenant p95 ratio {:.2} under \
             {}x heavy load (bound {:.1}).\n\
             Stream scenario: {} mutation batches at {:.0} ups, incremental cycle p50 \
             {:.3} ms vs recompute p50 {:.3} ms ({:.1}x >= {:.1}x), {} reads served from \
             maintained counters, all differentially checked.\n\
             Exact-attribution identities held (tenant fold == pool, pool + registry == engines).\
             \n\n{table}",
            if smoke { "smoke" } else { "full" },
            cache.hit_p50_latency_ns as f64 / 1e6,
            cache.miss_p50_latency_ns as f64 / 1e6,
            cache.hit_speedup_p50,
            cache.hit_ratio_permille,
            fairness.p95_ratio,
            fairness.heavy_factor,
            fairness.p95_ratio_bound,
            stream.mutations,
            stream.offered_ups,
            stream.incremental_p50_latency_ns as f64 / 1e6,
            stream.recompute_p50_latency_ns as f64 / 1e6,
            stream.incremental_speedup_p50,
            stream.speedup_floor,
            stream.stream_serves,
        ),
    );

    let doc = BenchService {
        schema_version: BENCH_SERVICE_SCHEMA_VERSION,
        mode: if smoke { "smoke" } else { "full" }.into(),
        seed: SEED,
        host: HostPlatform::capture(),
        graph: GRAPH.into(),
        workers,
        shards,
        clients: CLIENTS,
        query_mix: query_mix().into_iter().map(|(name, _)| name).collect(),
        sweep,
        knee_offered_qps,
        peak_achieved_qps,
        total_rejected: sweep_rejected + overload_rejected,
        tcp_smoke_queries,
        tcp_smoke_clients: CLIENTS,
        stats_identity_checked: true,
        cache,
        fairness,
        stream,
    };
    doc.validate().expect("emitted document is schema-valid");

    let dir = results_dir();
    std::fs::create_dir_all(&dir).expect("results dir");
    std::fs::write(&path, doc.to_json()).expect("write BENCH_service.json");
    // Read the artifact back so a serialization regression fails loudly here
    // rather than in a downstream consumer.
    let reread = BenchService::from_json(&std::fs::read_to_string(&path).expect("reread"))
        .expect("emitted artifact parses");
    assert_eq!(reread, doc, "artifact does not round-trip");
    println!("Service trajectory recorded in {}", path.display());
}
