//! Multi-cube scaling study: shard count × partition strategy on a sharded
//! SISA platform, with cross-shard link traffic priced by the PNM link model.
//!
//! The sweep runs triangle counting and 4-clique counting on a
//! `ShardedEngine<SisaRuntime>` (one inner runtime per vault group / cube) and
//! reports, per cell, the multi-cube makespan, shard imbalance and the
//! inter-vault/inter-cube transfer volume each placement strategy induces.
//! Expected shape: modulo placement balances load but maximises cross-shard
//! traffic, range placement keeps neighbourhood blocks local at the cost of
//! imbalance (algorithm temporaries pile onto the last shard), and
//! degree-balanced placement sits between the two.

use sisa_algorithms::SearchLimits;
use sisa_bench::{emit, format_table, full_mode, multi_cube_sweep, results_dir, MultiCubeCell};

fn main() {
    let full = full_mode();
    let limits = SearchLimits::patterns(if full { 200_000 } else { 20_000 });
    let shard_counts = [1usize, 2, 4, 8, 16];

    let g = sisa_graph::datasets::by_name("soc-fbMsg")
        .expect("registered stand-in")
        .generate(1);
    let cells = multi_cube_sweep("soc-fbMsg", &g, &shard_counts, &limits);

    let mut rows = Vec::new();
    for cell in &cells {
        let one_shard = cells
            .iter()
            .find(|c| c.workload == cell.workload && c.strategy == cell.strategy && c.shards == 1)
            .expect("the sweep includes a 1-shard baseline");
        let speedup = one_shard.makespan_cycles as f64 / cell.makespan_cycles.max(1) as f64;
        rows.push(vec![
            cell.workload.clone(),
            cell.strategy.clone(),
            cell.shards.to_string(),
            format!("{:.3}", cell.makespan_cycles as f64 / 1e6),
            format!("{:.2}x", speedup),
            format!("{:.3}", cell.imbalance),
            cell.cross_shard_ops.to_string(),
            format!("{:.1}", cell.cross_shard_bytes as f64 / 1024.0),
            format!("{:.3}", cell.link_cycles as f64 / 1e6),
        ]);
    }
    let table = format_table(
        &[
            "workload",
            "strategy",
            "shards",
            "makespan [Mcyc]",
            "speedup",
            "imbalance",
            "xfer ops",
            "xfer [KiB]",
            "link [Mcyc]",
        ],
        &rows,
    );

    emit(
        "multi_cube",
        &format!(
            "Multi-cube scaling on soc-fbMsg (sharded SISA, one engine per vault group/cube).\n\
             Cross-shard binary operations move the smaller operand over the vault/cube links\n\
             (priced by the PNM link model); placement decides how often that happens.\n\n{table}"
        ),
    );

    // Machine-readable mirror for downstream analysis.
    let dir = results_dir();
    let json = serde_json::to_string_pretty(&cells).expect("cells serialize");
    if std::fs::create_dir_all(&dir).is_ok()
        && std::fs::write(dir.join("multi_cube.json"), &json).is_ok()
    {
        println!(
            "Sweep data ({} cells) recorded in {}",
            cells.len(),
            dir.join("multi_cube.json").display()
        );
    }

    // All cells of a workload must agree on the mined result (workloads are
    // taken from the sweep output so new ones cannot be skipped silently).
    let workloads: std::collections::BTreeSet<&str> =
        cells.iter().map(|c| c.workload.as_str()).collect();
    for workload in workloads {
        let results: Vec<u64> = cells
            .iter()
            .filter(|c| c.workload == workload)
            .map(|c: &MultiCubeCell| c.result)
            .collect();
        assert!(
            results.windows(2).all(|w| w[0] == w[1]),
            "{workload}: sharded runs disagree: {results:?}"
        );
    }
}
