//! Table 6: empirical check of the merge vs. galloping complexity analysis —
//! operation counts for triangle counting under both intersection variants.

use sisa_bench::{emit, format_table};
use sisa_graph::{generators, orientation::degeneracy_order};
use sisa_sets::counting::{intersect_galloping_counted, intersect_merge_counted, OpCost};

fn tc_work(oriented: &sisa_graph::CsrGraph, galloping: bool) -> OpCost {
    let mut total = OpCost::default();
    for v in oriented.vertices() {
        for &w in oriented.neighbors(v) {
            let (_, cost) = if galloping {
                intersect_galloping_counted(oriented.neighbors(v), oriented.neighbors(w))
            } else {
                intersect_merge_counted(oriented.neighbors(v), oriented.neighbors(w))
            };
            total.add(cost);
        }
    }
    total
}

fn main() {
    let mut rows = Vec::new();
    // Vary the graph size at constant average degree: the merge variant should
    // scale like O(m*c) and the galloping variant like O(m*c*log c).
    for scale in [9u32, 10, 11, 12] {
        let g = generators::kronecker(&generators::RmatConfig::default_scale(scale), 7);
        let ordering = degeneracy_order(&g);
        let oriented = ordering.orient(&g);
        let merge = tc_work(&oriented, false);
        let gallop = tc_work(&oriented, true);
        let m = g.num_edges() as f64;
        let c = ordering.degeneracy as f64;
        rows.push(vec![
            format!("2^{scale}"),
            g.num_edges().to_string(),
            ordering.degeneracy.to_string(),
            merge.work().to_string(),
            format!("{:.2}", merge.work() as f64 / (m * c)),
            gallop.work().to_string(),
            format!("{:.2}", gallop.work() as f64 / (m * c * c.max(2.0).log2())),
        ]);
    }
    emit(
        "tab6_complexity",
        &format!(
            "Table 6 (empirical): triangle-counting work under merge vs. galloping intersections\n\
             on Kronecker graphs. The normalised columns should stay roughly constant, matching\n\
             the O(mc) and O(mc log c) bounds.\n\n{}",
            format_table(
                &[
                    "n",
                    "m",
                    "degeneracy c",
                    "merge work",
                    "merge / (m*c)",
                    "galloping work",
                    "galloping / (m*c*log c)",
                ],
                &rows
            )
        ),
    );
}
