//! Pipeline-overlap study: issue-queue depth × virtual-lane count on a flat
//! SISA runtime with the scoreboarded issue queue.
//!
//! The sweep runs triangle counting and 4-clique counting at every (depth,
//! lanes) point and reports, per cell, the serial work total, the overlapped
//! makespan, the overlap speedup `work / makespan`, and the cycles lost to
//! operand hazards (RAW/WAW/WAR on set IDs). Expected shape: depth 1 is the
//! serial cost model (makespan = work, no stalls); at a fixed depth the
//! makespan is monotone non-increasing in the lane count; clique kernels
//! expose fewer hazards than their dependence-heavy instruction mix suggests
//! because counting intersections over distinct vertex pairs are mutually
//! independent.

use sisa_algorithms::SearchLimits;
use sisa_bench::{
    emit, format_table, full_mode, pipeline_overlap_sweep, results_dir, PipelineOverlapCell,
};

fn main() {
    let full = full_mode();
    let limits = SearchLimits::patterns(if full { 200_000 } else { 20_000 });
    let depths = [1usize, 4, 16, 64];
    let lane_counts = [1usize, 2, 4, 8, 16];

    let g = sisa_graph::datasets::by_name("soc-fbMsg")
        .expect("registered stand-in")
        .generate(1);
    let cells = pipeline_overlap_sweep("soc-fbMsg", &g, &depths, &lane_counts, &limits);

    let mut rows = Vec::new();
    for cell in &cells {
        let stall_pct = 100.0 * cell.dep_stall_cycles as f64 / cell.work_cycles.max(1) as f64;
        rows.push(vec![
            cell.workload.clone(),
            cell.depth.to_string(),
            cell.lanes.to_string(),
            format!("{:.3}", cell.work_cycles as f64 / 1e6),
            format!("{:.3}", cell.makespan_cycles as f64 / 1e6),
            format!("{:.2}x", cell.overlap_speedup),
            format!("{:.3}", cell.dep_stall_cycles as f64 / 1e6),
            format!("{stall_pct:.1}%"),
        ]);
    }
    let table = format_table(
        &[
            "workload",
            "depth",
            "lanes",
            "work [Mcyc]",
            "makespan [Mcyc]",
            "speedup",
            "dep-stall [Mcyc]",
            "stall/work",
        ],
        &rows,
    );

    emit(
        "pipeline_overlap",
        &format!(
            "Pipeline overlap on soc-fbMsg (scoreboarded issue queue, flat SISA runtime).\n\
             Independent instructions (disjoint operand sets) dispatch to distinct virtual\n\
             vault lanes and overlap; dependent instructions stall on the set-ID scoreboard.\n\
             Depth 1 reproduces the serial cost model exactly.\n\n{table}"
        ),
    );

    // Machine-readable mirror for downstream analysis.
    let dir = results_dir();
    let json = serde_json::to_string_pretty(&cells).expect("cells serialize");
    if std::fs::create_dir_all(&dir).is_ok()
        && std::fs::write(dir.join("pipeline_overlap.json"), &json).is_ok()
    {
        println!(
            "Sweep data ({} cells) recorded in {}",
            cells.len(),
            dir.join("pipeline_overlap.json").display()
        );
    }

    // Scheduling must never change answers, and depth 1 must be serial.
    let workloads: std::collections::BTreeSet<&str> =
        cells.iter().map(|c| c.workload.as_str()).collect();
    for workload in workloads {
        let of_workload: Vec<&PipelineOverlapCell> =
            cells.iter().filter(|c| c.workload == workload).collect();
        assert!(
            of_workload.windows(2).all(|w| w[0].result == w[1].result),
            "{workload}: pipelined runs disagree on the result"
        );
        assert!(
            of_workload
                .windows(2)
                .all(|w| w[0].work_cycles == w[1].work_cycles),
            "{workload}: the issue queue must conserve work"
        );
        for cell in of_workload.iter().filter(|c| c.depth == 1) {
            assert_eq!(
                cell.makespan_cycles, cell.work_cycles,
                "{workload}: depth 1 must be the serial cost model"
            );
        }
    }
    // The headline claim: with a deep queue and real lane parallelism the
    // overlapped makespan beats the serial work total on triangle counting.
    assert!(
        cells.iter().any(|c| c.workload == "tc"
            && c.depth >= 8
            && c.lanes >= 4
            && c.makespan_cycles < c.work_cycles),
        "triangle counting must overlap at depth >= 8 with >= 4 lanes"
    );
}
