//! # sisa-bench
//!
//! The experiment harness that regenerates every table and figure of the SISA
//! paper's evaluation (§9). Each figure/table has its own binary under
//! `src/bin/`; this library holds the shared machinery: problem/scheme
//! dispatch, graph preparation, virtual-thread scheduling and result
//! formatting.
//!
//! The default workload sizes are scaled so that the full `run_all` binary
//! finishes in minutes on a laptop; pass `--full` to any binary to use the
//! paper-sized pattern budgets (slower, same trends). Results are printed to
//! stdout and mirrored under `results/`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use serde::{Deserialize, Serialize};
use sisa_algorithms::baseline::{
    jarvis_patrick_baseline, k_clique_count_baseline, k_clique_star_count_baseline,
    maximal_cliques_baseline, star_isomorphism_baseline, triangle_count_baseline, BaselineMode,
};
use sisa_algorithms::setcentric::{
    self, jarvis_patrick_clustering, k_clique_count, k_clique_star_count, maximal_cliques,
    star_pattern, subgraph_isomorphism_count, triangle_count, SimilarityMeasure,
};
use sisa_algorithms::{MiningRun, SearchLimits};
use sisa_core::{
    parallel, PartitionStrategy, RunReport, SetEngine, SetGraph, SetGraphConfig, ShardedEngine,
    SisaConfig, SisaRuntime,
};
use sisa_graph::orientation::degeneracy_order;
use sisa_graph::{CsrGraph, LabeledGraph};
use sisa_pim::{CpuConfig, EnergyModel, PimPlatform};
use std::fmt::Write as _;
use std::path::PathBuf;

/// The execution scheme being measured (one bar group of Figure 6).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Scheme {
    /// Hand-tuned CSR baseline without set algebra (`_non-set`).
    NonSet,
    /// Software set-centric baseline (`_set-based`).
    SetBased,
    /// SISA with PIM acceleration (`_sisa`).
    Sisa,
}

impl Scheme {
    /// All schemes, in the paper's plotting order.
    pub const ALL: [Scheme; 3] = [Scheme::NonSet, Scheme::SetBased, Scheme::Sisa];

    /// The label used in the paper's legends.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Scheme::NonSet => "non-set",
            Scheme::SetBased => "set-based",
            Scheme::Sisa => "sisa",
        }
    }
}

/// The graph-mining problem being measured (the panel of Figure 6).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Problem {
    /// Triangle counting (`tc`).
    Tc,
    /// k-clique counting (`kcc-k`).
    Kcc(usize),
    /// k-clique-star counting (`ksc-k`).
    Ksc(usize),
    /// Maximal clique listing (`mc`).
    Mc,
    /// Jarvis–Patrick clustering with the Jaccard coefficient (`cl-jac`).
    ClJac,
    /// Subgraph isomorphism, 4-star pattern (`si-4s`).
    Si4s,
    /// Labelled subgraph isomorphism, 4-star pattern (`si-4s-L`).
    Si4sL,
}

impl Problem {
    /// The full Figure 6 panel list.
    #[must_use]
    pub fn figure6_panels() -> Vec<Problem> {
        vec![
            Problem::ClJac,
            Problem::Kcc(4),
            Problem::Kcc(5),
            Problem::Kcc(6),
            Problem::Ksc(4),
            Problem::Ksc(5),
            Problem::Ksc(6),
            Problem::Mc,
            Problem::Si4s,
            Problem::Tc,
            Problem::Si4sL,
        ]
    }

    /// The label used in the paper's panel titles.
    #[must_use]
    pub fn label(self) -> String {
        match self {
            Problem::Tc => "tc".into(),
            Problem::Kcc(k) => format!("kcc-{k}"),
            Problem::Ksc(k) => format!("ksc-{k}"),
            Problem::Mc => "mc".into(),
            Problem::ClJac => "cl-jac".into(),
            Problem::Si4s => "si-4s".into(),
            Problem::Si4sL => "si-4s-L".into(),
        }
    }
}

/// Everything needed to measure one (problem, scheme, graph) cell.
#[derive(Clone, Debug)]
pub struct Workload {
    /// The input graph (undirected).
    pub graph: CsrGraph,
    /// Number of virtual threads to schedule onto.
    pub threads: usize,
    /// Pattern budget (the paper's simulation cutoff).
    pub limits: SearchLimits,
    /// Hybrid set-graph layout used by the SISA scheme.
    pub set_graph: SetGraphConfig,
    /// SISA runtime configuration.
    pub sisa: SisaConfig,
    /// Baseline CPU configuration.
    pub cpu: CpuConfig,
}

impl Workload {
    /// A workload over `graph` with the paper's default platform parameters.
    #[must_use]
    pub fn new(graph: CsrGraph, threads: usize, limits: SearchLimits) -> Self {
        Self {
            graph,
            threads,
            limits,
            set_graph: SetGraphConfig::default(),
            sisa: SisaConfig::default(),
            cpu: CpuConfig::default(),
        }
    }
}

/// The measured outcome of one cell.
#[derive(Clone, Debug)]
pub struct Measurement {
    /// End-to-end simulated runtime in cycles (makespan over threads).
    pub cycles: u64,
    /// Scheduling/stall report.
    pub report: RunReport,
    /// The algorithm's numeric result (count / size of the output), used to
    /// cross-check that all schemes agree.
    pub result: u64,
    /// Whether the pattern budget truncated the run.
    pub truncated: bool,
}

fn finish<T>(run: MiningRun<T>, result: u64, scheme: Scheme, w: &Workload) -> Measurement {
    let report = match scheme {
        Scheme::Sisa => parallel::schedule(&run.tasks, w.threads),
        _ => parallel::schedule_cpu(&run.tasks, w.threads, &w.cpu),
    };
    Measurement {
        cycles: report.makespan_cycles,
        report,
        result,
        truncated: run.truncated,
    }
}

/// Runs one (problem, scheme) cell on a workload and returns its measurement.
#[must_use]
pub fn run_cell(problem: Problem, scheme: Scheme, w: &Workload) -> Measurement {
    let g = &w.graph;
    let ordering = degeneracy_order(g);
    let oriented_csr = ordering.orient(g);
    let labeled = LabeledGraph::with_random_vertex_labels(g.clone(), 3, 0xC0FFEE).graph;

    match scheme {
        Scheme::Sisa => {
            let mut rt = SisaRuntime::new(w.sisa);
            match problem {
                Problem::Tc | Problem::Kcc(_) | Problem::Ksc(_) => {
                    let oriented = SetGraph::load(&mut rt, &oriented_csr, &w.set_graph);
                    rt.reset_stats();
                    match problem {
                        Problem::Tc => {
                            let run = triangle_count(&mut rt, &oriented, &w.limits);
                            let res = run.result;
                            finish(run, res, scheme, w)
                        }
                        Problem::Kcc(k) => {
                            let run = k_clique_count(&mut rt, &oriented, k, &w.limits);
                            let res = run.result;
                            finish(run, res, scheme, w)
                        }
                        Problem::Ksc(k) => {
                            let run = k_clique_star_count(&mut rt, &oriented, k, &w.limits);
                            let res = run.result;
                            finish(run, res, scheme, w)
                        }
                        _ => unreachable!(),
                    }
                }
                Problem::Mc => {
                    let sg = SetGraph::load(&mut rt, g, &w.set_graph);
                    rt.reset_stats();
                    let run = maximal_cliques(&mut rt, &sg, &ordering, &w.limits, false);
                    let res = run.result.count;
                    finish(run, res, scheme, w)
                }
                Problem::ClJac => {
                    let sg = SetGraph::load(&mut rt, g, &w.set_graph);
                    rt.reset_stats();
                    let run = jarvis_patrick_clustering(
                        &mut rt,
                        &sg,
                        SimilarityMeasure::Jaccard,
                        0.2,
                        &w.limits,
                    );
                    let res = run.result.len() as u64;
                    finish(run, res, scheme, w)
                }
                Problem::Si4s => {
                    let sg = SetGraph::load(&mut rt, g, &w.set_graph);
                    rt.reset_stats();
                    let run = subgraph_isomorphism_count(&mut rt, &sg, &star_pattern(4), &w.limits);
                    let res = run.result;
                    finish(run, res, scheme, w)
                }
                Problem::Si4sL => {
                    let sg = SetGraph::load(&mut rt, &labeled, &w.set_graph);
                    rt.reset_stats();
                    let pattern = star_pattern(4).with_labels(vec![0, 1, 2, 1, 0]);
                    let run = subgraph_isomorphism_count(&mut rt, &sg, &pattern, &w.limits);
                    let res = run.result;
                    finish(run, res, scheme, w)
                }
            }
        }
        Scheme::NonSet | Scheme::SetBased => {
            let mode = if scheme == Scheme::NonSet {
                BaselineMode::NonSet
            } else {
                BaselineMode::SetBased
            };
            match problem {
                Problem::Tc => {
                    let run =
                        triangle_count_baseline(&oriented_csr, mode, &w.cpu, w.threads, &w.limits);
                    let res = run.result;
                    finish(run, res, scheme, w)
                }
                Problem::Kcc(k) => {
                    let run = k_clique_count_baseline(
                        &oriented_csr,
                        k,
                        mode,
                        &w.cpu,
                        w.threads,
                        &w.limits,
                    );
                    let res = run.result;
                    finish(run, res, scheme, w)
                }
                Problem::Ksc(k) => {
                    let run = k_clique_star_count_baseline(
                        &oriented_csr,
                        k,
                        mode,
                        &w.cpu,
                        w.threads,
                        &w.limits,
                    );
                    let res = run.result;
                    finish(run, res, scheme, w)
                }
                Problem::Mc => {
                    let run = maximal_cliques_baseline(
                        g, &ordering, mode, &w.cpu, w.threads, &w.limits, false,
                    );
                    let res = run.result.count;
                    finish(run, res, scheme, w)
                }
                Problem::ClJac => {
                    let run = jarvis_patrick_baseline(
                        g,
                        SimilarityMeasure::Jaccard,
                        0.2,
                        mode,
                        &w.cpu,
                        w.threads,
                        &w.limits,
                    );
                    let res = run.result.len() as u64;
                    finish(run, res, scheme, w)
                }
                Problem::Si4s => {
                    let run = star_isomorphism_baseline(
                        g,
                        &star_pattern(4),
                        mode,
                        &w.cpu,
                        w.threads,
                        &w.limits,
                    );
                    let res = run.result;
                    finish(run, res, scheme, w)
                }
                Problem::Si4sL => {
                    let pattern = star_pattern(4).with_labels(vec![0, 1, 2, 1, 0]);
                    let run = star_isomorphism_baseline(
                        &labeled, &pattern, mode, &w.cpu, w.threads, &w.limits,
                    );
                    let res = run.result;
                    finish(run, res, scheme, w)
                }
            }
        }
    }
}

/// Runs an approximate-degeneracy + BFS warm-up exercising the remaining
/// set-centric formulations; used by `run_all` to cover the full algorithm
/// inventory without a dedicated figure.
pub fn run_auxiliary_formulations(g: &CsrGraph) -> (usize, usize) {
    let mut rt = SisaRuntime::new(SisaConfig::default());
    let sg = SetGraph::load(&mut rt, g, &SetGraphConfig::default());
    let deg = setcentric::approximate_degeneracy(&mut rt, &sg, 0.5, &SearchLimits::unlimited());
    let bfs = setcentric::bfs(&mut rt, &sg, 0, setcentric::BfsMode::DirectionOptimizing);
    (
        deg.result.rounds,
        bfs.result.iter().filter(|p| p.is_some()).count(),
    )
}

/// The per-opcode dynamic instruction mix of a traced run, extracted from the
/// captured [`sisa_isa::SisaProgram`] (emitted as `results/instruction_mix.json`
/// by `run_all`). The run executes on a pipelined issue queue, so alongside
/// the dynamic counts the mix reports where the schedule's dependence stalls
/// land — the data the instruction-mix-driven optimisation work needs to pick
/// which opcode's cost model or scheduling to refine next.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct InstructionMix {
    /// The traced workloads.
    pub workload: String,
    /// The input graph's registered name.
    pub graph: String,
    /// Total dynamic SISA instruction count of the captured program.
    pub total_instructions: u64,
    /// Whether the bounded trace captured the whole run.
    pub trace_complete: bool,
    /// Issue-queue depth the run executed with.
    pub issue_depth: usize,
    /// Virtual vault lane count the run executed with.
    pub issue_lanes: usize,
    /// Serial work total of the run, in cycles.
    pub serial_cycles: u64,
    /// Completion time of the overlapped schedule, in cycles.
    pub makespan_cycles: u64,
    /// Total cycles instructions stalled on operand hazards (RAW/WAW/WAR on
    /// set IDs).
    pub dep_stall_cycles: u64,
    /// Dynamic count per assembly mnemonic.
    pub mix: std::collections::BTreeMap<String, u64>,
    /// Dependence-stall cycles per assembly mnemonic (the instruction that
    /// stalled). Mnemonics that never stalled are omitted.
    pub dep_stalls: std::collections::BTreeMap<String, u64>,
    /// Host kernels the size-ratio dispatch policy selected while executing
    /// the binary set-op opcodes of this trace (`merge` / `gallop` /
    /// `bitmap` tallies from [`sisa_sets::repr::kernel_selection_counts`]).
    pub host_kernels: std::collections::BTreeMap<String, u64>,
    /// Analysis notes: what the stall report implied and what acting on it
    /// measured — currently the kcc-4 overlap recovered by set-ID renaming
    /// plus the out-of-order window (the `rename_ooo` figure), quantified on
    /// the same graph this mix was captured from.
    pub notes: String,
}

impl InstructionMix {
    /// Pretty-printed JSON for this mix.
    #[must_use]
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("instruction mix serializes")
    }
}

/// The issue-queue depth `capture_instruction_mix` runs with: deep enough
/// that independent instructions genuinely overlap and the per-opcode stall
/// report is non-trivial (a depth-1 run never exposes a hazard).
pub const INSTRUCTION_MIX_ISSUE_DEPTH: usize = 16;

/// Measures how far set-ID renaming plus an out-of-order window lift a
/// workload's overlap above the in-order pipeline on the same graph, at the
/// given window size (the quantity the instruction-mix notes record: the
/// stall report names the false dependences, this is what removing them
/// recovers). Returns `(in_order_speedup, renamed_speedup)`.
#[must_use]
pub fn measure_rename_gain(
    g: &CsrGraph,
    problem: Problem,
    window: usize,
    limits: &SearchLimits,
) -> (f64, f64) {
    let run = |config: SisaConfig| {
        let mut rt = SisaRuntime::new(config);
        let (oriented, _) =
            setcentric::orient_by_degeneracy(&mut rt, g, &SetGraphConfig::default());
        rt.reset_stats();
        match problem {
            Problem::Tc => {
                let _ = setcentric::triangle_count(&mut rt, &oriented, limits);
            }
            Problem::Kcc(k) => {
                let _ = setcentric::k_clique_count(&mut rt, &oriented, k, limits);
            }
            _ => unreachable!("rename-gain probe covers tc and kcc only"),
        }
        rt.stats().overlap_speedup()
    };
    let lanes = SisaConfig::default().resolved_issue_lanes();
    let in_order = run(SisaConfig::with_pipeline(window, lanes));
    let renamed = run(SisaConfig::renamed(window));
    (in_order, renamed)
}

/// Traces a triangle-count + BFS run on `g` through the SISA runtime (on a
/// pipelined issue queue, so hazards surface) and summarises the captured
/// program's per-opcode instruction mix plus where the schedule's dependence
/// stalls landed.
#[must_use]
pub fn capture_instruction_mix(name: &str, g: &CsrGraph) -> InstructionMix {
    let config = SisaConfig::pipelined(INSTRUCTION_MIX_ISSUE_DEPTH);
    let mut rt = SisaRuntime::new(config);
    rt.enable_default_trace();
    sisa_sets::repr::reset_kernel_selection_counts();
    let (oriented, _) = setcentric::orient_by_degeneracy(&mut rt, g, &SetGraphConfig::default());
    let _ = setcentric::triangle_count(&mut rt, &oriented, &SearchLimits::patterns(50_000));
    let sg = SetGraph::load(&mut rt, g, &SetGraphConfig::default());
    let _ = setcentric::bfs(&mut rt, &sg, 0, setcentric::BfsMode::DirectionOptimizing);
    let selections = sisa_sets::repr::kernel_selection_counts();
    let trace = rt.take_trace().expect("trace was enabled");
    let program = trace.program();
    let stats = rt.stats();
    // The stall report below names `sisa.del`/`sisa.int` as the stall budget:
    // false WAR/WAW dependences over recycled temporaries. Quantify what
    // breaking them recovers, on this graph, for the workload the report
    // indicted (k-clique counting).
    let (kcc_in_order, kcc_renamed) = measure_rename_gain(
        g,
        Problem::Kcc(4),
        RENAME_OOO_HEADLINE_WINDOW,
        &SearchLimits::patterns(20_000),
    );
    let notes = format!(
        "dep_stalls indicts sisa.del/sisa.int: materialise->recurse->delete chains \
         serialise on WAR/WAW hazards over recycled set IDs. Measured on this graph: \
         kcc-4 overlap is {kcc_in_order:.2}x in order and {kcc_renamed:.2}x with set-ID \
         renaming + an {RENAME_OOO_HEADLINE_WINDOW}-entry out-of-order window \
         (SisaConfig::renamed; full sweep in rename_ooo.json). Host kernel dispatch \
         across this trace's binary set-op opcodes (sisa.int/sisa.uni/sisa.dif and \
         their counting forms): {} merge, {} galloping, {} bitmap selections \
         (size-ratio policy, sisa_sets::repr; wall-clock effect in BENCH_kernels.json).",
        selections.merge, selections.gallop, selections.bitmap
    );
    InstructionMix {
        workload: "tc+bfs".into(),
        graph: name.into(),
        total_instructions: program.len() as u64,
        trace_complete: trace.is_complete(),
        issue_depth: config.issue_depth,
        issue_lanes: config.resolved_issue_lanes(),
        serial_cycles: stats.total_cycles(),
        makespan_cycles: stats.makespan_cycles,
        dep_stall_cycles: stats.dep_stall_cycles,
        mix: program
            .mnemonic_histogram()
            .into_iter()
            .map(|(mnemonic, count)| (mnemonic.to_string(), count as u64))
            .collect(),
        dep_stalls: stats.dep_stall_by_opcode.iter().fold(
            std::collections::BTreeMap::new(),
            |mut acc, (&opcode, &cycles)| {
                *acc.entry(opcode.mnemonic().to_string()).or_insert(0) += cycles;
                acc
            },
        ),
        host_kernels: [
            ("merge".to_string(), selections.merge),
            ("gallop".to_string(), selections.gallop),
            ("bitmap".to_string(), selections.bitmap),
        ]
        .into_iter()
        .collect(),
        notes,
    }
}

// ---------------------------------------------------------------------------
// Pipeline overlap sweep (the `pipeline_overlap` figure)
// ---------------------------------------------------------------------------

/// One measured cell of the pipeline-overlap sweep: a workload executed on a
/// [`SisaRuntime`] whose scoreboarded issue queue runs at a given depth and
/// virtual-lane count (emitted as `results/pipeline_overlap.json` by the
/// `pipeline_overlap` binary).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct PipelineOverlapCell {
    /// The workload label (`tc`, `kcc-4`).
    pub workload: String,
    /// The input graph's registered name.
    pub graph: String,
    /// Issue-queue depth (1 = the serial cost model).
    pub depth: usize,
    /// Number of virtual vault lanes.
    pub lanes: usize,
    /// The algorithm's numeric result (must agree across all cells of a
    /// workload — scheduling never changes answers).
    pub result: u64,
    /// Serial work total in cycles; identical across all cells of a workload
    /// (the issue queue prices time, not work).
    pub work_cycles: u64,
    /// Completion time of the overlapped schedule.
    pub makespan_cycles: u64,
    /// Cycles instructions stalled on operand hazards.
    pub dep_stall_cycles: u64,
    /// `work_cycles / makespan_cycles` — the overlap speedup.
    pub overlap_speedup: f64,
}

/// The workloads the pipeline-overlap sweep measures.
const PIPELINE_OVERLAP_WORKLOADS: [Problem; 2] = [Problem::Tc, Problem::Kcc(4)];

/// Runs the pipeline-overlap sweep on one graph: every workload × issue-queue
/// depth × lane count on a flat [`SisaRuntime`]. Graph loading is excluded
/// from the measured cycles (statistics — and the overlap timeline — are
/// reset after the load, matching the flat harnesses).
#[must_use]
pub fn pipeline_overlap_sweep(
    name: &str,
    g: &CsrGraph,
    depths: &[usize],
    lane_counts: &[usize],
    limits: &SearchLimits,
) -> Vec<PipelineOverlapCell> {
    let mut cells = Vec::new();
    for problem in PIPELINE_OVERLAP_WORKLOADS {
        for &depth in depths {
            // A 1-deep queue is provably serial regardless of lane count
            // (pinned by the engine property tests), so the depth-1 row is
            // measured once and replicated across lane counts.
            let mut depth_one: Option<PipelineOverlapCell> = None;
            for &lanes in lane_counts {
                if depth == 1 {
                    if let Some(template) = &depth_one {
                        cells.push(PipelineOverlapCell {
                            lanes,
                            ..template.clone()
                        });
                        continue;
                    }
                }
                let mut rt = SisaRuntime::new(SisaConfig::with_pipeline(depth, lanes));
                let (oriented, _) =
                    setcentric::orient_by_degeneracy(&mut rt, g, &SetGraphConfig::default());
                rt.reset_stats();
                let result = match problem {
                    Problem::Tc => setcentric::triangle_count(&mut rt, &oriented, limits).result,
                    Problem::Kcc(k) => {
                        setcentric::k_clique_count(&mut rt, &oriented, k, limits).result
                    }
                    _ => unreachable!("pipeline-overlap sweep covers tc and kcc only"),
                };
                let stats = rt.stats();
                let cell = PipelineOverlapCell {
                    workload: problem.label(),
                    graph: name.to_string(),
                    depth,
                    lanes,
                    result,
                    work_cycles: stats.total_cycles(),
                    makespan_cycles: stats.makespan_cycles,
                    dep_stall_cycles: stats.dep_stall_cycles,
                    overlap_speedup: stats.overlap_speedup(),
                };
                if depth == 1 {
                    depth_one = Some(cell.clone());
                }
                cells.push(cell);
            }
        }
    }
    cells
}

// ---------------------------------------------------------------------------
// Rename / out-of-order sweep (the `rename_ooo` figure)
// ---------------------------------------------------------------------------

/// The reorder-window size the headline rename/OoO claims are quoted at.
pub const RENAME_OOO_HEADLINE_WINDOW: usize = 8;

/// One measured cell of the rename/out-of-order sweep: a workload executed
/// on a [`SisaRuntime`] whose issue pipeline runs with the given reorder
/// window and physical-tag pool (emitted as `results/rename_ooo.json` by the
/// `rename_ooo` binary). `tags == 0` is the rename-off reference row: the
/// plain in-order pipeline at `window` × `lanes`, identical to the
/// `pipeline_overlap` cell of the same depth.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct RenameOooCell {
    /// The workload label (`tc`, `kcc-4`).
    pub workload: String,
    /// The input graph's registered name.
    pub graph: String,
    /// Reorder-window capacity (the in-order issue depth when `tags == 0`).
    pub window: usize,
    /// Physical-tag pool size; 0 = renaming off (the in-order reference).
    pub tags: usize,
    /// Number of virtual vault lanes.
    pub lanes: usize,
    /// The algorithm's numeric result (must agree across all cells of a
    /// workload — scheduling never changes answers).
    pub result: u64,
    /// Serial work total in cycles; identical across all cells of a workload
    /// (the pipeline prices time, not work).
    pub work_cycles: u64,
    /// Completion time of the scheduled (in-order or renamed out-of-order)
    /// timeline.
    pub makespan_cycles: u64,
    /// Dependence-stall cycles: the full RAW/WAW/WAR cost on a rename-off
    /// row, the true-RAW component of the same-depth in-order reference on a
    /// renamed row.
    pub dep_stall_cycles: u64,
    /// False WAR/WAW stall cycles renaming removed from the in-order
    /// reference (0 on rename-off rows). `dep_stall_cycles +
    /// false_dep_stalls_removed` on a renamed row equals `dep_stall_cycles`
    /// of the rename-off row at the same window — exactly.
    pub false_dep_stalls_removed: u64,
    /// Instructions that bypassed a stalled program-earlier instruction.
    pub bypassed_instructions: u64,
    /// `work_cycles / makespan_cycles` — the overlap speedup.
    pub overlap_speedup: f64,
}

/// The workloads the rename/out-of-order sweep measures.
const RENAME_OOO_WORKLOADS: [Problem; 2] = [Problem::Tc, Problem::Kcc(4)];

/// Runs the rename/out-of-order sweep on one graph: every workload ×
/// reorder-window size × tag-pool size on a flat [`SisaRuntime`], at a fixed
/// lane count. `tags == 0` rows run the plain in-order pipeline (depth =
/// window), so they reproduce the `pipeline_overlap` figure's cells of the
/// same geometry; renamed rows set `issue_depth = window` so their stall
/// decomposition references the equally-sized in-order schedule. Graph
/// loading is excluded from the measured cycles.
#[must_use]
pub fn rename_ooo_sweep(
    name: &str,
    g: &CsrGraph,
    windows: &[usize],
    tag_counts: &[usize],
    lanes: usize,
    limits: &SearchLimits,
) -> Vec<RenameOooCell> {
    let mut cells = Vec::new();
    for problem in RENAME_OOO_WORKLOADS {
        for &window in windows {
            for &tags in tag_counts {
                let config = if tags == 0 {
                    SisaConfig::with_pipeline(window, lanes)
                } else {
                    SisaConfig::with_rename_ooo(window, lanes, window, tags)
                };
                let mut rt = SisaRuntime::new(config);
                let (oriented, _) =
                    setcentric::orient_by_degeneracy(&mut rt, g, &SetGraphConfig::default());
                rt.reset_stats();
                let result = match problem {
                    Problem::Tc => setcentric::triangle_count(&mut rt, &oriented, limits).result,
                    Problem::Kcc(k) => {
                        setcentric::k_clique_count(&mut rt, &oriented, k, limits).result
                    }
                    _ => unreachable!("rename-ooo sweep covers tc and kcc only"),
                };
                let stats = rt.stats();
                cells.push(RenameOooCell {
                    workload: problem.label(),
                    graph: name.to_string(),
                    window,
                    tags,
                    lanes,
                    result,
                    work_cycles: stats.total_cycles(),
                    makespan_cycles: stats.makespan_cycles,
                    dep_stall_cycles: stats.dep_stall_cycles,
                    false_dep_stalls_removed: stats.false_dep_stalls_removed,
                    bypassed_instructions: stats.bypassed_instructions,
                    overlap_speedup: stats.overlap_speedup(),
                });
            }
        }
    }
    cells
}

// ---------------------------------------------------------------------------
// Lane-timeline capture (the `trace_timeline` figure)
// ---------------------------------------------------------------------------

/// Schema version of `results/trace_timeline.json`; bump when a field is
/// added, removed or re-interpreted so downstream tooling can dispatch.
pub const TRACE_TIMELINE_SCHEMA_VERSION: u32 = 1;

/// One captured workload of the `trace_timeline` figure: a kernel run on a
/// flat [`SisaRuntime`] with a
/// [`sisa_core::telemetry::ChromeTraceCollector`] attached at the
/// load/measure boundary, so the recorded lane timeline covers exactly the
/// measured kernel.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct TimelineSpan {
    /// The workload label (`tc`, `kcc-4`).
    pub workload: String,
    /// The pattern count the traced run produced (tracing never changes
    /// answers).
    pub result: u64,
    /// `ExecStats::makespan_cycles` of the traced run.
    pub makespan_cycles: u64,
    /// The maximum retire cycle over every recorded instruction event —
    /// must equal `makespan_cycles` exactly (the figure's headline claim).
    pub recorded_makespan: u64,
    /// Instruction events recorded on this workload's track group.
    pub instruction_events: usize,
    /// Distinct vault lanes that appear among the recorded events.
    pub lanes_observed: usize,
}

/// The sharded capture of the `trace_timeline` figure: the same collector
/// attached to a [`ShardedEngine`], whose timeline adds one track per
/// `(src, dst)` shard link carrying every priced transfer.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct TimelineLinks {
    /// Shard count of the traced engine.
    pub shards: usize,
    /// The traced workload's label.
    pub workload: String,
    /// The pattern count the sharded traced run produced.
    pub result: u64,
    /// Aggregate `ExecStats::makespan_cycles` (per-shard makespans merged as
    /// a max).
    pub makespan_cycles: u64,
    /// Maximum retire cycle over every shard's recorded events — must equal
    /// `makespan_cycles` exactly.
    pub recorded_makespan: u64,
    /// Link-transfer events recorded.
    pub transfer_events: usize,
    /// Total bytes across the recorded transfer events.
    pub transfer_bytes: u64,
    /// `ExecStats::link_bytes` of the traced run — must equal
    /// `transfer_bytes` (every priced crossing is on the timeline).
    pub link_bytes: u64,
}

/// The `results/trace_timeline.json` document the `trace_timeline` binary
/// emits next to its Perfetto-loadable `.trace.json` files.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct TraceTimeline {
    /// [`TRACE_TIMELINE_SCHEMA_VERSION`] at emission time.
    pub schema_version: u32,
    /// The input graph's registered name.
    pub graph: String,
    /// Number of virtual vault lanes of every traced engine.
    pub lanes: usize,
    /// Reorder-window capacity of the renamed out-of-order configuration.
    pub window: usize,
    /// Physical-tag pool size of the renamed configuration.
    pub tags: usize,
    /// Flat-runtime captures, one per workload.
    pub spans: Vec<TimelineSpan>,
    /// The sharded capture with link tracks.
    pub links: TimelineLinks,
    /// Chrome trace-event files written next to this document, relative to
    /// the results directory.
    pub trace_files: Vec<String>,
}

impl TraceTimeline {
    /// Pretty-printed JSON for this document.
    #[must_use]
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("timeline document serializes")
    }

    /// Parses a `trace_timeline.json` document.
    ///
    /// # Errors
    ///
    /// Returns the parse error's message when `text` is not a valid document.
    pub fn from_json(text: &str) -> Result<Self, String> {
        serde_json::from_str(text).map_err(|e| format!("{e:?}"))
    }

    /// Checks the document's internal invariants (the schema validation CI
    /// runs on the emitted artifact). The makespan-fidelity identity —
    /// recorded event span ≡ `makespan_cycles` — is re-checked here, not
    /// only at capture time.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated invariant.
    pub fn validate(&self) -> Result<(), String> {
        if self.schema_version != TRACE_TIMELINE_SCHEMA_VERSION {
            return Err(format!(
                "schema_version {} != supported {TRACE_TIMELINE_SCHEMA_VERSION}",
                self.schema_version
            ));
        }
        if self.lanes == 0 || self.window == 0 || self.tags == 0 {
            return Err("traced configuration is degenerate".into());
        }
        if self.spans.is_empty() {
            return Err("no workload spans were captured".into());
        }
        for span in &self.spans {
            if span.makespan_cycles == 0 || span.instruction_events == 0 {
                return Err(format!("{}: empty capture", span.workload));
            }
            if span.recorded_makespan != span.makespan_cycles {
                return Err(format!(
                    "{}: recorded span {} != makespan {}",
                    span.workload, span.recorded_makespan, span.makespan_cycles
                ));
            }
            if span.lanes_observed == 0 || span.lanes_observed > self.lanes {
                return Err(format!(
                    "{}: {} lanes observed with {} configured",
                    span.workload, span.lanes_observed, self.lanes
                ));
            }
        }
        let links = &self.links;
        if links.shards < 2 {
            return Err("the link capture needs at least 2 shards".into());
        }
        if links.recorded_makespan != links.makespan_cycles {
            return Err(format!(
                "sharded: recorded span {} != makespan {}",
                links.recorded_makespan, links.makespan_cycles
            ));
        }
        if links.transfer_bytes != links.link_bytes {
            return Err(format!(
                "sharded: {} traced transfer bytes != {} priced link bytes",
                links.transfer_bytes, links.link_bytes
            ));
        }
        if links.transfer_events == 0 {
            return Err("sharded: no link transfers were recorded".into());
        }
        if let Some(span) = self.spans.iter().find(|s| s.workload == links.workload) {
            if span.result != links.result {
                return Err(format!(
                    "{}: flat result {} != sharded result {}",
                    links.workload, span.result, links.result
                ));
            }
        }
        if self.trace_files.is_empty() {
            return Err("no Chrome trace files were recorded".into());
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Multi-cube sharding sweep (the `multi_cube` figure)
// ---------------------------------------------------------------------------

/// One measured cell of the multi-cube sweep: a workload executed on a
/// [`ShardedEngine`] with a given shard count and partition strategy
/// (emitted as `results/multi_cube.json` by the `multi_cube` binary).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct MultiCubeCell {
    /// The workload label (`tc`, `kcc-4`).
    pub workload: String,
    /// The input graph's registered name.
    pub graph: String,
    /// The partition strategy label.
    pub strategy: String,
    /// Number of shards (vault groups / cubes).
    pub shards: usize,
    /// The algorithm's numeric result (must agree across all cells of a
    /// workload).
    pub result: u64,
    /// Total simulated cycles across all shards, links included (the serial
    /// view).
    pub total_cycles: u64,
    /// The busiest shard's cycles (the multi-cube makespan).
    pub makespan_cycles: u64,
    /// Shard load imbalance (1.0 = perfectly balanced).
    pub imbalance: f64,
    /// Binary operations whose operands lived on different shards.
    pub cross_shard_ops: u64,
    /// Bytes moved over vault/cube links.
    pub cross_shard_bytes: u64,
    /// Cycles spent on link transfers.
    pub link_cycles: u64,
}

/// The workloads the multi-cube sweep measures.
const MULTI_CUBE_WORKLOADS: [Problem; 2] = [Problem::Tc, Problem::Kcc(4)];

/// Runs the multi-cube sweep on one graph: every workload × partition
/// strategy × shard count, on a [`ShardedEngine`]`<`[`SisaRuntime`]`>`.
/// Graph loading is excluded from the measured cycles (statistics are reset
/// after the load, matching the flat harnesses).
#[must_use]
pub fn multi_cube_sweep(
    name: &str,
    g: &CsrGraph,
    shard_counts: &[usize],
    limits: &SearchLimits,
) -> Vec<MultiCubeCell> {
    let mut cells = Vec::new();
    for problem in MULTI_CUBE_WORKLOADS {
        for strategy in PartitionStrategy::ALL {
            for &shards in shard_counts {
                let mut engine = ShardedEngine::sisa(shards, strategy, SisaConfig::default());
                let (oriented, _) =
                    setcentric::orient_by_degeneracy(&mut engine, g, &SetGraphConfig::default());
                engine.reset_stats();
                let result = match problem {
                    Problem::Tc => {
                        setcentric::triangle_count(&mut engine, &oriented, limits).result
                    }
                    Problem::Kcc(k) => {
                        setcentric::k_clique_count(&mut engine, &oriented, k, limits).result
                    }
                    _ => unreachable!("multi-cube sweep covers tc and kcc only"),
                };
                let report = engine.report();
                cells.push(MultiCubeCell {
                    workload: problem.label(),
                    graph: name.to_string(),
                    strategy: strategy.label().to_string(),
                    shards,
                    result,
                    total_cycles: engine.stats().total_cycles(),
                    makespan_cycles: report.makespan_cycles(),
                    imbalance: report.imbalance(),
                    cross_shard_ops: report.traffic.cross_ops,
                    cross_shard_bytes: report.traffic.bytes,
                    link_cycles: report.traffic.cycles,
                });
            }
        }
    }
    cells
}

// ---------------------------------------------------------------------------
// Host-kernel wall-clock benchmark (`BENCH_kernels.json`)
// ---------------------------------------------------------------------------

/// Schema version of `results/BENCH_kernels.json`; bump when a field is
/// added, removed or re-interpreted so downstream tooling can dispatch.
pub const BENCH_KERNELS_SCHEMA_VERSION: u32 = 1;

/// Provenance of the machine a wall-clock benchmark ran on. Simulated cycle
/// counts are platform-independent; nanosecond figures are only comparable
/// against runs with matching host provenance.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct HostPlatform {
    /// `std::env::consts::OS` of the benchmarking host.
    pub os: String,
    /// `std::env::consts::ARCH` of the benchmarking host.
    pub arch: String,
    /// Hardware threads reported by `std::thread::available_parallelism`.
    pub available_parallelism: usize,
    /// Whether the binary was compiled with debug assertions (a `true` here
    /// means the nanosecond figures are not release-grade).
    pub debug_assertions: bool,
    /// The workspace version the benchmark binary was built from.
    pub crate_version: String,
}

impl HostPlatform {
    /// Captures the current host's provenance.
    #[must_use]
    pub fn capture() -> Self {
        Self {
            os: std::env::consts::OS.to_string(),
            arch: std::env::consts::ARCH.to_string(),
            available_parallelism: std::thread::available_parallelism()
                .map_or(1, std::num::NonZeroUsize::get),
            debug_assertions: cfg!(debug_assertions),
            crate_version: env!("CARGO_PKG_VERSION").to_string(),
        }
    }
}

/// One measured micro-kernel cell of `bench_kernels`: a set operation on a
/// fixed-seed operand shape, timed under both kernel policies
/// ([`sisa_sets::KernelPolicy::Reference`] replays the seed's scalar host
/// kernels, `Optimized` is the dispatched word-parallel / galloping / arena
/// path).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct KernelCell {
    /// The set operation (`intersect`, `union`, `difference`,
    /// `intersect_count`).
    pub op: String,
    /// The operand shape label (`sorted-similar`, `sorted-skewed-64to1`,
    /// `dense-dense`, `sorted-dense`).
    pub shape: String,
    /// Elements in the left operand.
    pub len_a: usize,
    /// Elements in the right operand.
    pub len_b: usize,
    /// Timing samples taken per policy (each sample is the mean of an inner
    /// iteration loop).
    pub samples: usize,
    /// Median per-operation wall clock of the reference (seed) kernels, ns.
    pub reference_p50_ns: u64,
    /// 95th-percentile per-operation wall clock of the reference kernels, ns.
    pub reference_p95_ns: u64,
    /// Median per-operation wall clock of the optimized kernels, ns.
    pub optimized_p50_ns: u64,
    /// 95th-percentile per-operation wall clock of the optimized kernels, ns.
    pub optimized_p95_ns: u64,
    /// `reference_p50_ns / optimized_p50_ns`.
    pub speedup_p50: f64,
}

/// The headline end-to-end scenario of `bench_kernels`: a full triangle-count
/// batch on a sharded engine, measured at three rungs of the host execution
/// stack. **Baseline** is the seed's only path — a sequential per-op loop
/// through the priced engine with the scalar reference kernels. **Optimized**
/// is the raw host execution layer (`ShardedEngine::host_count_batch`):
/// threaded, word-parallel/galloping/arena-backed, computing the same answers
/// directly on the shard-resident representations without advancing the
/// simulated machine. **Priced batch** is `ShardedEngine::execute` — the
/// fully priced batched path, for runs that need simulated statistics.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct HeadlineBench {
    /// The workload label (`tc`).
    pub workload: String,
    /// The input graph's registered name.
    pub graph: String,
    /// Shard count of the sharded engine.
    pub shards: usize,
    /// Host worker threads the optimized paths resolved to
    /// ([`SisaConfig::host_threads`] = 0 → available parallelism).
    pub host_threads: usize,
    /// Operations in the batch (one `IntersectCount` per oriented edge).
    pub batch_ops: usize,
    /// The mined result (triangle count); identical for all paths by
    /// construction, asserted by the binary.
    pub result: u64,
    /// Timing samples taken per path.
    pub samples: usize,
    /// Median wall clock of the sequential scalar baseline (per-op priced
    /// loop, seed reference kernels), ns.
    pub baseline_p50_ns: u64,
    /// 95th-percentile wall clock of the baseline loop, ns.
    pub baseline_p95_ns: u64,
    /// Median wall clock of the optimized raw host layer
    /// (`host_count_batch`, optimized kernels, worker threads), ns.
    pub optimized_p50_ns: u64,
    /// 95th-percentile wall clock of the optimized raw host layer, ns.
    pub optimized_p95_ns: u64,
    /// Median wall clock of the priced batched path
    /// ([`ShardedEngine::execute`], optimized kernels, worker threads), ns.
    pub priced_batch_p50_ns: u64,
    /// 95th-percentile wall clock of the priced batched path, ns.
    pub priced_batch_p95_ns: u64,
    /// `baseline_p50_ns / optimized_p50_ns` — the headline speedup.
    pub speedup_p50: f64,
    /// Simulated serial work total of one batch, in cycles (platform-level
    /// cost — identical for every host path; host kernels never touch it).
    pub simulated_total_cycles: u64,
    /// Simulated busiest-shard makespan of one batch, in cycles.
    pub simulated_makespan_cycles: u64,
    /// Simulated energy of one batch, in nanojoules.
    pub simulated_energy_nj: f64,
}

/// The full `results/BENCH_kernels.json` document emitted by the
/// `bench_kernels` binary: fixed-seed micro-kernel timings, the headline
/// sharded triangle-count scenario, host-kernel dispatch tallies and
/// platform provenance.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct BenchKernels {
    /// [`BENCH_KERNELS_SCHEMA_VERSION`] at emission time.
    pub schema_version: u32,
    /// `smoke` (CI-sized sampling) or `full`.
    pub mode: String,
    /// The RNG seed every operand draw and graph generation used.
    pub seed: u64,
    /// Host machine provenance for the nanosecond figures.
    pub host: HostPlatform,
    /// The simulated PIM platform the cycle figures were produced with.
    pub pim: PimPlatform,
    /// Host kernels the dispatch policy chose during the headline batch
    /// (`merge` / `gallop` / `bitmap` tallies).
    pub host_kernels: std::collections::BTreeMap<String, u64>,
    /// The micro-kernel matrix (op × operand shape).
    pub kernels: Vec<KernelCell>,
    /// The end-to-end headline scenario.
    pub headline: HeadlineBench,
}

impl BenchKernels {
    /// Pretty-printed JSON for this document.
    #[must_use]
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("bench document serializes")
    }

    /// Parses a `BENCH_kernels.json` document.
    ///
    /// # Errors
    ///
    /// Returns the parse error's message when `text` is not a valid document.
    pub fn from_json(text: &str) -> Result<Self, String> {
        serde_json::from_str(text).map_err(|e| format!("{e:?}"))
    }

    /// Checks the document's internal invariants (the schema validation CI
    /// runs on the emitted artifact).
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated invariant.
    pub fn validate(&self) -> Result<(), String> {
        if self.schema_version != BENCH_KERNELS_SCHEMA_VERSION {
            return Err(format!(
                "schema_version {} != supported {BENCH_KERNELS_SCHEMA_VERSION}",
                self.schema_version
            ));
        }
        if self.mode != "smoke" && self.mode != "full" {
            return Err(format!("mode {:?} is not smoke|full", self.mode));
        }
        if self.kernels.is_empty() {
            return Err("kernel matrix is empty".into());
        }
        for cell in &self.kernels {
            if cell.samples == 0 {
                return Err(format!("{}/{}: zero samples", cell.op, cell.shape));
            }
            if cell.reference_p50_ns > cell.reference_p95_ns
                || cell.optimized_p50_ns > cell.optimized_p95_ns
            {
                return Err(format!("{}/{}: p50 exceeds p95", cell.op, cell.shape));
            }
            if !(cell.speedup_p50.is_finite() && cell.speedup_p50 > 0.0) {
                return Err(format!("{}/{}: bad speedup", cell.op, cell.shape));
            }
        }
        let h = &self.headline;
        if h.shards == 0 || h.batch_ops == 0 || h.samples == 0 {
            return Err("headline is degenerate".into());
        }
        if h.baseline_p50_ns > h.baseline_p95_ns
            || h.optimized_p50_ns > h.optimized_p95_ns
            || h.priced_batch_p50_ns > h.priced_batch_p95_ns
        {
            return Err("headline p50 exceeds p95".into());
        }
        if !(h.speedup_p50.is_finite() && h.speedup_p50 > 0.0) {
            return Err("headline speedup is not a positive finite number".into());
        }
        if self.host_kernels.values().sum::<u64>() == 0 {
            return Err("headline recorded no host-kernel selections".into());
        }
        Ok(())
    }
}

/// Nearest-rank percentile of a sample set (`pct` in `[0, 100]`). Sorts a
/// copy; panics on an empty slice.
#[must_use]
pub fn percentile_ns(samples: &[u64], pct: f64) -> u64 {
    assert!(!samples.is_empty(), "percentile of an empty sample set");
    let mut sorted = samples.to_vec();
    sorted.sort_unstable();
    let rank = ((pct / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

// ---------------------------------------------------------------------------
// Service benchmark (`BENCH_service.json`)
// ---------------------------------------------------------------------------

/// Schema version of `results/BENCH_service.json`; bump when a field is
/// added, removed or re-interpreted so downstream tooling can dispatch.
///
/// v2 added the `cache` (repeated-spec result-cache effectiveness) and
/// `fairness` (two-tenant heavy/light WFQ isolation) scenarios; the arrival
/// sweep and overload probe now run with the result cache disabled so their
/// latencies keep measuring *executions*, comparable with v1 documents.
///
/// v3 added the `stream` scenario: a rate-controlled update/query mix over
/// the `mutate` request family, with every streamed answer differentially
/// checked against a host-side recount and the incremental
/// (mutate + streamed read) p50 required to undercut the register-replace +
/// cold-query recompute p50 by at least 2x.
pub const BENCH_SERVICE_SCHEMA_VERSION: u32 = 3;

/// The streaming-update scenario of schema v3: an open-loop paced stream of
/// `mutate` batches (each a few inserts and deletes) interleaved with read
/// queries on the same graph. Reads after the first mutation are served from
/// the worker's incrementally-maintained counters; every value is checked
/// against a host-side recount of the reference successor graph. The
/// recompute baseline replaces the graph wholesale (register + cold query)
/// per update; the incremental path must undercut its p50 by
/// `speedup_floor`.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct StreamScenario {
    /// Mutation batches applied through the `mutate` request family.
    pub mutations: u64,
    /// Edge intents (inserts + deletes) carried by those batches.
    pub edge_intents: u64,
    /// Read queries interleaved with the mutation stream.
    pub queries: u64,
    /// Reads served from the incrementally-maintained stream counters
    /// (`sisa_stream_serves_total`).
    pub stream_serves: u64,
    /// The paced open-loop update rate, updates per second.
    pub offered_ups: f64,
    /// Median wall-clock of one incremental update cycle (mutate + read), ns.
    pub incremental_p50_latency_ns: u64,
    /// 95th-percentile wall-clock of an incremental update cycle, ns.
    pub incremental_p95_latency_ns: u64,
    /// Median wall-clock of the recompute baseline (register-replace + cold
    /// query) per update, ns.
    pub recompute_p50_latency_ns: u64,
    /// `recompute_p50_latency_ns / incremental_p50_latency_ns`.
    pub incremental_speedup_p50: f64,
    /// The asserted floor on `incremental_speedup_p50` (2.0: the acceptance
    /// bound).
    pub speedup_floor: f64,
    /// Whether every streamed read was checked against a from-scratch
    /// recount of the reference graph. Always `true` in valid documents.
    pub differential_checked: bool,
}

impl StreamScenario {
    /// Checks the stream scenario's invariants, including the incremental
    /// speedup floor.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated invariant.
    pub fn validate(&self) -> Result<(), String> {
        if self.mutations == 0 || self.queries == 0 {
            return Err("stream scenario applied no mutations or ran no reads".into());
        }
        if self.edge_intents < self.mutations {
            return Err("stream scenario batches averaged below one edge intent".into());
        }
        if self.stream_serves == 0 {
            return Err("no read was served from the maintained stream counters".into());
        }
        if !(self.offered_ups.is_finite() && self.offered_ups > 0.0) {
            return Err("offered update rate is not positive finite".into());
        }
        if self.incremental_p50_latency_ns == 0 || self.recompute_p50_latency_ns == 0 {
            return Err("stream scenario latencies are degenerate".into());
        }
        if self.incremental_p50_latency_ns > self.incremental_p95_latency_ns {
            return Err("stream percentiles out of order".into());
        }
        if !(self.speedup_floor.is_finite() && self.speedup_floor >= 1.0) {
            return Err("stream speedup floor is not a sane bound".into());
        }
        if !(self.incremental_speedup_p50.is_finite()
            && self.incremental_speedup_p50 >= self.speedup_floor)
        {
            return Err(format!(
                "incremental speedup {:.2}x is below the {:.1}x acceptance floor",
                self.incremental_speedup_p50, self.speedup_floor
            ));
        }
        if !self.differential_checked {
            return Err("run skipped the differential stream checks".into());
        }
        Ok(())
    }
}

/// The repeated-spec cache scenario of schema v2: a miss phase executes
/// `distinct_specs` unique queries once each, then a hit phase re-submits the
/// same specs `hit_rounds` more times. Engine aggregates are read before and
/// after the hit phase; the run asserts they are frozen (hits bill zero
/// engine cycles, recorded in `zero_engine_cost_checked`) and that the hit
/// p50 undercuts the miss p50 by at least 10x.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct CacheScenario {
    /// Unique query specs in the working set (each executed exactly once).
    pub distinct_specs: u64,
    /// Times the whole working set was re-submitted after the miss phase.
    pub hit_rounds: u64,
    /// Median submit-to-completion latency of the miss (execution) phase, ns.
    pub miss_p50_latency_ns: u64,
    /// Median submit-to-completion latency of the hit phase, ns.
    pub hit_p50_latency_ns: u64,
    /// `miss_p50_latency_ns / hit_p50_latency_ns` (>= 10 in valid documents).
    pub hit_speedup_p50: f64,
    /// Cache hits counted by the service ledger over the scenario.
    pub cache_hits: u64,
    /// Cache misses counted over the scenario.
    pub cache_misses: u64,
    /// End-of-scenario hit ratio, permille.
    pub hit_ratio_permille: u64,
    /// Whether engine aggregates were asserted frozen across the hit phase
    /// (integer counters and bit-exact energy). Always `true` in valid
    /// documents.
    pub zero_engine_cost_checked: bool,
}

/// The two-tenant fairness scenario of schema v2: on a single-worker service
/// at equal weights, a heavy tenant keeps `heavy_factor` times the light
/// tenant's load queued while the light tenant submits sequentially. Every
/// submission carries a unique never-truncating budget, so neither the
/// result cache nor coalescing can mask scheduling. The run asserts the
/// light tenant's contended p95 stays within `p95_ratio_bound` of its solo
/// p95 — the weighted-fair-queueing no-starvation bound.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct FairnessScenario {
    /// Sequential queries the light tenant submitted (per run).
    pub light_queries: u64,
    /// The heavy tenant's offered-load multiple of the light tenant's.
    pub heavy_factor: u64,
    /// The light tenant's p95 latency alone on the service, ns.
    pub solo_p95_latency_ns: u64,
    /// The light tenant's p95 latency under heavy contention, ns.
    pub contended_p95_latency_ns: u64,
    /// `contended_p95_latency_ns / solo_p95_latency_ns`.
    pub p95_ratio: f64,
    /// The asserted ceiling on `p95_ratio` (3.0: the acceptance bound).
    pub p95_ratio_bound: f64,
}

/// One offered-rate point of the `bench_service` open-loop arrival sweep:
/// queries arrive on a fixed schedule (`offered_qps`), irrespective of
/// completions, and the service answers, coalesces or sheds them.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ServiceSweepPoint {
    /// The open-loop arrival rate, queries per second.
    pub offered_qps: f64,
    /// Arrivals attempted at this rate.
    pub submitted: u64,
    /// Queries that completed with a result.
    pub completed: u64,
    /// Arrivals shed by admission control (`Rejected { retry_after }`).
    pub rejected: u64,
    /// Completions served from a coalesced execution at zero billed cost.
    pub coalesced: u64,
    /// Median submit-to-completion latency of completed queries, ns.
    pub p50_latency_ns: u64,
    /// 95th-percentile latency, ns.
    pub p95_latency_ns: u64,
    /// 99th-percentile latency, ns.
    pub p99_latency_ns: u64,
    /// Completed queries divided by the span from first submission to last
    /// completion.
    pub achieved_qps: f64,
}

/// The full `results/BENCH_service.json` document emitted by the
/// `bench_service` binary: an open-loop arrival sweep over a multi-tenant
/// [`sisa_service::SisaService`] pool (latency percentiles, the saturation
/// knee, shed load), the TCP transport smoke, the overload probe, and host
/// provenance. Simulated-work attribution is verified, not reported: the run
/// asserts that per-tenant [`sisa_core::ExecStats`] records fold bit-exactly
/// to the pool aggregate and telescope to the raw engine counters, and
/// records the outcome in `stats_identity_checked`.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct BenchService {
    /// [`BENCH_SERVICE_SCHEMA_VERSION`] at emission time.
    pub schema_version: u32,
    /// `smoke` (CI-sized sweep) or `full`.
    pub mode: String,
    /// The seed behind the benchmark graph and every derived schedule.
    pub seed: u64,
    /// Host machine provenance for the nanosecond figures.
    pub host: HostPlatform,
    /// The registry-shared graph every query in the sweep targets.
    pub graph: String,
    /// Worker threads of the benchmarked service pool.
    pub workers: usize,
    /// Shards per worker engine.
    pub shards: usize,
    /// Concurrent tenants submitting during the sweep.
    pub clients: usize,
    /// The query kinds cycled through the sweep (wire names).
    pub query_mix: Vec<String>,
    /// The offered-rate sweep, in increasing-rate order.
    pub sweep: Vec<ServiceSweepPoint>,
    /// The lowest offered rate whose achieved throughput fell below 90% of
    /// offered (the saturation knee), or the highest swept rate if none did.
    pub knee_offered_qps: f64,
    /// The best achieved throughput across the sweep.
    pub peak_achieved_qps: f64,
    /// Rejections across the whole run (sweep plus the overload probe, which
    /// must shed load rather than grow without bound).
    pub total_rejected: u64,
    /// Queries answered over line-delimited JSON TCP during the transport
    /// smoke.
    pub tcp_smoke_queries: u64,
    /// Concurrent TCP client connections during the transport smoke.
    pub tcp_smoke_clients: usize,
    /// Whether the exact-attribution identities were asserted this run
    /// (tenant fold ≡ pool aggregate bit-exact; pool + registry overhead
    /// telescopes to raw engine counters). Always `true` in valid documents.
    pub stats_identity_checked: bool,
    /// The repeated-spec result-cache scenario (schema v2).
    pub cache: CacheScenario,
    /// The two-tenant WFQ fairness scenario (schema v2).
    pub fairness: FairnessScenario,
    /// The streaming update/query-mix scenario (schema v3).
    pub stream: StreamScenario,
}

impl BenchService {
    /// Pretty-printed JSON for this document.
    #[must_use]
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("bench document serializes")
    }

    /// Parses a `BENCH_service.json` document.
    ///
    /// # Errors
    ///
    /// Returns the parse error's message when `text` is not a valid document.
    pub fn from_json(text: &str) -> Result<Self, String> {
        serde_json::from_str(text).map_err(|e| format!("{e:?}"))
    }

    /// Checks the document's internal invariants (the schema validation CI
    /// runs on the emitted artifact).
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated invariant.
    pub fn validate(&self) -> Result<(), String> {
        if self.schema_version != BENCH_SERVICE_SCHEMA_VERSION {
            return Err(format!(
                "schema_version {} != supported {BENCH_SERVICE_SCHEMA_VERSION}",
                self.schema_version
            ));
        }
        if self.mode != "smoke" && self.mode != "full" {
            return Err(format!("mode {:?} is not smoke|full", self.mode));
        }
        if self.workers == 0 || self.shards == 0 || self.clients == 0 {
            return Err("pool geometry is degenerate".into());
        }
        if self.query_mix.is_empty() {
            return Err("query mix is empty".into());
        }
        if self.sweep.is_empty() {
            return Err("arrival sweep is empty".into());
        }
        let mut last_rate = 0.0f64;
        let mut swept_rejected = 0u64;
        for point in &self.sweep {
            if !(point.offered_qps.is_finite() && point.offered_qps > 0.0) {
                return Err(format!(
                    "offered rate {} is not positive",
                    point.offered_qps
                ));
            }
            if point.offered_qps <= last_rate {
                return Err("sweep rates are not strictly increasing".into());
            }
            last_rate = point.offered_qps;
            if point.completed + point.rejected != point.submitted {
                return Err(format!(
                    "rate {}: completed {} + rejected {} != submitted {}",
                    point.offered_qps, point.completed, point.rejected, point.submitted
                ));
            }
            if point.coalesced > point.completed {
                return Err(format!(
                    "rate {}: coalesced exceeds completed",
                    point.offered_qps
                ));
            }
            if point.completed == 0 {
                return Err(format!("rate {}: nothing completed", point.offered_qps));
            }
            if point.p50_latency_ns > point.p95_latency_ns
                || point.p95_latency_ns > point.p99_latency_ns
            {
                return Err(format!(
                    "rate {}: percentiles out of order",
                    point.offered_qps
                ));
            }
            if !(point.achieved_qps.is_finite() && point.achieved_qps > 0.0) {
                return Err(format!(
                    "rate {}: bad achieved throughput",
                    point.offered_qps
                ));
            }
            swept_rejected += point.rejected;
        }
        if self.total_rejected < swept_rejected {
            return Err("total_rejected undercounts the sweep".into());
        }
        if !(self.knee_offered_qps.is_finite() && self.knee_offered_qps > 0.0) {
            return Err("saturation knee is not a positive finite rate".into());
        }
        if !(self.peak_achieved_qps.is_finite() && self.peak_achieved_qps > 0.0) {
            return Err("peak achieved throughput is not positive".into());
        }
        if self.tcp_smoke_clients < 8 {
            return Err(format!(
                "TCP smoke used {} clients; the acceptance floor is 8",
                self.tcp_smoke_clients
            ));
        }
        if self.tcp_smoke_queries < 100 {
            return Err(format!(
                "TCP smoke answered {} queries; the acceptance floor is 100",
                self.tcp_smoke_queries
            ));
        }
        if !self.stats_identity_checked {
            return Err("run skipped the exact-attribution identity checks".into());
        }
        self.cache.validate()?;
        self.fairness.validate()?;
        self.stream.validate()?;
        Ok(())
    }
}

impl CacheScenario {
    /// Checks the cache scenario's invariants, including the 10x hit-speedup
    /// acceptance bound.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated invariant.
    pub fn validate(&self) -> Result<(), String> {
        if self.distinct_specs == 0 || self.hit_rounds == 0 {
            return Err("cache scenario ran no specs or no hit rounds".into());
        }
        if self.miss_p50_latency_ns == 0 || self.hit_p50_latency_ns == 0 {
            return Err("cache scenario latencies are degenerate".into());
        }
        if self.hit_p50_latency_ns.saturating_mul(10) > self.miss_p50_latency_ns {
            return Err(format!(
                "cache hit p50 {} ns is not >= 10x below the miss p50 {} ns",
                self.hit_p50_latency_ns, self.miss_p50_latency_ns
            ));
        }
        if !(self.hit_speedup_p50.is_finite() && self.hit_speedup_p50 >= 10.0) {
            return Err(format!(
                "cache hit speedup {} is below the 10x acceptance bound",
                self.hit_speedup_p50
            ));
        }
        if self.cache_hits < self.distinct_specs * self.hit_rounds {
            return Err("cache scenario undercounts its own hit phase".into());
        }
        if self.cache_misses < self.distinct_specs {
            return Err("cache scenario undercounts its own miss phase".into());
        }
        if !(1..=1000).contains(&self.hit_ratio_permille) {
            return Err(format!(
                "hit ratio {} permille is not in (0, 1000]",
                self.hit_ratio_permille
            ));
        }
        if !self.zero_engine_cost_checked {
            return Err("run skipped the frozen-engine-aggregates check".into());
        }
        Ok(())
    }
}

impl FairnessScenario {
    /// Checks the fairness scenario's invariants, including the p95
    /// isolation bound.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated invariant.
    pub fn validate(&self) -> Result<(), String> {
        if self.light_queries == 0 {
            return Err("fairness scenario ran no light-tenant queries".into());
        }
        if self.heavy_factor < 10 {
            return Err(format!(
                "heavy factor {} is below the 10x acceptance load",
                self.heavy_factor
            ));
        }
        if self.solo_p95_latency_ns == 0 || self.contended_p95_latency_ns == 0 {
            return Err("fairness scenario latencies are degenerate".into());
        }
        if !(self.p95_ratio.is_finite() && self.p95_ratio > 0.0) {
            return Err("fairness p95 ratio is not positive finite".into());
        }
        if !(self.p95_ratio_bound.is_finite() && self.p95_ratio_bound >= 1.0) {
            return Err("fairness p95 bound is not a sane ceiling".into());
        }
        if self.p95_ratio > self.p95_ratio_bound {
            return Err(format!(
                "light-tenant p95 ratio {:.3} exceeds the {:.1}x isolation bound",
                self.p95_ratio, self.p95_ratio_bound
            ));
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Summaries and output helpers
// ---------------------------------------------------------------------------

/// The paper's two speedup summaries (§9.1 "Performance Measures"):
/// the geometric mean of per-point speedups ("avg-of-speedups") and the ratio
/// of average runtimes ("speedup-of-avgs").
#[must_use]
pub fn speedup_summaries(baseline_cycles: &[u64], sisa_cycles: &[u64]) -> (f64, f64) {
    assert_eq!(baseline_cycles.len(), sisa_cycles.len());
    if baseline_cycles.is_empty() {
        return (1.0, 1.0);
    }
    let mut log_sum = 0.0;
    for (&b, &s) in baseline_cycles.iter().zip(sisa_cycles) {
        log_sum += (b.max(1) as f64 / s.max(1) as f64).ln();
    }
    let avg_of_speedups = (log_sum / baseline_cycles.len() as f64).exp();
    let speedup_of_avgs =
        baseline_cycles.iter().sum::<u64>() as f64 / sisa_cycles.iter().sum::<u64>().max(1) as f64;
    (avg_of_speedups, speedup_of_avgs)
}

/// Formats a simple aligned table.
#[must_use]
pub fn format_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: &[String], widths: &[usize]| {
        cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:<width$}", c, width = widths.get(i).copied().unwrap_or(8)))
            .collect::<Vec<_>>()
            .join("  ")
    };
    let header_cells: Vec<String> = headers.iter().map(|s| (*s).to_string()).collect();
    let _ = writeln!(out, "{}", fmt_row(&header_cells, &widths));
    let _ = writeln!(
        out,
        "{}",
        "-".repeat(widths.iter().sum::<usize>() + 2 * widths.len())
    );
    for row in rows {
        let _ = writeln!(out, "{}", fmt_row(row, &widths));
    }
    out
}

/// Machine-readable record of the platform parameters a run used, emitted as
/// `results/platform.json` by `run_all` so figures carry their provenance.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct PlatformSummary {
    /// Baseline out-of-order CPU model.
    pub cpu: CpuConfig,
    /// The SISA hardware platform (PNM + PUM + SCU parameters).
    pub pim: PimPlatform,
    /// Event-based energy model.
    pub energy: EnergyModel,
}

impl PlatformSummary {
    /// Pretty-printed JSON for this summary.
    #[must_use]
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("platform summary serializes")
    }
}

/// Prints `content` and also writes it to `results/<name>.txt` (best effort).
pub fn emit(name: &str, content: &str) {
    emit_to(&results_dir(), name, content);
}

/// Prints `content` and mirrors it to `<dir>/<name>.txt` (best effort).
pub fn emit_to(dir: &std::path::Path, name: &str, content: &str) {
    println!("{content}");
    if std::fs::create_dir_all(dir).is_ok() {
        let _ = std::fs::write(dir.join(format!("{name}.txt")), content);
    }
}

/// The directory experiment outputs are mirrored to.
#[must_use]
pub fn results_dir() -> PathBuf {
    std::env::var("SISA_RESULTS_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|_| PathBuf::from("results"))
}

/// Whether `--full` was passed (paper-sized budgets instead of quick ones).
#[must_use]
pub fn full_mode() -> bool {
    std::env::args().any(|a| a == "--full")
}

/// The default pattern budget for a problem, scaled down unless `--full`.
#[must_use]
pub fn default_limits(problem: Problem, full: bool) -> SearchLimits {
    let quick = match problem {
        Problem::Tc => 200_000,
        Problem::Kcc(_) | Problem::Ksc(_) => 20_000,
        Problem::Mc => 2_000,
        Problem::ClJac => 50_000,
        Problem::Si4s | Problem::Si4sL => 50_000,
    };
    SearchLimits::patterns(if full { quick * 10 } else { quick })
}

#[cfg(test)]
mod tests {
    use super::*;
    use sisa_graph::generators;

    #[test]
    fn all_schemes_agree_on_the_result_and_sisa_beats_the_tuned_baseline() {
        // A Figure-6-scale stand-in (dense clusters, ≈75k edges): at this
        // size the baselines' working sets spill out of the upper cache
        // levels, which is the regime the paper evaluates.
        let g = sisa_graph::datasets::by_name("bn-mouse")
            .expect("registered stand-in")
            .generate(1);
        let mut w = Workload::new(g, 32, SearchLimits::patterns(10_000));
        w.limits = SearchLimits::patterns(10_000);
        for problem in [Problem::Tc, Problem::Kcc(4)] {
            let non_set = run_cell(problem, Scheme::NonSet, &w);
            let set_based = run_cell(problem, Scheme::SetBased, &w);
            let sisa = run_cell(problem, Scheme::Sisa, &w);
            assert_eq!(non_set.result, set_based.result, "{problem:?}");
            assert_eq!(non_set.result, sisa.result, "{problem:?}");
            assert!(
                sisa.cycles < non_set.cycles,
                "{problem:?}: sisa {} vs non-set {}",
                sisa.cycles,
                non_set.cycles
            );
            assert!(set_based.cycles < non_set.cycles, "{problem:?}");
        }
        // On the intersection-heavy kernels SISA also beats the set-based
        // software baseline (Figure 6's headline).
        let tc_set_based = run_cell(Problem::Tc, Scheme::SetBased, &w);
        let tc_sisa = run_cell(Problem::Tc, Scheme::Sisa, &w);
        assert!(tc_sisa.cycles * 2 < tc_set_based.cycles);
    }

    #[test]
    fn speedup_summaries_behave() {
        let (geo, ratio) = speedup_summaries(&[100, 400], &[50, 100]);
        assert!((geo - (2.0f64 * 4.0).sqrt()).abs() < 1e-9);
        assert!((ratio - 500.0 / 150.0).abs() < 1e-9);
        assert_eq!(speedup_summaries(&[], &[]), (1.0, 1.0));
    }

    #[test]
    fn table_formatting_is_aligned() {
        let t = format_table(
            &["graph", "cycles"],
            &[
                vec!["a".into(), "10".into()],
                vec!["bbbb".into(), "2".into()],
            ],
        );
        assert!(t.contains("graph"));
        assert_eq!(t.lines().count(), 4);
    }

    #[test]
    fn problem_labels() {
        assert_eq!(Problem::Kcc(5).label(), "kcc-5");
        assert_eq!(Problem::Si4sL.label(), "si-4s-L");
        assert_eq!(Scheme::Sisa.label(), "sisa");
        assert_eq!(Problem::figure6_panels().len(), 11);
    }

    fn sample_bench_document() -> BenchKernels {
        BenchKernels {
            schema_version: BENCH_KERNELS_SCHEMA_VERSION,
            mode: "smoke".into(),
            seed: 1,
            host: HostPlatform::capture(),
            pim: PimPlatform::default(),
            host_kernels: [("merge".to_string(), 3), ("bitmap".to_string(), 2)]
                .into_iter()
                .collect(),
            kernels: vec![KernelCell {
                op: "intersect".into(),
                shape: "sorted-similar".into(),
                len_a: 4096,
                len_b: 4096,
                samples: 5,
                reference_p50_ns: 900,
                reference_p95_ns: 1100,
                optimized_p50_ns: 300,
                optimized_p95_ns: 350,
                speedup_p50: 3.0,
            }],
            headline: HeadlineBench {
                workload: "tc".into(),
                graph: "soc-fbMsg".into(),
                shards: 16,
                host_threads: 1,
                batch_ops: 14336,
                result: 42,
                samples: 3,
                baseline_p50_ns: 9_000_000,
                baseline_p95_ns: 9_500_000,
                optimized_p50_ns: 2_000_000,
                optimized_p95_ns: 2_200_000,
                priced_batch_p50_ns: 7_000_000,
                priced_batch_p95_ns: 7_400_000,
                speedup_p50: 4.5,
                simulated_total_cycles: 1_000_000,
                simulated_makespan_cycles: 80_000,
                simulated_energy_nj: 12.5,
            },
        }
    }

    #[test]
    fn bench_document_roundtrips_and_validates() {
        let doc = sample_bench_document();
        doc.validate().expect("sample document is valid");
        let parsed = BenchKernels::from_json(&doc.to_json()).expect("roundtrip parses");
        assert_eq!(parsed, doc);
        assert!(BenchKernels::from_json("{not json").is_err());
    }

    #[test]
    fn bench_document_validation_rejects_violations() {
        let mut doc = sample_bench_document();
        doc.schema_version += 1;
        assert!(doc.validate().is_err(), "wrong schema version");
        let mut doc = sample_bench_document();
        doc.mode = "quick".into();
        assert!(doc.validate().is_err(), "unknown mode");
        let mut doc = sample_bench_document();
        doc.kernels.clear();
        assert!(doc.validate().is_err(), "empty matrix");
        let mut doc = sample_bench_document();
        doc.kernels[0].optimized_p50_ns = doc.kernels[0].optimized_p95_ns + 1;
        assert!(doc.validate().is_err(), "p50 above p95");
        let mut doc = sample_bench_document();
        doc.headline.speedup_p50 = f64::NAN;
        assert!(doc.validate().is_err(), "non-finite headline speedup");
        let mut doc = sample_bench_document();
        doc.headline.priced_batch_p50_ns = doc.headline.priced_batch_p95_ns + 1;
        assert!(doc.validate().is_err(), "priced-batch p50 above p95");
        let mut doc = sample_bench_document();
        doc.host_kernels.clear();
        assert!(doc.validate().is_err(), "no dispatch tallies");
    }

    #[test]
    fn percentiles_use_the_nearest_rank() {
        let samples = [50u64, 10, 40, 20, 30];
        assert_eq!(percentile_ns(&samples, 50.0), 30);
        assert_eq!(percentile_ns(&samples, 95.0), 50);
        assert_eq!(percentile_ns(&samples, 0.0), 10);
        assert_eq!(percentile_ns(&[7], 95.0), 7);
    }

    #[test]
    fn instruction_mix_records_host_kernel_selections() {
        let g = generators::erdos_renyi(120, 0.08, 3);
        let mix = capture_instruction_mix("er-120", &g);
        let total: u64 = mix.host_kernels.values().sum();
        assert!(total > 0, "a tc+bfs trace dispatches host kernels");
        assert!(mix.notes.contains("Host kernel dispatch"));
        for key in ["merge", "gallop", "bitmap"] {
            assert!(mix.host_kernels.contains_key(key), "{key} tally present");
        }
    }

    #[test]
    fn auxiliary_formulations_run() {
        let g = generators::erdos_renyi(100, 0.05, 1);
        let (rounds, reached) = run_auxiliary_formulations(&g);
        assert!(rounds > 0);
        assert!(reached > 1);
    }

    fn sample_service_document() -> BenchService {
        BenchService {
            schema_version: BENCH_SERVICE_SCHEMA_VERSION,
            mode: "smoke".into(),
            seed: 42,
            host: HostPlatform::capture(),
            graph: "er-service".into(),
            workers: 2,
            shards: 2,
            clients: 8,
            query_mix: vec!["tc".into(), "kclique3".into(), "star2".into()],
            sweep: vec![
                ServiceSweepPoint {
                    offered_qps: 50.0,
                    submitted: 60,
                    completed: 60,
                    rejected: 0,
                    coalesced: 2,
                    p50_latency_ns: 100_000,
                    p95_latency_ns: 300_000,
                    p99_latency_ns: 500_000,
                    achieved_qps: 49.7,
                },
                ServiceSweepPoint {
                    offered_qps: 800.0,
                    submitted: 60,
                    completed: 51,
                    rejected: 9,
                    coalesced: 12,
                    p50_latency_ns: 900_000,
                    p95_latency_ns: 2_000_000,
                    p99_latency_ns: 2_500_000,
                    achieved_qps: 512.0,
                },
            ],
            knee_offered_qps: 800.0,
            peak_achieved_qps: 512.0,
            total_rejected: 29,
            tcp_smoke_queries: 104,
            tcp_smoke_clients: 8,
            stats_identity_checked: true,
            cache: CacheScenario {
                distinct_specs: 6,
                hit_rounds: 4,
                miss_p50_latency_ns: 400_000,
                hit_p50_latency_ns: 20_000,
                hit_speedup_p50: 20.0,
                cache_hits: 24,
                cache_misses: 6,
                hit_ratio_permille: 800,
                zero_engine_cost_checked: true,
            },
            fairness: FairnessScenario {
                light_queries: 12,
                heavy_factor: 10,
                solo_p95_latency_ns: 300_000,
                contended_p95_latency_ns: 600_000,
                p95_ratio: 2.0,
                p95_ratio_bound: 3.0,
            },
            stream: StreamScenario {
                mutations: 24,
                edge_intents: 72,
                queries: 48,
                stream_serves: 46,
                offered_ups: 200.0,
                incremental_p50_latency_ns: 150_000,
                incremental_p95_latency_ns: 400_000,
                recompute_p50_latency_ns: 900_000,
                incremental_speedup_p50: 6.0,
                speedup_floor: 2.0,
                differential_checked: true,
            },
        }
    }

    #[test]
    fn service_document_roundtrips_and_validates() {
        let doc = sample_service_document();
        doc.validate().expect("sample document is valid");
        let parsed = BenchService::from_json(&doc.to_json()).expect("roundtrip parses");
        assert_eq!(parsed, doc);
        assert!(BenchService::from_json("{not json").is_err());
    }

    #[test]
    fn service_document_validation_rejects_violations() {
        let mut doc = sample_service_document();
        doc.schema_version += 1;
        assert!(doc.validate().is_err(), "wrong schema version");
        let mut doc = sample_service_document();
        doc.sweep.clear();
        assert!(doc.validate().is_err(), "empty sweep");
        let mut doc = sample_service_document();
        doc.sweep[1].offered_qps = doc.sweep[0].offered_qps;
        assert!(doc.validate().is_err(), "non-increasing rates");
        let mut doc = sample_service_document();
        doc.sweep[0].rejected += 1;
        assert!(doc.validate().is_err(), "submitted != completed + rejected");
        let mut doc = sample_service_document();
        doc.sweep[0].p50_latency_ns = doc.sweep[0].p95_latency_ns + 1;
        assert!(doc.validate().is_err(), "percentiles out of order");
        let mut doc = sample_service_document();
        doc.total_rejected = 0;
        assert!(doc.validate().is_err(), "total undercounts the sweep");
        let mut doc = sample_service_document();
        doc.tcp_smoke_clients = 4;
        assert!(doc.validate().is_err(), "below the 8-client floor");
        let mut doc = sample_service_document();
        doc.tcp_smoke_queries = 50;
        assert!(doc.validate().is_err(), "below the 100-query floor");
        let mut doc = sample_service_document();
        doc.stats_identity_checked = false;
        assert!(doc.validate().is_err(), "identity check skipped");
        let mut doc = sample_service_document();
        doc.cache.hit_p50_latency_ns = doc.cache.miss_p50_latency_ns / 5;
        assert!(doc.validate().is_err(), "hit p50 within 10x of miss p50");
        let mut doc = sample_service_document();
        doc.cache.hit_speedup_p50 = 9.9;
        assert!(doc.validate().is_err(), "speedup below the 10x bound");
        let mut doc = sample_service_document();
        doc.cache.cache_hits = 3;
        assert!(doc.validate().is_err(), "hits undercount the hit phase");
        let mut doc = sample_service_document();
        doc.cache.zero_engine_cost_checked = false;
        assert!(doc.validate().is_err(), "frozen-engines check skipped");
        let mut doc = sample_service_document();
        doc.fairness.p95_ratio = doc.fairness.p95_ratio_bound + 0.1;
        assert!(doc.validate().is_err(), "p95 ratio over the bound");
        let mut doc = sample_service_document();
        doc.fairness.heavy_factor = 2;
        assert!(doc.validate().is_err(), "heavy load below 10x");
        let mut doc = sample_service_document();
        doc.fairness.contended_p95_latency_ns = 0;
        assert!(doc.validate().is_err(), "degenerate fairness latencies");
        let mut doc = sample_service_document();
        doc.stream.mutations = 0;
        assert!(doc.validate().is_err(), "stream ran no mutations");
        let mut doc = sample_service_document();
        doc.stream.stream_serves = 0;
        assert!(doc.validate().is_err(), "no streamed serves");
        let mut doc = sample_service_document();
        doc.stream.incremental_speedup_p50 = doc.stream.speedup_floor - 0.5;
        assert!(doc.validate().is_err(), "speedup below the 2x floor");
        let mut doc = sample_service_document();
        doc.stream.edge_intents = doc.stream.mutations - 1;
        assert!(doc.validate().is_err(), "intents undercount batches");
        let mut doc = sample_service_document();
        doc.stream.differential_checked = false;
        assert!(doc.validate().is_err(), "differential check skipped");
    }
}
