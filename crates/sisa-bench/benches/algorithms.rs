//! Criterion benchmarks of the mining algorithms (small instances so that the
//! default `cargo bench` stays fast; the figure harnesses cover full runs).

use criterion::{criterion_group, criterion_main, Criterion};
use sisa_algorithms::setcentric::{k_clique_count, maximal_cliques, triangle_count};
use sisa_algorithms::SearchLimits;
use sisa_core::{SetGraph, SetGraphConfig, SisaConfig, SisaRuntime};
use sisa_graph::{generators, orientation::degeneracy_order};

fn bench_algorithms(c: &mut Criterion) {
    let mut group = c.benchmark_group("algorithms");
    group.sample_size(10);
    let g = generators::planted_cliques(
        &generators::PlantedCliqueConfig {
            num_vertices: 300,
            num_cliques: 20,
            min_clique_size: 5,
            max_clique_size: 9,
            background_edges: 600,
            overlap: 0.2,
        },
        1,
    )
    .0;
    let ordering = degeneracy_order(&g);
    let oriented_csr = ordering.orient(&g);
    let limits = SearchLimits::patterns(5_000);

    group.bench_function("sisa_triangle_count", |b| {
        b.iter(|| {
            let mut rt = SisaRuntime::new(SisaConfig::default());
            let oriented = SetGraph::load(&mut rt, &oriented_csr, &SetGraphConfig::default());
            triangle_count(&mut rt, &oriented, &limits).result
        })
    });
    group.bench_function("sisa_kcc4", |b| {
        b.iter(|| {
            let mut rt = SisaRuntime::new(SisaConfig::default());
            let oriented = SetGraph::load(&mut rt, &oriented_csr, &SetGraphConfig::default());
            k_clique_count(&mut rt, &oriented, 4, &limits).result
        })
    });
    group.bench_function("sisa_maximal_cliques", |b| {
        b.iter(|| {
            let mut rt = SisaRuntime::new(SisaConfig::default());
            let sg = SetGraph::load(&mut rt, &g, &SetGraphConfig::default());
            maximal_cliques(&mut rt, &sg, &ordering, &limits, false)
                .result
                .count
        })
    });
    group.finish();
}

criterion_group!(benches, bench_algorithms);
criterion_main!(benches);
