//! Criterion microbenchmarks of the PIM cost models and the SCU dispatch path.

use criterion::{criterion_group, criterion_main, Criterion};
use sisa_core::{SetEngine, SisaConfig, SisaRuntime};
use sisa_pim::pum::BulkOp;
use sisa_pim::{PnmModel, PumModel};
use std::hint::black_box;

fn bench_models(c: &mut Criterion) {
    let mut group = c.benchmark_group("pim_models");
    group.sample_size(20);
    let pnm = PnmModel::default();
    let pum = PumModel::default();
    group.bench_function("pnm_streaming_model", |b| {
        b.iter(|| pnm.streaming_cost(black_box(10_000), black_box(20_000)))
    });
    group.bench_function("pnm_random_access_model", |b| {
        b.iter(|| pnm.random_access_cost(black_box(64), black_box(1_000_000)))
    });
    group.bench_function("pum_bulk_op_model", |b| {
        b.iter(|| pum.bulk_op_cost(BulkOp::And, black_box(1 << 22)))
    });
    group.bench_function("runtime_dispatch_intersect_count", |b| {
        let mut rt = SisaRuntime::new(SisaConfig::default());
        rt.set_universe(4096);
        let x = rt.create_dense((0..2048).collect::<Vec<_>>());
        let y = rt.create_dense((1024..3072).collect::<Vec<_>>());
        b.iter(|| rt.intersect_count(black_box(x), black_box(y)))
    });
    group.finish();
}

criterion_group!(benches, bench_models);
criterion_main!(benches);
