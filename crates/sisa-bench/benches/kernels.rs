//! Criterion microbenchmarks of the host-kernel dispatch layer: every
//! representation pairing × set operation × operand density, under both the
//! optimized dispatch and the seed's scalar reference kernels. The
//! `bench_kernels` binary mirrors this matrix into
//! `results/BENCH_kernels.json` with fixed-seed p50/p95 figures; this harness
//! is for interactive `cargo bench` comparisons while iterating on a kernel.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sisa_sets::repr::{self, KernelPolicy};
use sisa_sets::{SetRepr, Vertex};
use std::hint::black_box;

const UNIVERSE: usize = 32_768;

fn members(count: usize, salt: usize) -> Vec<Vertex> {
    let stride = UNIVERSE / count;
    (0..count)
        .map(|i| (i * stride + (i * 7 + salt * 13) % stride) as Vertex)
        .collect()
}

fn bench_dispatch(c: &mut Criterion) {
    let mut group = c.benchmark_group("host_kernels");
    group.sample_size(20);
    let sorted = |m: &[Vertex]| SetRepr::sorted_from(m.iter().copied());
    let dense = |m: &[Vertex]| SetRepr::dense_from(UNIVERSE, m.iter().copied());
    let similar_a = members(4096, 1);
    let similar_b = members(4096, 2);
    let tiny = members(64, 3);
    let shapes: [(&str, SetRepr, SetRepr); 4] = [
        ("sorted-similar", sorted(&similar_a), sorted(&similar_b)),
        ("sorted-skewed-64to1", sorted(&tiny), sorted(&similar_b)),
        ("dense-dense", dense(&similar_a), dense(&similar_b)),
        ("sorted-dense", sorted(&similar_a), dense(&similar_b)),
    ];
    type OpFn = fn(&SetRepr, &SetRepr);
    let ops: [(&str, OpFn); 4] = [
        ("intersect", |a, b| {
            black_box(a.intersect(b));
        }),
        ("union", |a, b| {
            black_box(a.union(b));
        }),
        ("difference", |a, b| {
            black_box(a.difference(b));
        }),
        ("intersect_count", |a, b| {
            black_box(a.intersect_count(b));
        }),
    ];
    for (shape, ra, rb) in &shapes {
        for (op, f) in ops {
            for (policy, label) in [
                (KernelPolicy::Optimized, "optimized"),
                (KernelPolicy::Reference, "reference"),
            ] {
                group.bench_with_input(
                    BenchmarkId::new(format!("{op}/{shape}"), label),
                    &policy,
                    |bench, &policy| {
                        repr::set_kernel_policy(policy);
                        bench.iter(|| f(black_box(ra), black_box(rb)));
                        repr::set_kernel_policy(KernelPolicy::Optimized);
                    },
                );
            }
        }
    }
    group.finish();
}

criterion_group!(benches, bench_dispatch);
criterion_main!(benches);
