//! Criterion microbenchmarks of the set-operation variants (Table 5).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sisa_sets::{ops, DenseBitVector};
use std::hint::black_box;

fn bench_intersections(c: &mut Criterion) {
    let mut group = c.benchmark_group("set_ops");
    group.sample_size(20);
    for &size in &[256usize, 4096] {
        let a: Vec<u32> = (0..size as u32).map(|x| x * 3).collect();
        let b: Vec<u32> = (0..size as u32).map(|x| x * 5).collect();
        let small: Vec<u32> = (0..32u32).map(|x| x * 97).collect();
        let universe = size * 8;
        let da = DenseBitVector::from_sorted_slice(universe, &a);
        let db = DenseBitVector::from_sorted_slice(universe, &b);
        group.bench_with_input(BenchmarkId::new("merge", size), &size, |bench, _| {
            bench.iter(|| ops::intersect_merge_slices(black_box(&a), black_box(&b)))
        });
        group.bench_with_input(
            BenchmarkId::new("galloping_skewed", size),
            &size,
            |bench, _| {
                bench.iter(|| ops::intersect_galloping_slices(black_box(&small), black_box(&b)))
            },
        );
        group.bench_with_input(BenchmarkId::new("sa_db_probe", size), &size, |bench, _| {
            bench.iter(|| ops::intersect_sa_db_count(black_box(&a), black_box(&db)))
        });
        group.bench_with_input(
            BenchmarkId::new("db_db_bitwise", size),
            &size,
            |bench, _| bench.iter(|| ops::intersect_db_db_count(black_box(&da), black_box(&db))),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_intersections);
criterion_main!(benches);
