//! # sisa-algorithms
//!
//! Graph-mining algorithms for the SISA reproduction, in three families:
//!
//! * [`setcentric`] — the paper's set-centric formulations (§5), written
//!   against the SISA runtime (`sisa-core`): triangle counting, k-clique
//!   listing, 4-clique counting, k-clique-star listing (two variants),
//!   Bron–Kerbosch maximal clique listing with pivoting and degeneracy,
//!   approximate degeneracy ordering, subgraph isomorphism (VF2, labelled),
//!   frequent subgraph mining, vertex similarity, link prediction (and its
//!   accuracy test), Jarvis–Patrick clustering and set-centric BFS.
//! * [`baseline`] — the hand-tuned comparison targets of §9.1: `_non-set`
//!   CSR algorithms and `_set-based` software set-centric algorithms, both
//!   executed on the baseline CPU cost model from `sisa-pim`.
//! * [`paradigms`] — the paradigm-level baselines of §9.2: Peregrine-style
//!   neighbourhood expansion and RStream-style relational joins.
//!
//! Every algorithm returns a [`MiningRun`]: the (real, validated) result plus
//! one [`TaskRecord`] per parallel work item, ready to be scheduled onto
//! virtual threads by `sisa_core::parallel`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod baseline;
pub mod limits;
pub mod paradigms;
pub mod setcentric;

pub use limits::{PatternBudget, SearchLimits};
use sisa_core::TaskRecord;

/// A vertex identifier (re-exported).
pub type Vertex = sisa_sets::Vertex;

/// The outcome of running one mining algorithm.
#[derive(Clone, Debug, PartialEq)]
pub struct MiningRun<T> {
    /// The algorithm's result (count, listing, scores, ...).
    pub result: T,
    /// One task record per parallel work item, in issue order.
    pub tasks: Vec<TaskRecord>,
    /// Whether the run stopped early because the pattern budget was exhausted
    /// (the paper's simulation-time cutoff, §9.1).
    pub truncated: bool,
}

impl<T> MiningRun<T> {
    /// Creates a run record.
    #[must_use]
    pub fn new(result: T, tasks: Vec<TaskRecord>, truncated: bool) -> Self {
        Self {
            result,
            tasks,
            truncated,
        }
    }

    /// Total cycles across all tasks (the serial runtime).
    #[must_use]
    pub fn total_cycles(&self) -> u64 {
        self.tasks.iter().map(|t| t.cycles).sum()
    }

    /// Maps the result, keeping the task records.
    #[must_use]
    pub fn map<U>(self, f: impl FnOnce(T) -> U) -> MiningRun<U> {
        MiningRun {
            result: f(self.result),
            tasks: self.tasks,
            truncated: self.truncated,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mining_run_helpers() {
        let run = MiningRun::new(
            7u64,
            vec![TaskRecord::compute_only(10), TaskRecord::compute_only(5)],
            false,
        );
        assert_eq!(run.total_cycles(), 15);
        let mapped = run.map(|x| x * 2);
        assert_eq!(mapped.result, 14);
        assert_eq!(mapped.tasks.len(), 2);
        assert!(!mapped.truncated);
    }
}
