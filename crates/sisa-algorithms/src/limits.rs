//! Search limits (pattern-count cutoffs).
//!
//! Graph mining problems are combinatorial: listing all maximal cliques of a
//! dense graph can take longer than any simulation budget. The paper handles
//! this by pre-specifying "a number of graph patterns to be found" per run
//! (§9.1, "Tackling Long Simulation Runtimes"), analogous to limiting the
//! iteration count of PageRank in earlier PIM work. [`SearchLimits`] carries
//! that cutoff and [`PatternBudget`] is the running counter algorithms consult.

/// Limits applied to a mining run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SearchLimits {
    /// Stop after this many patterns (cliques, matches, ...) have been found.
    /// `None` means exhaustive search.
    pub max_patterns: Option<u64>,
}

impl SearchLimits {
    /// No limits: run to completion.
    #[must_use]
    pub fn unlimited() -> Self {
        Self { max_patterns: None }
    }

    /// Stop after `n` patterns.
    #[must_use]
    pub fn patterns(n: u64) -> Self {
        Self {
            max_patterns: Some(n),
        }
    }

    /// Starts a budget counter for these limits.
    #[must_use]
    pub fn budget(&self) -> PatternBudget {
        PatternBudget {
            remaining: self.max_patterns,
            exhausted: false,
        }
    }
}

impl Default for SearchLimits {
    fn default() -> Self {
        Self::unlimited()
    }
}

/// A running pattern counter derived from [`SearchLimits`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PatternBudget {
    remaining: Option<u64>,
    exhausted: bool,
}

impl PatternBudget {
    /// Records `n` found patterns; returns `false` once the budget is
    /// exhausted (callers should then unwind).
    pub fn found(&mut self, n: u64) -> bool {
        if let Some(rem) = &mut self.remaining {
            if *rem <= n {
                *rem = 0;
                self.exhausted = true;
                return false;
            }
            *rem -= n;
        }
        true
    }

    /// Whether the budget has been exhausted.
    #[must_use]
    pub fn exhausted(&self) -> bool {
        self.exhausted
    }

    /// Whether the search may continue.
    #[must_use]
    pub fn may_continue(&self) -> bool {
        !self.exhausted
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_never_exhausts() {
        let mut b = SearchLimits::unlimited().budget();
        for _ in 0..1000 {
            assert!(b.found(1_000_000));
        }
        assert!(!b.exhausted());
        assert!(b.may_continue());
    }

    #[test]
    fn limited_budget_exhausts() {
        let mut b = SearchLimits::patterns(10).budget();
        assert!(b.found(4));
        assert!(b.found(5));
        assert!(!b.found(3)); // would cross the limit
        assert!(b.exhausted());
        assert!(!b.may_continue());
    }

    #[test]
    fn exact_hit_counts_as_exhausted() {
        let mut b = SearchLimits::patterns(5).budget();
        assert!(!b.found(5));
        assert!(b.exhausted());
    }

    #[test]
    fn default_is_unlimited() {
        assert_eq!(SearchLimits::default(), SearchLimits::unlimited());
    }
}
