//! Set-centric formulations of graph-mining algorithms (§5 of the paper).
//!
//! Every algorithm here is written against the SISA runtime: the heavy work is
//! expressed as SISA set operations (intersection, union, difference, their
//! counting twins, membership and element updates) on [`sisa_core::SetGraph`]
//! neighbourhoods and auxiliary sets, while loop control stays on the host and
//! is charged as scalar work. Outer-loop iterations marked "[in par]" in the
//! paper's listings become separate task records, so the harness can schedule
//! them across virtual threads.

pub mod bron_kerbosch;
pub mod cliques;
pub mod incremental;
pub mod learning;
pub mod subgraph_iso;
pub mod traversal;

pub use bron_kerbosch::maximal_cliques;
pub use cliques::{
    four_clique_count, k_clique_count, k_clique_list, k_clique_star_count, k_clique_star_join,
    orient_by_degeneracy, triangle_count,
};
pub use incremental::{ApplyReport, StreamingMiner};
pub use learning::{
    jarvis_patrick_clustering, link_prediction_accuracy, pairwise_similarity, SimilarityMeasure,
};
pub use subgraph_iso::{
    frequent_subgraphs, star_pattern, subgraph_isomorphism_count, PatternGraph,
};
pub use traversal::{approximate_degeneracy, bfs, BfsMode};
